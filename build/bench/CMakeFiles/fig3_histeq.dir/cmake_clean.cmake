file(REMOVE_RECURSE
  "CMakeFiles/fig3_histeq.dir/fig3_histeq.cpp.o"
  "CMakeFiles/fig3_histeq.dir/fig3_histeq.cpp.o.d"
  "fig3_histeq"
  "fig3_histeq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_histeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
