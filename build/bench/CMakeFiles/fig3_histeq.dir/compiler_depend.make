# Empty compiler generated dependencies file for fig3_histeq.
# This may be replaced when dependencies are built.
