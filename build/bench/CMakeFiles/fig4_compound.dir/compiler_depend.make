# Empty compiler generated dependencies file for fig4_compound.
# This may be replaced when dependencies are built.
