file(REMOVE_RECURSE
  "CMakeFiles/fig4_compound.dir/fig4_compound.cpp.o"
  "CMakeFiles/fig4_compound.dir/fig4_compound.cpp.o.d"
  "fig4_compound"
  "fig4_compound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_compound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
