file(REMOVE_RECURSE
  "CMakeFiles/table2_patterns.dir/table2_patterns.cpp.o"
  "CMakeFiles/table2_patterns.dir/table2_patterns.cpp.o.d"
  "table2_patterns"
  "table2_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
