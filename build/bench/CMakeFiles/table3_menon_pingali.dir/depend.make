# Empty dependencies file for table3_menon_pingali.
# This may be replaced when dependencies are built.
