file(REMOVE_RECURSE
  "CMakeFiles/table3_menon_pingali.dir/table3_menon_pingali.cpp.o"
  "CMakeFiles/table3_menon_pingali.dir/table3_menon_pingali.cpp.o.d"
  "table3_menon_pingali"
  "table3_menon_pingali.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_menon_pingali.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
