file(REMOVE_RECURSE
  "CMakeFiles/analysis_throughput.dir/analysis_throughput.cpp.o"
  "CMakeFiles/analysis_throughput.dir/analysis_throughput.cpp.o.d"
  "analysis_throughput"
  "analysis_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
