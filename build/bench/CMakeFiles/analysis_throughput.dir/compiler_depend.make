# Empty compiler generated dependencies file for analysis_throughput.
# This may be replaced when dependencies are built.
