# Empty compiler generated dependencies file for gather_pattern_plugin.
# This may be replaced when dependencies are built.
