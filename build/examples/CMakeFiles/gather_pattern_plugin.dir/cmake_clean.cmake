file(REMOVE_RECURSE
  "CMakeFiles/gather_pattern_plugin.dir/gather_pattern_plugin.cpp.o"
  "CMakeFiles/gather_pattern_plugin.dir/gather_pattern_plugin.cpp.o.d"
  "libgather_pattern_plugin.pdb"
  "libgather_pattern_plugin.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gather_pattern_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
