file(REMOVE_RECURSE
  "CMakeFiles/histogram_equalization.dir/histogram_equalization.cpp.o"
  "CMakeFiles/histogram_equalization.dir/histogram_equalization.cpp.o.d"
  "histogram_equalization"
  "histogram_equalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_equalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
