# Empty compiler generated dependencies file for histogram_equalization.
# This may be replaced when dependencies are built.
