# Empty dependencies file for mvec_tool.
# This may be replaced when dependencies are built.
