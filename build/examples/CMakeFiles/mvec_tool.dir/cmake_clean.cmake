file(REMOVE_RECURSE
  "CMakeFiles/mvec_tool.dir/mvec_tool.cpp.o"
  "CMakeFiles/mvec_tool.dir/mvec_tool.cpp.o.d"
  "mvec_tool"
  "mvec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
