# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.custom_pattern "/root/repo/build/examples/custom_pattern")
set_tests_properties(example.custom_pattern PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.histogram_equalization "/root/repo/build/examples/histogram_equalization")
set_tests_properties(example.histogram_equalization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool.histeq "/root/repo/build/examples/mvec_tool" "--validate" "/root/repo/examples/matlab/histeq.m")
set_tests_properties(tool.histeq PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool.fig4 "/root/repo/build/examples/mvec_tool" "--validate" "/root/repo/examples/matlab/fig4.m")
set_tests_properties(tool.fig4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool.menon_pingali "/root/repo/build/examples/mvec_tool" "--validate" "/root/repo/examples/matlab/menon_pingali.m")
set_tests_properties(tool.menon_pingali PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool.plugin_gather "/root/repo/build/examples/mvec_tool" "--validate" "--plugin" "/root/repo/build/examples/libgather_pattern_plugin.so" "/root/repo/examples/matlab/gather.m")
set_tests_properties(tool.plugin_gather PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool.run_flag "/root/repo/build/examples/mvec_tool" "--run" "/root/repo/examples/matlab/histeq.m")
set_tests_properties(tool.run_flag PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool.stencil "/root/repo/build/examples/mvec_tool" "--validate" "/root/repo/examples/matlab/stencil.m")
set_tests_properties(tool.stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;39;add_test;/root/repo/examples/CMakeLists.txt;0;")
