file(REMOVE_RECURSE
  "CMakeFiles/PatternTest.dir/PatternTest.cpp.o"
  "CMakeFiles/PatternTest.dir/PatternTest.cpp.o.d"
  "PatternTest"
  "PatternTest.pdb"
  "PatternTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PatternTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
