# Empty compiler generated dependencies file for PatternTest.
# This may be replaced when dependencies are built.
