file(REMOVE_RECURSE
  "CMakeFiles/SimplifyTest.dir/SimplifyTest.cpp.o"
  "CMakeFiles/SimplifyTest.dir/SimplifyTest.cpp.o.d"
  "SimplifyTest"
  "SimplifyTest.pdb"
  "SimplifyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SimplifyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
