# Empty compiler generated dependencies file for SimplifyTest.
# This may be replaced when dependencies are built.
