file(REMOVE_RECURSE
  "CMakeFiles/DimTest.dir/DimTest.cpp.o"
  "CMakeFiles/DimTest.dir/DimTest.cpp.o.d"
  "DimTest"
  "DimTest.pdb"
  "DimTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DimTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
