# Empty dependencies file for DimTest.
# This may be replaced when dependencies are built.
