# Empty dependencies file for DimCheckerTest.
# This may be replaced when dependencies are built.
