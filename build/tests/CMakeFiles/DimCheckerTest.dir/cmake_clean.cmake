file(REMOVE_RECURSE
  "CMakeFiles/DimCheckerTest.dir/DimCheckerTest.cpp.o"
  "CMakeFiles/DimCheckerTest.dir/DimCheckerTest.cpp.o.d"
  "DimCheckerTest"
  "DimCheckerTest.pdb"
  "DimCheckerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DimCheckerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
