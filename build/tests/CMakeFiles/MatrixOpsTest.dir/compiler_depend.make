# Empty compiler generated dependencies file for MatrixOpsTest.
# This may be replaced when dependencies are built.
