file(REMOVE_RECURSE
  "CMakeFiles/MatrixOpsTest.dir/MatrixOpsTest.cpp.o"
  "CMakeFiles/MatrixOpsTest.dir/MatrixOpsTest.cpp.o.d"
  "MatrixOpsTest"
  "MatrixOpsTest.pdb"
  "MatrixOpsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MatrixOpsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
