
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/DepsTest.cpp" "tests/CMakeFiles/DepsTest.dir/DepsTest.cpp.o" "gcc" "tests/CMakeFiles/DepsTest.dir/DepsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/mvec_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/mvec_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mvec_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mvec_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
