file(REMOVE_RECURSE
  "CMakeFiles/DepsTest.dir/DepsTest.cpp.o"
  "CMakeFiles/DepsTest.dir/DepsTest.cpp.o.d"
  "DepsTest"
  "DepsTest.pdb"
  "DepsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DepsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
