# Empty compiler generated dependencies file for DepsTest.
# This may be replaced when dependencies are built.
