file(REMOVE_RECURSE
  "CMakeFiles/VectorizerTest.dir/VectorizerTest.cpp.o"
  "CMakeFiles/VectorizerTest.dir/VectorizerTest.cpp.o.d"
  "VectorizerTest"
  "VectorizerTest.pdb"
  "VectorizerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/VectorizerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
