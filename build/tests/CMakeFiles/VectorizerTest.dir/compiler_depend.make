# Empty compiler generated dependencies file for VectorizerTest.
# This may be replaced when dependencies are built.
