# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/LexerTest[1]_include.cmake")
include("/root/repo/build/tests/ParserTest[1]_include.cmake")
include("/root/repo/build/tests/DimTest[1]_include.cmake")
include("/root/repo/build/tests/InterpreterTest[1]_include.cmake")
include("/root/repo/build/tests/DepsTest[1]_include.cmake")
include("/root/repo/build/tests/VectorizerTest[1]_include.cmake")
include("/root/repo/build/tests/PatternTest[1]_include.cmake")
include("/root/repo/build/tests/DimCheckerTest[1]_include.cmake")
include("/root/repo/build/tests/MatrixOpsTest[1]_include.cmake")
include("/root/repo/build/tests/SimplifyTest[1]_include.cmake")
include("/root/repo/build/tests/PropertyTest[1]_include.cmake")
include("/root/repo/build/tests/PipelineTest[1]_include.cmake")
