file(REMOVE_RECURSE
  "CMakeFiles/mvec_deps.dir/AffineExpr.cpp.o"
  "CMakeFiles/mvec_deps.dir/AffineExpr.cpp.o.d"
  "CMakeFiles/mvec_deps.dir/DepAnalysis.cpp.o"
  "CMakeFiles/mvec_deps.dir/DepAnalysis.cpp.o.d"
  "CMakeFiles/mvec_deps.dir/DepGraph.cpp.o"
  "CMakeFiles/mvec_deps.dir/DepGraph.cpp.o.d"
  "CMakeFiles/mvec_deps.dir/LoopNest.cpp.o"
  "CMakeFiles/mvec_deps.dir/LoopNest.cpp.o.d"
  "libmvec_deps.a"
  "libmvec_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
