file(REMOVE_RECURSE
  "libmvec_deps.a"
)
