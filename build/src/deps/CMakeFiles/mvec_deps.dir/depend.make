# Empty dependencies file for mvec_deps.
# This may be replaced when dependencies are built.
