# Empty dependencies file for mvec_vectorizer.
# This may be replaced when dependencies are built.
