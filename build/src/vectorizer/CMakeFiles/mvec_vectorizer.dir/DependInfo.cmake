
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vectorizer/Codegen.cpp" "src/vectorizer/CMakeFiles/mvec_vectorizer.dir/Codegen.cpp.o" "gcc" "src/vectorizer/CMakeFiles/mvec_vectorizer.dir/Codegen.cpp.o.d"
  "/root/repo/src/vectorizer/DimChecker.cpp" "src/vectorizer/CMakeFiles/mvec_vectorizer.dir/DimChecker.cpp.o" "gcc" "src/vectorizer/CMakeFiles/mvec_vectorizer.dir/DimChecker.cpp.o.d"
  "/root/repo/src/vectorizer/Vectorizer.cpp" "src/vectorizer/CMakeFiles/mvec_vectorizer.dir/Vectorizer.cpp.o" "gcc" "src/vectorizer/CMakeFiles/mvec_vectorizer.dir/Vectorizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/patterns/CMakeFiles/mvec_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/mvec_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/mvec_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mvec_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mvec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mvec_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
