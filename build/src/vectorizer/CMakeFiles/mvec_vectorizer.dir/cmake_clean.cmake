file(REMOVE_RECURSE
  "CMakeFiles/mvec_vectorizer.dir/Codegen.cpp.o"
  "CMakeFiles/mvec_vectorizer.dir/Codegen.cpp.o.d"
  "CMakeFiles/mvec_vectorizer.dir/DimChecker.cpp.o"
  "CMakeFiles/mvec_vectorizer.dir/DimChecker.cpp.o.d"
  "CMakeFiles/mvec_vectorizer.dir/Vectorizer.cpp.o"
  "CMakeFiles/mvec_vectorizer.dir/Vectorizer.cpp.o.d"
  "libmvec_vectorizer.a"
  "libmvec_vectorizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_vectorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
