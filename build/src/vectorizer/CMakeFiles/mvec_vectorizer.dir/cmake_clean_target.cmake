file(REMOVE_RECURSE
  "libmvec_vectorizer.a"
)
