file(REMOVE_RECURSE
  "libmvec_driver.a"
)
