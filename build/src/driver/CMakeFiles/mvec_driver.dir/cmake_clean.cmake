file(REMOVE_RECURSE
  "CMakeFiles/mvec_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/mvec_driver.dir/Pipeline.cpp.o.d"
  "libmvec_driver.a"
  "libmvec_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
