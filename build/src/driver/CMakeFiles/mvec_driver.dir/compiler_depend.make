# Empty compiler generated dependencies file for mvec_driver.
# This may be replaced when dependencies are built.
