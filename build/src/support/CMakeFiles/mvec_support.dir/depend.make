# Empty dependencies file for mvec_support.
# This may be replaced when dependencies are built.
