file(REMOVE_RECURSE
  "CMakeFiles/mvec_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/mvec_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/mvec_support.dir/StringExtras.cpp.o"
  "CMakeFiles/mvec_support.dir/StringExtras.cpp.o.d"
  "libmvec_support.a"
  "libmvec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
