file(REMOVE_RECURSE
  "libmvec_support.a"
)
