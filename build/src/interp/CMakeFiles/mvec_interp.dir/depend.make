# Empty dependencies file for mvec_interp.
# This may be replaced when dependencies are built.
