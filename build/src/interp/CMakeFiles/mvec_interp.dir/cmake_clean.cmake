file(REMOVE_RECURSE
  "CMakeFiles/mvec_interp.dir/Builtins.cpp.o"
  "CMakeFiles/mvec_interp.dir/Builtins.cpp.o.d"
  "CMakeFiles/mvec_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/mvec_interp.dir/Interpreter.cpp.o.d"
  "CMakeFiles/mvec_interp.dir/MatrixOps.cpp.o"
  "CMakeFiles/mvec_interp.dir/MatrixOps.cpp.o.d"
  "CMakeFiles/mvec_interp.dir/Value.cpp.o"
  "CMakeFiles/mvec_interp.dir/Value.cpp.o.d"
  "libmvec_interp.a"
  "libmvec_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
