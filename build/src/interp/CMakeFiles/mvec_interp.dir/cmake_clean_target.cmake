file(REMOVE_RECURSE
  "libmvec_interp.a"
)
