file(REMOVE_RECURSE
  "CMakeFiles/mvec_shape.dir/AnnotationParser.cpp.o"
  "CMakeFiles/mvec_shape.dir/AnnotationParser.cpp.o.d"
  "CMakeFiles/mvec_shape.dir/Dim.cpp.o"
  "CMakeFiles/mvec_shape.dir/Dim.cpp.o.d"
  "CMakeFiles/mvec_shape.dir/ShapeEnv.cpp.o"
  "CMakeFiles/mvec_shape.dir/ShapeEnv.cpp.o.d"
  "CMakeFiles/mvec_shape.dir/ShapeInference.cpp.o"
  "CMakeFiles/mvec_shape.dir/ShapeInference.cpp.o.d"
  "libmvec_shape.a"
  "libmvec_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
