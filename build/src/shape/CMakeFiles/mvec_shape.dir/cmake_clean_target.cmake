file(REMOVE_RECURSE
  "libmvec_shape.a"
)
