
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shape/AnnotationParser.cpp" "src/shape/CMakeFiles/mvec_shape.dir/AnnotationParser.cpp.o" "gcc" "src/shape/CMakeFiles/mvec_shape.dir/AnnotationParser.cpp.o.d"
  "/root/repo/src/shape/Dim.cpp" "src/shape/CMakeFiles/mvec_shape.dir/Dim.cpp.o" "gcc" "src/shape/CMakeFiles/mvec_shape.dir/Dim.cpp.o.d"
  "/root/repo/src/shape/ShapeEnv.cpp" "src/shape/CMakeFiles/mvec_shape.dir/ShapeEnv.cpp.o" "gcc" "src/shape/CMakeFiles/mvec_shape.dir/ShapeEnv.cpp.o.d"
  "/root/repo/src/shape/ShapeInference.cpp" "src/shape/CMakeFiles/mvec_shape.dir/ShapeInference.cpp.o" "gcc" "src/shape/CMakeFiles/mvec_shape.dir/ShapeInference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/mvec_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
