# Empty dependencies file for mvec_shape.
# This may be replaced when dependencies are built.
