file(REMOVE_RECURSE
  "libmvec_patterns.a"
)
