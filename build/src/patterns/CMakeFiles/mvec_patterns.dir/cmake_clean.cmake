file(REMOVE_RECURSE
  "CMakeFiles/mvec_patterns.dir/BuiltinPatterns.cpp.o"
  "CMakeFiles/mvec_patterns.dir/BuiltinPatterns.cpp.o.d"
  "CMakeFiles/mvec_patterns.dir/Pattern.cpp.o"
  "CMakeFiles/mvec_patterns.dir/Pattern.cpp.o.d"
  "CMakeFiles/mvec_patterns.dir/PatternDatabase.cpp.o"
  "CMakeFiles/mvec_patterns.dir/PatternDatabase.cpp.o.d"
  "CMakeFiles/mvec_patterns.dir/PluginAPI.cpp.o"
  "CMakeFiles/mvec_patterns.dir/PluginAPI.cpp.o.d"
  "libmvec_patterns.a"
  "libmvec_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
