# Empty dependencies file for mvec_patterns.
# This may be replaced when dependencies are built.
