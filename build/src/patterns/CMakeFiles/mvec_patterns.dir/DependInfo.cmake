
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/patterns/BuiltinPatterns.cpp" "src/patterns/CMakeFiles/mvec_patterns.dir/BuiltinPatterns.cpp.o" "gcc" "src/patterns/CMakeFiles/mvec_patterns.dir/BuiltinPatterns.cpp.o.d"
  "/root/repo/src/patterns/Pattern.cpp" "src/patterns/CMakeFiles/mvec_patterns.dir/Pattern.cpp.o" "gcc" "src/patterns/CMakeFiles/mvec_patterns.dir/Pattern.cpp.o.d"
  "/root/repo/src/patterns/PatternDatabase.cpp" "src/patterns/CMakeFiles/mvec_patterns.dir/PatternDatabase.cpp.o" "gcc" "src/patterns/CMakeFiles/mvec_patterns.dir/PatternDatabase.cpp.o.d"
  "/root/repo/src/patterns/PluginAPI.cpp" "src/patterns/CMakeFiles/mvec_patterns.dir/PluginAPI.cpp.o" "gcc" "src/patterns/CMakeFiles/mvec_patterns.dir/PluginAPI.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/mvec_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/mvec_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mvec_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mvec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mvec_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
