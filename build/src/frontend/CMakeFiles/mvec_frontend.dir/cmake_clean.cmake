file(REMOVE_RECURSE
  "CMakeFiles/mvec_frontend.dir/AST.cpp.o"
  "CMakeFiles/mvec_frontend.dir/AST.cpp.o.d"
  "CMakeFiles/mvec_frontend.dir/ASTPrinter.cpp.o"
  "CMakeFiles/mvec_frontend.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/mvec_frontend.dir/ASTUtils.cpp.o"
  "CMakeFiles/mvec_frontend.dir/ASTUtils.cpp.o.d"
  "CMakeFiles/mvec_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/mvec_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/mvec_frontend.dir/Parser.cpp.o"
  "CMakeFiles/mvec_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/mvec_frontend.dir/Simplify.cpp.o"
  "CMakeFiles/mvec_frontend.dir/Simplify.cpp.o.d"
  "libmvec_frontend.a"
  "libmvec_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvec_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
