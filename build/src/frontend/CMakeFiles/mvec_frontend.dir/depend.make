# Empty dependencies file for mvec_frontend.
# This may be replaced when dependencies are built.
