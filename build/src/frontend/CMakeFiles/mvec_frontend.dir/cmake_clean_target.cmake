file(REMOVE_RECURSE
  "libmvec_frontend.a"
)
