//===- table2_patterns.cpp - Paper Table 2: the pattern database ------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the three pattern-based transformations of the paper's
/// Table 2 (dot product -> sum, broadcast -> repmat, diagonal access ->
/// linear indexing). Table 2 itself reports no timings — it defines the
/// transformations — so this harness verifies each generated form and
/// times loop vs. vector code across problem sizes to show each pattern
/// pays off.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

using namespace mvecbench;

namespace {

/// Pattern 1: a(i) = X(i,:)*Y(:,i).
Workload pattern1(int N) {
  Workload W;
  W.Name = "table2/pattern1-dot-product";
  W.Setup = "%! X(*,*) Y(*,*) a(1,*) n(1)\n"
            "n = " + std::to_string(N) + ";\n"
            "X = rand(n,n);\nY = rand(n,n);\na = zeros(1,n);\n";
  W.Kernel = "for i=1:n\n  a(i) = X(i,:)*Y(:,i);\nend\n";
  return W;
}

/// Pattern 2: A(i,j) = B(i,j) + C(i).
Workload pattern2(int N) {
  Workload W;
  W.Name = "table2/pattern2-repmat";
  W.Setup = "%! A(*,*) B(*,*) C(*,1) m(1) n(1)\n"
            "m = " + std::to_string(N) + "; n = " + std::to_string(N) + ";\n"
            "B = rand(m,n);\nC = rand(m,1);\nA = zeros(m,n);\n";
  W.Kernel = "for i=1:m\n for j=1:n\n  A(i,j) = B(i,j)+C(i);\n end\nend\n";
  return W;
}

/// Pattern 3: a(i) = A(i,i)*b(i).
Workload pattern3(int N) {
  Workload W;
  W.Name = "table2/pattern3-diagonal";
  W.Setup = "%! A(*,*) b(1,*) a(1,*) n(1)\n"
            "n = " + std::to_string(N) + ";\n"
            "A = rand(n,n);\nb = rand(1,n);\na = zeros(1,n);\n";
  W.Kernel = "for i=1:n\n  a(i) = A(i,i)*b(i);\nend\n";
  return W;
}

enum PatternId { Pat1, Pat2, Pat3 };

const PreparedWorkload &prepared(PatternId Id, int Size) {
  static std::map<std::pair<int, int>, std::unique_ptr<PreparedWorkload>>
      Cache;
  auto &Slot = Cache[{Id, Size}];
  if (!Slot) {
    switch (Id) {
    case Pat1:
      Slot = std::make_unique<PreparedWorkload>(pattern1(Size));
      break;
    case Pat2:
      Slot = std::make_unique<PreparedWorkload>(pattern2(Size));
      break;
    case Pat3:
      Slot = std::make_unique<PreparedWorkload>(pattern3(Size));
      break;
    }
  }
  return *Slot;
}

template <PatternId Id> void BM_Loop(benchmark::State &State) {
  const PreparedWorkload &P = prepared(Id, static_cast<int>(State.range(0)));
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runOriginalKernel(Workspace);
}

template <PatternId Id> void BM_Vectorized(benchmark::State &State) {
  const PreparedWorkload &P = prepared(Id, static_cast<int>(State.range(0)));
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runVectorizedKernel(Workspace);
}

BENCHMARK_TEMPLATE(BM_Loop, Pat1)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Vectorized, Pat1)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Loop, Pat2)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Vectorized, Pat2)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Loop, Pat3)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Vectorized, Pat3)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void printRow(PatternId Id, const char *Label, const char *ExpectedForm,
              int Size) {
  const PreparedWorkload &P = prepared(Id, Size);
  if (P.VectorizedSource.find(ExpectedForm) == std::string::npos) {
    std::fprintf(stderr, "pattern output missing '%s' in:\n%s\n",
                 ExpectedForm, P.VectorizedSource.c_str());
    std::abort();
  }
  Interpreter Ws = P.makeSetupWorkspace();
  double In = timeSeconds([&] { P.runOriginalKernel(Ws); }, 2);
  double Vect = timeSeconds([&] { P.runVectorizedKernel(Ws); }, 2);
  printPaperRow(Label, In, Vect, "-", "-", "-");
}

void printPaperSection() {
  printPaperHeader("Paper Table 2: pattern database (n=600; the paper "
                   "reports transformations, not timings)");
  printRow(Pat1, "pattern 1: dot product", "sum(X(1:n,:)'.*Y(:,1:n),1)",
           600);
  printRow(Pat2, "pattern 2: repmat broadcast",
           "repmat(C(1:m),1,size(1:n,2))", 600);
  printRow(Pat3, "pattern 3: diagonal access", "size(A,1)", 600);
  std::printf("\ngenerated vector code:\n");
  for (PatternId Id : {Pat1, Pat2, Pat3}) {
    const PreparedWorkload &P = prepared(Id, 600);
    std::string Tail = P.VectorizedSource;
    size_t Pos = Tail.rfind("a(1:n)=");
    if (Pos == std::string::npos)
      Pos = Tail.rfind("A(1:m");
    std::printf("  %s", Tail.substr(Pos).c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  printPaperSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
