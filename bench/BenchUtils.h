//===- BenchUtils.h - Shared benchmark harness ------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the paper-reproduction benchmarks. Each benchmark
/// binary prints a "paper table" section first — the same rows the paper's
/// evaluation reports (input time, vectorized time, speedup), measured on
/// the simulated MATLAB environment — then runs google-benchmark timings
/// on scaled-down versions of the same kernels.
///
/// Absolute numbers differ from the paper (MATLAB 7.2 on a Pentium D vs.
/// our interpreter); the reproduced quantity is the *shape*: vectorized
/// code wins, and the factor grows with problem size / nest depth.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_BENCH_BENCHUTILS_H
#define MVEC_BENCH_BENCHUTILS_H

#include "driver/Pipeline.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace mvecbench {

using namespace mvec;

/// A workload split into setup code (untimed) and a kernel (timed).
struct Workload {
  std::string Name;
  std::string Setup;  ///< includes %! annotations used by the vectorizer
  std::string Kernel; ///< the loop nest the paper times
};

/// Parsed and vectorized form of a workload, ready to execute.
class PreparedWorkload {
public:
  /// Parses and vectorizes; aborts with a message on failure (benchmarks
  /// must not run on broken transformations).
  explicit PreparedWorkload(const Workload &W) : Name(W.Name) {
    DiagnosticEngine Diags;
    OriginalSetup = parseMatlab(W.Setup, Diags);
    OriginalKernel = parseMatlab(W.Kernel, Diags);
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "benchmark '%s' does not parse:\n%s", Name.c_str(),
                   Diags.str().c_str());
      std::abort();
    }
    PipelineResult R = vectorizeSource(W.Setup + W.Kernel);
    if (!R.succeeded() || R.Stats.StmtsVectorized == 0) {
      std::fprintf(stderr,
                   "benchmark '%s': vectorization failed or was a no-op\n%s",
                   Name.c_str(), R.Diags.str().c_str());
      std::abort();
    }
    VectorizedSource = R.VectorizedSource;
    // Validate semantic equivalence once, up front.
    std::string Diff = diffRun(W.Setup + W.Kernel, VectorizedSource);
    if (!Diff.empty()) {
      std::fprintf(stderr, "benchmark '%s': semantic divergence: %s\n",
                   Name.c_str(), Diff.c_str());
      std::abort();
    }
    // The vectorized program re-renders setup + kernel; split the kernel
    // off by re-vectorizing the kernel alone in a setup-aware way is
    // fragile, so instead prepare two full programs and time kernels by
    // subtracting prepared workspaces (see below). Simpler: vectorize the
    // kernel against an annotated setup by keeping the annotations in the
    // setup text — the vectorized full program is re-split by running
    // setup first and the whole programs for "whole" timings.
    DiagnosticEngine D2;
    VectorizedFull = parseMatlab(VectorizedSource, D2);
    if (D2.hasErrors()) {
      std::fprintf(stderr, "benchmark '%s': vectorized source reparse:\n%s",
                   Name.c_str(), D2.str().c_str());
      std::abort();
    }
    // Kernel-only vectorized program: vectorize setup+kernel but execute
    // against a pre-run setup workspace. We recover the kernel statements
    // as the tail of the vectorized program: statements produced from the
    // setup prefix are identical in count to the setup program.
    KernelStart = OriginalSetup.Prog.Stmts.size();
  }

  /// Fresh interpreter with the setup already executed.
  Interpreter makeSetupWorkspace(uint64_t Seed = 42) const {
    Interpreter I;
    I.seedRandom(Seed);
    if (!I.run(OriginalSetup.Prog)) {
      std::fprintf(stderr, "benchmark '%s': setup failed: %s\n", Name.c_str(),
                   I.errorMessage().c_str());
      std::abort();
    }
    return I;
  }

  /// Executes the original loop kernel in \p Workspace. Kernels are
  /// idempotent w.r.t. their inputs, so repeated in-place runs (as the
  /// paper's own 100-run averaging does) measure only the kernel.
  void runOriginalKernel(Interpreter &Workspace) const {
    if (!Workspace.run(OriginalKernel.Prog)) {
      std::fprintf(stderr, "benchmark '%s': kernel failed: %s\n",
                   Name.c_str(), Workspace.errorMessage().c_str());
      std::abort();
    }
  }

  /// Executes the vectorized kernel statements in \p Workspace.
  void runVectorizedKernel(Interpreter &Workspace) const {
    if (!Workspace.run(vectorizedTail())) {
      std::fprintf(stderr, "benchmark '%s': vectorized kernel failed: %s\n",
                   Name.c_str(), Workspace.errorMessage().c_str());
      std::abort();
    }
  }

  /// The vectorized statements corresponding to the kernel.
  const Program &vectorizedTail() const {
    if (Tail.Stmts.empty())
      for (size_t S = KernelStart; S < VectorizedFull.Prog.Stmts.size(); ++S)
        Tail.Stmts.push_back(VectorizedFull.Prog.Stmts[S]->clone());
    return Tail;
  }

  std::string Name;
  ParseResult OriginalSetup;
  ParseResult OriginalKernel;
  ParseResult VectorizedFull;
  std::string VectorizedSource;
  size_t KernelStart = 0;

private:
  mutable Program Tail;
};

/// Times \p Fn (seconds, best of \p Reps).
template <typename Fn> double timeSeconds(Fn &&F, int Reps = 3) {
  double Best = 1e300;
  for (int R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    F();
    auto End = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    if (Secs < Best)
      Best = Secs;
  }
  return Best;
}

/// Prints one paper-table row: measured input/vectorized/speedup plus the
/// paper's reported numbers for side-by-side comparison.
inline void printPaperRow(const std::string &Label, double InputSecs,
                          double VectSecs, const char *PaperInput,
                          const char *PaperVect, const char *PaperSpeedup) {
  std::printf("%-34s %10.4fs %10.4fs %9.1fx | paper: %8s %8s %8s\n",
              Label.c_str(), InputSecs, VectSecs,
              VectSecs > 0 ? InputSecs / VectSecs : 0.0, PaperInput,
              PaperVect, PaperSpeedup);
}

inline void printPaperHeader(const char *Title) {
  std::printf("\n=== %s ===\n", Title);
  std::printf("%-34s %11s %11s %10s | %s\n", "workload", "input", "vect.",
              "speedup", "paper (input, vect., speedup)");
}

} // namespace mvecbench

#endif // MVEC_BENCH_BENCHUTILS_H
