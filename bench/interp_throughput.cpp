//===- interp_throughput.cpp - Interpreter execution-engine throughput -----===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the raw execution engine — parse once, run many times — on the
/// three workload shapes every other subsystem funnels into it:
///
///   scalar-loop:  scalar-heavy loop nests (the fuzz generator's staple),
///                 dominated by variable resolution + statement dispatch.
///   matrix-kernel: vectorized statements (elementwise chains, matmul),
///                 dominated by MatrixOps kernels and temporaries.
///   accumulator:  A(i) = ... append loops that grow a vector element by
///                 element, dominated by Value::growTo reallocation.
///
/// Emits BENCH_interp.json with scripts/sec and ns per executed statement.
/// The "baseline" numbers in the JSON were measured with this same binary
/// against the pre-engine interpreter (string-keyed std::map workspace,
/// deep-copying Value, per-call builtin string dispatch) on the same
/// machine class, so the speedup column tracks the engine rewrite itself.
///
/// Usage: interp_throughput [output.json] [--quick]
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "interp/simd/SimdDispatch.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace mvec;

namespace {

struct WorkloadSpec {
  const char *Name;
  const char *Source;
  /// scripts/sec measured at the seed commit (pre-engine interpreter),
  /// Release build. Recorded so the JSON always carries before/after.
  double BaselineScriptsPerSec;
};

// Sources mirror what the fuzz generator and the paper benchmarks feed the
// interpreter. Kept small enough that one run is microseconds; the harness
// loops them for a fixed wall-time budget.
const WorkloadSpec Workloads[] = {
    {"scalar_loop",
     "s = 0;\n"
     "t = 1;\n"
     "for i = 1:120\n"
     "  a = i * 2 + 1;\n"
     "  b = a - i / 3;\n"
     "  if mod(i, 3) == 0\n"
     "    s = s + a * b;\n"
     "  else\n"
     "    s = s - b;\n"
     "  end\n"
     "  t = t + s * 0.001;\n"
     "end\n",
     /*BaselineScriptsPerSec=*/8008.0},
    {"matrix_kernel",
     "A = rand(48, 48);\n"
     "B = rand(48, 48);\n"
     "C = A .* B + A;\n"
     "D = C * B;\n"
     "e = sum(sum(D));\n"
     "F = 2 * A + B;\n"
     "g = sum(F(:));\n",
     /*BaselineScriptsPerSec=*/11654.0},
    {"accumulator",
     "n = 400;\n"
     "for i = 1:n\n"
     "  A(i) = i * 0.5;\n"
     "end\n"
     "s = sum(A);\n",
     /*BaselineScriptsPerSec=*/4523.0},
};

struct Sample {
  std::string Name;
  double ScriptsPerSec = 0;
  double NsPerStmt = 0;
  double Baseline = 0;
  uint64_t Runs = 0;
};

Sample runWorkload(const WorkloadSpec &Spec, double BudgetSecs) {
  DiagnosticEngine Diags;
  ParseResult Parsed = parseMatlab(Spec.Source, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "workload '%s' does not parse:\n%s", Spec.Name,
                 Diags.str().c_str());
    std::exit(1);
  }

  // Warm up once (also validates the program runs).
  {
    Interpreter I;
    I.seedRandom(42);
    if (!I.run(Parsed.Prog)) {
      std::fprintf(stderr, "workload '%s' failed: %s\n", Spec.Name,
                   I.errorMessage().c_str());
      std::exit(1);
    }
  }

  uint64_t Runs = 0, Stmts = 0;
  auto Start = std::chrono::steady_clock::now();
  double Elapsed = 0;
  while (Elapsed < BudgetSecs) {
    // A fresh interpreter per run is the service/fuzz usage pattern: each
    // job executes in a clean workspace.
    for (int Rep = 0; Rep != 16; ++Rep) {
      Interpreter I;
      I.seedRandom(42);
      if (!I.run(Parsed.Prog)) {
        std::fprintf(stderr, "workload '%s' failed mid-benchmark: %s\n",
                     Spec.Name, I.errorMessage().c_str());
        std::exit(1);
      }
      Stmts += I.stepsExecuted();
      ++Runs;
    }
    Elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  }

  Sample S;
  S.Name = Spec.Name;
  S.Runs = Runs;
  S.ScriptsPerSec = static_cast<double>(Runs) / Elapsed;
  S.NsPerStmt = Elapsed * 1e9 / static_cast<double>(Stmts);
  S.Baseline = Spec.BaselineScriptsPerSec;
  return S;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_interp.json";
  double BudgetSecs = 1.5;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      BudgetSecs = 0.2; // CI smoke: just prove it runs and emits valid JSON
    else if (mvec::simd::handleSimdFlag(argc, argv, I)) {
      // kernel dispatch configured (exits with status 2 on a bad level)
    } else
      OutPath = argv[I];
  }

  std::printf("interp_throughput: %.1fs budget per workload, simd=%s\n\n",
              BudgetSecs, mvec::simd::levelName(mvec::simd::activeLevel()));
  std::printf("%-16s %14s %12s %16s %10s\n", "workload", "scripts/sec",
              "ns/stmt", "baseline (seed)", "speedup");

  std::vector<Sample> Samples;
  for (const WorkloadSpec &Spec : Workloads) {
    Sample S = runWorkload(Spec, BudgetSecs);
    double Speedup = S.Baseline > 0 ? S.ScriptsPerSec / S.Baseline : 0.0;
    std::printf("%-16s %14.0f %12.1f %16.0f %9.2fx\n", S.Name.c_str(),
                S.ScriptsPerSec, S.NsPerStmt, S.Baseline, Speedup);
    Samples.push_back(std::move(S));
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n  \"benchmark\": \"interp_throughput\",\n  \"simd\": \""
      << mvec::simd::levelName(mvec::simd::activeLevel())
      << "\",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Samples.size(); ++I) {
    const Sample &S = Samples[I];
    double Speedup = S.Baseline > 0 ? S.ScriptsPerSec / S.Baseline : 0.0;
    Out << "    {\"name\": \"" << S.Name << "\", \"scripts_per_sec\": "
        << S.ScriptsPerSec << ", \"ns_per_stmt\": " << S.NsPerStmt
        << ", \"baseline_scripts_per_sec\": " << S.Baseline
        << ", \"speedup_vs_baseline\": " << Speedup << "}"
        << (I + 1 == sizeof(Workloads) / sizeof(Workloads[0]) ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
  std::printf("\nwrote %s\n", OutPath.c_str());
  return 0;
}
