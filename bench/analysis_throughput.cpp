//===- analysis_throughput.cpp - Vectorizer compile-time --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the analysis stages themselves (the cost of running
/// the tool, not the generated code): lexing+parsing, dependence-graph
/// construction and full vectorization, over the paper corpus and over a
/// synthetically enlarged program. Validates the paper's implicit claim
/// that the dimension abstraction is cheap enough for source-to-source
/// use.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "Corpus.h"

#include "deps/DepAnalysis.h"
#include "deps/LoopNest.h"
#include "shape/AnnotationParser.h"
#include "vectorizer/NestCache.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <vector>

using namespace mvecbench;

namespace {

/// A synthetic program with \p NumLoops independent vectorizable nests.
std::string syntheticProgram(int NumLoops) {
  std::string Source = "n = 16;\nx = rand(1,n); y = rand(1,n);\n"
                       "%! x(1,*) y(1,*)\n";
  for (int I = 0; I != NumLoops; ++I) {
    std::string Z = "z" + std::to_string(I);
    Source += "%! " + Z + "(1,*)\n";
    Source += Z + " = zeros(1,n);\n";
    Source += "for i=1:n\n  " + Z + "(i) = " + std::to_string(I + 1) +
              "*x(i)+y(i);\nend\n";
  }
  return Source;
}

void BM_ParseCorpus(benchmark::State &State) {
  auto Corpus = paperCorpus();
  for (auto _ : State) {
    for (const CorpusProgram &P : Corpus) {
      DiagnosticEngine Diags;
      ParseResult R = parseMatlab(P.Source, Diags);
      benchmark::DoNotOptimize(R.Prog.Stmts.size());
    }
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}

void BM_DependenceAnalysis(benchmark::State &State) {
  // Fig. 4's two-statement nest: the densest dependence problem in the
  // corpus.
  auto Corpus = paperCorpus();
  const CorpusProgram *Fig4 = nullptr;
  for (const CorpusProgram &P : Corpus)
    if (P.Name == "fig4-compound")
      Fig4 = &P;
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Fig4->Source, Diags);
  ShapeEnv Env = parseShapeAnnotations(R.Annotations, Diags);
  ForStmt *Root = nullptr;
  for (StmtPtr &S : R.Prog.Stmts)
    if (auto *For = dyn_cast<ForStmt>(S.get()))
      Root = For;
  for (auto _ : State) {
    std::string Reason;
    auto Nest = buildLoopNest(*Root, Reason);
    DepGraph G = buildDepGraph(*Nest, Env);
    benchmark::DoNotOptimize(G.Edges.size());
  }
}

void BM_FullVectorization(benchmark::State &State) {
  auto Corpus = paperCorpus();
  for (auto _ : State) {
    for (const CorpusProgram &P : Corpus) {
      PipelineResult R = vectorizeSource(P.Source);
      benchmark::DoNotOptimize(R.VectorizedSource.size());
    }
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}

void BM_VectorizeSynthetic(benchmark::State &State) {
  std::string Source = syntheticProgram(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    PipelineResult R = vectorizeSource(Source);
    benchmark::DoNotOptimize(R.Stats.StmtsVectorized);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

BENCHMARK(BM_ParseCorpus)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DependenceAnalysis)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullVectorization)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VectorizeSynthetic)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

/// Pre-PR cold-path reference times (commit 872262b), medians of
/// interleaved A/B runs against that commit's binary on the recording
/// host. The JSON reports current/baseline speedups against these; they
/// are only comparable across hosts (and across this host's frequency /
/// scheduling drift, which exceeds 30% run-to-run) after scaling by the
/// calibration probe below, so the JSON carries every raw piece rather
/// than hiding a ratio.
constexpr double BaselineSynthetic200Ms = 7.4;
constexpr double BaselineCorpusPassMs = 0.80;
/// calibrationSeconds() on the recording host, captured in the same
/// window as the baseline medians above.
constexpr double BaselineCalibrationMs = 49.2;

/// Fixed pure-arithmetic workload timing the host's current effective
/// speed. The ratio against BaselineCalibrationMs rescales the recorded
/// baseline times to "this run's" host speed, cancelling frequency and
/// scheduling drift out of the speedup computation.
double calibrationSeconds() {
  return timeSeconds([] {
    double Y = 1.0;
    for (int I = 0; I != 20000000; ++I)
      Y = Y * 1.000000001 + 1e-9;
    benchmark::DoNotOptimize(Y);
  }, 5);
}

/// Batch of \p Count scripts with unique source text (no whole-script
/// dedup possible) all sharing the same loop nests, modeling service
/// traffic where many submissions contain the same hot kernels.
std::vector<std::string> sharedNestBatch(int Count) {
  std::vector<std::string> Batch;
  std::string Common = syntheticProgram(8);
  for (int I = 0; I != Count; ++I)
    Batch.push_back("% submission " + std::to_string(I) + "\n" + Common);
  return Batch;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_analysis.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
      // Hide the flag from google-benchmark's argument parsing.
      for (int J = I; J + 1 < argc; ++J)
        argv[J] = argv[J + 1];
      --argc;
      --I;
    } else if (argv[I][0] != '-') {
      OutPath = argv[I];
    }
  }

  std::printf("\n=== Analysis throughput (tool compile time; not a paper "
              "table — supports Sec. 4's feasibility claim) ===\n");
  auto Corpus = paperCorpus();
  double CorpusSecs = timeSeconds([&Corpus] {
    for (const CorpusProgram &P : Corpus)
      vectorizeSource(P.Source);
  });
  std::printf("full pipeline over %zu corpus programs: %.2f ms\n",
              Corpus.size(), CorpusSecs * 1e3);

  std::string Synthetic = syntheticProgram(200);
  // One warmup call (page-in, allocator steady state), then best-of-9:
  // single cold calls on a shared host jitter by 10-20%, and the JSON's
  // baseline comparison needs the stable floor, not one noisy sample.
  vectorizeSource(Synthetic);
  double SyntheticSecs = timeSeconds([&Synthetic] {
    PipelineResult R = vectorizeSource(Synthetic);
    benchmark::DoNotOptimize(R.Stats.StmtsVectorized);
  }, 9);
  std::printf("synthetic 200-nest script, cold: %.2f ms\n",
              SyntheticSecs * 1e3);

  // Nest-cache value proposition: a batch of distinct scripts sharing
  // their loop nests, compiled cold vs. through one shared NestCache.
  constexpr int BatchSize = 32;
  std::vector<std::string> Batch = sharedNestBatch(BatchSize);
  double BatchColdSecs = timeSeconds([&Batch] {
    for (const std::string &S : Batch)
      benchmark::DoNotOptimize(vectorizeSource(S).Stats.StmtsVectorized);
  }, 5);
  NestCache Cache(256);
  vectorizeSource(Batch.front(), {}, nullptr, &Cache); // prime
  double BatchWarmSecs = timeSeconds([&Batch, &Cache] {
    for (const std::string &S : Batch)
      benchmark::DoNotOptimize(
          vectorizeSource(S, {}, nullptr, &Cache).Stats.StmtsVectorized);
  }, 5);
  double WarmSpeedup = BatchWarmSecs > 0 ? BatchColdSecs / BatchWarmSecs : 0;
  std::printf("shared-nest batch of %d scripts: cold %.2f ms, nest-cache "
              "warm %.2f ms (%.2fx, %llu hits)\n",
              BatchSize, BatchColdSecs * 1e3, BatchWarmSecs * 1e3,
              WarmSpeedup,
              static_cast<unsigned long long>(Cache.hits()));

  double CalibMs = calibrationSeconds() * 1e3;
  // Rescale the recorded baseline to this run's host speed before
  // comparing; see BaselineCalibrationMs.
  double HostScale = CalibMs / BaselineCalibrationMs;
  double SpeedupSynthetic =
      SyntheticSecs > 0
          ? BaselineSynthetic200Ms * HostScale / (SyntheticSecs * 1e3)
          : 0;
  double SpeedupCorpus =
      CorpusSecs > 0 ? BaselineCorpusPassMs * HostScale / (CorpusSecs * 1e3)
                     : 0;
  std::printf("host calibration: %.1f ms (recorded %.1f ms, scale %.2f)\n",
              CalibMs, BaselineCalibrationMs, HostScale);
  std::printf("cold speedup vs pre-PR baseline: synthetic-200 %.2fx, "
              "corpus %.2fx (host-scale corrected)\n",
              SpeedupSynthetic, SpeedupCorpus);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n  \"benchmark\": \"analysis_throughput\",\n"
      << "  \"corpus_programs\": " << Corpus.size() << ",\n"
      << "  \"cold\": {\n"
      << "    \"corpus_pass_ms\": " << CorpusSecs * 1e3 << ",\n"
      << "    \"corpus_scripts_per_sec\": " << Corpus.size() / CorpusSecs
      << ",\n"
      << "    \"synthetic_200_ms\": " << SyntheticSecs * 1e3 << "\n"
      << "  },\n"
      << "  \"baseline_pre_pr\": {\n"
      << "    \"commit\": \"872262b\",\n"
      << "    \"synthetic_200_ms\": " << BaselineSynthetic200Ms << ",\n"
      << "    \"corpus_pass_ms\": " << BaselineCorpusPassMs << ",\n"
      << "    \"calibration_ms\": " << BaselineCalibrationMs << ",\n"
      << "    \"method\": \"interleaved A/B medians, same host\"\n"
      << "  },\n"
      << "  \"host\": {\n"
      << "    \"calibration_ms\": " << CalibMs << ",\n"
      << "    \"scale_vs_baseline_host\": " << HostScale << "\n"
      << "  },\n"
      << "  \"cold_speedup_vs_baseline\": {\n"
      << "    \"synthetic_200\": " << SpeedupSynthetic << ",\n"
      << "    \"corpus\": " << SpeedupCorpus << "\n"
      << "  },\n"
      << "  \"nest_cache\": {\n"
      << "    \"batch_scripts\": " << BatchSize << ",\n"
      << "    \"cold_batch_ms\": " << BatchColdSecs * 1e3 << ",\n"
      << "    \"warm_batch_ms\": " << BatchWarmSecs * 1e3 << ",\n"
      << "    \"warm_speedup\": " << WarmSpeedup << ",\n"
      << "    \"hits\": " << Cache.hits() << "\n"
      << "  }\n}\n";
  std::printf("wrote %s\n", OutPath.c_str());

  if (!Quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
