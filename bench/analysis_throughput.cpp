//===- analysis_throughput.cpp - Vectorizer compile-time --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the analysis stages themselves (the cost of running
/// the tool, not the generated code): lexing+parsing, dependence-graph
/// construction and full vectorization, over the paper corpus and over a
/// synthetically enlarged program. Validates the paper's implicit claim
/// that the dimension abstraction is cheap enough for source-to-source
/// use.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "Corpus.h"

#include "deps/DepAnalysis.h"
#include "deps/LoopNest.h"
#include "shape/AnnotationParser.h"

#include <benchmark/benchmark.h>

using namespace mvecbench;

namespace {

/// A synthetic program with \p NumLoops independent vectorizable nests.
std::string syntheticProgram(int NumLoops) {
  std::string Source = "n = 16;\nx = rand(1,n); y = rand(1,n);\n"
                       "%! x(1,*) y(1,*)\n";
  for (int I = 0; I != NumLoops; ++I) {
    std::string Z = "z" + std::to_string(I);
    Source += "%! " + Z + "(1,*)\n";
    Source += Z + " = zeros(1,n);\n";
    Source += "for i=1:n\n  " + Z + "(i) = " + std::to_string(I + 1) +
              "*x(i)+y(i);\nend\n";
  }
  return Source;
}

void BM_ParseCorpus(benchmark::State &State) {
  auto Corpus = paperCorpus();
  for (auto _ : State) {
    for (const CorpusProgram &P : Corpus) {
      DiagnosticEngine Diags;
      ParseResult R = parseMatlab(P.Source, Diags);
      benchmark::DoNotOptimize(R.Prog.Stmts.size());
    }
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}

void BM_DependenceAnalysis(benchmark::State &State) {
  // Fig. 4's two-statement nest: the densest dependence problem in the
  // corpus.
  auto Corpus = paperCorpus();
  const CorpusProgram *Fig4 = nullptr;
  for (const CorpusProgram &P : Corpus)
    if (P.Name == "fig4-compound")
      Fig4 = &P;
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Fig4->Source, Diags);
  ShapeEnv Env = parseShapeAnnotations(R.Annotations, Diags);
  ForStmt *Root = nullptr;
  for (StmtPtr &S : R.Prog.Stmts)
    if (auto *For = dyn_cast<ForStmt>(S.get()))
      Root = For;
  for (auto _ : State) {
    std::string Reason;
    auto Nest = buildLoopNest(*Root, Reason);
    DepGraph G = buildDepGraph(*Nest, Env);
    benchmark::DoNotOptimize(G.Edges.size());
  }
}

void BM_FullVectorization(benchmark::State &State) {
  auto Corpus = paperCorpus();
  for (auto _ : State) {
    for (const CorpusProgram &P : Corpus) {
      PipelineResult R = vectorizeSource(P.Source);
      benchmark::DoNotOptimize(R.VectorizedSource.size());
    }
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}

void BM_VectorizeSynthetic(benchmark::State &State) {
  std::string Source = syntheticProgram(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    PipelineResult R = vectorizeSource(Source);
    benchmark::DoNotOptimize(R.Stats.StmtsVectorized);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

BENCHMARK(BM_ParseCorpus)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DependenceAnalysis)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullVectorization)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VectorizeSynthetic)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("\n=== Analysis throughput (tool compile time; not a paper "
              "table — supports Sec. 4's feasibility claim) ===\n");
  auto Corpus = paperCorpus();
  double Secs = timeSeconds([&Corpus] {
    for (const CorpusProgram &P : Corpus)
      vectorizeSource(P.Source);
  });
  std::printf("full pipeline over %zu corpus programs: %.2f ms\n",
              Corpus.size(), Secs * 1e3);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
