//===- vm_throughput.cpp - Bytecode tier vs tree-walker throughput --------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the mvec::vm execution tier against the tree-walker on the
/// same three workload shapes as interp_throughput (parse once, run
/// many):
///
///   walker:   Interpreter::run on the prepared AST — the reference tier.
///   vm cold:  compileProgram + execute per run — what the first request
///             for a source pays when the CodeCache misses everywhere.
///   vm warm:  execute of a cached CompiledProgram — the steady state a
///             shard reaches once the content-addressed cache is hot.
///
/// Emits BENCH_vm.json with scripts/sec per tier, the warm speedup over
/// the walker, and the cold penalty (compile amortized over one run).
///
/// Usage: vm_throughput [output.json] [--quick]
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "interp/simd/SimdDispatch.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace mvec;

namespace {

struct WorkloadSpec {
  const char *Name;
  const char *Source;
};

// Identical sources to interp_throughput so the two JSON files compare
// like for like.
const WorkloadSpec Workloads[] = {
    {"scalar_loop",
     "s = 0;\n"
     "t = 1;\n"
     "for i = 1:120\n"
     "  a = i * 2 + 1;\n"
     "  b = a - i / 3;\n"
     "  if mod(i, 3) == 0\n"
     "    s = s + a * b;\n"
     "  else\n"
     "    s = s - b;\n"
     "  end\n"
     "  t = t + s * 0.001;\n"
     "end\n"},
    {"matrix_kernel",
     "A = rand(48, 48);\n"
     "B = rand(48, 48);\n"
     "C = A .* B + A;\n"
     "D = C * B;\n"
     "e = sum(sum(D));\n"
     "F = 2 * A + B;\n"
     "g = sum(F(:));\n"},
    {"accumulator",
     "n = 400;\n"
     "for i = 1:n\n"
     "  A(i) = i * 0.5;\n"
     "end\n"
     "s = sum(A);\n"},
};

struct Tiers {
  std::string Name;
  double Walker = 0; ///< scripts/sec, Interpreter::run
  double Cold = 0;   ///< scripts/sec, compile + execute each run
  double Warm = 0;   ///< scripts/sec, execute of a cached program
};

template <typename RunOnce>
double measure(double BudgetSecs, RunOnce Run) {
  uint64_t Runs = 0;
  auto Start = std::chrono::steady_clock::now();
  double Elapsed = 0;
  while (Elapsed < BudgetSecs) {
    for (int Rep = 0; Rep != 16; ++Rep) {
      Run();
      ++Runs;
    }
    Elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  }
  return static_cast<double>(Runs) / Elapsed;
}

/// Shared-machine noise can skew a single long sample by tens of
/// percent, so each tier is sampled in kTrials short trials interleaved
/// with the other tiers (walker, cold, warm, walker, ...) and scored by
/// its best trial. The max is the least-perturbed estimate of real
/// throughput, and interleaving makes a noisy stretch of wall clock hit
/// every tier instead of whichever one it happened to land on.
constexpr int kTrials = 5;

void checkOk(bool Ok, const char *Name, const char *Tier,
             const Interpreter &I) {
  if (!Ok) {
    std::fprintf(stderr, "workload '%s' failed under %s: %s\n", Name, Tier,
                 I.errorMessage().c_str());
    std::exit(1);
  }
}

Tiers runWorkload(const WorkloadSpec &Spec, double BudgetSecs) {
  DiagnosticEngine Diags;
  ParseResult Parsed = parseMatlab(Spec.Source, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "workload '%s' does not parse:\n%s", Spec.Name,
                 Diags.str().c_str());
    std::exit(1);
  }
  vm::CompiledProgram Cached = vm::compileProgram(Parsed.Prog, Spec.Source);

  // Warm up each tier once; also proves both engines accept the program.
  {
    Interpreter A, V;
    A.seedRandom(42);
    V.seedRandom(42);
    checkOk(A.run(Parsed.Prog), Spec.Name, "walker", A);
    checkOk(vm::execute(Cached, V), Spec.Name, "vm", V);
  }

  Tiers T;
  T.Name = Spec.Name;
  double Slice = BudgetSecs / kTrials;
  for (int Trial = 0; Trial != kTrials; ++Trial) {
    T.Walker = std::max(T.Walker, measure(Slice, [&] {
                 Interpreter I;
                 I.seedRandom(42);
                 checkOk(I.run(Parsed.Prog), Spec.Name, "walker", I);
               }));
    T.Cold = std::max(T.Cold, measure(Slice, [&] {
               Interpreter I;
               I.seedRandom(42);
               vm::CompiledProgram CP =
                   vm::compileProgram(Parsed.Prog, Spec.Source);
               checkOk(vm::execute(CP, I), Spec.Name, "vm-cold", I);
             }));
    T.Warm = std::max(T.Warm, measure(Slice, [&] {
               Interpreter I;
               I.seedRandom(42);
               checkOk(vm::execute(Cached, I), Spec.Name, "vm-warm", I);
             }));
  }
  return T;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_vm.json";
  double BudgetSecs = 1.5;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      BudgetSecs = 0.2; // CI smoke: just prove it runs and emits valid JSON
    else if (mvec::simd::handleSimdFlag(argc, argv, I)) {
      // kernel dispatch configured (exits with status 2 on a bad level)
    } else
      OutPath = argv[I];
  }

  std::printf("vm_throughput: %.1fs budget per tier per workload, simd=%s\n\n",
              BudgetSecs, mvec::simd::levelName(mvec::simd::activeLevel()));
  std::printf("%-16s %12s %12s %12s %10s %10s\n", "workload", "walker/s",
              "vm-cold/s", "vm-warm/s", "warm-spd", "cold-spd");

  std::vector<Tiers> Results;
  for (const WorkloadSpec &Spec : Workloads) {
    Tiers T = runWorkload(Spec, BudgetSecs);
    std::printf("%-16s %12.0f %12.0f %12.0f %9.2fx %9.2fx\n", T.Name.c_str(),
                T.Walker, T.Cold, T.Warm, T.Warm / T.Walker,
                T.Cold / T.Walker);
    Results.push_back(std::move(T));
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n  \"benchmark\": \"vm_throughput\",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const Tiers &T = Results[I];
    Out << "    {\"name\": \"" << T.Name
        << "\", \"walker_scripts_per_sec\": " << T.Walker
        << ", \"vm_cold_scripts_per_sec\": " << T.Cold
        << ", \"vm_warm_scripts_per_sec\": " << T.Warm
        << ", \"warm_speedup_vs_walker\": " << T.Warm / T.Walker
        << ", \"cold_speedup_vs_walker\": " << T.Cold / T.Walker << "}"
        << (I + 1 == Results.size() ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
  std::printf("\nwrote %s\n", OutPath.c_str());
  return 0;
}
