//===- ablation_features.cpp - Feature ablation study -----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the contribution of each mechanism the paper introduces:
/// transposes (Sec. 2.2), the pattern database (Sec. 3), additive
/// reductions (Sec. 3.1) and chain re-association (Sec. 3.1, footnote),
/// by disabling one at a time and counting how many statements of the
/// paper corpus still vectorize. A timing section then shows the end
/// effect on a representative reduction kernel.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "Corpus.h"

#include <benchmark/benchmark.h>

using namespace mvecbench;

namespace {

struct Config {
  const char *Name;
  VectorizerOptions Opts;
};

std::vector<Config> configs() {
  std::vector<Config> Cs;
  Cs.push_back({"all features", VectorizerOptions{}});
  {
    VectorizerOptions O;
    O.EnableTransposes = false;
    Cs.push_back({"-transposes", O});
  }
  {
    VectorizerOptions O;
    O.EnablePatterns = false;
    Cs.push_back({"-patterns", O});
  }
  {
    VectorizerOptions O;
    O.EnableReductions = false;
    Cs.push_back({"-reductions", O});
  }
  {
    VectorizerOptions O;
    O.EnableReassociation = false;
    Cs.push_back({"-reassociation", O});
  }
  {
    VectorizerOptions O;
    O.EnableTransposes = false;
    O.EnablePatterns = false;
    O.EnableReductions = false;
    O.EnableReassociation = false;
    Cs.push_back({"baseline codegen only", O});
  }
  return Cs;
}

void printAblationTable() {
  auto Corpus = paperCorpus();
  std::printf("\n=== Feature ablation: statements vectorized over the paper "
              "corpus (%zu programs) ===\n",
              Corpus.size());
  std::printf("%-24s %12s %12s %14s %12s\n", "configuration", "vectorized",
              "sequential", "nests improved", "loops left");
  for (const Config &C : configs()) {
    unsigned Vect = 0, Seq = 0, Nests = 0, LoopsLeft = 0;
    for (const CorpusProgram &P : Corpus) {
      PipelineResult R = vectorizeSource(P.Source, C.Opts);
      if (!R.succeeded()) {
        std::fprintf(stderr, "corpus program '%s' failed: %s\n",
                     P.Name.c_str(), R.Diags.str().c_str());
        std::abort();
      }
      // Every transformation must stay semantics-preserving, with any
      // subset of features enabled.
      std::string Diff = diffRun(P.Source, R.VectorizedSource);
      if (!Diff.empty()) {
        std::fprintf(stderr, "corpus program '%s' diverged under '%s': %s\n",
                     P.Name.c_str(), C.Name, Diff.c_str());
        std::abort();
      }
      Vect += R.Stats.StmtsVectorized;
      Seq += R.Stats.StmtsSequential;
      Nests += R.Stats.LoopNestsImproved;
      LoopsLeft += R.Stats.SequentialLoopsEmitted;
    }
    std::printf("%-24s %12u %12u %14u %12u\n", C.Name, Vect, Seq, Nests,
                LoopsLeft);
  }
}

void printTimingSection() {
  // Representative kernel: Menon & Pingali ex. 2 at N=400; reductions off
  // leaves the nest as interpreted loops.
  std::printf("\n=== Ablation timing: fig5-ex2 at N=400 ===\n");
  std::string Setup =
      "%! a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)\n"
      "N = 400; k = 1;\n"
      "a = rand(N,N);\nx_se = rand(N,1);\nf = rand(N,1);\nphi = zeros(1,2);\n";
  std::string Kernel = "for i=1:N\n for j=1:N\n"
                       "  phi(k) = phi(k) + a(i,j)*x_se(i)*f(j);\n"
                       " end\nend\n";
  Workload W{"ablation/ex2", Setup, Kernel};
  PreparedWorkload P(W);
  Interpreter Ws = P.makeSetupWorkspace();
  double LoopSecs = timeSeconds([&] { P.runOriginalKernel(Ws); }, 2);
  double VectSecs = timeSeconds([&] { P.runVectorizedKernel(Ws); }, 2);
  std::printf("interpreted loops:   %10.4fs   (what every disabled-feature "
              "config runs)\n",
              LoopSecs);
  std::printf("vectorized (all on): %10.4fs   speedup %.1fx\n", VectSecs,
              LoopSecs / VectSecs);
}

void BM_VectorizeCorpusAllFeatures(benchmark::State &State) {
  auto Corpus = paperCorpus();
  for (auto _ : State) {
    unsigned Total = 0;
    for (const CorpusProgram &P : Corpus) {
      PipelineResult R = vectorizeSource(P.Source);
      Total += R.Stats.StmtsVectorized;
    }
    benchmark::DoNotOptimize(Total);
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}

BENCHMARK(BM_VectorizeCorpusAllFeatures)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printAblationTable();
  printTimingSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
