//===- ablation_features.cpp - Feature ablation study -----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the contribution of each mechanism the paper introduces:
/// transposes (Sec. 2.2), the pattern database (Sec. 3), additive
/// reductions (Sec. 3.1) and chain re-association (Sec. 3.1, footnote),
/// by disabling one at a time and counting how many statements of the
/// paper corpus still vectorize. A timing section then shows the end
/// effect on a representative reduction kernel.
///
/// A cost-model section then runs the adversarial micro-workloads the
/// profitability model exists for — trip-count-2 nests, repmat-heavy
/// broadcasts, transpose churn — timing the interpreted original, the
/// model-off output (paper behavior: vectorize everything legal) and the
/// model-on output, and records before/after in BENCH_costmodel.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "Corpus.h"
#include "cost/CostModel.h"
#include "interp/simd/SimdDispatch.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>

using namespace mvecbench;

namespace {

struct Config {
  const char *Name;
  VectorizerOptions Opts;
};

std::vector<Config> configs() {
  std::vector<Config> Cs;
  Cs.push_back({"all features", VectorizerOptions{}});
  {
    VectorizerOptions O;
    O.EnableTransposes = false;
    Cs.push_back({"-transposes", O});
  }
  {
    VectorizerOptions O;
    O.EnablePatterns = false;
    Cs.push_back({"-patterns", O});
  }
  {
    VectorizerOptions O;
    O.EnableReductions = false;
    Cs.push_back({"-reductions", O});
  }
  {
    VectorizerOptions O;
    O.EnableReassociation = false;
    Cs.push_back({"-reassociation", O});
  }
  {
    VectorizerOptions O;
    O.EnableTransposes = false;
    O.EnablePatterns = false;
    O.EnableReductions = false;
    O.EnableReassociation = false;
    Cs.push_back({"baseline codegen only", O});
  }
  return Cs;
}

void printAblationTable() {
  auto Corpus = paperCorpus();
  std::printf("\n=== Feature ablation: statements vectorized over the paper "
              "corpus (%zu programs) ===\n",
              Corpus.size());
  std::printf("%-24s %12s %12s %14s %12s\n", "configuration", "vectorized",
              "sequential", "nests improved", "loops left");
  for (const Config &C : configs()) {
    unsigned Vect = 0, Seq = 0, Nests = 0, LoopsLeft = 0;
    for (const CorpusProgram &P : Corpus) {
      PipelineResult R = vectorizeSource(P.Source, C.Opts);
      if (!R.succeeded()) {
        std::fprintf(stderr, "corpus program '%s' failed: %s\n",
                     P.Name.c_str(), R.Diags.str().c_str());
        std::abort();
      }
      // Every transformation must stay semantics-preserving, with any
      // subset of features enabled.
      std::string Diff = diffRun(P.Source, R.VectorizedSource);
      if (!Diff.empty()) {
        std::fprintf(stderr, "corpus program '%s' diverged under '%s': %s\n",
                     P.Name.c_str(), C.Name, Diff.c_str());
        std::abort();
      }
      Vect += R.Stats.StmtsVectorized;
      Seq += R.Stats.StmtsSequential;
      Nests += R.Stats.LoopNestsImproved;
      LoopsLeft += R.Stats.SequentialLoopsEmitted;
    }
    std::printf("%-24s %12u %12u %14u %12u\n", C.Name, Vect, Seq, Nests,
                LoopsLeft);
  }
}

void printTimingSection() {
  // Representative kernel: Menon & Pingali ex. 2 at N=400; reductions off
  // leaves the nest as interpreted loops.
  std::printf("\n=== Ablation timing: fig5-ex2 at N=400 ===\n");
  std::string Setup =
      "%! a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)\n"
      "N = 400; k = 1;\n"
      "a = rand(N,N);\nx_se = rand(N,1);\nf = rand(N,1);\nphi = zeros(1,2);\n";
  std::string Kernel = "for i=1:N\n for j=1:N\n"
                       "  phi(k) = phi(k) + a(i,j)*x_se(i)*f(j);\n"
                       " end\nend\n";
  Workload W{"ablation/ex2", Setup, Kernel};
  PreparedWorkload P(W);
  Interpreter Ws = P.makeSetupWorkspace();
  double LoopSecs = timeSeconds([&] { P.runOriginalKernel(Ws); }, 2);
  double VectSecs = timeSeconds([&] { P.runVectorizedKernel(Ws); }, 2);
  std::printf("interpreted loops:   %10.4fs   (what every disabled-feature "
              "config runs)\n",
              LoopSecs);
  std::printf("vectorized (all on): %10.4fs   speedup %.1fx\n", VectSecs,
              LoopSecs / VectSecs);
}

/// An adversarial workload for the profitability model. @R@ in the source
/// is the outer trip count, shrunk under --quick.
struct CostWorkload {
  const char *Name;
  const char *Source; ///< full program, %! annotations included
  unsigned Reps;      ///< outer trip count substituted for @R@
  unsigned QuickReps;
};

std::vector<CostWorkload> costWorkloads() {
  return {
      // Trip-count-2 inner loop under a hot shell: the paper's rewrite
      // keeps the 200k-iteration shell and dispatches a 2-element vector
      // statement per iteration — pure overhead. The model must keep the
      // scalar loop. (The *0.999 decay blocks the reduction folder from
      // legally collapsing the shell itself.)
      {"trip-count-2",
       "%! w(1,*) acc(1,*)\n"
       "w = rand(1,2);\n"
       "acc = zeros(1,2);\n"
       "for r = 1:@R@\n"
       "  for j = 1:2\n"
       "    acc(j) = acc(j)*0.999 + w(j);\n"
       "  end\n"
       "end\n",
       200000, 20000},
      // Repmat-heavy broadcast on a tiny (3x3) matrix: the vectorized
      // form materializes a repmat temporary every shell iteration. Still
      // profitable at 9 elements vs 9 interpreted iterations — the model
      // must NOT regress it back to loops.
      {"repmat-broadcast-3x3",
       "%! A(*,*) C(*,1)\n"
       "A = rand(3,3);\n"
       "C = rand(3,1);\n"
       "for r = 1:@R@\n"
       "  for i = 1:3\n"
       "    for j = 1:3\n"
       "      A(i,j) = A(i,j)*0.9 + C(i);\n"
       "    end\n"
       "  end\n"
       "end\n",
       100000, 10000},
      // Transpose churn on a 2x2: a transpose temporary per shell
      // iteration. Near break-even at 4 elements; the model must not make
      // it measurably worse in either direction.
      {"transpose-churn-2x2",
       "%! A(*,*) B(*,*)\n"
       "A = rand(2,2);\n"
       "B = rand(2,2);\n"
       "for r = 1:@R@\n"
       "  for i = 1:2\n"
       "    for j = 1:2\n"
       "      A(i,j) = A(i,j)*0.5 + B(j,i);\n"
       "    end\n"
       "  end\n"
       "end\n",
       100000, 10000},
      // Guard workload: a wide elementwise nest where vectorization is a
      // clear win. The model must leave it vectorized.
      {"wide-elementwise-100k",
       "%! a(1,*) b(1,*) c(1,*)\n"
       "b = rand(1,100000);\n"
       "c = rand(1,100000);\n"
       "a = zeros(1,100000);\n"
       "for r = 1:@R@\n"
       "  for i = 1:100000\n"
       "    a(i) = b(i)*0.5 + c(i);\n"
       "  end\n"
       "end\n",
       50, 5},
  };
}

std::string substReps(const char *Source, unsigned Reps) {
  std::string S = Source;
  size_t At = S.find("@R@");
  S.replace(At, 3, std::to_string(Reps));
  return S;
}

/// Seconds per fresh seeded run of \p Prog (setup included; the kernels
/// dominate by construction).
double timeProgram(const Program &Prog, int Reps) {
  return timeSeconds(
      [&] {
        Interpreter I;
        I.seedRandom(42);
        if (!I.run(Prog)) {
          std::fprintf(stderr, "cost workload failed: %s\n",
                       I.errorMessage().c_str());
          std::abort();
        }
      },
      Reps);
}

Program parseChecked(const std::string &Source, const char *What) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "cost workload %s does not parse:\n%s", What,
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(R.Prog);
}

void printCostModelSection(const std::string &OutPath, bool Quick) {
  std::printf("\n=== Cost model: adversarial micro-workloads (model off = "
              "paper behavior) ===\n");
  std::printf("%-24s %10s %10s %10s %9s %10s\n", "workload", "original",
              "model-off", "model-on", "on/off", "decision");

  struct Row {
    std::string Name;
    double OriginalSecs, OffSecs, OnSecs;
    unsigned KeptLoops, Overrides;
  };
  std::vector<Row> Rows;

  VectorizerOptions OnOpts;
  OnOpts.Cost = &cost::builtinCostModel();
  const int TimeReps = Quick ? 1 : 3;

  for (const CostWorkload &W : costWorkloads()) {
    std::string Source = substReps(W.Source, Quick ? W.QuickReps : W.Reps);
    PipelineResult Off = vectorizeSource(Source);
    PipelineResult On = vectorizeSource(Source, OnOpts);
    if (!Off.succeeded() || !On.succeeded()) {
      std::fprintf(stderr, "cost workload '%s' failed to vectorize\n", W.Name);
      std::abort();
    }
    // Both outputs must stay semantics-preserving — the model only picks
    // among forms that are each equivalent to the original.
    for (const std::string &Out : {Off.VectorizedSource, On.VectorizedSource}) {
      std::string Diff = diffRun(Source, Out);
      if (!Diff.empty()) {
        std::fprintf(stderr, "cost workload '%s' diverged: %s\n", W.Name,
                     Diff.c_str());
        std::abort();
      }
    }

    Program Orig = parseChecked(Source, W.Name);
    Program OffP = parseChecked(Off.VectorizedSource, W.Name);
    Program OnP = parseChecked(On.VectorizedSource, W.Name);
    Row R;
    R.Name = W.Name;
    R.OriginalSecs = timeProgram(Orig, TimeReps);
    R.OffSecs = timeProgram(OffP, TimeReps);
    // When the model picks the very program the paper pipeline emits,
    // the runtimes are equal by construction; timing the same program in
    // a second window would only measure machine drift as a bogus ratio.
    R.OnSecs = On.VectorizedSource == Off.VectorizedSource
                   ? R.OffSecs
                   : timeProgram(OnP, TimeReps);
    R.KeptLoops = On.Stats.StmtsCostKept;
    R.Overrides = On.Stats.VariantOverrides;
    Rows.push_back(R);

    char Decision[32];
    std::snprintf(Decision, sizeof(Decision), "%s",
                  R.KeptLoops ? "kept loop" : "vectorized");
    std::printf("%-24s %9.4fs %9.4fs %9.4fs %8.2fx %10s\n", W.Name,
                R.OriginalSecs, R.OffSecs, R.OnSecs, R.OffSecs / R.OnSecs,
                Decision);
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    std::abort();
  }
  Out << "{\n  \"benchmark\": \"costmodel\",\n";
  Out << "  \"simd_level\": \"" << simd::levelName(simd::activeLevel())
      << "\",\n";
  Out << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
  Out << "  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"original_secs\": %.6f, "
                  "\"model_off_secs\": %.6f, \"model_on_secs\": %.6f, "
                  "\"on_vs_off_speedup\": %.3f, \"on_kept_loop_stmts\": %u, "
                  "\"on_variant_overrides\": %u}%s\n",
                  R.Name.c_str(), R.OriginalSecs, R.OffSecs, R.OnSecs,
                  R.OffSecs / R.OnSecs, R.KeptLoops, R.Overrides,
                  I + 1 == Rows.size() ? "" : ",");
    Out << Buf;
  }
  Out << "  ]\n}\n";
  std::printf("wrote %s\n", OutPath.c_str());
}

void BM_VectorizeCorpusAllFeatures(benchmark::State &State) {
  auto Corpus = paperCorpus();
  for (auto _ : State) {
    unsigned Total = 0;
    for (const CorpusProgram &P : Corpus) {
      PipelineResult R = vectorizeSource(P.Source);
      Total += R.Stats.StmtsVectorized;
    }
    benchmark::DoNotOptimize(Total);
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}

BENCHMARK(BM_VectorizeCorpusAllFeatures)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::string CostOut = "BENCH_costmodel.json";
  bool Quick = false;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(argv[I], "--cost-out") == 0 && I + 1 < argc)
      CostOut = argv[++I];
    else
      argv[Kept++] = argv[I];
  }
  argc = Kept;

  printAblationTable();
  printTimingSection();
  printCostModelSection(CostOut, Quick);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
