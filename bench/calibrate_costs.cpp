//===- calibrate_costs.cpp - Cost-profile calibration harness ---------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the per-kernel-class coefficients of mvec::cost::CostProfile
/// against the *active* SIMD dispatch level and emits the checksummed
/// costs.mvec.json the vectorizer's profitability model loads. Each
/// coefficient comes from a micro-program chosen so one term dominates:
///
///   loop_iter_ns / scalar_op_ns   two interpreted loops whose bodies
///                                 differ only in scalar-op count (two
///                                 equations, two unknowns)
///   vector_stmt_ns                a 2-element vector statement repeated
///                                 under a shell loop (fixed dispatch
///                                 cost, element work negligible)
///   elementwise_ns / fused_mul_add_ns
///                                 wide (100k-element) pointwise
///                                 statements, fixed cost amortized away
///   matmul_ns                     a 128x128 native product (t / N^3)
///   reduce_ns                     sum() over a wide vector
///   repmat_ns / transpose_ns      materialization of a 300x300 temporary
///
/// The solved values are clamped to be positive (a noisy quick run must
/// still produce a loadable profile) and assumed_trip_count keeps its
/// conservative default — calibration measures speeds, not workloads.
///
/// Usage: calibrate_costs [output.json] [--quick] [--simd LEVEL]
///
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "interp/simd/SimdDispatch.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace mvec;

namespace {

/// Parses \p Source, aborting on errors (these are fixed micro-programs;
/// a parse failure is a harness bug, not a condition to handle).
Program parseOrDie(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "calibrate_costs: micro-program does not parse:\n%s",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(R.Prog);
}

/// Seconds per execution of \p Timed in a workspace prepared by \p Setup,
/// measured over enough repetitions to fill \p BudgetSecs.
double timePerRun(const std::string &Setup, const std::string &Timed,
                  double BudgetSecs) {
  Program SetupProg = parseOrDie(Setup);
  Program TimedProg = parseOrDie(Timed);
  Interpreter I;
  I.seedRandom(42);
  if (!I.run(SetupProg) || !I.run(TimedProg)) { // warm-up run included
    std::fprintf(stderr, "calibrate_costs: micro-program failed: %s\n",
                 I.errorMessage().c_str());
    std::abort();
  }
  uint64_t Runs = 0;
  auto Start = std::chrono::steady_clock::now();
  double Elapsed = 0;
  do {
    if (!I.run(TimedProg)) {
      std::fprintf(stderr, "calibrate_costs: micro-program failed: %s\n",
                   I.errorMessage().c_str());
      std::abort();
    }
    ++Runs;
    Elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  } while (Elapsed < BudgetSecs);
  return Elapsed / static_cast<double>(Runs);
}

double clampNs(double V) { return std::max(V, 0.01); }

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "costs.mvec.json";
  double Budget = 0.3;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Budget = 0.03; // CI smoke: prove the harness runs and emits a
                     // loadable profile; the numbers are noisy
    else if (simd::handleSimdFlag(argc, argv, I)) {
      // kernel dispatch configured (exits with status 2 on a bad level)
    } else
      OutPath = argv[I];
  }

  cost::CostProfile P = cost::defaultCostProfile();
  P.SimdLevel = simd::levelName(simd::activeLevel());
  P.Calibrated = true;

  std::printf("calibrate_costs: %.2fs budget per probe, simd=%s\n",
              Budget, P.SimdLevel.c_str());

  // Interpreter loop overhead: an empty loop prices the header directly;
  // an op-heavy body prices the per-op increment. The op count mirrors
  // the code generator's census (one per AST node): "x=i*2+i*3;" is 8.
  {
    constexpr double N = 20000, Ops2 = 8;
    double T1 = timePerRun("x = 0;\n", "for i = 1:20000\nend\n", Budget);
    double T2 = timePerRun(
        "x = 0;\n", "for i = 1:20000\n  x = i*2 + i*3;\nend\n", Budget);
    P.LoopIterNs = clampNs(T1 * 1e9 / N);
    P.ScalarOpNs = clampNs((T2 - T1) * 1e9 / (N * Ops2));
  }

  // Wide pointwise statements: the fixed dispatch cost is ~ppm at 100k
  // elements. The elementwise statement counts 4 kernels (two slices,
  // the add, the store); the FMA statement counts 4 elementwise + 1 fused.
  double ElementwiseT = timePerRun(
      "b = rand(1,100000); c = rand(1,100000); a = zeros(1,100000);\n",
      "a(1:100000) = b(1:100000) + c(1:100000);\n", Budget);
  P.ElementwiseNs = clampNs(ElementwiseT * 1e9 / (4.0 * 100000));
  {
    double T = timePerRun("b = rand(1,100000); c = rand(1,100000); "
                          "d = rand(1,100000); a = zeros(1,100000);\n",
                          "a(1:100000) = b(1:100000) .* c(1:100000) + "
                          "d(1:100000);\n",
                          Budget);
    P.FusedMulAddNs =
        clampNs((T * 1e9 - 4.0 * 100000 * P.ElementwiseNs) / 100000);
  }

  // Fixed per-statement dispatch cost: a 2-element statement's runtime is
  // almost entirely overhead. The shell loop contributes one iteration's
  // LoopIterNs per statement execution.
  {
    constexpr double M = 2000;
    double T = timePerRun(
        "a = rand(1,2); b = rand(1,2);\n",
        "for r = 1:2000\n  a(1:2) = a(1:2)*0.5 + b(1:2);\nend\n", Budget);
    P.VectorStmtNs = clampNs(T * 1e9 / M - P.LoopIterNs -
                             2 * 4.0 * P.ElementwiseNs);
  }

  // Native matrix product: t / N^3 multiply-adds at N=128.
  {
    constexpr double N = 128;
    double T = timePerRun(
        "A = rand(128,128); B = rand(128,128); C = zeros(128,128);\n",
        "C(1:128,1:128) = A(1:128,1:128) * B(1:128,1:128);\n", Budget);
    P.MatMulNs = clampNs(T * 1e9 / (N * N * N));
  }

  // Reduction: sum over a wide vector (slice + store amortized out).
  {
    double T = timePerRun("a = rand(1,100000); s = 0;\n",
                          "s = sum(a(1:100000));\n", Budget);
    P.ReduceNs = clampNs(T * 1e9 / 100000);
  }

  // Materialization costs: 300x300 temporaries.
  {
    constexpr double Elems = 300.0 * 300.0;
    double T = timePerRun("b = rand(300,1); A = zeros(300,300);\n",
                          "A(1:300,1:300) = repmat(b(1:300),1,300);\n",
                          Budget);
    P.RepmatNs = clampNs(T * 1e9 / Elems);
    T = timePerRun("A = rand(300,300); B = zeros(300,300);\n",
                   "B(1:300,1:300) = A(1:300,1:300)';\n", Budget);
    P.TransposeNs = clampNs(T * 1e9 / Elems);
  }

  std::printf("  loop_iter_ns        %10.2f\n", P.LoopIterNs);
  std::printf("  scalar_op_ns        %10.2f\n", P.ScalarOpNs);
  std::printf("  vector_stmt_ns      %10.2f\n", P.VectorStmtNs);
  std::printf("  elementwise_ns      %10.3f\n", P.ElementwiseNs);
  std::printf("  fused_mul_add_ns    %10.3f\n", P.FusedMulAddNs);
  std::printf("  matmul_ns           %10.3f\n", P.MatMulNs);
  std::printf("  reduce_ns           %10.3f\n", P.ReduceNs);
  std::printf("  repmat_ns           %10.3f\n", P.RepmatNs);
  std::printf("  transpose_ns        %10.3f\n", P.TransposeNs);
  std::printf("  assumed_trip_count  %10.0f (not measured; conservative)\n",
              P.AssumedTripCount);

  std::string Json = cost::serializeCostProfile(P);
  // Round-trip sanity: the file this harness writes must load.
  {
    cost::CostProfile Back;
    std::string Error;
    if (!cost::parseCostProfile(Json, Back, Error)) {
      std::fprintf(stderr,
                   "calibrate_costs: emitted profile does not load: %s\n",
                   Error.c_str());
      return 1;
    }
  }
  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << Json;
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
