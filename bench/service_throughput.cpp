//===- service_throughput.cpp - Service scaling benchmark -------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the vectorization service's batch throughput (scripts/sec)
/// against worker count, cold (every job compiles + validates) and warm
/// (every job is a content-cache hit). Emits BENCH_service.json so later
/// PRs have a perf trajectory to beat.
///
/// The synthetic corpus models service traffic, not a compile farm: every
/// script carries a small pause() alongside its loop nest — the stand-in
/// for the I/O, network, or long interpreted tails real workloads have.
/// That keeps the scaling measurement meaningful on any core count: the
/// win from more workers is overlapped waiting plus overlapped compute,
/// and a single-core host still shows the former.
///
/// Usage: service_throughput [output.json]
///
//===----------------------------------------------------------------------===//

#include "service/VectorizationService.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace mvec;

namespace {

constexpr int NumJobs = 48;
/// Per-script simulated latency (runs once per interpreter execution; the
/// validation stage executes original + vectorized, so ~2x per cold job).
constexpr double PauseSeconds = 0.008;

/// One synthetic service script: simulated I/O latency plus a genuinely
/// vectorizable annotated loop. \p Tag makes each job's source unique so
/// a cold batch cannot accidentally hit the cache.
std::string syntheticScript(int Tag) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "pause(%g);\n%% job %d\n", PauseSeconds,
                Tag);
  return std::string(Buf) +
         "n = 16; x = rand(1,n); y = rand(1,n); z = zeros(1,n);\n"
         "%! x(1,*) y(1,*) z(1,*) n(1)\n"
         "for i=1:n\n  z(i) = 2*x(i)+y(i)^2;\nend\n";
}

std::vector<JobSpec> makeBatch() {
  std::vector<JobSpec> Specs;
  for (int I = 0; I != NumJobs; ++I) {
    JobSpec Spec;
    Spec.Name = "job" + std::to_string(I);
    Spec.Source = syntheticScript(I);
    Spec.Validate = true;
    Specs.push_back(std::move(Spec));
  }
  return Specs;
}

struct Sample {
  unsigned Workers;
  double ColdScriptsPerSec;
  double WarmScriptsPerSec;
};

double runBatchSeconds(VectorizationService &Service) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<JobResult> Results = Service.runBatch(makeBatch());
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  for (const JobResult &R : Results)
    if (!R.succeeded()) {
      std::fprintf(stderr, "job '%s' %s: %s\n", R.Name.c_str(),
                   jobStatusName(R.Status), R.Message.c_str());
      std::exit(1);
    }
  return Secs;
}

} // namespace

int main(int argc, char **argv) {
  const std::string OutPath = argc > 1 ? argv[1] : "BENCH_service.json";

  std::printf("service_throughput: %d scripts/batch, %.0f ms simulated "
              "latency each, validate=on\n\n",
              NumJobs, PauseSeconds * 1e3);
  std::printf("%8s %22s %22s %12s\n", "workers", "cold scripts/sec",
              "warm scripts/sec", "warm hits");

  std::vector<Sample> Samples;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    ServiceConfig Config;
    Config.Workers = Workers;
    Config.QueueCapacity = NumJobs;
    Config.CacheCapacity = 2 * NumJobs;
    VectorizationService Service(Config);

    double ColdSecs = runBatchSeconds(Service);
    double WarmSecs = runBatchSeconds(Service);
    uint64_t WarmHits = Service.cache().hits();

    Sample S{Workers, NumJobs / ColdSecs, NumJobs / WarmSecs};
    Samples.push_back(S);
    std::printf("%8u %22.1f %22.1f %9llu/%d\n", Workers, S.ColdScriptsPerSec,
                S.WarmScriptsPerSec,
                static_cast<unsigned long long>(WarmHits), NumJobs);
  }

  double Speedup8v1 =
      Samples.back().ColdScriptsPerSec / Samples.front().ColdScriptsPerSec;
  double WarmOverCold1 =
      Samples.front().WarmScriptsPerSec / Samples.front().ColdScriptsPerSec;
  std::printf("\ncold speedup 8 vs 1 workers: %.2fx\n", Speedup8v1);
  std::printf("warm vs cold at 1 worker:    %.1fx\n", WarmOverCold1);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n  \"benchmark\": \"service_throughput\",\n"
      << "  \"jobs_per_batch\": " << NumJobs << ",\n"
      << "  \"simulated_latency_s\": " << PauseSeconds << ",\n"
      << "  \"validate\": true,\n  \"workers\": [\n";
  for (size_t I = 0; I != Samples.size(); ++I) {
    const Sample &S = Samples[I];
    Out << "    {\"workers\": " << S.Workers
        << ", \"cold_scripts_per_sec\": " << S.ColdScriptsPerSec
        << ", \"warm_scripts_per_sec\": " << S.WarmScriptsPerSec << "}"
        << (I + 1 == Samples.size() ? "\n" : ",\n");
  }
  Out << "  ],\n  \"cold_speedup_8_vs_1\": " << Speedup8v1
      << ",\n  \"warm_vs_cold_at_1_worker\": " << WarmOverCold1 << "\n}\n";
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
