//===- Corpus.h - The paper's program corpus --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every loop program the paper discusses, as annotated MATLAB sources
/// with small default sizes. Shared by the ablation and throughput
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_BENCH_CORPUS_H
#define MVEC_BENCH_CORPUS_H

#include <string>
#include <vector>

namespace mvecbench {

struct CorpusProgram {
  std::string Name;
  std::string Source;
};

inline std::vector<CorpusProgram> paperCorpus() {
  return {
      {"sec2.2-transpose",
       "m = 8; n = 6;\n"
       "B = rand(n,m); C = rand(m,n); A = zeros(m,n);\n"
       "%! A(*,*) B(*,*) C(*,*)\n"
       "for i=1:m\n for j=1:n\n  A(i,j) = B(j,i)+C(i,j);\n end\nend\n"},
      {"table2-pattern1-dot",
       "n = 8; X = rand(n,n); Y = rand(n,n); a = zeros(1,n);\n"
       "%! X(*,*) Y(*,*) a(1,*) n(1)\n"
       "for i=1:n\n  a(i) = X(i,:)*Y(:,i);\nend\n"},
      {"table2-pattern2-repmat",
       "m = 8; n = 6; B = rand(m,n); C = rand(m,1); A = zeros(m,n);\n"
       "%! A(*,*) B(*,*) C(*,1)\n"
       "for i=1:m\n for j=1:n\n  A(i,j) = B(i,j)+C(i);\n end\nend\n"},
      {"table2-pattern3-diagonal",
       "n = 8; A = rand(n,n); b = rand(1,n); a = zeros(1,n);\n"
       "%! A(*,*) b(1,*) a(1,*) n(1)\n"
       "for i=1:n\n  a(i) = A(i,i)*b(i);\nend\n"},
      {"fig3-histeq",
       "im = mod(reshape(0:47, 6, 8), 16);\nim2 = zeros(6,8);\n"
       "%! im(*,*) im2(*,*) heq(1,*) h(1,*)\n"
       "h = hist(im(:),[0:255]);\n"
       "heq = 255*cumsum(h(:))/sum(h(:));\n"
       "for i=1:size(im,1)\n for j=1:size(im,2)\n"
       "  im2(i,j) = heq(im(i,j)+1);\n end\nend\n"},
      {"fig4-compound",
       "A = rand(16,17); B = rand(16,17); C = rand(16,17); D = rand(17,17);\n"
       "a = rand(1,40);\n"
       "%! A(*,*) B(*,*) C(*,*) D(*,*) a(1,*) ind(1,*)\n"
       "ind = 1:8;\n"
       "for i=2:2:16\n"
       " B(i,1) = D(i,i)*A(i,i)+C(i,:)*D(:,i);\n"
       " for j=3:2:17\n"
       "  A(i,j) = B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);\n"
       " end\nend\n"},
      {"fig5-ex1-forward-elim",
       "i = 5; p = 8;\nX = rand(6,p); L = rand(6,6);\n"
       "%! X(*,*) L(*,*) i(1) p(1)\n"
       "for k=1:p\n for j=1:(i-1)\n"
       "  X(i,k) = X(i,k) - L(i,j)*X(j,k);\n end\nend\n"},
      {"fig5-ex2-phi",
       "N = 6; k = 1;\n"
       "a = rand(N,N); x_se = rand(N,1); f = rand(N,1); phi = zeros(1,2);\n"
       "%! a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)\n"
       "for i=1:N\n for j=1:N\n"
       "  phi(k) = phi(k) + a(i,j)*x_se(i)*f(j);\n end\nend\n"},
      {"fig5-ex3-quad",
       "n = 4;\nx = rand(n,1); A = rand(n,n); B = rand(n,n); C = rand(n,n);\n"
       "y = zeros(n,1);\n"
       "%! x(*,1) A(*,*) B(*,*) C(*,*) y(*,1) n(1)\n"
       "for i=1:n\n for j=1:n\n  for k=1:n\n   for l=1:n\n"
       "    y(i) = y(i) + x(j)*A(i,k)*B(l,k)*C(l,j);\n"
       "   end\n  end\n end\nend\n"},
      {"scalar-accumulator",
       "n = 8; x = rand(1,n); s = 0;\n%! x(1,*) s(1)\n"
       "for i=1:n\n  s = s + x(i);\nend\n"},
      {"pointwise-simple",
       "n = 8; x = rand(1,n); y = rand(1,n); z = zeros(1,n);\n"
       "for i=1:n\n  z(i) = 2*x(i)+y(i)^2;\nend\n"},
  };
}

} // namespace mvecbench

#endif // MVEC_BENCH_CORPUS_H
