//===- fig3_histeq.cpp - Paper Fig. 3: histogram equalization ---------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Sec. 5 histogram-equalization experiment
/// (Fig. 3): an 800x600 8-bit image is equalized through a 256-entry
/// lookup table. The paper reports, on MATLAB 7.2 / 3.0 GHz Pentium D:
///   whole program:  0.178 s -> 0.114 s  (speedup ~1.56)
///   loop part only: 0.0814 s -> 0.0176 s (speedup ~4.6)
/// We measure the same two rows on the simulated MATLAB environment.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <benchmark/benchmark.h>

using namespace mvecbench;

namespace {

std::string imageSetup(int Rows, int Cols) {
  // A deterministic 8-bit test image with a non-uniform histogram.
  return "im = mod(floor(reshape(0:" + std::to_string(Rows * Cols - 1) +
         ", " + std::to_string(Rows) + ", " + std::to_string(Cols) +
         ").^1.5/97), 256);\n";
}

Workload wholeProgram(int Rows, int Cols) {
  Workload W;
  W.Name = "fig3/whole-program";
  W.Setup = "%! im(*,*) im2(*,*) heq(1,*) h(1,*)\n" + imageSetup(Rows, Cols);
  W.Kernel = "h = hist(im(:),[0:255]);\n"
             "heq = 255*cumsum(h(:))/sum(h(:));\n"
             "for i=1:size(im,1)\n"
             " for j=1:size(im,2)\n"
             "  im2(i,j) = heq(im(i,j)+1);\n"
             " end\n"
             "end\n";
  return W;
}

Workload loopOnly(int Rows, int Cols) {
  Workload W;
  W.Name = "fig3/loop-only";
  W.Setup = "%! im(*,*) im2(*,*) heq(1,*) h(1,*)\n" + imageSetup(Rows, Cols) +
            "h = hist(im(:),[0:255]);\n"
            "heq = 255*cumsum(h(:))/sum(h(:));\n";
  W.Kernel = "for i=1:size(im,1)\n"
             " for j=1:size(im,2)\n"
             "  im2(i,j) = heq(im(i,j)+1);\n"
             " end\n"
             "end\n";
  return W;
}

const PreparedWorkload &preparedLoopOnly(int Rows, int Cols) {
  static std::map<std::pair<int, int>, std::unique_ptr<PreparedWorkload>>
      Cache;
  auto &Slot = Cache[{Rows, Cols}];
  if (!Slot)
    Slot = std::make_unique<PreparedWorkload>(loopOnly(Rows, Cols));
  return *Slot;
}

void BM_HisteqLoop(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  const PreparedWorkload &P = preparedLoopOnly(N, N);
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runOriginalKernel(Workspace);
  State.SetItemsProcessed(State.iterations() * N * N);
}

void BM_HisteqVectorized(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  const PreparedWorkload &P = preparedLoopOnly(N, N);
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runVectorizedKernel(Workspace);
  State.SetItemsProcessed(State.iterations() * N * N);
}

BENCHMARK(BM_HisteqLoop)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_HisteqVectorized)->Arg(64)->Arg(128)->Arg(256);

void printPaperSection() {
  printPaperHeader("Paper Fig. 3 / Sec. 5: histogram equalization, "
                   "800x600 8-bit image");

  PreparedWorkload Whole(wholeProgram(800, 600));
  Interpreter WholeWs = Whole.makeSetupWorkspace();
  double WholeIn =
      timeSeconds([&] { Whole.runOriginalKernel(WholeWs); }, 2);
  double WholeVect =
      timeSeconds([&] { Whole.runVectorizedKernel(WholeWs); }, 2);
  printPaperRow("whole program", WholeIn, WholeVect, "0.178s", "0.114s",
                "~1.56x");

  const PreparedWorkload &Loop = preparedLoopOnly(800, 600);
  Interpreter LoopWs = Loop.makeSetupWorkspace();
  double LoopIn = timeSeconds([&] { Loop.runOriginalKernel(LoopWs); }, 2);
  double LoopVect =
      timeSeconds([&] { Loop.runVectorizedKernel(LoopWs); }, 2);
  printPaperRow("loop portion only", LoopIn, LoopVect, "0.0814s", "0.0176s",
                "~4.6x");

  std::printf("\nvectorized loop portion:\n%s\n",
              Loop.VectorizedSource
                  .substr(Loop.VectorizedSource.rfind("im2("))
                  .c_str());
}

} // namespace

int main(int argc, char **argv) {
  printPaperSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
