//===- table3_menon_pingali.cpp - Paper Table 3 / Fig. 5 --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Table 3: the three Menon & Pingali example loops
/// (Fig. 5), each an additive-reduction nest, at the paper's settings:
///   ex. 1 (i=500, p=5000):  0.536 s -> 0.030 s   (~17x)
///   ex. 2 (N=1000):         0.174 s -> 0.012 s   (~14x)
///   ex. 3 (n=40):           0.622 s -> 0.0001 s  (~5000x)
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

using namespace mvecbench;

namespace {

/// Ex. 1: X(i,k) = X(i,k) - L(i,j)*X(j,k) over k=1:p, j=1:(i-1).
Workload example1(int I, int P) {
  Workload W;
  W.Name = "table3/ex1";
  W.Setup = "%! X(*,*) L(*,*) i(1) p(1)\n"
            "i = " + std::to_string(I) + "; p = " + std::to_string(P) + ";\n"
            "X = rand(" + std::to_string(I) + "," + std::to_string(P) + ");\n"
            "L = rand(" + std::to_string(I) + "," + std::to_string(I) + ");\n";
  W.Kernel = "for k=1:p\n"
             " for j=1:(i-1)\n"
             "  X(i,k) = X(i,k) - L(i,j)*X(j,k);\n"
             " end\n"
             "end\n";
  return W;
}

/// Ex. 2: phi(k) = phi(k) + a(i,j)*x_se(i)*f(j) over i,j = 1:N.
Workload example2(int N) {
  Workload W;
  W.Name = "table3/ex2";
  W.Setup = "%! a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)\n"
            "N = " + std::to_string(N) + "; k = 1;\n"
            "a = rand(N,N);\nx_se = rand(N,1);\nf = rand(N,1);\n"
            "phi = zeros(1,4);\n";
  W.Kernel = "for i=1:N\n"
             " for j=1:N\n"
             "  phi(k) = phi(k) + a(i,j)*x_se(i)*f(j);\n"
             " end\n"
             "end\n";
  return W;
}

/// Ex. 3: y(i) = y(i) + x(j)*A(i,k)*B(l,k)*C(l,j) over four loops 1:n.
Workload example3(int N) {
  Workload W;
  W.Name = "table3/ex3";
  W.Setup = "%! x(*,1) A(*,*) B(*,*) C(*,*) y(*,1) n(1)\n"
            "n = " + std::to_string(N) + ";\n"
            "x = rand(n,1);\nA = rand(n,n);\nB = rand(n,n);\n"
            "C = rand(n,n);\ny = zeros(n,1);\n";
  W.Kernel = "for i=1:n\n for j=1:n\n  for k=1:n\n   for l=1:n\n"
             "    y(i) = y(i) + x(j)*A(i,k)*B(l,k)*C(l,j);\n"
             "   end\n  end\n end\nend\n";
  return W;
}

enum ExampleId { Ex1, Ex2, Ex3 };

const PreparedWorkload &prepared(ExampleId Id, int Size) {
  static std::map<std::pair<int, int>, std::unique_ptr<PreparedWorkload>>
      Cache;
  auto &Slot = Cache[{Id, Size}];
  if (!Slot) {
    switch (Id) {
    case Ex1:
      Slot = std::make_unique<PreparedWorkload>(example1(Size, 10 * Size));
      break;
    case Ex2:
      Slot = std::make_unique<PreparedWorkload>(example2(Size));
      break;
    case Ex3:
      Slot = std::make_unique<PreparedWorkload>(example3(Size));
      break;
    }
  }
  return *Slot;
}

template <ExampleId Id> void BM_Loop(benchmark::State &State) {
  const PreparedWorkload &P = prepared(Id, static_cast<int>(State.range(0)));
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runOriginalKernel(Workspace);
}

template <ExampleId Id> void BM_Vectorized(benchmark::State &State) {
  const PreparedWorkload &P = prepared(Id, static_cast<int>(State.range(0)));
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runVectorizedKernel(Workspace);
}

BENCHMARK_TEMPLATE(BM_Loop, Ex1)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Vectorized, Ex1)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Loop, Ex2)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Vectorized, Ex2)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Loop, Ex3)->Arg(10)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Vectorized, Ex3)->Arg(10)->Arg(15)->Unit(benchmark::kMillisecond);

void printPaperSection() {
  printPaperHeader(
      "Paper Table 3: Menon & Pingali examples (Fig. 5), paper settings");

  {
    PreparedWorkload P(example1(500, 5000));
    Interpreter Ws = P.makeSetupWorkspace();
    double In = timeSeconds([&] { P.runOriginalKernel(Ws); }, 1);
    double Vect = timeSeconds([&] { P.runVectorizedKernel(Ws); }, 2);
    printPaperRow("ex.1  i=500 p=5000", In, Vect, "0.536s", "0.030s",
                  "~17x");
    std::printf("  -> %s",
                P.VectorizedSource.substr(P.VectorizedSource.find("X(i,"))
                    .c_str());
  }
  {
    PreparedWorkload P(example2(1000));
    Interpreter Ws = P.makeSetupWorkspace();
    double In = timeSeconds([&] { P.runOriginalKernel(Ws); }, 1);
    double Vect = timeSeconds([&] { P.runVectorizedKernel(Ws); }, 2);
    printPaperRow("ex.2  N=1000", In, Vect, "0.174s", "0.012s", "~14x");
    std::printf("  -> %s",
                P.VectorizedSource.substr(P.VectorizedSource.find("phi("))
                    .c_str());
  }
  {
    PreparedWorkload P(example3(40));
    Interpreter Ws = P.makeSetupWorkspace();
    double In = timeSeconds([&] { P.runOriginalKernel(Ws); }, 1);
    double Vect = timeSeconds([&] { P.runVectorizedKernel(Ws); }, 3);
    printPaperRow("ex.3  n=40", In, Vect, "0.622s", "0.0001s", "~5000x");
    std::printf("  -> %s",
                P.VectorizedSource.substr(P.VectorizedSource.find("y(1:n)"))
                    .c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  printPaperSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
