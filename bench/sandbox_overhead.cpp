//===- sandbox_overhead.cpp - Process-isolation overhead benchmark -----------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies what `isolation = process` costs: the same in-process soak
/// as daemon_throughput is run twice — once with the shards serving
/// inline (isolation=inproc) and once through forked sandbox workers
/// (isolation=process, every request crossing two socketpair hops) — and
/// then a third chaos phase repeats the process-isolated soak while a
/// killer thread SIGKILLs live workers continuously.
///
/// Emits BENCH_sandbox.json: QPS and p50/p99/p999 per phase, the
/// overhead ratio inproc/process, and the chaos phase's supervision
/// counters (crashes, respawns, degraded serves — which must be the ONLY
/// casualty: every request still answers 200).
///
/// Usage: sandbox_overhead [--quick] [output.json]
///   --quick   10k requests per phase instead of 200k (CI smoke)
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>

using namespace mvec::daemon;

namespace {

constexpr unsigned NumScripts = 32;

std::string syntheticScript(unsigned Tag) {
  std::string S = "% sandbox soak script " + std::to_string(Tag) + "\n";
  S += "n = " + std::to_string(8 + Tag % 8) +
       "; x = rand(1,n); y = rand(1,n); z = zeros(1,n);\n"
       "%! x(1,*) y(1,*) z(1,*) n(1)\n"
       "for i=1:n\n  z(i) = 2*x(i)+y(i)^2;\nend\n";
  return S;
}

struct PhaseStats {
  uint64_t Requests = 0;
  double ElapsedSec = 0;
  uint64_t Ok200 = 0, Degraded = 0, Other = 0;
  double P50Ms = 0, P99Ms = 0, P999Ms = 0;
  double qps() const {
    return ElapsedSec > 0 ? static_cast<double>(Requests) / ElapsedSec : 0;
  }
};

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

PhaseStats runPhase(Daemon &D, uint64_t Requests, unsigned Threads,
                    const std::vector<std::string> &Scripts) {
  std::vector<std::vector<double>> Latencies(Threads);
  std::vector<PhaseStats> Partial(Threads);
  std::atomic<uint64_t> Next{0};
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T) {
    Pool.emplace_back([&, T] {
      Latencies[T].reserve(Requests / Threads + 1);
      for (;;) {
        uint64_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= Requests)
          break;
        Request Req;
        Req.V = Verb::Vec;
        Req.Tenant = "soak-" + std::to_string(T % 4);
        Req.Name = "req" + std::to_string(I);
        Req.Body = Scripts[I % Scripts.size()];
        auto T0 = std::chrono::steady_clock::now();
        Response Resp = D.handle(Req);
        auto T1 = std::chrono::steady_clock::now();
        Latencies[T].push_back(
            std::chrono::duration<double, std::milli>(T1 - T0).count());
        PhaseStats &S = Partial[T];
        ++S.Requests;
        if (Resp.Code == 200)
          ++S.Ok200;
        if (Resp.Status == "degraded")
          ++S.Degraded;
        else if (Resp.Status != "succeeded")
          ++S.Other;
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();

  PhaseStats S;
  S.ElapsedSec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  std::vector<double> All;
  for (unsigned T = 0; T != Threads; ++T) {
    S.Requests += Partial[T].Requests;
    S.Ok200 += Partial[T].Ok200;
    S.Degraded += Partial[T].Degraded;
    S.Other += Partial[T].Other;
    All.insert(All.end(), Latencies[T].begin(), Latencies[T].end());
  }
  std::sort(All.begin(), All.end());
  S.P50Ms = percentile(All, 0.50);
  S.P99Ms = percentile(All, 0.99);
  S.P999Ms = percentile(All, 0.999);
  return S;
}

void printPhase(std::ofstream &Out, const char *Name, const PhaseStats &S) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"name\":\"%s\",\"requests\":%llu,\"elapsed_s\":%.3f,"
      "\"qps\":%.1f,\"ok200\":%llu,\"degraded\":%llu,\"other\":%llu,"
      "\"latency_ms\":{\"p50\":%.4f,\"p99\":%.4f,\"p999\":%.4f}}",
      Name, static_cast<unsigned long long>(S.Requests), S.ElapsedSec,
      S.qps(), static_cast<unsigned long long>(S.Ok200),
      static_cast<unsigned long long>(S.Degraded),
      static_cast<unsigned long long>(S.Other), S.P50Ms, S.P99Ms, S.P999Ms);
  Out << Buf;
  std::printf("%-16s %8llu req  %9.1f req/s  p50=%.4fms p99=%.4fms "
              "degraded=%llu\n",
              Name, static_cast<unsigned long long>(S.Requests), S.qps(),
              S.P50Ms, S.P99Ms,
              static_cast<unsigned long long>(S.Degraded));
}

/// Sums one sandbox counter across the per-shard "sandbox":{...} objects
/// in a STATS document.
uint64_t sumSandboxCounter(const std::string &Json, const char *Key) {
  uint64_t Total = 0;
  std::string Needle = std::string("\"") + Key + "\":";
  for (size_t Pos = Json.find("\"sandbox\":{"); Pos != std::string::npos;
       Pos = Json.find("\"sandbox\":{", Pos + 1)) {
    size_t End = Json.find('}', Pos);
    size_t K = Json.find(Needle, Pos);
    if (K == std::string::npos || K > End)
      continue;
    Total += std::strtoull(Json.c_str() + K + Needle.size(), nullptr, 10);
  }
  return Total;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t PerPhase = 200000;
  std::string OutPath = "BENCH_sandbox.json";
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--quick")
      PerPhase = 10000;
    else
      OutPath = Arg;
  }
  unsigned Threads = std::max(2u, std::thread::hardware_concurrency());

  std::vector<std::string> Scripts;
  for (unsigned I = 0; I != NumScripts; ++I)
    Scripts.push_back(syntheticScript(I));

  DaemonConfig Base;
  Base.Shards = 4;
  Base.WorkersPerShard = std::max(1u, Threads / 4);
  Base.MaxQueueDepth = 4096;
  Base.QuarantineDir = ""; // Nothing here should be quarantined.

  // Phase 1: the baseline — shards serve inline.
  PhaseStats Inproc;
  {
    DaemonConfig C = Base;
    C.Isolation = "inproc";
    Daemon D(C);
    Inproc = runPhase(D, PerPhase, Threads, Scripts);
  }

  // Phase 2: identical traffic through forked sandbox workers.
  PhaseStats Process;
  {
    DaemonConfig C = Base;
    C.Isolation = "process";
    Daemon D(C);
    Process = runPhase(D, PerPhase, Threads, Scripts);
  }

  // Phase 3: the same process-isolated soak while workers are being
  // SIGKILLed out from under it. Throughput dips and degraded serves
  // appear; protocol errors and daemon deaths must not. The phase is a
  // tenth of the others (each kill can cost a respawn round-trip) and
  // requests carry a short deadline so a freshly-killed shard sheds
  // instead of parking the driver for the default 10 s.
  PhaseStats Chaos;
  uint64_t Crashes = 0, Respawns = 0;
  {
    DaemonConfig C = Base;
    C.Isolation = "process";
    C.HeartbeatIntervalMs = 100;
    C.DeadlineMs = 1000;
    Daemon D(C);
    std::atomic<bool> Stop{false};
    std::thread Killer([&] {
      unsigned Tick = 0;
      // First kill lands early so even a fast phase sees at least one.
      unsigned DelayMs = 50;
      while (!Stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
        DelayMs = 250;
        std::vector<pid_t> Pids = D.workerPids();
        if (!Pids.empty())
          ::kill(Pids[Tick++ % Pids.size()], SIGKILL);
      }
    });
    Chaos = runPhase(D, std::max<uint64_t>(PerPhase / 10, 20000), Threads,
                     Scripts);
    Stop.store(true);
    Killer.join();
    Request Stats;
    Stats.V = Verb::Stats;
    std::string Json = D.handle(Stats).Body;
    Crashes = sumSandboxCounter(Json, "crashes");
    Respawns = sumSandboxCounter(Json, "respawns");
  }

  double Overhead = Process.qps() > 0 ? Inproc.qps() / Process.qps() : 0;

  std::ofstream Out(OutPath, std::ios::trunc);
  Out << "{\"bench\":\"sandbox_overhead\",\"requests_per_phase\":" << PerPhase
      << ",\"threads\":" << Threads << ",\"shards\":" << Base.Shards
      << ",\"phases\":[";
  printPhase(Out, "inproc", Inproc);
  Out << ",";
  printPhase(Out, "process", Process);
  Out << ",";
  printPhase(Out, "process-chaos", Chaos);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "],\"isolation_overhead_x\":%.2f,"
                "\"chaos\":{\"crashes\":%llu,\"respawns\":%llu}}\n",
                Overhead, static_cast<unsigned long long>(Crashes),
                static_cast<unsigned long long>(Respawns));
  Out << Buf;
  Out.close();

  std::printf("isolation overhead: %.2fx (inproc %.0f req/s vs process "
              "%.0f req/s); chaos: %llu crash(es), %llu respawn(s)\n",
              Overhead, Inproc.qps(), Process.qps(),
              static_cast<unsigned long long>(Crashes),
              static_cast<unsigned long long>(Respawns));
  std::printf("wrote %s\n", OutPath.c_str());

  // The containment contract, benchmarked: every request in every phase
  // got a 200, even with workers dying mid-soak.
  if (Inproc.Ok200 != Inproc.Requests || Process.Ok200 != Process.Requests ||
      Chaos.Ok200 != Chaos.Requests) {
    std::fprintf(stderr, "FAIL: a request did not answer 200\n");
    return 1;
  }
  if (Inproc.Degraded + Inproc.Other + Process.Degraded + Process.Other !=
      0) {
    std::fprintf(stderr,
                 "FAIL: calm phases saw non-succeeded responses\n");
    return 1;
  }
  return 0;
}
