//===- fig4_compound.cpp - Paper Fig. 4: the compound example ---------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Fig. 4 experiment: a doubly nested loop with
/// diagonal accesses, a row-by-column dot product, a genuine matrix
/// product against an index vector, a transposed read and a broadcast. The
/// paper reports ~25 s for the loops vs ~0.5 s vectorized (speedup ~50) at
/// the stated 1500x1501 sizes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

using namespace mvecbench;

namespace {

/// The Fig. 4 program at scale factor \p Half (the paper uses Half = 750:
/// loops i=2:2:1500 and j=3:2:1501 with ind = 1:750).
Workload fig4(int Half) {
  int N = 2 * Half;      // 1500
  int M = 2 * Half + 1;  // 1501
  Workload W;
  W.Name = "fig4/half=" + std::to_string(Half);
  W.Setup = "%! A(*,*) B(*,*) C(*,*) D(*,*) a(1,*) ind(1,*)\n"
            "A = rand(" + std::to_string(N) + "," + std::to_string(M) + ");\n"
            "B = rand(" + std::to_string(N) + "," + std::to_string(M) + ");\n"
            "C = rand(" + std::to_string(N) + "," + std::to_string(M) + ");\n"
            "D = rand(" + std::to_string(M) + "," + std::to_string(M) + ");\n"
            "a = rand(1," + std::to_string(2 * N) + ");\n"
            "ind = 1:" + std::to_string(Half) + ";\n";
  W.Kernel = "for i=2:2:" + std::to_string(N) + "\n"
             " B(i,1) = D(i,i)*A(i,i)+C(i,:)*D(:,i);\n"
             " for j=3:2:" + std::to_string(M) + "\n"
             "  A(i,j) = B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);\n"
             " end\n"
             "end\n";
  return W;
}

const PreparedWorkload &prepared(int Half) {
  static std::map<int, std::unique_ptr<PreparedWorkload>> Cache;
  auto &Slot = Cache[Half];
  if (!Slot)
    Slot = std::make_unique<PreparedWorkload>(fig4(Half));
  return *Slot;
}

void BM_Fig4Loop(benchmark::State &State) {
  const PreparedWorkload &P = prepared(static_cast<int>(State.range(0)));
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runOriginalKernel(Workspace);
}

void BM_Fig4Vectorized(benchmark::State &State) {
  const PreparedWorkload &P = prepared(static_cast<int>(State.range(0)));
  Interpreter Workspace = P.makeSetupWorkspace();
  for (auto _ : State)
    P.runVectorizedKernel(Workspace);
}

BENCHMARK(BM_Fig4Loop)->Arg(25)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig4Vectorized)->Arg(25)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void printPaperSection() {
  printPaperHeader("Paper Fig. 4: compound example, 1500x1501 matrices");
  const PreparedWorkload &P = prepared(750);
  Interpreter Workspace = P.makeSetupWorkspace();
  double In = timeSeconds([&] { P.runOriginalKernel(Workspace); }, 1);
  double Vect = timeSeconds([&] { P.runVectorizedKernel(Workspace); }, 1);
  printPaperRow("Fig. 4 loops (i=2:2:1500)", In, Vect, "~25s", "~0.5s",
                "~50x");
  std::printf("\nvectorized form:\n%s\n",
              P.VectorizedSource
                  .substr(P.VectorizedSource.find("B(2*(1:750)"))
                  .c_str());
}

} // namespace

int main(int argc, char **argv) {
  printPaperSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
