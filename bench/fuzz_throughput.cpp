//===- fuzz_throughput.cpp - Fuzzing pipeline throughput --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the differential-fuzzing pipeline's end-to-end throughput
/// (candidates classified per second): generate -> vectorize -> run both
/// programs -> compare workspaces, fanned out over the oracle's service
/// workers. Run at 1 worker and at N workers to see how much of the
/// oracle's work parallelizes. Emits BENCH_fuzz.json so later PRs have a
/// perf trajectory to beat.
///
/// The candidate stream is fixed (seeds 0..NumPrograms-1, same mix of
/// generator families every run), so runs are comparable across commits.
///
/// Usage: fuzz_throughput [output.json]
///
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace mvec;
using namespace mvec::fuzz;

namespace {

constexpr int NumPrograms = 256;

std::vector<GenProgram> makeCandidates() {
  std::vector<GenProgram> Candidates;
  Candidates.reserve(NumPrograms);
  for (int Seed = 0; Seed != NumPrograms; ++Seed)
    Candidates.push_back(Generator(static_cast<uint64_t>(Seed)).next());
  return Candidates;
}

struct Sample {
  unsigned Jobs;
  double ProgramsPerSec;
  unsigned Findings;
};

Sample runOnce(unsigned Jobs, const std::vector<GenProgram> &Candidates) {
  OracleConfig Config;
  Config.Jobs = Jobs;
  // The benchmark re-checks one fixed candidate set; a cache would turn
  // the second configuration into a no-op measurement.
  Config.CacheCapacity = 0;
  Oracle O(Config);

  auto Start = std::chrono::steady_clock::now();
  std::vector<Verdict> Verdicts = O.checkBatch(Candidates);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  Sample S;
  S.Jobs = Jobs;
  S.ProgramsPerSec = NumPrograms / Secs;
  S.Findings = 0;
  for (const Verdict &V : Verdicts)
    if (V.isFinding())
      ++S.Findings;
  return S;
}

} // namespace

int main(int argc, char **argv) {
  const std::string OutPath = argc > 1 ? argv[1] : "BENCH_fuzz.json";
  const unsigned HostCores =
      std::max(1u, std::thread::hardware_concurrency());

  // Sweep the full ladder so the scaling curve (not just its endpoints)
  // is on record; include hardware_concurrency when it sits above the
  // ladder. Ideal scaling is bounded by min(jobs, host cores) — the JSON
  // carries the core count so a 1.0x plateau on a small host reads as
  // "core-bound", not "lock-bound".
  std::vector<unsigned> JobLadder = {1, 2, 4, 8};
  if (HostCores > JobLadder.back())
    JobLadder.push_back(HostCores);

  std::vector<GenProgram> Candidates = makeCandidates();
  std::printf("fuzz_throughput: %d generated candidates per run "
              "(differential oracle, validate+compare), %u host cores\n\n",
              NumPrograms, HostCores);
  std::printf("%8s %22s %10s\n", "jobs", "programs/sec", "findings");

  std::vector<Sample> Samples;
  for (unsigned Jobs : JobLadder) {
    Sample S = runOnce(Jobs, Candidates);
    Samples.push_back(S);
    std::printf("%8u %22.1f %10u\n", S.Jobs, S.ProgramsPerSec, S.Findings);
    if (S.Findings != 0) {
      // The benchmark corpus must be clean: a finding here means the
      // pipeline regressed, and the timing would measure reduction noise.
      std::fprintf(stderr, "error: %u findings on the benchmark stream\n",
                   S.Findings);
      return 1;
    }
  }

  double Best = 0;
  for (const Sample &S : Samples)
    Best = std::max(Best, S.ProgramsPerSec);
  double Scaling = Best / Samples[0].ProgramsPerSec;
  std::printf("\nbest scaling vs 1 job: %.2fx (ideal bound %ux)\n", Scaling,
              HostCores);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n  \"benchmark\": \"fuzz_throughput\",\n"
      << "  \"programs\": " << NumPrograms << ",\n"
      << "  \"host_cores\": " << HostCores << ",\n  \"runs\": [\n";
  for (size_t I = 0; I != Samples.size(); ++I) {
    const Sample &S = Samples[I];
    Out << "    {\"jobs\": " << S.Jobs
        << ", \"programs_per_sec\": " << S.ProgramsPerSec << "}"
        << (I + 1 == Samples.size() ? "\n" : ",\n");
  }
  Out << "  ],\n  \"scaling_max_vs_1\": " << Scaling << "\n}\n";
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
