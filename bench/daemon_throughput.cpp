//===- daemon_throughput.cpp - Daemon soak benchmark -------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mvecd soak: a million VEC requests driven straight into the
/// transport-independent Daemon core (no sockets — this measures the
/// shard/cache/store machinery, not the kernel's TCP stack), with a full
/// daemon restart in the middle. The restart is the point: phase B starts
/// with cold memory caches over a warm disk store, so its disk-hit count
/// proves persisted results actually survive a process generation.
///
/// Emits BENCH_daemon.json — sustained QPS, exact p50/p99/p999 latency,
/// and the memory/disk/cold serve mix per phase, plus the disk-store
/// counters after the restart. Same schema family as the daemon's own
/// STATS document (ServiceMetrics JSON embedded per shard is available
/// from the live daemon; this file keeps the flat summary CI trends).
///
/// Usage: daemon_throughput [--quick] [output.json]
///   --quick   20k requests instead of a million (CI smoke)
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace mvec::daemon;

namespace {

/// Distinct scripts in the key population. Small enough that both cache
/// tiers cover it (steady state is ~pure hits, like a real hot daemon),
/// large enough to spread across shards.
constexpr unsigned NumScripts = 32;

std::string syntheticScript(unsigned Tag) {
  std::string S = "% soak script " + std::to_string(Tag) + "\n";
  S += "n = " + std::to_string(8 + Tag % 8) +
       "; x = rand(1,n); y = rand(1,n); z = zeros(1,n);\n"
       "%! x(1,*) y(1,*) z(1,*) n(1)\n"
       "for i=1:n\n  z(i) = 2*x(i)+y(i)^2;\nend\n";
  return S;
}

struct PhaseStats {
  uint64_t Requests = 0;
  double ElapsedSec = 0;
  uint64_t Memory = 0, Disk = 0, Cold = 0;
  uint64_t Degraded = 0, Other = 0;
  double P50Ms = 0, P99Ms = 0, P999Ms = 0;
};

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

/// Fires \p Requests VEC requests at \p D from \p Threads driver threads,
/// round-robin over the script population (every script is exercised, and
/// the same index always maps to the same content key and thus shard).
PhaseStats runPhase(Daemon &D, uint64_t Requests, unsigned Threads,
                    const std::vector<std::string> &Scripts) {
  std::vector<std::vector<double>> Latencies(Threads);
  std::vector<PhaseStats> Partial(Threads);
  std::atomic<uint64_t> Next{0};
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T) {
    Pool.emplace_back([&, T] {
      Latencies[T].reserve(Requests / Threads + 1);
      for (;;) {
        uint64_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= Requests)
          break;
        Request Req;
        Req.V = Verb::Vec;
        Req.Tenant = "soak-" + std::to_string(T % 4);
        Req.Name = "req" + std::to_string(I);
        Req.Body = Scripts[I % Scripts.size()];
        auto T0 = std::chrono::steady_clock::now();
        Response Resp = D.handle(Req);
        auto T1 = std::chrono::steady_clock::now();
        Latencies[T].push_back(
            std::chrono::duration<double, std::milli>(T1 - T0).count());
        PhaseStats &S = Partial[T];
        ++S.Requests;
        if (Resp.CacheTier == "memory")
          ++S.Memory;
        else if (Resp.CacheTier == "disk")
          ++S.Disk;
        else
          ++S.Cold;
        if (Resp.Status == "degraded")
          ++S.Degraded;
        else if (Resp.Status != "succeeded")
          ++S.Other;
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();

  PhaseStats S;
  S.ElapsedSec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  std::vector<double> All;
  for (unsigned T = 0; T != Threads; ++T) {
    S.Requests += Partial[T].Requests;
    S.Memory += Partial[T].Memory;
    S.Disk += Partial[T].Disk;
    S.Cold += Partial[T].Cold;
    S.Degraded += Partial[T].Degraded;
    S.Other += Partial[T].Other;
    All.insert(All.end(), Latencies[T].begin(), Latencies[T].end());
  }
  std::sort(All.begin(), All.end());
  S.P50Ms = percentile(All, 0.50);
  S.P99Ms = percentile(All, 0.99);
  S.P999Ms = percentile(All, 0.999);
  return S;
}

void printPhase(std::ofstream &Out, const char *Name, const PhaseStats &S) {
  double Qps = S.ElapsedSec > 0
                   ? static_cast<double>(S.Requests) / S.ElapsedSec
                   : 0;
  double Hits = static_cast<double>(S.Memory + S.Disk);
  double HitRatio =
      S.Requests ? Hits / static_cast<double>(S.Requests) : 0;
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"name\":\"%s\",\"requests\":%llu,\"elapsed_s\":%.3f,"
      "\"qps\":%.1f,\"serves\":{\"memory\":%llu,\"disk\":%llu,"
      "\"cold\":%llu},\"hit_ratio\":%.4f,\"degraded\":%llu,"
      "\"other\":%llu,\"latency_ms\":{\"p50\":%.4f,\"p99\":%.4f,"
      "\"p999\":%.4f}}",
      Name, static_cast<unsigned long long>(S.Requests), S.ElapsedSec, Qps,
      static_cast<unsigned long long>(S.Memory),
      static_cast<unsigned long long>(S.Disk),
      static_cast<unsigned long long>(S.Cold), HitRatio,
      static_cast<unsigned long long>(S.Degraded),
      static_cast<unsigned long long>(S.Other), S.P50Ms, S.P99Ms, S.P999Ms);
  Out << Buf;
  std::printf("%-14s %8llu req  %9.1f req/s  p50=%.4fms p99=%.4fms "
              "p999=%.4fms  mem=%llu disk=%llu cold=%llu\n",
              Name, static_cast<unsigned long long>(S.Requests), Qps,
              S.P50Ms, S.P99Ms, S.P999Ms,
              static_cast<unsigned long long>(S.Memory),
              static_cast<unsigned long long>(S.Disk),
              static_cast<unsigned long long>(S.Cold));
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t TotalRequests = 1000000;
  std::string OutPath = "BENCH_daemon.json";
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--quick")
      TotalRequests = 20000;
    else
      OutPath = Arg;
  }
  unsigned Threads = std::max(2u, std::thread::hardware_concurrency());

  namespace fs = std::filesystem;
  fs::path StoreDir = fs::temp_directory_path() / "mvec_bench_daemon_store";
  std::error_code EC;
  fs::remove_all(StoreDir, EC); // Always a cold store at phase A.

  std::vector<std::string> Scripts;
  for (unsigned I = 0; I != NumScripts; ++I)
    Scripts.push_back(syntheticScript(I));

  DaemonConfig Config;
  Config.Shards = 4;
  Config.WorkersPerShard = std::max(1u, Threads / 4);
  Config.StoreDir = StoreDir.string();
  Config.MaxQueueDepth = 4096; // A soak measures latency, not shedding.

  uint64_t Half = TotalRequests / 2;
  PhaseStats A, B;
  uint64_t DiskHits = 0, DiskEntries = 0;
  {
    Daemon D(Config);
    A = runPhase(D, Half, Threads, Scripts);
  } // Restart: the daemon (and its memory caches) dies; the store stays.
  {
    Daemon D(Config);
    B = runPhase(D, TotalRequests - Half, Threads, Scripts);
    DiskHits = D.store()->hits();
    DiskEntries = D.store()->entries();
  }

  std::ofstream Out(OutPath, std::ios::trunc);
  Out << "{\"bench\":\"daemon_throughput\",\"requests\":" << TotalRequests
      << ",\"threads\":" << Threads << ",\"shards\":" << Config.Shards
      << ",\"scripts\":" << NumScripts << ",\"phases\":[";
  printPhase(Out, "pre-restart", A);
  Out << ",";
  printPhase(Out, "post-restart", B);
  Out << "],\"restart\":{\"disk_hits_after_restart\":" << DiskHits
      << ",\"store_entries\":" << DiskEntries << "}}\n";
  Out.close();

  fs::remove_all(StoreDir, EC);

  std::printf("disk store after restart: %llu hit(s), %llu entr%s\n",
              static_cast<unsigned long long>(DiskHits),
              static_cast<unsigned long long>(DiskEntries),
              DiskEntries == 1 ? "y" : "ies");
  std::printf("wrote %s\n", OutPath.c_str());

  // The restart contract is the whole reason this soak exists: phase B
  // must have warmed from disk, not recompiled the world.
  if (DiskHits == 0) {
    std::fprintf(stderr,
                 "FAIL: no disk-store hits after the mid-soak restart\n");
    return 1;
  }
  if (A.Degraded + A.Other + B.Degraded + B.Other != 0) {
    std::fprintf(stderr, "FAIL: soak saw non-succeeded responses\n");
    return 1;
  }
  return 0;
}
