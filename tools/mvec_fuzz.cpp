//===- mvec_fuzz.cpp - Differential fuzzing driver ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing front door:
///
///   mvec_fuzz [--seed N] [--time SECONDS] [--jobs N] ...   fuzz
///   mvec_fuzz --replay [--corpus DIR]                      regression run
///
/// The candidate stream is a pure function of --seed: candidate k is
/// produced from Rng::deriveSeed(seed, k), so two runs with the same
/// seed generate byte-identical programs in the same order regardless of
/// --jobs, machine load or wall-clock budget (a shorter --time merely
/// truncates the stream). Candidates are classified in parallel on
/// mvec::service workers; findings are deduplicated by bucket signature,
/// minimized with the reducer, and optionally persisted to the corpus.
///
/// Exit status: 0 when every finding maps to a bucket already triaged in
/// the corpus (or no findings at all); 1 when a new, unresolved bucket
/// appeared (or, under --replay, a fixed entry regressed); 2 on usage
/// errors.
///
/// Options:
///   --seed N            stream seed (default 1)
///   --time SECONDS      wall-clock budget (default 30; 0 = no limit)
///   --max-programs N    stop after N candidates (0 = no limit)
///   --jobs N            oracle worker threads (default 4)
///   --corpus DIR        corpus directory (default ./corpus when present)
///   --deadline-ms N     per-candidate deadline (default 2000)
///   --max-steps N       interpreter step budget per run (default 2000000)
///   --mutate-percent P  share of candidates that are mutants (default 40)
///   --engine E          execution tier: ast (default), vm, or both
///                       (both cross-checks the tree-walker against the
///                       bytecode VM on every program)
///   --cost-model M      profitability model: off (default), on, or both
///                       (both runs every candidate with the model off
///                       and on and demands identical behaviour)
///   --cost-profile P    calibrated costs.mvec.json for on/both (default:
///                       the built-in conservative profile)
///   --simd LEVEL        pin the kernel dispatch level (auto|scalar|sse2|
///                       sse41|avx2; MVEC_SIMD env is the default)
///   --no-reduce         keep findings unminimized
///   --save-new          persist new findings into the corpus
///   --replay            re-run the corpus as a regression suite and exit
///   --stats             print service metrics at the end
///
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "fuzz/Corpus.h"
#include "interp/simd/SimdDispatch.h"
#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace mvec;
using namespace mvec::fuzz;

namespace {

/// SIGINT/SIGTERM end the run early but cleanly: the current batch
/// finishes, findings so far are flushed (reported and, with --save-new,
/// persisted), and the process exits 0 — an interrupted fuzz run is not a
/// failed one.
volatile std::sig_atomic_t Interrupted = 0;
void onStopSignal(int) { Interrupted = 1; }

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--time SECONDS] [--max-programs N] [--jobs N]\n"
      "       %*s [--corpus DIR] [--deadline-ms N] [--max-steps N]\n"
      "       %*s [--mutate-percent P] [--engine ast|vm|both]\n"
      "       %*s [--cost-model off|on|both] [--cost-profile FILE]\n"
      "       %*s [--simd LEVEL] [--no-reduce] [--save-new] [--stats]\n"
      "       %s --replay [--corpus DIR] [--jobs N] [--engine ast|vm|both]"
      " [--stats]\n",
      Argv0, static_cast<int>(std::strlen(Argv0)), "",
      static_cast<int>(std::strlen(Argv0)), "",
      static_cast<int>(std::strlen(Argv0)), "",
      static_cast<int>(std::strlen(Argv0)), "", Argv0);
  return 2;
}

struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned TimeSeconds = 30;
  uint64_t MaxPrograms = 0;
  unsigned Jobs = 4;
  std::string CorpusDir;
  unsigned DeadlineMs = 2000;
  uint64_t MaxSteps = 2000000;
  int MutatePercent = 40;
  EngineMode Engine = EngineMode::Ast;
  CostMode Cost = CostMode::Off;
  std::string CostProfile;
  bool Reduce = true;
  bool SaveNew = false;
  bool Replay = false;
  bool Stats = false;
};

/// Produces candidate \p Index of the stream for \p Seed. Mutation bases
/// come from \p Donors (corpus seeds plus a ring of recent generator
/// output) so the mutator explores neighborhoods of interesting programs.
GenProgram makeCandidate(uint64_t Seed, uint64_t Index, int MutatePercent,
                         const std::vector<std::string> &Donors) {
  uint64_t CandidateSeed = Rng::deriveSeed(Seed, Index);
  Rng Decide(Rng::deriveSeed(CandidateSeed, /*Salt=*/0x6d757461746eull));
  if (!Donors.empty() && Decide.percent(MutatePercent)) {
    const std::string &Base = Decide.pick(Donors);
    const std::string &Donor = Decide.pick(Donors);
    Mutator M(CandidateSeed);
    Mutant Mut = M.mutate(Base, &Donor);
    GenProgram P;
    P.Source = std::move(Mut.Source);
    P.Family = Mut.Trace.empty() ? "mutate:none" : "mutate:" + Mut.Trace;
    return P;
  }
  return Generator(CandidateSeed).next();
}

int replayCorpus(Corpus &C, const Oracle &O, bool Stats) {
  if (C.entries().empty()) {
    std::printf("corpus '%s' is empty; nothing to replay\n",
                C.dir().c_str());
    return 0;
  }
  unsigned Regressions = 0, StillOpen = 0, NowPassing = 0;
  for (const ReplayResult &R : C.replay(O)) {
    if (R.Regressed) {
      ++Regressions;
      std::printf("REGRESSED  %-40s %s\n", R.Entry->Name.c_str(),
                  R.V.isFinding() ? R.V.F.Message.c_str()
                                  : "no longer a valid program");
      continue;
    }
    if (R.Entry->Fixed) {
      std::printf("ok         %s\n", R.Entry->Name.c_str());
      continue;
    }
    if (R.V.isFinding()) {
      ++StillOpen;
      std::printf("still-open %-40s %s\n", R.Entry->Name.c_str(),
                  R.V.F.Bucket.c_str());
    } else {
      ++NowPassing;
      std::printf("now-passes %-40s consider flipping status to fixed\n",
                  R.Entry->Name.c_str());
    }
  }
  std::printf("replayed %zu entries: %u regressed, %u still open, "
              "%u open-but-passing\n",
              C.entries().size(), Regressions, StillOpen, NowPassing);
  if (Stats)
    std::fputs(const_cast<Oracle &>(O).metrics().text().c_str(), stdout);
  return Regressions == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);

  FuzzOptions Opt;
  bool CorpusExplicit = false;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 == Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t Value = 0;
    if (Arg == "--seed" && NextValue(Value))
      Opt.Seed = Value;
    else if (Arg == "--time" && NextValue(Value))
      Opt.TimeSeconds = static_cast<unsigned>(Value);
    else if (Arg == "--max-programs" && NextValue(Value))
      Opt.MaxPrograms = Value;
    else if (Arg == "--jobs" && NextValue(Value))
      Opt.Jobs = std::max<unsigned>(1, static_cast<unsigned>(Value));
    else if (Arg == "--corpus" && I + 1 != Argc) {
      Opt.CorpusDir = Argv[++I];
      CorpusExplicit = true;
    } else if (Arg == "--deadline-ms" && NextValue(Value))
      Opt.DeadlineMs = static_cast<unsigned>(Value);
    else if (Arg == "--max-steps" && NextValue(Value))
      Opt.MaxSteps = Value;
    else if (Arg == "--mutate-percent" && NextValue(Value))
      Opt.MutatePercent = std::min(100, static_cast<int>(Value));
    else if (Arg == "--engine" && I + 1 != Argc) {
      std::string Mode = Argv[++I];
      if (Mode == "ast")
        Opt.Engine = EngineMode::Ast;
      else if (Mode == "vm")
        Opt.Engine = EngineMode::Vm;
      else if (Mode == "both")
        Opt.Engine = EngineMode::Both;
      else
        return usage(Argv[0]);
    } else if (Arg == "--cost-model" && I + 1 != Argc) {
      std::string Mode = Argv[++I];
      if (Mode == "off")
        Opt.Cost = CostMode::Off;
      else if (Mode == "on")
        Opt.Cost = CostMode::On;
      else if (Mode == "both")
        Opt.Cost = CostMode::Both;
      else
        return usage(Argv[0]);
    } else if (Arg == "--cost-profile" && I + 1 != Argc) {
      Opt.CostProfile = Argv[++I];
    } else if (simd::handleSimdFlag(Argc, Argv, I)) {
      // kernel dispatch configured (exits with status 2 on a bad level)
    } else if (Arg == "--no-reduce")
      Opt.Reduce = false;
    else if (Arg == "--save-new")
      Opt.SaveNew = true;
    else if (Arg == "--replay")
      Opt.Replay = true;
    else if (Arg == "--stats")
      Opt.Stats = true;
    else
      return usage(Argv[0]);
  }
  if (Opt.CorpusDir.empty() && !CorpusExplicit &&
      std::filesystem::is_directory("corpus"))
    Opt.CorpusDir = "corpus";

  OracleConfig OC;
  OC.Jobs = Opt.Jobs;
  OC.Deadline = std::chrono::milliseconds(Opt.DeadlineMs);
  OC.MaxSteps = Opt.MaxSteps;
  OC.Engine = Opt.Engine;
  OC.Cost = Opt.Cost;
  std::unique_ptr<cost::CostModel> Model;
  if (Opt.Cost != CostMode::Off) {
    std::string Diag;
    Model = std::make_unique<cost::CostModel>(
        cost::loadCostProfileOrDefault(Opt.CostProfile, Diag));
    if (!Diag.empty())
      std::fprintf(stderr, "mvec_fuzz: %s\n", Diag.c_str());
    OC.Model = Model.get();
  }
  Oracle O(OC);

  Corpus C(Opt.CorpusDir.empty() ? std::string("corpus") : Opt.CorpusDir);
  if (!Opt.CorpusDir.empty())
    C.load();

  if (Opt.Replay)
    return replayCorpus(C, O, Opt.Stats);

  // Donor pool for mutation: the corpus seeds, plus a bounded ring of
  // recent generator output. The ring's contents depend only on the
  // candidate indices already emitted, keeping the stream seed-pure.
  std::vector<std::string> Donors;
  for (const CorpusEntry &Entry : C.entries())
    Donors.push_back(Entry.Source);
  size_t CorpusDonors = Donors.size();
  constexpr size_t RingCapacity = 64;
  size_t RingNext = 0;

  auto Start = std::chrono::steady_clock::now();
  auto expired = [&] {
    if (Interrupted)
      return true;
    if (Opt.TimeSeconds == 0)
      return false;
    return std::chrono::steady_clock::now() - Start >=
           std::chrono::seconds(Opt.TimeSeconds);
  };

  uint64_t Produced = 0, OkCount = 0, RejectedCount = 0, FindingCount = 0;
  // Bucket -> representative finding, accumulated across batches. Known
  // buckets (already triaged in the corpus) are counted separately.
  std::map<std::string, Finding> NewBuckets;
  std::map<std::string, uint64_t> KnownBucketHits;
  const size_t BatchSize = std::max<size_t>(8, 4 * Opt.Jobs);

  while (!expired() &&
         (Opt.MaxPrograms == 0 || Produced < Opt.MaxPrograms)) {
    std::vector<GenProgram> Batch;
    while (Batch.size() != BatchSize &&
           (Opt.MaxPrograms == 0 || Produced < Opt.MaxPrograms)) {
      Batch.push_back(
          makeCandidate(Opt.Seed, Produced, Opt.MutatePercent, Donors));
      ++Produced;
    }
    // Recycle generated (non-mutant) programs as future mutation bases.
    for (const GenProgram &P : Batch) {
      if (P.Family.rfind("mutate:", 0) == 0)
        continue;
      if (Donors.size() < CorpusDonors + RingCapacity) {
        Donors.push_back(P.Source);
      } else {
        Donors[CorpusDonors + RingNext] = P.Source;
        RingNext = (RingNext + 1) % RingCapacity;
      }
    }
    for (Verdict &V : O.checkBatch(Batch)) {
      if (V.ok()) {
        ++OkCount;
        continue;
      }
      if (V.rejected()) {
        ++RejectedCount;
        continue;
      }
      ++FindingCount;
      if (C.containsBucket(V.F.Bucket)) {
        ++KnownBucketHits[V.F.Bucket];
        continue;
      }
      if (NewBuckets.emplace(V.F.Bucket, V.F).second)
        std::printf("NEW %s [%s] from %s\n", V.F.Bucket.c_str(),
                    findingKindName(V.F.Kind), V.F.Family.c_str());
    }
  }

  // Minimize one representative per new bucket and (optionally) persist
  // it. Reduction runs on the sync oracle path with the same budgets, so
  // the reproducer keeps hitting the same bucket it was filed under.
  for (auto &[Bucket, F] : NewBuckets) {
    std::string Reproducer = F.Source;
    // After an interrupt, skip minimization (it can take a while) but
    // still report and persist the raw reproducers below.
    if (Opt.Reduce && !Interrupted) {
      const std::string &Want = Bucket;
      ReduceResult RR = reduceProgram(F.Source, [&](const std::string &S) {
        Verdict V = O.check(S);
        return V.isFinding() && V.F.Bucket == Want;
      });
      Reproducer = RR.Reduced;
      std::printf("reduced %s: %zu -> %zu tokens (%u checks)\n",
                  Bucket.c_str(), RR.OriginalTokens, RR.ReducedTokens,
                  RR.Checks);
    }
    std::printf("---- %s (%s, family %s)\n%s----\n%s\n", Bucket.c_str(),
                findingKindName(F.Kind), F.Family.c_str(), F.Message.c_str(),
                Reproducer.c_str());
    if (Opt.SaveNew) {
      F.Source = Reproducer;
      std::string Path = C.add(F, Reproducer);
      if (!Path.empty())
        std::printf("saved %s\n", Path.c_str());
    }
  }

  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  double Rate = Elapsed > 0 ? 1000.0 * static_cast<double>(Produced) /
                                  static_cast<double>(Elapsed)
                            : 0.0;
  std::printf("seed %llu: %llu programs in %lld ms (%.1f/s) — %llu ok, "
              "%llu rejected, %llu findings; %zu known buckets, %zu new\n",
              static_cast<unsigned long long>(Opt.Seed),
              static_cast<unsigned long long>(Produced),
              static_cast<long long>(Elapsed), Rate,
              static_cast<unsigned long long>(OkCount),
              static_cast<unsigned long long>(RejectedCount),
              static_cast<unsigned long long>(FindingCount),
              KnownBucketHits.size(), NewBuckets.size());
  if (Opt.Stats)
    std::fputs(O.metrics().text().c_str(), stdout);
  if (Interrupted) {
    std::printf("interrupted; state flushed\n");
    return 0;
  }
  return NewBuckets.empty() ? 0 : 1;
}
