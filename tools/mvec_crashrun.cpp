//===- mvec_crashrun.cpp - Sandbox crash-campaign driver ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash campaign: soaks an in-process Daemon configured with
/// `isolation = process` while actively killing its sandbox workers —
/// external SIGKILL/SIGABRT from a killer thread, plus (with --hooks)
/// crash/OOM/wedge-inducing request bodies — and asserts the
/// crash-containment contract held:
///
///   * zero daemon deaths (the campaign completing IS the check: every
///     kill lands in a worker process, never the driver),
///   * every request answered 200 — vectorized, or degraded byte-exact
///     passthrough while workers were down — never a protocol error,
///   * every degraded response body is byte-identical to its request,
///   * workers respawned (respawns > 0 in the final STATS),
///   * with --hooks, every crash-inducing input was quarantined, the
///     quarantine files parse, and their count matches the STATS
///     `quarantined` counter.
///
///   mvec_crashrun [options]
///
/// Options:
///   --seconds N      soak duration (default 5)
///   --shards N       daemon shards (default 2)
///   --workers N      sandbox workers per shard (default 2)
///   --clients N      driver threads (default 4)
///   --kill-every-ms N  killer thread period (default 40; 0 disables)
///   --hooks          also inject %!sandbox-crash / -oom / -spin bodies
///   --store DIR      disk store directory (default: private temp dir)
///   --json           machine-readable summary on stdout
///
/// Exit status: 0 when every invariant held, 1 on any violation, 2 on
/// usage errors.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "sandbox/Quarantine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

using namespace mvec;
using namespace mvec::daemon;

namespace {

namespace fs = std::filesystem;

std::string corpusScript(unsigned Tag) {
  std::string T = std::to_string(Tag % 64);
  return "% crashrun corpus " + T + "\n"
         "n = 64;\n"
         "a = zeros(1, n);\n"
         "b = zeros(1, n);\n"
         "for i = 1:n\n"
         "  a(i) = i * " + T + ";\n"
         "end\n"
         "%!vec\n"
         "for i = 1:n\n"
         "  b(i) = a(i) * 2 + " + T + ";\n"
         "end\n"
         "s = sum(b);\ndisp(s);\n";
}

struct Tally {
  std::atomic<uint64_t> Sent{0};
  std::atomic<uint64_t> Ok200{0};
  std::atomic<uint64_t> Non200{0};
  std::atomic<uint64_t> Succeeded{0};
  std::atomic<uint64_t> Degraded{0};
  std::atomic<uint64_t> Other{0};
  std::atomic<uint64_t> DegradedMismatch{0};
  std::atomic<uint64_t> HookInputs{0};
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--seconds N] [--shards N] [--workers N]\n"
               "       [--clients N] [--kill-every-ms N] [--hooks]\n"
               "       [--store DIR] [--json]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Seconds = 5, Shards = 2, Workers = 2, Clients = 4;
  unsigned KillEveryMs = 40;
  bool Hooks = false, Json = false;
  std::string StoreDir;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](unsigned &Out) {
      if (I + 1 == Argc)
        return false;
      Out = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
      return true;
    };
    if (Arg == "--seconds" && NextValue(Seconds))
      ;
    else if (Arg == "--shards" && NextValue(Shards) && Shards >= 1)
      ;
    else if (Arg == "--workers" && NextValue(Workers) && Workers >= 1)
      ;
    else if (Arg == "--clients" && NextValue(Clients) && Clients >= 1)
      ;
    else if (Arg == "--kill-every-ms" && NextValue(KillEveryMs))
      ;
    else if (Arg == "--hooks")
      Hooks = true;
    else if (Arg == "--store" && I + 1 != Argc)
      StoreDir = Argv[++I];
    else if (Arg == "--json")
      Json = true;
    else
      return usage(Argv[0]);
  }

  std::string Scratch = "/tmp/mvec_crashrun." + std::to_string(::getpid());
  if (StoreDir.empty())
    StoreDir = Scratch + "/store";
  std::string QuarantineDir = Scratch + "/quarantine";
  fs::create_directories(StoreDir);

  DaemonConfig Config;
  Config.Isolation = "process";
  Config.Shards = Shards;
  Config.WorkersPerShard = Workers;
  Config.StoreDir = StoreDir;
  Config.DeadlineMs = 4000;
  Config.HeartbeatIntervalMs = 100;
  Config.HeartbeatTimeoutMs = 800;
  Config.QuarantineDir = QuarantineDir;
  Config.SandboxTestHooks = Hooks;
  Config.WorkerMemoryMB = 512;

  Tally T;
  std::atomic<bool> Stop{false};

  std::fprintf(stderr,
               "crashrun: %u shard(s) x %u worker(s), %u client(s), "
               "kill every %u ms, hooks %s, %u s soak\n",
               Shards, Workers, Clients, KillEveryMs, Hooks ? "on" : "off",
               Seconds);

  {
    Daemon D(Config);

    // The killer: SIGKILL / SIGABRT a random live worker on a timer —
    // the external half of the campaign (kernel OOM killer, operator
    // kill -9, a chaos monkey).
    std::thread Killer;
    if (KillEveryMs) {
      Killer = std::thread([&] {
        std::mt19937 Rng(0xC0FFEE);
        bool UseAbort = false;
        while (!Stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(KillEveryMs));
          std::vector<pid_t> Pids = D.workerPids();
          if (Pids.empty())
            continue;
          pid_t Victim = Pids[Rng() % Pids.size()];
          ::kill(Victim, UseAbort ? SIGABRT : SIGKILL);
          UseAbort = !UseAbort;
        }
      });
    }

    // The drivers: normal corpus traffic, plus (with --hooks) inputs
    // that make the serving worker abort, OOM, or wedge from inside.
    std::vector<std::thread> Drivers;
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(Seconds);
    for (unsigned C = 0; C != Clients; ++C) {
      Drivers.emplace_back([&, C] {
        std::mt19937 Rng(0x5EED + C);
        unsigned N = 0;
        while (std::chrono::steady_clock::now() < Deadline) {
          Request R;
          R.V = Verb::Vec;
          R.Name = "crashrun-" + std::to_string(C) + "-" + std::to_string(N);
          unsigned Roll = Rng() % 100;
          if (Hooks && Roll < 6) {
            const char *Marker = Roll < 2   ? "%!sandbox-crash\n"
                                 : Roll < 4 ? "%!sandbox-oom\n"
                                            : "%!sandbox-spin\n";
            // Unique tail per hook input so each quarantines separately.
            R.Body = std::string(Marker) + "% hook " + std::to_string(C) +
                     "-" + std::to_string(N) + "\nx = 1;\n";
            R.DeadlineMs = 1500; // Keep spin-hook watchdog kills quick.
            T.HookInputs.fetch_add(1, std::memory_order_relaxed);
          } else {
            R.Body = corpusScript(Rng() % 64);
          }
          ++N;
          T.Sent.fetch_add(1, std::memory_order_relaxed);
          Response Resp = D.handle(R);
          if (Resp.Code != 200) {
            T.Non200.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          T.Ok200.fetch_add(1, std::memory_order_relaxed);
          if (Resp.Status == "succeeded") {
            T.Succeeded.fetch_add(1, std::memory_order_relaxed);
          } else if (Resp.Status == "degraded") {
            T.Degraded.fetch_add(1, std::memory_order_relaxed);
            if (Resp.Body != R.Body)
              T.DegradedMismatch.fetch_add(1, std::memory_order_relaxed);
          } else {
            T.Other.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto &Th : Drivers)
      Th.join();
    Stop.store(true, std::memory_order_relaxed);
    if (Killer.joinable())
      Killer.join();

    // Pull the final counters out of STATS before the daemon dies.
    Request StatsReq;
    StatsReq.V = Verb::Stats;
    Response Stats = D.handle(StatsReq);

    // Aggregate the sandbox counters across shards straight from the
    // fleet (the JSON is for humans; the pids API gives us the pools).
    uint64_t Crashes = 0, Respawns = 0, WatchdogKills = 0, Quarantined = 0;
    {
      // STATS carries per-shard "sandbox":{...} objects; sum them.
      const std::string &J = Stats.Body;
      auto SumKey = [&](const char *Key) {
        uint64_t Total = 0;
        std::string Needle = std::string("\"") + Key + "\":";
        // The sandbox object is the only place these keys exist.
        for (size_t Pos = J.find("\"sandbox\":{"); Pos != std::string::npos;
             Pos = J.find("\"sandbox\":{", Pos + 1)) {
          size_t End = J.find('}', Pos);
          size_t K = J.find(Needle, Pos);
          if (K == std::string::npos || K > End)
            continue;
          Total += std::strtoull(J.c_str() + K + Needle.size(), nullptr, 10);
        }
        return Total;
      };
      Crashes = SumKey("crashes");
      Respawns = SumKey("respawns");
      WatchdogKills = SumKey("watchdog_kills");
      Quarantined = SumKey("quarantined");
    }

    // Count and sanity-check quarantine files.
    uint64_t QuarantineFiles = 0, QuarantineBad = 0;
    std::error_code EC;
    if (fs::is_directory(QuarantineDir, EC)) {
      for (const auto &E : fs::directory_iterator(QuarantineDir, EC)) {
        if (!E.is_regular_file() || E.path().extension() != ".m")
          continue;
        ++QuarantineFiles;
        std::ifstream In(E.path());
        std::string First;
        std::getline(In, First);
        if (First != "% mvec-quarantine v1")
          ++QuarantineBad;
      }
    }

    bool Violations = false;
    auto Check = [&](bool Ok, const char *What) {
      if (!Ok) {
        Violations = true;
        std::fprintf(stderr, "crashrun: VIOLATION: %s\n", What);
      }
    };
    Check(T.Non200.load() == 0, "non-200 response to a valid request");
    Check(T.DegradedMismatch.load() == 0,
          "degraded response body was not byte-exact passthrough");
    Check(T.Ok200.load() == T.Sent.load(), "not every request answered");
    Check(T.Succeeded.load() > 0, "no request succeeded at all");
    if (KillEveryMs && Seconds >= 2) {
      Check(Crashes > 0, "killer ran but STATS shows zero crashes");
      Check(Respawns > 0, "workers died but never respawned");
    }
    if (Hooks && T.HookInputs.load() > 0) {
      Check(Quarantined > 0, "hook inputs crashed workers but none were "
                             "quarantined");
      Check(QuarantineFiles == Quarantined,
            "quarantine file count does not match the STATS counter");
      Check(QuarantineBad == 0, "a quarantine file lacks the v1 header");
      // The watchdog only reliably wins the race to a wedged worker when
      // the external killer is off (otherwise a SIGKILL usually lands
      // first and the death classifies as a crash instead).
      if (!KillEveryMs)
        Check(WatchdogKills > 0, "spin hooks ran but no watchdog kill");
    }

    std::fprintf(stderr,
                 "crashrun: sent=%llu ok200=%llu succeeded=%llu "
                 "degraded=%llu other=%llu\n"
                 "crashrun: crashes=%llu respawns=%llu watchdog_kills=%llu "
                 "quarantined=%llu (files=%llu)\n",
                 (unsigned long long)T.Sent.load(),
                 (unsigned long long)T.Ok200.load(),
                 (unsigned long long)T.Succeeded.load(),
                 (unsigned long long)T.Degraded.load(),
                 (unsigned long long)T.Other.load(),
                 (unsigned long long)Crashes, (unsigned long long)Respawns,
                 (unsigned long long)WatchdogKills,
                 (unsigned long long)Quarantined,
                 (unsigned long long)QuarantineFiles);
    if (Json) {
      std::printf(
          "{\"sent\":%llu,\"ok200\":%llu,\"succeeded\":%llu,"
          "\"degraded\":%llu,\"other\":%llu,\"crashes\":%llu,"
          "\"respawns\":%llu,\"watchdog_kills\":%llu,\"quarantined\":%llu,"
          "\"quarantine_files\":%llu,\"violations\":%s}\n",
          (unsigned long long)T.Sent.load(),
          (unsigned long long)T.Ok200.load(),
          (unsigned long long)T.Succeeded.load(),
          (unsigned long long)T.Degraded.load(),
          (unsigned long long)T.Other.load(), (unsigned long long)Crashes,
          (unsigned long long)Respawns, (unsigned long long)WatchdogKills,
          (unsigned long long)Quarantined,
          (unsigned long long)QuarantineFiles,
          Violations ? "true" : "false");
    }

    if (Violations)
      return 1;
    // Reaching here at all demonstrates containment: every SIGKILL,
    // SIGABRT, OOM and wedge landed in a worker process.
  }
  fs::remove_all(Scratch);
  std::fprintf(stderr, "crashrun: PASS (zero daemon deaths, all-200)\n");
  return 0;
}
