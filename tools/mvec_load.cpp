//===- mvec_load.cpp - mvecd load generator ----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a running mvecd with a configurable workload and reports
/// latency/throughput, doubling as the protocol's reference client:
///
///   mvec_load --port N [--host ADDR] --corpus DIR [options]
///
/// Options:
///   --host ADDR        daemon address (default 127.0.0.1)
///   --port N           daemon port (required)
///   --corpus DIR       population of .m scripts (repeatable)
///   --clients N        concurrent connections (default 4)
///   --tenants N        distinct tenant ids, round-robin (default 2)
///   --duration SECONDS wall-clock budget (default 10; 0 = no limit)
///   --requests N       stop after N requests total (0 = no limit)
///   --rate R           target requests/sec across all clients (0 = max)
///   --skew S           zipf exponent for key popularity (default 1.0;
///                      0 = uniform over the corpus)
///   --deadline-ms N    per-request deadline header (0 = daemon default)
///   --no-validate      ask the daemon to skip differential validation
///   --seed N           RNG seed for key/tenant choice (default 1)
///   --stats            fetch daemon metrics (STATS) after the run
///   --json             machine-readable summary on stdout
///
/// Exit status: 0 when every request was answered with code 200; 1 when
/// any request failed at the protocol/transport level; 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mvec::daemon;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --port N --corpus DIR [--corpus DIR]...\n"
               "       %*s [--host ADDR] [--clients N] [--tenants N]\n"
               "       %*s [--duration SECONDS] [--requests N] [--rate R]\n"
               "       %*s [--skew S] [--deadline-ms N] [--no-validate]\n"
               "       %*s [--seed N] [--stats] [--json]\n",
               Argv0, static_cast<int>(std::strlen(Argv0)), "",
               static_cast<int>(std::strlen(Argv0)), "",
               static_cast<int>(std::strlen(Argv0)), "",
               static_cast<int>(std::strlen(Argv0)), "");
  return 2;
}

struct LoadOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  std::vector<std::string> CorpusDirs;
  unsigned Clients = 4;
  unsigned Tenants = 2;
  unsigned DurationSeconds = 10;
  uint64_t MaxRequests = 0;
  double Rate = 0;
  double Skew = 1.0;
  unsigned DeadlineMs = 0;
  bool Validate = true;
  uint64_t Seed = 1;
  bool Stats = false;
  bool Json = false;
};

/// A blocking protocol client over one TCP connection.
class Client {
public:
  bool connect(const std::string &Host, uint16_t Port, std::string &Error) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
      Error = "invalid address '" + Host + "'";
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      Error = std::string("connect: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return true;
  }

  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Sends \p Req and blocks for its response. False on any transport or
  /// framing error.
  bool roundTrip(const Request &Req, Response &Resp, std::string &Error) {
    std::string Wire = serializeRequest(Req);
    size_t Off = 0;
    while (Off < Wire.size()) {
      ssize_t N = ::send(Fd, Wire.data() + Off, Wire.size() - Off,
                         MSG_NOSIGNAL);
      if (N <= 0) {
        Error = std::string("send: ") + std::strerror(errno);
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    char Buf[64 * 1024];
    for (;;) {
      FrameReader::Frame Frame;
      FrameReader::Result R = Reader.next(Frame, Error);
      if (R == FrameReader::Result::Ready)
        return responseFromFrame(Frame, Resp, Error);
      if (R == FrameReader::Result::Malformed)
        return false;
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N <= 0) {
        Error = N == 0 ? "connection closed by daemon"
                       : std::string("recv: ") + std::strerror(errno);
        return false;
      }
      Reader.feed(Buf, static_cast<size_t>(N));
    }
  }

private:
  int Fd = -1;
  FrameReader Reader;
};

bool collectScripts(const std::string &Dir,
                    std::vector<std::pair<std::string, std::string>> &Out) {
  namespace fs = std::filesystem;
  std::error_code EC;
  std::vector<std::string> Paths;
  for (fs::recursive_directory_iterator It(Dir, EC), End; It != End;
       It.increment(EC)) {
    if (EC)
      return false;
    if (It->is_regular_file() && It->path().extension() == ".m")
      Paths.push_back(It->path().string());
  }
  if (EC)
    return false;
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &Path : Paths) {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return false;
    std::ostringstream SS;
    SS << In.rdbuf();
    Out.emplace_back(Path, SS.str());
  }
  return true;
}

/// Per-thread tally, merged after the run.
struct Tally {
  std::vector<double> LatenciesMs;
  uint64_t Sent = 0, Ok200 = 0, TransportErrors = 0;
  uint64_t Succeeded = 0, Degraded = 0, OtherStatus = 0;
  uint64_t MemoryHits = 0, DiskHits = 0, NoTier = 0;
  std::string FirstError;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

} // namespace

int main(int Argc, char **Argv) {
  LoadOptions Opt;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 == Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    auto NextDouble = [&](double &Out) {
      if (I + 1 == Argc)
        return false;
      Out = std::strtod(Argv[++I], nullptr);
      return Out >= 0;
    };
    uint64_t Value = 0;
    double DValue = 0;
    if (Arg == "--host" && I + 1 != Argc)
      Opt.Host = Argv[++I];
    else if (Arg == "--port" && NextValue(Value) && Value <= 65535)
      Opt.Port = static_cast<uint16_t>(Value);
    else if (Arg == "--corpus" && I + 1 != Argc)
      Opt.CorpusDirs.push_back(Argv[++I]);
    else if (Arg == "--clients" && NextValue(Value) && Value >= 1)
      Opt.Clients = static_cast<unsigned>(Value);
    else if (Arg == "--tenants" && NextValue(Value) && Value >= 1)
      Opt.Tenants = static_cast<unsigned>(Value);
    else if (Arg == "--duration" && NextValue(Value))
      Opt.DurationSeconds = static_cast<unsigned>(Value);
    else if (Arg == "--requests" && NextValue(Value))
      Opt.MaxRequests = Value;
    else if (Arg == "--rate" && NextDouble(DValue))
      Opt.Rate = DValue;
    else if (Arg == "--skew" && NextDouble(DValue))
      Opt.Skew = DValue;
    else if (Arg == "--deadline-ms" && NextValue(Value))
      Opt.DeadlineMs = static_cast<unsigned>(Value);
    else if (Arg == "--no-validate")
      Opt.Validate = false;
    else if (Arg == "--seed" && NextValue(Value))
      Opt.Seed = Value;
    else if (Arg == "--stats")
      Opt.Stats = true;
    else if (Arg == "--json")
      Opt.Json = true;
    else
      return usage(Argv[0]);
  }
  if (Opt.Port == 0 || Opt.CorpusDirs.empty())
    return usage(Argv[0]);

  std::vector<std::pair<std::string, std::string>> Scripts;
  for (const std::string &Dir : Opt.CorpusDirs) {
    if (!collectScripts(Dir, Scripts)) {
      std::fprintf(stderr, "error: cannot read corpus '%s'\n", Dir.c_str());
      return 2;
    }
  }
  if (Scripts.empty()) {
    std::fprintf(stderr, "error: no .m files under the given corpora\n");
    return 2;
  }

  // Zipf popularity over the (sorted) corpus: cumulative weights once,
  // then each draw is one binary search. Skew 0 degenerates to uniform.
  std::vector<double> Cumulative(Scripts.size());
  double Total = 0;
  for (size_t I = 0; I != Scripts.size(); ++I) {
    Total += 1.0 / std::pow(static_cast<double>(I + 1), Opt.Skew);
    Cumulative[I] = Total;
  }

  std::atomic<uint64_t> GlobalSent{0};
  std::atomic<bool> StopFlag{false};
  auto Start = std::chrono::steady_clock::now();
  auto Deadline = Start + std::chrono::seconds(Opt.DurationSeconds);

  // Each client paces itself to its share of the aggregate target rate.
  double PerClientRate =
      Opt.Rate > 0 ? Opt.Rate / static_cast<double>(Opt.Clients) : 0;

  std::vector<Tally> Tallies(Opt.Clients);
  std::vector<std::thread> Threads;
  Threads.reserve(Opt.Clients);
  for (unsigned C = 0; C != Opt.Clients; ++C) {
    Threads.emplace_back([&, C] {
      Tally &T = Tallies[C];
      Client Conn;
      std::string Error;
      if (!Conn.connect(Opt.Host, Opt.Port, Error)) {
        T.TransportErrors = 1;
        T.FirstError = Error;
        return;
      }
      std::mt19937_64 Rng(Opt.Seed * 0x9E3779B97F4A7C15ull + C);
      std::uniform_real_distribution<double> Uniform(0, Total);
      auto NextSend = std::chrono::steady_clock::now();
      while (!StopFlag.load(std::memory_order_relaxed)) {
        if (Opt.DurationSeconds != 0 &&
            std::chrono::steady_clock::now() >= Deadline)
          break;
        if (Opt.MaxRequests != 0 &&
            GlobalSent.fetch_add(1, std::memory_order_relaxed) >=
                Opt.MaxRequests)
          break;
        if (PerClientRate > 0) {
          std::this_thread::sleep_until(NextSend);
          NextSend += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(1.0 / PerClientRate));
        }
        size_t Idx = static_cast<size_t>(
            std::lower_bound(Cumulative.begin(), Cumulative.end(),
                             Uniform(Rng)) -
            Cumulative.begin());
        Idx = std::min(Idx, Scripts.size() - 1);

        Request Req;
        Req.V = Verb::Vec;
        Req.Tenant = "tenant-" + std::to_string(Rng() % Opt.Tenants);
        Req.Name = Scripts[Idx].first;
        Req.Validate = Opt.Validate;
        Req.DeadlineMs = Opt.DeadlineMs;
        Req.Body = Scripts[Idx].second;

        Response Resp;
        auto T0 = std::chrono::steady_clock::now();
        if (!Conn.roundTrip(Req, Resp, Error)) {
          ++T.TransportErrors;
          if (T.FirstError.empty())
            T.FirstError = Error;
          break; // The connection is unusable; this client is done.
        }
        auto T1 = std::chrono::steady_clock::now();
        ++T.Sent;
        T.LatenciesMs.push_back(
            std::chrono::duration<double, std::milli>(T1 - T0).count());
        if (Resp.Code == 200)
          ++T.Ok200;
        if (Resp.Status == "succeeded")
          ++T.Succeeded;
        else if (Resp.Status == "degraded")
          ++T.Degraded;
        else
          ++T.OtherStatus;
        if (Resp.CacheTier == "memory")
          ++T.MemoryHits;
        else if (Resp.CacheTier == "disk")
          ++T.DiskHits;
        else
          ++T.NoTier;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double ElapsedSec = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Start)
                          .count();

  Tally Sum;
  for (const Tally &T : Tallies) {
    Sum.Sent += T.Sent;
    Sum.Ok200 += T.Ok200;
    Sum.TransportErrors += T.TransportErrors;
    Sum.Succeeded += T.Succeeded;
    Sum.Degraded += T.Degraded;
    Sum.OtherStatus += T.OtherStatus;
    Sum.MemoryHits += T.MemoryHits;
    Sum.DiskHits += T.DiskHits;
    Sum.NoTier += T.NoTier;
    Sum.LatenciesMs.insert(Sum.LatenciesMs.end(), T.LatenciesMs.begin(),
                           T.LatenciesMs.end());
    if (Sum.FirstError.empty())
      Sum.FirstError = T.FirstError;
  }
  std::sort(Sum.LatenciesMs.begin(), Sum.LatenciesMs.end());
  double P50 = percentile(Sum.LatenciesMs, 0.50);
  double P90 = percentile(Sum.LatenciesMs, 0.90);
  double P99 = percentile(Sum.LatenciesMs, 0.99);
  double P999 = percentile(Sum.LatenciesMs, 0.999);
  double Qps = ElapsedSec > 0 ? static_cast<double>(Sum.Sent) / ElapsedSec
                              : 0;

  std::string DaemonStats;
  if (Opt.Stats) {
    Client Conn;
    std::string Error;
    Request Req;
    Req.V = Verb::Stats;
    Response Resp;
    if (Conn.connect(Opt.Host, Opt.Port, Error) &&
        Conn.roundTrip(Req, Resp, Error))
      DaemonStats = Resp.Body;
  }

  if (Opt.Json) {
    std::printf("{\"requests\":%llu,\"elapsed_s\":%.3f,\"qps\":%.1f,"
                "\"ok_200\":%llu,\"transport_errors\":%llu,"
                "\"succeeded\":%llu,\"degraded\":%llu,\"other\":%llu,"
                "\"cache\":{\"memory\":%llu,\"disk\":%llu,\"none\":%llu},"
                "\"latency_ms\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,"
                "\"p999\":%.3f}",
                static_cast<unsigned long long>(Sum.Sent), ElapsedSec, Qps,
                static_cast<unsigned long long>(Sum.Ok200),
                static_cast<unsigned long long>(Sum.TransportErrors),
                static_cast<unsigned long long>(Sum.Succeeded),
                static_cast<unsigned long long>(Sum.Degraded),
                static_cast<unsigned long long>(Sum.OtherStatus),
                static_cast<unsigned long long>(Sum.MemoryHits),
                static_cast<unsigned long long>(Sum.DiskHits),
                static_cast<unsigned long long>(Sum.NoTier), P50, P90, P99,
                P999);
    if (!DaemonStats.empty())
      std::printf(",\"daemon\":%s", DaemonStats.c_str());
    std::printf("}\n");
  } else {
    std::printf("%llu requests in %.1fs (%.1f/s), %u client(s) x %u "
                "tenant(s) over %zu script(s)\n",
                static_cast<unsigned long long>(Sum.Sent), ElapsedSec, Qps,
                Opt.Clients, Opt.Tenants, Scripts.size());
    std::printf("outcomes: %llu succeeded, %llu degraded, %llu other, "
                "%llu transport error(s)\n",
                static_cast<unsigned long long>(Sum.Succeeded),
                static_cast<unsigned long long>(Sum.Degraded),
                static_cast<unsigned long long>(Sum.OtherStatus),
                static_cast<unsigned long long>(Sum.TransportErrors));
    std::printf("cache tiers: %llu memory, %llu disk, %llu cold\n",
                static_cast<unsigned long long>(Sum.MemoryHits),
                static_cast<unsigned long long>(Sum.DiskHits),
                static_cast<unsigned long long>(Sum.NoTier));
    std::printf("latency ms: p50=%.3f p90=%.3f p99=%.3f p999=%.3f\n", P50,
                P90, P99, P999);
    if (!DaemonStats.empty())
      std::printf("daemon: %s\n", DaemonStats.c_str());
    if (!Sum.FirstError.empty())
      std::printf("first error: %s\n", Sum.FirstError.c_str());
  }
  return Sum.TransportErrors == 0 && Sum.Sent == Sum.Ok200 ? 0 : 1;
}
