//===- mvec_faultrun.cpp - Fault-injection campaign driver -------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos campaign: runs a corpus of MATLAB scripts through the
/// vectorization service while systematically arming every fault site,
/// and asserts the resilience contract held —
///
///   * every job reached a terminal status (no hang: the campaign itself
///     completing under its deadlines is the liveness check),
///   * no Internal/Resource failure escaped degradation while
///     DegradeOnExhaustion was on,
///   * every Degraded result carried the original source byte-for-byte
///     plus a classified, non-empty diagnostic,
///   * every non-success carried a non-empty message.
///
/// The campaign is deterministic: plans are seeded from --seed, and the
/// fault schedule is a pure function of (plan seed, job content, site,
/// hit index), so a violating run replays exactly.
///
///   mvec_faultrun --corpus DIR [--corpus DIR]... [options]
///
/// Options:
///   --seed N          plan seed (default 1)
///   --jobs N          service worker threads (default 4)
///   --corpus DIR      add every .m file under DIR (repeatable)
///   --sites a,b       restrict the matrix to these sites (default all)
///   --kinds a,b       restrict the matrix to these kinds (default all)
///   --deadline-ms N   per-job deadline (default 5000)
///   --period N        fire every ~Nth eligible crossing (default 1)
///   --engine E        execution tier for validation runs: ast (default)
///                     or vm — the vm sweep arms every fault site inside
///                     compiled (bytecode) execution and asserts the same
///                     contract, so injected faults unwinding through the
///                     dispatch loop must leave shards as healthy as ones
///                     unwinding through the tree-walker
///   --simd LEVEL      pin the kernel dispatch level (auto|scalar|sse2|
///                     sse41|avx2; MVEC_SIMD env is the default) — the
///                     campaign's deadline-poll and governor invariants
///                     must hold on the vector path too
///   --cost-model M    profitability model during vectorization: off
///                     (default) or on — the resilience contract must
///                     hold regardless of which form each nest takes
///   --cost-profile P  calibrated costs.mvec.json for --cost-model on
///   --no-chaos        skip the everything-armed plan
///   --json            machine-readable per-plan summary on stdout
///
/// Exit status: 0 when every invariant held over every plan, 1 on any
/// violation, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "interp/simd/SimdDispatch.h"
#include "resilience/FaultInjection.h"
#include "service/VectorizationService.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace mvec;

namespace {

/// SIGINT/SIGTERM stop the campaign at the next plan boundary: the plan
/// in flight completes (its service drains normally), partial results are
/// flushed, and the process exits 0.
volatile std::sig_atomic_t Interrupted = 0;
void onStopSignal(int) { Interrupted = 1; }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --corpus DIR [--corpus DIR]... [--seed N] [--jobs N]\n"
               "       %*s [--sites a,b] [--kinds a,b] [--deadline-ms N]\n"
               "       %*s [--period N] [--engine ast|vm] [--simd LEVEL] "
               "[--cost-model off|on]\n"
               "       %*s [--cost-profile FILE] [--no-chaos] [--json]\n",
               Argv0, static_cast<int>(std::strlen(Argv0)), "",
               static_cast<int>(std::strlen(Argv0)), "",
               static_cast<int>(std::strlen(Argv0)), "");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Every .m file under \p Dir, recursively, sorted for determinism.
bool collectScripts(const std::string &Dir, std::vector<JobSpec> &Specs) {
  namespace fs = std::filesystem;
  std::error_code EC;
  std::vector<std::string> Paths;
  for (fs::recursive_directory_iterator It(Dir, EC), End; It != End;
       It.increment(EC)) {
    if (EC)
      return false;
    if (It->is_regular_file() && It->path().extension() == ".m")
      Paths.push_back(It->path().string());
  }
  if (EC)
    return false;
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &Path : Paths) {
    JobSpec Spec;
    Spec.Name = Path;
    if (!readFile(Path, Spec.Source))
      return false;
    Spec.Validate = true;
    Specs.push_back(std::move(Spec));
  }
  return true;
}

bool parseList(const std::string &Csv, std::vector<std::string> &Out) {
  std::string Item;
  std::istringstream SS(Csv);
  while (std::getline(SS, Item, ',')) {
    if (Item.empty())
      return false;
    Out.push_back(Item);
  }
  return !Out.empty();
}

struct Campaign {
  std::string Name;
  FaultPlan Plan;
};

struct PlanTally {
  uint64_t Succeeded = 0, Degraded = 0, TimedOut = 0, Failed = 0,
           Cancelled = 0;
  uint64_t Retries = 0;
  std::vector<std::string> Violations;
};

/// Runs every spec through a fresh service armed with \p Plan and checks
/// the resilience contract on each result.
PlanTally runPlan(const Campaign &C, const std::vector<JobSpec> &Specs,
                  unsigned Jobs, unsigned DeadlineMs, ExecEngine Engine,
                  const cost::CostModel *Cost) {
  ServiceConfig SC;
  SC.Workers = Jobs;
  SC.DefaultDeadline = std::chrono::milliseconds(DeadlineMs);
  SC.Faults = C.Plan.Rules.empty() ? nullptr : &C.Plan;
  SC.Engine = Engine;
  SC.Cost = Cost;
  VectorizationService Service(SC);

  PlanTally T;
  std::vector<JobResult> Results = Service.runBatch(Specs);
  auto violate = [&](const JobResult &R, const std::string &What) {
    T.Violations.push_back(C.Name + ": " + R.Name + ": " + What);
  };
  for (size_t I = 0; I != Results.size(); ++I) {
    const JobResult &R = Results[I];
    switch (R.Status) {
    case JobStatus::Succeeded:
      ++T.Succeeded;
      break;
    case JobStatus::Degraded: {
      ++T.Degraded;
      // The degradation contract: the caller gets its input back
      // untouched, with a classified explanation attached.
      if (R.VectorizedSource != Specs[I].Source)
        violate(R, "degraded result is not the original source verbatim");
      if (R.Class == ErrorClass::None)
        violate(R, "degraded result carries no error class");
      if (R.Message.empty())
        violate(R, "degraded result carries no diagnostic");
      break;
    }
    case JobStatus::TimedOut:
      ++T.TimedOut;
      if (R.Message.empty())
        violate(R, "timed-out result carries no diagnostic");
      break;
    case JobStatus::Cancelled:
      ++T.Cancelled;
      break;
    case JobStatus::Failed:
      ++T.Failed;
      if (R.Message.empty())
        violate(R, "failed result carries no diagnostic");
      // With degradation on (the campaign default), infrastructure
      // failures must never surface as Failed — that is the whole point.
      if (R.Class == ErrorClass::Internal || R.Class == ErrorClass::Resource)
        violate(R, "infrastructure failure escaped degradation: " + R.Message);
      break;
    }
  }
  T.Retries = Service.metrics().Retries.load();
  // Accounting sanity: every submitted job produced exactly one terminal
  // result and the metrics agree.
  if (Service.metrics().jobsCompleted() != Results.size())
    T.Violations.push_back(C.Name + ": completed-job metrics disagree with "
                                    "result count");
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);

  uint64_t Seed = 1;
  unsigned Jobs = 4;
  unsigned DeadlineMs = 5000;
  unsigned Period = 1;
  ExecEngine Engine = ExecEngine::Ast;
  bool CostOn = false;
  std::string CostProfile;
  bool Chaos = true;
  bool Json = false;
  std::vector<std::string> Dirs;
  std::vector<std::string> SiteNames, KindNames;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 == Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t Value = 0;
    if (Arg == "--seed" && NextValue(Value))
      Seed = Value;
    else if (Arg == "--jobs" && NextValue(Value))
      Jobs = std::max<unsigned>(1, static_cast<unsigned>(Value));
    else if (Arg == "--deadline-ms" && NextValue(Value))
      DeadlineMs = static_cast<unsigned>(Value);
    else if (Arg == "--period" && NextValue(Value))
      Period = std::max<unsigned>(1, static_cast<unsigned>(Value));
    else if (Arg == "--corpus" && I + 1 != Argc)
      Dirs.push_back(Argv[++I]);
    else if (Arg == "--sites" && I + 1 != Argc) {
      if (!parseList(Argv[++I], SiteNames))
        return usage(Argv[0]);
    } else if (Arg == "--kinds" && I + 1 != Argc) {
      if (!parseList(Argv[++I], KindNames))
        return usage(Argv[0]);
    } else if (Arg == "--engine" && I + 1 != Argc) {
      std::string Mode = Argv[++I];
      if (Mode == "ast")
        Engine = ExecEngine::Ast;
      else if (Mode == "vm")
        Engine = ExecEngine::Vm;
      else
        return usage(Argv[0]);
    } else if (Arg == "--cost-model" && I + 1 != Argc) {
      std::string Mode = Argv[++I];
      if (Mode == "off")
        CostOn = false;
      else if (Mode == "on")
        CostOn = true;
      else
        return usage(Argv[0]);
    } else if (Arg == "--cost-profile" && I + 1 != Argc) {
      CostProfile = Argv[++I];
    } else if (simd::handleSimdFlag(Argc, Argv, I)) {
      // kernel dispatch configured (exits with status 2 on a bad level)
    } else if (Arg == "--no-chaos")
      Chaos = false;
    else if (Arg == "--json")
      Json = true;
    else
      return usage(Argv[0]);
  }
  if (Dirs.empty())
    return usage(Argv[0]);

  std::vector<JobSpec> Specs;
  for (const std::string &Dir : Dirs) {
    if (!collectScripts(Dir, Specs)) {
      std::fprintf(stderr, "error: cannot read corpus '%s'\n", Dir.c_str());
      return 2;
    }
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "error: no .m files under the given corpora\n");
    return 2;
  }

  std::vector<FaultSite> Sites;
  if (SiteNames.empty()) {
    for (unsigned S = 0; S != NumFaultSites; ++S)
      Sites.push_back(static_cast<FaultSite>(S));
  } else {
    for (const std::string &Name : SiteNames) {
      FaultSite Site;
      if (!faultSiteFromName(Name, Site)) {
        std::fprintf(stderr, "error: unknown fault site '%s'\n", Name.c_str());
        return 2;
      }
      Sites.push_back(Site);
    }
  }
  std::vector<FaultKind> Kinds;
  if (KindNames.empty()) {
    for (unsigned K = 0; K != NumFaultKinds; ++K)
      Kinds.push_back(static_cast<FaultKind>(K));
  } else {
    for (const std::string &Name : KindNames) {
      FaultKind Kind;
      if (!faultKindFromName(Name, Kind)) {
        std::fprintf(stderr, "error: unknown fault kind '%s'\n", Name.c_str());
        return 2;
      }
      Kinds.push_back(Kind);
    }
  }

  // The campaign: a disarmed baseline, the full site x kind matrix of
  // single-rule plans, and one everything-armed chaos plan (periodic,
  // capped fires — mixes failure modes within one job).
  std::vector<Campaign> Campaigns;
  Campaigns.push_back({"baseline", FaultPlan{Seed, {}}});
  for (FaultSite Site : Sites) {
    for (FaultKind Kind : Kinds) {
      Campaign C;
      C.Name = std::string(faultSiteName(Site)) + "/" + faultKindName(Kind);
      C.Plan.Seed = Seed;
      FaultRule Rule;
      Rule.Site = Site;
      Rule.Kind = Kind;
      Rule.Period = Period;
      Rule.LatencyMicros = 500;
      C.Plan.Rules.push_back(Rule);
      Campaigns.push_back(std::move(C));
    }
  }
  if (Chaos) {
    Campaign C;
    C.Name = "chaos-all-sites";
    C.Plan.Seed = Seed ^ 0x5DEECE66Dull;
    for (FaultSite Site : Sites) {
      for (FaultKind Kind : Kinds) {
        FaultRule Rule;
        Rule.Site = Site;
        Rule.Kind = Kind;
        Rule.Period = 3;
        Rule.MaxFires = 2;
        Rule.LatencyMicros = 500;
        C.Plan.Rules.push_back(Rule);
      }
    }
    Campaigns.push_back(std::move(C));
  }

  std::unique_ptr<cost::CostModel> Cost;
  if (CostOn) {
    std::string Diag;
    Cost = std::make_unique<cost::CostModel>(
        cost::loadCostProfileOrDefault(CostProfile, Diag));
    if (!Diag.empty())
      std::fprintf(stderr, "mvec_faultrun: %s\n", Diag.c_str());
  }

  auto Start = std::chrono::steady_clock::now();
  uint64_t TotalJobs = 0, TotalViolations = 0;
  if (Json)
    std::printf("{\"plans\":[");
  size_t PlansRun = 0;
  for (size_t P = 0; P != Campaigns.size(); ++P) {
    if (Interrupted)
      break;
    ++PlansRun;
    const Campaign &C = Campaigns[P];
    PlanTally T = runPlan(C, Specs, Jobs, DeadlineMs, Engine, Cost.get());
    TotalJobs += Specs.size();
    TotalViolations += T.Violations.size();
    if (Json) {
      std::printf("%s{\"plan\":\"%s\",\"jobs\":%zu,\"succeeded\":%llu,"
                  "\"degraded\":%llu,\"timed_out\":%llu,\"failed\":%llu,"
                  "\"cancelled\":%llu,\"retries\":%llu,\"violations\":%zu}",
                  P ? "," : "", C.Name.c_str(), Specs.size(),
                  static_cast<unsigned long long>(T.Succeeded),
                  static_cast<unsigned long long>(T.Degraded),
                  static_cast<unsigned long long>(T.TimedOut),
                  static_cast<unsigned long long>(T.Failed),
                  static_cast<unsigned long long>(T.Cancelled),
                  static_cast<unsigned long long>(T.Retries),
                  T.Violations.size());
    } else {
      std::printf("%-32s ok=%-3llu degraded=%-3llu timed_out=%-3llu "
                  "failed=%-3llu retries=%-3llu violations=%zu\n",
                  C.Name.c_str(),
                  static_cast<unsigned long long>(T.Succeeded),
                  static_cast<unsigned long long>(T.Degraded),
                  static_cast<unsigned long long>(T.TimedOut),
                  static_cast<unsigned long long>(T.Failed),
                  static_cast<unsigned long long>(T.Retries),
                  T.Violations.size());
    }
    for (const std::string &V : T.Violations)
      std::fprintf(stderr, "VIOLATION  %s\n", V.c_str());
  }
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  if (Json) {
    std::printf("],\"plans_run\":%zu,\"jobs\":%llu,\"violations\":%llu,"
                "\"interrupted\":%s,\"elapsed_ms\":%lld}\n",
                PlansRun, static_cast<unsigned long long>(TotalJobs),
                static_cast<unsigned long long>(TotalViolations),
                Interrupted ? "true" : "false",
                static_cast<long long>(ElapsedMs));
  } else {
    std::printf("campaign: %zu of %zu plan(s), %llu job(s), %llu "
                "violation(s) in %lld ms%s\n",
                PlansRun, Campaigns.size(),
                static_cast<unsigned long long>(TotalJobs),
                static_cast<unsigned long long>(TotalViolations),
                static_cast<long long>(ElapsedMs),
                Interrupted ? " (interrupted; state flushed)" : "");
  }
  if (Interrupted)
    return 0;
  return TotalViolations == 0 ? 0 : 1;
}
