//===- mvecd.cpp - The mvec vectorization daemon ------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standalone server binary: a sharded vectorization daemon with a
/// persistent content-addressed result store.
///
///   mvecd [--port N] [--bind ADDR] [--config FILE] [--store DIR] ...
///
/// Options:
///   --port N            TCP port (default 4871; 0 = ephemeral)
///   --bind ADDR         bind address (default 127.0.0.1)
///   --config FILE       daemon config file (key = value lines); also the
///                       file re-read on SIGHUP
///   --store DIR         disk store directory (overrides the config file)
///   --shards N          shard count (overrides the config file)
///   --workers N         worker threads per shard (overrides the config file)
///   --isolation MODE    inproc | process (overrides the config file):
///                       process runs each shard's workers as forked,
///                       rlimit-capped, supervised sandbox processes
///   --print-config      dump the effective config and exit
///
/// On boot the effective port is announced on stdout as
///   mvecd: listening on <addr>:<port>
/// (CI and scripts parse this line — keep it stable).
///
/// Signals:
///   SIGHUP              re-read --config and hot-reload (in-flight jobs
///                       finish on the old fleet; the disk store persists)
///   SIGINT / SIGTERM    clean shutdown: stop accepting, drain in-flight
///                       requests, flush counters to stderr, exit 0
///
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace mvec::daemon;

namespace {

volatile std::sig_atomic_t StopRequested = 0;
volatile std::sig_atomic_t ReloadRequested = 0;

void onStopSignal(int) { StopRequested = 1; }
void onHupSignal(int) { ReloadRequested = 1; }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--config FILE]\n"
               "       %*s [--store DIR] [--shards N] [--workers N]\n"
               "       %*s [--isolation inproc|process] [--print-config]\n",
               Argv0, static_cast<int>(std::strlen(Argv0)), "",
               static_cast<int>(std::strlen(Argv0)), "");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  uint16_t Port = 4871;
  std::string Bind = "127.0.0.1";
  std::string ConfigFile;
  std::string StoreOverride;
  std::string IsolationOverride;
  unsigned ShardsOverride = 0, WorkersOverride = 0;
  bool PrintConfig = false;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 == Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t Value = 0;
    if (Arg == "--port" && NextValue(Value) && Value <= 65535)
      Port = static_cast<uint16_t>(Value);
    else if (Arg == "--bind" && I + 1 != Argc)
      Bind = Argv[++I];
    else if (Arg == "--config" && I + 1 != Argc)
      ConfigFile = Argv[++I];
    else if (Arg == "--store" && I + 1 != Argc)
      StoreOverride = Argv[++I];
    else if (Arg == "--shards" && NextValue(Value) && Value >= 1)
      ShardsOverride = static_cast<unsigned>(Value);
    else if (Arg == "--workers" && NextValue(Value) && Value >= 1)
      WorkersOverride = static_cast<unsigned>(Value);
    else if (Arg == "--isolation" && I + 1 != Argc &&
             (std::string(Argv[I + 1]) == "inproc" ||
              std::string(Argv[I + 1]) == "process"))
      IsolationOverride = Argv[++I];
    else if (Arg == "--print-config")
      PrintConfig = true;
    else
      return usage(Argv[0]);
  }

  DaemonConfig Config;
  if (!ConfigFile.empty()) {
    std::string Error;
    if (!loadDaemonConfigFile(ConfigFile, Config, Error)) {
      std::fprintf(stderr, "mvecd: %s\n", Error.c_str());
      return 2;
    }
  }
  if (!StoreOverride.empty())
    Config.StoreDir = StoreOverride;
  if (ShardsOverride)
    Config.Shards = ShardsOverride;
  if (WorkersOverride)
    Config.WorkersPerShard = WorkersOverride;
  if (!IsolationOverride.empty())
    Config.Isolation = IsolationOverride;

  if (PrintConfig) {
    std::fputs(daemonConfigText(Config).c_str(), stdout);
    return 0;
  }

  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGHUP, onHupSignal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    Daemon D(Config);
    ServerConfig SC;
    SC.BindAddress = Bind;
    SC.Port = Port;
    SC.MaxFrameBytes = Config.MaxFrameBytes;
    Server S(D, SC);
    std::string Error;
    if (!S.start(Error)) {
      std::fprintf(stderr, "mvecd: %s\n", Error.c_str());
      return 1;
    }
    // CI parses this line; keep its shape stable.
    std::printf("mvecd: listening on %s:%u\n", Bind.c_str(), S.port());
    std::printf("mvecd: %u shard(s) x %u worker(s), isolation %s, store %s\n",
                D.shardCount(), Config.WorkersPerShard,
                Config.Isolation.c_str(),
                Config.StoreDir.empty() ? "(none)"
                                        : Config.StoreDir.c_str());
    std::fflush(stdout);

    S.setIdleCallback([&] {
      if (StopRequested)
        S.stop();
      if (ReloadRequested) {
        ReloadRequested = 0;
        if (ConfigFile.empty()) {
          std::fprintf(stderr,
                       "mvecd: SIGHUP ignored (no --config file)\n");
          return;
        }
        DaemonConfig Fresh = D.config();
        std::string ReloadError;
        if (!loadDaemonConfigFile(ConfigFile, Fresh, ReloadError) ||
            !D.reload(Fresh, ReloadError))
          std::fprintf(stderr, "mvecd: reload failed: %s\n",
                       ReloadError.c_str());
        else
          std::fprintf(stderr, "mvecd: config reloaded from %s\n",
                       ConfigFile.c_str());
      }
    });

    S.run(); // Returns once draining finished; all responses were sent.

    // Flush final state where an operator (or the smoke job) can see it.
    std::fprintf(stderr, "mvecd: shutdown: %s\n", D.metricsJson().c_str());
    return 0;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "mvecd: fatal: %s\n", E.what());
    return 1;
  }
}
