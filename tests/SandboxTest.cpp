//===- SandboxTest.cpp - Process-isolation sandbox tests ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers src/sandbox: forked workers serving MVEC/1 over socketpairs,
/// the supervisor's failure taxonomy (crash, OOM kill, watchdog timeout,
/// external SIGKILL), respawn with backoff, the crash-loop breaker,
/// input quarantine with reproducer headers, disk-store crash safety
/// through sandboxed workers, the daemon's isolation=process routing and
/// hot reload between isolation modes, and the shared EINTR/partial-I/O
/// helpers in support/Io.h.
///
/// Crash inputs are injected with the `%!sandbox-*` test hooks (see
/// Worker.cpp), which only exist when SandboxConfig::TestHooks is set.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "daemon/DiskStore.h"
#include "sandbox/Quarantine.h"
#include "sandbox/SandboxPool.h"
#include "support/ContentHash.h"
#include "support/Io.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mvec;
using namespace mvec::sandbox;

namespace {

namespace fs = std::filesystem;

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Tag) {
    Dir = fs::temp_directory_path() /
          ("mvec_sandbox_test_" + Tag + "_" + std::to_string(::getpid()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  std::string path() const { return Dir.string(); }

private:
  fs::path Dir;
};

/// A small annotated script that genuinely vectorizes; \p Tag makes
/// distinct content keys.
std::string script(int Tag) {
  return "% s" + std::to_string(Tag) +
         "\nn = 8; x = rand(1,n); z = zeros(1,n);\n"
         "%! x(1,*) z(1,*) n(1)\n"
         "for i=1:n\n  z(i) = 3*x(i);\nend\n";
}

daemon::Request vecRequest(const std::string &Body) {
  daemon::Request R;
  R.V = daemon::Verb::Vec;
  R.Name = "sandbox-test.m";
  R.Body = Body;
  return R;
}

/// A pool config sized for tests: fast heartbeats, fast respawn, a
/// scratch quarantine directory, test hooks armed.
SandboxConfig testConfig(const std::string &QuarantineDir,
                         unsigned Workers = 1) {
  SandboxConfig C;
  C.Workers = Workers;
  C.DeadlineMs = 10000;
  C.HeartbeatIntervalMs = 50;
  C.HeartbeatTimeoutMs = 1000;
  C.QuarantineDir = QuarantineDir;
  C.TestHooks = true;
  C.Respawn = RetryPolicy{3, std::chrono::milliseconds(10), 2.0, 0.5,
                          std::chrono::milliseconds(200)};
  return C;
}

/// Polls \p Pred for up to \p BudgetMs.
bool eventually(unsigned BudgetMs, const std::function<bool()> &Pred) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(BudgetMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Pred();
}

/// Retries valid requests until one succeeds (the pool may be
/// mid-respawn or half-open); returns true on a succeeded response.
bool eventuallyServes(SandboxPool &Pool, const std::string &Body,
                      unsigned BudgetMs) {
  return eventually(BudgetMs, [&] {
    daemon::Response Out;
    std::string Why;
    return Pool.handle(vecRequest(Body), fnv1aHash(Body), Out, Why) &&
           Out.Status == "succeeded";
  });
}

//===----------------------------------------------------------------------===//
// support/Io helpers
//===----------------------------------------------------------------------===//

TEST(Io, SendFullAndRecvSomeRoundTripOverSocketpair) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  std::string Msg(100000, 'a'); // Bigger than one socket buffer.
  std::thread Writer([&] {
    EXPECT_TRUE(io::sendFull(Sv[0], Msg.data(), Msg.size(), 5000));
    ::close(Sv[0]);
  });
  std::string Got;
  char Buf[4096];
  ssize_t N;
  while ((N = io::recvSome(Sv[1], Buf, sizeof(Buf))) > 0)
    Got.append(Buf, static_cast<size_t>(N));
  Writer.join();
  ::close(Sv[1]);
  EXPECT_EQ(Got, Msg);
}

TEST(Io, SendFullHonorsItsBudgetAgainstAStalledPeer) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  // Nobody reads Sv[1]: the send must fill the buffers, stall, and give
  // up within (roughly) its budget instead of blocking forever.
  std::string Big(8 << 20, 'b');
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(io::sendFull(Sv[0], Big.data(), Big.size(), 200));
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
  EXPECT_LT(Elapsed, 5000) << "the budget must bound the stall";
  ::close(Sv[0]);
  ::close(Sv[1]);
}

TEST(Io, PollForTimesOutAndSeesReadiness) {
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  EXPECT_EQ(io::pollFor(Sv[1], POLLIN, 50), 0) << "nothing to read yet";
  ASSERT_EQ(::send(Sv[0], "x", 1, 0), 1);
  EXPECT_GT(io::pollFor(Sv[1], POLLIN, 1000), 0);
  ::close(Sv[0]);
  ::close(Sv[1]);
}

//===----------------------------------------------------------------------===//
// SandboxPool: the happy path
//===----------------------------------------------------------------------===//

TEST(SandboxPool, ServesVecThroughAForkedWorker) {
  ScratchDir Quarantine("happy");
  SandboxPool Pool(testConfig(Quarantine.path()));
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));
  std::vector<pid_t> Pids = Pool.workerPids();
  ASSERT_EQ(Pids.size(), 1u);
  EXPECT_NE(Pids[0], ::getpid()) << "the worker is a separate process";

  std::string Body = script(1);
  daemon::Response Out;
  std::string Why;
  ASSERT_TRUE(Pool.handle(vecRequest(Body), fnv1aHash(Body), Out, Why))
      << Why;
  EXPECT_EQ(Out.Code, 200);
  EXPECT_EQ(Out.Status, "succeeded");
  EXPECT_FALSE(Out.Body.empty());

  // The worker's warm cache answers the repeat; the pool mirrors the
  // outcome into its own registry so STATS agree across modes.
  ASSERT_TRUE(Pool.handle(vecRequest(Body), fnv1aHash(Body), Out, Why));
  EXPECT_EQ(Out.CacheTier, "memory");
  EXPECT_EQ(Pool.metrics().JobsSubmitted.load(), 2u);
  EXPECT_EQ(Pool.metrics().JobsSucceeded.load(), 2u);
  EXPECT_EQ(Pool.metrics().CacheHits.load(), 1u);
  EXPECT_EQ(Pool.metrics().SandboxCrashes.load(), 0u);
}

//===----------------------------------------------------------------------===//
// Crash containment + quarantine
//===----------------------------------------------------------------------===//

TEST(SandboxPool, CrashIsContainedQuarantinedAndClassified) {
  ScratchDir Quarantine("crash");
  SandboxPool Pool(testConfig(Quarantine.path()));
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));

  std::string Body = "%!sandbox-crash\n% reproducer body\nx = 1;\n";
  uint64_t Key = fnv1aHash(Body);
  daemon::Response Out;
  std::string Why;
  EXPECT_FALSE(Pool.handle(vecRequest(Body), Key, Out, Why));
  EXPECT_NE(Why.find("crash"), std::string::npos) << Why;
  EXPECT_EQ(Pool.metrics().SandboxCrashes.load(), 1u);
  EXPECT_EQ(Pool.metrics().SandboxQuarantined.load(), 1u);

  // The reproducer file: a loadable MATLAB script whose comment header
  // records everything needed to replay the crash.
  std::string Path = quarantinePath(Quarantine.path(), Key);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::string All((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(All.rfind("% mvec-quarantine v1\n", 0), 0u) << All;
  EXPECT_NE(All.find("% key: " + contentHexKey(Key)), std::string::npos);
  EXPECT_NE(All.find("% cause: crash"), std::string::npos) << All;
  EXPECT_NE(All.find("% signal: " + std::to_string(SIGABRT)),
            std::string::npos)
      << All;
  EXPECT_NE(All.find("% engine: ast"), std::string::npos);
  EXPECT_NE(All.find("% isa: "), std::string::npos);
  EXPECT_EQ(All.substr(All.size() - Body.size()), Body)
      << "the body must be stored verbatim";

  // First reproducer wins: the same input crashing again neither
  // rewrites the file nor double-counts.
  ASSERT_TRUE(eventually(5000, [&] { return Pool.liveWorkers() == 1; }));
  EXPECT_FALSE(Pool.handle(vecRequest(Body), Key, Out, Why));
  EXPECT_EQ(Pool.metrics().SandboxQuarantined.load(), 1u);
  size_t Files = 0;
  for (const auto &E : fs::directory_iterator(Quarantine.path()))
    Files += E.path().extension() == ".m";
  EXPECT_EQ(Files, 1u) << "quarantined counter must match the file count";
}

TEST(SandboxPool, WorkerRespawnsAfterCrashAndKeepsServing) {
  ScratchDir Quarantine("respawn");
  SandboxPool Pool(testConfig(Quarantine.path()));
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));
  pid_t Before = Pool.workerPids()[0];

  std::string Crash = "%!sandbox-crash\nx = 1;\n";
  daemon::Response Out;
  std::string Why;
  EXPECT_FALSE(Pool.handle(vecRequest(Crash), fnv1aHash(Crash), Out, Why));

  EXPECT_TRUE(eventuallyServes(Pool, script(2), 5000))
      << "the pool must recover after the crash";
  EXPECT_GE(Pool.metrics().SandboxRespawns.load(), 1u);
  ASSERT_EQ(Pool.workerPids().size(), 1u);
  EXPECT_NE(Pool.workerPids()[0], Before) << "a fresh process, not a zombie";
}

TEST(SandboxPool, OomKilledWorkerIsContainedAndClassified) {
  ScratchDir Quarantine("oom");
  SandboxConfig C = testConfig(Quarantine.path());
  C.MemoryLimitMB = 256; // Keep the hook's doomed allocation spree small.
  SandboxPool Pool(C);
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));

  std::string Body = "%!sandbox-oom\nx = 1;\n";
  daemon::Response Out;
  std::string Why;
  EXPECT_FALSE(Pool.handle(vecRequest(Body), fnv1aHash(Body), Out, Why));
  EXPECT_NE(Why.find("oom-kill"), std::string::npos) << Why;
  std::ifstream In(quarantinePath(Quarantine.path(), fnv1aHash(Body)));
  std::string All((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(All.find("% cause: oom-kill"), std::string::npos) << All;
}

TEST(SandboxPool, WatchdogKillsAWedgedWorker) {
  ScratchDir Quarantine("wedge");
  SandboxConfig C = testConfig(Quarantine.path());
  C.HeartbeatTimeoutMs = 300; // Short grace: the test stays fast.
  SandboxPool Pool(C);
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));

  daemon::Request R = vecRequest("%!sandbox-spin\nx = 1;\n");
  R.DeadlineMs = 200;
  daemon::Response Out;
  std::string Why;
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(Pool.handle(R, fnv1aHash(R.Body), Out, Why));
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  EXPECT_NE(Why.find("watchdog-timeout"), std::string::npos) << Why;
  EXPECT_EQ(Pool.metrics().SandboxWatchdogKills.load(), 1u);
  EXPECT_LT(Ms, 5000) << "deadline + grace bounds the watchdog kill";
}

TEST(SandboxPool, ExternalSigkillOfIdleWorkerIsReapedAndRespawned) {
  ScratchDir Quarantine("extkill");
  SandboxPool Pool(testConfig(Quarantine.path()));
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));
  pid_t Victim = Pool.workerPids()[0];
  ASSERT_EQ(::kill(Victim, SIGKILL), 0);

  // The supervisor notices on its own (no request traffic needed),
  // counts the death, and respawns the slot.
  EXPECT_TRUE(eventually(5000, [&] {
    return Pool.metrics().SandboxCrashes.load() >= 1 &&
           Pool.liveWorkers() == 1 && Pool.workerPids()[0] != Victim;
  }));
  EXPECT_GE(Pool.metrics().SandboxRespawns.load(), 1u);
  EXPECT_TRUE(eventuallyServes(Pool, script(3), 5000));
}

TEST(SandboxPool, CrashLoopBreakerShedsThenRecovers) {
  ScratchDir Quarantine("breaker");
  SandboxConfig C = testConfig(Quarantine.path());
  C.CrashLoop = BreakerConfig{/*FailureThreshold=*/2,
                              /*Cooldown=*/std::chrono::milliseconds(300),
                              /*HalfOpenProbes=*/1};
  SandboxPool Pool(C);
  ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() == 1; }));

  daemon::Response Out;
  std::string Why;
  for (int I = 0; I != 2; ++I) {
    std::string Crash = "%!sandbox-crash\n% round " + std::to_string(I) +
                        "\nx = 1;\n";
    ASSERT_TRUE(eventually(5000, [&] { return Pool.liveWorkers() == 1; }));
    EXPECT_FALSE(Pool.handle(vecRequest(Crash), fnv1aHash(Crash), Out, Why));
  }
  // Two consecutive worker deaths tripped the breaker: requests are now
  // shed without touching a worker.
  std::string Valid = script(4);
  EXPECT_FALSE(Pool.handle(vecRequest(Valid), fnv1aHash(Valid), Out, Why));
  EXPECT_NE(Why.find("breaker"), std::string::npos) << Why;
  EXPECT_GE(Pool.metrics().SandboxBreakerShed.load(), 1u);

  // After the cooldown a half-open probe goes through, succeeds, and
  // closes the breaker again.
  EXPECT_TRUE(eventuallyServes(Pool, Valid, 8000));
}

//===----------------------------------------------------------------------===//
// DiskStore crash safety through sandboxed workers
//===----------------------------------------------------------------------===//

// SIGKILL workers continuously while they churn write-throughs into a
// shared store directory: whatever survives on disk must be entirely
// servable — rename(2) atomicity plus checksums means a kill mid-write
// loses at most the entry being written, never corrupts the store.
TEST(SandboxPool, KillMidStoreWriteNeverCorruptsTheStore) {
  ScratchDir Quarantine("storekillq");
  ScratchDir StoreDir("storekill");
  {
    SandboxConfig C = testConfig(Quarantine.path(), /*Workers=*/2);
    C.StoreDir = StoreDir.path();
    SandboxPool Pool(C);
    ASSERT_TRUE(eventually(3000, [&] { return Pool.liveWorkers() >= 1; }));

    std::atomic<bool> Stop{false};
    std::thread Killer([&] {
      while (!Stop.load()) {
        for (pid_t P : Pool.workerPids())
          ::kill(P, SIGKILL);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
      }
    });
    for (int I = 0; I != 60; ++I) {
      std::string Body = script(100 + I);
      daemon::Request R = vecRequest(Body);
      R.DeadlineMs = 2000;
      daemon::Response Out;
      std::string Why;
      // Failures are expected (the killer is merciless); corruption is not.
      Pool.handle(R, fnv1aHash(Body), Out, Why);
    }
    Stop.store(true);
    Killer.join();
  }
  // Reopen the directory the way a restarted daemon would: the boot scan
  // sweeps orphaned tmps, and every surviving entry must load cleanly.
  daemon::DiskStore Store(daemon::DiskStoreConfig{StoreDir.path(), 0});
  // The content keys are internal to the service, so walk the sharded
  // entry files (<dir>/<hh>/<hexkey>.mvr) instead.
  size_t Loaded = 0;
  for (const auto &E : fs::recursive_directory_iterator(StoreDir.path())) {
    if (!E.is_regular_file() || E.path().extension() != ".mvr")
      continue;
    uint64_t Key = 0;
    ASSERT_TRUE(parseContentHexKey(E.path().stem().string(), Key))
        << E.path();
    if (Store.load(Key))
      ++Loaded;
  }
  EXPECT_EQ(Store.corruptDropped(), 0u)
      << "a kill mid-write must never leave a torn entry";
  EXPECT_EQ(Loaded, Store.entries());
}

//===----------------------------------------------------------------------===//
// Daemon integration: isolation=process end to end + hot reload
//===----------------------------------------------------------------------===//

TEST(DaemonSandbox, ProcessIsolationServesAndDegradesOnCrash) {
  ScratchDir Quarantine("daemonq");
  daemon::DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  C.Isolation = "process";
  C.SandboxTestHooks = true;
  C.QuarantineDir = Quarantine.path();
  C.HeartbeatIntervalMs = 50;
  daemon::Daemon D(C);

  ASSERT_TRUE(eventually(3000, [&] { return !D.workerPids().empty(); }));

  daemon::Response Good = D.handle(vecRequest(script(5)));
  EXPECT_EQ(Good.Code, 200);
  EXPECT_EQ(Good.Status, "succeeded");

  // A crash-inducing input costs one worker; the client still gets the
  // no-protocol-error contract: 200, degraded, byte-exact passthrough.
  std::string Crash = "%!sandbox-crash\nx = 1;\n";
  daemon::Response Bad = D.handle(vecRequest(Crash));
  EXPECT_EQ(Bad.Code, 200);
  EXPECT_EQ(Bad.Status, "degraded");
  EXPECT_EQ(Bad.Body, Crash) << "byte-exact passthrough";

  std::string Json = D.metricsJson();
  EXPECT_NE(Json.find("\"isolation\":\"process\""), std::string::npos);
  EXPECT_NE(Json.find("\"worker_pids\":["), std::string::npos);
  EXPECT_NE(Json.find("\"sandbox\":{\"crashes\":"), std::string::npos);
}

TEST(DaemonSandbox, IsolationModeHotReloadsBothWays) {
  ScratchDir Quarantine("reloadq");
  daemon::DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  C.Isolation = "inproc";
  C.QuarantineDir = Quarantine.path();
  daemon::Daemon D(C);
  EXPECT_TRUE(D.workerPids().empty()) << "inproc mode has no worker pids";
  ASSERT_EQ(D.handle(vecRequest(script(6))).Status, "succeeded");

  // inproc -> process: the fleet is rebuilt around sandbox pools.
  daemon::DaemonConfig New = D.config();
  New.Isolation = "process";
  New.HeartbeatIntervalMs = 50;
  std::string Error;
  ASSERT_TRUE(D.reload(New, Error)) << Error;
  ASSERT_TRUE(eventually(3000, [&] { return !D.workerPids().empty(); }));
  EXPECT_EQ(D.handle(vecRequest(script(6))).Status, "succeeded");
  EXPECT_NE(D.metricsJson().find("\"isolation\":\"process\""),
            std::string::npos);

  // process -> inproc: workers are torn down, service comes back inline.
  New = D.config();
  New.Isolation = "inproc";
  ASSERT_TRUE(D.reload(New, Error)) << Error;
  EXPECT_TRUE(D.workerPids().empty());
  EXPECT_EQ(D.handle(vecRequest(script(6))).Status, "succeeded");
}

} // namespace
