//===- PipelineTest.cpp - Driver API tests ----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

TEST(PipelineTest, ParseErrorSurfaces) {
  PipelineResult R = vectorizeSource("x = ;\n");
  EXPECT_FALSE(R.succeeded());
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(PipelineTest, EmptyProgram) {
  PipelineResult R = vectorizeSource("");
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.VectorizedSource, "");
  EXPECT_EQ(R.Stats.LoopNestsConsidered, 0u);
}

TEST(PipelineTest, ProgramWithoutLoopsPassesThrough) {
  PipelineResult R = vectorizeSource("x = 1+2;\ny = x*3;\n");
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.VectorizedSource, "x=1+2;\ny=x*3;\n");
}

TEST(PipelineTest, RemarksExplainDecisions) {
  VectorizerOptions Opts;
  Opts.EmitRemarks = true;
  PipelineResult R = vectorizeSource("n = 4;\nx = zeros(1,n);\n%! x(1,*)\n"
                                     "for i=1:n\n  x(i) = i;\nend\n",
                                     Opts);
  ASSERT_TRUE(R.succeeded());
  bool SawVectorizedRemark = false;
  for (const Diagnostic &D : R.Diags.diagnostics())
    if (D.Severity == DiagSeverity::Remark &&
        D.Message.find("vectorized statement") != std::string::npos)
      SawVectorizedRemark = true;
  EXPECT_TRUE(SawVectorizedRemark) << R.Diags.str();
}

TEST(PipelineTest, RemarksExplainFailures) {
  VectorizerOptions Opts;
  Opts.EmitRemarks = true;
  PipelineResult R = vectorizeSource(
      "n = 4;\nv = zeros(1,n);\n%! v(1,*)\n"
      "for i=2:n\n  v(i) = v(i-1);\nend\n",
      Opts);
  ASSERT_TRUE(R.succeeded());
  bool SawReason = false;
  for (const Diagnostic &D : R.Diags.diagnostics())
    if (D.Severity == DiagSeverity::Remark &&
        D.Message.find("recurrence") != std::string::npos)
      SawReason = true;
  EXPECT_TRUE(SawReason) << R.Diags.str();
}

TEST(PipelineTest, IneligibleNestCounted) {
  PipelineResult R = vectorizeSource("for i=1:3\n  disp(i);\nend\n");
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.IneligibleNests, 1u);
  EXPECT_EQ(R.Stats.LoopNestsImproved, 0u);
}

TEST(PipelineTest, CustomDatabaseIsUsed) {
  // With an empty database, pattern-dependent loops stay sequential.
  PatternDatabase Empty;
  std::string Source = "n = 4;\nA = rand(n,n); b = rand(1,n); a = "
                       "zeros(1,n);\n%! A(*,*) b(1,*) a(1,*) n(1)\n"
                       "for i=1:n\n  a(i) = A(i,i)*b(i);\nend\n";
  PipelineResult R = vectorizeSource(Source, {}, &Empty);
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.StmtsVectorized, 0u);
}

TEST(PipelineTest, DiffRunDetectsDivergence) {
  EXPECT_EQ(diffRun("x = 1;", "x = 1;"), "");
  EXPECT_NE(diffRun("x = 1;", "x = 2;"), "");
  EXPECT_NE(diffRun("x = 1;", "y = 1;"), "");
  EXPECT_NE(diffRun("x = 1;", "x = 1; y = 2;"), "");
}

TEST(PipelineTest, DiffRunIgnoresLoopIndexVariables) {
  // After vectorization the index variable no longer exists; that must
  // not count as divergence.
  EXPECT_EQ(diffRun("for i=1:3\n x(i)=i;\nend\n", "x(1:3)=1:3;"), "");
}

TEST(PipelineTest, DiffRunComparesPrintedOutput) {
  EXPECT_NE(diffRun("disp(1);", "disp(2);"), "");
  EXPECT_EQ(diffRun("disp(7);", "disp(7);"), "");
}

TEST(PipelineTest, DiffRunReportsRuntimeErrors) {
  std::string Diff = diffRun("x = undefined_thing;", "x = 1;");
  EXPECT_NE(Diff.find("original program failed"), std::string::npos);
  Diff = diffRun("x = 1;", "x = undefined_thing;");
  EXPECT_NE(Diff.find("transformed program failed"), std::string::npos);
}

TEST(PipelineTest, VectorizeAndValidateHappyPath) {
  std::string Error;
  auto V = vectorizeAndValidate("n = 4;\nx = zeros(1,n);\n%! x(1,*)\n"
                                "for i=1:n\n  x(i) = 2*i;\nend\n",
                                Error);
  ASSERT_TRUE(V.has_value()) << Error;
  EXPECT_NE(V->find("x(1:n)=2*(1:n);"), std::string::npos) << *V;
}

TEST(PipelineTest, StatsAcrossMultipleNests) {
  PipelineResult R = vectorizeSource(
      "n = 4;\nx = zeros(1,n); y = zeros(1,n);\n%! x(1,*) y(1,*)\n"
      "for i=1:n\n  x(i) = i;\nend\n"
      "for j=1:n\n  y(j) = 2*j;\nend\n"
      "for k=1:n\n  y(k) = y(k-0)+1;\nend\n");
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.LoopNestsConsidered, 3u);
  EXPECT_GE(R.Stats.StmtsVectorized, 2u);
}

TEST(PipelineTest, LoopInsideIfIsStillFound) {
  PipelineResult R = vectorizeSource(
      "n = 4;\nflag = 1;\nx = zeros(1,n);\n%! x(1,*) flag(1)\n"
      "if flag\n  for i=1:n\n    x(i) = i;\n  end\nend\n");
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.StmtsVectorized, 1u);
  EXPECT_NE(R.VectorizedSource.find("x(1:n)=1:n;"), std::string::npos)
      << R.VectorizedSource;
  EXPECT_EQ(diffRun("n = 4;\nflag = 1;\nx = zeros(1,n);\n"
                    "if flag\n  for i=1:n\n    x(i) = i;\n  end\nend\n",
                    R.VectorizedSource),
            "");
}

TEST(PipelineTest, AnnotationsBeatInference) {
  // x is declared a column even though the straight-line code would infer
  // a row; the vectorizer must trust the annotation (and the transform
  // then fails validation only if the annotation were wrong — here we
  // just check the annotation is respected by looking for the transpose).
  PipelineResult R = vectorizeSource(
      "n = 4;\nx = rand(n,1);\ny = rand(1,n);\nz = zeros(n,1);\n"
      "%! x(*,1) y(1,*) z(*,1) n(1)\n"
      "for i=1:n\n  z(i) = x(i)+y(i);\nend\n");
  ASSERT_TRUE(R.succeeded());
  EXPECT_NE(R.VectorizedSource.find("'"), std::string::npos)
      << R.VectorizedSource;
}

TEST(OutputsMatchTest, IdenticalTranscriptsShortCircuit) {
  EXPECT_TRUE(detail::outputsMatch("", "", 0.0));
  std::string T = "x = 1.5\nans = 2\n";
  EXPECT_TRUE(detail::outputsMatch(T, T, 0.0));
}

TEST(OutputsMatchTest, WhitespaceIsInsignificantBetweenTokens) {
  EXPECT_TRUE(detail::outputsMatch("a 1.0 b", "a\t1.0\n b ", 0.0));
  // Missing or extra tokens still differ.
  EXPECT_FALSE(detail::outputsMatch("a 1.0", "a 1.0 b", 0.0));
  EXPECT_FALSE(detail::outputsMatch("a 1.0 b", "a 1.0", 0.0));
}

TEST(OutputsMatchTest, NumbersCompareWithRelativeTolerance) {
  // |1.0000001 - 1.0| <= 1e-6 * max(1, |a|, |b|)
  EXPECT_TRUE(detail::outputsMatch("x 1.0000001", "x 1.0", 1e-6));
  EXPECT_FALSE(detail::outputsMatch("x 1.0000001", "x 1.0", 1e-9));
  // The scale floor is 1, so tiny numbers compare near-absolutely.
  EXPECT_TRUE(detail::outputsMatch("1e-12", "0", 1e-9));
  // Large magnitudes scale the tolerance up.
  EXPECT_TRUE(detail::outputsMatch("1000000.001", "1000000.0", 1e-6));
  EXPECT_FALSE(detail::outputsMatch("1000001", "1000000", 1e-9));
  // Differing spellings of the same value match exactly.
  EXPECT_TRUE(detail::outputsMatch("1.50", "1.5", 0.0));
}

TEST(OutputsMatchTest, NaNMatchesNaNOnly) {
  // NaN != NaN numerically, but two runs that both print NaN agree.
  EXPECT_TRUE(detail::outputsMatch("x NaN", "x NaN", 1e-9));
  EXPECT_TRUE(detail::outputsMatch("nan", "NaN", 1e-9));
  EXPECT_FALSE(detail::outputsMatch("NaN", "0", 1e-9));
  EXPECT_FALSE(detail::outputsMatch("0", "NaN", 1e-9));
  EXPECT_FALSE(detail::outputsMatch("Inf", "NaN", 1e-9));
}

TEST(OutputsMatchTest, InfinitiesAndNonNumericTokens) {
  EXPECT_TRUE(detail::outputsMatch("Inf", "Inf", 0.0));
  EXPECT_FALSE(detail::outputsMatch("Inf", "-Inf", 1e-9));
  // Non-numeric tokens must match byte for byte.
  EXPECT_FALSE(detail::outputsMatch("abc", "abd", 1e9));
  // A number never matches a word, whatever the tolerance.
  EXPECT_FALSE(detail::outputsMatch("1.0", "one", 1e9));
  // Partial parses ("1.0x") are words, not numbers.
  EXPECT_FALSE(detail::outputsMatch("1.0x", "1.0", 1e9));
}

TEST(PipelineTest, SequentialFallbackIsFaithful) {
  // A program the vectorizer cannot improve must round-trip untouched.
  std::string Source = "n = 5;\nv = zeros(1,n);\nv(1) = 1;\n%! v(1,*)\n"
                       "for i=2:n\n  v(i) = v(i-1)*1.1;\nend\n";
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.StmtsVectorized, 0u);
  EXPECT_EQ(diffRun(Source, R.VectorizedSource), "");
}

} // namespace
