//===- MatrixOpsTest.cpp - Bulk kernel unit tests ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/MatrixOps.h"

#include "interp/simd/SimdDispatch.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

using namespace mvec;

namespace {

Value rowOf(std::initializer_list<double> Elems) {
  return Value::vector(std::vector<double>(Elems), /*Row=*/true);
}

Value colOf(std::initializer_list<double> Elems) {
  return Value::vector(std::vector<double>(Elems), /*Row=*/false);
}

Value mat2x2(double A, double B, double C, double D) {
  Value M(2, 2);
  M.at(0, 0) = A;
  M.at(0, 1) = B;
  M.at(1, 0) = C;
  M.at(1, 1) = D;
  return M;
}

TEST(ValueTest, ColumnMajorLayout) {
  Value M = mat2x2(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(M.linear(0), 1);
  EXPECT_DOUBLE_EQ(M.linear(1), 3); // down the first column
  EXPECT_DOUBLE_EQ(M.linear(2), 2);
  EXPECT_DOUBLE_EQ(M.linear(3), 4);
}

TEST(ValueTest, Predicates) {
  EXPECT_TRUE(Value().isEmpty());
  EXPECT_TRUE(Value::scalar(5).isScalar());
  EXPECT_TRUE(rowOf({1, 2}).isRow());
  EXPECT_TRUE(colOf({1, 2}).isColumn());
  EXPECT_TRUE(rowOf({1, 2}).isVector());
  EXPECT_FALSE(mat2x2(1, 2, 3, 4).isVector());
}

TEST(ValueTest, TransposeRoundTrip) {
  Value M = mat2x2(1, 2, 3, 4);
  Value T = M.transposed();
  EXPECT_DOUBLE_EQ(T.at(0, 1), 3);
  EXPECT_TRUE(M.equals(T.transposed()));
}

TEST(ValueTest, GrowPreservesAndZeroFills) {
  Value M = mat2x2(1, 2, 3, 4);
  M.growTo(3, 4);
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.cols(), 4u);
  EXPECT_DOUBLE_EQ(M.at(1, 1), 4);
  EXPECT_DOUBLE_EQ(M.at(2, 3), 0);
}

TEST(ValueTest, GrowNeverShrinks) {
  Value M(3, 3, 7.0);
  M.growTo(1, 5);
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.cols(), 5u);
}

TEST(ValueTest, EqualsWithTolerance) {
  Value A = Value::scalar(1.0);
  Value B = Value::scalar(1.0 + 1e-12);
  EXPECT_FALSE(A.equals(B));
  EXPECT_TRUE(A.equals(B, 1e-9));
  EXPECT_FALSE(A.equals(Value::scalar(2), 1e-9));
  EXPECT_FALSE(A.equals(rowOf({1, 1})));
}

TEST(ValueTest, NanEqualsNan) {
  Value A = Value::scalar(std::nan(""));
  Value B = Value::scalar(std::nan(""));
  EXPECT_TRUE(A.equals(B));
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().isTrue());
  EXPECT_TRUE(Value::scalar(1).isTrue());
  EXPECT_FALSE(Value::scalar(0).isTrue());
  EXPECT_TRUE(rowOf({1, 2, 3}).isTrue());
  EXPECT_FALSE(rowOf({1, 0, 3}).isTrue());
}

TEST(ElementwiseTest, ScalarExpansion) {
  OpError Err;
  Value R = elementwiseBinary(BinaryOp::Add, Value::scalar(10),
                              rowOf({1, 2, 3}), Err);
  ASSERT_FALSE(Err.failed());
  EXPECT_DOUBLE_EQ(R.linear(2), 13);
  Value R2 = elementwiseBinary(BinaryOp::Sub, rowOf({1, 2, 3}),
                               Value::scalar(1), Err);
  EXPECT_DOUBLE_EQ(R2.linear(0), 0);
}

TEST(ElementwiseTest, ShapeMismatchReported) {
  OpError Err;
  elementwiseBinary(BinaryOp::Add, rowOf({1, 2}), rowOf({1, 2, 3}), Err);
  EXPECT_TRUE(Err.failed());
}

TEST(ElementwiseTest, RowPlusColumnRejected) {
  // MATLAB 7 semantics: no implicit broadcasting.
  OpError Err;
  elementwiseBinary(BinaryOp::Add, rowOf({1, 2}), colOf({1, 2}), Err);
  EXPECT_TRUE(Err.failed());
}

TEST(ElementwiseTest, ComparisonsAndLogic) {
  OpError Err;
  Value R = elementwiseBinary(BinaryOp::Lt, rowOf({1, 5}), rowOf({3, 3}),
                              Err);
  EXPECT_DOUBLE_EQ(R.linear(0), 1);
  EXPECT_DOUBLE_EQ(R.linear(1), 0);
  Value A = elementwiseBinary(BinaryOp::And, rowOf({1, 0}), rowOf({2, 2}),
                              Err);
  EXPECT_DOUBLE_EQ(A.linear(0), 1);
  EXPECT_DOUBLE_EQ(A.linear(1), 0);
}

TEST(MatMulTest, Basic) {
  OpError Err;
  Value C = matMul(mat2x2(1, 2, 3, 4), mat2x2(5, 6, 7, 8), Err);
  ASSERT_FALSE(Err.failed());
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(MatMulTest, InnerMismatch) {
  OpError Err;
  matMul(Value(2, 3), Value(2, 3), Err);
  EXPECT_TRUE(Err.failed());
}

TEST(MatMulTest, RowTimesColumnIsScalar) {
  OpError Err;
  Value D = matMul(rowOf({1, 2, 3}), colOf({4, 5, 6}), Err);
  ASSERT_FALSE(Err.failed());
  EXPECT_TRUE(D.isScalar());
  EXPECT_DOUBLE_EQ(D.scalarValue(), 32);
}

TEST(MatMulTest, OuterProduct) {
  OpError Err;
  Value O = matMul(colOf({1, 2}), rowOf({3, 4}), Err);
  EXPECT_EQ(O.rows(), 2u);
  EXPECT_EQ(O.cols(), 2u);
  EXPECT_DOUBLE_EQ(O.at(1, 1), 8);
}

TEST(MulOpTest, ScalarShortcut) {
  OpError Err;
  Value R = mulOp(Value::scalar(2), mat2x2(1, 2, 3, 4), Err);
  EXPECT_DOUBLE_EQ(R.at(1, 1), 8);
}

TEST(PowOpTest, MatrixPower) {
  OpError Err;
  Value M = mat2x2(1, 1, 0, 1);
  Value R = powOp(M, Value::scalar(3), Err);
  ASSERT_FALSE(Err.failed());
  EXPECT_DOUBLE_EQ(R.at(0, 1), 3);
  Value I = powOp(M, Value::scalar(0), Err);
  EXPECT_DOUBLE_EQ(I.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(I.at(0, 1), 0);
}

TEST(PowOpTest, NonSquareRejected) {
  OpError Err;
  powOp(Value(2, 3), Value::scalar(2), Err);
  EXPECT_TRUE(Err.failed());
}

TEST(RangeTest, Construction) {
  OpError Err;
  EXPECT_EQ(makeRange(1, 1, 5, Err).numel(), 5u);
  EXPECT_EQ(makeRange(2, 2, 10, Err).numel(), 5u);
  EXPECT_EQ(makeRange(10, -2, 5, Err).numel(), 3u);
  EXPECT_EQ(makeRange(5, 1, 1, Err).numel(), 0u);
  EXPECT_FALSE(Err.failed());
  makeRange(1, 0, 5, Err);
  EXPECT_TRUE(Err.failed());
}

TEST(RangeTest, NonDivisibleStopsShort) {
  OpError Err;
  Value R = makeRange(1, 2, 6, Err); // 1 3 5
  ASSERT_EQ(R.numel(), 3u);
  EXPECT_DOUBLE_EQ(R.linear(2), 5);
}

TEST(ConcatTest, HorzVert) {
  OpError Err;
  Value H = horzcat(rowOf({1, 2}), rowOf({3}), Err);
  EXPECT_EQ(H.cols(), 3u);
  Value V = vertcat(rowOf({1, 2}), rowOf({3, 4}), Err);
  EXPECT_EQ(V.rows(), 2u);
  EXPECT_DOUBLE_EQ(V.at(1, 0), 3);
  EXPECT_FALSE(Err.failed());
  vertcat(rowOf({1, 2}), rowOf({1, 2, 3}), Err);
  EXPECT_TRUE(Err.failed());
}

TEST(ConcatTest, EmptyIsNeutral) {
  OpError Err;
  Value R = horzcat(Value(), rowOf({1, 2}), Err);
  EXPECT_EQ(R.numel(), 2u);
  Value V = vertcat(colOf({1}), Value(), Err);
  EXPECT_EQ(V.numel(), 1u);
}

TEST(ReduceTest, SumVariants) {
  Value M = mat2x2(1, 2, 3, 4);
  Value Cols = sumAlong(M, 1);
  EXPECT_DOUBLE_EQ(Cols.at(0, 0), 4);
  EXPECT_DOUBLE_EQ(Cols.at(0, 1), 6);
  Value Rows = sumAlong(M, 2);
  EXPECT_DOUBLE_EQ(Rows.at(0, 0), 3);
  EXPECT_DOUBLE_EQ(Rows.at(1, 0), 7);
  EXPECT_DOUBLE_EQ(sumDefault(rowOf({1, 2, 3})).scalarValue(), 6);
  EXPECT_DOUBLE_EQ(sumDefault(M).at(0, 1), 6);
}

TEST(ReduceTest, CumsumOrientation) {
  Value R = cumsumDefault(rowOf({1, 2, 3}));
  EXPECT_DOUBLE_EQ(R.linear(2), 6);
  Value C = cumsumDefault(colOf({1, 2, 3}));
  EXPECT_DOUBLE_EQ(C.linear(2), 6);
  Value M = cumsumDefault(mat2x2(1, 2, 3, 4)); // down columns
  EXPECT_DOUBLE_EQ(M.at(1, 0), 4);
}

TEST(ReduceTest, Prod) {
  EXPECT_DOUBLE_EQ(prodDefault(rowOf({2, 3, 4})).scalarValue(), 24);
}

TEST(RepmatTest, Tiling) {
  Value R = repmat(colOf({1, 2}), 2, 3);
  EXPECT_EQ(R.rows(), 4u);
  EXPECT_EQ(R.cols(), 3u);
  EXPECT_DOUBLE_EQ(R.at(3, 2), 2);
  EXPECT_DOUBLE_EQ(R.at(2, 0), 1);
}

TEST(HistTest, BinningAtMidpoints) {
  OpError Err;
  // Centers 0,1,2: edges at 0.5 and 1.5.
  Value H = histCounts(rowOf({0, 0.4, 0.6, 1.4, 1.6, 5, -3}),
                       rowOf({0, 1, 2}), Err);
  ASSERT_FALSE(Err.failed());
  EXPECT_DOUBLE_EQ(H.linear(0), 3); // 0, 0.4, -3
  EXPECT_DOUBLE_EQ(H.linear(1), 2); // 0.6, 1.4
  EXPECT_DOUBLE_EQ(H.linear(2), 2); // 1.6, 5
}

TEST(HistTest, EmptyCentersRejected) {
  OpError Err;
  histCounts(rowOf({1}), Value(), Err);
  EXPECT_TRUE(Err.failed());
}

TEST(UnaryTest, MinusAndNot) {
  Value M = unaryMinus(rowOf({1, -2}));
  EXPECT_DOUBLE_EQ(M.linear(0), -1);
  EXPECT_DOUBLE_EQ(M.linear(1), 2);
  Value N = unaryNot(rowOf({0, 3}));
  EXPECT_DOUBLE_EQ(N.linear(0), 1);
  EXPECT_DOUBLE_EQ(N.linear(1), 0);
}

TEST(DivOpTest, ScalarDenominatorOnly) {
  OpError Err;
  Value R = divOp(rowOf({2, 4}), Value::scalar(2), Err);
  EXPECT_DOUBLE_EQ(R.linear(1), 2);
  EXPECT_FALSE(Err.failed());
  divOp(rowOf({2, 4}), rowOf({1, 2}), Err);
  EXPECT_TRUE(Err.failed());
}

//===----------------------------------------------------------------------===//
// Randomized differential tests: the fused/blocked/pooled kernels against
// naive scalar references. The optimized paths restructure the loops
// (blocking, fusion, buffer reuse), so every element is cross-checked on a
// spread of shapes, including the scalar-broadcast and empty edge cases.
//===----------------------------------------------------------------------===//

/// Deterministic xorshift PRNG (tests must not depend on global rand()).
struct TestRng {
  uint64_t State;
  explicit TestRng(uint64_t Seed) : State(Seed ? Seed : 1) {}
  double next() { // uniform in [-8, 8) with a sprinkle of exact zeros
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    if ((State & 0xF) == 0)
      return 0.0;
    return static_cast<double>(State % 10000) / 625.0 - 8.0;
  }
};

Value randomValue(TestRng &Rng, size_t Rows, size_t Cols) {
  Value M(Rows, Cols);
  for (size_t I = 0; I != M.numel(); ++I)
    M.linear(I) = Rng.next();
  return M;
}

/// Reference A*B via the textbook triple loop, no blocking, no transposes.
Value naiveMatMul(const Value &A, const Value &B) {
  Value R(A.rows(), B.cols());
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t J = 0; J != B.cols(); ++J) {
      double Acc = 0;
      for (size_t K = 0; K != A.cols(); ++K)
        Acc += A.at(I, K) * B.at(K, J);
      if (R.numel())
        R.at(I, J) = Acc;
    }
  return R;
}

/// Broadcast-aware element read for scalar-or-matrix operands.
double bcast(const Value &V, size_t I) {
  return V.isScalar() ? V.scalarValue() : V.linear(I);
}

TEST(DifferentialTest, FusedMulAddMatchesTwoStep) {
  TestRng Rng(0xC0FFEE);
  OpWorkspace WS;
  const size_t Shapes[][2] = {{1, 1}, {1, 7}, {5, 1}, {3, 4}, {17, 9}, {64, 3}};
  for (const auto &Shape : Shapes) {
    size_t R = Shape[0], C = Shape[1];
    for (int Trial = 0; Trial != 8; ++Trial) {
      // Mix matrix and scalar operands; fusedMulAdd must accept any
      // combination fusableMulAddShapes admits.
      Value A = (Trial & 1) ? Value::scalar(Rng.next()) : randomValue(Rng, R, C);
      Value B = (Trial & 2) ? Value::scalar(Rng.next()) : randomValue(Rng, R, C);
      Value Cv = (Trial & 4) ? Value::scalar(Rng.next()) : randomValue(Rng, R, C);
      if (!fusableMulAddShapes(A, B, Cv))
        continue;
      for (bool Subtract : {false, true})
        for (bool ProductOnLeft : {false, true}) {
          Value Fused = fusedMulAdd(A, B, Cv, Subtract, ProductOnLeft, &WS);
          size_t N = std::max({A.numel(), B.numel(), Cv.numel()});
          ASSERT_EQ(Fused.numel(), N);
          for (size_t I = 0; I != N; ++I) {
            double P = bcast(A, I) * bcast(B, I);
            double Expect = !Subtract         ? P + bcast(Cv, I)
                            : ProductOnLeft   ? P - bcast(Cv, I)
                                              : bcast(Cv, I) - P;
            ASSERT_DOUBLE_EQ(Fused.linear(I), Expect)
                << R << "x" << C << " trial " << Trial << " elt " << I;
          }
          WS.recycle(std::move(Fused));
        }
    }
  }
}

TEST(DifferentialTest, BlockedMatMulMatchesNaive) {
  TestRng Rng(0xBEEF);
  OpWorkspace WS;
  // Spans the blocking boundaries (PBlock = 128) and skinny shapes.
  const size_t Dims[][3] = {{1, 1, 1},   {2, 3, 4},   {7, 7, 7},
                            {1, 130, 1}, {5, 128, 5}, {33, 129, 17},
                            {130, 2, 3}, {3, 2, 130}};
  for (const auto &D : Dims) {
    Value A = randomValue(Rng, D[0], D[1]);
    Value B = randomValue(Rng, D[1], D[2]);
    OpError Err;
    Value R = mulOp(A, B, Err, &WS);
    ASSERT_FALSE(Err.failed());
    Value Ref = naiveMatMul(A, B);
    ASSERT_TRUE(R.equals(Ref, 1e-12))
        << D[0] << "x" << D[1] << " * " << D[1] << "x" << D[2];
    WS.recycle(std::move(R));
  }
}

TEST(DifferentialTest, MatMulTransBMatchesNaive) {
  TestRng Rng(0xDEAD);
  OpWorkspace WS;
  // matMulTransB(A, B) computes A * B'; B is given untransposed.
  const size_t Dims[][3] = {{1, 1, 1},  {4, 3, 5},    {16, 16, 16},
                            {2, 130, 2}, {31, 127, 33}, {1, 64, 1}};
  for (const auto &D : Dims) {
    Value A = randomValue(Rng, D[0], D[1]);
    Value B = randomValue(Rng, D[2], D[1]); // B' is D[1] x D[2]
    OpError Err;
    Value R = matMulTransB(A, B, Err, &WS);
    ASSERT_FALSE(Err.failed());
    Value Ref = naiveMatMul(A, B.transposed());
    ASSERT_TRUE(R.equals(Ref, 1e-12))
        << D[0] << "x" << D[1] << " * (" << D[2] << "x" << D[1] << ")'";
    WS.recycle(std::move(R));
  }
}

TEST(DifferentialTest, PooledElementwiseMatchesFresh) {
  TestRng Rng(0xF00D);
  OpWorkspace WS;
  const BinaryOp Ops[] = {BinaryOp::Add, BinaryOp::Sub,  BinaryOp::DotMul,
                          BinaryOp::DotDiv, BinaryOp::Lt, BinaryOp::Ge};
  for (int Trial = 0; Trial != 24; ++Trial) {
    size_t R = 1 + Trial % 5, C = 1 + Trial % 7;
    Value A = (Trial % 3 == 0) ? Value::scalar(Rng.next())
                               : randomValue(Rng, R, C);
    Value B = (Trial % 3 == 1) ? Value::scalar(Rng.next())
                               : randomValue(Rng, R, C);
    for (BinaryOp Op : Ops) {
      OpError ErrPooled, ErrFresh;
      // Same kernel with and without the buffer pool: identical results,
      // including the logical flag on comparisons.
      Value Pooled = elementwiseBinary(Op, A, B, ErrPooled, &WS);
      Value Fresh = elementwiseBinary(Op, A, B, ErrFresh, nullptr);
      ASSERT_EQ(ErrPooled.failed(), ErrFresh.failed());
      if (ErrFresh.failed())
        continue;
      ASSERT_TRUE(Pooled.equals(Fresh)) << "op " << static_cast<int>(Op);
      ASSERT_EQ(Pooled.isLogical(), Fresh.isLogical());
      WS.recycle(std::move(Pooled));
    }
  }
}

TEST(DifferentialTest, PoolRecyclingNeverAliasesLiveValues) {
  OpWorkspace WS;
  OpError Err;
  TestRng Rng(7);
  Value A = randomValue(Rng, 8, 8);
  Value Live = mulOp(A, A, Err, &WS);
  ASSERT_FALSE(Err.failed());
  Value Snapshot = Live; // shares Live's buffer
  // Recycling Live must not hand its (shared) buffer to the pool...
  WS.recycle(std::move(Live));
  Value Next = mulOp(A, A, Err, &WS);
  // ...so writing the next result cannot corrupt the snapshot.
  ASSERT_FALSE(Snapshot.sharesBufferWith(Next));
  ASSERT_TRUE(Snapshot.equals(Next, 0.0));
}

} // namespace

//===----------------------------------------------------------------------===//
// SIMD dispatch and per-ISA differential tests. The contract
// (SimdDispatch.h) is bit-exactness: every compiled-in vector table must
// reproduce the scalar reference table bit for bit — including NaN
// payloads, signed zeros and Inf propagation — on every kernel. These
// tests pin the dispatch level per run and compare raw payload bits.
//===----------------------------------------------------------------------===//

/// Pins the process-global dispatch level for a scope.
class ScopedSimdLevel {
  simd::Level Saved;

public:
  explicit ScopedSimdLevel(simd::Level L) : Saved(simd::activeLevel()) {
    EXPECT_TRUE(simd::setLevel(L));
  }
  ~ScopedSimdLevel() { simd::setLevel(Saved); }
};

std::vector<simd::Level> supportedLevels() {
  std::vector<simd::Level> Out;
  for (simd::Level L : simd::compiledLevels())
    if (simd::levelSupported(L))
      Out.push_back(L);
  return Out;
}

/// Bitwise payload comparison: the only equality that catches -0.0 vs 0.0
/// and NaN-payload divergence.
void expectBitIdentical(const Value &Got, const Value &Want,
                        const std::string &What) {
  ASSERT_EQ(Got.rows(), Want.rows()) << What;
  ASSERT_EQ(Got.cols(), Want.cols()) << What;
  for (size_t I = 0, E = Got.numel(); I != E; ++I) {
    uint64_t GotBits, WantBits;
    double G = Got.linear(I), W = Want.linear(I);
    // Any NaN matches any NaN: IEEE 754 leaves payload/sign propagation
    // unspecified, and the compiler may commute multiply operands per
    // optimization level, so which payload survives an accumulation is
    // not a property the kernels can pin down. Everything else —
    // including -0.0 vs 0.0 and NaN vs number — must match bit for bit.
    if (std::isnan(G) && std::isnan(W))
      continue;
    std::memcpy(&GotBits, &G, sizeof(double));
    std::memcpy(&WantBits, &W, sizeof(double));
    ASSERT_EQ(GotBits, WantBits)
        << What << " elt " << I << ": " << G << " vs " << W;
  }
}

/// Random payload seasoned with the IEEE specials the vector compare and
/// zero-skip paths must reproduce exactly.
Value randomWithSpecials(TestRng &Rng, size_t Rows, size_t Cols) {
  static const double Specials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(), -0.0};
  Value M(Rows, Cols);
  size_t Which = 0;
  for (size_t I = 0; I != M.numel(); ++I) {
    double V = Rng.next();
    M.linear(I) = V > 7.0 ? Specials[Which++ % 4] : V;
  }
  return M;
}

/// A strictly zero-free payload: drives the matmul's register-blocked
/// no-zero panel kernel rather than the zero-skip fallback.
Value randomZeroFree(TestRng &Rng, size_t Rows, size_t Cols) {
  Value M(Rows, Cols);
  for (size_t I = 0; I != M.numel(); ++I)
    M.linear(I) = std::fabs(Rng.next()) + 0.25;
  return M;
}

TEST(SimdDispatchTest, ScalarAlwaysCompiledAndSpecParses) {
  std::vector<simd::Level> Levels = simd::compiledLevels();
  ASSERT_FALSE(Levels.empty());
  EXPECT_EQ(Levels.front(), simd::Level::Scalar);
  EXPECT_TRUE(simd::levelSupported(simd::Level::Scalar));
  EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");

  std::string Err;
  EXPECT_FALSE(simd::configureFromString("vliw", &Err));
  EXPECT_FALSE(Err.empty());
  // "auto"/"best" and every supported name select successfully; the active
  // level is restored afterwards so other tests see the default.
  simd::Level Before = simd::activeLevel();
  EXPECT_TRUE(simd::configureFromString("scalar", nullptr));
  EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
  EXPECT_TRUE(simd::configureFromString("auto", nullptr));
  EXPECT_EQ(simd::activeLevel(), simd::bestSupportedLevel());
  for (simd::Level L : supportedLevels())
    EXPECT_TRUE(simd::configureFromString(simd::levelName(L), nullptr));
  EXPECT_TRUE(simd::setLevel(Before));
}

TEST(SimdDispatchTest, ForcedScalarFallbackServesKernels) {
  ScopedSimdLevel Pin(simd::Level::Scalar);
  ASSERT_EQ(simd::activeLevel(), simd::Level::Scalar);
  uint64_t EwBefore = simd::dispatchCounters().Elementwise.load();
  uint64_t MmBefore = simd::dispatchCounters().MatMul.load();
  TestRng Rng(11);
  Value A = randomValue(Rng, 6, 6), B = randomValue(Rng, 6, 6);
  OpError Err;
  Value Sum = elementwiseBinary(BinaryOp::Add, A, B, Err);
  ASSERT_FALSE(Err.failed());
  for (size_t I = 0; I != Sum.numel(); ++I)
    ASSERT_DOUBLE_EQ(Sum.linear(I), A.linear(I) + B.linear(I));
  Value Prod = mulOp(A, B, Err);
  ASSERT_FALSE(Err.failed());
  ASSERT_TRUE(Prod.equals(naiveMatMul(A, B), 1e-12));
  // The dispatch counters observed the traffic even on the fallback tier.
  EXPECT_GT(simd::dispatchCounters().Elementwise.load(), EwBefore);
  EXPECT_GT(simd::dispatchCounters().MatMul.load(), MmBefore);
}

TEST(SimdDifferentialTest, ElementwiseAndCompareBitExactAcrossLevels) {
  const BinaryOp Ops[] = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::DotMul,
                          BinaryOp::DotDiv, BinaryOp::Lt, BinaryOp::Gt,
                          BinaryOp::Le,  BinaryOp::Ge,  BinaryOp::Eq,
                          BinaryOp::Ne,  BinaryOp::And, BinaryOp::Or};
  // Shapes straddling every vector width's main-loop/tail boundary.
  const size_t Shapes[][2] = {{1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5},
                              {1, 7}, {1, 8}, {1, 9}, {3, 3}, {4, 4},
                              {5, 5}, {8, 8}, {16, 17}};
  for (simd::Level L : supportedLevels()) {
    if (L == simd::Level::Scalar)
      continue;
    TestRng Rng(0xA11CE); // same stream per level: identical inputs
    for (const auto &Shape : Shapes) {
      size_t R = Shape[0], C = Shape[1];
      for (int Broadcast = 0; Broadcast != 3; ++Broadcast) {
        Value A = Broadcast == 1 ? Value::scalar(Rng.next())
                                 : randomWithSpecials(Rng, R, C);
        Value B = Broadcast == 2 ? Value::scalar(Rng.next())
                                 : randomWithSpecials(Rng, R, C);
        for (BinaryOp Op : Ops) {
          OpError ErrS, ErrV;
          Value Want, Got;
          {
            ScopedSimdLevel Pin(simd::Level::Scalar);
            Want = elementwiseBinary(Op, A, B, ErrS);
          }
          {
            ScopedSimdLevel Pin(L);
            Got = elementwiseBinary(Op, A, B, ErrV);
          }
          ASSERT_EQ(ErrS.failed(), ErrV.failed());
          expectBitIdentical(Got, Want,
                             std::string(simd::levelName(L)) + " op " +
                                 std::to_string(static_cast<int>(Op)) + " " +
                                 std::to_string(R) + "x" + std::to_string(C));
          ASSERT_EQ(Got.isLogical(), Want.isLogical());
        }
      }
    }
  }
}

TEST(SimdDifferentialTest, FusedMulAddBitExactAcrossLevels) {
  const size_t Shapes[][2] = {{1, 5}, {2, 2}, {3, 3}, {4, 4},
                              {5, 5}, {7, 9}, {16, 16}};
  for (simd::Level L : supportedLevels()) {
    if (L == simd::Level::Scalar)
      continue;
    TestRng Rng(0xFAB);
    for (const auto &Shape : Shapes) {
      size_t R = Shape[0], C = Shape[1];
      for (int Trial = 0; Trial != 8; ++Trial) {
        Value A = (Trial & 1) ? Value::scalar(Rng.next())
                              : randomWithSpecials(Rng, R, C);
        Value B = (Trial & 2) ? Value::scalar(Rng.next())
                              : randomWithSpecials(Rng, R, C);
        Value Cv = (Trial & 4) ? Value::scalar(Rng.next())
                               : randomWithSpecials(Rng, R, C);
        if (!fusableMulAddShapes(A, B, Cv))
          continue;
        for (bool Subtract : {false, true})
          for (bool ProductOnLeft : {false, true}) {
            Value Want, Got;
            {
              ScopedSimdLevel Pin(simd::Level::Scalar);
              Want = fusedMulAdd(A, B, Cv, Subtract, ProductOnLeft);
            }
            {
              ScopedSimdLevel Pin(L);
              Got = fusedMulAdd(A, B, Cv, Subtract, ProductOnLeft);
            }
            expectBitIdentical(Got, Want,
                               std::string(simd::levelName(L)) + " fma " +
                                   std::to_string(R) + "x" +
                                   std::to_string(C));
          }
      }
    }
  }
}

TEST(SimdDifferentialTest, MatMulBitExactAcrossLevels) {
  // Crosses the vector width, the 4-column register tile, and the
  // PBlock=128 panel boundary; includes skinny and tall extremes.
  const size_t Dims[][3] = {{1, 1, 1},   {2, 2, 2},   {3, 3, 3},
                            {4, 4, 4},   {5, 5, 5},   {7, 3, 9},
                            {8, 8, 8},   {9, 5, 6},   {16, 16, 16},
                            {33, 129, 17}, {130, 2, 3}, {5, 128, 5},
                            {2, 130, 2},  {6, 127, 11}};
  for (simd::Level L : supportedLevels()) {
    if (L == simd::Level::Scalar)
      continue;
    TestRng Rng(0x5EED);
    for (const auto &D : Dims) {
      size_t M = D[0], K = D[1], P = D[2];
      // Three densities: ~1/16 exact zeros (exercises the zero-skip
      // fallback), zero-free (exercises the register-blocked panel), and
      // special-laden (Inf/NaN must propagate identically through both).
      Value As[] = {randomValue(Rng, M, K), randomZeroFree(Rng, M, K),
                    randomWithSpecials(Rng, M, K)};
      Value Bs[] = {randomValue(Rng, K, P), randomZeroFree(Rng, K, P),
                    randomWithSpecials(Rng, K, P)};
      for (int Density = 0; Density != 3; ++Density) {
        OpError ErrS, ErrV;
        Value Want, Got;
        {
          ScopedSimdLevel Pin(simd::Level::Scalar);
          Want = matMul(As[Density], Bs[Density], ErrS);
        }
        {
          ScopedSimdLevel Pin(L);
          Got = matMul(As[Density], Bs[Density], ErrV);
        }
        ASSERT_FALSE(ErrS.failed());
        ASSERT_FALSE(ErrV.failed());
        expectBitIdentical(Got, Want,
                           std::string(simd::levelName(L)) + " matmul " +
                               std::to_string(M) + "x" + std::to_string(K) +
                               "*" + std::to_string(K) + "x" +
                               std::to_string(P) + " d" +
                               std::to_string(Density));
      }
    }
  }
}

TEST(SimdDifferentialTest, MatMulTransBBitExactAcrossLevels) {
  const size_t Dims[][3] = {{1, 1, 1},  {3, 3, 3},   {4, 4, 4},
                            {5, 5, 5},  {8, 8, 8},   {16, 16, 16},
                            {9, 130, 7}, {2, 5, 33}, {33, 17, 129}};
  for (simd::Level L : supportedLevels()) {
    if (L == simd::Level::Scalar)
      continue;
    TestRng Rng(0x7B);
    for (const auto &D : Dims) {
      size_t M = D[0], K = D[1], P = D[2];
      // A is MxK, B is PxK: result A * B' is MxP.
      Value A = randomValue(Rng, M, K);
      Value B = randomValue(Rng, P, K);
      OpError ErrS, ErrV;
      Value Want, Got;
      {
        ScopedSimdLevel Pin(simd::Level::Scalar);
        Want = matMulTransB(A, B, ErrS);
      }
      {
        ScopedSimdLevel Pin(L);
        Got = matMulTransB(A, B, ErrV);
      }
      ASSERT_FALSE(ErrS.failed());
      ASSERT_FALSE(ErrV.failed());
      expectBitIdentical(Got, Want,
                         std::string(simd::levelName(L)) + " matmul-tb " +
                             std::to_string(M) + "x" + std::to_string(K) +
                             "*(" + std::to_string(P) + "x" +
                             std::to_string(K) + ")'");
    }
  }
}

TEST(SimdDifferentialTest, ReductionsBitExactAcrossLevels) {
  // Row counts cross every vector width (the column reductions transpose
  // WxW blocks in registers); column counts cross the row-tail gather.
  const size_t Shapes[][2] = {{1, 1},  {2, 2},  {3, 3},  {4, 4},  {5, 5},
                              {8, 3},  {3, 8},  {7, 7},  {16, 16}, {17, 9},
                              {33, 7}, {9, 33}, {1, 12}, {12, 1}};
  for (simd::Level L : supportedLevels()) {
    if (L == simd::Level::Scalar)
      continue;
    TestRng Rng(0xCAFE);
    for (const auto &Shape : Shapes) {
      size_t R = Shape[0], C = Shape[1];
      for (int Density = 0; Density != 2; ++Density) {
        Value A = Density ? randomWithSpecials(Rng, R, C)
                          : randomValue(Rng, R, C);
        std::string Tag = std::string(simd::levelName(L)) + " " +
                          std::to_string(R) + "x" + std::to_string(C) +
                          " d" + std::to_string(Density);
        Value WantS1, WantS2, WantC1, WantC2, WantP;
        {
          ScopedSimdLevel Pin(simd::Level::Scalar);
          WantS1 = sumAlong(A, 1);
          WantS2 = sumAlong(A, 2);
          WantC1 = cumsumAlong(A, 1);
          WantC2 = cumsumAlong(A, 2);
          WantP = prodDefault(A);
        }
        ScopedSimdLevel Pin(L);
        expectBitIdentical(sumAlong(A, 1), WantS1, Tag + " sum1");
        expectBitIdentical(sumAlong(A, 2), WantS2, Tag + " sum2");
        expectBitIdentical(cumsumAlong(A, 1), WantC1, Tag + " cumsum1");
        expectBitIdentical(cumsumAlong(A, 2), WantC2, Tag + " cumsum2");
        expectBitIdentical(prodDefault(A), WantP, Tag + " prod");
      }
    }
  }
}

TEST(SimdDifferentialTest, UnaryBitExactAcrossLevels) {
  const size_t Shapes[][2] = {{1, 1}, {1, 3}, {1, 5}, {2, 2},
                              {3, 3}, {5, 7}, {16, 17}};
  for (simd::Level L : supportedLevels()) {
    if (L == simd::Level::Scalar)
      continue;
    TestRng Rng(0xF00D);
    for (const auto &Shape : Shapes) {
      Value A = randomWithSpecials(Rng, Shape[0], Shape[1]);
      Value WantNeg, WantNot;
      {
        ScopedSimdLevel Pin(simd::Level::Scalar);
        WantNeg = unaryMinus(A);
        WantNot = unaryNot(A);
      }
      ScopedSimdLevel Pin(L);
      std::string Tag = std::string(simd::levelName(L)) + " " +
                        std::to_string(Shape[0]) + "x" +
                        std::to_string(Shape[1]);
      expectBitIdentical(unaryMinus(A), WantNeg, Tag + " neg");
      // unaryNot maps NaN -> 0 like MATLAB ~; still must match bitwise.
      expectBitIdentical(unaryNot(A), WantNot, Tag + " not");
    }
  }
}
