//===- ResilienceTest.cpp - Fault injection + resource governance tests ----===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for mvec::resilience and its integration through the stack:
/// deterministic fault schedules, backoff/breaker/governor units, the
/// parser/checker/evaluator depth guards, kernel deadline polling, the
/// thread-pool shutdown and exception-containment fixes, and the service's
/// retry/degradation/shedding behavior — including a randomized soak run
/// against the differential fuzzing oracle.
///
//===----------------------------------------------------------------------===//

#include "resilience/Backoff.h"
#include "resilience/CircuitBreaker.h"
#include "resilience/FaultInjection.h"
#include "resilience/ResourceGovernor.h"

#include "deps/LoopNest.h"
#include "frontend/ASTPrinter.h"
#include "frontend/Parser.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "interp/Interpreter.h"
#include "service/VectorizationService.h"
#include "shape/AnnotationParser.h"
#include "vectorizer/DimChecker.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace mvec;

namespace {

//===----------------------------------------------------------------------===//
// Backoff
//===----------------------------------------------------------------------===//

TEST(BackoffTest, DeterministicInSeedAndRetry) {
  RetryPolicy P;
  EXPECT_EQ(backoffDelay(P, 1, 42).count(), backoffDelay(P, 1, 42).count());
  EXPECT_EQ(backoffDelay(P, 2, 42).count(), backoffDelay(P, 2, 42).count());
  // Different seeds should (for these particular values) jitter apart.
  EXPECT_NE(backoffDelay(P, 1, 42).count(), backoffDelay(P, 1, 43).count());
}

TEST(BackoffTest, GrowsAndStaysWithinBounds) {
  RetryPolicy P;
  auto CapUs = std::chrono::duration_cast<std::chrono::microseconds>(
                   P.MaxBackoff)
                   .count();
  for (unsigned Retry = 1; Retry <= 12; ++Retry) {
    auto D = backoffDelay(P, Retry, 7);
    EXPECT_GE(D.count(), 0);
    EXPECT_LE(D.count(), CapUs) << "retry " << Retry;
  }
  // Base 5ms doubling: retry 3's jitter band [10ms, 30ms] sits strictly
  // above retry 1's [2.5ms, 7.5ms].
  EXPECT_GT(backoffDelay(P, 3, 7).count(), backoffDelay(P, 1, 7).count());
}

//===----------------------------------------------------------------------===//
// CircuitBreaker
//===----------------------------------------------------------------------===//

TEST(CircuitBreakerTest, DisabledByDefault) {
  CircuitBreaker B;
  for (int I = 0; I != 10; ++I) {
    EXPECT_TRUE(B.allow());
    B.recordFailure();
  }
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(B.shedCount(), 0u);
}

TEST(CircuitBreakerTest, OpensShedsAndRecovers) {
  BreakerConfig Config;
  Config.FailureThreshold = 2;
  Config.Cooldown = std::chrono::milliseconds(50);
  CircuitBreaker B(Config);

  EXPECT_TRUE(B.allow());
  B.recordFailure();
  EXPECT_TRUE(B.allow());
  B.recordFailure();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow());
  EXPECT_FALSE(B.allow());
  EXPECT_EQ(B.shedCount(), 2u);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(B.allow()); // the HalfOpen probe
  B.recordSuccess();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(B.allow());
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  BreakerConfig Config;
  Config.FailureThreshold = 1;
  Config.Cooldown = std::chrono::milliseconds(30);
  CircuitBreaker B(Config);
  B.recordFailure();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(B.allow());
  B.recordFailure();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow());
}

//===----------------------------------------------------------------------===//
// ResourceGovernor
//===----------------------------------------------------------------------===//

TEST(ResourceGovernorTest, ThrowsPastCapAndAccountsCumulatively) {
  ResourceGovernor G(1000);
  G.charge(400);
  G.charge(400);
  EXPECT_EQ(G.usedBytes(), 800u);
  EXPECT_THROW(G.charge(400), ResourceExhausted);
}

TEST(ResourceGovernorTest, ZeroCapOnlyAccounts) {
  ResourceGovernor G(0);
  G.charge(size_t(1) << 40);
  G.charge(12);
  EXPECT_EQ(G.usedBytes(), (size_t(1) << 40) + 12);
}

TEST(ResourceGovernorTest, ScopeArmsAndRestoresThreadLocal) {
  chargeMemory(1 << 30); // disarmed: a no-op
  ResourceGovernor G(100);
  {
    GovernorScope Scope(&G);
    chargeMemory(60);
    EXPECT_EQ(G.usedBytes(), 60u);
    EXPECT_THROW(chargeMemory(60), ResourceExhausted);
  }
  chargeMemory(1 << 30); // disarmed again
  EXPECT_EQ(G.usedBytes(), 120u);
}

//===----------------------------------------------------------------------===//
// FaultContext
//===----------------------------------------------------------------------===//

/// Fire pattern of \p Site over \p Crossings crossings under (plan, salt).
std::vector<bool> firePattern(const FaultPlan &Plan, uint64_t Salt,
                              FaultSite Site, unsigned Crossings) {
  FaultContext Ctx(&Plan, Salt);
  std::vector<bool> Fired;
  for (unsigned I = 0; I != Crossings; ++I) {
    try {
      Ctx.inject(Site);
      Fired.push_back(false);
    } catch (const InjectedFault &) {
      Fired.push_back(true);
    }
  }
  return Fired;
}

TEST(FaultContextTest, ScheduleIsDeterministicInPlanAndSalt) {
  FaultPlan Plan;
  Plan.Seed = 99;
  Plan.Rules.push_back({FaultSite::InterpStmt, FaultKind::Exception,
                        /*Period=*/3, /*MaxFires=*/0, /*LatencyMicros=*/0});
  auto A = firePattern(Plan, 7, FaultSite::InterpStmt, 200);
  auto B = firePattern(Plan, 7, FaultSite::InterpStmt, 200);
  EXPECT_EQ(A, B);
  unsigned Fires = 0;
  for (bool F : A)
    Fires += F;
  // Period 3 fires a hash-chosen ~third of crossings — never none, never
  // all, for any sane hash.
  EXPECT_GT(Fires, 0u);
  EXPECT_LT(Fires, 200u);
  // A different salt must not replay the same schedule.
  EXPECT_NE(A, firePattern(Plan, 8, FaultSite::InterpStmt, 200));
}

TEST(FaultContextTest, MaxFiresCapsAndAccounts) {
  FaultPlan Plan;
  Plan.Seed = 1;
  Plan.Rules.push_back({FaultSite::WorkerPickup, FaultKind::Exception,
                        /*Period=*/1, /*MaxFires=*/2, /*LatencyMicros=*/0});
  FaultContext Ctx(&Plan, 5);
  unsigned Fires = 0;
  for (unsigned I = 0; I != 50; ++I) {
    try {
      Ctx.inject(FaultSite::WorkerPickup);
    } catch (const InjectedFault &) {
      ++Fires;
    }
  }
  EXPECT_EQ(Fires, 2u);
  EXPECT_EQ(Ctx.totalFires(), 2u);
  EXPECT_EQ(Ctx.firesAt(FaultSite::WorkerPickup), 2u);
  EXPECT_EQ(Ctx.firesAt(FaultSite::ParseEntry), 0u);
}

TEST(FaultContextTest, DeadlineExpireSetsFlagWithoutThrowing) {
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::ParseEntry, FaultKind::DeadlineExpire,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  FaultContext Ctx(&Plan, 0);
  EXPECT_FALSE(Ctx.deadlineForced());
  Ctx.inject(FaultSite::ParseEntry);
  EXPECT_TRUE(Ctx.deadlineForced());
  FaultScope Scope(&Ctx);
  EXPECT_TRUE(faultDeadlineForced());
}

TEST(FaultContextTest, SiteAndKindNamesRoundTrip) {
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    FaultSite Site = static_cast<FaultSite>(S), Parsed;
    ASSERT_TRUE(faultSiteFromName(faultSiteName(Site), Parsed));
    EXPECT_EQ(Parsed, Site);
  }
  for (unsigned K = 0; K != NumFaultKinds; ++K) {
    FaultKind Kind = static_cast<FaultKind>(K), Parsed;
    ASSERT_TRUE(faultKindFromName(faultKindName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  FaultSite S;
  EXPECT_FALSE(faultSiteFromName("no-such-site", S));
}

//===----------------------------------------------------------------------===//
// Depth guards: parser, printer, dim checker, evaluator
//===----------------------------------------------------------------------===//

std::string parseError(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  return Diags.str();
}

TEST(DepthGuardTest, ParserSurvivesHundredThousandParens) {
  std::string Source =
      "x = " + std::string(100000, '(') + "1" + std::string(100000, ')') + ";";
  EXPECT_NE(parseError(Source).find("nesting exceeds"), std::string::npos);
}

TEST(DepthGuardTest, ParserSurvivesDeepUnaryChain) {
  std::string Source = "x = " + std::string(100000, '-') + "1;";
  EXPECT_NE(parseError(Source).find("nesting exceeds"), std::string::npos);
}

TEST(DepthGuardTest, ParserSurvivesHundredThousandTermChain) {
  // Left-leaning: without the per-iteration charge the parser would build
  // a 100k-deep BinaryExpr spine whose destructor alone overflows the
  // stack.
  std::string Source = "x = 1";
  for (int I = 0; I != 100000; ++I)
    Source += "+1";
  Source += ";";
  EXPECT_NE(parseError(Source).find("nesting exceeds"), std::string::npos);
}

TEST(DepthGuardTest, ParserSurvivesDeepStatementNesting) {
  std::string Source;
  for (int I = 0; I != 3000; ++I)
    Source += "if 1\n";
  Source += "x = 1;\n";
  for (int I = 0; I != 3000; ++I)
    Source += "end\n";
  EXPECT_NE(parseError(Source).find("nesting exceeds"), std::string::npos);
}

TEST(DepthGuardTest, ShallowNestingStillParses) {
  std::string Source = "x = " + std::string(200, '(') + "1" +
                       std::string(200, ')') + ";";
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(R.Prog.Stmts.size(), 1u);
}

/// A Depth-deep chain of unary minuses over variable \p Name, built
/// programmatically (the parser's own guard stops source-level inputs
/// before they get anywhere near this deep).
ExprPtr deepUnaryChain(const std::string &Name, unsigned Depth) {
  ExprPtr E = std::make_unique<IdentExpr>(Name);
  for (unsigned I = 0; I != Depth; ++I)
    E = std::make_unique<UnaryExpr>(UnaryOp::Minus, std::move(E));
  return E;
}

TEST(DepthGuardTest, PrinterTruncatesPathologicalDepth) {
  ExprPtr E = deepUnaryChain("t", 5000);
  std::string Out = printExpr(*E);
  EXPECT_FALSE(Out.empty()); // returned instead of overflowing the stack
}

TEST(DepthGuardTest, DimCheckerRefusesPathologicalDepth) {
  DiagnosticEngine Diags;
  ParseResult Parsed = parseMatlab("%! m(1) n(1)\n"
                                   "for i=1:m\n for j=1:n\n  t=0;\n end\nend\n",
                                   Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ShapeEnv Env = parseShapeAnnotations(Parsed.Annotations, Diags);
  Env.setShape("t", Dimensionality::scalar());
  auto *Root = cast<ForStmt>(Parsed.Prog.Stmts[0].get());
  std::string Reason;
  std::optional<LoopNest> Nest = buildLoopNest(*Root, Reason);
  ASSERT_TRUE(Nest.has_value()) << Reason;
  PatternDatabase DB;
  registerBuiltinPatterns(DB);
  VectorizerOptions Opts;

  ExprPtr E = deepUnaryChain("t", 3000);
  DimChecker Checker(*Nest, 1, 2, Env, DB, Opts);
  EXPECT_FALSE(Checker.checkExpr(*E).has_value());
  EXPECT_NE(Checker.failureReason().find("depth"), std::string::npos);
}

TEST(DepthGuardTest, EvaluatorRefusesPathologicalDepth) {
  Program P;
  P.Stmts.push_back(std::make_unique<AssignStmt>(
      std::make_unique<IdentExpr>("x"), deepUnaryChain("y", 2500)));
  Interpreter Interp;
  Interp.setVariable("y", Value(1, 1, 1.0));
  EXPECT_FALSE(Interp.run(P));
  EXPECT_NE(Interp.errorMessage().find("depth"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Kernel deadline polling
//===----------------------------------------------------------------------===//

TEST(KernelPollTest, ForcedDeadlineInterruptsLongMatmul) {
  // 200x200 matmul accumulates ~40k multiply-adds per result column —
  // past the poll grain — so an armed KernelPoll/DeadlineExpire rule
  // fires inside the kernel, deterministically, on the first chunk.
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("a = rand(200,200);\nb = a*a;\n", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();

  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::KernelPoll, FaultKind::DeadlineExpire,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  FaultContext Ctx(&Plan, 0);
  FaultScope Scope(&Ctx);
  Interpreter Interp;
  EXPECT_FALSE(Interp.run(R.Prog));
  EXPECT_EQ(Interp.interruptKind(), Interpreter::InterruptKind::Deadline);
}

TEST(KernelPollTest, DisarmedRunStillSucceeds) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("a = rand(200,200);\nb = a*a;\n", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  Interpreter Interp;
  EXPECT_TRUE(Interp.run(R.Prog)) << Interp.errorMessage();
}

//===----------------------------------------------------------------------===//
// ThreadPool: shutdown race + exception containment
//===----------------------------------------------------------------------===//

TEST(ThreadPoolResilienceTest, ConcurrentShutdownIsSafeAndRunsEverything) {
  for (int Round = 0; Round != 20; ++Round) {
    ThreadPool Pool(4, 128);
    std::atomic<int> Ran{0};
    for (int I = 0; I != 100; ++I)
      ASSERT_TRUE(Pool.submit([&Ran] { ++Ran; }));
    std::thread A([&Pool] { Pool.shutdown(); });
    std::thread B([&Pool] { Pool.shutdown(); });
    A.join();
    B.join();
    // Queued work drains before the workers exit: every task ran exactly
    // once even with two racing shutdowns.
    EXPECT_EQ(Ran.load(), 100);
  }
}

TEST(ThreadPoolResilienceTest, ThrowingTaskDoesNotKillWorker) {
  ThreadPool Pool(1, 8);
  ASSERT_TRUE(Pool.submit([] { throw std::runtime_error("boom"); }));
  std::atomic<bool> Ran{false};
  ASSERT_TRUE(Pool.submit([&Ran] { Ran = true; }));
  Pool.drain();
  EXPECT_TRUE(Ran.load());
  EXPECT_EQ(Pool.taskFaults(), 1u);
}

//===----------------------------------------------------------------------===//
// Service: degradation, retry, breaker, governor
//===----------------------------------------------------------------------===//

std::string validScript() {
  return "n = 8; x = rand(1,n); y = zeros(1,n);\n"
         "%! x(1,*) y(1,*) n(1)\n"
         "for i=1:n\n  y(i) = 2*x(i);\nend\n";
}

JobSpec makeSpec(std::string Name, std::string Source) {
  JobSpec Spec;
  Spec.Name = std::move(Name);
  Spec.Source = std::move(Source);
  return Spec;
}

TEST(ServiceResilienceTest, PersistentFaultDegradesToVerbatimPassthrough) {
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::WorkerPickup, FaultKind::Exception,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  ServiceConfig Config;
  Config.Workers = 2;
  Config.Faults = &Plan;
  Config.Resilience.Retry.InitialBackoff = std::chrono::milliseconds(1);
  VectorizationService Service(Config);

  std::string Source = validScript();
  JobResult R = Service.submit(makeSpec("degrade", Source)).get();
  EXPECT_EQ(R.Status, JobStatus::Degraded);
  EXPECT_EQ(R.VectorizedSource, Source); // byte-exact passthrough
  EXPECT_EQ(R.Class, ErrorClass::Internal);
  EXPECT_EQ(R.Attempts, Config.Resilience.Retry.MaxAttempts);
  EXPECT_EQ(R.Message.rfind("degraded: ", 0), 0u) << R.Message;
  EXPECT_EQ(Service.metrics().JobsDegraded.load(), 1u);
  EXPECT_EQ(Service.metrics().Retries.load(), 2u);
}

TEST(ServiceResilienceTest, DegradationCanBeDisabled) {
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::WorkerPickup, FaultKind::Exception,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  ServiceConfig Config;
  Config.Workers = 1;
  Config.Faults = &Plan;
  Config.Resilience.DegradeOnExhaustion = false;
  Config.Resilience.Retry.MaxAttempts = 1;
  VectorizationService Service(Config);
  JobResult R = Service.submit(makeSpec("fail", validScript())).get();
  EXPECT_EQ(R.Status, JobStatus::Failed);
  EXPECT_EQ(R.Class, ErrorClass::Internal);
  EXPECT_TRUE(R.VectorizedSource.empty());
}

TEST(ServiceResilienceTest, TransientFaultIsRetriedToSuccess) {
  // Find a plan seed whose schedule fires the WorkerPickup rule on the
  // job's first attempt but not its second (the schedule is a pure
  // function of (seed, salt), so we can probe it up front with the same
  // salts the service derives: cache key + attempt number).
  JobSpec Probe = makeSpec("retry", validScript());
  uint64_t Key = cacheKeyFor(Probe);
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::WorkerPickup, FaultKind::Exception,
                        /*Period=*/2, /*MaxFires=*/0, /*LatencyMicros=*/0});
  auto attemptFires = [&](uint64_t Seed, unsigned Attempt) -> bool {
    Plan.Seed = Seed;
    // Deduced return must be bool, not vector<bool>'s proxy reference
    // into the destroyed temporary.
    std::vector<bool> Fired =
        firePattern(Plan, Key + Attempt, FaultSite::WorkerPickup, 1);
    return Fired[0];
  };
  uint64_t Seed = 0;
  for (uint64_t S = 1; S != 256; ++S) {
    if (attemptFires(S, 1) && !attemptFires(S, 2)) {
      Seed = S;
      break;
    }
  }
  ASSERT_NE(Seed, 0u) << "no seed fires attempt 1 only; hash is degenerate";
  Plan.Seed = Seed;

  ServiceConfig Config;
  Config.Workers = 1;
  Config.Faults = &Plan;
  Config.Resilience.Retry.InitialBackoff = std::chrono::milliseconds(1);
  VectorizationService Service(Config);
  JobResult R = Service.submit(std::move(Probe)).get();
  EXPECT_TRUE(R.succeeded()) << R.Message;
  EXPECT_EQ(R.Attempts, 2u);
  EXPECT_EQ(Service.metrics().Retries.load(), 1u);
}

TEST(ServiceResilienceTest, OpenBreakerShedsSubsequentJobs) {
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::WorkerPickup, FaultKind::Exception,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  ServiceConfig Config;
  Config.Workers = 1; // serialize so the breaker's state is deterministic
  Config.CacheCapacity = 0;
  Config.Faults = &Plan;
  Config.Resilience.Retry.MaxAttempts = 1;
  Config.Resilience.Breaker.FailureThreshold = 2;
  Config.Resilience.Breaker.Cooldown = std::chrono::seconds(30);
  VectorizationService Service(Config);

  for (int I = 0; I != 5; ++I) {
    JobResult R =
        Service.submit(makeSpec("job" + std::to_string(I), validScript()))
            .get();
    EXPECT_EQ(R.Status, JobStatus::Degraded);
    if (I >= 2)
      EXPECT_NE(R.Message.find("circuit breaker open"), std::string::npos);
  }
  EXPECT_EQ(Service.metrics().BreakerShed.load(), 3u);
  EXPECT_EQ(Service.metrics().JobsDegraded.load(), 5u);
}

TEST(ServiceResilienceTest, MemoryBudgetClassifiesAsResource) {
  ServiceConfig Config;
  Config.Workers = 1;
  Config.Resilience.MaxJobBytes = 1 << 20; // 1 MiB
  VectorizationService Service(Config);
  // 600x600 doubles = ~2.9 MiB allocated during validation.
  JobResult R =
      Service.submit(makeSpec("hog", "a = zeros(600,600);\n")).get();
  EXPECT_EQ(R.Status, JobStatus::Degraded);
  EXPECT_EQ(R.Class, ErrorClass::Resource);
  EXPECT_EQ(R.Attempts, 1u); // Resource failures are deterministic: no retry
  EXPECT_NE(R.Message.find("memory budget exceeded"), std::string::npos);
  EXPECT_EQ(R.VectorizedSource, "a = zeros(600,600);\n");
}

TEST(ServiceResilienceTest, ForcedDeadlineBecomesTimedOut) {
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::WorkerPickup, FaultKind::DeadlineExpire,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  ServiceConfig Config;
  Config.Workers = 1;
  Config.Faults = &Plan;
  VectorizationService Service(Config);
  JobResult R = Service.submit(makeSpec("late", validScript())).get();
  EXPECT_EQ(R.Status, JobStatus::TimedOut);
  EXPECT_EQ(R.Class, ErrorClass::Deadline);
  EXPECT_EQ(R.Attempts, 1u); // deadlines are not retried
}

TEST(ServiceResilienceTest, CacheInsertFaultDoesNotFailTheJob) {
  FaultPlan Plan;
  Plan.Rules.push_back({FaultSite::CacheInsert, FaultKind::Exception,
                        /*Period=*/1, /*MaxFires=*/0, /*LatencyMicros=*/0});
  ServiceConfig Config;
  Config.Workers = 1;
  Config.Faults = &Plan;
  VectorizationService Service(Config);
  JobResult R = Service.submit(makeSpec("c", validScript())).get();
  EXPECT_TRUE(R.succeeded()) << R.Message;
  // The insert was suppressed, so a resubmission is a cache miss.
  JobResult R2 = Service.submit(makeSpec("c", validScript())).get();
  EXPECT_TRUE(R2.succeeded());
  EXPECT_FALSE(R2.CacheHit);
}

TEST(ServiceResilienceTest, DestructionResolvesEveryFuture) {
  std::vector<std::future<JobResult>> Futures;
  {
    ServiceConfig Config;
    Config.Workers = 2;
    VectorizationService Service(Config);
    for (int I = 0; I != 20; ++I)
      Futures.push_back(
          Service.submit(makeSpec("f" + std::to_string(I), validScript())));
  }
  for (std::future<JobResult> &F : Futures) {
    // get() must not throw broken_promise or hang: destruction drains the
    // queue, so every job reached a terminal status.
    JobResult R = F.get();
    EXPECT_STRNE(jobStatusName(R.Status), "unknown");
  }
}

//===----------------------------------------------------------------------===//
// Soak: generated programs under a chaos plan, fuzzer oracle as judge
//===----------------------------------------------------------------------===//

TEST(ResilienceSoakTest, ChaosPlanNeverCorruptsResults) {
  // Arm every site with every kind except DeadlineExpire (which makes
  // TimedOut an expected outcome and would drown the oracle's hang
  // detection). The invariant under chaos: injection may slow, fail, or
  // degrade a job, but it must never produce a *different wrong answer*
  // than a clean run — no new mismatch/crash/trun findings.
  FaultPlan Plan;
  Plan.Seed = 2026;
  for (unsigned S = 0; S != NumFaultSites; ++S)
    for (FaultKind Kind :
         {FaultKind::BadAlloc, FaultKind::Exception, FaultKind::Latency})
      Plan.Rules.push_back({static_cast<FaultSite>(S), Kind, /*Period=*/3,
                            /*MaxFires=*/2, /*LatencyMicros=*/100});

  std::vector<JobSpec> Specs;
  for (uint64_t I = 0; I != 120; ++I) {
    fuzz::GenProgram P = fuzz::Generator(1000 + I).next();
    JobSpec Spec = makeSpec("soak" + std::to_string(I), std::move(P.Source));
    Spec.MaxSteps = 2000000;
    Specs.push_back(std::move(Spec));
  }

  auto runAll = [&](const FaultPlan *Faults) {
    ServiceConfig Config;
    Config.Workers = 4;
    Config.Faults = Faults;
    Config.Resilience.Retry.InitialBackoff = std::chrono::milliseconds(1);
    VectorizationService Service(Config);
    return Service.runBatch(Specs);
  };
  std::vector<JobResult> Clean = runAll(nullptr);
  std::vector<JobResult> Chaos = runAll(&Plan);
  ASSERT_EQ(Clean.size(), Chaos.size());

  for (size_t I = 0; I != Chaos.size(); ++I) {
    const JobResult &R = Chaos[I];
    if (R.Status == JobStatus::Degraded) {
      EXPECT_EQ(R.VectorizedSource, Specs[I].Source) << R.Name;
      EXPECT_NE(R.Class, ErrorClass::None) << R.Name;
      EXPECT_FALSE(R.Message.empty()) << R.Name;
      continue;
    }
    fuzz::Verdict V = fuzz::Oracle::classifyJob(R);
    if (!V.isFinding())
      continue;
    // A finding under chaos is only acceptable when the clean run
    // produced the same kind of finding for the same program (i.e. it is
    // a pre-existing pipeline defect, not injection-induced corruption).
    fuzz::Verdict CleanV = fuzz::Oracle::classifyJob(Clean[I]);
    EXPECT_TRUE(CleanV.isFinding() && CleanV.F.Kind == V.F.Kind)
        << R.Name << ": injection-induced " << findingKindName(V.F.Kind)
        << ": " << V.F.Message;
  }
}

} // namespace
