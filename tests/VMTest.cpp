//===- VMTest.cpp - Bytecode tier tests -----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mvec::vm contract, pinned: golden disassembly for representative
/// lowerings (superinstructions included), deterministic compilation
/// (same source, same bytes, same content key), serialize/deserialize
/// fidelity with corrupt inputs rejected, byte-identical engine parity
/// against the tree-walker (values, errors, interrupts, governor
/// charges), and the CodeCache's LRU + disk-store tiers.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "resilience/ResourceGovernor.h"
#include "service/ResultStore.h"
#include "vm/CodeCache.h"
#include "vm/Compiler.h"
#include "vm/Serialize.h"
#include "vm/VM.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>

using namespace mvec;

namespace {

vm::CompiledProgram compile(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return vm::compileProgram(R.Prog, Source);
}

/// Strips trailing blanks per line so golden pins stay readable (the
/// disassembler pads the mnemonic column even when no operands follow).
std::string stripTrailing(const std::string &Text) {
  std::string Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t E = Line.find_last_not_of(' ');
    Out += E == std::string::npos ? std::string() : Line.substr(0, E + 1);
    Out += '\n';
  }
  return Out;
}

void expectDisasm(const std::string &Source, const std::string &Golden) {
  EXPECT_EQ(stripTrailing(vm::disassemble(compile(Source))), Golden)
      << "for source:\n"
      << Source;
}

//===----------------------------------------------------------------------===//
// Golden disassembly
//===----------------------------------------------------------------------===//

TEST(VMDisasm, ArithmeticFusesMulAdd) {
  // The constants fold into the FusedMulAdd and the store fuses too
  // (flags::StoreToSlot): one instruction for the whole statement.
  expectDisasm("x = 1 + 2 * 3;\n",
               "; regs=1 consts=3 strings=0 vars=1 loops=0 instrs=3\n"
               "   0  Step          @1:1\n"
               "   1  FusedMulAdd   v0:x, c1=2, c2=3, c0=1 "
               "[add,prod-right,store] @1:7 /@1:11\n"
               "   2  Halt\n");
}

TEST(VMDisasm, ForLoop) {
  // Loops are bottom-tested (ForNext at the bottom jumps back to the
  // body), the definedness analysis folds s and i straight into the
  // body's Binary, and the store fuses into it: the two-instruction
  // iteration (Step, Binary-with-store, ForNext aside) is the whole
  // point of the exercise.
  expectDisasm("s = 0;\nfor i = 1:10\n  s = s + i;\nend\n",
               "; regs=2 consts=3 strings=0 vars=2 loops=1 instrs=10\n"
               "   0  Step          @1:1\n"
               "   1  StoreVar      v0:s, c0=0 @1:1\n"
               "   2  Step          @2:1\n"
               "   3  MakeRange     r0, c1=1, one, c2=10 @2:10\n"
               "   4  ForPrep       r0, f0:i\n"
               "   5  Jump          ->8\n"
               "   6  Step          @3:3\n"
               "   7  Binary        v0:s, v0:s, v1:i [Add,store] @3:9\n"
               "   8  ForNext       r0, f0:i, ->6\n"
               "   9  Halt\n");
}

TEST(VMDisasm, FusedKernels) {
  // Elementwise a.*b+c fuses with the dotmul flag; M*V'-1 fuses the
  // subtraction and keeps the transpose explicit (MulTransB only fires
  // when the product itself is the A*B' shape).
  expectDisasm("y = a .* b + c;\nz = M * V' - 1;\n",
               "; regs=4 consts=1 strings=0 vars=7 loops=0 instrs=11\n"
               "   0  Step          @1:1\n"
               "   1  LoadIdent     r1, v0:a @1:5\n"
               "   2  LoadIdent     r2, v1:b @1:10\n"
               "   3  LoadIdent     r3, v2:c @1:14\n"
               "   4  FusedMulAdd   v3:y, r1, r2, r3 "
               "[add,prod-left,dotmul,store] @1:12 /@1:7\n"
               "   5  Step          @2:1\n"
               "   6  LoadIdent     r1, v4:M @2:5\n"
               "   7  LoadIdent     r3, v5:V @2:9\n"
               "   8  Transpose     r2, r3\n"
               "   9  FusedMulAdd   v6:z, r1, r2, c0=1 [sub,prod-left,store] "
               "@2:12 /@2:7\n"
               "  10  Halt\n");
}

TEST(VMDisasm, MulTransB) {
  std::string Text = vm::disassemble(compile("C = A * B';\n"));
  EXPECT_NE(Text.find("MulTransB"), std::string::npos) << Text;
}

TEST(VMDisasm, CallsCarryArgPoolDepth) {
  // The undefined-at-compile-time identifier dispatches through
  // TestDefined: the defined path indexes, the undefined path calls the
  // builtin. Nested call arguments carry their ArgPool retention depth.
  // Constants fold into the IndexRead2 paths (a subscript read is a
  // side-effect-free consumer) but NOT into CallBuiltin argument slots,
  // which still materialize registers for the ArgPool.
  expectDisasm(
      "x = max(1, min(2, 3));\ndisp(x);\n",
      "; regs=5 consts=3 strings=3 vars=4 loops=0 instrs=31\n"
      "   0  Step          @1:1\n"
      "   1  TestDefined   v0:max, ->11\n"
      "   2  TestDefined   v1:min, ->5\n"
      "   3  IndexRead2    r1, v1:min, c1=2, c2=3 @1:15\n"
      "   4  Jump          ->9\n"
      "   5  CheckCallable v1:min, s0=\"undefined function or variable "
      "'min'\" @1:15\n"
      "   6  LoadConst     r2, c1=2\n"
      "   7  LoadConst     r3, c2=3\n"
      "   8  CallBuiltin   r1, v1:min, r2, #2 @1:15\n"
      "   9  IndexRead2    r0, v0:max, c0=1, r1 @1:8\n"
      "  10  Jump          ->21\n"
      "  11  CheckCallable v0:max, s1=\"undefined function or variable "
      "'max'\" @1:8\n"
      "  12  LoadConst     r1, c0=1\n"
      "  13  TestDefined   v1:min, ->16\n"
      "  14  IndexRead2    r2, v1:min, c1=2, c2=3 @1:15\n"
      "  15  Jump          ->20\n"
      "  16  CheckCallable v1:min, s0=\"undefined function or variable "
      "'min'\" @1:15\n"
      "  17  LoadConst     r3, c1=2\n"
      "  18  LoadConst     r4, c2=3\n"
      "  19  CallBuiltin   r2, v1:min, r3, #2 [depth=1] @1:15\n"
      "  20  CallBuiltin   r0, v0:max, r1, #2 @1:8\n"
      "  21  StoreVar      v2:x, r0 @1:1\n"
      "  22  Step          @2:1\n"
      "  23  TestDefined   v3:disp, ->26\n"
      "  24  IndexRead1    r0, v3:disp, v2:x @2:5\n"
      "  25  Jump          ->29\n"
      "  26  CheckCallable v3:disp, s2=\"undefined function or variable "
      "'disp'\" @2:5\n"
      "  27  LoadIdent     r1, v2:x @2:6\n"
      "  28  CallBuiltin   r0, v3:disp, r1, #1 @2:5\n"
      "  29  Drop          r0\n"
      "  30  Halt\n");
}

TEST(VMDisasm, IndexingFeatures) {
  std::string Text = vm::disassemble(compile(
      "v = [1 2 3];\nv(2) = v(end) + 1;\nw = v(:);\nu = v(1, end);\n"));
  // 'end' in a 1-d subscript reads numel; in the column position, cols.
  EXPECT_NE(Text.find("LoadExtent    r2, v0:v [numel]"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("LoadExtent    r1, v0:v [cols]"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("IndexReadAll  r0, v0:v"), std::string::npos) << Text;
  EXPECT_NE(Text.find("DefineRef     v0:v"), std::string::npos) << Text;
  // The write's constant subscript folds straight into the instruction.
  EXPECT_NE(Text.find("IndexWrite1   v0:v, c1=2, r0"), std::string::npos)
      << Text;
  // The undefined-base path must still report the walker's exact error.
  EXPECT_NE(
      Text.find("Fail          s1=\"':' and 'end' are not valid function "
                "arguments\""),
      std::string::npos)
      << Text;
}

//===----------------------------------------------------------------------===//
// Compile determinism and the content key
//===----------------------------------------------------------------------===//

TEST(VMCompile, DeterministicBytesAndKey) {
  const std::string Source =
      "A = rand(4, 4);\nB = A * A';\nfor i = 1:3\n  B = B + i;\nend\n";
  vm::CompiledProgram P1 = compile(Source);
  vm::CompiledProgram P2 = compile(Source);
  std::string B1 = vm::serializeProgram(P1);
  std::string B2 = vm::serializeProgram(P2);
  EXPECT_EQ(B1, B2) << "same source must lower to identical bytes";
  EXPECT_EQ(P1.SourceHash, P2.SourceHash);
  // The content key is a pure function of the source text; a different
  // program gets a different key.
  EXPECT_EQ(vm::codeKeyFor(Source), vm::codeKeyFor(Source));
  EXPECT_NE(vm::codeKeyFor(Source), vm::codeKeyFor(Source + " "));
}

TEST(VMCompile, EveryParseCompilesValid) {
  const char *Sources[] = {
      "x = 1;\n",
      "y = max(:, 1);\n",        // lowers to Fail, still valid bytecode
      "A = ones(2,2);\nx = A(1, 1, 1);\n",
      "for i = 1:3\n  disp(i);\nend\n",
  };
  for (const char *S : Sources)
    EXPECT_EQ(vm::validateProgram(compile(S)), "") << S;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(VMSerialize, RoundTripIsByteExact) {
  vm::CompiledProgram P = compile(
      "s = 'hi';\nv = [1 2 3];\nfor i = 1:numel(v)\n  v(i) = v(i) * 2;\n"
      "end\ndisp(v);\n");
  std::string Bytes = vm::serializeProgram(P);
  std::optional<vm::CompiledProgram> Back = vm::deserializeProgram(Bytes);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(vm::serializeProgram(*Back), Bytes);
  EXPECT_EQ(Back->SourceHash, P.SourceHash);
  EXPECT_EQ(vm::validateProgram(*Back), "");
}

TEST(VMSerialize, MalformedBytesRejected) {
  std::string Bytes = vm::serializeProgram(compile("x = 1 + 2;\n"));
  EXPECT_TRUE(vm::deserializeProgram(Bytes).has_value());

  std::string BadMagic = Bytes;
  BadMagic[0] ^= 0x40;
  EXPECT_FALSE(vm::deserializeProgram(BadMagic).has_value());

  EXPECT_FALSE(
      vm::deserializeProgram(Bytes.substr(0, Bytes.size() / 2)).has_value());
  EXPECT_FALSE(vm::deserializeProgram(Bytes + "x").has_value());
  EXPECT_FALSE(vm::deserializeProgram("").has_value());

  // A flipped operand that lands out of range must fail validation, not
  // execute: corrupt every byte position in turn and demand that any
  // accepted variant still validates structurally.
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Mut = Bytes;
    Mut[I] ^= 0x7f;
    std::optional<vm::CompiledProgram> Got = vm::deserializeProgram(Mut);
    if (Got.has_value()) {
      EXPECT_EQ(vm::validateProgram(*Got), "") << "flipped byte " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// Engine parity (tree-walker vs VM, byte-identical)
//===----------------------------------------------------------------------===//

TEST(VMParity, Battery) {
  // Every case runs under both engines via engineDiffRun, which demands
  // identical failure state, error message + location, interrupt kind,
  // step count, printed output (byte-for-byte) and workspace (tol 0).
  const char *Cases[] = {
      "x = 1 + 2 * 3;\n",
      "v = 1:10;\ns = sum(v);\n",
      "v = 10:-2:1;\n",
      "s = 0;\nfor i = 1:100\n  s = s + i * i;\nend\n",
      "a = zeros(1, 20);\nfor i = 1:20\n  a(i) = i * 2;\nend\n",
      "x = 0;\nwhile x < 10\n  x = x + 3;\nend\n",
      "x = 5;\nif x > 10\n  y = 1;\nelseif x > 3\n  y = 2;\nelse\n  y = 3;\n"
      "end\n",
      "s = 0;\nfor i = 1:10\n  if i == 3\n    continue;\n  end\n"
      "  if i == 7\n    break;\n  end\n  s = s + i;\nend\n",
      "A = [1 2 3; 4 5 6];\nB = [A; A];\nC = [A, A];\n",
      "v = zeros(1, 5);\nv(2) = 7;\nv(end) = 9;\nw = v(2:3);\nz = v(:);\n",
      "A = ones(3, 3);\nA(2, 2) = 5;\nx = A(2, :);\ny = A(:, 1);\n"
      "z = A(end, end);\n",
      "a = 1; b = 0;\nc = a && b;\nd = a || b;\ne = a & b;\nf = ~a;\n",
      "A = [1 2; 3 4];\nB = A';\n",
      "a = [1 2 3]; b = [4 5 6]; c = [7 8 9];\ny = a .* b + c;\n"
      "z = c - a .* b;\n",
      "A = [1 2; 3 4];\nB = [5 6; 7 8];\nC = A * B';\n",
      "x = max(3, 4);\ny = min([1 5 2]);\nz = sqrt(16);\nw = abs(-3);\n",
      "disp(42);\nfprintf('%d\\n', 7);\ndisp([1 2 3]);\n",
      "r = rand(2, 2);\ns = rand();\n",
      "s = 'hello';\nn = length(s);\n",
      "x = pi;\ny = 2 * pi;\n",
      "x = max(min(3, 5), abs(-2));\n",
      "y = nosuchvar + 1;\n",
      "y = nosuchfn(3);\n",
      "y = max(:, 1);\n",
      "A = ones(2,2);\nx = A(1, 1, 1);\n",
      "A = ones(2,2);\nA(1, 1, 1) = 5;\n",
      "v = [1 2 3];\nx = v(10);\n",
      "s = 0;\nfor i = 1:5\n  s = s + i;\n  if i == 3\n"
      "    q = undefinedvar;\n  end\nend\n",
      "e = [];\nn = numel(e);\n",
      "s = 0;\nfor i = 1:1000\n  s = s + i;\nend\n",
      "v = [1 2 3];\nx = max(v(end), 2);\n",
      "A = [1 2 3; 4 5 6];\ns = 0;\nfor c = A\n  s = s + sum(c);\nend\n",
      "s = 0;\nfor i = []\n  s = s + 1;\nend\n",
      "x = 0;\nn = 0;\nwhile x < 10 && n < 100\n  x = x + 1;\n  n = n + 2;\n"
      "end\n",
      "x = -(-5);\ny = ~~1;\nz = +7;\n",
      "x = 2 ^ 10;\ny = [1 2 3] .^ 2;\n",
      "x = 10 / 4;\ny = [4 6] ./ [2 3];\n",
      "A = [1 5 3];\nB = [2 4 3];\nm = A > B;\ne = A == B;\n",
      "s = 0;\nfor i = 1:5\n  for j = 1:5\n    s = s + i * j;\n  end\nend\n",
      "v = [10 20 30];\nidx = [1 3];\nw = v(idx);\n",
      "v = [1 5 2 8];\nm = v(v > 3);\n",
      "v = [1 2 3 4 5];\nx = v(end - 1);\ny = v(2:end);\n",
      "x = 1 < 2;\n",
      "A = [1 2; 3];\n",
      "s = ['ab' 'cd'];\n",
      "A = ones(2,2) * 3;\nB = A + 1;\n",
      "v = 0:0.5:2;\n",
      "x = ((1 + 2) * (3 + 4)) - ((5 - 6) / (7 + 8));\n",
      "for i = 1:3\n  i = i * 10;\nend\n",
      "x = mod(10, 3);\ny = rem(-10, 3);\n",
      "for i = 1:3\n  disp(i);\nend\n",
  };
  for (const char *Source : Cases) {
    DiffOutcome Out = engineDiffRun(Source);
    EXPECT_TRUE(Out.agreed()) << "engines diverge on:\n"
                              << Source << "\n"
                              << Out.Message;
  }
}

TEST(VMParity, StepLimitInterrupt) {
  const std::string Source = "s = 0;\nfor i = 1:100000\n  s = s + i;\nend\n";
  RunLimits Limits;
  Limits.MaxSteps = 500;
  // Step-limit interrupts are deterministic, so engineDiffRun compares
  // them exactly (kind and step count).
  EXPECT_TRUE(engineDiffRun(Source, Limits).agreed());

  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  ASSERT_FALSE(Diags.hasErrors());

  Interpreter Ast;
  Ast.setStepLimit(500);
  EXPECT_FALSE(Ast.run(R.Prog));
  EXPECT_EQ(Ast.interruptKind(), Interpreter::InterruptKind::StepLimit);

  Interpreter Vm;
  Vm.setStepLimit(500);
  vm::CompiledProgram CP = vm::compileProgram(R.Prog, Source);
  EXPECT_FALSE(vm::execute(CP, Vm));
  EXPECT_EQ(Vm.interruptKind(), Interpreter::InterruptKind::StepLimit);

  EXPECT_EQ(Ast.stepsExecuted(), Vm.stepsExecuted());
  EXPECT_EQ(Ast.errorMessage(), Vm.errorMessage());
}

TEST(VMParity, DeadlineInterrupt) {
  const std::string Source = "s = 0;\nwhile 1 > 0\n  s = s + 1;\nend\n";
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  auto Past = std::chrono::steady_clock::now() - std::chrono::seconds(1);

  Interpreter Ast;
  Ast.setDeadline(Past);
  EXPECT_FALSE(Ast.run(R.Prog));
  EXPECT_EQ(Ast.interruptKind(), Interpreter::InterruptKind::Deadline);

  Interpreter Vm;
  Vm.setDeadline(Past);
  vm::CompiledProgram CP = vm::compileProgram(R.Prog, Source);
  EXPECT_FALSE(vm::execute(CP, Vm));
  EXPECT_EQ(Vm.interruptKind(), Interpreter::InterruptKind::Deadline);
  EXPECT_EQ(Ast.errorMessage(), Vm.errorMessage());
}

TEST(VMParity, BodilessLoopsHonorDeadline) {
  // Neither body ever reaches a Step, so only the back-edge poll can
  // interrupt these; both engines used to spin past any deadline.
  for (const char *Source : {"while 1 > 0\nend\n", "for i = 1:2000000\nend\n"}) {
    DiagnosticEngine Diags;
    ParseResult R = parseMatlab(Source, Diags);
    ASSERT_FALSE(Diags.hasErrors());
    auto Past = std::chrono::steady_clock::now() - std::chrono::seconds(1);

    Interpreter Ast;
    Ast.setDeadline(Past);
    EXPECT_FALSE(Ast.run(R.Prog)) << Source;
    EXPECT_EQ(Ast.interruptKind(), Interpreter::InterruptKind::Deadline);

    Interpreter Vm;
    Vm.setDeadline(Past);
    vm::CompiledProgram CP = vm::compileProgram(R.Prog, Source);
    EXPECT_FALSE(vm::execute(CP, Vm)) << Source;
    EXPECT_EQ(Vm.interruptKind(), Interpreter::InterruptKind::Deadline);
  }
}

TEST(VMParity, CancelInterrupt) {
  const std::string Source = "s = 0;\nwhile 1 > 0\n  s = s + 1;\nend\n";
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::atomic<bool> Cancel{true};

  Interpreter Ast;
  Ast.setCancelFlag(&Cancel);
  EXPECT_FALSE(Ast.run(R.Prog));
  EXPECT_EQ(Ast.interruptKind(), Interpreter::InterruptKind::Cancelled);

  Interpreter Vm;
  Vm.setCancelFlag(&Cancel);
  vm::CompiledProgram CP = vm::compileProgram(R.Prog, Source);
  EXPECT_FALSE(vm::execute(CP, Vm));
  EXPECT_EQ(Vm.interruptKind(), Interpreter::InterruptKind::Cancelled);
  EXPECT_EQ(Ast.errorMessage(), Vm.errorMessage());
}

TEST(VMParity, GovernorChargesIdentically) {
  const char *Sources[] = {
      "A = zeros(40, 40);\nB = A + 1;\nC = B * B;\n",
      "v = [];\nfor i = 1:50\n  v = [v, i];\nend\ns = sum(v);\n",
      "x = rand(8, 8);\ny = x';\nz = x .* y + 3;\n",
  };
  for (const char *Source : Sources) {
    DiagnosticEngine D1, D2;
    ParseResult P1 = parseMatlab(Source, D1);
    ParseResult P2 = parseMatlab(Source, D2);
    ASSERT_FALSE(D1.hasErrors());

    // Account-only governors (cap 0 never throws) must see the same
    // cumulative allocation stream from both engines.
    ResourceGovernor GA(0), GV(0);
    {
      GovernorScope Scope(&GA);
      Interpreter I;
      I.seedRandom(7);
      EXPECT_TRUE(I.run(P1.Prog));
    }
    {
      GovernorScope Scope(&GV);
      Interpreter I;
      I.seedRandom(7);
      vm::CompiledProgram CP = vm::compileProgram(P2.Prog, Source);
      EXPECT_TRUE(vm::execute(CP, I));
    }
    EXPECT_EQ(GA.usedBytes(), GV.usedBytes()) << Source;
    EXPECT_GT(GA.usedBytes(), 0u) << Source;
  }

  // And under a budget that cannot hold the workload, both engines abort
  // with the same ResourceExhausted unwind.
  const std::string Big = "A = zeros(200, 200);\n";
  DiagnosticEngine D1, D2;
  ParseResult P1 = parseMatlab(Big, D1);
  ParseResult P2 = parseMatlab(Big, D2);
  {
    ResourceGovernor G(1024);
    GovernorScope Scope(&G);
    Interpreter I;
    EXPECT_THROW(I.run(P1.Prog), ResourceExhausted);
  }
  {
    ResourceGovernor G(1024);
    GovernorScope Scope(&G);
    Interpreter I;
    vm::CompiledProgram CP = vm::compileProgram(P2.Prog, Big);
    EXPECT_THROW(vm::execute(CP, I), ResourceExhausted);
  }
}

//===----------------------------------------------------------------------===//
// CodeCache
//===----------------------------------------------------------------------===//

ParseResult parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return R;
}

/// Minimal in-process ResultStore so CodeCache's disk tier is testable
/// without a daemon DiskStore.
class MapStore : public ResultStore {
public:
  std::optional<JobResult> load(uint64_t Key) override {
    auto It = Entries.find(Key);
    if (It == Entries.end())
      return std::nullopt;
    ++Loads;
    return It->second;
  }
  void store(uint64_t Key, const JobResult &Result) override {
    Entries[Key] = Result;
    ++Stores;
  }

  std::map<uint64_t, JobResult> Entries;
  unsigned Loads = 0;
  unsigned Stores = 0;
};

TEST(VMCodeCache, HitsShareOneCompilation) {
  const std::string Source = "x = 1 + 2;\n";
  ParseResult R = parseOk(Source);
  vm::CodeCache Cache(8);
  auto A = Cache.obtain(Source, R.Prog);
  auto B = Cache.obtain(Source, R.Prog);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A.get(), B.get()) << "second obtain must share, not recompile";
  EXPECT_EQ(Cache.compiles(), 1u);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(VMCodeCache, LRUEviction) {
  const std::string S1 = "x = 1;\n", S2 = "x = 2;\n", S3 = "x = 3;\n";
  ParseResult R1 = parseOk(S1), R2 = parseOk(S2), R3 = parseOk(S3);
  vm::CodeCache Cache(2);
  Cache.obtain(S1, R1.Prog);
  Cache.obtain(S2, R2.Prog);
  EXPECT_EQ(Cache.size(), 2u);
  Cache.obtain(S3, R3.Prog); // evicts S1 (least recently used)
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.compiles(), 3u);
  Cache.obtain(S2, R2.Prog); // still resident
  EXPECT_EQ(Cache.compiles(), 3u);
  Cache.obtain(S1, R1.Prog); // evicted: compiles again
  EXPECT_EQ(Cache.compiles(), 4u);
}

TEST(VMCodeCache, DiskRoundTripSurvivesRestart) {
  const std::string Source = "v = 1:5;\ns = sum(v);\n";
  ParseResult R = parseOk(Source);
  MapStore Store;
  {
    vm::CodeCache Warm(8, &Store);
    Warm.obtain(Source, R.Prog);
    EXPECT_EQ(Warm.compiles(), 1u);
    EXPECT_EQ(Store.Stores, 1u);
  }
  // A fresh cache over the same store models a restarted shard: the
  // program loads from the persisted bytes without re-lowering.
  vm::CodeCache Cold(8, &Store);
  auto CP = Cold.obtain(Source, R.Prog);
  ASSERT_TRUE(CP);
  EXPECT_EQ(Cold.compiles(), 0u);
  EXPECT_EQ(Cold.hits(), 1u);
  // And the loaded program actually runs.
  Interpreter I;
  EXPECT_TRUE(vm::execute(*CP, I));
  const Value *S = I.getVariable("s");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->scalarValue(), 15.0);
}

TEST(VMCodeCache, CorruptPersistedEntryIsAMiss) {
  const std::string Source = "x = 42;\n";
  ParseResult R = parseOk(Source);
  MapStore Store;
  {
    vm::CodeCache Warm(8, &Store);
    Warm.obtain(Source, R.Prog);
  }
  ASSERT_EQ(Store.Entries.size(), 1u);
  // Truncate the persisted bytecode in place; the cold cache must treat
  // the entry as a miss and recompile rather than trust it.
  JobResult &Entry = Store.Entries.begin()->second;
  Entry.VectorizedSource = Entry.VectorizedSource.substr(
      0, Entry.VectorizedSource.size() / 2);
  vm::CodeCache Cold(8, &Store);
  auto CP = Cold.obtain(Source, R.Prog);
  ASSERT_TRUE(CP);
  EXPECT_EQ(Cold.compiles(), 1u) << "corrupt entry must recompile";
  Interpreter I;
  EXPECT_TRUE(vm::execute(*CP, I));
  const Value *X = I.getVariable("x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->scalarValue(), 42.0);
}

TEST(VMCodeCache, WrongSourceHashIsAMiss) {
  // A store entry whose bytes deserialize fine but were compiled from
  // different source (hash mismatch after a collisionless key mixup)
  // must also be rejected.
  const std::string SourceA = "x = 1;\n", SourceB = "y = 2;\n";
  ParseResult RA = parseOk(SourceA), RB = parseOk(SourceB);
  MapStore Store;
  {
    vm::CodeCache Warm(8, &Store);
    Warm.obtain(SourceB, RB.Prog);
  }
  ASSERT_EQ(Store.Entries.size(), 1u);
  // Graft B's payload onto A's key.
  JobResult Payload = Store.Entries.begin()->second;
  Store.Entries.clear();
  Store.Entries[vm::codeKeyFor(SourceA)] = Payload;
  vm::CodeCache Cold(8, &Store);
  auto CP = Cold.obtain(SourceA, RA.Prog);
  ASSERT_TRUE(CP);
  EXPECT_EQ(Cold.compiles(), 1u);
  Interpreter I;
  EXPECT_TRUE(vm::execute(*CP, I));
  EXPECT_NE(I.getVariable("x"), nullptr);
  EXPECT_EQ(I.getVariable("y"), nullptr);
}

} // namespace
