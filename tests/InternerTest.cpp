//===- InternerTest.cpp - StringInterner / Symbol unit tests ----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

using namespace mvec;

namespace {

TEST(InternerTest, DeduplicatesContent) {
  Symbol A = internSymbol("alpha");
  Symbol B = internSymbol(std::string("al") + "pha");
  EXPECT_EQ(A, B);
  EXPECT_EQ(&A.str(), &B.str()) << "equal symbols must share storage";
  EXPECT_EQ(A.str(), "alpha");

  Symbol C = internSymbol("beta");
  EXPECT_NE(A, C);
}

TEST(InternerTest, EmptyStringIsTheEmptySymbol) {
  Symbol E = internSymbol("");
  EXPECT_TRUE(E.empty());
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E, Symbol());
  EXPECT_EQ(E.str(), "");
  EXPECT_NE(E, internSymbol("x"));
}

TEST(InternerTest, OrderIsContentOrderNotAddressOrder) {
  // Intern in an order unlikely to match allocation order, then check
  // that Symbol's operator< sorts by spelling. Deterministic iteration
  // of Symbol-keyed sets is what keeps diagnostics byte-stable.
  std::vector<Symbol> Syms;
  for (const char *Name : {"zeta", "alpha", "mu", "beta", "omega", "c"})
    Syms.push_back(internSymbol(Name));
  std::sort(Syms.begin(), Syms.end());
  std::vector<std::string> Sorted;
  for (Symbol S : Syms)
    Sorted.push_back(S.str());
  EXPECT_EQ(Sorted, (std::vector<std::string>{"alpha", "beta", "c", "mu",
                                              "omega", "zeta"}));

  std::set<Symbol> Ordered(Syms.begin(), Syms.end());
  EXPECT_EQ(Ordered.begin()->str(), "alpha");
  EXPECT_EQ(Ordered.rbegin()->str(), "zeta");
}

TEST(InternerTest, SymbolsWorkInUnorderedContainers) {
  std::unordered_set<Symbol> Set;
  Set.insert(internSymbol("i"));
  Set.insert(internSymbol("j"));
  Set.insert(internSymbol("i")); // duplicate content, same symbol
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_TRUE(Set.count(internSymbol("i")));
  EXPECT_FALSE(Set.count(internSymbol("k")));
}

TEST(InternerTest, ConcurrentInterningIsRaceFreeAndConsistent) {
  // Many threads interning overlapping name sets must agree on one
  // canonical Symbol per spelling. Run under TSan in CI.
  constexpr int NumThreads = 8;
  constexpr int NamesPerThread = 200;
  std::vector<std::vector<Symbol>> PerThread(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([T, &PerThread] {
      PerThread[T].reserve(NamesPerThread);
      for (int I = 0; I != NamesPerThread; ++I)
        // Every thread interns the same names, racing on each shard.
        PerThread[T].push_back(internSymbol("var_" + std::to_string(I)));
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I != NamesPerThread; ++I) {
    Symbol Canonical = PerThread[0][I];
    EXPECT_EQ(Canonical.str(), "var_" + std::to_string(I));
    for (int T = 1; T != NumThreads; ++T)
      EXPECT_EQ(PerThread[T][I], Canonical);
  }
}

} // namespace
