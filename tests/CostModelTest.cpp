//===- CostModelTest.cpp - Profitability model tests ------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the cost-profile serialization contract (round-trip, checksum,
/// and the corrupt/truncated/version-skew fallbacks that must never
/// crash), the cache-key fingerprinting, and the end-to-end
/// vectorize-vs-keep-loop decisions the model makes through the pipeline.
///
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "driver/Pipeline.h"
#include "vectorizer/NestCache.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace mvec;

namespace {

/// Writes \p Contents to a unique temp file and returns the path; removed
/// in the destructor.
class TempFile {
public:
  explicit TempFile(const std::string &Contents) {
    static int Counter = 0;
    Path = ::testing::TempDir() + "costmodel_test_" +
           std::to_string(++Counter) + ".json";
    std::ofstream Out(Path);
    Out << Contents;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

cost::CostProfile sampleProfile() {
  cost::CostProfile P = cost::defaultCostProfile();
  P.SimdLevel = "avx2";
  P.Calibrated = true;
  P.LoopIterNs = 12.5;
  P.ScalarOpNs = 33.25;
  P.MatMulNs = 0.125;
  return P;
}

//===----------------------------------------------------------------------===//
// Serialization round-trip
//===----------------------------------------------------------------------===//

TEST(CostProfile, RoundTrip) {
  cost::CostProfile P = sampleProfile();
  std::string Json = cost::serializeCostProfile(P);

  cost::CostProfile Back;
  std::string Error;
  ASSERT_TRUE(cost::parseCostProfile(Json, Back, Error)) << Error;
  EXPECT_EQ(Back.Version, P.Version);
  EXPECT_EQ(Back.SimdLevel, "avx2");
  EXPECT_TRUE(Back.Calibrated);
  EXPECT_DOUBLE_EQ(Back.LoopIterNs, 12.5);
  EXPECT_DOUBLE_EQ(Back.ScalarOpNs, 33.25);
  EXPECT_DOUBLE_EQ(Back.MatMulNs, 0.125);
  EXPECT_DOUBLE_EQ(Back.AssumedTripCount, P.AssumedTripCount);
  EXPECT_EQ(Back.checksum(), P.checksum());
}

TEST(CostProfile, DefaultIsUncalibrated) {
  cost::CostProfile P = cost::defaultCostProfile();
  EXPECT_FALSE(P.Calibrated);
  EXPECT_EQ(P.SimdLevel, "default");
  // The default must itself round-trip (calibrate_costs starts from it).
  cost::CostProfile Back;
  std::string Error;
  EXPECT_TRUE(
      cost::parseCostProfile(cost::serializeCostProfile(P), Back, Error))
      << Error;
}

//===----------------------------------------------------------------------===//
// Malformed-profile fallbacks: reject, diagnose, never crash
//===----------------------------------------------------------------------===//

TEST(CostProfile, RejectsMalformedJson) {
  cost::CostProfile Out;
  std::string Error;
  EXPECT_FALSE(cost::parseCostProfile("not json at all", Out, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(cost::parseCostProfile("", Out, Error));
  EXPECT_FALSE(cost::parseCostProfile("{}", Out, Error));
}

TEST(CostProfile, RejectsTruncated) {
  std::string Json = cost::serializeCostProfile(sampleProfile());
  cost::CostProfile Out;
  std::string Error;
  // Every prefix must be rejected cleanly, whatever field the cut lands in.
  for (size_t Len = 0; Len < Json.size(); Len += 7)
    EXPECT_FALSE(cost::parseCostProfile(Json.substr(0, Len), Out, Error))
        << "prefix of length " << Len << " unexpectedly parsed";
}

TEST(CostProfile, RejectsVersionSkew) {
  std::string Json = cost::serializeCostProfile(sampleProfile());
  size_t At = Json.find("\"mvec_cost_profile\": 1");
  ASSERT_NE(At, std::string::npos);
  Json.replace(At, 22, "\"mvec_cost_profile\": 2");
  cost::CostProfile Out;
  std::string Error;
  EXPECT_FALSE(cost::parseCostProfile(Json, Out, Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(CostProfile, RejectsChecksumMismatch) {
  cost::CostProfile P = sampleProfile();
  std::string Json = cost::serializeCostProfile(P);
  // Tamper with a coefficient without re-checksumming.
  size_t At = Json.find("33.25");
  ASSERT_NE(At, std::string::npos);
  Json.replace(At, 5, "44.25");
  cost::CostProfile Out;
  std::string Error;
  EXPECT_FALSE(cost::parseCostProfile(Json, Out, Error));
  EXPECT_NE(Error.find("checksum"), std::string::npos) << Error;
}

TEST(CostProfile, RejectsNonPositiveCoefficients) {
  cost::CostProfile P = sampleProfile();
  P.ElementwiseNs = 0.0;
  cost::CostProfile Out;
  std::string Error;
  EXPECT_FALSE(
      cost::parseCostProfile(cost::serializeCostProfile(P), Out, Error));
  P = sampleProfile();
  P.AssumedTripCount = 0.5; // must be >= 1
  EXPECT_FALSE(
      cost::parseCostProfile(cost::serializeCostProfile(P), Out, Error));
}

TEST(CostProfile, LoadFallsBackOnMissingFile) {
  std::string Diag;
  cost::CostProfile P = cost::loadCostProfileOrDefault(
      "/nonexistent/path/costs.mvec.json", Diag);
  EXPECT_FALSE(Diag.empty());
  EXPECT_FALSE(P.Calibrated); // the built-in default
}

TEST(CostProfile, LoadEmptyPathIsSilentDefault) {
  std::string Diag;
  cost::CostProfile P = cost::loadCostProfileOrDefault("", Diag);
  EXPECT_TRUE(Diag.empty());
  EXPECT_FALSE(P.Calibrated);
}

TEST(CostProfile, LoadFallsBackOnCorruptFile) {
  TempFile F("{\"mvec_cost_profile\": 1, \"garbage\"");
  std::string Diag;
  cost::CostProfile P = cost::loadCostProfileOrDefault(F.path(), Diag);
  EXPECT_FALSE(Diag.empty());
  EXPECT_NE(Diag.find(F.path()), std::string::npos)
      << "diagnostic should name the file: " << Diag;
  EXPECT_FALSE(P.Calibrated);
}

TEST(CostProfile, LoadAcceptsGoodFile) {
  TempFile F(cost::serializeCostProfile(sampleProfile()));
  std::string Diag;
  cost::CostProfile P = cost::loadCostProfileOrDefault(F.path(), Diag);
  EXPECT_TRUE(Diag.empty()) << Diag;
  EXPECT_TRUE(P.Calibrated);
  EXPECT_EQ(P.SimdLevel, "avx2");
}

TEST(CostProfile, LoadsFreshCalibration) {
  // CI's bench-smoke job points this at a costs.mvec.json that
  // calibrate_costs --quick just wrote, closing the loop between the
  // harness's output and the loader.
  const char *Path = std::getenv("MVEC_COST_PROFILE");
  if (!Path || !*Path)
    GTEST_SKIP() << "MVEC_COST_PROFILE not set";
  std::string Diag;
  cost::CostProfile P = cost::loadCostProfileOrDefault(Path, Diag);
  EXPECT_TRUE(Diag.empty()) << Diag;
  EXPECT_TRUE(P.Calibrated);
  cost::CostModel M{P};
  EXPECT_NE(M.fingerprint(), cost::builtinCostModel().fingerprint());

  // The freshly measured profile must drive the pipeline end to end.
  VectorizerOptions Opts;
  Opts.Cost = &M;
  PipelineResult R = vectorizeSource("%! a(1,*) b(1,*)\n"
                                     "a = zeros(1,50000);\n"
                                     "b = rand(1,50000);\n"
                                     "for i = 1:50000\n"
                                     "  a(i) = b(i)*2 + 1;\n"
                                     "end\n",
                                     Opts);
  ASSERT_TRUE(R.succeeded());
  EXPECT_GT(R.Stats.StmtsVectorized, 0u);
}

//===----------------------------------------------------------------------===//
// Fingerprints: cache keys must separate differently calibrated runs
//===----------------------------------------------------------------------===//

TEST(CostModel, FingerprintSeparatesProfiles) {
  cost::CostModel Default{cost::defaultCostProfile()};
  cost::CostModel Sample{sampleProfile()};
  EXPECT_NE(Default.fingerprint(), Sample.fingerprint());

  // Same coefficients calibrated at a different SIMD level must also key
  // differently — kernel speeds differ even if the measurement rounded
  // to the same numbers.
  cost::CostProfile P = sampleProfile();
  P.SimdLevel = "sse2";
  cost::CostModel Sse{P};
  EXPECT_NE(Sse.fingerprint(), Sample.fingerprint());
}

TEST(CostModel, OptionsFingerprintChangesWithModel) {
  VectorizerOptions Off;
  uint64_t FpOff = optionsFingerprint(Off);

  VectorizerOptions On = Off;
  On.Cost = &cost::builtinCostModel();
  uint64_t FpOn = optionsFingerprint(On);
  EXPECT_NE(FpOff, FpOn);

  cost::CostModel Calibrated{sampleProfile()};
  On.Cost = &Calibrated;
  EXPECT_NE(optionsFingerprint(On), FpOn);
  EXPECT_NE(optionsFingerprint(On), FpOff);
}

//===----------------------------------------------------------------------===//
// Estimation primitives
//===----------------------------------------------------------------------===//

TEST(CostModel, LoopAndVectorCosts) {
  cost::CostModel M{cost::defaultCostProfile()};
  const cost::CostProfile &P = M.profile();

  EXPECT_DOUBLE_EQ(M.loopCost(10, 3),
                   10 * (P.LoopIterNs + 3 * P.ScalarOpNs));

  cost::KernelCounts K;
  K.Elementwise = 2;
  K.MatMul = 1;
  EXPECT_DOUBLE_EQ(M.kernelCost(K, 100),
                   100 * (2 * P.ElementwiseNs + P.MatMulNs));
  EXPECT_DOUBLE_EQ(M.vectorCost(K, 100, 5),
                   5 * (P.VectorStmtNs + M.kernelCost(K, 100) + P.LoopIterNs));
}

//===----------------------------------------------------------------------===//
// End-to-end decisions through the pipeline
//===----------------------------------------------------------------------===//

TEST(CostPipeline, TinyTripKeepsLoop) {
  // 2-iteration inner loop under a hot shell: vector dispatch overhead
  // dwarfs the work, so the model must keep the scalar loop. The decay
  // factor blocks the reduction folder from collapsing the shell.
  const char *Source = "%! w(1,*) acc(1,*)\n"
                       "w = rand(1,2);\n"
                       "acc = zeros(1,2);\n"
                       "for r = 1:100000\n"
                       "  for j = 1:2\n"
                       "    acc(j) = acc(j)*0.999 + w(j);\n"
                       "  end\n"
                       "end\n";
  PipelineResult Off = vectorizeSource(Source);
  ASSERT_TRUE(Off.succeeded());
  EXPECT_GT(Off.Stats.StmtsVectorized, 0u) << "paper behavior: vectorize";
  EXPECT_EQ(Off.Stats.StmtsCostKept, 0u);

  VectorizerOptions Opts;
  Opts.Cost = &cost::builtinCostModel();
  PipelineResult On = vectorizeSource(Source, Opts);
  ASSERT_TRUE(On.succeeded());
  EXPECT_GT(On.Stats.StmtsCostKept, 0u);
  EXPECT_GT(On.Stats.NestsKeptLoop, 0u);
  // The kept-loop output still re-renders the scalar nest.
  EXPECT_NE(On.VectorizedSource.find("acc(j)"), std::string::npos)
      << On.VectorizedSource;
}

TEST(CostPipeline, LargeTripVectorizes) {
  const char *Source = "%! a(1,*) b(1,*)\n"
                       "a = zeros(1,50000);\n"
                       "b = rand(1,50000);\n"
                       "for i = 1:50000\n"
                       "  a(i) = b(i)*2 + 1;\n"
                       "end\n";
  VectorizerOptions Opts;
  Opts.Cost = &cost::builtinCostModel();
  PipelineResult On = vectorizeSource(Source, Opts);
  ASSERT_TRUE(On.succeeded());
  EXPECT_GT(On.Stats.StmtsVectorized, 0u);
  EXPECT_EQ(On.Stats.StmtsCostKept, 0u);
  EXPECT_NE(On.VectorizedSource.find("a(1:50000)"), std::string::npos)
      << On.VectorizedSource;
}

TEST(CostPipeline, UnknownBoundsAssumeLargeAndVectorize) {
  // Symbolic bounds resist static trip-count evaluation; the model's
  // "assume large" fallback must preserve the paper's vectorize-default.
  const char *Source = "%! a(1,*) b(1,*) n(1)\n"
                       "n = 1000;\n"
                       "a = zeros(1,n);\n"
                       "b = rand(1,n);\n"
                       "for i = 1:n\n"
                       "  a(i) = b(i)*2 + 1;\n"
                       "end\n";
  VectorizerOptions Opts;
  Opts.Cost = &cost::builtinCostModel();
  PipelineResult On = vectorizeSource(Source, Opts);
  ASSERT_TRUE(On.succeeded());
  EXPECT_GT(On.Stats.StmtsVectorized, 0u);
  EXPECT_EQ(On.Stats.StmtsCostKept, 0u) << On.VectorizedSource;
}

TEST(CostPipeline, ModelOffMatchesDefaultOutput) {
  // With no model attached the output must be byte-identical to the
  // pre-cost-model pipeline on a program the model would have re-decided.
  const char *Source = "%! w(1,*) acc(1,*)\n"
                       "w = rand(1,2);\n"
                       "acc = zeros(1,2);\n"
                       "for r = 1:100000\n"
                       "  for j = 1:2\n"
                       "    acc(j) = acc(j)*0.999 + w(j);\n"
                       "  end\n"
                       "end\n";
  PipelineResult A = vectorizeSource(Source);
  VectorizerOptions Defaulted; // Cost left null
  PipelineResult B = vectorizeSource(Source, Defaulted);
  ASSERT_TRUE(A.succeeded());
  ASSERT_TRUE(B.succeeded());
  EXPECT_EQ(A.VectorizedSource, B.VectorizedSource);
}

TEST(CostPipeline, DecisionLogRecordsBothVerdicts) {
  const char *Source = "%! w(1,*) acc(1,*) a(1,*) b(1,*)\n"
                       "w = rand(1,2);\n"
                       "acc = zeros(1,2);\n"
                       "a = zeros(1,50000);\n"
                       "b = rand(1,50000);\n"
                       "for r = 1:100000\n"
                       "  for j = 1:2\n"
                       "    acc(j) = acc(j)*0.999 + w(j);\n"
                       "  end\n"
                       "end\n"
                       "for i = 1:50000\n"
                       "  a(i) = b(i)*2 + 1;\n"
                       "end\n";
  VectorizerOptions Opts;
  Opts.Cost = &cost::builtinCostModel();
  std::vector<cost::CostDecision> Log;
  Opts.CostLog = &Log;
  PipelineResult R = vectorizeSource(Source, Opts);
  ASSERT_TRUE(R.succeeded());
  ASSERT_GE(Log.size(), 2u);

  bool SawKept = false, SawVectorized = false;
  for (const cost::CostDecision &D : Log) {
    EXPECT_FALSE(D.Stmt.empty());
    EXPECT_FALSE(D.Detail.empty());
    if (D.Vectorized) {
      SawVectorized = true;
      EXPECT_GT(D.ChosenLevel, 0u);
      EXPECT_LE(D.VectorNs, D.LoopNs);
    } else {
      SawKept = true;
      EXPECT_EQ(D.ChosenLevel, 0u);
      EXPECT_GT(D.VectorNs, D.LoopNs);
    }
  }
  EXPECT_TRUE(SawKept);
  EXPECT_TRUE(SawVectorized);
}

TEST(CostPipeline, CalibratedProfileDrivesSameTinyTripDecision) {
  // A plausibly calibrated profile (faster kernels than the conservative
  // default, nonzero dispatch cost) must still keep a 2-element statement
  // in loop form under a hot shell.
  cost::CostProfile P = cost::defaultCostProfile();
  P.Calibrated = true;
  P.SimdLevel = "avx2";
  P.VectorStmtNs = 700.0;
  P.ElementwiseNs = 5.0;
  P.LoopIterNs = 4.0;
  P.ScalarOpNs = 11.0;
  cost::CostModel M{P};

  const char *Source = "%! w(1,*) acc(1,*)\n"
                       "w = rand(1,2);\n"
                       "acc = zeros(1,2);\n"
                       "for r = 1:100000\n"
                       "  for j = 1:2\n"
                       "    acc(j) = acc(j)*0.999 + w(j);\n"
                       "  end\n"
                       "end\n";
  VectorizerOptions Opts;
  Opts.Cost = &M;
  PipelineResult On = vectorizeSource(Source, Opts);
  ASSERT_TRUE(On.succeeded());
  EXPECT_GT(On.Stats.StmtsCostKept, 0u);
}

} // namespace
