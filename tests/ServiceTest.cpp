//===- ServiceTest.cpp - Vectorization service tests ------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/VectorizationService.h"

#include "service/ContentCache.h"
#include "service/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace mvec;

namespace {

/// A small annotated loop program the vectorizer fully handles.
std::string validScript(const std::string &Tag = "") {
  return "n = 8; x = rand(1,n); y = zeros(1,n);\n"
         "%! x(1,*) y(1,*) n(1)\n"
         "for i=1:n\n  y(i) = 2*x(i);\nend\n" +
         (Tag.empty() ? "" : "% " + Tag + "\n");
}

JobSpec makeSpec(std::string Name, std::string Source,
                 std::chrono::milliseconds Deadline = {}) {
  JobSpec Spec;
  Spec.Name = std::move(Name);
  Spec.Source = std::move(Source);
  Spec.Deadline = Deadline;
  return Spec;
}

TEST(ContentCacheTest, HashIsContentSensitive) {
  VectorizerOptions Opts;
  uint64_t Base = cacheKeyFor("a = 1;\n", Opts, true);
  EXPECT_NE(Base, cacheKeyFor("a = 2;\n", Opts, true));
  EXPECT_NE(Base, cacheKeyFor("a = 1;\n", Opts, false));
  VectorizerOptions NoPatterns = Opts;
  NoPatterns.EnablePatterns = false;
  EXPECT_NE(Base, cacheKeyFor("a = 1;\n", NoPatterns, true));
  EXPECT_EQ(Base, cacheKeyFor("a = 1;\n", Opts, true));
}

TEST(ContentCacheTest, SpecKeyFoldsExecutionBounds) {
  JobSpec Spec = makeSpec("k", "a = 1;\n");
  uint64_t Base = cacheKeyFor(Spec);
  JobSpec LooseTol = Spec;
  LooseTol.ValidateTol = 1e-7;
  EXPECT_NE(Base, cacheKeyFor(LooseTol));
  JobSpec Bounded = Spec;
  Bounded.MaxSteps = 100000;
  EXPECT_NE(Base, cacheKeyFor(Bounded));
  // Deadlines only decide whether a result is produced; they must not
  // split the cache.
  JobSpec Hurried = Spec;
  Hurried.Deadline = std::chrono::milliseconds(5);
  EXPECT_EQ(Base, cacheKeyFor(Hurried));
  EXPECT_EQ(Base, cacheKeyFor(Spec));
}

TEST(ServiceTest, MaxStepsBoundsValidationDeterministically) {
  VectorizationService Service(ServiceConfig{});
  JobSpec Spec = makeSpec("steps", validScript());
  // A budget far below the script's interpreted statement count trips the
  // step limit on the original run, independent of wall-clock speed.
  Spec.MaxSteps = 4;
  JobResult R = Service.submit(std::move(Spec)).get();
  EXPECT_EQ(R.Status, JobStatus::TimedOut);
  EXPECT_NE(R.Message.find("original program"), std::string::npos)
      << R.Message;
}

TEST(ContentCacheTest, LRUEvictionAndRecency) {
  ContentCache Cache(2);
  JobResult R;
  R.Status = JobStatus::Succeeded;
  R.VectorizedSource = "one";
  Cache.insert(1, R);
  R.VectorizedSource = "two";
  Cache.insert(2, R);
  // Touch key 1 so key 2 is the eviction victim.
  ASSERT_TRUE(Cache.lookup(1).has_value());
  R.VectorizedSource = "three";
  Cache.insert(3, R);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_TRUE(Cache.lookup(1).has_value());
  EXPECT_FALSE(Cache.lookup(2).has_value());
  EXPECT_TRUE(Cache.lookup(3).has_value());
  EXPECT_EQ(Cache.evictions(), 1u);
}

TEST(ContentCacheTest, ZeroCapacityDisables) {
  ContentCache Cache(0);
  JobResult R;
  R.Status = JobStatus::Succeeded;
  Cache.insert(1, R);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.lookup(1).has_value());
}

// Concurrent get/put churn over a deliberately tiny cache, so lookups,
// inserts, refreshes and evictions interleave constantly. Run under TSan
// (the CI thread-sanitizer job builds this binary) this is the data-race
// check for the LRU list + index; in any build it verifies the counters
// stay coherent and values never tear.
TEST(ContentCacheTest, ConcurrentChurnKeepsInvariants) {
  constexpr size_t Capacity = 8;
  // Ops is a multiple of 3 so exactly Ops/3 of each thread's operations
  // are inserts and the rest are lookups — the counter check is exact.
  constexpr int Threads = 8, Ops = 1998, KeySpace = 32;
  ContentCache Cache(Capacity);
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T) {
    Pool.emplace_back([&Cache, T] {
      for (int I = 0; I != Ops; ++I) {
        uint64_t Key = static_cast<uint64_t>((T * 7 + I * 13) % KeySpace);
        if ((T + I) % 3 == 0) {
          JobResult R;
          R.Status = JobStatus::Succeeded;
          R.VectorizedSource = "v" + std::to_string(Key);
          Cache.insert(Key, std::move(R));
        } else if (auto Hit = Cache.lookup(Key)) {
          // A hit must be a complete, untorn value for that key.
          EXPECT_EQ(Hit->VectorizedSource, "v" + std::to_string(Key));
          EXPECT_EQ(Hit->Status, JobStatus::Succeeded);
        }
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
  EXPECT_LE(Cache.size(), Capacity);
  EXPECT_EQ(Cache.hits() + Cache.misses(),
            static_cast<uint64_t>(Threads) * Ops * 2 / 3)
      << "every lookup counted exactly once";
}

TEST(ThreadPoolTest, RunsEverythingAndTracksHighWater) {
  ThreadPool Pool(2, 4);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 32; ++I)
    ASSERT_TRUE(Pool.submit([&Ran] { Ran.fetch_add(1); }));
  Pool.drain();
  EXPECT_EQ(Ran.load(), 32);
  EXPECT_GE(Pool.queueHighWater(), 1u);
  EXPECT_LE(Pool.queueHighWater(), 4u);
  Pool.shutdown();
  EXPECT_FALSE(Pool.submit([] {}));
}

TEST(ServiceTest, SingleJobSucceeds) {
  VectorizationService Service;
  JobResult R = Service.submit(makeSpec("ok", validScript())).get();
  EXPECT_EQ(R.Status, JobStatus::Succeeded);
  EXPECT_TRUE(R.Message.empty()) << R.Message;
  EXPECT_NE(R.VectorizedSource.find("2*x"), std::string::npos)
      << R.VectorizedSource;
  EXPECT_GT(R.Stats.StmtsVectorized, 0u);
  EXPECT_FALSE(R.CacheHit);
}

// The acceptance scenario: a batch with a malformed script and a
// deadline-exceeding script still completes, those two report failed /
// timed_out, and every other job succeeds.
TEST(ServiceTest, MixedBatchIsolatesBadJobs) {
  ServiceConfig Config;
  Config.Workers = 4;
  VectorizationService Service(Config);

  std::vector<JobSpec> Specs;
  Specs.push_back(makeSpec("good1", validScript("one")));
  Specs.push_back(makeSpec("malformed", "for i=1:n\n  y(i) = x(i);\n"));
  // CPU-bound runaway: an unbounded loop the deadline must cut off.
  Specs.push_back(makeSpec("runaway",
                           "x = 0;\nwhile 1\n  x = x + 1;\nend\n",
                           std::chrono::milliseconds(200)));
  // Latency-bound runaway: a sleep the deadline must interrupt mid-wait.
  Specs.push_back(makeSpec("sleeper", "pause(30);\n",
                           std::chrono::milliseconds(100)));
  Specs.push_back(makeSpec("good2", validScript("two")));
  Specs.push_back(makeSpec("good3", validScript("three")));

  auto Start = std::chrono::steady_clock::now();
  std::vector<JobResult> Results = Service.runBatch(std::move(Specs));
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  ASSERT_EQ(Results.size(), 6u);
  EXPECT_EQ(Results[0].Status, JobStatus::Succeeded);
  EXPECT_EQ(Results[1].Status, JobStatus::Failed);
  EXPECT_NE(Results[1].Message.find("error"), std::string::npos)
      << Results[1].Message;
  EXPECT_EQ(Results[2].Status, JobStatus::TimedOut);
  EXPECT_EQ(Results[3].Status, JobStatus::TimedOut);
  EXPECT_EQ(Results[4].Status, JobStatus::Succeeded);
  EXPECT_EQ(Results[5].Status, JobStatus::Succeeded);
  // The runaways were cut off near their deadlines, not after 30 s.
  EXPECT_LT(Elapsed, 10.0);

  const ServiceMetrics &M = Service.metrics();
  EXPECT_EQ(M.JobsSubmitted.load(), 6u);
  EXPECT_EQ(M.JobsSucceeded.load(), 3u);
  EXPECT_EQ(M.JobsFailed.load(), 1u);
  EXPECT_EQ(M.JobsTimedOut.load(), 2u);
  EXPECT_EQ(M.jobsCompleted(), 6u);
}

TEST(ServiceTest, CacheServesResubmission) {
  ServiceConfig Config;
  Config.Workers = 1;
  VectorizationService Service(Config);

  JobResult First = Service.submit(makeSpec("a", validScript())).get();
  JobResult Second = Service.submit(makeSpec("a", validScript())).get();
  ASSERT_EQ(First.Status, JobStatus::Succeeded);
  ASSERT_EQ(Second.Status, JobStatus::Succeeded);
  EXPECT_FALSE(First.CacheHit);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(First.VectorizedSource, Second.VectorizedSource);
  EXPECT_EQ(Service.cache().hits(), 1u);
  EXPECT_EQ(Service.cache().misses(), 1u);
  EXPECT_EQ(Service.metrics().CacheHits.load(), 1u);

  // Different options must not share the entry.
  JobSpec Other = makeSpec("a", validScript());
  Other.Opts.EnablePatterns = false;
  EXPECT_FALSE(Service.submit(std::move(Other)).get().CacheHit);
}

TEST(ServiceTest, FailuresAreNotCached) {
  ServiceConfig Config;
  Config.Workers = 1;
  VectorizationService Service(Config);
  std::string Bad = "for i=1:n\n";
  EXPECT_EQ(Service.submit(makeSpec("bad", Bad)).get().Status,
            JobStatus::Failed);
  JobResult Again = Service.submit(makeSpec("bad", Bad)).get();
  EXPECT_EQ(Again.Status, JobStatus::Failed);
  EXPECT_FALSE(Again.CacheHit);
  EXPECT_EQ(Service.cache().hits(), 0u);
}

TEST(ServiceTest, CancelAllStopsTheBatch) {
  ServiceConfig Config;
  Config.Workers = 2;
  VectorizationService Service(Config);

  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I != 4; ++I)
    Futures.push_back(
        Service.submit(makeSpec("sleep" + std::to_string(I), "pause(30);\n")));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Service.cancelAll();

  for (std::future<JobResult> &F : Futures)
    EXPECT_EQ(F.get().Status, JobStatus::Cancelled);
  EXPECT_EQ(Service.metrics().JobsCancelled.load(), 4u);
  Service.resetCancellation();
  EXPECT_EQ(Service.submit(makeSpec("after", validScript())).get().Status,
            JobStatus::Succeeded);
}

// N submitter threads x M scripts against a small worker pool and a small
// queue (forcing back-pressure). Run under -fsanitize=thread in CI.
TEST(ServiceTest, ConcurrentSubmissionStress) {
  ServiceConfig Config;
  Config.Workers = 4;
  Config.QueueCapacity = 8;
  Config.CacheCapacity = 16;
  VectorizationService Service(Config);

  constexpr int Submitters = 4;
  constexpr int PerThread = 25;
  std::atomic<int> Succeeded{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != Submitters; ++T)
    Threads.emplace_back([&Service, &Succeeded, T] {
      for (int I = 0; I != PerThread; ++I) {
        // A mix of unique sources (cache misses) and repeats (hits).
        std::string Tag = I % 5 == 0 ? "shared" : std::to_string(T * 100 + I);
        JobResult R =
            Service.submit(makeSpec("job", validScript(Tag))).get();
        if (R.Status == JobStatus::Succeeded)
          Succeeded.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Succeeded.load(), Submitters * PerThread);
  const ServiceMetrics &M = Service.metrics();
  EXPECT_EQ(M.JobsSubmitted.load(), uint64_t(Submitters * PerThread));
  EXPECT_EQ(M.jobsCompleted(), uint64_t(Submitters * PerThread));
  EXPECT_GT(M.CacheHits.load(), 0u);
}

TEST(ServiceTest, NestCacheServesSharedNestsConcurrently) {
  ServiceConfig Config;
  Config.Workers = 4;
  Config.QueueCapacity = 8;
  // Disable the whole-script cache so every job runs the pipeline and
  // exercises the nest cache from multiple workers at once (this test is
  // the TSan coverage for NestCache).
  Config.CacheCapacity = 0;
  Config.NestCacheCapacity = 64;
  VectorizationService Service(Config);

  constexpr int Submitters = 4;
  constexpr int PerThread = 10;
  std::atomic<int> Succeeded{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != Submitters; ++T)
    Threads.emplace_back([&Service, &Succeeded, T] {
      for (int I = 0; I != PerThread; ++I) {
        // Unique source text per job (no script-level dedup possible),
        // but every script shares the same loop nest in the same
        // context, so the nest cache serves all but the first.
        JobResult R = Service
                          .submit(makeSpec("job", validScript(std::to_string(
                                                      T * 100 + I))))
                          .get();
        // Validation runs on every job: a wrong cached splice would
        // surface as a semantic divergence, not just a wrong counter.
        if (R.Status == JobStatus::Succeeded)
          Succeeded.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Succeeded.load(), Submitters * PerThread);
  EXPECT_GT(Service.nestCache().hits(), 0u);
  EXPECT_GT(Service.nestCache().size(), 0u);
  EXPECT_LT(Service.nestCache().misses(),
            uint64_t(Submitters * PerThread));
}

TEST(ServiceTest, NestCacheZeroCapacityDisables) {
  ServiceConfig Config;
  Config.CacheCapacity = 0;
  Config.NestCacheCapacity = 0;
  VectorizationService Service(Config);
  EXPECT_TRUE(Service.submit(makeSpec("a", validScript("a"))).get()
                  .succeeded());
  EXPECT_TRUE(Service.submit(makeSpec("b", validScript("b"))).get()
                  .succeeded());
  EXPECT_EQ(Service.nestCache().size(), 0u);
  EXPECT_EQ(Service.nestCache().hits(), 0u);
}

TEST(ServiceTest, MetricsDumpsAreWellFormed) {
  VectorizationService Service;
  Service.submit(makeSpec("ok", validScript())).get();
  Service.submit(makeSpec("bad", "for i=1:n\n")).get();

  std::string Text = Service.metrics().text();
  EXPECT_NE(Text.find("submitted=2"), std::string::npos) << Text;
  EXPECT_NE(Text.find("vectorize"), std::string::npos);

  std::string Json = Service.metrics().json();
  for (const char *Key :
       {"\"jobs\"", "\"submitted\"", "\"succeeded\"", "\"failed\"",
        "\"timed_out\"", "\"cancelled\"", "\"cache\"", "\"hits\"",
        "\"misses\"", "\"queue\"", "\"depth_high_water\"", "\"latency\"",
        "\"buckets_us\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key << " missing in "
                                                 << Json;
}

TEST(LatencyHistogramTest, BucketsAndQuantiles) {
  LatencyHistogram H;
  H.record(0.000001); // ~1 us
  H.record(0.001);    // ~1 ms
  H.record(0.1);      // ~100 ms
  EXPECT_EQ(H.count(), 3u);
  EXPECT_GT(H.meanSeconds(), 0.0);
  EXPECT_LE(H.quantileSeconds(0.0), H.quantileSeconds(1.0));
  // p100 upper bound must cover the slowest sample.
  EXPECT_GE(H.quantileSeconds(1.0), 0.1);
}

} // namespace
