//===- ParserTest.cpp - Parser + printer unit tests ------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Parser.h"

#include "gtest/gtest.h"

#include <random>

using namespace mvec;

namespace {

Program parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult Result = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return std::move(Result.Prog);
}

ExprPtr parseExprOk(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ExprPtr E = P.parseSingleExpression();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return E;
}

/// Round-trips an expression through the printer.
std::string printed(const std::string &Source) {
  return printExpr(*parseExprOk(Source));
}

TEST(ParserTest, SimpleAssignment) {
  Program P = parseOk("x = 1;");
  ASSERT_EQ(P.Stmts.size(), 1u);
  const auto *A = dyn_cast<AssignStmt>(P.Stmts[0].get());
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->targetName(), "x");
  EXPECT_TRUE(isa<NumberExpr>(A->rhs()));
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(printed("a+b*c"), "a+b*c");
  EXPECT_EQ(printed("(a+b)*c"), "(a+b)*c");
}

TEST(ParserTest, SubtractionLeftAssociative) {
  // a-b-c must not print (or re-parse) as a-(b-c).
  EXPECT_EQ(printed("a-b-c"), "a-b-c");
  EXPECT_EQ(printed("a-(b-c)"), "a-(b-c)");
}

TEST(ParserTest, DivisionRightOperandParens) {
  EXPECT_EQ(printed("a/(b*c)"), "a/(b*c)");
}

TEST(ParserTest, PowerBindsTighterThanUnaryMinus) {
  ExprPtr E = parseExprOk("-2^2");
  const auto *U = dyn_cast<UnaryExpr>(E.get());
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->op(), UnaryOp::Minus);
  EXPECT_TRUE(isa<BinaryExpr>(U->operand()));
}

TEST(ParserTest, SignedExponent) {
  ExprPtr E = parseExprOk("2^-1");
  const auto *B = dyn_cast<BinaryExpr>(E.get());
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->op(), BinaryOp::Pow);
  EXPECT_TRUE(isa<UnaryExpr>(B->rhs()));
}

TEST(ParserTest, RangeBindsLooserThanAdd) {
  ExprPtr E = parseExprOk("1:n+1");
  const auto *R = dyn_cast<RangeExpr>(E.get());
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(isa<BinaryExpr>(R->stop()));
}

TEST(ParserTest, ThreePartRange) {
  ExprPtr E = parseExprOk("2:2:1500");
  const auto *R = dyn_cast<RangeExpr>(E.get());
  ASSERT_NE(R, nullptr);
  ASSERT_NE(R->step(), nullptr);
  EXPECT_EQ(printExpr(*E), "2:2:1500");
}

TEST(ParserTest, RangeInMultiplicationNeedsParens) {
  EXPECT_EQ(printed("2*(1:750)"), "2*(1:750)");
}

TEST(ParserTest, IndexingAndCalls) {
  ExprPtr E = parseExprOk("A(i,j)");
  const auto *I = dyn_cast<IndexExpr>(E.get());
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->baseName(), "A");
  EXPECT_EQ(I->numArgs(), 2u);
}

TEST(ParserTest, MagicColonSubscript) {
  ExprPtr E = parseExprOk("A(:,i)");
  const auto *I = dyn_cast<IndexExpr>(E.get());
  ASSERT_NE(I, nullptr);
  EXPECT_TRUE(isa<MagicColonExpr>(I->arg(0)));
  EXPECT_EQ(printExpr(*E), "A(:,i)");
}

TEST(ParserTest, ColonRangeSubscript) {
  EXPECT_EQ(printed("A(1:n,:)"), "A(1:n,:)");
}

TEST(ParserTest, EndInsideSubscript) {
  ExprPtr E = parseExprOk("A(end-1)");
  const auto *I = dyn_cast<IndexExpr>(E.get());
  ASSERT_NE(I, nullptr);
  const auto *B = dyn_cast<BinaryExpr>(I->arg(0));
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(isa<EndKeywordExpr>(B->lhs()));
}

TEST(ParserTest, EndOutsideSubscriptIsError) {
  DiagnosticEngine Diags;
  parseMatlab("x = end + 1;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, TransposePostfix) {
  EXPECT_EQ(printed("A'"), "A'");
  EXPECT_EQ(printed("(B+C)'"), "(B+C)'");
  EXPECT_EQ(printed("A(i,:)'"), "A(i,:)'");
}

TEST(ParserTest, TransposeOfRangePrintsParens) {
  DiagnosticEngine Diags;
  Parser P("(1:n)'", Diags);
  ExprPtr E = P.parseSingleExpression();
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(printExpr(*E), "(1:n)'");
}

TEST(ParserTest, NestedCalls) {
  EXPECT_EQ(printed("sum(X(1:n,:)'.*Y(:,1:n))"), "sum(X(1:n,:)'.*Y(:,1:n))");
}

TEST(ParserTest, ForLoop) {
  Program P = parseOk("for i=1:n\n  x(i)=i;\nend");
  ASSERT_EQ(P.Stmts.size(), 1u);
  const auto *For = dyn_cast<ForStmt>(P.Stmts[0].get());
  ASSERT_NE(For, nullptr);
  EXPECT_EQ(For->indexVar(), "i");
  ASSERT_EQ(For->body().size(), 1u);
}

TEST(ParserTest, ForLoopCommaSeparatedBody) {
  Program P = parseOk("for i=1:n, x(i)=i; end");
  const auto *For = dyn_cast<ForStmt>(P.Stmts[0].get());
  ASSERT_NE(For, nullptr);
  ASSERT_EQ(For->body().size(), 1u);
}

TEST(ParserTest, NestedForOnOneLine) {
  Program P = parseOk("for i=1:m, for j=1:n, A(i,j)=0; end end");
  const auto *Outer = dyn_cast<ForStmt>(P.Stmts[0].get());
  ASSERT_NE(Outer, nullptr);
  ASSERT_EQ(Outer->body().size(), 1u);
  const auto *Inner = dyn_cast<ForStmt>(Outer->body()[0].get());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->indexVar(), "j");
}

TEST(ParserTest, IfElseChain) {
  Program P = parseOk("if a<1\n x=1;\nelseif a<2\n x=2;\nelse\n x=3;\nend");
  const auto *If = dyn_cast<IfStmt>(P.Stmts[0].get());
  ASSERT_NE(If, nullptr);
  ASSERT_EQ(If->branches().size(), 3u);
  EXPECT_NE(If->branches()[0].Cond, nullptr);
  EXPECT_NE(If->branches()[1].Cond, nullptr);
  EXPECT_EQ(If->branches()[2].Cond, nullptr);
}

TEST(ParserTest, WhileLoop) {
  Program P = parseOk("while x<10\n x=x+1;\nend");
  EXPECT_TRUE(isa<WhileStmt>(P.Stmts[0].get()));
}

TEST(ParserTest, BreakContinueReturn) {
  Program P = parseOk("for i=1:3, break; end\nfor j=1:3, continue; end\nreturn");
  const auto *F1 = cast<ForStmt>(P.Stmts[0].get());
  EXPECT_TRUE(isa<BreakStmt>(F1->body()[0].get()));
  const auto *F2 = cast<ForStmt>(P.Stmts[1].get());
  EXPECT_TRUE(isa<ContinueStmt>(F2->body()[0].get()));
  EXPECT_TRUE(isa<ReturnStmt>(P.Stmts[2].get()));
}

TEST(ParserTest, MatrixLiteralCommas) {
  ExprPtr E = parseExprOk("[1,2;3,4]");
  const auto *M = dyn_cast<MatrixExpr>(E.get());
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->rows().size(), 2u);
  EXPECT_EQ(M->rows()[0].size(), 2u);
  EXPECT_EQ(printExpr(*E), "[1,2;3,4]");
}

TEST(ParserTest, MatrixLiteralSpaces) {
  ExprPtr E = parseExprOk("[1 2 3]");
  const auto *M = dyn_cast<MatrixExpr>(E.get());
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->rows().size(), 1u);
  EXPECT_EQ(M->rows()[0].size(), 3u);
}

TEST(ParserTest, MatrixSpaceMinusIsNewElement) {
  ExprPtr E = parseExprOk("[a -b]");
  const auto *M = dyn_cast<MatrixExpr>(E.get());
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->rows()[0].size(), 2u);
}

TEST(ParserTest, MatrixSpacedMinusIsSubtraction) {
  ExprPtr E = parseExprOk("[a - b]");
  const auto *M = dyn_cast<MatrixExpr>(E.get());
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->rows()[0].size(), 1u);
  EXPECT_TRUE(isa<BinaryExpr>(M->rows()[0][0].get()));
}

TEST(ParserTest, MatrixWithRange) {
  ExprPtr E = parseExprOk("[0:255]");
  const auto *M = dyn_cast<MatrixExpr>(E.get());
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->rows()[0].size(), 1u);
  EXPECT_TRUE(isa<RangeExpr>(M->rows()[0][0].get()));
}

TEST(ParserTest, ContinuationInsideExpression) {
  Program P = parseOk("x = a + ...\n    b;");
  const auto *A = cast<AssignStmt>(P.Stmts[0].get());
  EXPECT_TRUE(isa<BinaryExpr>(A->rhs()));
}

TEST(ParserTest, AssignToSubscript) {
  Program P = parseOk("A(i,j) = 0;");
  const auto *A = cast<AssignStmt>(P.Stmts[0].get());
  EXPECT_TRUE(isa<IndexExpr>(A->lhs()));
  EXPECT_EQ(A->targetName(), "A");
}

TEST(ParserTest, InvalidAssignmentTarget) {
  DiagnosticEngine Diags;
  parseMatlab("a+b = 3;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ErrorRecoveryContinuesParsing) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("x = );\ny = 2;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The second statement is still parsed.
  bool FoundY = false;
  for (const StmtPtr &S : R.Prog.Stmts)
    if (const auto *A = dyn_cast<AssignStmt>(S.get()))
      if (A->targetName() == "y")
        FoundY = true;
  EXPECT_TRUE(FoundY);
}

TEST(ParserTest, PaperFig4Statement) {
  // A statement from the paper's Fig. 4 with continuations and transposes.
  Program P = parseOk(
      "B(i,1)=D(i,i)*A(i,i)+C(i,:)*D(:,i);\n"
      "A(i,j)=B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);\n");
  ASSERT_EQ(P.Stmts.size(), 2u);
  EXPECT_EQ(printStmt(*P.Stmts[0]),
            "B(i,1)=D(i,i)*A(i,i)+C(i,:)*D(:,i);\n");
  EXPECT_EQ(printStmt(*P.Stmts[1]),
            "A(i,j)=B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);\n");
}

TEST(ParserTest, ProgramRoundTripReparses) {
  const char *Source = "for i=2:2:1500\n"
                       "  B(i,1)=D(i,i)*A(i,i)+C(i,:)*D(:,i);\n"
                       "  for j=3:2:1501\n"
                       "    A(i,j)=B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);\n"
                       "  end\n"
                       "end\n";
  Program P1 = parseOk(Source);
  std::string Printed = printProgram(P1);
  Program P2 = parseOk(Printed);
  EXPECT_EQ(Printed, printProgram(P2));
}

TEST(ParserTest, ExprEqualsOnClones) {
  ExprPtr E = parseExprOk("A(i,j)+B(j,i)'");
  ExprPtr C = E->clone();
  EXPECT_TRUE(exprEquals(*E, *C));
}

TEST(ParserTest, SubstituteIdentifier) {
  ExprPtr E = parseExprOk("x(i)+i*2");
  ExprPtr Range = parseExprOk("1:n");
  ExprPtr Substituted = substituteIdentifier(E->clone(), "i", *Range);
  EXPECT_EQ(printExpr(*Substituted), "x(1:n)+(1:n)*2");
}

TEST(ParserTest, SubstituteDoesNotTouchBases) {
  ExprPtr E = parseExprOk("i(i)");
  ExprPtr Repl = parseExprOk("1:n");
  ExprPtr Substituted = substituteIdentifier(E->clone(), "i", *Repl);
  // The base 'i' names an array and must stay; the subscript use changes.
  EXPECT_EQ(printExpr(*Substituted), "i(1:n)");
}

TEST(ParserTest, EvaluateConstant) {
  double V = 0;
  EXPECT_TRUE(evaluateConstant(*parseExprOk("2*3+4"), V));
  EXPECT_DOUBLE_EQ(V, 10);
  EXPECT_TRUE(evaluateConstant(*parseExprOk("-2^2"), V));
  EXPECT_DOUBLE_EQ(V, -4);
  EXPECT_FALSE(evaluateConstant(*parseExprOk("n+1"), V));
}

TEST(ParserTest, CollectIdentifiers) {
  std::set<std::string> Names;
  collectIdentifiers(*parseExprOk("A(i,j)+b*c"), Names);
  EXPECT_EQ(Names, (std::set<std::string>{"A", "i", "j", "b", "c"}));
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Robustness properties
//===----------------------------------------------------------------------===//

class ParserRobustness : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserRobustness, GarbageNeverCrashesAndPrintingIsStable) {
  // Random token soup: parsing must terminate without crashing, and when
  // it succeeds, print -> reparse -> print must be a fixpoint.
  std::mt19937 Engine(GetParam() * 2654435761u + 1);
  const std::vector<std::string> Tokens = {
      "for",  "end", "if",  "while", "=",  "+",   "-",  "*",  "/",
      "(",    ")",   "[",   "]",     ",",  ";",   ":",  "'",  ".*",
      "x",    "y",   "A",   "1",     "2.5", "\n", " ",  "~",  "==",
      "else", "&&",  "...", "%c\n"};
  std::string Source;
  std::uniform_int_distribution<size_t> Pick(0, Tokens.size() - 1);
  std::uniform_int_distribution<int> Len(5, 60);
  int N = Len(Engine);
  for (int I = 0; I != N; ++I)
    Source += Tokens[Pick(Engine)];

  DiagnosticEngine Diags;
  ParseResult R1 = parseMatlab(Source, Diags);
  if (Diags.hasErrors())
    return; // rejected is fine; not crashing is the property
  std::string P1 = printProgram(R1.Prog);
  DiagnosticEngine Diags2;
  ParseResult R2 = parseMatlab(P1, Diags2);
  ASSERT_FALSE(Diags2.hasErrors())
      << "printed program must reparse:\n" << P1 << Diags2.str();
  EXPECT_EQ(printProgram(R2.Prog), P1) << "print must be a fixpoint";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Range(0u, 60u));

} // namespace
