//===- SimplifyTest.cpp - Expression simplifier unit tests ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Simplify.h"

#include "frontend/ASTPrinter.h"
#include "frontend/Parser.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

std::string simplified(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ExprPtr E = P.parseSingleExpression();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return printExpr(*simplifyExpr(std::move(E)));
}

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(simplified("2+3"), "5");
  EXPECT_EQ(simplified("2*3+4"), "10");
  EXPECT_EQ(simplified("10/4"), "2.5");
  EXPECT_EQ(simplified("2^10"), "1024");
  EXPECT_EQ(simplified("1500-2+2"), "1500");
}

TEST(SimplifyTest, AdditiveIdentities) {
  EXPECT_EQ(simplified("x+0"), "x");
  EXPECT_EQ(simplified("0+x"), "x");
  EXPECT_EQ(simplified("x-0"), "x");
  EXPECT_EQ(simplified("2*i+0"), "2*i");
}

TEST(SimplifyTest, MultiplicativeIdentities) {
  EXPECT_EQ(simplified("1*x"), "x");
  EXPECT_EQ(simplified("x*1"), "x");
  EXPECT_EQ(simplified("x/1"), "x");
  EXPECT_EQ(simplified("0*x"), "0");
  EXPECT_EQ(simplified("x*0"), "0");
}

TEST(SimplifyTest, NegativeConstantsFoldIntoSubtraction) {
  // x + (-3) => x-3 and x - (-3) => x+3.
  EXPECT_EQ(simplified("x+(0-3)"), "x-3");
  EXPECT_EQ(simplified("x-(0-3)"), "x+3");
}

TEST(SimplifyTest, UnaryCleanup) {
  EXPECT_EQ(simplified("+x"), "x");
  EXPECT_EQ(simplified("-(3)"), "-3");
  EXPECT_EQ(simplified("-(-x)"), "x");
}

TEST(SimplifyTest, TransposeCleanup) {
  EXPECT_EQ(simplified("x''"), "x");
  EXPECT_EQ(simplified("3'"), "3");
  EXPECT_EQ(simplified("(x')'"), "x");
}

TEST(SimplifyTest, UnitStepRangeDropsStep) {
  EXPECT_EQ(simplified("1:1:n"), "1:n");
  EXPECT_EQ(simplified("1:2:n"), "1:2:n");
}

TEST(SimplifyTest, RecursesIntoSubscripts) {
  EXPECT_EQ(simplified("A(2*i+0,j*1)"), "A(2*i,j)");
  EXPECT_EQ(simplified("f(x+0)+g(1*y)"), "f(x)+g(y)");
}

TEST(SimplifyTest, DoesNotChangeSemantics) {
  // No reassociation of non-constant terms (floating point!).
  EXPECT_EQ(simplified("x+1+2"), "x+1+2");
  // Division folding requires an exactly representable result path.
  EXPECT_EQ(simplified("x/0"), "x/0");
}

TEST(SimplifyTest, NormalizationShapes) {
  // The forms produced by loop normalization print cleanly.
  EXPECT_EQ(simplified("2*i+(2-2)"), "2*i");
  EXPECT_EQ(simplified("1*i+(3-1)"), "i+2");
  EXPECT_EQ(simplified("2*i+(3-2)"), "2*i+1");
}

TEST(SimplifyTest, StatementTraversal) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(
      "x = 1*y+0;\nfor i=1:1:n\n  A(i+0) = 0+b;\nend\n", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  for (StmtPtr &S : R.Prog.Stmts)
    simplifyStmt(*S);
  EXPECT_EQ(printProgram(R.Prog), "x=y;\nfor i=1:n\n  A(i)=b;\nend\n");
}

} // namespace

//===----------------------------------------------------------------------===//
// Transpose distribution (the paper's deferred optimization)
//===----------------------------------------------------------------------===//

namespace {

std::string distributed(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ExprPtr E = P.parseSingleExpression();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return printExpr(*distributeTransposes(std::move(E)));
}

TEST(TransposeDistributionTest, SumDistributes) {
  // The paper's own example: (B+C')' -> B'+C.
  EXPECT_EQ(distributed("(B+C')'"), "B'+C");
  EXPECT_EQ(distributed("(A-B)'"), "A'-B'");
}

TEST(TransposeDistributionTest, ElementwiseOpsDistribute) {
  EXPECT_EQ(distributed("(A.*B)'"), "A'.*B'");
  EXPECT_EQ(distributed("(A./B)'"), "A'./B'");
}

TEST(TransposeDistributionTest, MatrixProductSwapsOperands) {
  EXPECT_EQ(distributed("(A*B)'"), "B'*A'");
  EXPECT_EQ(distributed("(A*B*C)'"), "C'*(B'*A')");
}

TEST(TransposeDistributionTest, DoubleTransposeCancels) {
  EXPECT_EQ(distributed("A''"), "A");
  EXPECT_EQ(distributed("(A'+B)'"), "A+B'");
}

TEST(TransposeDistributionTest, ScalarsDropTranspose) {
  EXPECT_EQ(distributed("(x+3')'"), "x'+3");
}

TEST(TransposeDistributionTest, OpaqueOperandsKeepTranspose) {
  EXPECT_EQ(distributed("A(1:n,:)'"), "A(1:n,:)'");
  EXPECT_EQ(distributed("sum(A,1)'"), "sum(A,1)'");
  EXPECT_EQ(distributed("(A/s)'"), "(A/s)'"); // '/' is not distributed
}

TEST(TransposeDistributionTest, UnaryMinusPassesThrough) {
  EXPECT_EQ(distributed("(-A)'"), "-A'");
}

TEST(TransposeDistributionTest, RecursesEverywhere) {
  EXPECT_EQ(distributed("f((A+B)') + (C.*D)'"), "f(A'+B')+C'.*D'");
}

} // namespace
