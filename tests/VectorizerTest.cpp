//===- VectorizerTest.cpp - End-to-end vectorization tests -----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every test vectorizes a program and validates semantic equivalence by
/// executing both versions in the interpreter (diffRun). The paper's
/// running examples (Secs. 2-3, Fig. 3, Fig. 4, Fig. 5) all appear here.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

/// Vectorizes, validates semantics, and returns the vectorized source.
std::string vectOk(const std::string &Source,
                   const VectorizerOptions &Opts = {}) {
  std::string Error;
  auto V = vectorizeAndValidate(Source, Error, Opts);
  EXPECT_TRUE(V.has_value()) << Error;
  return V.value_or("");
}

/// Runs the pipeline and returns its stats (no validation).
VectorizeStats statsFor(const std::string &Source,
                        const VectorizerOptions &Opts = {}) {
  PipelineResult R = vectorizeSource(Source, Opts);
  EXPECT_TRUE(R.succeeded()) << R.Diags.str();
  return R.Stats;
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

//===----------------------------------------------------------------------===//
// Pointwise vectorization (Sec. 2.1)
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, SimplePointwiseRowVectors) {
  std::string V = vectOk("n = 8;\n"
                         "x = rand(1,n); y = rand(1,n); z = zeros(1,n);\n"
                         "for i=1:n\n"
                         "  z(i) = x(i)+y(i);\n"
                         "end\n");
  EXPECT_TRUE(contains(V, "z(1:n)=x(1:n)+y(1:n);")) << V;
  EXPECT_FALSE(contains(V, "for i=")) << V;
}

TEST(VectorizerTest, ScalarBroadcast) {
  std::string V = vectOk("n = 6;\nx = zeros(1,n);\n"
                         "for i=1:n\n  x(i) = 3;\nend\n");
  EXPECT_TRUE(contains(V, "x(1:n)=3;")) << V;
}

TEST(VectorizerTest, ScalarTimesElement) {
  std::string V = vectOk("n = 6;\nc = 2.5;\nx = rand(1,n); y = zeros(1,n);\n"
                         "for i=1:n\n  y(i) = c*x(i)+1;\nend\n");
  EXPECT_TRUE(contains(V, "y(1:n)=c*x(1:n)+1;")) << V;
}

TEST(VectorizerTest, PowBecomesDotPow) {
  std::string V = vectOk("n = 5;\nx = rand(1,n); y = zeros(1,n);\n"
                         "for i=1:n\n  y(i) = x(i)^2;\nend\n");
  EXPECT_TRUE(contains(V, ".^2")) << V;
}

TEST(VectorizerTest, DivisionBecomesDotDiv) {
  std::string V = vectOk("n = 5;\nx = rand(1,n); y = rand(1,n);\n"
                         "z = zeros(1,n);\n"
                         "for i=1:n\n  z(i) = x(i)/y(i);\nend\n");
  EXPECT_TRUE(contains(V, "./")) << V;
}

TEST(VectorizerTest, ElementwiseMulBecomesDotMul) {
  std::string V = vectOk("n = 5;\nx = rand(1,n); y = rand(1,n);\n"
                         "z = zeros(1,n);\n"
                         "for i=1:n\n  z(i) = x(i)*y(i);\nend\n");
  EXPECT_TRUE(contains(V, "x(1:n).*y(1:n)")) << V;
}

TEST(VectorizerTest, PointwiseFunctionCall) {
  // Y(i,j) = cos(X(i,j)) is correctly vectorized (paper Sec. 7).
  std::string V = vectOk("X = rand(4,5);\nY = zeros(4,5);\n"
                         "%! X(*,*) Y(*,*)\n"
                         "for i=1:4\n for j=1:5\n"
                         "  Y(i,j) = cos(X(i,j));\n"
                         " end\nend\n");
  EXPECT_TRUE(contains(V, "Y(1:4,1:5)=cos(X(1:4,1:5));")) << V;
}

TEST(VectorizerTest, TwoDimensionalPointwise) {
  std::string V = vectOk("m = 4; n = 3;\n"
                         "B = rand(m,n); C = rand(m,n); A = zeros(m,n);\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = B(i,j)+C(i,j);\n end\nend\n");
  EXPECT_TRUE(contains(V, "A(1:m,1:n)=B(1:m,1:n)+C(1:m,1:n);")) << V;
}

//===----------------------------------------------------------------------===//
// Transpose insertion (Sec. 2.2)
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, RowPlusColumnInsertsTranspose) {
  // z(i)=x(i)+y(i) with column x and row y.
  std::string V = vectOk("n = 7;\n"
                         "x = rand(n,1); y = rand(1,n); z = zeros(n,1);\n"
                         "%! x(*,1) y(1,*) z(*,1)\n"
                         "for i=1:n\n  z(i) = x(i)+y(i);\nend\n");
  EXPECT_TRUE(contains(V, "'")) << V;
  EXPECT_FALSE(contains(V, "for i=")) << V;
}

TEST(VectorizerTest, PaperSec22TransposedMatrixExample) {
  // A(i,j) = B(j,i)+C(i,j) — the worked example of Sec. 2.2.
  std::string V = vectOk("m = 4; n = 6;\n"
                         "B = rand(n,m); C = rand(m,n); A = zeros(m,n);\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = B(j,i)+C(i,j);\n end\nend\n");
  // (B(1:n,1:m)+C(1:m,1:n)')' — exact output shape of the paper.
  EXPECT_TRUE(contains(V, "A(1:m,1:n)=(B(1:n,1:m)+C(1:m,1:n)')';")) << V;
}

TEST(VectorizerTest, EqualBoundsStillNeedTranspose) {
  // Sec. 2.2: r_i and r_j stay distinct even when m == n; the transpose
  // must still be inserted (checked by diff-running with m == n).
  std::string V = vectOk("m = 5; n = 5;\n"
                         "B = rand(n,m); C = rand(m,n); A = zeros(m,n);\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = B(j,i)+C(i,j);\n end\nend\n");
  EXPECT_TRUE(contains(V, "'")) << V;
}

TEST(VectorizerTest, TransposesDisabledFallsBackToLoop) {
  VectorizerOptions Opts;
  Opts.EnableTransposes = false;
  std::string Source = "n = 7;\n"
                       "x = rand(n,1); y = rand(1,n); z = zeros(n,1);\n"
                       "%! x(*,1) y(1,*) z(*,1)\n"
                       "for i=1:n\n  z(i) = x(i)+y(i);\nend\n";
  VectorizeStats S = statsFor(Source, Opts);
  EXPECT_EQ(S.StmtsVectorized, 0u);
}

//===----------------------------------------------------------------------===//
// The loop pattern database (Sec. 3, Table 2)
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, Pattern1DotProduct) {
  // a(i) = X(i,:)*Y(:,i)  ->  a(1:n) = sum(X(1:n,:)'.*Y(:,1:n),1)
  std::string V = vectOk("n = 5; k = 7;\n"
                         "X = rand(n,k); Y = rand(k,n); a = zeros(1,n);\n"
                         "%! X(*,*) Y(*,*) a(1,*)\n"
                         "for i=1:n\n  a(i) = X(i,:)*Y(:,i);\nend\n");
  EXPECT_TRUE(contains(V, "sum(X(1:n,:)'.*Y(:,1:n),1)")) << V;
}

TEST(VectorizerTest, Pattern2RepmatBroadcast) {
  // A(i,j) = B(i,j)+C(i)  ->  repmat(C(1:m),1,size(1:n,2)) (paper row 2).
  std::string V = vectOk("m = 4; n = 6;\n"
                         "B = rand(m,n); C = rand(m,1); A = zeros(m,n);\n"
                         "%! B(*,*) C(*,1) A(*,*)\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = B(i,j)+C(i);\n end\nend\n");
  EXPECT_TRUE(contains(V, "repmat(C(1:m),1,size(1:n,2))")) << V;
}

TEST(VectorizerTest, Pattern3DiagonalAccess) {
  // a(i) = A(i,i)*b(i)  ->  a(1:n)=A((1:n)+size(A,1)*((1:n)-1)).*b(1:n)
  std::string V = vectOk("n = 6;\n"
                         "A = rand(n,n); b = rand(1,n); a = zeros(1,n);\n"
                         "%! A(*,*) b(1,*) a(1,*)\n"
                         "for i=1:n\n  a(i) = A(i,i)*b(i);\nend\n");
  EXPECT_TRUE(contains(V, "size(A,1)")) << V;
  EXPECT_FALSE(contains(V, "for i=")) << V;
}

TEST(VectorizerTest, GeneralMatrixProductPattern) {
  // A(i,j) = B(i,:)*C(:,j): a genuine matrix product over data extents.
  std::string V = vectOk("m = 3; n = 4; k = 5;\n"
                         "B = rand(m,k); C = rand(k,n); A = zeros(m,n);\n"
                         "%! B(*,*) C(*,*) A(*,*)\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = B(i,:)*C(:,j);\n end\nend\n");
  EXPECT_TRUE(contains(V, "B(1:m,:)*C(:,1:n)")) << V;
}

TEST(VectorizerTest, OuterProductPattern) {
  std::string V = vectOk("m = 3; n = 4;\n"
                         "u = rand(m,1); v = rand(1,n); A = zeros(m,n);\n"
                         "%! u(*,1) v(1,*) A(*,*)\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = u(i)*v(j);\n end\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
}

TEST(VectorizerTest, PatternsDisabledStaysSequential) {
  VectorizerOptions Opts;
  Opts.EnablePatterns = false;
  VectorizeStats S = statsFor(
      "n = 5;\nA = rand(n,n); b = rand(1,n); a = zeros(1,n);\n"
      "%! A(*,*) b(1,*) a(1,*)\n"
      "for i=1:n\n  a(i) = A(i,i)*b(i);\nend\n",
      Opts);
  EXPECT_EQ(S.StmtsVectorized, 0u);
}

//===----------------------------------------------------------------------===//
// Additive reductions (Sec. 3.1)
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, ScalarAccumulator) {
  std::string V = vectOk("n = 9;\nx = rand(1,n);\ns = 0;\n"
                         "%! x(1,*) s(1)\n"
                         "for i=1:n\n  s = s + x(i);\nend\n");
  EXPECT_TRUE(contains(V, "sum(x(1:n),2)")) << V;
  EXPECT_FALSE(contains(V, "for i=")) << V;
}

TEST(VectorizerTest, SubtractionAccumulator) {
  std::string V = vectOk("n = 9;\nx = rand(1,n);\ns = 100;\n"
                         "%! x(1,*) s(1)\n"
                         "for i=1:n\n  s = s - x(i);\nend\n");
  EXPECT_TRUE(contains(V, "s=s-sum(x(1:n),2);")) << V;
}

TEST(VectorizerTest, InvariantAccumulandUsesTripCount) {
  // s = s + c accumulates n copies of c: Gamma's trip-count form.
  std::string V = vectOk("n = 9;\nc = 2;\ns = 1;\n"
                         "%! c(1) s(1)\n"
                         "for i=1:n\n  s = s + c;\nend\n");
  EXPECT_TRUE(contains(V, "size(1:n,2)*c")) << V;
}

TEST(VectorizerTest, DotProductReduction) {
  // s = s + x(i)*y(i) over one loop.
  std::string V = vectOk("n = 9;\nx = rand(1,n); y = rand(1,n);\ns = 0;\n"
                         "%! x(1,*) y(1,*) s(1)\n"
                         "for i=1:n\n  s = s + x(i)*y(i);\nend\n");
  EXPECT_FALSE(contains(V, "for i=")) << V;
}

TEST(VectorizerTest, MatVecReductionMenonExample1Shape) {
  // Menon & Pingali ex. 1: X(i,k) = X(i,k) - L(i,j)*X(j,k), loops k and j,
  // i loop-invariant. Both loops vectorize; j reduces through '*'.
  std::string V = vectOk(
      "p = 6; n = 8; i = 5;\n"
      "X = rand(n,p); L = rand(n,n);\n"
      "%! X(*,*) L(*,*) i(1) p(1) n(1)\n"
      "for k=1:p\n for j=1:(i-1)\n"
      "  X(i,k) = X(i,k) - L(i,j)*X(j,k);\n end\nend\n");
  EXPECT_TRUE(contains(V, "X(i,1:p)=X(i,1:p)-L(i,1:i-1)*X(1:i-1,1:p);"))
      << V;
}

TEST(VectorizerTest, MenonExample2PhiReduction) {
  // phi(k) = phi(k) + a(i,j)*x_se(i)*f(j) over loops i and j.
  std::string V = vectOk(
      "N = 7; k = 2;\n"
      "a = rand(N,N); x_se = rand(N,1); f = rand(N,1); phi = zeros(1,3);\n"
      "%! a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)\n"
      "for i=1:N\n for j=1:N\n"
      "  phi(k) = phi(k) + a(i,j)*x_se(i)*f(j);\n end\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
  EXPECT_TRUE(contains(V, "sum(")) << V;
}

TEST(VectorizerTest, MenonExample3QuadNestReduction) {
  // y(i) = y(i) + x(j)*A(i,k)*B(l,k)*C(l,j) over four nested loops.
  std::string V = vectOk(
      "n = 4;\n"
      "x = rand(n,1); A = rand(n,n); B = rand(n,n); C = rand(n,n);\n"
      "y = zeros(n,1);\n"
      "%! x(*,1) A(*,*) B(*,*) C(*,*) y(*,1) n(1)\n"
      "for i=1:n\n for j=1:n\n  for k=1:n\n   for l=1:n\n"
      "    y(i) = y(i) + x(j)*A(i,k)*B(l,k)*C(l,j);\n"
      "   end\n  end\n end\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
}

TEST(VectorizerTest, ReductionsDisabledKeepsLoop) {
  VectorizerOptions Opts;
  Opts.EnableReductions = false;
  VectorizeStats S = statsFor("n = 9;\nx = rand(1,n);\ns = 0;\n"
                              "%! x(1,*) s(1)\n"
                              "for i=1:n\n  s = s + x(i);\nend\n",
                              Opts);
  EXPECT_EQ(S.StmtsVectorized, 0u);
}

//===----------------------------------------------------------------------===//
// Codegen structure (Algorithm 1)
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, TrueRecurrenceStaysSequential) {
  std::string Source = "n = 9;\nv = zeros(1,n); v(1) = 1;\n"
                       "%! v(1,*)\n"
                       "for i=2:n\n  v(i) = v(i-1)+1;\nend\n";
  VectorizeStats S = statsFor(Source);
  EXPECT_EQ(S.StmtsVectorized, 0u);
  // And the untouched program still runs identically (trivially).
  PipelineResult R = vectorizeSource(Source);
  EXPECT_EQ(diffRun(Source, R.VectorizedSource), "");
}

TEST(VectorizerTest, LoopDistributionSplitsIndependentStatements) {
  // One vectorizable statement and one recurrence: the recurrence keeps a
  // loop of its own, the other statement vectorizes (loop distribution).
  std::string Source = "n = 9;\nx = rand(1,n); y = zeros(1,n);\n"
                       "v = zeros(1,n); v(1) = 1;\n"
                       "%! x(1,*) y(1,*) v(1,*)\n"
                       "for i=2:n\n"
                       "  y(i) = 2*x(i);\n"
                       "  v(i) = v(i-1)+1;\nend\n";
  std::string V = vectOk(Source);
  EXPECT_TRUE(contains(V, "y(")) << V;
  EXPECT_TRUE(contains(V, "for i=")) << V; // the recurrence's own loop
  VectorizeStats S = statsFor(Source);
  EXPECT_EQ(S.StmtsVectorized, 1u);
  EXPECT_EQ(S.StmtsSequential, 1u);
}

TEST(VectorizerTest, DependentStatementsKeepOrder) {
  std::string V = vectOk("n = 6;\nx = zeros(1,n); y = zeros(1,n);\n"
                         "%! x(1,*) y(1,*)\n"
                         "for i=1:n\n"
                         "  x(i) = i;\n"
                         "  y(i) = x(i)*2;\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
  // x must be assigned before y.
  EXPECT_LT(V.find("x(1:n)="), V.find("y(1:n)=")) << V;
}

TEST(VectorizerTest, InnerLoopVectorizedWhenOuterCannot) {
  // The outer loop carries a recurrence in its own right (row i depends on
  // row i-1); the inner loop vectorizes.
  std::string V = vectOk("n = 5;\nA = rand(n,n);\n"
                         "%! A(*,*) n(1)\n"
                         "for i=2:n\n for j=1:n\n"
                         "  A(i,j) = A(i-1,j)+1;\n end\nend\n");
  EXPECT_TRUE(contains(V, "for i=")) << V;
  EXPECT_FALSE(contains(V, "for j=")) << V;
  EXPECT_TRUE(contains(V, "A(i+1,1:n)") || contains(V, "A(i,1:n)")) << V;
}

TEST(VectorizerTest, NonVectorizableLoopLeftIntact) {
  // Loops with embedded conditionals are not candidates (Sec. 4) and must
  // survive verbatim.
  std::string Source = "n = 5;\nx = zeros(1,n);\n"
                       "%! x(1,*)\n"
                       "for i=1:n\n"
                       "  if i > 2\n    x(i) = 1;\n  end\nend\n";
  PipelineResult R = vectorizeSource(Source);
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.StmtsVectorized + 0u, 0u);
  EXPECT_TRUE(contains(R.VectorizedSource, "if ")) << R.VectorizedSource;
  EXPECT_EQ(diffRun(Source, R.VectorizedSource), "");
}

TEST(VectorizerTest, InnerNestInsideIneligibleOuterStillVectorizes) {
  std::string V = vectOk("n = 4;\nA = zeros(n,n); t = 0;\n"
                         "%! A(*,*) t(1) n(1)\n"
                         "for i=1:n\n"
                         "  disp(i);\n"
                         "  for j=1:n\n    A(i,j) = i+j;\n  end\nend\n");
  // The outer loop (contains disp) stays; the inner vectorizes.
  EXPECT_TRUE(contains(V, "for i=")) << V;
  EXPECT_FALSE(contains(V, "for j=")) << V;
}

//===----------------------------------------------------------------------===//
// Paper Fig. 3: histogram equalization
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, Fig3HistogramEqualization) {
  std::string Source =
      "im = mod(reshape(0:11, 3, 4), 8);\n"
      "im2 = zeros(3,4);\n"
      "%! im(*,*) im2(*,*) heq(1,*) h(1,*)\n"
      "h = hist(im(:),[0:255]);\n"
      "heq = 255*cumsum(h(:))/sum(h(:));\n"
      "for i=1:size(im,1)\n"
      " for j=1:size(im,2)\n"
      "  im2(i,j) = heq(im(i,j)+1);\n"
      " end\n"
      "end\n";
  std::string V = vectOk(Source);
  EXPECT_FALSE(contains(V, "for ")) << V;
  EXPECT_TRUE(contains(
      V, "im2(1:size(im,1),1:size(im,2))=heq(im(1:size(im,1),1:size(im,2))"
         "+1)"))
      << V;
}

//===----------------------------------------------------------------------===//
// Paper Fig. 4: the compound example
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, Fig4CompoundExample) {
  // Scaled-down sizes (the benchmark uses the paper's 1500x1501); same
  // structure: diagonal accesses, a dot product, a matrix product, a
  // transposed read and a repmat broadcast.
  std::string Source =
      "A = rand(40,41); B = rand(40,41); C = rand(40,41); D = rand(41,41);\n"
      "a = rand(1,100);\n"
      "%! A(*,*) B(*,*) C(*,*) D(*,*) a(1,*) ind(1,*)\n"
      "ind = 1:20;\n"
      "for i=2:2:40\n"
      " B(i,1) = D(i,i)*A(i,i)+C(i,:)*D(:,i);\n"
      " for j=3:2:41\n"
      "  A(i,j) = B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);\n"
      " end\n"
      "end\n";
  std::string V = vectOk(Source);
  EXPECT_FALSE(contains(V, "for ")) << V;
  // Normalized index forms (Fig. 4's 2*(1:750) shape).
  EXPECT_TRUE(contains(V, "2*(1:20)")) << V;
  // The diagonal accesses became linear indexing.
  EXPECT_TRUE(contains(V, "size(D,1)")) << V;
  // The broadcast became repmat.
  EXPECT_TRUE(contains(V, "repmat(")) << V;
}

//===----------------------------------------------------------------------===//
// Feature ablations
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, ReassociationAblationLeavesSequentialLoops) {
  // Without chain re-association the quadruply nested reduction can only
  // vectorize its innermost loop; several sequential loops remain (with
  // re-association the whole nest collapses — see
  // MenonExample3QuadNestReduction).
  VectorizerOptions Opts;
  Opts.EnableReassociation = false;
  std::string Source =
      "n = 4;\n"
      "x = rand(n,1); A = rand(n,n); B = rand(n,n); C = rand(n,n);\n"
      "y = zeros(n,1);\n"
      "%! x(*,1) A(*,*) B(*,*) C(*,*) y(*,1) n(1)\n"
      "for i=1:n\n for j=1:n\n  for k=1:n\n   for l=1:n\n"
      "    y(i) = y(i) + x(j)*A(i,k)*B(l,k)*C(l,j);\n"
      "   end\n  end\n end\nend\n";
  std::string V = vectOk(Source, Opts);
  EXPECT_TRUE(contains(V, "for ")) << V;
}

TEST(VectorizerTest, StatsAccounting) {
  VectorizeStats S = statsFor("n = 6;\nx = zeros(1,n);\n%! x(1,*)\n"
                              "for i=1:n\n  x(i) = i;\nend\n");
  EXPECT_EQ(S.LoopNestsConsidered, 1u);
  EXPECT_EQ(S.LoopNestsImproved, 1u);
  EXPECT_EQ(S.StmtsVectorized, 1u);
  EXPECT_EQ(S.StmtsSequential, 0u);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Extensions: call signatures and transpose distribution
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, TwoArgElementwiseCallVectorizes) {
  // mod/min/max carry call-dimensionality signatures (paper Sec. 7).
  std::string V = vectOk("n = 6;\nx = rand(1,n); y = rand(1,n)+1;\n"
                         "z = zeros(1,n); w = zeros(1,n);\n"
                         "for i=1:n\n"
                         "  z(i) = mod(x(i), y(i));\n"
                         "  w(i) = max(x(i), 0.5);\n"
                         "end\n");
  EXPECT_TRUE(contains(V, "mod(x(1:n),y(1:n))")) << V;
  EXPECT_TRUE(contains(V, "max(x(1:n),0.5)")) << V;
  EXPECT_FALSE(contains(V, "for ")) << V;
}

TEST(VectorizerTest, MinOfMismatchedShapesStaysSequential) {
  VectorizeStats S = statsFor("n = 6;\nx = rand(1,n); c = rand(n,1);\n"
                              "z = zeros(1,n);\n"
                              "%! x(1,*) c(*,1) z(1,*) n(1)\n"
                              "for i=1:n\n  z(i) = min(x(i), c);\nend\n");
  EXPECT_EQ(S.StmtsVectorized, 0u);
}

TEST(VectorizerTest, DistributeTransposesOption) {
  // With the post-pass on, the Sec. 2.2 example prints in the paper's
  // "simpler equivalent form": B(1:n,1:m)'+C(1:m,1:n).
  VectorizerOptions Opts;
  Opts.DistributeTransposes = true;
  std::string V = vectOk("m = 4; n = 6;\n"
                         "B = rand(n,m); C = rand(m,n); A = zeros(m,n);\n"
                         "for i=1:m\n for j=1:n\n"
                         "  A(i,j) = B(j,i)+C(i,j);\n end\nend\n",
                         Opts);
  EXPECT_TRUE(contains(V, "A(1:m,1:n)=B(1:n,1:m)'+C(1:m,1:n);")) << V;
}

TEST(VectorizerTest, DistributeTransposesPreservesReductions) {
  VectorizerOptions Opts;
  Opts.DistributeTransposes = true;
  std::string V = vectOk(
      "N = 7; k = 2;\n"
      "a = rand(N,N); x_se = rand(N,1); f = rand(N,1); phi = zeros(1,3);\n"
      "%! a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)\n"
      "for i=1:N\n for j=1:N\n"
      "  phi(k) = phi(k) + a(i,j)*x_se(i)*f(j);\n end\nend\n",
      Opts);
  EXPECT_FALSE(contains(V, "for ")) << V;
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Additional loop forms
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, NegativeStrideLoop) {
  // i=n:-1:1 cannot be normalized against a symbolic n; the range is
  // substituted directly.
  std::string V = vectOk("n = 7;\nx = rand(1,n); z = zeros(1,n);\n"
                         "%! x(1,*) z(1,*) n(1)\n"
                         "for i=n:-1:1\n  z(i) = x(i)+1;\nend\n");
  EXPECT_TRUE(contains(V, "z(n:-1:1)=x(n:-1:1)+1;")) << V;
}

TEST(VectorizerTest, EmptyRangeLoopVectorizesToNoOp) {
  // for i=1:0 never executes; the vectorized statement assigns through
  // empty ranges, which is also a no-op.
  std::string V = vectOk("n = 0;\nx = rand(1,5); z = zeros(1,5);\n"
                         "%! x(1,*) z(1,*) n(1)\n"
                         "for i=1:n\n  z(i) = x(i);\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
}

TEST(VectorizerTest, SymbolicBoundsFromSizeCalls) {
  std::string V = vectOk("A = rand(5,7);\nB = zeros(5,7);\n"
                         "%! A(*,*) B(*,*)\n"
                         "for i=1:size(A,1)\n for j=1:size(A,2)\n"
                         "  B(i,j) = 2*A(i,j);\n end\nend\n");
  EXPECT_TRUE(
      contains(V, "B(1:size(A,1),1:size(A,2))=2*A(1:size(A,1),1:size(A,2));"))
      << V;
}

TEST(VectorizerTest, RowSliceAccumulation) {
  // r = r + A(i,:) reduces a whole-row slice: sum along dimension 1.
  std::string V = vectOk("n = 6; m = 4;\nA = rand(m,n);\nr = zeros(1,n);\n"
                         "%! A(*,*) r(1,*) n(1) m(1)\n"
                         "for i=1:m\n  r = r + A(i,:);\nend\n");
  EXPECT_TRUE(contains(V, "r=r+sum(A(1:m,:),1);")) << V;
}

TEST(VectorizerTest, ColumnSliceAccumulation) {
  std::string V = vectOk("n = 6; m = 4;\nA = rand(m,n);\nc = zeros(m,1);\n"
                         "%! A(*,*) c(*,1) n(1) m(1)\n"
                         "for j=1:n\n  c = c + A(:,j);\nend\n");
  EXPECT_TRUE(contains(V, "c=c+sum(A(:,1:n),2);")) << V;
}

TEST(VectorizerTest, StridedDiagonal) {
  // Fig. 4's hard sub-case in isolation: strided loop + diagonal access.
  std::string V = vectOk("B = zeros(20,1); D = rand(20,20);\n"
                         "%! B(*,*) D(*,*)\n"
                         "for i=2:2:20\n  B(i,1) = D(i,i);\nend\n");
  EXPECT_TRUE(contains(V, "2*(1:10)")) << V;
  EXPECT_TRUE(contains(V, "size(D,1)")) << V;
}

TEST(VectorizerTest, ThreeDeepPointwiseNestOnMatrixSubset) {
  // Three loops but only two-dimensional data: the innermost pair
  // vectorizes, the outer runs sequentially (dim checking fails at level
  // 1 because the statement has no third range slot).
  std::string Source = "n = 3;\nT = zeros(n,n);\nA = rand(n,n);\n"
                       "%! T(*,*) A(*,*) n(1)\n"
                       "for r=1:n\n for i=1:n\n  for j=1:n\n"
                       "   T(i,j) = A(i,j)+r;\n  end\n end\nend\n";
  std::string V = vectOk(Source);
  EXPECT_TRUE(contains(V, "for r=")) << V;
  EXPECT_FALSE(contains(V, "for i=")) << V;
}

} // namespace

namespace {

TEST(VectorizerTest, FivePointStencilVectorizes) {
  std::string V = vectOk(
      "n = 8; m = 7;\nA = rand(m,n);\nT = zeros(m,n);\n"
      "%! A(*,*) T(*,*) m(1) n(1)\n"
      "for i=2:m-1\n for j=2:n-1\n"
      "  T(i,j) = 0.25*(A(i-1,j)+A(i+1,j)+A(i,j-1)+A(i,j+1));\n"
      " end\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
  // Shifted slices appear after normalization (i -> i+1).
  EXPECT_TRUE(contains(V, "A(")) << V;
}

TEST(VectorizerTest, TwoStatementCycleSerializesTogether) {
  // x and v form a genuine two-statement recurrence: x(i) uses v(i-1) and
  // v(i) uses x(i); neither can be hoisted past the other, so Algorithm 1
  // keeps both in one sequential loop.
  std::string Source =
      "n = 7;\nx = zeros(1,n); v = zeros(1,n); v(1) = 1; w = rand(1,n);\n"
      "%! x(1,*) v(1,*) w(1,*) n(1)\n"
      "for i=2:n\n"
      "  x(i) = v(i-1)+1;\n"
      "  v(i) = x(i)*w(i);\n"
      "end\n";
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.StmtsVectorized, 0u);
  EXPECT_EQ(diffRun(Source, R.VectorizedSource), "");
}

TEST(VectorizerTest, CycleWithIndependentStatementDistributes) {
  // A third, independent statement escapes the cycle's loop.
  std::string Source =
      "n = 7;\nx = zeros(1,n); v = zeros(1,n); v(1) = 1;\n"
      "w = rand(1,n); z = zeros(1,n);\n"
      "%! x(1,*) v(1,*) w(1,*) z(1,*) n(1)\n"
      "for i=2:n\n"
      "  x(i) = v(i-1)+1;\n"
      "  v(i) = x(i)*w(i);\n"
      "  z(i) = 3*w(i);\n"
      "end\n";
  std::string V = vectOk(Source);
  EXPECT_TRUE(contains(V, "z(")) << V;
  EXPECT_TRUE(contains(V, "for i=")) << V;
  VectorizeStats S = statsFor(Source);
  EXPECT_EQ(S.StmtsVectorized, 1u);
  EXPECT_EQ(S.StmtsSequential, 2u);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Semantic edge cases
//===----------------------------------------------------------------------===//

TEST(VectorizerTest, InPlaceElementUpdateVectorizes) {
  // x(i) = x(i)*2 has only a same-instance (loop-independent) self
  // relation: vectorizable.
  std::string V = vectOk("n = 6;\nx = rand(1,n);\n%! x(1,*) n(1)\n"
                         "for i=1:n\n  x(i) = x(i)*2;\nend\n");
  EXPECT_TRUE(contains(V, "x(1:n)=x(1:n)*2;") ||
              contains(V, "x(1:n)=x(1:n).*2;"))
      << V;
}

TEST(VectorizerTest, InvariantSubscriptAccumulator) {
  // The whole slice x(ind) accumulates a loop-invariant increment n
  // times: Gamma's trip-count form applies to a set-valued accumulator.
  std::string V = vectOk("n = 5;\nx = rand(1,9);\nind = 2:4;\nc = 0.25;\n"
                         "%! x(1,*) ind(1,*) c(1) n(1)\n"
                         "for i=1:n\n  x(ind) = x(ind) + c;\nend\n");
  EXPECT_TRUE(contains(V, "x(ind)=x(ind)+size(1:n,2)*c;")) << V;
}

TEST(VectorizerTest, InvariantSubscriptAccumulatesReducedTerm) {
  std::string V = vectOk("n = 5;\nx = rand(1,9);\nind = 2:4;\n"
                         "y = rand(1,n);\n"
                         "%! x(1,*) ind(1,*) y(1,*) n(1)\n"
                         "for i=1:n\n  x(ind) = x(ind) + y(i);\nend\n");
  EXPECT_TRUE(contains(V, "x(ind)=x(ind)+sum(y(1:n),2);")) << V;
}

TEST(VectorizerTest, MultiplicativeAccumulatorStaysSequential) {
  // s = s * x(i) is not an *additive* reduction; the paper's machinery
  // (and ours) leaves it sequential.
  std::string Source = "n = 5;\nx = rand(1,n)+0.5;\ns = 1;\n"
                       "%! x(1,*) s(1) n(1)\n"
                       "for i=1:n\n  s = s * x(i);\nend\n";
  VectorizeStats S = statsFor(Source);
  EXPECT_EQ(S.StmtsVectorized, 0u);
  PipelineResult R = vectorizeSource(Source);
  EXPECT_EQ(diffRun(Source, R.VectorizedSource), "");
}

TEST(VectorizerTest, HoistedInvariantAssignment) {
  // A loop-invariant elementwise statement hoists out of the loop (same
  // final state for nonempty ranges, like the paper's model).
  std::string V = vectOk("n = 5;\nx = rand(1,8);\ny = zeros(1,8);\n"
                         "%! x(1,*) y(1,*) n(1)\n"
                         "for i=1:n\n  y = x*2;\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
}

TEST(VectorizerTest, ReadOfOtherRowsBlocksOuterLoopOnly) {
  // A(i,j) reads A(i-1,j): carried by i, independent in j.
  std::string Source = "n = 5;\nA = rand(n,n);\n%! A(*,*) n(1)\n"
                       "for i=2:n\n for j=1:n\n"
                       "  A(i,j) = A(i-1,j)*0.5+1;\n end\nend\n";
  std::string V = vectOk(Source);
  EXPECT_TRUE(contains(V, "for i=")) << V;
  EXPECT_FALSE(contains(V, "for j=")) << V;
}

} // namespace
