//===- ValueTest.cpp - Copy-on-write Value semantics ----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the COW payload contract of Value: copies share one buffer until a
/// mutation detaches, inline scalars never allocate, growth preserves
/// placement, and workspace snapshots stay isolated from later mutations.
///
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "interp/MatrixOps.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

using namespace mvec;

namespace {

Value iota(size_t Rows, size_t Cols) {
  Value M(Rows, Cols);
  for (size_t I = 0; I != M.numel(); ++I)
    M.linear(I) = static_cast<double>(I + 1);
  return M;
}

Interpreter runOk(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Interpreter Interp;
  EXPECT_TRUE(Interp.run(R.Prog)) << Interp.errorMessage();
  return Interp;
}

TEST(CowValueTest, CopySharesBufferUntilMutation) {
  Value A = iota(3, 3);
  Value B = A;
  EXPECT_TRUE(A.sharesBufferWith(B));
  EXPECT_EQ(A.raw(), B.raw());

  // Mutating the copy detaches it; the original is untouched.
  B.at(1, 1) = 99;
  EXPECT_FALSE(A.sharesBufferWith(B));
  EXPECT_DOUBLE_EQ(A.at(1, 1), 5);
  EXPECT_DOUBLE_EQ(B.at(1, 1), 99);
}

TEST(CowValueTest, MutatingOriginalDetachesFromCopies) {
  Value A = iota(2, 4);
  Value B = A;
  A.linear(0) = -1;
  EXPECT_FALSE(A.sharesBufferWith(B));
  EXPECT_DOUBLE_EQ(B.linear(0), 1);
  EXPECT_DOUBLE_EQ(A.linear(0), -1);
}

TEST(CowValueTest, ExclusiveOwnerMutatesInPlace) {
  Value A = iota(4, 4);
  const double *Before = A.raw();
  A.at(0, 0) = 42;
  EXPECT_EQ(A.raw(), Before); // no sharer, so no clone
}

TEST(CowValueTest, ScalarsStayInline) {
  Value A = Value::scalar(3.5);
  Value B = A;
  // Inline payloads are per-value storage: never "shared", never on the heap.
  EXPECT_FALSE(A.sharesBufferWith(B));
  B.linear(0) = 7;
  EXPECT_DOUBLE_EQ(A.scalarValue(), 3.5);
  EXPECT_DOUBLE_EQ(B.scalarValue(), 7);
  EXPECT_TRUE(Value().releaseBuffer() == nullptr);
}

TEST(CowValueTest, AdoptAndReleaseBufferRoundTrip) {
  auto Buf = std::make_shared<PayloadBuffer>(6, 2.0);
  double *Payload = Buf->data();
  Value M = Value::adoptBuffer(std::move(Buf), 2, 3);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_EQ(M.raw(), Payload);

  // Exclusive owner gets the buffer back; the value empties.
  auto Out = M.releaseBuffer();
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(Out->data(), Payload);
  EXPECT_TRUE(M.isEmpty());

  // A shared payload is not released.
  Value A = Value::adoptBuffer(std::move(Out), 3, 2);
  Value B = A;
  EXPECT_EQ(A.releaseBuffer(), nullptr);
  EXPECT_DOUBLE_EQ(B.at(2, 1), 2.0); // sharer keeps the data
}

TEST(CowValueTest, PayloadsAre64ByteAlignedAcrossPoolRecycle) {
  auto isAligned = [](const double *P) {
    return reinterpret_cast<uintptr_t>(P) % 64 == 0;
  };
  // Fresh heap payloads come from PayloadAllocator: 64-byte aligned.
  Value Direct(5, 9);
  EXPECT_TRUE(isAligned(Direct.raw()));

  // The alignment must survive the full pool round trip the kernels use:
  // acquire -> adoptBuffer -> releaseBuffer/recycle -> re-acquire. The
  // SIMD backend depends on this holding for every pooled buffer, not
  // just fresh ones.
  OpWorkspace WS;
  auto Buf = WS.acquire(33); // odd count: alignment is not size luck
  EXPECT_TRUE(isAligned(Buf->data()));
  Value Adopted = Value::adoptBuffer(std::move(Buf), 3, 11);
  EXPECT_TRUE(isAligned(Adopted.raw()));
  WS.recycle(std::move(Adopted));
  auto Recycled = WS.acquire(24);
  EXPECT_TRUE(isAligned(Recycled->data()));
  // Pool resize to a larger payload must re-land aligned too.
  WS.recycleBuffer(std::move(Recycled));
  auto Grown = WS.acquire(1024);
  EXPECT_TRUE(isAligned(Grown->data()));
}

TEST(CowValueTest, GrowToPreservesPositionsWhenShared) {
  Value A = iota(2, 2); // [1 3; 2 4] column-major
  Value B = A;
  A.growTo(3, 3);
  // Original elements keep their (row, col) slots, new cells are zero.
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 2);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 3);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 4);
  EXPECT_DOUBLE_EQ(A.at(2, 2), 0);
  // The pre-growth copy is bitwise intact.
  EXPECT_EQ(B.rows(), 2u);
  EXPECT_DOUBLE_EQ(B.at(1, 1), 4);
}

TEST(CowValueTest, RowGrowthRestrides) {
  Value A = iota(2, 3);
  A.growTo(4, 3); // changes the column stride: every element must move
  for (size_t C = 0; C != 3; ++C) {
    EXPECT_DOUBLE_EQ(A.at(0, C), static_cast<double>(2 * C + 1));
    EXPECT_DOUBLE_EQ(A.at(1, C), static_cast<double>(2 * C + 2));
    EXPECT_DOUBLE_EQ(A.at(2, C), 0);
    EXPECT_DOUBLE_EQ(A.at(3, C), 0);
  }
}

TEST(CowValueTest, ReserveHintChangesNothingObservable) {
  Value A = iota(1, 3);
  Value Before = A;
  A.reserveHint(500);
  EXPECT_TRUE(A.equals(Before));
  A.growTo(1, 4);
  A.at(0, 3) = 9;
  EXPECT_DOUBLE_EQ(A.at(0, 2), 3);
  EXPECT_DOUBLE_EQ(A.at(0, 3), 9);

  // Hinting a scalar or an empty value must not change its shape.
  Value S = Value::scalar(2);
  S.reserveHint(100);
  EXPECT_TRUE(S.isScalar());
  EXPECT_DOUBLE_EQ(S.scalarValue(), 2);
  Value E;
  E.reserveHint(100);
  EXPECT_TRUE(E.isEmpty());
}

TEST(CowValueTest, VectorAppendIsAmortized) {
  // 20k element-at-a-time appends complete instantly under the geometric
  // policy; the quadratic seed implementation made this test take seconds.
  Value A;
  for (size_t I = 0; I != 20000; ++I) {
    A.growTo(1, I + 1);
    A.at(0, I) = static_cast<double>(I);
  }
  EXPECT_EQ(A.cols(), 20000u);
  EXPECT_DOUBLE_EQ(A.at(0, 19999), 19999.0);
}

TEST(CowInterpreterTest, SelfIndexAssignment) {
  // A = A(...) reads and writes the same variable; COW must keep the read
  // snapshot intact while the write replaces the slot.
  Interpreter I = runOk("A = [1 2 3 4];\n"
                        "A = A(4:-1:1);\n"
                        "B = [1 2; 3 4];\n"
                        "B(1, :) = B(2, :);\n");
  const Value *A = I.getVariable("A");
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(A->equals(Value::vector({4, 3, 2, 1}, /*Row=*/true)));
  const Value *B = I.getVariable("B");
  ASSERT_NE(B, nullptr);
  EXPECT_DOUBLE_EQ(B->at(0, 0), 3);
  EXPECT_DOUBLE_EQ(B->at(0, 1), 4);
  EXPECT_DOUBLE_EQ(B->at(1, 0), 3);
}

TEST(CowInterpreterTest, AliasedVariablesDivergeOnWrite) {
  // B = A then B(2) = 9: A must not see the write even though the engine
  // shared the payload at the copy.
  Interpreter I = runOk("A = [1 2 3];\nB = A;\nB(2) = 9;\n");
  EXPECT_TRUE(I.getVariable("A")->equals(Value::vector({1, 2, 3}, true)));
  EXPECT_TRUE(I.getVariable("B")->equals(Value::vector({1, 9, 3}, true)));
}

TEST(CowInterpreterTest, WorkspaceSnapshotIsolation) {
  Interpreter I = runOk("X = [1 2; 3 4];\n");
  std::map<std::string, Value> Snap = I.workspace();
  ASSERT_EQ(Snap.count("X"), 1u);

  // Mutate the live variable after snapshotting.
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("X(1, 1) = 100;\n", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_TRUE(I.run(R.Prog));

  EXPECT_DOUBLE_EQ(Snap.at("X").at(0, 0), 1);            // snapshot frozen
  EXPECT_DOUBLE_EQ(I.getVariable("X")->at(0, 0), 100.0); // live updated
}

TEST(CowInterpreterTest, SnapshotSurvivesClear) {
  Interpreter I = runOk("v = [5 6 7];\n");
  std::map<std::string, Value> Snap = I.workspace();
  I.clearWorkspace();
  EXPECT_EQ(I.getVariable("v"), nullptr);
  EXPECT_TRUE(Snap.at("v").equals(Value::vector({5, 6, 7}, true)));
}

} // namespace
