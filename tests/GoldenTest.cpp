//===- GoldenTest.cpp - Byte-exact round-trip tests -------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Locks the compile path's observable output in place: for every example
// script, the vectorized source and the diagnostic transcript (remarks +
// stats line, exactly as mvec_tool prints them) must match the checked-in
// reference byte for byte. Any perf work on the cold path — memoized
// analyses, nest caching, printer changes — must leave these bytes alone.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vectorizer/NestCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace mvec;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// The diagnostic transcript mvec_tool would print for \p Result:
/// remarks (when enabled) followed by the one-line stats summary.
std::string diagTranscript(const PipelineResult &Result,
                           const std::string &DisplayName) {
  std::string Out = Result.Diags.str(DisplayName);
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "%s: %u loop nest(s) seen, %u improved; %u statement(s) "
                "vectorized, %u left sequential\n",
                DisplayName.c_str(), Result.Stats.LoopNestsConsidered,
                Result.Stats.LoopNestsImproved, Result.Stats.StmtsVectorized,
                Result.Stats.StmtsSequential);
  Out += Line;
  return Out;
}

class GoldenTest : public ::testing::TestWithParam<const char *> {
protected:
  std::string scriptPath() const {
    return std::string(MVEC_EXAMPLES_DIR "/") + GetParam() + ".m";
  }
  std::string goldenPath(const char *Suffix) const {
    return std::string(MVEC_GOLDEN_DIR "/") + GetParam() + Suffix;
  }
  std::string displayName() const {
    return std::string("examples/matlab/") + GetParam() + ".m";
  }
};

TEST_P(GoldenTest, VectorizedSourceAndDiagnosticsAreByteIdentical) {
  std::string Source = readFile(scriptPath());
  VectorizerOptions Opts;
  Opts.EmitRemarks = true;
  PipelineResult Result = vectorizeSource(Source, Opts);
  ASSERT_TRUE(Result.succeeded()) << Result.Diags.str(displayName());

  EXPECT_EQ(readFile(goldenPath(".vectorized.m")), Result.VectorizedSource);
  EXPECT_EQ(readFile(goldenPath(".diag.txt")),
            diagTranscript(Result, displayName()));
}

TEST_P(GoldenTest, NestCacheIsTransparent) {
  std::string Source = readFile(scriptPath());

  PipelineResult Plain = vectorizeSource(Source);
  ASSERT_TRUE(Plain.succeeded());

  NestCache Cache(64);
  PipelineResult Cold = vectorizeSource(Source, {}, nullptr, &Cache);
  uint64_t MissesAfterCold = Cache.misses();
  PipelineResult Warm = vectorizeSource(Source, {}, nullptr, &Cache);

  // Every example has at least one top-level nest, so the cold run must
  // populate and the warm run must actually be served from the cache.
  EXPECT_GT(MissesAfterCold, 0u);
  EXPECT_GT(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), MissesAfterCold);

  for (const PipelineResult *R : {&Cold, &Warm}) {
    EXPECT_EQ(Plain.VectorizedSource, R->VectorizedSource);
    EXPECT_EQ(Plain.Stats.LoopNestsConsidered, R->Stats.LoopNestsConsidered);
    EXPECT_EQ(Plain.Stats.LoopNestsImproved, R->Stats.LoopNestsImproved);
    EXPECT_EQ(Plain.Stats.StmtsVectorized, R->Stats.StmtsVectorized);
    EXPECT_EQ(Plain.Stats.StmtsSequential, R->Stats.StmtsSequential);
    EXPECT_EQ(Plain.Stats.SequentialLoopsEmitted,
              R->Stats.SequentialLoopsEmitted);
    EXPECT_EQ(Plain.Stats.IneligibleNests, R->Stats.IneligibleNests);
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, GoldenTest,
                         ::testing::Values("fig4", "gather", "histeq",
                                           "menon_pingali", "stencil"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

} // namespace
