//===- PropertyTest.cpp - Randomized differential testing ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository's core correctness property, checked on randomly
/// generated programs: whatever the vectorizer does — full vectorization,
/// partial vectorization with leftover loops, or leaving the program
/// untouched — executing the transformed program must produce exactly the
/// workspace the original produces. The programs come from the fuzzing
/// subsystem's grammar families (fuzz::Generator), so these sweeps and the
/// fuzzer exercise the same input space; each family sweeps a seed range
/// via TEST_P.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "fuzz/Generator.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

/// Validates the round trip; on divergence prints both programs.
void checkPreservesSemantics(const std::string &Source,
                             bool ExpectVectorized = false) {
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str() << "\n--- source ---\n"
                             << Source;
  // Reductions reorder floating-point sums; allow a relative tolerance.
  std::string Diff = diffRun(Source, R.VectorizedSource, 1e-7);
  EXPECT_EQ(Diff, "") << "--- source ---\n"
                      << Source << "--- transformed ---\n"
                      << R.VectorizedSource;
  if (ExpectVectorized) {
    EXPECT_GT(R.Stats.StmtsVectorized, 0u)
        << "--- source ---\n"
        << Source << "--- transformed ---\n"
        << R.VectorizedSource;
  }
}

/// Generates family \p FamilyIndex at seed \p Seed and checks the
/// property. The family's own ExpectVectorized flag decides whether the
/// sweep additionally asserts that something vectorized.
void checkFamily(unsigned FamilyIndex, unsigned Seed) {
  fuzz::Generator G(Seed);
  fuzz::GenProgram P = G.generate(FamilyIndex);
  SCOPED_TRACE("family=" + P.Family + " seed=" + std::to_string(Seed));
  checkPreservesSemantics(P.Source, P.ExpectVectorized);
}

//===----------------------------------------------------------------------===//
// One sweep per grammar family
//===----------------------------------------------------------------------===//

class PointwiseProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(PointwiseProperty, TransformedProgramIsEquivalent) {
  // Pointwise expressions over randomly oriented vectors; orientation
  // mismatches are exactly what the transpose machinery must absorb.
  checkFamily(0, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, PointwiseProperty,
                         ::testing::Range(0u, 40u));

class Nest2DProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(Nest2DProperty, TransformedProgramIsEquivalent) {
  // Two-dimensional nests with transposed reads and broadcasts.
  checkFamily(1, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, Nest2DProperty, ::testing::Range(0u, 40u));

class ReductionProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(ReductionProperty, TransformedProgramIsEquivalent) {
  // Additive reductions into a scalar accumulator.
  checkFamily(2, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, ReductionProperty,
                         ::testing::Range(0u, 40u));

class AffineAccessProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(AffineAccessProperty, TransformedProgramIsEquivalent) {
  // Strided loops and affine diagonal-style accesses.
  checkFamily(3, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, AffineAccessProperty,
                         ::testing::Range(0u, 40u));

class DependenceProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(DependenceProperty, TransformedProgramIsEquivalent) {
  // Recurrences and dependences — the vectorizer must never break
  // programs it cannot fully vectorize.
  checkFamily(4, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, DependenceProperty,
                         ::testing::Range(0u, 24u));

class NestedAccumulatorProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(NestedAccumulatorProperty, TransformedProgramIsEquivalent) {
  // Inner scalar accumulator feeding an outer elementwise write.
  checkFamily(5, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, NestedAccumulatorProperty,
                         ::testing::Range(0u, 24u));

class CompoundProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(CompoundProperty, TransformedProgramIsEquivalent) {
  // Multi-loop scripts mixing diagonals, broadcasts, reductions,
  // builtins, powers and whole-array statements.
  checkFamily(6, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, CompoundProperty,
                         ::testing::Range(0u, 24u));

class EdgeRangeProperty : public ::testing::TestWithParam<unsigned> {};
TEST_P(EdgeRangeProperty, TransformedProgramIsEquivalent) {
  // Degenerate and descending ranges: empty trips, single trips,
  // negative steps, strides past the end.
  checkFamily(7, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, EdgeRangeProperty,
                         ::testing::Range(0u, 24u));

//===----------------------------------------------------------------------===//
// Every feature subset must preserve semantics
//===----------------------------------------------------------------------===//

class OptionsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(OptionsProperty, AnyFeatureSubsetIsSound) {
  unsigned Mask = GetParam();
  VectorizerOptions Opts;
  Opts.EnableTransposes = Mask & 1;
  Opts.EnablePatterns = Mask & 2;
  Opts.EnableReductions = Mask & 4;
  Opts.EnableReassociation = Mask & 8;
  Opts.NormalizeLoops = Mask & 16;

  const std::string Source =
      "n = 6;\n"
      "X = rand(n,n); Y = rand(n,n); a = zeros(1,n); s = 0;\n"
      "c = rand(n,1); r = rand(1,n); A = zeros(n,n);\n"
      "%! X(*,*) Y(*,*) a(1,*) s(1) c(*,1) r(1,*) A(*,*) n(1)\n"
      "for i=1:n\n  a(i) = X(i,i)*r(i);\nend\n"
      "for i=1:n\n for j=1:n\n  A(i,j) = X(j,i)+c(i);\n end\nend\n"
      "for i=1:n\n for j=1:n\n  s = s + X(i,j)*c(i)*r(j);\n end\nend\n"
      "for i=2:2:n\n  a(i) = a(i-1)+1;\nend\n";

  PipelineResult R = vectorizeSource(Source, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  std::string Diff = diffRun(Source, R.VectorizedSource, 1e-7);
  EXPECT_EQ(Diff, "") << "mask=" << Mask << "\n--- transformed ---\n"
                      << R.VectorizedSource;
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, OptionsProperty,
                         ::testing::Range(0u, 32u));

//===----------------------------------------------------------------------===//
// Seed determinism: the property sweeps must be reproducible by seed
//===----------------------------------------------------------------------===//

TEST(PropertyTest, GeneratorIsBitStablePerSeed) {
  for (unsigned Seed = 0; Seed != 16; ++Seed) {
    fuzz::GenProgram A = fuzz::Generator(Seed).next();
    fuzz::GenProgram B = fuzz::Generator(Seed).next();
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Family, B.Family) << "seed " << Seed;
  }
}

} // namespace
