//===- PropertyTest.cpp - Randomized differential testing ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository's core correctness property, checked on randomly
/// generated programs: whatever the vectorizer does — full vectorization,
/// partial vectorization with leftover loops, or leaving the program
/// untouched — executing the transformed program must produce exactly the
/// workspace the original produces. Each family sweeps a seed range via
/// TEST_P.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "gtest/gtest.h"

#include <random>

using namespace mvec;

namespace {

/// Validates the round trip; on divergence prints both programs.
void checkPreservesSemantics(const std::string &Source,
                             bool ExpectVectorized = false) {
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str() << "\n--- source ---\n"
                             << Source;
  // Reductions reorder floating-point sums; allow a relative tolerance.
  std::string Diff = diffRun(Source, R.VectorizedSource, 1e-7);
  EXPECT_EQ(Diff, "") << "--- source ---\n"
                      << Source << "--- transformed ---\n"
                      << R.VectorizedSource;
  if (ExpectVectorized) {
    EXPECT_GT(R.Stats.StmtsVectorized, 0u)
        << "--- source ---\n"
        << Source << "--- transformed ---\n"
        << R.VectorizedSource;
  }
}

class Rng {
public:
  explicit Rng(unsigned Seed) : Engine(Seed * 7919 + 13) {}

  int range(int Lo, int Hi) { // inclusive
    return std::uniform_int_distribution<int>(Lo, Hi)(Engine);
  }
  template <typename T> const T &pick(const std::vector<T> &Options) {
    return Options[range(0, static_cast<int>(Options.size()) - 1)];
  }
  bool flip() { return range(0, 1) == 1; }

private:
  std::mt19937 Engine;
};

//===----------------------------------------------------------------------===//
// Family 1: pointwise expressions over randomly oriented vectors
//===----------------------------------------------------------------------===//

class PointwiseProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PointwiseProperty, TransformedProgramIsEquivalent) {
  Rng R(GetParam());
  // Three operand vectors with random orientations; one output.
  std::vector<std::string> Shapes = {"(1,n)", "(n,1)"};
  std::string SX = R.pick(Shapes), SY = R.pick(Shapes), SZ = R.pick(Shapes);
  auto Ann = [](const std::string &S) {
    return S == "(1,n)" ? "(1,*)" : "(*,1)";
  };
  std::vector<std::string> Ops = {"+", "-", ".*", "*", "./", "/"};
  std::string Op1 = R.pick(Ops), Op2 = R.pick(Ops);

  // Operands: x(i), y(i), constants; denominators stay away from zero
  // because rand() is in (0,1) and we add 0.5.
  std::string Source =
      "n = " + std::to_string(R.range(3, 9)) + ";\n"
      "x = rand" + SX + "+0.5;\n"
      "y = rand" + SY + "+0.5;\n"
      "z = zeros" + SZ + ";\n"
      "%! x" + Ann(SX) + " y" + Ann(SY) + " z" + Ann(SZ) + " n(1)\n"
      "for i=1:n\n"
      "  z(i) = (x(i) " + Op1 + " y(i)) " + Op2 + " " +
      std::to_string(R.range(1, 3)) + ";\n"
      "end\n";
  // Orientation mismatches are exactly what the transpose machinery must
  // absorb; every combination must vectorize.
  checkPreservesSemantics(Source, /*ExpectVectorized=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointwiseProperty,
                         ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===//
// Family 2: two-dimensional nests with transposed reads and broadcasts
//===----------------------------------------------------------------------===//

class Nest2DProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(Nest2DProperty, TransformedProgramIsEquivalent) {
  Rng R(GetParam());
  std::vector<std::string> Terms = {"B(i,j)", "B(j,i)'", "c(i)",   "r(j)",
                                    "2",      "B(i,j)",  "B(j,i)"};
  // Note: B(j,i)' is invalid as a scalar transpose has no effect; both
  // forms exercise the analysis identically at runtime.
  std::vector<std::string> Ops = {"+", "-", ".*"};
  std::string T1 = R.pick(Terms), T2 = R.pick(Terms);
  std::string Op = R.pick(Ops);
  int M = R.range(3, 6), N = R.range(3, 6);
  std::string Source =
      "m = " + std::to_string(M) + "; n = " + std::to_string(N) + ";\n"
      "B = rand(" + std::to_string(std::max(M, N)) + "," +
      std::to_string(std::max(M, N)) + ");\n"
      "c = rand(m,1);\nr = rand(1,n);\nA = zeros(m,n);\n"
      "%! B(*,*) c(*,1) r(1,*) A(*,*) m(1) n(1)\n"
      "for i=1:m\n for j=1:n\n"
      "  A(i,j) = " + T1 + " " + Op + " " + T2 + ";\n"
      " end\nend\n";
  checkPreservesSemantics(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Nest2DProperty, ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===//
// Family 3: additive reductions
//===----------------------------------------------------------------------===//

class ReductionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReductionProperty, TransformedProgramIsEquivalent) {
  Rng R(GetParam());
  std::vector<std::string> Factors = {"v(i)", "w(j)", "M(i,j)", "M(j,i)",
                                      "2",    "v(i)"};
  std::string F1 = R.pick(Factors), F2 = R.pick(Factors);
  std::string AccOp = R.flip() ? "+" : "-";
  int N = R.range(3, 7);
  std::string Source =
      "n = " + std::to_string(N) + ";\n"
      "v = rand(1,n);\nw = rand(n,1);\nM = rand(n,n);\ns = 1;\n"
      "%! v(1,*) w(*,1) M(*,*) s(1) n(1)\n"
      "for i=1:n\n for j=1:n\n"
      "  s = s " + AccOp + " " + F1 + "*" + F2 + ";\n"
      " end\nend\n";
  checkPreservesSemantics(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionProperty,
                         ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===//
// Family 4: strided loops and affine diagonal-style accesses
//===----------------------------------------------------------------------===//

class AffineAccessProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AffineAccessProperty, TransformedProgramIsEquivalent) {
  Rng R(GetParam());
  int C1 = R.range(1, 2), C2 = R.range(0, 2);
  int C3 = R.range(1, 2), C4 = R.range(0, 2);
  int Trip = R.range(3, 6);
  int Start = R.range(1, 2), Step = R.range(1, 2);
  // Large enough for the largest affine access 2*i+2 at the last
  // iteration.
  int Size = 2 * (Start + Step * (Trip - 1)) + 4;
  std::string I = "i"; // loop var
  auto Affine = [&](int A, int B) {
    std::string S = A == 1 ? I : std::to_string(A) + "*" + I;
    if (B != 0)
      S += "+" + std::to_string(B);
    return S;
  };
  int Stop = Start + Step * (Trip - 1);
  std::string Source =
      "A = rand(" + std::to_string(Size) + "," + std::to_string(Size) +
      ");\n"
      "b = rand(1," + std::to_string(Size) + ");\n"
      "a = zeros(1," + std::to_string(Size) + ");\n"
      "%! A(*,*) b(1,*) a(1,*)\n"
      "for i=" + std::to_string(Start) + ":" + std::to_string(Step) + ":" +
      std::to_string(Stop) + "\n"
      "  a(i) = A(" + Affine(C1, C2) + "," + Affine(C3, C4) + ")*b(i);\n"
      "end\n";
  checkPreservesSemantics(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineAccessProperty,
                         ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===//
// Family 5: recurrences and dependences — the vectorizer must never break
// programs it cannot fully vectorize
//===----------------------------------------------------------------------===//

class DependenceProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DependenceProperty, TransformedProgramIsEquivalent) {
  Rng R(GetParam());
  std::vector<std::string> Bodies = {
      "v(i) = v(i-1)+x(i);",          // true recurrence
      "v(i) = x(i); y(i) = v(i)*2;",  // forward flow
      "y(i) = x(i+1); x(i) = 0.5;",   // anti dependence
      "v(i) = x(i); v(i) = v(i)+1;",  // output dependence
      "s = s + x(i); y(i) = x(i);",   // reduction + independent
      "y(i) = x(n+1-i);",             // reversal read (independent)
  };
  std::string Body = R.pick(Bodies);
  int N = R.range(4, 9);
  std::string Source =
      "n = " + std::to_string(N) + ";\n"
      "x = rand(1,n+1);\nv = rand(1,n);\ny = zeros(1,n);\ns = 0;\n"
      "%! x(1,*) v(1,*) y(1,*) s(1) n(1)\n"
      "for i=2:n\n  " + Body + "\nend\n";
  checkPreservesSemantics(Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DependenceProperty,
                         ::testing::Range(0u, 24u));

//===----------------------------------------------------------------------===//
// Family 6: every feature subset must preserve semantics
//===----------------------------------------------------------------------===//

class OptionsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(OptionsProperty, AnyFeatureSubsetIsSound) {
  unsigned Mask = GetParam();
  VectorizerOptions Opts;
  Opts.EnableTransposes = Mask & 1;
  Opts.EnablePatterns = Mask & 2;
  Opts.EnableReductions = Mask & 4;
  Opts.EnableReassociation = Mask & 8;
  Opts.NormalizeLoops = Mask & 16;

  const std::string Source =
      "n = 6;\n"
      "X = rand(n,n); Y = rand(n,n); a = zeros(1,n); s = 0;\n"
      "c = rand(n,1); r = rand(1,n); A = zeros(n,n);\n"
      "%! X(*,*) Y(*,*) a(1,*) s(1) c(*,1) r(1,*) A(*,*) n(1)\n"
      "for i=1:n\n  a(i) = X(i,i)*r(i);\nend\n"
      "for i=1:n\n for j=1:n\n  A(i,j) = X(j,i)+c(i);\n end\nend\n"
      "for i=1:n\n for j=1:n\n  s = s + X(i,j)*c(i)*r(j);\n end\nend\n"
      "for i=2:2:n\n  a(i) = a(i-1)+1;\nend\n";

  PipelineResult R = vectorizeSource(Source, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  std::string Diff = diffRun(Source, R.VectorizedSource, 1e-7);
  EXPECT_EQ(Diff, "") << "mask=" << Mask << "\n--- transformed ---\n"
                      << R.VectorizedSource;
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, OptionsProperty,
                         ::testing::Range(0u, 32u));

} // namespace
