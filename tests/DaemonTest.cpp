//===- DaemonTest.cpp - mvecd daemon subsystem tests -------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers src/daemon: the wire protocol (framing, escaping, malformed
/// input), the content-hash helpers, the DiskStore's crash-safety story
/// (torn entries, orphaned tmp files, checksum corruption, restarts), the
/// QoS token buckets (driven with injected clocks), config parsing/hot
/// reload, and the Daemon end-to-end — including the no-protocol-error
/// guarantee under an everything-armed fault plan.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "daemon/Server.h"
#include "support/ContentHash.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mvec;
using namespace mvec::daemon;

namespace {

namespace fs = std::filesystem;

/// A unique per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Tag) {
    Dir = fs::temp_directory_path() /
          ("mvec_daemon_test_" + Tag + "_" +
           std::to_string(::getpid()));
    fs::remove_all(Dir);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  std::string path() const { return Dir.string(); }

private:
  fs::path Dir;
};

/// A small annotated script that genuinely vectorizes; \p Tag makes
/// distinct cache keys.
std::string script(int Tag) {
  return "% t" + std::to_string(Tag) +
         "\nn = 8; x = rand(1,n); z = zeros(1,n);\n"
         "%! x(1,*) z(1,*) n(1)\n"
         "for i=1:n\n  z(i) = 3*x(i);\nend\n";
}

JobResult successResult(const std::string &Src) {
  JobResult R;
  R.Status = JobStatus::Succeeded;
  R.Name = "r";
  R.VectorizedSource = Src;
  R.Message = "";
  return R;
}

//===----------------------------------------------------------------------===//
// ContentHash
//===----------------------------------------------------------------------===//

TEST(ContentHash, KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1aHash(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1aHash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1aHash("foobar"), 0x85944171f73967e8ull);
}

TEST(ContentHash, HashIsIncremental) {
  EXPECT_EQ(fnv1aHash("bar", fnv1aHash("foo")), fnv1aHash("foobar"));
}

TEST(ContentHash, MixChangesWithEveryWordBit) {
  uint64_t Base = fnv1aHash("x = 1;");
  EXPECT_NE(fnv1aMix(0, Base), Base);
  EXPECT_NE(fnv1aMix(1, Base), fnv1aMix(2, Base));
}

TEST(ContentHash, HexKeyRoundTrip) {
  for (uint64_t Key : {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    std::string Hex = contentHexKey(Key);
    EXPECT_EQ(Hex.size(), 16u);
    uint64_t Back = 0;
    EXPECT_TRUE(parseContentHexKey(Hex, Back));
    EXPECT_EQ(Back, Key);
  }
  EXPECT_EQ(contentHexKey(0xabcull), "0000000000000abc");
}

TEST(ContentHash, HexKeyRejectsNonCanonical) {
  uint64_t Key = 7;
  EXPECT_FALSE(parseContentHexKey("", Key));
  EXPECT_FALSE(parseContentHexKey("0000000000000ABC", Key)); // uppercase
  EXPECT_FALSE(parseContentHexKey("0000000000000ab", Key));  // short
  EXPECT_FALSE(parseContentHexKey("0000000000000abcd", Key)); // long
  EXPECT_FALSE(parseContentHexKey("0000000000000xyz", Key));
  EXPECT_EQ(Key, 7u) << "failed parse must not clobber the output";
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  Request Req;
  Req.V = Verb::Vec;
  Req.Tenant = "alice";
  Req.Name = "fig3.m";
  Req.Validate = false;
  Req.DeadlineMs = 1234;
  Req.Body = "x = 1;\ny = 2;\n";

  FrameReader Reader;
  Reader.feed(serializeRequest(Req));
  FrameReader::Frame Frame;
  std::string Error;
  ASSERT_EQ(Reader.next(Frame, Error), FrameReader::Result::Ready) << Error;
  Request Back;
  ASSERT_TRUE(requestFromFrame(Frame, Back, Error)) << Error;
  EXPECT_EQ(Back.V, Verb::Vec);
  EXPECT_EQ(Back.Tenant, "alice");
  EXPECT_EQ(Back.Name, "fig3.m");
  EXPECT_FALSE(Back.Validate);
  EXPECT_EQ(Back.DeadlineMs, 1234u);
  EXPECT_EQ(Back.Body, Req.Body);
  EXPECT_EQ(Reader.pendingBytes(), 0u);
}

TEST(Protocol, ResponseRoundTripWithEscapedMessage) {
  Response Resp;
  Resp.Status = "degraded";
  Resp.ErrorClass = "resource";
  Resp.CacheTier = "disk";
  Resp.Attempts = 3;
  Resp.Shard = 2;
  Resp.Message = "line one\nline two\r\nwith\\backslash";
  Resp.Body = "z = 3;\n";

  FrameReader Reader;
  Reader.feed(serializeResponse(Resp));
  FrameReader::Frame Frame;
  std::string Error;
  ASSERT_EQ(Reader.next(Frame, Error), FrameReader::Result::Ready) << Error;
  Response Back;
  ASSERT_TRUE(responseFromFrame(Frame, Back, Error)) << Error;
  EXPECT_EQ(Back.Code, 200);
  EXPECT_EQ(Back.Status, "degraded");
  EXPECT_EQ(Back.ErrorClass, "resource");
  EXPECT_EQ(Back.CacheTier, "disk");
  EXPECT_EQ(Back.Attempts, 3u);
  EXPECT_EQ(Back.Shard, 2u);
  EXPECT_EQ(Back.Message, Resp.Message);
  EXPECT_EQ(Back.Body, Resp.Body);
}

TEST(Protocol, IncrementalFeedOneByteAtATime) {
  Request Req;
  Req.V = Verb::Ping;
  std::string Wire = serializeRequest(Req);

  FrameReader Reader;
  FrameReader::Frame Frame;
  std::string Error;
  for (size_t I = 0; I + 1 < Wire.size(); ++I) {
    Reader.feed(&Wire[I], 1);
    ASSERT_EQ(Reader.next(Frame, Error), FrameReader::Result::NeedMore);
  }
  Reader.feed(&Wire[Wire.size() - 1], 1);
  EXPECT_EQ(Reader.next(Frame, Error), FrameReader::Result::Ready);
}

TEST(Protocol, PipelinedFramesParseInOrder) {
  Request A, B;
  A.V = Verb::Vec;
  A.Body = "first";
  B.V = Verb::Stats;
  FrameReader Reader;
  Reader.feed(serializeRequest(A) + serializeRequest(B));

  FrameReader::Frame Frame;
  std::string Error;
  ASSERT_EQ(Reader.next(Frame, Error), FrameReader::Result::Ready);
  EXPECT_EQ(Frame.Body, "first");
  ASSERT_EQ(Reader.next(Frame, Error), FrameReader::Result::Ready);
  Request Back;
  ASSERT_TRUE(requestFromFrame(Frame, Back, Error));
  EXPECT_EQ(Back.V, Verb::Stats);
  EXPECT_EQ(Reader.next(Frame, Error), FrameReader::Result::NeedMore);
}

TEST(Protocol, MalformedFramesPoisonTheReader) {
  struct Case {
    const char *Name;
    std::string Wire;
  } Cases[] = {
      {"bad magic", "HTTP/1.1 GET\n\n"},
      {"bad content-length", "MVEC/1 VEC\ncontent-length: zap\n\n"},
      {"oversize body",
       "MVEC/1 VEC\ncontent-length: 999999999999\n\n"},
      {"header without colon", "MVEC/1 VEC\nnocolon\n\n"},
  };
  for (const Case &C : Cases) {
    FrameReader Reader;
    Reader.feed(C.Wire);
    FrameReader::Frame Frame;
    std::string Error;
    EXPECT_EQ(Reader.next(Frame, Error), FrameReader::Result::Malformed)
        << C.Name;
    EXPECT_FALSE(Error.empty()) << C.Name;
    // Poisoned: even a valid follow-up frame is refused.
    Reader.feed(serializeRequest(Request{}));
    EXPECT_EQ(Reader.next(Frame, Error), FrameReader::Result::Malformed)
        << C.Name;
  }
}

// A hostile header announcing a huge body must be rejected from the
// length header alone — before any body bytes are buffered — and the
// ceiling must be configurable per reader (the server wires the
// `max_frame_bytes` config key here).
TEST(Protocol, ConfigurableFrameSizeLimitRejectsHugeLengthHeader) {
  FrameReader Tight(4096);
  EXPECT_EQ(Tight.maxBodyBytes(), 4096u);
  // Feed ONLY the header block: the reader must refuse without ever
  // seeing (or allocating for) the announced 64 MiB body.
  Tight.feed("MVEC/1 VEC\ncontent-length: 67108864\n\n");
  FrameReader::Frame Frame;
  std::string Error;
  EXPECT_EQ(Tight.next(Frame, Error), FrameReader::Result::Malformed);
  EXPECT_NE(Error.find("exceeds"), std::string::npos) << Error;

  // At the limit is fine; one byte over is not.
  FrameReader AtLimit(8);
  AtLimit.feed("MVEC/1 VEC\ncontent-length: 8\n\n12345678");
  EXPECT_EQ(AtLimit.next(Frame, Error), FrameReader::Result::Ready) << Error;
  EXPECT_EQ(Frame.Body, "12345678");
  FrameReader OverLimit(8);
  OverLimit.feed("MVEC/1 VEC\ncontent-length: 9\n\n123456789");
  EXPECT_EQ(OverLimit.next(Frame, Error), FrameReader::Result::Malformed);

  // The default-constructed reader keeps the protocol-wide ceiling.
  FrameReader Default;
  EXPECT_EQ(Default.maxBodyBytes(), MaxBodyBytes);
}

TEST(Protocol, UnknownVerbIsRejectedAtRequestLevel) {
  FrameReader Reader;
  Reader.feed("MVEC/1 FROB\ncontent-length: 0\n\n");
  FrameReader::Frame Frame;
  std::string Error;
  ASSERT_EQ(Reader.next(Frame, Error), FrameReader::Result::Ready);
  Request Req;
  EXPECT_FALSE(requestFromFrame(Frame, Req, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Protocol, HeaderValueEscapeRoundTrip) {
  for (const std::string &S :
       {std::string("plain"), std::string("a\nb"), std::string("a\r\nb"),
        std::string("back\\slash\\n"), std::string("")})
    EXPECT_EQ(unescapeHeaderValue(escapeHeaderValue(S)), S);
}

//===----------------------------------------------------------------------===//
// DiskStore
//===----------------------------------------------------------------------===//

TEST(DiskStore, StoreLoadRoundTrip) {
  ScratchDir Scratch("roundtrip");
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  JobResult R = successResult("z = 3*x;\n");
  R.Message = "fine";
  Store.store(42, R);
  auto Back = Store.load(42);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->VectorizedSource, "z = 3*x;\n");
  EXPECT_EQ(Back->Message, "fine");
  EXPECT_EQ(Back->Status, JobStatus::Succeeded);
  EXPECT_EQ(Store.hits(), 1u);
  EXPECT_FALSE(Store.load(43).has_value());
  EXPECT_EQ(Store.misses(), 1u);
}

TEST(DiskStore, EntriesSurviveReopen) {
  ScratchDir Scratch("reopen");
  {
    DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
    for (uint64_t K = 0; K != 10; ++K)
      Store.store(K, successResult("src" + std::to_string(K)));
  }
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  EXPECT_EQ(Store.entries(), 10u);
  for (uint64_t K = 0; K != 10; ++K) {
    auto Back = Store.load(K);
    ASSERT_TRUE(Back.has_value()) << K;
    EXPECT_EQ(Back->VectorizedSource, "src" + std::to_string(K));
  }
}

TEST(DiskStore, OnlySuccessfulResultsArePersisted) {
  ScratchDir Scratch("nofail");
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  JobResult Degraded;
  Degraded.Status = JobStatus::Degraded;
  Degraded.VectorizedSource = "original";
  Store.store(1, Degraded);
  EXPECT_FALSE(Store.load(1).has_value());
  EXPECT_EQ(Store.puts(), 0u);
}

// The crash window: the entry's bytes are on disk under the final name
// but truncated mid-payload (as if the machine died during a non-atomic
// write). A reopened store must treat it as a miss and drop it, never
// serve the torn payload.
TEST(DiskStore, TornEntryIsDroppedNotServed) {
  ScratchDir Scratch("torn");
  std::string Path;
  {
    DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
    Store.store(7, successResult("a long enough payload to truncate"));
    Path = Store.entryPath(7);
  }
  // Tear it: keep the header line but cut the payload short.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string All((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
    ASSERT_GT(All.size(), 10u);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(All.data(), static_cast<std::streamsize>(All.size() - 10));
  }
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  EXPECT_FALSE(Store.load(7).has_value());
  EXPECT_EQ(Store.corruptDropped(), 1u);
  EXPECT_FALSE(fs::exists(Path)) << "torn entry must be unlinked";
  // And the store keeps working for that key.
  Store.store(7, successResult("fresh"));
  auto Back = Store.load(7);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->VectorizedSource, "fresh");
}

// The other crash window: death between writing the .tmp file and the
// rename. The orphaned .tmp must be swept on reopen and never served.
TEST(DiskStore, OrphanedTmpFileIsSweptOnBoot) {
  ScratchDir Scratch("tmpsweep");
  fs::path Orphan;
  {
    DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
    Store.store(9, successResult("kept"));
    // Simulate a crash mid-store: a .tmp sibling that never got renamed.
    Orphan = fs::path(Store.entryPath(9)).parent_path() /
             "0123456789abcdef.mvr.tmp42";
    std::ofstream(Orphan.string(), std::ios::binary) << "half-written";
  }
  ASSERT_TRUE(fs::exists(Orphan));
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  EXPECT_FALSE(fs::exists(Orphan)) << "boot must sweep orphaned tmp files";
  EXPECT_EQ(Store.entries(), 1u);
  EXPECT_TRUE(Store.load(9).has_value());
}

TEST(DiskStore, ChecksumCorruptionIsDetected) {
  ScratchDir Scratch("corrupt");
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  Store.store(11, successResult("payload payload payload"));
  std::string Path = Store.entryPath(11);
  // Flip one payload byte in place (same length, valid header).
  {
    std::fstream F(Path, std::ios::binary | std::ios::in | std::ios::out);
    F.seekp(-3, std::ios::end);
    F.put('X');
  }
  EXPECT_FALSE(Store.load(11).has_value());
  EXPECT_EQ(Store.corruptDropped(), 1u);
  EXPECT_FALSE(fs::exists(Path));
}

TEST(DiskStore, PruneKeepsTotalUnderBudget) {
  ScratchDir Scratch("prune");
  DiskStore Store(DiskStoreConfig{Scratch.path(), 4096});
  std::string Payload(512, 'p');
  for (uint64_t K = 0; K != 64; ++K)
    Store.store(K, successResult(Payload));
  EXPECT_LT(Store.payloadBytes(), 4096u + Payload.size());
  EXPECT_LT(Store.entries(), 64u);
  // Reopening agrees with the pruned on-disk reality.
  DiskStore Reopened(DiskStoreConfig{Scratch.path(), 4096});
  EXPECT_EQ(Reopened.entries(), Store.entries());
}

TEST(DiskStore, ConcurrentPutGetChurn) {
  ScratchDir Scratch("churn");
  DiskStore Store(DiskStoreConfig{Scratch.path(), 0});
  constexpr int Threads = 8, Ops = 200;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T) {
    Pool.emplace_back([&, T] {
      for (int I = 0; I != Ops; ++I) {
        uint64_t Key = static_cast<uint64_t>((T * Ops + I) % 31);
        if (I % 3 == 0)
          Store.store(Key, successResult("v" + std::to_string(Key)));
        else if (I % 7 == 0)
          Store.erase(Key);
        else if (auto R = Store.load(Key))
          EXPECT_EQ(R->VectorizedSource, "v" + std::to_string(Key));
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Store.corruptDropped(), 0u);
}

// Prune racing live churn: a budget small enough that nearly every store
// triggers a prune, with concurrent writers and readers hammering
// overlapping keys. Nothing may crash, no entry may be served torn, and
// a reopened store must agree with the on-disk reality.
TEST(DiskStore, PruneRacesConcurrentChurnSafely) {
  ScratchDir Scratch("prunechurn");
  std::string Payload(512, 'q');
  {
    DiskStore Store(DiskStoreConfig{Scratch.path(), 4096});
    constexpr int Threads = 8, Ops = 150;
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T) {
      Pool.emplace_back([&, T] {
        for (int I = 0; I != Ops; ++I) {
          uint64_t Key = static_cast<uint64_t>((T * 31 + I) % 59);
          if (I % 2 == 0)
            Store.store(Key, successResult(Payload));
          else if (auto R = Store.load(Key))
            EXPECT_EQ(R->VectorizedSource, Payload)
                << "a pruned-or-present entry must never be torn";
        }
      });
    }
    for (std::thread &T : Pool)
      T.join();
    EXPECT_EQ(Store.corruptDropped(), 0u);
    EXPECT_LT(Store.payloadBytes(), 4096u + Payload.size());
  }
  // The survivor set reloads cleanly.
  DiskStore Reopened(DiskStoreConfig{Scratch.path(), 4096});
  EXPECT_EQ(Reopened.corruptDropped(), 0u);
  for (uint64_t Key = 0; Key != 59; ++Key)
    if (auto R = Reopened.load(Key))
      EXPECT_EQ(R->VectorizedSource, Payload);
  EXPECT_EQ(Reopened.corruptDropped(), 0u);
}

//===----------------------------------------------------------------------===//
// QoS
//===----------------------------------------------------------------------===//

TEST(Qos, TokenBucketIsDeterministicUnderInjectedClock) {
  TokenBucket B;
  B.RatePerSec = 2;
  B.Burst = 2;
  B.Tokens = 2;
  auto T0 = std::chrono::steady_clock::time_point(std::chrono::seconds(100));
  B.Last = T0;
  EXPECT_TRUE(B.tryTake(T0));  // 2 -> 1
  EXPECT_TRUE(B.tryTake(T0));  // 1 -> 0
  EXPECT_FALSE(B.tryTake(T0)); // empty
  // 500ms refills one token at 2/s.
  EXPECT_TRUE(B.tryTake(T0 + std::chrono::milliseconds(500)));
  EXPECT_FALSE(B.tryTake(T0 + std::chrono::milliseconds(500)));
  // A long idle period refills to the burst cap, not beyond.
  auto T1 = T0 + std::chrono::hours(1);
  EXPECT_TRUE(B.tryTake(T1));
  EXPECT_TRUE(B.tryTake(T1));
  EXPECT_FALSE(B.tryTake(T1));
}

TEST(Qos, ZeroRateAdmitsEverything) {
  TokenBucket B; // RatePerSec = 0
  auto Now = std::chrono::steady_clock::now();
  for (int I = 0; I != 1000; ++I)
    EXPECT_TRUE(B.tryTake(Now));
}

TEST(Qos, AdmissionControllerIsolatesTenants) {
  AdmissionController Qos(/*RatePerSec=*/1, /*Burst=*/2);
  auto Now = std::chrono::steady_clock::time_point(std::chrono::seconds(5));
  EXPECT_TRUE(Qos.admit("a", Now));
  EXPECT_TRUE(Qos.admit("a", Now));
  EXPECT_FALSE(Qos.admit("a", Now)) << "tenant a exhausted its burst";
  EXPECT_TRUE(Qos.admit("b", Now)) << "tenant b has its own bucket";
  EXPECT_EQ(Qos.totalShed(), 1u);

  auto Stats = Qos.snapshot();
  ASSERT_EQ(Stats.size(), 2u);
  EXPECT_EQ(Stats[0].Tenant, "a");
  EXPECT_EQ(Stats[0].Admitted, 2u);
  EXPECT_EQ(Stats[0].Shed, 1u);
  EXPECT_EQ(Stats[1].Tenant, "b");
  EXPECT_EQ(Stats[1].Shed, 0u);
}

TEST(Qos, SetLimitsRetunesWithoutResettingAccounting) {
  AdmissionController Qos(1, 1);
  auto Now = std::chrono::steady_clock::time_point(std::chrono::seconds(9));
  EXPECT_TRUE(Qos.admit("a", Now));
  EXPECT_FALSE(Qos.admit("a", Now));
  Qos.setLimits(0, 64); // Unlimited.
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(Qos.admit("a", Now));
  auto Stats = Qos.snapshot();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].Admitted, 101u);
  EXPECT_EQ(Stats[0].Shed, 1u) << "shed history survives a retune";
}

//===----------------------------------------------------------------------===//
// Config
//===----------------------------------------------------------------------===//

TEST(DaemonConfigParse, RoundTripThroughText) {
  DaemonConfig C;
  C.Shards = 5;
  C.WorkersPerShard = 3;
  C.StoreDir = "/tmp/some/store";
  C.TenantRate = 12.5;
  C.DeadlineMs = 777;
  DaemonConfig Back;
  std::string Error;
  ASSERT_TRUE(parseDaemonConfig(daemonConfigText(C), Back, Error)) << Error;
  EXPECT_EQ(Back.Shards, 5u);
  EXPECT_EQ(Back.WorkersPerShard, 3u);
  EXPECT_EQ(Back.StoreDir, "/tmp/some/store");
  EXPECT_DOUBLE_EQ(Back.TenantRate, 12.5);
  EXPECT_EQ(Back.DeadlineMs, 777u);
}

TEST(DaemonConfigParse, CommentsAndPartialOverrides) {
  DaemonConfig C;
  C.Shards = 2;
  std::string Error;
  ASSERT_TRUE(parseDaemonConfig("# a comment\n\nshards = 9\n", C, Error))
      << Error;
  EXPECT_EQ(C.Shards, 9u);
  EXPECT_EQ(C.WorkersPerShard, DaemonConfig().WorkersPerShard)
      << "unset keys keep their prior values";
}

TEST(DaemonConfigParse, RejectsBadInputWithoutSideEffects) {
  DaemonConfig C;
  C.Shards = 4;
  std::string Error;
  EXPECT_FALSE(parseDaemonConfig("shards = 9\nshards = zero\n", C, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(C.Shards, 4u) << "failed parse must not apply partial changes";
  EXPECT_FALSE(parseDaemonConfig("shards = 0\n", C, Error))
      << "out-of-range values are rejected";
  EXPECT_FALSE(parseDaemonConfig("no equals sign\n", C, Error));
}

//===----------------------------------------------------------------------===//
// Daemon end-to-end
//===----------------------------------------------------------------------===//

Request vecRequest(const std::string &Body,
                   const std::string &Tenant = "t") {
  Request R;
  R.V = Verb::Vec;
  R.Tenant = Tenant;
  R.Name = "test.m";
  R.Body = Body;
  return R;
}

TEST(Daemon, VecServesAndMemoryCacheWarms) {
  DaemonConfig C;
  C.Shards = 2;
  C.WorkersPerShard = 1;
  Daemon D(C);

  Response First = D.handle(vecRequest(script(1)));
  EXPECT_EQ(First.Code, 200);
  EXPECT_EQ(First.Status, "succeeded");
  EXPECT_EQ(First.CacheTier, "none");
  EXPECT_FALSE(First.Body.empty());

  Response Second = D.handle(vecRequest(script(1)));
  EXPECT_EQ(Second.Status, "succeeded");
  EXPECT_EQ(Second.CacheTier, "memory");
  EXPECT_EQ(Second.Body, First.Body);
  EXPECT_EQ(Second.Shard, First.Shard)
      << "same content must route to the same shard";
}

TEST(Daemon, DiskStoreWarmsTheNextProcessGeneration) {
  ScratchDir Scratch("daemonstore");
  DaemonConfig C;
  C.Shards = 2;
  C.WorkersPerShard = 1;
  C.StoreDir = Scratch.path();

  std::string FirstBody;
  {
    Daemon D(C);
    Response R = D.handle(vecRequest(script(2)));
    ASSERT_EQ(R.Status, "succeeded");
    FirstBody = R.Body;
  } // "Restart": memory caches die with the daemon, the store remains.
  Daemon D(C);
  Response R = D.handle(vecRequest(script(2)));
  EXPECT_EQ(R.Status, "succeeded");
  EXPECT_EQ(R.CacheTier, "disk");
  EXPECT_EQ(R.Body, FirstBody);
  ASSERT_NE(D.store(), nullptr);
  EXPECT_EQ(D.store()->hits(), 1u);
}

TEST(Daemon, QosShedIsDegradedPassthroughNeverAnError) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  C.TenantRate = 0.001; // Refill is negligible within the test.
  C.TenantBurst = 1;
  Daemon D(C);

  Response First = D.handle(vecRequest(script(3), "hog"));
  EXPECT_EQ(First.Status, "succeeded");
  Response Shed = D.handle(vecRequest(script(3), "hog"));
  EXPECT_EQ(Shed.Code, 200) << "a shed is never a protocol error";
  EXPECT_EQ(Shed.Status, "degraded");
  EXPECT_EQ(Shed.Body, script(3)) << "byte-exact passthrough";
  EXPECT_EQ(Shed.Message.rfind("degraded: ", 0), 0u) << Shed.Message;
  EXPECT_EQ(D.shedQos(), 1u);
  // An independent tenant is unaffected.
  EXPECT_EQ(D.handle(vecRequest(script(3), "other")).Status, "succeeded");
}

TEST(Daemon, PingStatsAndShutdownVerbs) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);

  Request Ping;
  Ping.V = Verb::Ping;
  EXPECT_EQ(D.handle(Ping).Message, "pong");

  D.handle(vecRequest(script(4)));
  Request Stats;
  Stats.V = Verb::Stats;
  std::string Json = D.handle(Stats).Body;
  EXPECT_NE(Json.find("\"daemon\":"), std::string::npos);
  EXPECT_NE(Json.find("\"shed_qos\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"disk_store\":{\"configured\":false}"),
            std::string::npos);
  EXPECT_NE(Json.find("\"queue_depth\":"), std::string::npos);

  EXPECT_FALSE(D.shutdownRequested());
  Request Shutdown;
  Shutdown.V = Verb::Shutdown;
  EXPECT_EQ(D.handle(Shutdown).Code, 200);
  EXPECT_TRUE(D.shutdownRequested());
}

TEST(Daemon, HotReloadRebuildsTheFleetWithoutDroppingState) {
  ScratchDir Scratch("reloadstore");
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  C.StoreDir = Scratch.path();
  Daemon D(C);
  ASSERT_EQ(D.handle(vecRequest(script(5))).Status, "succeeded");

  DaemonConfig New = D.config();
  New.Shards = 3;
  std::string Error;
  ASSERT_TRUE(D.reload(New, Error)) << Error;
  EXPECT_EQ(D.shardCount(), 3u);
  EXPECT_EQ(D.reloads(), 1u);

  // The new fleet's memory caches are cold, but the store carried over:
  // the re-request is a disk hit, not a recompile.
  Response R = D.handle(vecRequest(script(5)));
  EXPECT_EQ(R.Status, "succeeded");
  EXPECT_EQ(R.CacheTier, "disk");
}

TEST(Daemon, ConfigVerbAppliesAndReportsFailuresAsJobOutcomes) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);

  Request Good;
  Good.V = Verb::Config;
  Good.Body = "deadline_ms = 2500\n";
  Response R = D.handle(Good);
  EXPECT_EQ(R.Code, 200);
  EXPECT_EQ(R.Status, "ok");
  EXPECT_NE(R.Body.find("deadline_ms = 2500"), std::string::npos);
  EXPECT_EQ(D.config().DeadlineMs, 2500u);

  Request Bad;
  Bad.V = Verb::Config;
  Bad.Body = "shards = frogs\n";
  R = D.handle(Bad);
  EXPECT_EQ(R.Code, 200) << "a bad config is a job failure, not a "
                            "protocol error";
  EXPECT_EQ(R.Status, "failed");
  EXPECT_EQ(R.ErrorClass, "input");
  EXPECT_EQ(D.config().DeadlineMs, 2500u) << "no partial application";
}

TEST(DaemonConfigParse, CostModelKeys) {
  DaemonConfig C;
  C.CostModel = "on";
  C.CostProfile = "/etc/mvec/costs.mvec.json";
  DaemonConfig Back;
  std::string Error;
  ASSERT_TRUE(parseDaemonConfig(daemonConfigText(C), Back, Error)) << Error;
  EXPECT_EQ(Back.CostModel, "on");
  EXPECT_EQ(Back.CostProfile, "/etc/mvec/costs.mvec.json");
  EXPECT_FALSE(parseDaemonConfig("cost_model = maybe\n", Back, Error))
      << "only off|on are valid";
}

TEST(Daemon, CostModelReloadRebuildsTheFleetAndCountsDecisions) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);
  D.handle(vecRequest(script(7)));
  ASSERT_EQ(D.handle(vecRequest(script(7))).CacheTier, "memory");

  // Turning the model on re-fingerprints every cache key, so the fleet
  // (and its warm caches) must be rebuilt, not reused.
  DaemonConfig New = D.config();
  New.CostModel = "on";
  std::string Error;
  ASSERT_TRUE(D.reload(New, Error)) << Error;
  EXPECT_EQ(D.handle(vecRequest(script(7))).CacheTier, "none");

  // A tiny-trip nest under a hot shell is kept in loop form; the
  // decision shows up in the STATS counters.
  Response Kept = D.handle(vecRequest("%! w(1,*) acc(1,*)\n"
                                      "w = rand(1,2);\nacc = zeros(1,2);\n"
                                      "for r = 1:100000\n"
                                      "  for j = 1:2\n"
                                      "    acc(j) = acc(j)*0.999 + w(j);\n"
                                      "  end\n"
                                      "end\n"));
  EXPECT_EQ(Kept.Code, 200);
  EXPECT_EQ(Kept.Status, "succeeded");

  Request Stats;
  Stats.V = Verb::Stats;
  std::string Json = D.handle(Stats).Body;
  // The two-deep nest is attempted at both levels, so the count is >= 1;
  // only the zero value would mean the decision never surfaced.
  EXPECT_NE(Json.find("\"nests_kept_loop\":"), std::string::npos) << Json;
  EXPECT_EQ(Json.find("\"nests_kept_loop\":0"), std::string::npos) << Json;
}

TEST(Daemon, FastKnobReloadDoesNotRebuildTheFleet) {
  DaemonConfig C;
  C.Shards = 2;
  C.WorkersPerShard = 1;
  Daemon D(C);
  D.handle(vecRequest(script(6)));

  DaemonConfig New = D.config();
  New.TenantRate = 50;
  New.DeadlineMs = 1000;
  std::string Error;
  ASSERT_TRUE(D.reload(New, Error)) << Error;
  // The fleet (and its warm cache) survived: still a memory hit.
  EXPECT_EQ(D.handle(vecRequest(script(6))).CacheTier, "memory");
}

// The headline guarantee, end to end: under an everything-armed fault
// plan, a well-formed VEC request never yields a protocol error — worst
// case is byte-exact degraded passthrough with a diagnostic.
TEST(Daemon, NoProtocolErrorForValidRequestsUnderFaultInjection) {
  FaultPlan Chaos;
  Chaos.Seed = 0xfeedbeef;
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    for (unsigned K = 0; K != NumFaultKinds; ++K) {
      FaultRule Rule;
      Rule.Site = static_cast<FaultSite>(S);
      Rule.Kind = static_cast<FaultKind>(K);
      Rule.Period = 3;
      Rule.MaxFires = 2;
      Rule.LatencyMicros = 200;
      Chaos.Rules.push_back(Rule);
    }
  }

  ScratchDir Scratch("chaosstore");
  DaemonConfig C;
  C.Shards = 2;
  C.WorkersPerShard = 2;
  C.StoreDir = Scratch.path();
  C.Faults = &Chaos;
  Daemon D(C);

  unsigned Degraded = 0;
  for (int I = 0; I != 40; ++I) {
    std::string Src = script(100 + I);
    Response R = D.handle(vecRequest(Src, "chaos-" + std::to_string(I % 3)));
    ASSERT_EQ(R.Code, 200) << "request " << I;
    EXPECT_FALSE(R.Body.empty()) << "request " << I;
    if (R.Status == "degraded") {
      ++Degraded;
      EXPECT_EQ(R.Body, Src) << "degraded passthrough must be byte-exact";
      EXPECT_FALSE(R.Message.empty());
    } else if (R.Status == "succeeded") {
      EXPECT_FALSE(R.Body.empty());
    } else {
      // Failed/timed-out are legal job outcomes (never protocol errors),
      // but infrastructure faults must not surface as internal failures.
      EXPECT_NE(R.ErrorClass, "internal") << R.Message;
    }
  }
  SUCCEED() << Degraded << " of 40 degraded";
}

//===----------------------------------------------------------------------===//
// Server (TCP transport)
//===----------------------------------------------------------------------===//

class TestClient {
public:
  bool connect(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }
  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool roundTrip(const Request &Req, Response &Resp) {
    std::string Wire = serializeRequest(Req);
    if (::send(Fd, Wire.data(), Wire.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(Wire.size()))
      return false;
    char Buf[4096];
    for (;;) {
      FrameReader::Frame Frame;
      std::string Error;
      FrameReader::Result R = Reader.next(Frame, Error);
      if (R == FrameReader::Result::Ready)
        return responseFromFrame(Frame, Resp, Error);
      if (R == FrameReader::Result::Malformed)
        return false;
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N <= 0)
        return false;
      Reader.feed(Buf, static_cast<size_t>(N));
    }
  }
  bool sendRaw(const std::string &Bytes) {
    return ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(Bytes.size());
  }
  /// Reads until EOF, returning everything received.
  std::string drain() {
    std::string All;
    char Buf[4096];
    ssize_t N;
    while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
      All.append(Buf, static_cast<size_t>(N));
    return All;
  }

private:
  int Fd = -1;
  FrameReader Reader;
};

TEST(Server, ServesVecOverTcpAndDrainsOnStop) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);
  Server S(D, ServerConfig{});
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  ASSERT_NE(S.port(), 0u);
  std::thread Loop([&] { S.run(); });

  {
    TestClient Client;
    ASSERT_TRUE(Client.connect(S.port()));
    Response Resp;
    ASSERT_TRUE(Client.roundTrip(vecRequest(script(7)), Resp));
    EXPECT_EQ(Resp.Code, 200);
    EXPECT_EQ(Resp.Status, "succeeded");
    // Second frame on the same (persistent) connection.
    ASSERT_TRUE(Client.roundTrip(vecRequest(script(7)), Resp));
    EXPECT_EQ(Resp.CacheTier, "memory");
  }
  S.stop();
  Loop.join();
  EXPECT_EQ(S.connectionsAccepted(), 1u);
}

TEST(Server, MalformedFrameGets400AndDisconnect) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);
  Server S(D, ServerConfig{});
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  std::thread Loop([&] { S.run(); });

  {
    TestClient Client;
    ASSERT_TRUE(Client.connect(S.port()));
    ASSERT_TRUE(Client.sendRaw("GARBAGE that is not a frame\n\n"));
    std::string Reply = Client.drain(); // Server closes after the 400.
    EXPECT_NE(Reply.find("MVEC/1 400"), std::string::npos) << Reply;
  }
  S.stop();
  Loop.join();
}

// The transport honors the configured frame ceiling: a client whose
// length header announces more than max_frame_bytes is answered 400 and
// disconnected — before it transmits (or the server buffers) the body.
TEST(Server, OversizeLengthHeaderGets400AndDisconnect) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);
  ServerConfig SC;
  SC.MaxFrameBytes = 4096;
  Server S(D, SC);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  std::thread Loop([&] { S.run(); });
  {
    TestClient Client;
    ASSERT_TRUE(Client.connect(S.port()));
    // Header only; the megabyte body is never sent.
    ASSERT_TRUE(Client.sendRaw("MVEC/1 VEC\ncontent-length: 1048576\n\n"));
    std::string Reply = Client.drain(); // 400, then the server closes.
    EXPECT_NE(Reply.find("MVEC/1 400"), std::string::npos) << Reply;
    EXPECT_NE(Reply.find("exceeds"), std::string::npos) << Reply;
  }
  S.stop();
  Loop.join();
}

// A client that vanishes (or stops reading) mid-response must cost the
// server one connection, not one wedged handler thread. The response is
// made large enough to overflow the socket buffers so the send genuinely
// blocks, and the SendTimeoutMs budget must unblock it.
TEST(Server, DeadClientMidResponseDoesNotWedgeTheServer) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  C.TenantRate = 0.001; // Second request from the tenant is shed ...
  C.TenantBurst = 1;    // ... into passthrough, echoing the big body.
  Daemon D(C);
  ServerConfig SC;
  SC.SendTimeoutMs = 600;
  Server S(D, SC);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  std::thread Loop([&] { S.run(); });

  std::string Huge = "% filler\n" + std::string(6 << 20, 'x');
  {
    // Client one: reads its first (small) response, then sends a request
    // whose degraded passthrough echoes ~6 MiB back — and never reads a
    // byte of it. The server must give up within the send budget.
    TestClient Stalled;
    ASSERT_TRUE(Stalled.connect(S.port()));
    Response Resp;
    ASSERT_TRUE(Stalled.roundTrip(vecRequest(script(8), "wedge"), Resp));
    ASSERT_TRUE(Stalled.sendRaw(serializeRequest(vecRequest(Huge, "wedge"))));

    // Client two: disconnects immediately after sending (EPIPE path).
    {
      TestClient Vanisher;
      ASSERT_TRUE(Vanisher.connect(S.port()));
      ASSERT_TRUE(
          Vanisher.sendRaw(serializeRequest(vecRequest(Huge, "wedge"))));
    } // Destructor closes the socket with the response unread.

    // A healthy client is still served while the other two fail.
    TestClient Healthy;
    ASSERT_TRUE(Healthy.connect(S.port()));
    ASSERT_TRUE(Healthy.roundTrip(vecRequest(script(8), "ok"), Resp));
    EXPECT_EQ(Resp.Code, 200);
  }
  // The real assertion: stop() drains every handler thread, including
  // the two stuck in doomed sends. A wedged thread hangs the join (and
  // the test run), which is exactly the regression this guards.
  S.stop();
  Loop.join();
  SUCCEED();
}

TEST(Server, ShutdownVerbEndsTheAcceptLoop) {
  DaemonConfig C;
  C.Shards = 1;
  C.WorkersPerShard = 1;
  Daemon D(C);
  Server S(D, ServerConfig{});
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  std::thread Loop([&] { S.run(); });
  {
    TestClient Client;
    ASSERT_TRUE(Client.connect(S.port()));
    Request Shutdown;
    Shutdown.V = Verb::Shutdown;
    Response Resp;
    ASSERT_TRUE(Client.roundTrip(Shutdown, Resp));
    EXPECT_EQ(Resp.Code, 200);
  }
  Loop.join(); // run() returns on its own: the drain finished.
  EXPECT_TRUE(D.shutdownRequested());
}

} // namespace
