rows=64;
cols=96;
im=mod(floor(reshape(0:rows*cols-1,rows,cols)/7),64);
h=hist(im(:),[0:255]);
heq=255*cumsum(h(:))/sum(h(:));
im2(1:size(im,1),1:size(im,2))=heq(im(1:size(im,1),1:size(im,2))+1);
fprintf('mean intensity before %g after %g\n',sum(im(:))/numel(im),sum(im2(:))/numel(im2));
