n=12;
A=rand(n,n);
p=zeros(1,n);
p(1:n)=n+1-(1:n);
a=zeros(1,n);
for i=1:n
  a(i)=A(i,p(i));
end
