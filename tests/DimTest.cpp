//===- DimTest.cpp - Dimensionality abstraction unit tests ----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shape/AnnotationParser.h"
#include "shape/Dim.h"
#include "shape/ShapeEnv.h"
#include "shape/ShapeInference.h"

#include "frontend/Parser.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

const DimSymbol One = DimSymbol::one();
const DimSymbol Star = DimSymbol::star();

TEST(DimSymbolTest, Identity) {
  EXPECT_EQ(One, DimSymbol::one());
  EXPECT_EQ(Star, DimSymbol::star());
  EXPECT_NE(One, Star);
  EXPECT_EQ(DimSymbol::range(1), DimSymbol::range(1));
  // r_i and r_j are distinct symbols even with identical bounds (Sec. 2.2).
  EXPECT_NE(DimSymbol::range(1), DimSymbol::range(2));
  // r_i is similar to * but the two are not compatible (Sec. 2.1).
  EXPECT_NE(DimSymbol::range(1), Star);
}

TEST(DimSymbolTest, GreaterThanOne) {
  EXPECT_FALSE(One.isGreaterThanOne());
  EXPECT_TRUE(Star.isGreaterThanOne());
  EXPECT_TRUE(DimSymbol::range(3).isGreaterThanOne());
}

TEST(DimSymbolTest, Printing) {
  EXPECT_EQ(One.str(), "1");
  EXPECT_EQ(Star.str(), "*");
  EXPECT_EQ(DimSymbol::range(2).str(), "r2");
}

TEST(DimensionalityTest, PaddedToTwo) {
  Dimensionality D{Star};
  EXPECT_EQ(D.size(), 2u);
  EXPECT_EQ(D[1], One);
}

TEST(DimensionalityTest, Factories) {
  EXPECT_EQ(Dimensionality::scalar().str(), "(1,1)");
  EXPECT_EQ(Dimensionality::rowVector().str(), "(1,*)");
  EXPECT_EQ(Dimensionality::columnVector().str(), "(*,1)");
  EXPECT_EQ(Dimensionality::matrix().str(), "(*,*)");
}

TEST(DimensionalityTest, ReduceStripsTrailingOnes) {
  // A 5x5 matrix is effectively a 5x5x1 matrix (paper Sec. 2.1).
  Dimensionality A{Star, Star};
  Dimensionality B{Star, Star, One};
  EXPECT_TRUE(compatible(A, B));
  Dimensionality Scalar1{One};
  Dimensionality Scalar2{One, One, One};
  EXPECT_TRUE(compatible(Scalar1, Scalar2));
}

TEST(DimensionalityTest, CompatibilityRequiresSameSymbols) {
  Dimensionality RowI{One, DimSymbol::range(1)};
  Dimensionality RowJ{One, DimSymbol::range(2)};
  Dimensionality RowStar{One, Star};
  EXPECT_FALSE(compatible(RowI, RowJ));
  EXPECT_FALSE(compatible(RowI, RowStar));
  EXPECT_TRUE(compatible(RowI, RowI));
}

TEST(DimensionalityTest, ColumnNotCompatibleWithRow) {
  Dimensionality Col{DimSymbol::range(1), One};
  Dimensionality Row{One, DimSymbol::range(1)};
  EXPECT_FALSE(compatible(Col, Row));
  EXPECT_TRUE(compatible(Col, Row.reversed()));
}

TEST(DimensionalityTest, Reverse) {
  Dimensionality D{DimSymbol::range(1), DimSymbol::range(2)};
  EXPECT_EQ(D.reversed().str(), "(r2,r1)");
}

TEST(DimensionalityTest, FmaxRules) {
  // f_max(1,*) = f_max(*,1) = *, f_max(1,1) = 1, f_max(1,r_i) = r_i.
  EXPECT_EQ(*Dimensionality({One, Star}).fmax(), Star);
  EXPECT_EQ(*Dimensionality({Star, One}).fmax(), Star);
  EXPECT_EQ(*Dimensionality({One, One}).fmax(), One);
  EXPECT_EQ(*Dimensionality({One, DimSymbol::range(4)}).fmax(),
            DimSymbol::range(4));
  EXPECT_EQ(*Dimensionality({DimSymbol::range(4), One}).fmax(),
            DimSymbol::range(4));
  // No single largest dimension for matrix shapes.
  EXPECT_FALSE(Dimensionality({Star, Star}).fmax().has_value());
  EXPECT_FALSE(
      Dimensionality({DimSymbol::range(1), DimSymbol::range(2)}).fmax());
}

TEST(DimensionalityTest, ShapePredicates) {
  EXPECT_TRUE(Dimensionality::scalar().isScalarShape());
  EXPECT_TRUE(Dimensionality::rowVector().isVectorShape());
  EXPECT_FALSE(Dimensionality::rowVector().isScalarShape());
  EXPECT_TRUE(Dimensionality::matrix().isMatrixShape());
  EXPECT_FALSE(Dimensionality::columnVector().isMatrixShape());
}

TEST(DimensionalityTest, ContainsRange) {
  Dimensionality D{DimSymbol::range(7), One};
  EXPECT_TRUE(D.containsRange(7));
  EXPECT_FALSE(D.containsRange(8));
  EXPECT_TRUE(D.containsAnyRange());
  EXPECT_FALSE(Dimensionality::matrix().containsAnyRange());
}

//===----------------------------------------------------------------------===//
// Annotation parsing
//===----------------------------------------------------------------------===//

TEST(AnnotationTest, PaperExample) {
  // "%! i(1) a(1,*) b(*,1) A(*,*)" from Sec. 4.
  DiagnosticEngine Diags;
  ShapeEnv Env;
  parseShapeAnnotation(" i(1) a(1,*) b(*,1) A(*,*)", SourceLoc(), Env, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Env.isScalar("i"));
  EXPECT_EQ(Env.getShape("a")->str(), "(1,*)");
  EXPECT_EQ(Env.getShape("b")->str(), "(*,1)");
  EXPECT_TRUE(Env.isMatrix("A"));
}

TEST(AnnotationTest, SingleStarIsColumnVector) {
  DiagnosticEngine Diags;
  ShapeEnv Env;
  parseShapeAnnotation("h(*)", SourceLoc(), Env, Diags);
  EXPECT_EQ(Env.getShape("h")->str(), "(*,1)");
}

TEST(AnnotationTest, ScalarPadsToTwo) {
  DiagnosticEngine Diags;
  ShapeEnv Env;
  parseShapeAnnotation("i(1)", SourceLoc(), Env, Diags);
  EXPECT_EQ(Env.getShape("i")->str(), "(1,1)");
}

TEST(AnnotationTest, MalformedEntryWarnsAndStops) {
  DiagnosticEngine Diags;
  ShapeEnv Env;
  parseShapeAnnotation("a(1,*) 5(*)", SourceLoc(), Env, Diags);
  EXPECT_TRUE(Env.knows("a"));
  EXPECT_FALSE(Diags.hasErrors()); // warnings only
  EXPECT_FALSE(Diags.diagnostics().empty());
}

TEST(AnnotationTest, FromLexedProgram) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("%! im(*,*) heq(1,*)\nx=1;", Diags);
  ShapeEnv Env = parseShapeAnnotations(R.Annotations, Diags);
  EXPECT_TRUE(Env.isMatrix("im"));
  EXPECT_EQ(Env.getShape("heq")->str(), "(1,*)");
}

//===----------------------------------------------------------------------===//
// Intra-script shape inference
//===----------------------------------------------------------------------===//

ShapeEnv inferOn(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ShapeEnv Env = parseShapeAnnotations(R.Annotations, Diags);
  inferProgramShapes(R.Prog, Env);
  return Env;
}

TEST(ShapeInferenceTest, Constants) {
  ShapeEnv Env = inferOn("x = 3;\ny = -2.5;");
  EXPECT_TRUE(Env.isScalar("x"));
  EXPECT_TRUE(Env.isScalar("y"));
}

TEST(ShapeInferenceTest, Ranges) {
  ShapeEnv Env = inferOn("ind = 1:750;");
  EXPECT_EQ(Env.getShape("ind")->str(), "(1,*)");
}

TEST(ShapeInferenceTest, Builders) {
  ShapeEnv Env = inferOn("A = zeros(10,20);\nv = ones(5,1);\ns = zeros(1,1);");
  EXPECT_TRUE(Env.isMatrix("A"));
  EXPECT_EQ(Env.getShape("v")->str(), "(*,1)");
  EXPECT_TRUE(Env.isScalar("s"));
}

TEST(ShapeInferenceTest, TransposeFlips) {
  ShapeEnv Env = inferOn("v = (1:10)';");
  EXPECT_EQ(Env.getShape("v")->str(), "(*,1)");
}

TEST(ShapeInferenceTest, PointwiseCombination) {
  ShapeEnv Env = inferOn("a = 1:10;\nb = 2*a;\nc = a+b;");
  EXPECT_EQ(Env.getShape("b")->str(), "(1,*)");
  EXPECT_EQ(Env.getShape("c")->str(), "(1,*)");
}

TEST(ShapeInferenceTest, AnnotationWins) {
  ShapeEnv Env = inferOn("%! x(*,1)\nx = 1:10;");
  // The annotation declares a column vector; inference must not override.
  EXPECT_EQ(Env.getShape("x")->str(), "(*,1)");
}

TEST(ShapeInferenceTest, LoopWritesAreNotInferred) {
  ShapeEnv Env = inferOn("for i=1:10, x = i; end");
  EXPECT_FALSE(Env.knows("x"));
}

TEST(ShapeInferenceTest, MatrixLiteralShape) {
  ShapeEnv Env = inferOn("M = [1 2; 3 4];\nr = [1 2 3];\nc = [1;2];");
  EXPECT_TRUE(Env.isMatrix("M"));
  EXPECT_EQ(Env.getShape("r")->str(), "(1,*)");
  EXPECT_EQ(Env.getShape("c")->str(), "(*,1)");
}

TEST(ShapeInferenceTest, HistIsRowVector) {
  ShapeEnv Env = inferOn("h = hist(x,[0:255]);");
  EXPECT_EQ(Env.getShape("h")->str(), "(1,*)");
}

} // namespace
