//===- DepsTest.cpp - Loop nest + dependence analysis tests ----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/DepAnalysis.h"
#include "deps/DepGraph.h"
#include "deps/LoopNest.h"

#include "frontend/ASTPrinter.h"
#include "frontend/Parser.h"
#include "shape/AnnotationParser.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

struct NestFixture {
  DiagnosticEngine Diags;
  ParseResult Parsed;
  ShapeEnv Env;
  ForStmt *Root = nullptr;

  explicit NestFixture(const std::string &Source) {
    Parsed = parseMatlab(Source, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    Env = parseShapeAnnotations(Parsed.Annotations, Diags);
    for (StmtPtr &S : Parsed.Prog.Stmts)
      if (auto *For = dyn_cast<ForStmt>(S.get())) {
        Root = For;
        break;
      }
    EXPECT_NE(Root, nullptr) << "no for loop in source";
  }

  std::optional<LoopNest> nest(std::string *ReasonOut = nullptr) {
    std::string Reason;
    auto Result = buildLoopNest(*Root, Reason);
    if (ReasonOut)
      *ReasonOut = Reason;
    return Result;
  }
};

unsigned countEdges(const DepGraph &G, unsigned Src, unsigned Dst,
                    int Level = -1) {
  unsigned Count = 0;
  for (const DepEdge &E : G.Edges)
    if (E.Src == Src && E.Dst == Dst &&
        (Level < 0 || E.Level == static_cast<unsigned>(Level)))
      ++Count;
  return Count;
}

//===----------------------------------------------------------------------===//
// Affine extraction
//===----------------------------------------------------------------------===//

std::optional<AffineExpr> affineOf(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ExprPtr E = P.parseSingleExpression();
  EXPECT_FALSE(Diags.hasErrors());
  return AffineExpr::fromExpr(*E);
}

TEST(AffineExprTest, Extraction) {
  auto A = affineOf("2*i-1");
  ASSERT_TRUE(A.has_value());
  EXPECT_DOUBLE_EQ(A->coeff("i"), 2);
  EXPECT_DOUBLE_EQ(A->constant(), -1);

  auto B = affineOf("i+j+3");
  ASSERT_TRUE(B.has_value());
  EXPECT_DOUBLE_EQ(B->coeff("i"), 1);
  EXPECT_DOUBLE_EQ(B->coeff("j"), 1);
  EXPECT_DOUBLE_EQ(B->constant(), 3);

  auto C = affineOf("-(i-2)/2");
  ASSERT_TRUE(C.has_value());
  EXPECT_DOUBLE_EQ(C->coeff("i"), -0.5);
  EXPECT_DOUBLE_EQ(C->constant(), 1);

  EXPECT_FALSE(affineOf("i*j").has_value());
  EXPECT_FALSE(affineOf("A(i)").has_value());
  EXPECT_FALSE(affineOf("i^2").has_value());
}

TEST(AffineExprTest, Arithmetic) {
  AffineExpr I = AffineExpr::variable("i");
  AffineExpr Sum = I + AffineExpr(3);
  AffineExpr Diff = Sum - I;
  EXPECT_TRUE(Diff.isConstant());
  EXPECT_DOUBLE_EQ(Diff.constant(), 3);
  EXPECT_DOUBLE_EQ(I.scaled(-2).coeff("i"), -2);
}

TEST(AffineExprTest, ToExprRoundTrip) {
  auto A = affineOf("2*i-1");
  ASSERT_TRUE(A.has_value());
  ExprPtr E = A->toExpr();
  auto B = AffineExpr::fromExpr(*E);
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(*A == *B);
}

//===----------------------------------------------------------------------===//
// Loop nest construction & eligibility
//===----------------------------------------------------------------------===//

TEST(LoopNestTest, SimpleNest) {
  NestFixture F("for i=1:m\n for j=1:n\n  A(i,j)=B(i,j);\n end\nend");
  auto Nest = F.nest();
  ASSERT_TRUE(Nest.has_value());
  ASSERT_EQ(Nest->Loops.size(), 2u);
  EXPECT_EQ(Nest->Loops[0].indexVar(), "i");
  EXPECT_EQ(Nest->Loops[1].indexVar(), "j");
  ASSERT_EQ(Nest->Stmts.size(), 1u);
  EXPECT_EQ(Nest->Stmts[0].Depth, 2u);
}

TEST(LoopNestTest, StatementsAtMultipleDepths) {
  NestFixture F("for i=1:m\n x(i)=1;\n for j=1:n\n  A(i,j)=0;\n end\n"
                " y(i)=2;\nend");
  auto Nest = F.nest();
  ASSERT_TRUE(Nest.has_value());
  ASSERT_EQ(Nest->Stmts.size(), 3u);
  EXPECT_EQ(Nest->Stmts[0].Depth, 1u);
  EXPECT_EQ(Nest->Stmts[1].Depth, 2u);
  EXPECT_EQ(Nest->Stmts[2].Depth, 1u);
  // Source order preserved: x, A, y.
  EXPECT_EQ(Nest->Stmts[0].S->targetName(), "x");
  EXPECT_EQ(Nest->Stmts[1].S->targetName(), "A");
  EXPECT_EQ(Nest->Stmts[2].S->targetName(), "y");
}

TEST(LoopNestTest, RejectsEmbeddedIf) {
  NestFixture F("for i=1:n\n if i>2, x(i)=1; end\nend");
  std::string Reason;
  EXPECT_FALSE(F.nest(&Reason).has_value());
  EXPECT_NE(Reason.find("control"), std::string::npos);
}

TEST(LoopNestTest, RejectsIndexWrite) {
  NestFixture F("for i=1:n\n i=i+1;\nend");
  std::string Reason;
  EXPECT_FALSE(F.nest(&Reason).has_value());
  EXPECT_NE(Reason.find("index variable"), std::string::npos);
}

TEST(LoopNestTest, RejectsSiblingLoops) {
  NestFixture F("for i=1:n\n for j=1:n, A(i,j)=1; end\n"
                " for k=1:n, B(i,k)=1; end\nend");
  std::string Reason;
  EXPECT_FALSE(F.nest(&Reason).has_value());
  EXPECT_NE(Reason.find("sibling"), std::string::npos);
}

TEST(LoopNestTest, RejectsNonRangeBounds) {
  NestFixture F("for i=v\n x(i)=1;\nend");
  std::string Reason;
  EXPECT_FALSE(F.nest(&Reason).has_value());
}

TEST(LoopNestTest, RejectsCallStatement) {
  NestFixture F("for i=1:n\n disp(i);\nend");
  std::string Reason;
  EXPECT_FALSE(F.nest(&Reason).has_value());
}

TEST(LoopNestTest, RejectsBoundsWrittenInside) {
  NestFixture F("for i=1:n\n n=n+1;\nend");
  std::string Reason;
  EXPECT_FALSE(F.nest(&Reason).has_value());
  EXPECT_NE(Reason.find("depend"), std::string::npos);
}

TEST(LoopNestTest, TriangularBoundsAffine) {
  NestFixture F("for k=1:p\n for j=1:(i-1)\n  X(i,k)=X(i,k)-X(j,k);\n "
                "end\nend");
  auto Nest = F.nest();
  ASSERT_TRUE(Nest.has_value());
  ASSERT_TRUE(Nest->Loops[1].StopAffine.has_value());
  EXPECT_DOUBLE_EQ(Nest->Loops[1].StopAffine->coeff("i"), 1);
  EXPECT_DOUBLE_EQ(Nest->Loops[1].StopAffine->constant(), -1);
}

//===----------------------------------------------------------------------===//
// Normalization
//===----------------------------------------------------------------------===//

TEST(NormalizationTest, StrideTwoLoop) {
  NestFixture F("for i=2:2:1500\n B(i,1)=D(i,i);\nend");
  normalizeLoopIndices(*F.Root);
  std::string Printed = printStmt(*F.Root);
  EXPECT_NE(Printed.find("for i=1:750"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("B(2*i,1)=D(2*i,2*i);"), std::string::npos)
      << Printed;
}

TEST(NormalizationTest, OffsetUnitLoopSymbolicBound) {
  NestFixture F("for i=3:n\n x(i)=1;\nend");
  normalizeLoopIndices(*F.Root);
  std::string Printed = printStmt(*F.Root);
  EXPECT_NE(Printed.find("for i=1:n-2"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("x(i+2)=1;"), std::string::npos) << Printed;
}

TEST(NormalizationTest, AlreadyNormalizedUntouched) {
  NestFixture F("for i=1:n\n x(i)=i;\nend");
  std::string Before = printStmt(*F.Root);
  normalizeLoopIndices(*F.Root);
  EXPECT_EQ(printStmt(*F.Root), Before);
}

TEST(NormalizationTest, SymbolicStepLeftAlone) {
  NestFixture F("for i=1:s:n\n x(i)=i;\nend");
  std::string Before = printStmt(*F.Root);
  normalizeLoopIndices(*F.Root);
  EXPECT_EQ(printStmt(*F.Root), Before);
}

TEST(NormalizationTest, NestedLoopsBothNormalized) {
  NestFixture F("for i=2:2:1500\n for j=3:2:1501\n  A(i,j)=a(2*i-1);\n "
                "end\nend");
  normalizeLoopIndices(*F.Root);
  std::string Printed = printStmt(*F.Root);
  EXPECT_NE(Printed.find("for i=1:750"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("for j=1:750"), std::string::npos) << Printed;
  // a(2*i-1) with i -> 2*i becomes a(2*(2*i)-1) = a(4*i-1).
  EXPECT_NE(Printed.find("A(2*i,2*j+1)=a(2*(2*i)-1);"), std::string::npos)
      << Printed;
}

//===----------------------------------------------------------------------===//
// Dependence analysis
//===----------------------------------------------------------------------===//

DepGraph graphFor(NestFixture &F) {
  auto Nest = F.nest();
  EXPECT_TRUE(Nest.has_value());
  return buildDepGraph(*Nest, F.Env);
}

TEST(DepAnalysisTest, IndependentStatementHasNoSelfEdge) {
  NestFixture F("%! im(*,*) im2(*,*) heq(1,*)\n"
                "for i=1:m\n for j=1:n\n  im2(i,j)=heq(im(i,j)+1);\n "
                "end\nend");
  DepGraph G = graphFor(F);
  EXPECT_EQ(countEdges(G, 0, 0), 0u) << G.str();
}

TEST(DepAnalysisTest, ScalarAccumulatorCarriesAllLevels) {
  NestFixture F("%! s(1)\nfor i=1:n\n s=s+i;\nend");
  DepGraph G = graphFor(F);
  // Whole-variable write+read of s: carried self-dependence at level 1.
  EXPECT_GE(countEdges(G, 0, 0, 1), 1u) << G.str();
}

TEST(DepAnalysisTest, ArrayAccumulatorCarriedByMissingLoopOnly) {
  NestFixture F("%! X(*,*) L(*,*) i(1)\n"
                "for k=1:p\n for j=1:(i-1)\n  "
                "X(i,k)=X(i,k)-L(i,j)*X(j,k);\n end\nend");
  DepGraph G = graphFor(F);
  // The accumulation on X(i,k) is carried by j (level 2) only...
  EXPECT_GE(countEdges(G, 0, 0, 2), 1u) << G.str();
  // ...and the X(j,k) read never aliases X(i,k) because j <= i-1 < i.
  EXPECT_EQ(countEdges(G, 0, 0, 1), 0u) << G.str();
}

TEST(DepAnalysisTest, StrongSivDistanceCarriesLoop) {
  NestFixture F("%! v(1,*)\nfor i=1:n\n v(i)=v(i-1)+1;\nend");
  DepGraph G = graphFor(F);
  // v(i) written, v(i-1) read: distance 1 flow dependence carried by i.
  EXPECT_GE(countEdges(G, 0, 0, 1), 1u) << G.str();
}

TEST(DepAnalysisTest, GcdDisprovesOddEven) {
  NestFixture F("%! v(1,*)\nfor i=1:n\n v(2*i)=v(2*i+1)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_EQ(G.Edges.size(), 0u) << G.str();
}

TEST(DepAnalysisTest, DistinctConstantColumnsIndependent) {
  NestFixture F("%! A(*,*)\nfor i=1:n\n A(i,1)=A(i,2)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_EQ(G.Edges.size(), 0u) << G.str();
}

TEST(DepAnalysisTest, Fig4CrossStatementEdge) {
  NestFixture F(
      "%! A(*,*) B(*,*) C(*,*) D(*,*) a(1,*) ind(1,*)\n"
      "for i=1:750\n"
      " B(2*i,1)=D(2*i,2*i)*A(2*i,2*i)+C(2*i,:)*D(:,2*i);\n"
      " for j=1:750\n"
      "  A(2*i,2*j+1)=B(2*i,ind)*C(ind,2*j+1)+D(2*j+1,2*i)'-a(2*(2*i)-1);\n"
      " end\n"
      "end");
  DepGraph G = graphFor(F);
  // S0 writes B(2i,1); S1 reads B(2i,ind): loop-independent edge S0 -> S1.
  EXPECT_GE(countEdges(G, 0, 1, 0), 1u) << G.str();
  // No reverse edge that would force S1 before S0 at any level:
  EXPECT_EQ(countEdges(G, 1, 0), 0u) << G.str();
  // S1's write to A(2i, 2j+1) vs S0's read A(2i,2i): columns odd vs even.
  // (Covered by the absence of 1->0 edges above.)
}

TEST(DepAnalysisTest, FlowBetweenStatements) {
  NestFixture F("%! x(1,*) y(1,*)\nfor i=1:n\n x(i)=i;\n y(i)=x(i);\nend");
  DepGraph G = graphFor(F);
  EXPECT_GE(countEdges(G, 0, 1, 0), 1u) << G.str();
  EXPECT_EQ(countEdges(G, 1, 0), 0u) << G.str();
}

TEST(DepAnalysisTest, AntiDependenceReversed) {
  NestFixture F("%! x(1,*) y(1,*)\nfor i=1:n\n y(i)=x(i+1);\n x(i)=0;\nend");
  DepGraph G = graphFor(F);
  // x(i+1) read at iteration i, x(i) written at iteration i+1: anti
  // dependence from S0 to S1 carried by the loop.
  bool FoundAnti = false;
  for (const DepEdge &E : G.Edges)
    if (E.Src == 0 && E.Dst == 1 && E.Kind == DepKind::Anti)
      FoundAnti = true;
  EXPECT_TRUE(FoundAnti) << G.str();
}

TEST(DepAnalysisTest, NegativeStepFlowDirectionFollowsExecutionOrder) {
  // Reverse loop: the iteration with value i runs BEFORE the one with
  // value i-1, so the write x(i) precedes the read x(i+1) that aliases
  // it and the carried edge is a Flow from S0 to S1. Orienting the
  // strong-SIV direction in index-value space instead of execution
  // order used to reverse this into an edge forcing S1 first, and loop
  // distribution then emitted the reading loop before the write.
  NestFixture F("%! x(1,*) y(1)\nfor i=n:-1:1\n x(i)=1;\n y=x(i+1);\nend");
  DepGraph G = graphFor(F);
  bool FoundFlow = false;
  for (const DepEdge &E : G.Edges)
    if (E.Src == 0 && E.Dst == 1 && E.Kind == DepKind::Flow)
      FoundFlow = true;
  EXPECT_TRUE(FoundFlow) << G.str();
  EXPECT_EQ(countEdges(G, 1, 0), 0u) << G.str();
}

TEST(DepAnalysisTest, UnknownSubscriptIsConservative) {
  NestFixture F("%! x(1,*) k(1,*)\nfor i=1:n\n x(k(i))=x(i)+1;\nend");
  DepGraph G = graphFor(F);
  // Write through x(k(i)) may alias any read x(i): carried self edges.
  EXPECT_GE(countEdges(G, 0, 0, 1), 1u) << G.str();
}

//===----------------------------------------------------------------------===//
// SCC + topological order
//===----------------------------------------------------------------------===//

TEST(SCCTest, ChainIsTopologicallyOrdered) {
  DepGraph G;
  G.NumNodes = 3;
  G.Edges.push_back(DepEdge{2, 1, 0, DepKind::Flow, "a"});
  G.Edges.push_back(DepEdge{1, 0, 0, DepKind::Flow, "b"});
  auto Comps = stronglyConnectedComponents(G, 1);
  ASSERT_EQ(Comps.size(), 3u);
  EXPECT_EQ(Comps[0][0], 2u);
  EXPECT_EQ(Comps[1][0], 1u);
  EXPECT_EQ(Comps[2][0], 0u);
}

TEST(SCCTest, CycleGroupsTogether) {
  DepGraph G;
  G.NumNodes = 3;
  G.Edges.push_back(DepEdge{0, 1, 1, DepKind::Flow, "a"});
  G.Edges.push_back(DepEdge{1, 0, 1, DepKind::Anti, "a"});
  G.Edges.push_back(DepEdge{1, 2, 0, DepKind::Flow, "b"});
  auto Comps = stronglyConnectedComponents(G, 1);
  ASSERT_EQ(Comps.size(), 2u);
  EXPECT_EQ(Comps[0], (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(Comps[1], (std::vector<unsigned>{2}));
}

TEST(SCCTest, LevelFilterBreaksCycle) {
  DepGraph G;
  G.NumNodes = 2;
  G.Edges.push_back(DepEdge{0, 1, 0, DepKind::Flow, "a"});
  G.Edges.push_back(DepEdge{1, 0, 1, DepKind::Anti, "a"});
  // With level-1 edges included: one SCC.
  EXPECT_EQ(stronglyConnectedComponents(G, 1).size(), 1u);
  // After peeling loop 1, only the loop-independent edge remains.
  auto Comps = stronglyConnectedComponents(G, 2);
  ASSERT_EQ(Comps.size(), 2u);
  EXPECT_EQ(Comps[0][0], 0u);
}

TEST(SCCTest, IndependentNodesFollowSourceOrder) {
  DepGraph G;
  G.NumNodes = 4;
  auto Comps = stronglyConnectedComponents(G, 1);
  ASSERT_EQ(Comps.size(), 4u);
  for (unsigned I = 0; I != 4; ++I)
    EXPECT_EQ(Comps[I][0], I);
}

TEST(SCCTest, SelfRecurrenceDetection) {
  DepGraph G;
  G.NumNodes = 2;
  G.Edges.push_back(DepEdge{0, 0, 2, DepKind::Flow, "s"});
  EXPECT_TRUE(hasSelfRecurrence(G, 0, 1));
  EXPECT_TRUE(hasSelfRecurrence(G, 0, 2));
  EXPECT_FALSE(hasSelfRecurrence(G, 0, 3));
  EXPECT_FALSE(hasSelfRecurrence(G, 1, 1));
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// SIV refinements
//===----------------------------------------------------------------------===//

TEST(DepAnalysisTest, WeakZeroSivFractionalPointDisproved) {
  // v(2*i) written, v(3) read: 2*i == 3 has no integer solution.
  NestFixture F("%! v(1,*)\nfor i=1:n\n v(2*i)=v(3)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_EQ(countEdges(G, 0, 0), 0u) << G.str();
}

TEST(DepAnalysisTest, WeakZeroSivOutOfBoundsDisproved) {
  // v(i) written for i in 1..8, v(12) read: iteration 12 never runs.
  NestFixture F("%! v(1,*)\nfor i=1:8\n v(i)=v(12)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_EQ(countEdges(G, 0, 0), 0u) << G.str();
}

TEST(DepAnalysisTest, WeakZeroSivInBoundsIsConservative) {
  // v(3) is written in iteration 3: a genuine (one-point) recurrence.
  NestFixture F("%! v(1,*)\nfor i=1:8\n v(i)=v(3)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_GE(countEdges(G, 0, 0), 1u) << G.str();
}

TEST(DepAnalysisTest, StrongSivDistanceBeyondTripCountDisproved) {
  // Distance 50 in an 8-iteration loop cannot be realized.
  NestFixture F("%! v(1,*)\nfor i=1:8\n v(i)=v(i+50)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_EQ(countEdges(G, 0, 0), 0u) << G.str();
}

TEST(DepAnalysisTest, StrongSivDistanceWithinTripCountKept) {
  NestFixture F("%! v(1,*)\nfor i=1:8\n v(i)=v(i+5)+1;\nend");
  DepGraph G = graphFor(F);
  EXPECT_GE(countEdges(G, 0, 0), 1u) << G.str();
}

} // namespace
