//===- FuzzTest.cpp - Fuzzing subsystem unit tests -------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Units for the pieces of mvec::fuzz that the end-to-end fuzzer and the
/// PropertyTest sweeps build on: bit-stable generation and mutation,
/// verdict classification, bucket normalization, corpus persistence and
/// replay, and reducer convergence.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"
#include "fuzz/Reducer.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <set>

using namespace mvec;
using namespace mvec::fuzz;

namespace {

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, IdenticalSeedsProduceIdenticalPrograms) {
  for (uint64_t Seed = 0; Seed != 64; ++Seed) {
    GenProgram A = Generator(Seed).next();
    GenProgram B = Generator(Seed).next();
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Family, B.Family) << "seed " << Seed;
    EXPECT_EQ(A.ExpectVectorized, B.ExpectVectorized) << "seed " << Seed;
  }
}

TEST(FuzzGenerator, EveryFamilyParsesAndVectorizes) {
  for (unsigned Family = 0; Family != Generator::NumFamilies; ++Family) {
    for (uint64_t Seed = 0; Seed != 8; ++Seed) {
      GenProgram P = Generator(Seed).generate(Family);
      EXPECT_FALSE(P.Family.empty());
      PipelineResult R = vectorizeSource(P.Source);
      EXPECT_TRUE(R.succeeded())
          << "family " << P.Family << " seed " << Seed << "\n"
          << R.Diags.str() << "\n--- source ---\n"
          << P.Source;
    }
  }
}

TEST(FuzzGenerator, DistinctSeedsVaryThePrograms) {
  // Not a hard guarantee per pair, but across a window the generator
  // must not collapse to one program.
  std::set<std::string> Sources;
  for (uint64_t Seed = 0; Seed != 32; ++Seed)
    Sources.insert(Generator(Seed).next().Source);
  EXPECT_GT(Sources.size(), 16u);
}

//===----------------------------------------------------------------------===//
// Mutator
//===----------------------------------------------------------------------===//

TEST(FuzzMutator, IdenticalSeedsProduceIdenticalMutants) {
  std::string Base = Generator(11).next().Source;
  std::string Donor = Generator(12).next().Source;
  for (uint64_t Seed = 0; Seed != 32; ++Seed) {
    Mutant A = Mutator(Seed).mutate(Base, &Donor);
    Mutant B = Mutator(Seed).mutate(Base, &Donor);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Trace, B.Trace) << "seed " << Seed;
  }
}

TEST(FuzzMutator, MutantsCarryATrace) {
  std::string Base = Generator(3).next().Source;
  unsigned Changed = 0;
  for (uint64_t Seed = 0; Seed != 16; ++Seed) {
    Mutant M = Mutator(Seed).mutate(Base);
    if (M.Source != Base) {
      ++Changed;
      EXPECT_FALSE(M.Trace.empty());
    }
  }
  // A generated loop nest offers plenty of mutation points.
  EXPECT_GT(Changed, 8u);
}

//===----------------------------------------------------------------------===//
// Verdict classification
//===----------------------------------------------------------------------===//

JobResult makeResult(JobStatus Status, const std::string &Message) {
  JobResult R;
  R.Status = Status;
  R.Message = Message;
  return R;
}

TEST(FuzzOracle, ClassifyJobSuccessIsOk) {
  EXPECT_TRUE(Oracle::classifyJob(makeResult(JobStatus::Succeeded, "")).ok());
}

TEST(FuzzOracle, ClassifyJobBlamesTheInputWhenTheOriginalFails) {
  Verdict V = Oracle::classifyJob(makeResult(
      JobStatus::Failed,
      "validation failed: original program failed: subscript out of range"));
  EXPECT_TRUE(V.rejected());
  // Pipeline diagnostics (parse errors etc.) are also the input's fault.
  EXPECT_TRUE(Oracle::classifyJob(
                  makeResult(JobStatus::Failed, "3:1: error: expected 'end'"))
                  .rejected());
  // So is a slow original.
  EXPECT_TRUE(Oracle::classifyJob(
                  makeResult(JobStatus::TimedOut,
                             "validation timed out: original program "
                             "exceeded the deadline"))
                  .rejected());
}

TEST(FuzzOracle, ClassifyJobMismatchBucketsOnTheDivergentVariable) {
  Verdict V = Oracle::classifyJob(
      makeResult(JobStatus::Failed,
                 "validation failed: variable 's' differs: 1.5 vs 2.5"));
  ASSERT_TRUE(V.isFinding());
  EXPECT_EQ(V.F.Kind, FindingKind::Mismatch);
  EXPECT_EQ(V.F.Bucket, "mismatch:var:s");

  Verdict Missing = Oracle::classifyJob(makeResult(
      JobStatus::Failed,
      "validation failed: variable 't' missing after transformation"));
  ASSERT_TRUE(Missing.isFinding());
  EXPECT_EQ(Missing.F.Bucket, "mismatch:missing:t");
}

TEST(FuzzOracle, ClassifyJobTransformedFailuresAreFindings) {
  Verdict V = Oracle::classifyJob(
      makeResult(JobStatus::Failed, "validation failed: transformed program "
                                    "failed: index 7 out of bounds"));
  ASSERT_TRUE(V.isFinding());
  EXPECT_EQ(V.F.Kind, FindingKind::TransformedRunError);
  EXPECT_EQ(V.F.Bucket, "trun:index # out of bounds");
}

TEST(FuzzOracle, ClassifyJobHangs) {
  Verdict V = Oracle::classifyJob(
      makeResult(JobStatus::TimedOut, "validation timed out: transformed "
                                      "program exceeded the deadline"));
  ASSERT_TRUE(V.isFinding());
  EXPECT_EQ(V.F.Kind, FindingKind::Hang);
  EXPECT_EQ(V.F.Bucket, "hang:transformed");

  Verdict Crash = Oracle::classifyJob(
      makeResult(JobStatus::Failed, "internal error: unexpected node"));
  ASSERT_TRUE(Crash.isFinding());
  EXPECT_EQ(Crash.F.Kind, FindingKind::Crash);
}

TEST(FuzzOracle, NormalizeForBucketStabilizesDigitsAndSpace) {
  EXPECT_EQ(Oracle::normalizeForBucket("index 123 of 456\n  out of range"),
            "index # of # out of range");
  EXPECT_EQ(Oracle::normalizeForBucket("  spaced   "), "spaced");
  // Long messages are capped so buckets stay short and stable.
  EXPECT_LE(Oracle::normalizeForBucket(std::string(400, 'x')).size(), 96u);
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

TEST(FuzzCorpus, RoundTripsEntriesThroughDisk) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "mvec-fuzz-corpus";
  std::filesystem::remove_all(Dir);

  Corpus C(Dir.string());
  EXPECT_EQ(C.load(), 0u); // missing directory = empty corpus

  Finding F;
  F.Kind = FindingKind::Mismatch;
  F.Bucket = "mismatch:var:s";
  F.Family = "reduction";
  std::string Path = C.add(F, "s = 1;\n");
  ASSERT_FALSE(Path.empty());
  // Same bucket again is a duplicate: nothing written.
  EXPECT_EQ(C.add(F, "s = 2;\n"), "");

  Corpus Reloaded(Dir.string());
  ASSERT_EQ(Reloaded.load(), 1u);
  const CorpusEntry &E = Reloaded.entries()[0];
  EXPECT_EQ(E.Bucket, "mismatch:var:s");
  EXPECT_EQ(E.Kind, FindingKind::Mismatch);
  EXPECT_FALSE(E.Fixed); // add() writes open entries
  EXPECT_TRUE(Reloaded.containsBucket("mismatch:var:s"));
  EXPECT_FALSE(Reloaded.containsBucket("mismatch:var:t"));

  std::filesystem::remove_all(Dir);
}

TEST(FuzzCorpus, SlugifyIsFilesystemSafe) {
  EXPECT_EQ(Corpus::slugify("mismatch:var:s"), "mismatch-var-s");
  EXPECT_EQ(Corpus::slugify("trun:index # out of bounds"),
            "trun-index-out-of-bounds");
  EXPECT_EQ(Corpus::slugify(""), "finding");
}

TEST(FuzzCorpus, ReplayFlagsRegressedFixedEntries) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "mvec-fuzz-replay";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  auto WriteEntry = [&](const std::string &Name, const std::string &Status,
                        const std::string &Body) {
    std::ofstream Out(Dir / (Name + ".m"));
    Out << "% fuzz-finding: kind=mismatch status=" << Status << "\n"
        << "% bucket: " << Name << "\n"
        << Body;
  };
  // A healthy fixed entry: runs and matches.
  WriteEntry("fixed-good", "fixed",
             "n = 3;\nx = rand(1,n);\nz = zeros(1,n);\n"
             "%! x(1,*) z(1,*) n(1)\nfor i=1:n\n  z(i) = x(i);\nend\n");
  // A rotten fixed entry: no longer a valid program.
  WriteEntry("fixed-rotten", "fixed", "for i=1:\n");
  // An open entry may keep failing without regressing.
  WriteEntry("open-known", "open", "for i=1:\n");

  Corpus C(Dir.string());
  ASSERT_EQ(C.load(), 3u);
  OracleConfig Config;
  Config.Jobs = 1;
  Oracle O(Config);
  std::vector<ReplayResult> Results = C.replay(O);
  ASSERT_EQ(Results.size(), 3u);
  for (const ReplayResult &R : Results) {
    if (R.Entry->Name == "fixed-good")
      EXPECT_FALSE(R.Regressed) << R.V.F.Message;
    else if (R.Entry->Name == "fixed-rotten")
      EXPECT_TRUE(R.Regressed);
    else
      EXPECT_FALSE(R.Regressed); // open entries never regress
  }

  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(FuzzReducer, CountTokensIsStableUnderWhitespace) {
  EXPECT_EQ(countTokens("a = b + 1;"), countTokens("a=b+1;"));
  EXPECT_GT(countTokens("a = b + 1;"), countTokens("a = 1;"));
  EXPECT_EQ(countTokens(""), 0u);
}

TEST(FuzzReducer, ReturnsInputWhenPredicateDoesNotHold) {
  ReduceResult R = reduceProgram("a = 1;\n",
                                 [](const std::string &) { return false; });
  // One check establishes the input itself does not fail; nothing shrinks.
  EXPECT_EQ(R.Reduced, "a = 1;\n");
  EXPECT_EQ(R.ReducedTokens, R.OriginalTokens);
  EXPECT_LE(R.Checks, 1u);
}

TEST(FuzzReducer, ConvergesToAFractionOfTheInput) {
  // A bloated program whose "defect" is the lone statement mentioning
  // qq. The reducer must strip everything else (statements, loop
  // wrappers, annotations) while the predicate keeps holding.
  std::string Source = "%! aa(1,*) bb(1,*) cc(*,*) dd(1) qq(1)\n";
  Source += "aa = rand(1,9);\nbb = zeros(1,9);\ncc = rand(9,9);\n";
  for (int I = 1; I <= 6; ++I) {
    std::string N = std::to_string(I);
    Source += "dd = " + N + "*2+1;\n";
    Source += "bb(" + N + ") = aa(" + N + ")*dd;\n";
  }
  Source += "for i=1:9\n  bb(i) = aa(i)+cc(i,i);\nend\n";
  Source += "qq = 41+1;\n";
  Source += "for i=1:9\n  for j=1:9\n    cc(i,j) = aa(j)*bb(i);\n  end\n"
            "end\n";

  auto StillFails = [](const std::string &S) {
    return S.find("qq") != std::string::npos;
  };
  ASSERT_TRUE(StillFails(Source));

  ReduceResult R = reduceProgram(Source, StillFails);
  EXPECT_TRUE(StillFails(R.Reduced)) << R.Reduced;
  EXPECT_GT(R.Checks, 0u);
  // Convergence bar: at most 20% of the original tokens survive.
  EXPECT_LE(R.ReducedTokens * 5, R.OriginalTokens)
      << "reduced from " << R.OriginalTokens << " to " << R.ReducedTokens
      << " tokens:\n"
      << R.Reduced;
  // The reduced program is still a valid program (reduction candidates
  // are printed ASTs, so anything accepted parses).
  EXPECT_TRUE(vectorizeSource(R.Reduced).succeeded()) << R.Reduced;

  // And reduction is converged: a second pass finds nothing to shrink.
  ReduceResult Again = reduceProgram(R.Reduced, StillFails);
  EXPECT_EQ(Again.ReducedTokens, R.ReducedTokens) << Again.Reduced;
}

} // namespace
