//===- LexerTest.cpp - Lexer unit tests ------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

std::vector<Token> lex(const std::string &Source,
                       DiagnosticEngine *DiagsOut = nullptr) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (DiagsOut)
    *DiagsOut = Diags;
  else
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Numbers) {
  auto Tokens = lex("1 2.5 .25 1e3 2.5e-2 7E+2");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 1);
  EXPECT_DOUBLE_EQ(Tokens[1].NumValue, 2.5);
  EXPECT_DOUBLE_EQ(Tokens[2].NumValue, 0.25);
  EXPECT_DOUBLE_EQ(Tokens[3].NumValue, 1000);
  EXPECT_DOUBLE_EQ(Tokens[4].NumValue, 0.025);
  EXPECT_DOUBLE_EQ(Tokens[5].NumValue, 700);
}

TEST(LexerTest, NumberDoesNotEatDotStar) {
  auto Tokens = lex("2.*x");
  ASSERT_GE(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 2);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::DotStar);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lex("for end if elseif else while foo_1 Bar");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwFor);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwEnd);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwElseIf);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwElse);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[6].Text, "foo_1");
  EXPECT_EQ(Tokens[7].Text, "Bar");
}

TEST(LexerTest, TwoCharOperators) {
  auto Tokens = lex("a==b~=c<=d>=e&&f||g.*h./k.^m");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::EqEq,       TokenKind::Identifier,
      TokenKind::NotEq,      TokenKind::Identifier, TokenKind::Le,
      TokenKind::Identifier, TokenKind::Ge,         TokenKind::Identifier,
      TokenKind::AmpAmp,     TokenKind::Identifier, TokenKind::PipePipe,
      TokenKind::Identifier, TokenKind::DotStar,    TokenKind::Identifier,
      TokenKind::DotSlash,   TokenKind::Identifier, TokenKind::DotCaret,
      TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(LexerTest, QuoteAfterIdentIsTranspose) {
  auto Tokens = lex("A'");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Quote);
}

TEST(LexerTest, QuoteAfterParenIsTranspose) {
  auto Tokens = lex("(a+b)'");
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Quote);
}

TEST(LexerTest, QuoteAtStatementStartIsString) {
  auto Tokens = lex("x = 'hello'");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[2].Text, "hello");
}

TEST(LexerTest, StringWithEscapedQuote) {
  auto Tokens = lex("x = 'it''s'");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[2].Text, "it's");
}

TEST(LexerTest, DoubleTranspose) {
  auto Tokens = lex("A''");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Quote);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Quote);
}

TEST(LexerTest, DotQuoteTranspose) {
  auto Tokens = lex("A.'");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::DotQuote);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Tokens = lex("a % this is a comment\nb");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Newline,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(LexerTest, AnnotationCommentsAreCollected) {
  DiagnosticEngine Diags;
  Lexer Lex("%! i(1) A(*,*)\nx=1;", Diags);
  Lex.lexAll();
  ASSERT_EQ(Lex.annotations().size(), 1u);
  EXPECT_EQ(Lex.annotations()[0].Text, " i(1) A(*,*)");
  EXPECT_EQ(Lex.annotations()[0].Loc.Line, 1u);
}

TEST(LexerTest, ContinuationJoinsLines) {
  auto Tokens = lex("a + ...\n b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Plus,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(LexerTest, SourceLocations) {
  auto Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[2].Loc.Line, 2u);
  EXPECT_EQ(Tokens[2].Loc.Col, 3u);
}

TEST(LexerTest, PrecededBySpaceFlag) {
  auto Tokens = lex("[a -b]");
  // '-' has a space before it and none after.
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Minus);
  EXPECT_TRUE(Tokens[2].PrecededBySpace);
  EXPECT_FALSE(Tokens[3].PrecededBySpace);
}

TEST(LexerTest, UnterminatedStringIsError) {
  DiagnosticEngine Diags;
  lex("x = 'oops", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnknownCharacterIsError) {
  DiagnosticEngine Diags;
  lex("a # b", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, SemicolonsAndCommas) {
  auto Tokens = lex("a;b,c");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Semicolon, TokenKind::Identifier,
      TokenKind::Comma,      TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

} // namespace
