//===- PatternTest.cpp - Pattern database unit tests -----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "patterns/PatternDatabase.h"
#include "patterns/PluginAPI.h"

#include "frontend/ASTPrinter.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

const DimSymbol One = DimSymbol::one();
const DimSymbol Star = DimSymbol::star();
const DimSymbol R1 = DimSymbol::range(1);
const DimSymbol R2 = DimSymbol::range(2);

//===----------------------------------------------------------------------===//
// Shape matching / unification
//===----------------------------------------------------------------------===//

TEST(PatternShapeTest, LiteralMatch) {
  PatternBindings B;
  EXPECT_TRUE(matchShape({PatternDim::one(), PatternDim::star()},
                         Dimensionality{One, Star}, B));
  EXPECT_FALSE(matchShape({PatternDim::one(), PatternDim::one()},
                          Dimensionality{One, Star}, B));
  EXPECT_FALSE(matchShape({PatternDim::star(), PatternDim::star()},
                          Dimensionality{One, Star}, B));
}

TEST(PatternShapeTest, StarDoesNotMatchRange) {
  // * and r_i are distinct symbols (paper Sec. 2.1).
  PatternBindings B;
  EXPECT_FALSE(matchShape({PatternDim::star()}, Dimensionality{R1, One}, B));
}

TEST(PatternShapeTest, VariableBindsRange) {
  PatternBindings B;
  ASSERT_TRUE(matchShape({PatternDim::var(1), PatternDim::star()},
                         Dimensionality{R1, Star}, B));
  EXPECT_EQ(*B.lookup(1), 1u);
}

TEST(PatternShapeTest, VariableConsistencyAcrossOperands) {
  // (r1,*) x (*,r1): both r1 occurrences must be the same loop.
  PatternBindings B;
  ASSERT_TRUE(matchShape({PatternDim::var(1), PatternDim::star()},
                         Dimensionality{R1, Star}, B));
  EXPECT_TRUE(matchShape({PatternDim::star(), PatternDim::var(1)},
                         Dimensionality{Star, R1}, B));
  PatternBindings B2;
  ASSERT_TRUE(matchShape({PatternDim::var(1), PatternDim::star()},
                         Dimensionality{R1, Star}, B2));
  EXPECT_FALSE(matchShape({PatternDim::star(), PatternDim::var(1)},
                          Dimensionality{Star, R2}, B2));
}

TEST(PatternShapeTest, DistinctVariablesNeedDistinctLoops) {
  PatternBindings B;
  EXPECT_FALSE(matchShape({PatternDim::var(1), PatternDim::var(2)},
                          Dimensionality{R1, R1}, B));
  PatternBindings B2;
  EXPECT_TRUE(matchShape({PatternDim::var(1), PatternDim::var(2)},
                         Dimensionality{R1, R2}, B2));
}

TEST(PatternShapeTest, RepeatedVariableNeedsSameLoop) {
  PatternBindings B;
  EXPECT_TRUE(matchShape({PatternDim::var(1), PatternDim::var(1)},
                         Dimensionality{R1, R1}, B));
  PatternBindings B2;
  EXPECT_FALSE(matchShape({PatternDim::var(1), PatternDim::var(1)},
                          Dimensionality{R1, R2}, B2));
}

TEST(PatternShapeTest, TrailingOnesIgnored) {
  PatternBindings B;
  EXPECT_TRUE(matchShape({PatternDim::var(1)}, Dimensionality{R1, One}, B));
  PatternBindings B2;
  EXPECT_TRUE(matchShape({PatternDim::var(1), PatternDim::one()},
                         Dimensionality{R1}, B2));
}

TEST(PatternShapeTest, Instantiate) {
  PatternBindings B;
  B.VarToLoop[1] = 7;
  Dimensionality D = instantiateShape(
      {PatternDim::one(), PatternDim::var(1)}, B);
  EXPECT_EQ(D.str(), "(1,r7)");
}

//===----------------------------------------------------------------------===//
// Database lookup
//===----------------------------------------------------------------------===//

TEST(PatternDatabaseTest, BuiltinsRegistered) {
  PatternDatabase DB = makeDefaultPatternDatabase();
  EXPECT_GE(DB.numBinaryPatterns(), 8u);
  EXPECT_GE(DB.numAccessPatterns(), 1u);
}

TEST(PatternDatabaseTest, DotProductMatch) {
  PatternDatabase DB = makeDefaultPatternDatabase();
  auto Match = DB.matchBinary(BinaryOp::Mul, Dimensionality{R1, Star},
                              Dimensionality{Star, R1});
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Pattern->Name, "dot-product");
  EXPECT_EQ(Match->OutDims.str(), "(1,r1)");
}

TEST(PatternDatabaseTest, GeneralMatmulForDistinctRanges) {
  PatternDatabase DB = makeDefaultPatternDatabase();
  auto Match = DB.matchBinary(BinaryOp::Mul, Dimensionality{R1, Star},
                              Dimensionality{Star, R2});
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Pattern->Name, "matmul");
  EXPECT_EQ(Match->OutDims.str(), "(r1,r2)");
}

TEST(PatternDatabaseTest, BroadcastMatchesAnyPointwiseOp) {
  PatternDatabase DB = makeDefaultPatternDatabase();
  for (BinaryOp Op : {BinaryOp::Add, BinaryOp::Sub, BinaryOp::DotMul}) {
    auto Match = DB.matchBinary(Op, Dimensionality{R1, R2},
                                Dimensionality{R1, One});
    ASSERT_TRUE(Match.has_value()) << binaryOpSpelling(Op);
    EXPECT_EQ(Match->OutDims.str(), "(r1,r2)");
  }
  // ...but not the matrix product operator.
  EXPECT_FALSE(DB.matchBinary(BinaryOp::Mul, Dimensionality{R1, R2},
                              Dimensionality{R1, One}));
}

TEST(PatternDatabaseTest, DiagonalAccessMatch) {
  PatternDatabase DB = makeDefaultPatternDatabase();
  auto Match = DB.matchAccess(Dimensionality{R1, R1});
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Pattern->Name, "diagonal-access");
  EXPECT_EQ(Match->OutDims.str(), "(1,r1)");
  EXPECT_FALSE(DB.matchAccess(Dimensionality{R1, R2}));
}

TEST(PatternDatabaseTest, RegistrationOrderIsPriority) {
  PatternDatabase DB;
  auto NullTransform = [](BinaryOp, ExprPtr, ExprPtr,
                          const PatternContext &) -> ExprPtr {
    return nullptr;
  };
  DB.addBinaryPattern(BinaryPattern{"first", BinaryOp::Add, false,
                                    {PatternDim::var(1)},
                                    {PatternDim::var(1)},
                                    {PatternDim::var(1)}, NullTransform});
  DB.addBinaryPattern(BinaryPattern{"second", BinaryOp::Add, false,
                                    {PatternDim::var(1)},
                                    {PatternDim::var(1)},
                                    {PatternDim::var(1)}, NullTransform});
  auto All = DB.matchBinaryAll(BinaryOp::Add, Dimensionality{R1, One},
                               Dimensionality{R1, One});
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].Pattern->Name, "first");
  EXPECT_EQ(All[1].Pattern->Name, "second");
}

//===----------------------------------------------------------------------===//
// Plugin loading (the paper's Fig. 2 DLL design)
//===----------------------------------------------------------------------===//

TEST(PluginTest, MissingFileFails) {
  PatternDatabase DB;
  std::string Error;
  EXPECT_FALSE(loadPatternPlugin("/nonexistent/plugin.so", DB, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(PluginTest, NonPluginLibraryFails) {
  PatternDatabase DB;
  std::string Error;
  // libm exists but exports no mvecRegisterPatterns.
  if (loadPatternPlugin("libm.so.6", DB, Error))
    GTEST_SKIP() << "unexpectedly loadable";
  EXPECT_FALSE(Error.empty());
}

#ifdef GATHER_PLUGIN_PATH
TEST(PluginTest, GatherPluginRegistersPattern) {
  PatternDatabase DB = makeDefaultPatternDatabase();
  size_t Before = DB.numAccessPatterns();
  std::string Error;
  ASSERT_TRUE(loadPatternPlugin(GATHER_PLUGIN_PATH, DB, Error)) << Error;
  EXPECT_EQ(DB.numAccessPatterns(), Before + 1);
}
#endif

} // namespace
