//===- DimCheckerTest.cpp - Table 1 rule unit tests ------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct unit tests of the vectorized-dimensionality computation: the
/// rules of the paper's Table 1, the compatibility checks of Sec. 2.1, the
/// transpose extension of Sec. 2.2 and the reduction machinery of
/// Sec. 3.1, exercised expression by expression.
///
//===----------------------------------------------------------------------===//

#include "vectorizer/DimChecker.h"

#include "deps/LoopNest.h"
#include "frontend/ASTPrinter.h"
#include "frontend/Parser.h"
#include "shape/AnnotationParser.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

/// Fixture: a two-deep loop nest "for i=1:m, for j=1:n" with annotated
/// variable shapes; expressions are checked as if appearing in its body.
class CheckFixture {
public:
  explicit CheckFixture(const std::string &Annotations) {
    std::string Source = "%!" + Annotations + "\n"
                         "for i=1:m\n for j=1:n\n  t=0;\n end\nend\n";
    Parsed = parseMatlab(Source, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    Env = parseShapeAnnotations(Parsed.Annotations, Diags);
    Env.setShape("t", Dimensionality::scalar());
    auto *Root = cast<ForStmt>(Parsed.Prog.Stmts[0].get());
    std::string Reason;
    Nest = buildLoopNest(*Root, Reason);
    EXPECT_TRUE(Nest.has_value()) << Reason;
    registerBuiltinPatterns(DB);
  }

  /// Checks \p ExprSource vectorizing loops [Level, MaxLevel].
  std::optional<CheckedExpr> check(const std::string &ExprSource,
                                   unsigned Level = 1,
                                   unsigned MaxLevel = 2) {
    DiagnosticEngine D;
    Parser P(ExprSource, D);
    ExprPtr E = P.parseSingleExpression();
    EXPECT_FALSE(D.hasErrors()) << D.str();
    Checker.emplace(*Nest, Level, MaxLevel, Env, DB, Opts);
    return Checker->checkExpr(*E);
  }

  std::string dims(const std::string &ExprSource, unsigned Level = 1,
                   unsigned MaxLevel = 2) {
    auto C = check(ExprSource, Level, MaxLevel);
    if (!C)
      return "FAIL: " + Checker->failureReason();
    return C->Dims.str();
  }

  std::string rewritten(const std::string &ExprSource) {
    auto C = check(ExprSource);
    if (!C)
      return "FAIL: " + Checker->failureReason();
    return printExpr(*C->E);
  }

  DiagnosticEngine Diags;
  ParseResult Parsed;
  ShapeEnv Env;
  std::optional<LoopNest> Nest;
  PatternDatabase DB;
  VectorizerOptions Opts;
  std::optional<DimChecker> Checker;
};

//===----------------------------------------------------------------------===//
// Table 1: simple expressions
//===----------------------------------------------------------------------===//

TEST(Table1Test, ScalarConstant) {
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.dims("3"), "(1,1)");
  EXPECT_EQ(F.dims("2.5"), "(1,1)");
}

TEST(Table1Test, IndexVariableBecomesRowRange) {
  // dim_i(i) = (1, r_i).
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.dims("i"), "(1,r1)");
  EXPECT_EQ(F.dims("j"), "(1,r2)");
}

TEST(Table1Test, NonVectorizedIndexVariableIsScalar) {
  CheckFixture F(" A(*,*)");
  // With Level=2, loop i runs sequentially: i is a scalar.
  EXPECT_EQ(F.dims("i", 2), "(1,1)");
  EXPECT_EQ(F.dims("j", 2), "(1,r2)");
}

TEST(Table1Test, AnnotatedIdentifiers) {
  CheckFixture F(" A(*,*) v(1,*) c(*,1) s(1)");
  EXPECT_EQ(F.dims("A"), "(*,*)");
  EXPECT_EQ(F.dims("v"), "(1,*)");
  EXPECT_EQ(F.dims("c"), "(*,1)");
  EXPECT_EQ(F.dims("s"), "(1,1)");
}

TEST(Table1Test, UnknownIdentifierFails) {
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.dims("mystery").substr(0, 4), "FAIL");
}

TEST(Table1Test, ColonExpressionIsRowVector) {
  CheckFixture F(" n(1)");
  EXPECT_EQ(F.dims("1:n"), "(1,*)");
  EXPECT_EQ(F.dims("1:2:n"), "(1,*)");
}

TEST(Table1Test, RangeOverIndexVariableFails) {
  CheckFixture F(" n(1)");
  EXPECT_EQ(F.dims("1:i").substr(0, 4), "FAIL");
}

TEST(Table1Test, SignedExpressionKeepsDims) {
  CheckFixture F(" c(*,1)");
  EXPECT_EQ(F.dims("-c"), "(*,1)");
  EXPECT_EQ(F.dims("+c(i)"), "(r1,1)");
}

TEST(Table1Test, TransposeReversesDims) {
  CheckFixture F(" A(*,*) c(*,1)");
  EXPECT_EQ(F.dims("c'"), "(1,*)");
  EXPECT_EQ(F.dims("c(i)'"), "(1,r1)");
  EXPECT_EQ(F.dims("A(i,j)'"), "(r2,r1)");
}

//===----------------------------------------------------------------------===//
// Table 1: subscripted expressions
//===----------------------------------------------------------------------===//

TEST(Table1Test, VectorSubscriptOrientsAlongBase) {
  // The paper's example: dim_i(A(i)) = (r_i, 1) for column A.
  CheckFixture F(" c(*,1) v(1,*)");
  EXPECT_EQ(F.dims("c(i)"), "(r1,1)");
  EXPECT_EQ(F.dims("v(i)"), "(1,r1)");
}

TEST(Table1Test, MatrixValuedSubscriptTakesSubscriptShape) {
  // Table 1: M(e1) with isMatrix(e1): dims follow e1 — the heq(im+1) case.
  CheckFixture F(" v(1,*) M(*,*)");
  EXPECT_EQ(F.dims("v(M(i,j)+1)"), "(r1,r2)");
}

TEST(Table1Test, MatrixBaseVectorSliceRejected) {
  // The paper's Table 1 gives M(e1) the subscript's shape, but a '*'
  // extent admits 1: a runtime column vector orients M(1:n) along the
  // base instead (fuzz counterexample: x=rand(n,1) under x(*,*) turned
  // z(i)=x(i).*y(i) into a column slice stored to a row target). A
  // scalar subscript stays orientation-free.
  CheckFixture F(" M(*,*) v(1,*) s(1)");
  EXPECT_EQ(F.dims("M(i)"),
            "FAIL: vector slice of matrix-shaped 'M' has data-dependent "
            "orientation");
  EXPECT_EQ(F.dims("M(s)"), "(1,1)");
}

TEST(Table1Test, TwoSubscriptsUseFmax) {
  CheckFixture F(" A(*,*) s(1)");
  EXPECT_EQ(F.dims("A(i,j)"), "(r1,r2)");
  EXPECT_EQ(F.dims("A(j,i)"), "(r2,r1)");
  EXPECT_EQ(F.dims("A(i,s)"), "(r1,1)");
  EXPECT_EQ(F.dims("A(s,s)"), "(1,1)");
  EXPECT_EQ(F.dims("A(2*i-1,j)"), "(r1,r2)");
}

TEST(Table1Test, ColonSubscriptTakesBaseExtent) {
  CheckFixture F(" A(*,*) v(1,*)");
  EXPECT_EQ(F.dims("A(i,:)"), "(r1,*)");
  EXPECT_EQ(F.dims("A(:,j)"), "(*,r2)");
  EXPECT_EQ(F.dims("A(:)"), "(*,1)");
}

TEST(Table1Test, MatrixShapedSubscriptDimFails) {
  // A subscript whose own dims are a matrix has no f_max.
  CheckFixture F(" A(*,*) M(*,*)");
  EXPECT_EQ(F.dims("A(M(i,j),j)").substr(0, 4), "FAIL");
}

TEST(Table1Test, DiagonalAccessResolvedByPattern) {
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.dims("A(i,i)"), "(1,r1)");
  EXPECT_EQ(F.rewritten("A(i,i)"), "A(i+size(A,1)*(i-1))");
}

TEST(Table1Test, DiagonalAffineForms) {
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.rewritten("A(2*i,2*i-1)"), "A(2*i+size(A,1)*(2*i-1-1))");
}

TEST(Table1Test, RepeatedRangeWithoutPatternFails) {
  CheckFixture F(" A(*,*)");
  F.Opts.EnablePatterns = false;
  EXPECT_EQ(F.dims("A(i,i)").substr(0, 4), "FAIL");
}

//===----------------------------------------------------------------------===//
// Sec. 2.1 compatibility & operators
//===----------------------------------------------------------------------===//

TEST(CompatTest, PointwiseSameDims) {
  CheckFixture F(" v(1,*) w(1,*)");
  EXPECT_EQ(F.dims("v(i)+w(i)"), "(1,r1)");
  EXPECT_EQ(F.dims("v(i)-w(i)"), "(1,r1)");
}

TEST(CompatTest, ScalarOperandAlwaysCompatible) {
  CheckFixture F(" v(1,*) s(1)");
  EXPECT_EQ(F.dims("v(i)+s"), "(1,r1)");
  EXPECT_EQ(F.dims("s*v(i)"), "(1,r1)");
  EXPECT_EQ(F.dims("3*v(i)+1"), "(1,r1)");
}

TEST(CompatTest, DistinctRangesIncompatible) {
  CheckFixture F(" v(1,*) w(1,*)");
  EXPECT_EQ(F.dims("v(i)+w(j)").substr(0, 4), "FAIL");
}

TEST(CompatTest, TransposeRepairsOrientation) {
  CheckFixture F(" v(1,*) c(*,1)");
  // row (1,r1) + column (r1,1): one side must be transposed.
  auto C = F.check("v(i)+c(i)");
  ASSERT_TRUE(C.has_value());
  EXPECT_NE(printExpr(*C->E).find("'"), std::string::npos);
}

TEST(CompatTest, TransposeDisabled) {
  CheckFixture F(" v(1,*) c(*,1)");
  F.Opts.EnableTransposes = false;
  EXPECT_EQ(F.dims("v(i)+c(i)").substr(0, 4), "FAIL");
}

TEST(CompatTest, StarAndRangeIncompatible) {
  // r_i is "like * but not compatible with it" (Sec. 2.1).
  CheckFixture F(" v(1,*) A(*,*)");
  EXPECT_EQ(F.dims("v(i)+v").substr(0, 4), "FAIL");
  EXPECT_EQ(F.dims("A(i,:)+A(i,j)").substr(0, 4), "FAIL");
}

TEST(CompatTest, ScalarMulStaysNative) {
  CheckFixture F(" v(1,*) s(1)");
  EXPECT_EQ(F.rewritten("s*v(i)"), "s*v(i)");
}

TEST(CompatTest, ElementMulBecomesDotMul) {
  CheckFixture F(" v(1,*) w(1,*)");
  EXPECT_EQ(F.rewritten("v(i)*w(i)"), "v(i).*w(i)");
}

TEST(CompatTest, ScalarPowStaysNative) {
  CheckFixture F(" s(1)");
  EXPECT_EQ(F.rewritten("s^2"), "s^2");
}

TEST(CompatTest, ElementPowBecomesDotPow) {
  CheckFixture F(" v(1,*)");
  EXPECT_EQ(F.rewritten("v(i)^2"), "v(i).^2");
}

TEST(CompatTest, ElementDivBecomesDotDiv) {
  CheckFixture F(" v(1,*) w(1,*)");
  EXPECT_EQ(F.rewritten("v(i)/w(i)"), "v(i)./w(i)");
  // Scalar divisor keeps native '/'.
  EXPECT_EQ(F.rewritten("v(i)/2"), "v(i)/2");
}

TEST(CompatTest, ComparisonOperatorsVectorize) {
  CheckFixture F(" v(1,*) w(1,*)");
  EXPECT_EQ(F.dims("v(i)<w(i)"), "(1,r1)");
  EXPECT_EQ(F.dims("v(i)==w(i)"), "(1,r1)");
}

TEST(CompatTest, ShortCircuitNeedsScalars) {
  CheckFixture F(" v(1,*) s(1)");
  EXPECT_EQ(F.dims("s>0 && s<10"), "(1,1)");
  EXPECT_EQ(F.dims("v(i)>0 && s<10").substr(0, 4), "FAIL");
}

TEST(CompatTest, PointwiseFunctionPropagatesDims) {
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.dims("cos(A(i,j))"), "(r1,r2)");
  EXPECT_EQ(F.dims("sqrt(abs(A(i,j)))"), "(r1,r2)");
}

TEST(CompatTest, UnknownCallFails) {
  CheckFixture F(" v(1,*)");
  EXPECT_EQ(F.dims("hist(v(i))").substr(0, 4), "FAIL");
}

TEST(CompatTest, SizeQueryIsScalar) {
  CheckFixture F(" A(*,*)");
  EXPECT_EQ(F.dims("size(A,1)"), "(1,1)");
  EXPECT_EQ(F.dims("size(A,i)").substr(0, 4), "FAIL");
}

//===----------------------------------------------------------------------===//
// Patterns inside expressions
//===----------------------------------------------------------------------===//

TEST(PatternCheckTest, DotProductInsideExpression) {
  CheckFixture F(" X(*,*) Y(*,*)");
  auto C = F.check("X(i,:)*Y(:,i)");
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Dims.str(), "(1,r1)");
  EXPECT_EQ(printExpr(*C->E), "sum(X(i,:)'.*Y(:,i),1)");
}

TEST(PatternCheckTest, GeneralMatmulKeepsStar) {
  CheckFixture F(" B(*,*) C(*,*) ind(1,*)");
  auto C = F.check("B(i,ind)*C(ind,j)");
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Dims.str(), "(r1,r2)");
  EXPECT_EQ(printExpr(*C->E), "B(i,ind)*C(ind,j)");
}

TEST(PatternCheckTest, OuterProduct) {
  CheckFixture F(" u(*,1) v(1,*)");
  auto C = F.check("u(i)*v(j)");
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Dims.str(), "(r1,r2)");
}

TEST(PatternCheckTest, BroadcastRepmat) {
  CheckFixture F(" B(*,*) c(*,1)");
  auto C = F.check("B(i,j)+c(i)");
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Dims.str(), "(r1,r2)");
  EXPECT_NE(printExpr(*C->E).find("repmat("), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Reductions (Sec. 3.1): Gamma and rho through checkStatement
//===----------------------------------------------------------------------===//

std::optional<CheckedStmt> checkReduction(CheckFixture &F,
                                          const std::string &StmtSource,
                                          std::set<LoopId> RV,
                                          std::string *WhyOut = nullptr) {
  DiagnosticEngine D;
  ParseResult R = parseMatlab(StmtSource, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  const auto *S = cast<AssignStmt>(R.Prog.Stmts[0].get());
  DimChecker Checker(*F.Nest, 1, 2, F.Env, F.DB, F.Opts);
  auto Result = Checker.checkStatement(*S, RV);
  if (WhyOut)
    *WhyOut = Checker.failureReason();
  return Result;
}

TEST(ReductionTest, MatchAdditiveReductionForm) {
  DiagnosticEngine D;
  ParseResult R = parseMatlab("s = s + x;\ns = x + s;\ns = s - x;\n"
                              "s = x - s;\ns = x;\n",
                              D);
  bool IsSub = false;
  EXPECT_NE(DimChecker::matchAdditiveReduction(
                *cast<AssignStmt>(R.Prog.Stmts[0].get()), IsSub),
            nullptr);
  EXPECT_FALSE(IsSub);
  EXPECT_NE(DimChecker::matchAdditiveReduction(
                *cast<AssignStmt>(R.Prog.Stmts[1].get()), IsSub),
            nullptr);
  EXPECT_NE(DimChecker::matchAdditiveReduction(
                *cast<AssignStmt>(R.Prog.Stmts[2].get()), IsSub),
            nullptr);
  EXPECT_TRUE(IsSub);
  // s = x - s is not an additive reduction on s.
  EXPECT_EQ(DimChecker::matchAdditiveReduction(
                *cast<AssignStmt>(R.Prog.Stmts[3].get()), IsSub),
            nullptr);
  EXPECT_EQ(DimChecker::matchAdditiveReduction(
                *cast<AssignStmt>(R.Prog.Stmts[4].get()), IsSub),
            nullptr);
}

TEST(ReductionTest, GammaSumsMatchingDimension) {
  CheckFixture F(" s(1) v(1,*) w(1,*)");
  auto C = checkReduction(F, "s = s + v(i)*w(i);", {1, 2});
  ASSERT_TRUE(C.has_value());
  std::string RHS = printExpr(*C->RHS);
  // The i-dimension is summed; the j loop contributes a trip count.
  EXPECT_NE(RHS.find("sum("), std::string::npos) << RHS;
  EXPECT_NE(RHS.find("size(1:n,2)"), std::string::npos) << RHS;
}

TEST(ReductionTest, MatmulImplicitReduction) {
  CheckFixture F(" a(*,*) x(*,1) f(*,1) phi(1,*) k(1)");
  auto C = checkReduction(F, "phi(k) = phi(k) + a(i,j)*x(i)*f(j);", {1, 2});
  ASSERT_TRUE(C.has_value());
  std::string RHS = printExpr(*C->RHS);
  EXPECT_EQ(RHS, "phi(k)+sum(a(i,j)'*x(i).*f(j),1)") << RHS;
}

TEST(ReductionTest, NonReductionStatementRejected) {
  CheckFixture F(" s(1) v(1,*)");
  std::string Why;
  auto C = checkReduction(F, "s = 2*s + v(i);", {1, 2}, &Why);
  EXPECT_FALSE(C.has_value());
  EXPECT_NE(Why.find("additive"), std::string::npos);
}

TEST(ReductionTest, GammaSumsAlongColumnDimension) {
  // A column-shaped accumulation sums along dimension 1.
  CheckFixture F(" s(1) c(*,1)");
  auto C = checkReduction(F, "s = s + c(i);", {1, 2});
  ASSERT_TRUE(C.has_value());
  std::string RHS = printExpr(*C->RHS);
  EXPECT_NE(RHS.find("sum(c(i),1)"), std::string::npos) << RHS;
}

TEST(ReductionTest, AdditionSynchronizesRhoWithGamma) {
  // s = s + v(i) + w(j): each term reduces a different loop; the '+'
  // must Gamma-extend both sides before combining (Sec. 3.1).
  CheckFixture F(" s(1) v(1,*) w(1,*)");
  auto C = checkReduction(F, "s = s + (v(i) + w(j));", {1, 2});
  ASSERT_TRUE(C.has_value());
  std::string RHS = printExpr(*C->RHS);
  // Both a sum and a trip-count scaling appear on each side:
  // s+(size(1:n,2)*sum(v(i),2)+sum(size(1:m,2)*w(j),2)).
  EXPECT_NE(RHS.find("sum(v(i),2)"), std::string::npos) << RHS;
  EXPECT_NE(RHS.find("*w(j)"), std::string::npos) << RHS;
  EXPECT_NE(RHS.find("size(1:"), std::string::npos) << RHS;
}

TEST(ReductionTest, ElementwiseTripleProductVectorizes) {
  // (v(i)*w(i))*v(i) is a pointwise triple product; pointwise always has
  // priority over reduction through '*' (footnote 1).
  CheckFixture F(" s(1) v(1,*) w(1,*)");
  auto C = checkReduction(F, "s = s + (v(i)*w(i))*v(i);", {1, 2});
  ASSERT_TRUE(C.has_value());
  std::string RHS = printExpr(*C->RHS);
  EXPECT_NE(RHS.find(".*"), std::string::npos) << RHS;
}

} // namespace
