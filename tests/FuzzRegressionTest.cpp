//===- FuzzRegressionTest.cpp - Minimized fuzzer-found defects -------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each test is a minimized reproducer of a defect found by mvec_fuzz and
/// since fixed, pinned here so it stays fixed. The programs are the
/// reduced sources the fuzzer's triage produced (lightly renamed); the
/// assertions state the contract the defect violated. The checked-in
/// corpus/ directory carries the same reproducers in replayable form.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "fuzz/Oracle.h"

#include "gtest/gtest.h"

using namespace mvec;

namespace {

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

/// Vectorizes and differentially runs \p Source; the transformed program
/// must reproduce the original's workspace.
std::string transformAndDiff(const std::string &Source) {
  PipelineResult R = vectorizeSource(Source);
  EXPECT_TRUE(R.succeeded()) << R.Diags.str();
  if (!R.succeeded())
    return std::string();
  std::string Diff = diffRun(Source, R.VectorizedSource, 1e-7);
  EXPECT_EQ(Diff, "") << "--- transformed ---\n" << R.VectorizedSource;
  return R.VectorizedSource;
}

// Defect: a statement at an outer nest level was deleted together with a
// provably-empty *inner* loop ("variable 't' missing after
// transformation"). Zero-trip nest removal must only fire when the root
// loop itself is empty.
TEST(FuzzRegression, OuterStatementSurvivesEmptyInnerLoop) {
  std::string V = transformAndDiff("m = 1;\nn = 1;\n%! m(1) n(1) t(1)\n"
                                   "for i=1:m\n  t = 0;\n"
                                   "  for j=3:n\n  end\nend\n");
  EXPECT_TRUE(contains(V, "t=0")) << V;
}

// Defect: a whole-variable write was hoisted out of a loop whose trip
// count could be zero at runtime, materializing a variable the original
// never defined. Emission now requires provably-positive trip counts;
// here the bound is opaque (loaded from a matrix element), so the loop
// must stay sequential.
TEST(FuzzRegression, NoHoistOutOfPossiblyEmptyLoop) {
  std::string Source = "k = zeros(1,2);\nu = 7;\n%! k(1,*) u(1) t(1)\n"
                       "for i=1:k(1)\n  t = u*2;\nend\n";
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  // k(1) is 0 at runtime: the loop body never runs and t must stay
  // undefined afterwards, which only the sequential form guarantees.
  EXPECT_TRUE(contains(R.VectorizedSource, "for ")) << R.VectorizedSource;
  EXPECT_EQ(diffRun(Source, R.VectorizedSource, 1e-7), "");
}

// Defect: an index variable's final value (the interpreter leaves i = n
// after the loop) was lost when the nest vectorized or its indices were
// normalized. A nest whose index variable may be read afterwards is no
// longer a candidate.
TEST(FuzzRegression, IndexVariableLiveAfterLoopBlocksVectorization) {
  std::string Source = "n = 3;\nx = rand(1,n);\nz = zeros(1,n);\n"
                       "%! x(1,*) z(1,*) n(1) t(1)\n"
                       "for i=1:n\n  z(i) = x(i);\nend\nt = i;\n";
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_TRUE(contains(R.VectorizedSource, "for ")) << R.VectorizedSource;
  EXPECT_EQ(diffRun(Source, R.VectorizedSource, 1e-7), "");
}

// Defect: rand() draws were reordered/hoisted by vectorization, changing
// which values land where in the deterministic stream. A nest whose body
// draws random numbers is refused outright.
TEST(FuzzRegression, RandDrawingLoopStaysSequential) {
  std::string Source = "n = 2;\nz = zeros(1,n);\n%! z(1,*) n(1) s(1)\n"
                       "for i=1:n\n  z(i) = rand(1,1);\nend\ns = z(1)+z(2);\n";
  PipelineResult R = vectorizeSource(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_TRUE(contains(R.VectorizedSource, "for ")) << R.VectorizedSource;
  EXPECT_EQ(diffRun(Source, R.VectorizedSource, 1e-7), "");
}

// Defect: growing an empty variable by whole-slice assignment disagreed
// with growing it element-at-a-time (0x1 bases flipped orientation).
// The vectorized slice write must land exactly where the loop's writes
// landed.
TEST(FuzzRegression, SliceGrowthMatchesElementGrowth) {
  transformAndDiff("v = rand(1,3);\nw = zeros(0,1);\n%! v(1,*) w(1,*)\n"
                   "for i=1:3\n  w(i) = v(i);\nend\n");
}

// Defect: vectorized reductions reorder floating-point sums; byte-exact
// workspace comparison reported 1-ulp differences as mismatches. The
// differential runner compares numerically with a relative tolerance.
TEST(FuzzRegression, ReductionToleratesFloatReassociation) {
  std::string V = transformAndDiff("n = 6;\nv = rand(1,n);\ns = 0;\n"
                                   "%! v(1,*) s(1) n(1)\n"
                                   "for i=1:n\n  s = s+v(i);\nend\n");
  EXPECT_TRUE(contains(V, "sum")) << V;
}

// Defect: programs whose runtime shapes contradict their %! annotations
// made the vectorizer emit code for shapes that never materialize; the
// divergence was blamed on the pipeline. Annotation liars are now
// rejected as invalid inputs, not reported as findings.
TEST(FuzzRegression, AnnotationLiarIsRejectedNotAFinding) {
  fuzz::OracleConfig Config;
  Config.Jobs = 1;
  fuzz::Oracle O(Config);
  fuzz::Verdict V = O.check("x = zeros(1,1);\n%! x(1,1)\n"
                            "for i=1:3\n  x(i) = i;\nend\n");
  EXPECT_TRUE(V.rejected());
}

// Defect: a non-finite subscript (1/0) passed the integer check
// (floor(Inf) == Inf) and was cast to size_t — undefined behavior that
// surfaced as garbage out-of-bounds reads. Non-finite subscripts and
// range endpoints now error cleanly, so the original program fails and
// the candidate is rejected.
TEST(FuzzRegression, InfiniteSubscriptErrorsCleanly) {
  fuzz::OracleConfig Config;
  Config.Jobs = 1;
  fuzz::Oracle O(Config);
  EXPECT_TRUE(O.check("x = rand(1,3);\n%! x(1,*) y(1)\ny = x(1/0);\n")
                  .rejected());
  EXPECT_TRUE(O.check("%! z(1,*)\nz = 1:(1/0);\n").rejected());
}

// Defect: an eagerly evaluated subscript on a non-empty axis of an
// emitted statement errored where the original's zero-trip loop ran
// nothing at all (B(2:1,1:m) on a scalar B). With the strict gate the
// statement stays inside its sequential loops and never evaluates.
TEST(FuzzRegression, EmptyInnerRangeDoesNotEvaluateEagerly) {
  transformAndDiff("m = 1;\nB = 5;\nA = zeros(1,1);\n%! m(1) B(1) A(*,*)\n"
                   "for i=1:m\n  for j=2:1\n    A(i,j) = B(j,i);\n  end\n"
                   "end\n");
}

// The flip side of the strict gate: provably-positive symbolic bounds
// (size() of a variable built with literal extents) must still
// vectorize — constant and known-extent propagation carries the proof.
TEST(FuzzRegression, KnownExtentsKeepSizeBoundsVectorizable) {
  std::string V = transformAndDiff(
      "A = rand(5,7);\nB = zeros(5,7);\n%! A(*,*) B(*,*)\n"
      "for i=1:size(A,1)\n for j=1:size(A,2)\n"
      "  B(i,j) = 2*A(i,j);\n end\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
}

// And a provably-empty root loop is removed outright instead of being
// emitted as an empty-slice assignment.
TEST(FuzzRegression, ProvablyEmptyRootLoopIsDeleted) {
  std::string V = transformAndDiff("n = 0;\nx = rand(1,5);\nz = zeros(1,5);\n"
                                   "%! x(1,*) z(1,*) n(1)\n"
                                   "for i=1:n\n  z(i) = x(i);\nend\n");
  EXPECT_FALSE(contains(V, "for ")) << V;
  EXPECT_FALSE(contains(V, "z(")) << V;
}

} // namespace
