//===- InterpreterTest.cpp - Interpreter integration tests ----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "frontend/Parser.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace mvec;

namespace {

/// Runs a script and returns the interpreter for inspection.
Interpreter runOk(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Interpreter Interp;
  EXPECT_TRUE(Interp.run(R.Prog)) << Interp.errorMessage();
  return Interp;
}

/// Runs a script expecting a runtime error.
std::string runError(const std::string &Source) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Interpreter Interp;
  EXPECT_FALSE(Interp.run(R.Prog));
  return Interp.errorMessage();
}

double scalarVar(const Interpreter &Interp, const std::string &Name) {
  const Value *V = Interp.getVariable(Name);
  EXPECT_NE(V, nullptr) << "missing variable " << Name;
  if (!V || !V->isScalar())
    return std::nan("");
  return V->scalarValue();
}

TEST(InterpreterTest, ScalarArithmetic) {
  Interpreter I = runOk("x = 2+3*4;\ny = (2+3)*4;\nz = 2^3^2;\nw = -2^2;");
  EXPECT_DOUBLE_EQ(scalarVar(I, "x"), 14);
  EXPECT_DOUBLE_EQ(scalarVar(I, "y"), 20);
  EXPECT_DOUBLE_EQ(scalarVar(I, "z"), 64); // left-assoc (2^3)^2
  EXPECT_DOUBLE_EQ(scalarVar(I, "w"), -4);
}

TEST(InterpreterTest, RangeConstruction) {
  Interpreter I = runOk("r = 1:5;\ns = 2:2:10;\ne = 5:1;\nd = 10:-2:5;");
  const Value *R = I.getVariable("r");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->rows(), 1u);
  EXPECT_EQ(R->cols(), 5u);
  EXPECT_DOUBLE_EQ(R->linear(4), 5);
  const Value *S = I.getVariable("s");
  EXPECT_EQ(S->cols(), 5u);
  EXPECT_DOUBLE_EQ(S->linear(4), 10);
  EXPECT_TRUE(I.getVariable("e")->isEmpty());
  const Value *D = I.getVariable("d");
  EXPECT_EQ(D->cols(), 3u);
  EXPECT_DOUBLE_EQ(D->linear(2), 6);
}

TEST(InterpreterTest, MatrixLiteralAndIndexing) {
  Interpreter I = runOk("A = [1 2 3; 4 5 6];\nx = A(2,3);\ny = A(4);");
  EXPECT_DOUBLE_EQ(scalarVar(I, "x"), 6);
  // Column-major linear indexing: element 4 is row 2, col 2.
  EXPECT_DOUBLE_EQ(scalarVar(I, "y"), 5);
}

TEST(InterpreterTest, ColumnMajorFlatten) {
  Interpreter I = runOk("A = [1 2; 3 4];\nv = A(:);");
  const Value *V = I.getVariable("v");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->rows(), 4u);
  EXPECT_EQ(V->cols(), 1u);
  EXPECT_DOUBLE_EQ(V->linear(0), 1);
  EXPECT_DOUBLE_EQ(V->linear(1), 3);
  EXPECT_DOUBLE_EQ(V->linear(2), 2);
  EXPECT_DOUBLE_EQ(V->linear(3), 4);
}

TEST(InterpreterTest, RowAndColumnSlices) {
  Interpreter I = runOk("A = [1 2 3; 4 5 6];\nr = A(2,:);\nc = A(:,2);");
  const Value *R = I.getVariable("r");
  EXPECT_EQ(R->rows(), 1u);
  EXPECT_EQ(R->cols(), 3u);
  EXPECT_DOUBLE_EQ(R->linear(2), 6);
  const Value *C = I.getVariable("c");
  EXPECT_EQ(C->rows(), 2u);
  EXPECT_EQ(C->cols(), 1u);
  EXPECT_DOUBLE_EQ(C->linear(1), 5);
}

TEST(InterpreterTest, VectorIndexKeepsBaseOrientation) {
  // MATLAB quirk the paper's dim rules rely on: indexing a column vector
  // with a row range yields a column.
  Interpreter I = runOk("A = [1;2;3;4];\nx = A(1:3);\nr = [1 2 3 4];\n"
                        "y = r((1:3)');");
  const Value *X = I.getVariable("x");
  EXPECT_EQ(X->rows(), 3u);
  EXPECT_EQ(X->cols(), 1u);
  const Value *Y = I.getVariable("y");
  EXPECT_EQ(Y->rows(), 1u);
  EXPECT_EQ(Y->cols(), 3u);
}

TEST(InterpreterTest, MatrixIndexTakesIndexShape) {
  // Indexing a row vector with a matrix index yields the index's shape.
  Interpreter I = runOk("t = [10 20 30 40];\nM = [1 2; 3 4];\nr = t(M);");
  const Value *R = I.getVariable("r");
  EXPECT_EQ(R->rows(), 2u);
  EXPECT_EQ(R->cols(), 2u);
  EXPECT_DOUBLE_EQ(R->at(0, 0), 10);
  EXPECT_DOUBLE_EQ(R->at(1, 1), 40);
}

TEST(InterpreterTest, EndKeyword) {
  Interpreter I = runOk("v = [1 2 3 4 5];\nx = v(end);\ny = v(end-1);\n"
                        "z = v(2:end);\nA = [1 2;3 4];\nw = A(end,end);");
  EXPECT_DOUBLE_EQ(scalarVar(I, "x"), 5);
  EXPECT_DOUBLE_EQ(scalarVar(I, "y"), 4);
  EXPECT_EQ(I.getVariable("z")->numel(), 4u);
  EXPECT_DOUBLE_EQ(scalarVar(I, "w"), 4);
}

TEST(InterpreterTest, AutoGrowVector) {
  Interpreter I = runOk("x(3) = 7;");
  const Value *X = I.getVariable("x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->rows(), 1u);
  EXPECT_EQ(X->cols(), 3u);
  EXPECT_DOUBLE_EQ(X->linear(0), 0);
  EXPECT_DOUBLE_EQ(X->linear(2), 7);
}

TEST(InterpreterTest, AutoGrowMatrix) {
  Interpreter I = runOk("A(2,3) = 5;\nA(4,1) = 1;");
  const Value *A = I.getVariable("A");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->rows(), 4u);
  EXPECT_EQ(A->cols(), 3u);
  EXPECT_DOUBLE_EQ(A->at(1, 2), 5);
  EXPECT_DOUBLE_EQ(A->at(3, 0), 1);
}

TEST(InterpreterTest, GrowPreservesContents) {
  Interpreter I = runOk("A = [1 2; 3 4];\nA(3,3) = 9;");
  const Value *A = I.getVariable("A");
  EXPECT_DOUBLE_EQ(A->at(0, 0), 1);
  EXPECT_DOUBLE_EQ(A->at(1, 1), 4);
  EXPECT_DOUBLE_EQ(A->at(2, 2), 9);
  EXPECT_DOUBLE_EQ(A->at(0, 2), 0);
}

TEST(InterpreterTest, SlicedAssignment) {
  Interpreter I = runOk("A = zeros(3,3);\nA(2,:) = [1 2 3];\n"
                        "A(:,1) = [7;8;9];\nA(1:2,2:3) = [1 2; 3 4];");
  const Value *A = I.getVariable("A");
  EXPECT_DOUBLE_EQ(A->at(1, 0), 8);
  EXPECT_DOUBLE_EQ(A->at(0, 1), 1);
  EXPECT_DOUBLE_EQ(A->at(1, 2), 4);
}

TEST(InterpreterTest, OrientationMismatchedVectorAssignmentAllowed) {
  // MATLAB allows A(1,1:3) = [1;2;3].
  Interpreter I = runOk("A = zeros(2,3);\nA(1,1:3) = [1;2;3];");
  const Value *A = I.getVariable("A");
  EXPECT_DOUBLE_EQ(A->at(0, 2), 3);
}

TEST(InterpreterTest, ScalarBroadcastAssignment) {
  Interpreter I = runOk("A = ones(2,2);\nA(:,1) = 9;");
  const Value *A = I.getVariable("A");
  EXPECT_DOUBLE_EQ(A->at(0, 0), 9);
  EXPECT_DOUBLE_EQ(A->at(1, 0), 9);
  EXPECT_DOUBLE_EQ(A->at(0, 1), 1);
}

TEST(InterpreterTest, MatrixMultiply) {
  Interpreter I = runOk("A = [1 2; 3 4];\nB = [5 6; 7 8];\nC = A*B;");
  const Value *C = I.getVariable("C");
  EXPECT_DOUBLE_EQ(C->at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C->at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C->at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C->at(1, 1), 50);
}

TEST(InterpreterTest, DotProductRowTimesColumn) {
  Interpreter I = runOk("x = [1 2 3];\ny = [4;5;6];\nd = x*y;");
  EXPECT_DOUBLE_EQ(scalarVar(I, "d"), 32);
}

TEST(InterpreterTest, InnerDimensionMismatchFails) {
  std::string Msg = runError("A = [1 2; 3 4];\nB = [1 2 3];\nC = A*B;");
  EXPECT_NE(Msg.find("inner matrix dimensions"), std::string::npos);
}

TEST(InterpreterTest, ElementwiseShapeMismatchFails) {
  std::string Msg = runError("x = [1 2 3] + [1 2];");
  EXPECT_NE(Msg.find("dimensions must agree"), std::string::npos);
}

TEST(InterpreterTest, NoImplicitRowColumnBroadcast) {
  // MATLAB 7 (the paper's target) rejects row + column.
  std::string Msg = runError("x = [1 2 3] + [1;2;3];");
  EXPECT_FALSE(Msg.empty());
}

TEST(InterpreterTest, Transpose) {
  Interpreter I = runOk("A = [1 2 3];\nB = A';\nC = (A+1)';");
  EXPECT_EQ(I.getVariable("B")->rows(), 3u);
  EXPECT_DOUBLE_EQ(I.getVariable("C")->linear(2), 4);
}

TEST(InterpreterTest, ForLoopAccumulation) {
  Interpreter I = runOk("s = 0;\nfor i=1:100, s = s + i; end");
  EXPECT_DOUBLE_EQ(scalarVar(I, "s"), 5050);
}

TEST(InterpreterTest, ForLoopWithStep) {
  Interpreter I = runOk("c = 0;\nfor i=2:2:10, c = c + 1; end\n"
                        "d = 0;\nfor j=10:-3:1, d = d + j; end");
  EXPECT_DOUBLE_EQ(scalarVar(I, "c"), 5);
  EXPECT_DOUBLE_EQ(scalarVar(I, "d"), 22); // 10+7+4+1
}

TEST(InterpreterTest, ForLoopOverMatrixColumns) {
  Interpreter I = runOk("A = [1 2; 3 4];\ns = 0;\n"
                        "for col=A, s = s + col(1) + col(2); end");
  EXPECT_DOUBLE_EQ(scalarVar(I, "s"), 10);
}

TEST(InterpreterTest, EmptyRangeLoopDoesNotRun) {
  Interpreter I = runOk("x = 0;\nfor i=5:1, x = 1; end");
  EXPECT_DOUBLE_EQ(scalarVar(I, "x"), 0);
}

TEST(InterpreterTest, WhileBreakContinue) {
  Interpreter I = runOk("i = 0; s = 0;\n"
                        "while 1\n"
                        "  i = i + 1;\n"
                        "  if i > 10, break; end\n"
                        "  if mod(i,2) == 0, continue; end\n"
                        "  s = s + i;\n"
                        "end");
  EXPECT_DOUBLE_EQ(scalarVar(I, "s"), 25); // 1+3+5+7+9
}

TEST(InterpreterTest, IfElseChain) {
  Interpreter I = runOk("x = 5;\nif x < 3, y = 1; elseif x < 7, y = 2; "
                        "else y = 3; end");
  EXPECT_DOUBLE_EQ(scalarVar(I, "y"), 2);
}

TEST(InterpreterTest, LogicalOperators) {
  Interpreter I = runOk("a = 1 < 2 && 3 > 4;\nb = 1 < 2 || 3 > 4;\n"
                        "c = [1 0 1] & [1 1 0];\nd = ~[1 0];");
  EXPECT_DOUBLE_EQ(scalarVar(I, "a"), 0);
  EXPECT_DOUBLE_EQ(scalarVar(I, "b"), 1);
  EXPECT_DOUBLE_EQ(I.getVariable("c")->linear(0), 1);
  EXPECT_DOUBLE_EQ(I.getVariable("c")->linear(1), 0);
  EXPECT_DOUBLE_EQ(I.getVariable("d")->linear(0), 0);
}

TEST(InterpreterTest, Builtins) {
  Interpreter I = runOk("A = zeros(2,3);\nr = size(A,1);\nc = size(A,2);\n"
                        "n = numel(A);\nl = length(A);\n"
                        "s = sum([1 2 3]);\ncs = cumsum([1 2 3]);\n"
                        "p = prod([2 3 4]);\nI2 = eye(2);\n"
                        "m = max([3 1 2]);\nmn = min(5, [7 2]);");
  EXPECT_DOUBLE_EQ(scalarVar(I, "r"), 2);
  EXPECT_DOUBLE_EQ(scalarVar(I, "c"), 3);
  EXPECT_DOUBLE_EQ(scalarVar(I, "n"), 6);
  EXPECT_DOUBLE_EQ(scalarVar(I, "l"), 3);
  EXPECT_DOUBLE_EQ(scalarVar(I, "s"), 6);
  EXPECT_DOUBLE_EQ(I.getVariable("cs")->linear(2), 6);
  EXPECT_DOUBLE_EQ(scalarVar(I, "p"), 24);
  EXPECT_DOUBLE_EQ(I.getVariable("I2")->at(0, 0), 1);
  EXPECT_DOUBLE_EQ(I.getVariable("I2")->at(0, 1), 0);
  EXPECT_DOUBLE_EQ(scalarVar(I, "m"), 3);
  EXPECT_DOUBLE_EQ(I.getVariable("mn")->linear(0), 5);
  EXPECT_DOUBLE_EQ(I.getVariable("mn")->linear(1), 2);
}

TEST(InterpreterTest, SumAlongDimensions) {
  Interpreter I = runOk("A = [1 2; 3 4];\nc = sum(A);\nr = sum(A,2);\n"
                        "t = sum(A(:));");
  const Value *C = I.getVariable("c");
  EXPECT_EQ(C->rows(), 1u);
  EXPECT_DOUBLE_EQ(C->linear(0), 4);
  EXPECT_DOUBLE_EQ(C->linear(1), 6);
  const Value *R = I.getVariable("r");
  EXPECT_EQ(R->cols(), 1u);
  EXPECT_DOUBLE_EQ(R->linear(0), 3);
  EXPECT_DOUBLE_EQ(scalarVar(I, "t"), 10);
}

TEST(InterpreterTest, Repmat) {
  Interpreter I = runOk("v = [1;2];\nA = repmat(v, 1, 3);\n"
                        "B = repmat([1 2], [2 2]);");
  const Value *A = I.getVariable("A");
  EXPECT_EQ(A->rows(), 2u);
  EXPECT_EQ(A->cols(), 3u);
  EXPECT_DOUBLE_EQ(A->at(1, 2), 2);
  const Value *B = I.getVariable("B");
  EXPECT_EQ(B->rows(), 2u);
  EXPECT_EQ(B->cols(), 4u);
}

TEST(InterpreterTest, HistAndCumsum) {
  Interpreter I =
      runOk("x = [0 0 1 2 2 2];\nh = hist(x, [0 1 2]);\nc = cumsum(h);");
  const Value *H = I.getVariable("h");
  ASSERT_EQ(H->numel(), 3u);
  EXPECT_DOUBLE_EQ(H->linear(0), 2);
  EXPECT_DOUBLE_EQ(H->linear(1), 1);
  EXPECT_DOUBLE_EQ(H->linear(2), 3);
  EXPECT_DOUBLE_EQ(I.getVariable("c")->linear(2), 6);
}

TEST(InterpreterTest, Diag) {
  Interpreter I = runOk("A = [1 2; 3 4];\nd = diag(A);\nD = diag([5 6]);");
  const Value *D1 = I.getVariable("d");
  EXPECT_EQ(D1->rows(), 2u);
  EXPECT_DOUBLE_EQ(D1->linear(1), 4);
  const Value *D2 = I.getVariable("D");
  EXPECT_DOUBLE_EQ(D2->at(1, 1), 6);
  EXPECT_DOUBLE_EQ(D2->at(0, 1), 0);
}

TEST(InterpreterTest, DispAndFprintf) {
  Interpreter I = runOk("disp(42);\nfprintf('x=%d y=%.2f\\n', 3, 1.5);");
  EXPECT_EQ(I.output(), "42\nx=3 y=1.50\n");
}

TEST(InterpreterTest, RandIsDeterministicPerSeed) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("x = rand(2,2);", Diags);
  Interpreter A, B;
  A.seedRandom(42);
  B.seedRandom(42);
  A.run(R.Prog);
  B.run(R.Prog);
  EXPECT_TRUE(A.getVariable("x")->equals(*B.getVariable("x")));
  Interpreter C;
  C.seedRandom(43);
  C.run(R.Prog);
  EXPECT_FALSE(A.getVariable("x")->equals(*C.getVariable("x")));
}

TEST(InterpreterTest, UndefinedVariableFails) {
  std::string Msg = runError("y = nope + 1;");
  EXPECT_NE(Msg.find("undefined"), std::string::npos);
}

TEST(InterpreterTest, OutOfBoundsReadFails) {
  std::string Msg = runError("v = [1 2 3];\nx = v(7);");
  EXPECT_NE(Msg.find("exceeds"), std::string::npos);
}

TEST(InterpreterTest, NonIntegerIndexFails) {
  std::string Msg = runError("v = [1 2 3];\nx = v(1.5);");
  EXPECT_NE(Msg.find("positive integers"), std::string::npos);
}

TEST(InterpreterTest, LinearGrowOfMatrixFails) {
  std::string Msg = runError("A = [1 2; 3 4];\nA(9) = 1;");
  EXPECT_FALSE(Msg.empty());
}

TEST(InterpreterTest, StepLimitStopsRunawayLoop) {
  DiagnosticEngine Diags;
  ParseResult R = parseMatlab("while 1\n x = 1;\nend", Diags);
  Interpreter I;
  I.setStepLimit(1000);
  EXPECT_FALSE(I.run(R.Prog));
  EXPECT_NE(I.errorMessage().find("step limit"), std::string::npos);
}

TEST(InterpreterTest, HistogramEqualizationPipelineRuns) {
  // The paper's Fig. 3 loop code on a small synthetic image.
  Interpreter I = runOk(
      "im = mod(reshape(0:24-1, 4, 6), 8);\n"
      "h = hist(im(:), [0:255]);\n"
      "heq = 255*cumsum(h(:))/sum(h(:));\n"
      "for i=1:size(im,1)\n"
      "  for j=1:size(im,2)\n"
      "    im2(i,j) = heq(im(i,j)+1);\n"
      "  end\n"
      "end");
  const Value *Im2 = I.getVariable("im2");
  ASSERT_NE(Im2, nullptr);
  EXPECT_EQ(Im2->rows(), 4u);
  EXPECT_EQ(Im2->cols(), 6u);
  // Equalized intensities are monotone in the input intensity.
  const Value *Im = I.getVariable("im");
  for (size_t A = 0; A != Im->numel(); ++A)
    for (size_t B = 0; B != Im->numel(); ++B)
      if (Im->linear(A) <= Im->linear(B)) {
        EXPECT_LE(Im2->linear(A), Im2->linear(B) + 1e-12);
      }
}

TEST(InterpreterTest, WorkspaceComparison) {
  Interpreter A = runOk("x = [1 2 3];");
  Interpreter B = runOk("x = [1 2 3];");
  EXPECT_EQ(compareWorkspaces(A, B), "");
  Interpreter C = runOk("x = [1 2 4];");
  EXPECT_NE(compareWorkspaces(A, C), "");
  Interpreter D = runOk("x = [1 2 3]; y = 1;");
  EXPECT_NE(compareWorkspaces(A, D), "");
}

} // namespace

namespace {

TEST(InterpreterTest, FindAnyAllNnz) {
  Interpreter I = runOk("v = [0 3 0 5];\nf = find(v);\n"
                        "a1 = any(v);\na2 = any([0 0]);\n"
                        "b1 = all(v);\nb2 = all([1 2]);\n"
                        "c = nnz(v);\n"
                        "M = [1 0; 1 1];\nam = any(M);\nal = all(M);");
  const Value *F = I.getVariable("f");
  ASSERT_EQ(F->numel(), 2u);
  EXPECT_TRUE(F->isRow());
  EXPECT_DOUBLE_EQ(F->linear(0), 2);
  EXPECT_DOUBLE_EQ(F->linear(1), 4);
  EXPECT_DOUBLE_EQ(scalarVar(I, "a1"), 1);
  EXPECT_DOUBLE_EQ(scalarVar(I, "a2"), 0);
  EXPECT_DOUBLE_EQ(scalarVar(I, "b1"), 0);
  EXPECT_DOUBLE_EQ(scalarVar(I, "b2"), 1);
  EXPECT_DOUBLE_EQ(scalarVar(I, "c"), 2);
  EXPECT_DOUBLE_EQ(I.getVariable("am")->linear(1), 1);
  EXPECT_DOUBLE_EQ(I.getVariable("al")->linear(1), 0);
}

TEST(InterpreterTest, FindOnColumnYieldsColumn) {
  Interpreter I = runOk("f = find([0;7;8]);");
  const Value *F = I.getVariable("f");
  EXPECT_TRUE(F->isColumn());
  EXPECT_EQ(F->numel(), 2u);
}

TEST(InterpreterTest, NormAndDot) {
  Interpreter I = runOk("n = norm([3 4]);\nd = dot([1 2 3],[4;5;6]);");
  EXPECT_DOUBLE_EQ(scalarVar(I, "n"), 5);
  EXPECT_DOUBLE_EQ(scalarVar(I, "d"), 32);
}

TEST(InterpreterTest, Flips) {
  Interpreter I = runOk("r = fliplr([1 2 3]);\nc = flipud([1;2;3]);\n"
                        "M = flipud([1 2;3 4]);");
  EXPECT_DOUBLE_EQ(I.getVariable("r")->linear(0), 3);
  EXPECT_DOUBLE_EQ(I.getVariable("c")->linear(0), 3);
  EXPECT_DOUBLE_EQ(I.getVariable("M")->at(0, 0), 3);
}

TEST(InterpreterTest, FindFeedsIndexing) {
  Interpreter I = runOk("v = [10 0 30 0 50];\nw = v(find(v));");
  const Value *W = I.getVariable("w");
  ASSERT_EQ(W->numel(), 3u);
  EXPECT_DOUBLE_EQ(W->linear(2), 50);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Logical values and mask indexing
//===----------------------------------------------------------------------===//

TEST(LogicalTest, ComparisonsProduceLogical) {
  Interpreter I = runOk("m = [1 5 3] > 2;\nn = ~m;\nd = double(m);\n"
                        "t = true; f = false;\nil = islogical(m);\n"
                        "id = islogical(d);");
  EXPECT_TRUE(I.getVariable("m")->isLogical());
  EXPECT_TRUE(I.getVariable("n")->isLogical());
  EXPECT_FALSE(I.getVariable("d")->isLogical());
  EXPECT_TRUE(I.getVariable("t")->isLogical());
  EXPECT_DOUBLE_EQ(scalarVar(I, "il"), 1);
  EXPECT_DOUBLE_EQ(scalarVar(I, "id"), 0);
}

TEST(LogicalTest, MaskReadSelectsElements) {
  Interpreter I = runOk("x = [10 20 30 40];\ny = x(x > 15);\n"
                        "c = [1;2;3];\nz = c(c >= 2);");
  const Value *Y = I.getVariable("y");
  ASSERT_EQ(Y->numel(), 3u);
  EXPECT_TRUE(Y->isRow()); // row base -> row result
  EXPECT_DOUBLE_EQ(Y->linear(0), 20);
  const Value *Z = I.getVariable("z");
  EXPECT_TRUE(Z->isColumn());
  EXPECT_EQ(Z->numel(), 2u);
}

TEST(LogicalTest, MaskWriteAssignsElements) {
  Interpreter I = runOk("x = [1 2 3 4 5];\nx(x > 3) = 0;\n"
                        "y = [1 2 3];\ny(y < 3) = [8 9];");
  const Value *X = I.getVariable("x");
  EXPECT_DOUBLE_EQ(X->linear(3), 0);
  EXPECT_DOUBLE_EQ(X->linear(4), 0);
  EXPECT_DOUBLE_EQ(X->linear(2), 3);
  const Value *Y = I.getVariable("y");
  EXPECT_DOUBLE_EQ(Y->linear(0), 8);
  EXPECT_DOUBLE_EQ(Y->linear(1), 9);
}

TEST(LogicalTest, MaskRowSelectionOnMatrix) {
  Interpreter I = runOk("A = [1 2; 3 4; 5 6];\nm = [1 0 1] > 0;\n"
                        "B = A(m', :);\nC = A(logical([0;1;0]), :);");
  const Value *B = I.getVariable("B");
  EXPECT_EQ(B->rows(), 2u);
  EXPECT_DOUBLE_EQ(B->at(1, 0), 5);
  const Value *C = I.getVariable("C");
  EXPECT_EQ(C->rows(), 1u);
  EXPECT_DOUBLE_EQ(C->at(0, 1), 4);
}

TEST(LogicalTest, MaskTooLongFails) {
  std::string Msg = runError("x = [1 2];\ny = x(logical([1 0 1]));");
  EXPECT_NE(Msg.find("logical index"), std::string::npos);
}

TEST(LogicalTest, ArithmeticStripsLogical) {
  Interpreter I = runOk("m = [1 0 1] > 0;\ns = m + 0;");
  EXPECT_FALSE(I.getVariable("s")->isLogical());
}

TEST(LogicalTest, CountingWithMasksMatchesBuiltins) {
  Interpreter I = runOk("v = [3 -1 4 -1 5];\nneg = sum(v < 0);\n"
                        "k = nnz(v < 0);");
  EXPECT_DOUBLE_EQ(scalarVar(I, "neg"), 2);
  EXPECT_DOUBLE_EQ(scalarVar(I, "k"), 2);
}

TEST(LogicalTest, MaskSizeMismatchOnWriteFails) {
  std::string Msg = runError("x = [1 2 3];\nx(x > 1) = [7 8 9];");
  EXPECT_NE(Msg.find("mismatch"), std::string::npos);
}

} // namespace
