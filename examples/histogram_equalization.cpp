//===- histogram_equalization.cpp - Paper Fig. 3 end to end -----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating image-processing workload (Fig. 3): equalize the
/// histogram of an 8-bit image through a 256-entry lookup table. This
/// example runs the loop-based and the automatically vectorized versions
/// on a synthetic image, times both, and renders a small ASCII view of the
/// image before and after equalization.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"

#include <chrono>
#include <cstdio>

using namespace mvec;

namespace {

/// Renders a tiny ASCII visualization of a matrix of 0..255 intensities.
void renderAscii(const Value &Image, const char *Title) {
  static const char Ramp[] = " .:-=+*#%@";
  std::printf("%s (%zux%zu, showing 16x32 corner)\n", Title, Image.rows(),
              Image.cols());
  for (size_t R = 0; R < Image.rows() && R < 16; ++R) {
    for (size_t C = 0; C < Image.cols() && C < 32; ++C) {
      int Level = static_cast<int>(Image.at(R, C) / 256.0 * 9.999);
      std::putchar(Ramp[Level < 0 ? 0 : Level > 9 ? 9 : Level]);
    }
    std::putchar('\n');
  }
}

double runTimed(const Program &P, Interpreter &I) {
  auto Start = std::chrono::steady_clock::now();
  if (!I.run(P)) {
    std::fprintf(stderr, "execution failed: %s\n", I.errorMessage().c_str());
    std::exit(1);
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main() {
  // A 200x320 test image with a badly skewed (dark) histogram.
  const std::string Setup =
      "rows = 200; cols = 320;\n"
      "im = mod(floor(reshape(0:rows*cols-1, rows, cols)/17), 64);\n";
  const std::string LoopCode =
      "%! im(*,*) im2(*,*) heq(1,*) h(1,*)\n"
      "h = hist(im(:),[0:255]);\n"
      "heq = 255*cumsum(h(:))/sum(h(:));\n"
      "for i=1:size(im,1)\n"
      " for j=1:size(im,2)\n"
      "  im2(i,j) = heq(im(i,j)+1);\n"
      " end\n"
      "end\n";

  // 1. Vectorize the loop-based program.
  PipelineResult Result = vectorizeSource(Setup + LoopCode);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "vectorization failed:\n%s",
                 Result.Diags.str().c_str());
    return 1;
  }
  std::printf("--- automatically vectorized program ---\n%s\n",
              Result.VectorizedSource.c_str());

  // 2. Execute both versions and time them.
  DiagnosticEngine Diags;
  ParseResult Original = parseMatlab(Setup + LoopCode, Diags);
  ParseResult Vectorized = parseMatlab(Result.VectorizedSource, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  Interpreter LoopI, VectI;
  double LoopSecs = runTimed(Original.Prog, LoopI);
  double VectSecs = runTimed(Vectorized.Prog, VectI);

  std::printf("loop version:       %8.4f s\n", LoopSecs);
  std::printf("vectorized version: %8.4f s   (speedup %.1fx)\n", VectSecs,
              LoopSecs / VectSecs);

  // 3. Outputs must agree exactly.
  const Value *A = LoopI.getVariable("im2");
  const Value *B = VectI.getVariable("im2");
  if (!A || !B || !A->equals(*B, 1e-12)) {
    std::fprintf(stderr, "outputs differ!\n");
    return 1;
  }
  std::printf("outputs identical.\n\n");

  renderAscii(*LoopI.getVariable("im"), "input image");
  std::printf("\n");
  renderAscii(*B, "equalized image");
  return 0;
}
