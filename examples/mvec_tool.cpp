//===- mvec_tool.cpp - The mvec command-line vectorizer ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A source-to-source command line tool around the library — the shape a
/// user of the paper's prototype would actually invoke:
///
///   mvec_tool [options] input.m           vectorize a file (or - = stdin)
///
/// Options:
///   -o FILE            write transformed source to FILE (default stdout)
///   --remarks          print optimization remarks to stderr
///   --validate         run both versions in the interpreter and verify
///                      identical final workspaces
///   --run              execute the transformed program and print output
///   --plugin PATH      dlopen a pattern plugin (repeatable)
///   --no-transposes / --no-patterns / --no-reductions /
///   --no-reassociation / --no-normalize
///                      disable individual mechanisms
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "patterns/PluginAPI.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace mvec;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] input.m\n"
               "  -o FILE, --remarks, --validate, --run, --plugin PATH,\n"
               "  --no-transposes, --no-patterns, --no-reductions,\n"
               "  --no-reassociation, --no-normalize\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  VectorizerOptions Opts;
  std::string InputPath;
  std::string OutputPath;
  std::vector<std::string> Plugins;
  bool Validate = false, Run = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-o" && I + 1 < argc)
      OutputPath = argv[++I];
    else if (Arg == "--remarks")
      Opts.EmitRemarks = true;
    else if (Arg == "--validate")
      Validate = true;
    else if (Arg == "--run")
      Run = true;
    else if (Arg == "--plugin" && I + 1 < argc)
      Plugins.push_back(argv[++I]);
    else if (Arg == "--no-transposes")
      Opts.EnableTransposes = false;
    else if (Arg == "--no-patterns")
      Opts.EnablePatterns = false;
    else if (Arg == "--no-reductions")
      Opts.EnableReductions = false;
    else if (Arg == "--no-reassociation")
      Opts.EnableReassociation = false;
    else if (Arg == "--no-normalize")
      Opts.NormalizeLoops = false;
    else if (Arg == "--distribute-transposes")
      Opts.DistributeTransposes = true;
    else if (Arg == "-h" || Arg == "--help")
      return usage(argv[0]);
    else if (!Arg.empty() && Arg[0] == '-' && Arg != "-")
      return usage(argv[0]);
    else if (InputPath.empty())
      InputPath = Arg;
    else
      return usage(argv[0]);
  }
  if (InputPath.empty())
    return usage(argv[0]);

  // Read the input.
  std::string Source;
  if (InputPath == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", InputPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  // Assemble the pattern database.
  PatternDatabase DB = makeDefaultPatternDatabase();
  for (const std::string &Plugin : Plugins) {
    std::string Error;
    if (!loadPatternPlugin(Plugin, DB, Error)) {
      std::fprintf(stderr, "error: plugin '%s': %s\n", Plugin.c_str(),
                   Error.c_str());
      return 1;
    }
  }

  PipelineResult Result = vectorizeSource(Source, Opts, &DB);
  const std::string DisplayName = InputPath == "-" ? "<stdin>" : InputPath;
  if (Opts.EmitRemarks || !Result.succeeded())
    std::fprintf(stderr, "%s", Result.Diags.str(DisplayName).c_str());
  if (!Result.succeeded())
    return 1;

  std::fprintf(stderr,
               "%s: %u loop nest(s) seen, %u improved; %u statement(s) "
               "vectorized, %u left sequential\n",
               DisplayName.c_str(), Result.Stats.LoopNestsConsidered,
               Result.Stats.LoopNestsImproved, Result.Stats.StmtsVectorized,
               Result.Stats.StmtsSequential);

  if (Validate) {
    std::string Diff = diffRun(Source, Result.VectorizedSource);
    if (!Diff.empty()) {
      std::fprintf(stderr, "validation FAILED: %s\n", Diff.c_str());
      return 1;
    }
    std::fprintf(stderr, "validation: transformed program is semantically "
                         "equivalent\n");
  }

  if (OutputPath.empty()) {
    std::fputs(Result.VectorizedSource.c_str(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", OutputPath.c_str());
      return 1;
    }
    Out << Result.VectorizedSource;
  }

  if (Run) {
    DiagnosticEngine Diags;
    ParseResult Parsed = parseMatlab(Result.VectorizedSource, Diags);
    Interpreter I;
    if (!I.run(Parsed.Prog)) {
      std::fprintf(stderr, "runtime error: %s\n", I.errorMessage().c_str());
      return 1;
    }
    std::fputs(I.output().c_str(), stdout);
  }
  return 0;
}
