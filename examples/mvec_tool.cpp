//===- mvec_tool.cpp - The mvec command-line vectorizer ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A source-to-source command line tool around the library — the shape a
/// user of the paper's prototype would actually invoke:
///
///   mvec_tool [options] input.m           vectorize a file (or - = stdin)
///   mvec_tool --batch DIR [options]       vectorize every *.m file in DIR
///                                         concurrently via the service
///
/// Options:
///   -o FILE            write transformed source to FILE (default stdout)
///   --remarks          print optimization remarks to stderr
///   --validate         run both versions in the interpreter and verify
///                      identical final workspaces
///   --run              execute the transformed program and print output
///   --engine E         execution tier for --validate/--run and batch
///                      validation: ast (default, tree-walker), vm
///                      (register bytecode), or both (cross-check the two
///                      tiers for byte-identical behaviour; single-file
///                      mode only)
///   --plugin PATH      dlopen a pattern plugin (repeatable)
///   --cost-model M     profitability model: off (default, vectorize
///                      whenever legal) or on (keep loops the model
///                      prices cheaper than their vector form)
///   --cost-profile P   calibrated costs.mvec.json (default: built-in
///                      conservative profile; a rejected file falls back
///                      with a diagnostic)
///   --explain-cost     implies --cost-model on; prints one line per
///                      nest statement with the estimated vector/loop
///                      costs and the decision (single-file mode only)
///   --no-transposes / --no-patterns / --no-reductions /
///   --no-reassociation / --no-normalize
///                      disable individual mechanisms
///
/// Batch-mode options:
///   --batch DIR        process every *.m file under DIR (sorted order)
///   --jobs N           worker threads (default 4)
///   --cache N          result-cache entries (default 256; 0 disables)
///   --deadline-ms N    per-job deadline (default 10000; 0 = none)
///   --no-validate      skip differential validation of batch jobs
///   --stats            print the service metrics dump after the batch
///   --stats-json FILE  write the metrics as JSON to FILE
///
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "driver/Pipeline.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "interp/simd/SimdDispatch.h"
#include "patterns/PluginAPI.h"
#include "service/VectorizationService.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

using namespace mvec;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] input.m\n"
               "       %s --batch DIR [--jobs N] [--cache N] "
               "[--deadline-ms N] [--no-validate] [--engine ast|vm] "
               "[--stats] [--stats-json FILE]\n"
               "  -o FILE, --remarks, --validate, --run, "
               "--engine ast|vm|both, --plugin PATH,\n"
               "  --cost-model off|on, --cost-profile FILE, --explain-cost,\n"
               "  --simd %s (or MVEC_SIMD env),\n"
               "  --no-transposes, --no-patterns, --no-reductions,\n"
               "  --no-reassociation, --no-normalize\n",
               Argv0, Argv0, simd::flagValues());
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Vectorizes every *.m file under \p Dir through the service; returns the
/// process exit code (0 only when every job succeeded).
int runBatch(const std::string &Dir, const VectorizerOptions &Opts,
             const PatternDatabase &DB, unsigned Jobs, size_t CacheEntries,
             unsigned DeadlineMs, bool Validate, ExecEngine Engine,
             bool Stats, const std::string &StatsJsonPath) {
  namespace fs = std::filesystem;
  std::error_code EC;
  std::vector<std::string> Paths;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, EC))
    if (Entry.is_regular_file() && Entry.path().extension() == ".m")
      Paths.push_back(Entry.path().string());
  if (EC) {
    std::fprintf(stderr, "error: cannot read directory '%s': %s\n",
                 Dir.c_str(), EC.message().c_str());
    return 1;
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "error: no .m files under '%s'\n", Dir.c_str());
    return 1;
  }
  std::sort(Paths.begin(), Paths.end());

  std::vector<JobSpec> Specs;
  for (const std::string &Path : Paths) {
    JobSpec Spec;
    Spec.Name = Path;
    if (!readFile(Path, Spec.Source)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    Spec.Opts = Opts;
    Spec.Validate = Validate;
    Specs.push_back(std::move(Spec));
  }

  ServiceConfig Config;
  Config.Workers = Jobs;
  Config.CacheCapacity = CacheEntries;
  Config.DefaultDeadline = std::chrono::milliseconds(DeadlineMs);
  Config.DB = &DB;
  Config.Engine = Engine;
  VectorizationService Service(Config);
  std::vector<JobResult> Results = Service.runBatch(std::move(Specs));

  size_t Succeeded = 0, Degraded = 0;
  for (const JobResult &R : Results) {
    if (R.succeeded())
      ++Succeeded;
    else if (R.Status == JobStatus::Degraded)
      ++Degraded;
    std::fprintf(stderr, "%-40s %-9s %s%6.1f ms  %u stmt(s) vectorized%s%s\n",
                 R.Name.c_str(), jobStatusName(R.Status),
                 R.CacheHit ? "[cache] " : "", R.TotalSeconds * 1e3,
                 R.Stats.StmtsVectorized, R.Message.empty() ? "" : "\n    ",
                 R.Message.c_str());
  }
  if (Degraded != 0)
    std::fprintf(stderr,
                 "batch: %zu/%zu job(s) succeeded, %zu degraded "
                 "(original source passed through)\n",
                 Succeeded, Results.size(), Degraded);
  else
    std::fprintf(stderr, "batch: %zu/%zu job(s) succeeded\n", Succeeded,
                 Results.size());
  if (Stats)
    std::fprintf(stderr, "%s", Service.metrics().text().c_str());
  if (!StatsJsonPath.empty()) {
    std::ofstream Out(StatsJsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   StatsJsonPath.c_str());
      return 1;
    }
    Out << Service.metrics().json() << "\n";
  }
  return Succeeded == Results.size() ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  VectorizerOptions Opts;
  std::string InputPath;
  std::string OutputPath;
  std::vector<std::string> Plugins;
  bool Validate = false, Run = false;
  std::string BatchDir;
  unsigned Jobs = 4;
  size_t CacheEntries = 256;
  unsigned DeadlineMs = 10000;
  bool NoValidate = false, Stats = false;
  std::string StatsJsonPath;
  std::string EngineName = "ast";
  bool CostOn = false, ExplainCost = false;
  std::string CostProfile;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-o" && I + 1 < argc)
      OutputPath = argv[++I];
    else if (Arg == "--remarks")
      Opts.EmitRemarks = true;
    else if (Arg == "--validate")
      Validate = true;
    else if (Arg == "--run")
      Run = true;
    else if (Arg == "--plugin" && I + 1 < argc)
      Plugins.push_back(argv[++I]);
    else if (Arg == "--batch" && I + 1 < argc)
      BatchDir = argv[++I];
    else if (Arg == "--jobs" && I + 1 < argc)
      Jobs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--cache" && I + 1 < argc)
      CacheEntries = static_cast<size_t>(std::atoll(argv[++I]));
    else if (Arg == "--deadline-ms" && I + 1 < argc)
      DeadlineMs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--no-validate")
      NoValidate = true;
    else if (Arg == "--engine" && I + 1 < argc)
      EngineName = argv[++I];
    else if (Arg == "--cost-model" && I + 1 < argc) {
      std::string Mode = argv[++I];
      if (Mode == "off")
        CostOn = false;
      else if (Mode == "on")
        CostOn = true;
      else
        return usage(argv[0]);
    } else if (Arg == "--cost-profile" && I + 1 < argc)
      CostProfile = argv[++I];
    else if (Arg == "--explain-cost")
      ExplainCost = true;
    else if (simd::handleSimdFlag(argc, argv, I)) {
      // kernel dispatch configured (exits with status 2 on a bad level)
    } else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--stats-json" && I + 1 < argc)
      StatsJsonPath = argv[++I];
    else if (Arg == "--no-transposes")
      Opts.EnableTransposes = false;
    else if (Arg == "--no-patterns")
      Opts.EnablePatterns = false;
    else if (Arg == "--no-reductions")
      Opts.EnableReductions = false;
    else if (Arg == "--no-reassociation")
      Opts.EnableReassociation = false;
    else if (Arg == "--no-normalize")
      Opts.NormalizeLoops = false;
    else if (Arg == "--distribute-transposes")
      Opts.DistributeTransposes = true;
    else if (Arg == "-h" || Arg == "--help")
      return usage(argv[0]);
    else if (!Arg.empty() && Arg[0] == '-' && Arg != "-")
      return usage(argv[0]);
    else if (InputPath.empty())
      InputPath = Arg;
    else
      return usage(argv[0]);
  }
  if (BatchDir.empty() == InputPath.empty())
    return usage(argv[0]);
  if (EngineName != "ast" && EngineName != "vm" && EngineName != "both")
    return usage(argv[0]);
  // "both" fans one validation out into three runs; the batch path keeps
  // one engine per service instead.
  if (EngineName == "both" && !BatchDir.empty())
    return usage(argv[0]);
  // The decision log is a single-translation artifact; batch jobs go
  // through the (cost-fingerprinted) caches instead.
  if (ExplainCost && !BatchDir.empty())
    return usage(argv[0]);
  ExecEngine Engine =
      EngineName == "vm" ? ExecEngine::Vm : ExecEngine::Ast;

  std::unique_ptr<cost::CostModel> Model;
  if (CostOn || ExplainCost) {
    std::string Diag;
    Model = std::make_unique<cost::CostModel>(
        cost::loadCostProfileOrDefault(CostProfile, Diag));
    if (!Diag.empty())
      std::fprintf(stderr, "warning: %s\n", Diag.c_str());
    Opts.Cost = Model.get();
  }
  std::vector<cost::CostDecision> Decisions;
  if (ExplainCost)
    Opts.CostLog = &Decisions;

  if (!BatchDir.empty()) {
    PatternDatabase DB = makeDefaultPatternDatabase();
    for (const std::string &Plugin : Plugins) {
      std::string Error;
      if (!loadPatternPlugin(Plugin, DB, Error)) {
        std::fprintf(stderr, "error: plugin '%s': %s\n", Plugin.c_str(),
                     Error.c_str());
        return 1;
      }
    }
    DB.freeze();
    return runBatch(BatchDir, Opts, DB, Jobs, CacheEntries, DeadlineMs,
                    !NoValidate, Engine, Stats, StatsJsonPath);
  }

  // Read the input.
  std::string Source;
  if (InputPath == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", InputPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  // Assemble the pattern database.
  PatternDatabase DB = makeDefaultPatternDatabase();
  for (const std::string &Plugin : Plugins) {
    std::string Error;
    if (!loadPatternPlugin(Plugin, DB, Error)) {
      std::fprintf(stderr, "error: plugin '%s': %s\n", Plugin.c_str(),
                   Error.c_str());
      return 1;
    }
  }

  PipelineResult Result = vectorizeSource(Source, Opts, &DB);
  const std::string DisplayName = InputPath == "-" ? "<stdin>" : InputPath;
  if (Opts.EmitRemarks || !Result.succeeded())
    std::fprintf(stderr, "%s", Result.Diags.str(DisplayName).c_str());
  if (!Result.succeeded())
    return 1;

  std::fprintf(stderr,
               "%s: %u loop nest(s) seen, %u improved; %u statement(s) "
               "vectorized, %u left sequential\n",
               DisplayName.c_str(), Result.Stats.LoopNestsConsidered,
               Result.Stats.LoopNestsImproved, Result.Stats.StmtsVectorized,
               Result.Stats.StmtsSequential);
  if (ExplainCost) {
    if (Opts.Cost->profile().Calibrated)
      std::fprintf(stderr, "cost model: calibrated profile (simd %s)\n",
                   Opts.Cost->profile().SimdLevel.c_str());
    else
      std::fprintf(stderr, "cost model: built-in conservative profile\n");
    for (const cost::CostDecision &D : Decisions) {
      std::fprintf(stderr, "  line %u: %s\n", D.Line, D.Stmt.c_str());
      if (D.Vectorized)
        std::fprintf(stderr,
                     "    vectorized at level %u: vector ~%.0f ns vs loop "
                     "~%.0f ns%s (%s)\n",
                     D.ChosenLevel, D.VectorNs, D.LoopNs,
                     D.VariantOverride ? ", variant override" : "",
                     D.Detail.c_str());
      else
        std::fprintf(stderr,
                     "    kept loop form: vector ~%.0f ns vs loop ~%.0f ns "
                     "(%s)\n",
                     D.VectorNs, D.LoopNs, D.Detail.c_str());
    }
  }

  if (Validate) {
    RunLimits Limits;
    Limits.Engine = Engine;
    std::string Diff =
        diffRunLimited(Source, Result.VectorizedSource, Limits).Message;
    if (!Diff.empty()) {
      std::fprintf(stderr, "validation FAILED: %s\n", Diff.c_str());
      return 1;
    }
    std::fprintf(stderr, "validation: transformed program is semantically "
                         "equivalent\n");
  }
  if (EngineName == "both") {
    // Cross-check the execution tiers on both programs: the tree-walker
    // and the bytecode VM must behave byte-identically.
    for (const auto &[What, Src] :
         {std::pair<const char *, const std::string &>{"original", Source},
          {"transformed", Result.VectorizedSource}}) {
      DiffOutcome Out = engineDiffRun(Src);
      if (Out.Status == DiffStatus::Mismatch) {
        std::fprintf(stderr, "engine cross-check FAILED on %s program: %s\n",
                     What, Out.Message.c_str());
        return 1;
      }
    }
    std::fprintf(stderr,
                 "engine cross-check: ast and vm tiers agree byte-for-byte\n");
  }

  if (OutputPath.empty()) {
    std::fputs(Result.VectorizedSource.c_str(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", OutputPath.c_str());
      return 1;
    }
    Out << Result.VectorizedSource;
  }

  if (Run) {
    DiagnosticEngine Diags;
    ParseResult Parsed = parseMatlab(Result.VectorizedSource, Diags);
    Interpreter I;
    bool Ok;
    if (Engine == ExecEngine::Vm) {
      vm::CompiledProgram CP =
          vm::compileProgram(Parsed.Prog, Result.VectorizedSource);
      Ok = vm::execute(CP, I);
    } else {
      Ok = I.run(Parsed.Prog);
    }
    if (!Ok) {
      std::fprintf(stderr, "runtime error: %s\n", I.errorMessage().c_str());
      return 1;
    }
    std::fputs(I.output().c_str(), stdout);
  }
  return 0;
}
