//===- quickstart.cpp - Minimal mvec usage ----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 60-second tour: vectorize a loop-based MATLAB snippet, print the
/// transformed source, and prove the transformation preserved semantics by
/// executing both versions in the bundled interpreter.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cstdio>

int main() {
  // A loop-based program. The %! comment annotates variable shapes, as
  // the paper's prototype expects (scalars, row/column vectors, matrices);
  // shapes of the straight-line setup code are inferred automatically.
  const std::string Source =
      "n = 10;\n"
      "x = rand(n,1);\n"  // column vector
      "y = rand(1,n);\n"  // row vector
      "z = zeros(n,1);\n"
      "%! x(*,1) y(1,*) z(*,1)\n"
      "for i=1:n\n"
      "  z(i) = 2*x(i) + y(i);\n" // row + column: needs a transpose!
      "end\n";

  std::printf("--- original ---\n%s\n", Source.c_str());

  mvec::VectorizerOptions Opts;
  Opts.EmitRemarks = true;
  mvec::PipelineResult Result = mvec::vectorizeSource(Source, Opts);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "vectorization failed:\n%s",
                 Result.Diags.str().c_str());
    return 1;
  }

  std::printf("--- vectorized (%u statement(s)) ---\n%s\n",
              Result.Stats.StmtsVectorized,
              Result.VectorizedSource.c_str());

  std::printf("--- optimization remarks ---\n%s\n",
              Result.Diags.str("quickstart.m").c_str());

  // Differential validation: run both programs, compare workspaces.
  std::string Diff = mvec::diffRun(Source, Result.VectorizedSource);
  if (!Diff.empty()) {
    std::fprintf(stderr, "semantic divergence: %s\n", Diff.c_str());
    return 1;
  }
  std::printf("differential check: original and vectorized programs "
              "compute identical workspaces\n");
  return 0;
}
