% Paper Fig. 4: the compound example (diagonal accesses, dot product,
% matrix product, transposed read, broadcast), scaled to 1/10 size.
A = rand(150,151); B = rand(150,151); C = rand(150,151); D = rand(151,151);
a = rand(1,300);
%! A(*,*) B(*,*) C(*,*) D(*,*) a(1,*) ind(1,*)
ind = 1:75;
for i=2:2:150
 B(i,1) = D(i,i)*A(i,i)+C(i,:)*D(:,i);
 for j=3:2:151
  A(i,j) = B(i,ind)*C(ind,j)+D(j,i)'-a(2*i-1);
 end
end
