% Permutation gather: vectorizable only with the general-gather plugin.
% Run: mvec_tool --validate --plugin build/examples/libgather_pattern_plugin.so examples/matlab/gather.m
n = 12;
A = rand(n,n);
p = zeros(1,n);
for i=1:n
  p(i) = n+1-i;
end
a = zeros(1,n);
%! A(*,*) p(1,*) a(1,*) n(1)
for i=1:n
  a(i) = A(i,p(i));
end
