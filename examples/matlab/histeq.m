% Paper Fig. 3: histogram equalization of an 8-bit image.
% Run:  mvec_tool --validate --run examples/matlab/histeq.m
rows = 64; cols = 96;
im = mod(floor(reshape(0:rows*cols-1, rows, cols)/7), 64);
%! im(*,*) im2(*,*) heq(1,*) h(1,*)
h = hist(im(:),[0:255]);
heq = 255*cumsum(h(:))/sum(h(:));
for i=1:size(im,1)
 for j=1:size(im,2)
  im2(i,j) = heq(im(i,j)+1);
 end
end
fprintf('mean intensity before %g after %g\n', ...
        sum(im(:))/numel(im), sum(im2(:))/numel(im2));
