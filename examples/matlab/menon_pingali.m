% Paper Fig. 5: the three Menon & Pingali additive-reduction examples.
p = 40; n = 8; i = 5; N = 16; k = 1;
X = rand(8,p); L = rand(8,8);
a = rand(N,N); x_se = rand(N,1); f = rand(N,1); phi = zeros(1,2);
x = rand(n,1); A = rand(n,n); B = rand(n,n); C = rand(n,n); y = zeros(n,1);
%! X(*,*) L(*,*) i(1) p(1) a(*,*) x_se(*,1) f(*,1) phi(1,*) N(1) k(1)
%! x(*,1) A(*,*) B(*,*) C(*,*) y(*,1) n(1)

% Example 1: forward elimination step.
for kk=1:p
 for j=1:(i-1)
  X(i,kk) = X(i,kk) - L(i,j)*X(j,kk);
 end
end

% Example 2: quadratic form accumulation.
for ii=1:N
 for j=1:N
  phi(k) = phi(k) + a(ii,j)*x_se(ii)*f(j);
 end
end

% Example 3: quadruply nested reduction.
for ii=1:n
 for j=1:n
  for kk=1:n
   for l=1:n
    y(ii) = y(ii) + x(j)*A(ii,kk)*B(l,kk)*C(l,j);
   end
  end
 end
end
