% Five-point averaging stencil (image smoothing). Reads A, writes T:
% no loop-carried dependences, so both loops vectorize into slice algebra.
% Run: mvec_tool --validate examples/matlab/stencil.m
n = 32; m = 24;
A = rand(m,n);
T = zeros(m,n);
%! A(*,*) T(*,*) m(1) n(1)
for i=2:m-1
 for j=2:n-1
  T(i,j) = 0.25*(A(i-1,j)+A(i+1,j)+A(i,j-1)+A(i,j+1));
 end
end
