//===- gather_pattern_plugin.cpp - A user-defined pattern plugin ------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically loadable pattern plugin in the style of the paper's
/// Fig. 2. It extends the vectorizer with a "general gather" matrix-access
/// pattern: any access A(e1, e2) whose two subscripts vary with the same
/// loop (vectorized dimensionality (r1, r1)) is rewritten into the
/// column-major linear access
///
///     A(e1 + size(A,1)*(e2 - 1))
///
/// The built-in diagonal pattern only accepts affine subscripts c*i+d;
/// this plugin generalizes it to arbitrary row-shaped subscripts such as
/// permutation lookups A(i, p(i)).
///
/// Built as a shared library; the vectorizer loads it at runtime via
/// loadPatternPlugin() — no rebuild of the tool required.
///
//===----------------------------------------------------------------------===//

#include "frontend/Simplify.h"
#include "patterns/PluginAPI.h"

using namespace mvec;

namespace {

ExprPtr gatherTransform(const IndexExpr &Access, const PatternContext &) {
  if (Access.numArgs() != 2)
    return nullptr;
  // Decline ':' subscripts; everything else is taken as-is. Both
  // subscripts substitute to equally shaped row vectors because their
  // vectorized dimensionality was (1, r1) each.
  if (isa<MagicColonExpr>(Access.arg(0)) ||
      isa<MagicColonExpr>(Access.arg(1)))
    return nullptr;

  std::vector<ExprPtr> SizeArgs;
  SizeArgs.push_back(Access.base()->clone());
  SizeArgs.push_back(makeNumber(1));
  ExprPtr Rows = makeCall("size", std::move(SizeArgs));

  ExprPtr ColTerm = simplifyExpr(
      makeBinary(BinaryOp::Sub, Access.arg(1)->clone(), makeNumber(1)));
  ExprPtr Linear =
      makeBinary(BinaryOp::Add, Access.arg(0)->clone(),
                 makeBinary(BinaryOp::DotMul, std::move(Rows),
                            std::move(ColTerm)));
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Linear));
  return std::make_unique<IndexExpr>(Access.base()->clone(), std::move(Args),
                                     Access.loc());
}

} // namespace

extern "C" void mvecRegisterPatterns(PatternDatabase *DB) {
  DB->addAccessPattern(AccessPattern{
      "general-gather", PatternShape{PatternDim::var(1), PatternDim::var(1)},
      PatternShape{PatternDim::one(), PatternDim::var(1)}, gatherTransform});
}
