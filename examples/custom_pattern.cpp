//===- custom_pattern.cpp - Extending the pattern database ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the extensible loop pattern database (paper Sec. 3 and
/// Fig. 2): a permutation-gather loop that the built-in patterns cannot
/// vectorize becomes vectorizable once the user's "general gather" pattern
/// is added. The pattern is loaded twice, to show both mechanisms:
///
///   1. through the dlopen plugin protocol (the paper's DLL design),
///      loading ./libgather_pattern_plugin.so built from
///      gather_pattern_plugin.cpp;
///   2. registered directly through the PatternDatabase API.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "patterns/PluginAPI.h"

#include <cstdio>

// Entry point exported by the plugin library (also linked directly, to
// demonstrate plain API registration).
extern "C" void mvecRegisterPatterns(mvec::PatternDatabase *DB);

using namespace mvec;

namespace {

const char *const Source =
    "n = 8;\n"
    "A = rand(n,n);\n"
    "p = zeros(1,n);\n"
    "for i=1:n\n  p(i) = n+1-i;\nend\n" // a permutation (reversal)
    "a = zeros(1,n);\n"
    "%! A(*,*) p(1,*) a(1,*) n(1)\n"
    "for i=1:n\n"
    "  a(i) = A(i,p(i));\n" // gather along a permuted column per row
    "end\n";

int runWith(const PatternDatabase &DB, const char *Label) {
  VectorizerOptions Opts;
  PipelineResult Result = vectorizeSource(Source, Opts, &DB);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "%s: pipeline failed:\n%s", Label,
                 Result.Diags.str().c_str());
    return 1;
  }
  bool GatherVectorized =
      Result.VectorizedSource.find("a(1:n)=") != std::string::npos;
  std::printf("[%s] gather loop vectorized: %s\n", Label,
              GatherVectorized ? "yes" : "no");
  if (GatherVectorized) {
    std::string Diff = diffRun(Source, Result.VectorizedSource);
    if (!Diff.empty()) {
      std::fprintf(stderr, "  semantic divergence: %s\n", Diff.c_str());
      return 1;
    }
    std::printf("  -> %s  (validated against the loop version)\n",
                Result.VectorizedSource
                    .substr(Result.VectorizedSource.find("a(1:n)="))
                    .substr(0, 60)
                    .c_str());
  }
  return 0;
}

} // namespace

int main() {
  // Built-ins alone: the diagonal pattern declines A(i,p(i)) (the second
  // subscript is not affine), so the loop stays.
  PatternDatabase Builtin = makeDefaultPatternDatabase();
  if (runWith(Builtin, "built-in patterns"))
    return 1;

  // Mechanism 1: the paper's DLL design — dlopen the plugin.
#ifdef GATHER_PLUGIN_PATH
  {
    PatternDatabase DB = makeDefaultPatternDatabase();
    std::string Error;
    if (!loadPatternPlugin(GATHER_PLUGIN_PATH, DB, Error)) {
      std::fprintf(stderr, "plugin load failed: %s\n", Error.c_str());
      return 1;
    }
    std::printf("loaded plugin: %s (now %zu access patterns)\n",
                GATHER_PLUGIN_PATH, DB.numAccessPatterns());
    if (runWith(DB, "dlopen plugin"))
      return 1;
  }
#endif

  // Mechanism 2: direct registration through the library API.
  {
    PatternDatabase DB = makeDefaultPatternDatabase();
    mvecRegisterPatterns(&DB); // linked against the same plugin code
    if (runWith(DB, "API registration"))
      return 1;
  }
  return 0;
}
