//===- SandboxPool.cpp - Supervised out-of-process worker pool --------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sandbox/SandboxPool.h"

#include "resilience/Backoff.h"
#include "sandbox/Quarantine.h"
#include "service/Job.h"
#include "support/Io.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace mvec;
using namespace mvec::sandbox;
using namespace mvec::daemon;

using Clock = std::chrono::steady_clock;

namespace {

/// Reaps \p Pid, waiting up to \p BudgetMs for it to exit on its own;
/// past the budget it is SIGKILLed and the wait becomes blocking (a
/// SIGKILLed process cannot linger). Returns the wait status.
int reapWithDeadline(pid_t Pid, unsigned BudgetMs) {
  Clock::time_point Deadline = Clock::now() + std::chrono::milliseconds(BudgetMs);
  int Status = 0;
  for (;;) {
    pid_t R = ::waitpid(Pid, &Status, WNOHANG);
    if (R == Pid)
      return Status;
    if (R < 0 && errno != EINTR)
      return 0; // Already reaped elsewhere; nothing more to learn.
    if (Clock::now() >= Deadline) {
      ::kill(Pid, SIGKILL);
      while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
        ;
      return Status;
    }
    ::usleep(2000);
  }
}

WorkerFailure classifyStatus(int Status, int &Signal, int &ExitCode) {
  Signal = 0;
  ExitCode = -1;
  if (WIFEXITED(Status)) {
    ExitCode = WEXITSTATUS(Status);
    return ExitCode == 0 ? WorkerFailure::CleanExit : WorkerFailure::ExitError;
  }
  if (WIFSIGNALED(Status)) {
    Signal = WTERMSIG(Status);
    // SIGKILL is the kernel OOM killer's (and any external killer's)
    // signature; everything else is the process's own fault.
    return Signal == SIGKILL ? WorkerFailure::OomKill : WorkerFailure::Crash;
  }
  return WorkerFailure::Crash;
}

unsigned remainingMs(Clock::time_point Deadline) {
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left <= 0 ? 0 : static_cast<unsigned>(Left);
}

} // namespace

SandboxPool::SandboxPool(SandboxConfig C)
    : Config(std::move(C)), Breaker(Config.CrashLoop) {
  unsigned N = std::max(1u, Config.Workers);
  Slots.reserve(N);
  for (unsigned I = 0; I != N; ++I) {
    auto S = std::make_unique<Slot>();
    std::string Error;
    if (spawnWorker(Config, S->Proc, Error)) {
      S->St = Slot::State::Idle;
      S->EverSpawned = true;
      S->LastSeen = Clock::now();
    } else {
      // Leave it Dead; the supervisor keeps retrying with backoff.
      S->NextSpawnAt = Clock::now() + std::chrono::milliseconds(50);
    }
    Slots.push_back(std::move(S));
  }
  Supervisor = std::thread([this] { supervise(); });
}

SandboxPool::~SandboxPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  IdleCv.notify_all();
  if (Supervisor.joinable())
    Supervisor.join();
  // Closing the parent side is the shutdown signal: workers see EOF and
  // _exit(0). Give them a grace period, then force the issue.
  for (auto &S : Slots) {
    if (S->Proc.Fd >= 0) {
      ::close(S->Proc.Fd);
      S->Proc.Fd = -1;
    }
  }
  for (auto &S : Slots) {
    if (S->Proc.Pid > 0) {
      reapWithDeadline(S->Proc.Pid, 2000);
      S->Proc.Pid = -1;
    }
  }
}

std::vector<pid_t> SandboxPool::workerPids() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<pid_t> Out;
  for (const auto &S : Slots)
    if (S->St != Slot::State::Dead && S->Proc.Pid > 0)
      Out.push_back(S->Proc.Pid);
  return Out;
}

size_t SandboxPool::liveWorkers() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const auto &S : Slots)
    N += S->St != Slot::State::Dead;
  return N;
}

SandboxPool::Slot *SandboxPool::acquire(std::chrono::milliseconds Budget) {
  std::unique_lock<std::mutex> Lock(Mutex);
  Slot *Found = nullptr;
  auto Pick = [&] {
    if (Stopping)
      return true;
    for (auto &S : Slots) {
      if (S->St == Slot::State::Idle) {
        Found = S.get();
        return true;
      }
    }
    return false;
  };
  if (!IdleCv.wait_for(Lock, Budget, Pick) || !Found)
    return nullptr;
  Found->St = Slot::State::Busy;
  return Found;
}

void SandboxPool::release(Slot &S, bool Healthy) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S.St = Slot::State::Idle;
    S.LastSeen = Clock::now();
    if (Healthy)
      S.FailStreak = 0;
  }
  IdleCv.notify_one();
}

void SandboxPool::retireWorker(Slot &S, const WorkerFailure *Forced,
                               WorkerFailure &Fail, int &Signal,
                               int &ExitCode) {
  if (S.Proc.Fd >= 0) {
    ::close(S.Proc.Fd);
    S.Proc.Fd = -1;
  }
  int Status = 0;
  if (S.Proc.Pid > 0) {
    if (Forced)
      ::kill(S.Proc.Pid, SIGKILL);
    Status = reapWithDeadline(S.Proc.Pid, Forced ? 0 : 200);
    S.Proc.Pid = -1;
  }
  Fail = classifyStatus(Status, Signal, ExitCode);
  if (Forced) {
    Fail = *Forced;
    if (Signal == 0)
      Signal = SIGKILL;
  }
  noteDeath(S, Fail);
}

void SandboxPool::noteDeath(Slot &S, WorkerFailure Fail) {
  if (Fail == WorkerFailure::WatchdogTimeout)
    Metrics.SandboxWatchdogKills.fetch_add(1, std::memory_order_relaxed);
  else
    Metrics.SandboxCrashes.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mutex);
  S.St = Slot::State::Dead;
  S.FailStreak = std::min(S.FailStreak + 1, 16u);
  // Jittered exponential backoff before the slot respawns; seeded by the
  // slot's address so sibling slots never thundering-herd in lockstep.
  S.NextSpawnAt =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(backoffDelay(
                         Config.Respawn, S.FailStreak,
                         reinterpret_cast<uintptr_t>(&S)));
}

bool SandboxPool::exchange(Slot &S, const std::string &Wire, unsigned BudgetMs,
                           Response &Out, WorkerFailure &Fail, int &Signal,
                           int &ExitCode) {
  Fail = WorkerFailure::Crash;
  Signal = 0;
  ExitCode = -1;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(BudgetMs);
  if (!io::sendFull(S.Proc.Fd, Wire.data(), Wire.size(),
                    static_cast<int>(BudgetMs))) {
    retireWorker(S, nullptr, Fail, Signal, ExitCode);
    return false;
  }
  FrameReader Reader;
  char Buf[16 << 10];
  for (;;) {
    unsigned Left = remainingMs(Deadline);
    if (Left == 0) {
      WorkerFailure Timeout = WorkerFailure::WatchdogTimeout;
      retireWorker(S, &Timeout, Fail, Signal, ExitCode);
      return false;
    }
    int R = io::pollFor(S.Proc.Fd, POLLIN, static_cast<int>(Left));
    if (R == 0)
      continue; // Re-check the deadline and poll again.
    if (R < 0) {
      retireWorker(S, nullptr, Fail, Signal, ExitCode);
      return false;
    }
    ssize_t N = io::recvSome(S.Proc.Fd, Buf, sizeof(Buf));
    if (N <= 0) {
      // EOF or error: the worker is gone; the wait status says how.
      retireWorker(S, nullptr, Fail, Signal, ExitCode);
      return false;
    }
    Reader.feed(Buf, static_cast<size_t>(N));
    FrameReader::Frame Frame;
    std::string Error;
    FrameReader::Result Res = Reader.next(Frame, Error);
    if (Res == FrameReader::Result::NeedMore)
      continue;
    if (Res == FrameReader::Result::Malformed ||
        !responseFromFrame(Frame, Out, Error)) {
      WorkerFailure Babble = WorkerFailure::ProtocolError;
      retireWorker(S, &Babble, Fail, Signal, ExitCode);
      return false;
    }
    return true;
  }
}

bool SandboxPool::handle(const Request &R, uint64_t Key, Response &Out,
                         std::string &Why) {
  if (!Breaker.allow()) {
    Metrics.SandboxBreakerShed.fetch_add(1, std::memory_order_relaxed);
    Why = "sandbox crash-loop breaker open";
    return false;
  }
  Metrics.JobsSubmitted.fetch_add(1, std::memory_order_relaxed);
  unsigned BudgetMs = R.DeadlineMs ? R.DeadlineMs : Config.DeadlineMs;
  if (BudgetMs == 0)
    BudgetMs = 600000; // No deadline: still bound the watchdog somewhere.
  Clock::time_point Start = Clock::now();

  Slot *S = acquire(std::chrono::milliseconds(BudgetMs));
  if (!S) {
    // Not a worker failure (the breaker is not fed): the pool is simply
    // saturated or mid-respawn; the daemon sheds this request.
    Breaker.recordSuccess();
    Why = "no idle sandbox worker within the deadline";
    return false;
  }

  std::string Wire = serializeRequest(R);
  WorkerFailure Fail;
  int Signal, ExitCode;
  if (!exchange(*S, Wire, BudgetMs + Config.HeartbeatTimeoutMs, Out, Fail,
                Signal, ExitCode)) {
    // The slot is already retired and scheduled for respawn. Quarantine
    // the input that did this and feed the crash-loop breaker.
    if (R.V == Verb::Vec && !Config.QuarantineDir.empty()) {
      QuarantineRecord Rec;
      Rec.Cause = Fail;
      Rec.Signal = Signal;
      Rec.ExitCode = ExitCode;
      Rec.Name = R.Name;
      Rec.Validate = R.Validate;
      if (quarantineInput(Config.QuarantineDir, Key, R.Body, Rec, Config))
        Metrics.SandboxQuarantined.fetch_add(1, std::memory_order_relaxed);
    }
    Breaker.recordFailure();
    Why = std::string("worker ") + workerFailureName(Fail) +
          (Signal ? " (signal " + std::to_string(Signal) + ")" : "");
    return false;
  }

  Breaker.recordSuccess();
  release(*S, /*Healthy=*/true);

  // Mirror the worker's job-level outcome into this pool's registry so
  // STATS has the same shape for both isolation modes.
  double Wall = std::chrono::duration<double>(Clock::now() - Start).count();
  Metrics.TotalLatency.record(Wall);
  const std::string &St = Out.Status;
  if (St == jobStatusName(JobStatus::Succeeded))
    Metrics.JobsSucceeded.fetch_add(1, std::memory_order_relaxed);
  else if (St == jobStatusName(JobStatus::Failed))
    Metrics.JobsFailed.fetch_add(1, std::memory_order_relaxed);
  else if (St == jobStatusName(JobStatus::TimedOut))
    Metrics.JobsTimedOut.fetch_add(1, std::memory_order_relaxed);
  else if (St == jobStatusName(JobStatus::Cancelled))
    Metrics.JobsCancelled.fetch_add(1, std::memory_order_relaxed);
  else if (St == jobStatusName(JobStatus::Degraded))
    Metrics.JobsDegraded.fetch_add(1, std::memory_order_relaxed);
  if (R.V == Verb::Vec) {
    if (Out.CacheTier == "memory")
      Metrics.CacheHits.fetch_add(1, std::memory_order_relaxed);
    else
      Metrics.CacheMisses.fetch_add(1, std::memory_order_relaxed);
    if (Out.CacheTier == "disk")
      Metrics.DiskHits.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void SandboxPool::supervise() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (!Stopping) {
    // Sleep one heartbeat interval (wakes early on shutdown; spurious
    // wakes from release() notifications just run a cheap extra pass).
    IdleCv.wait_for(Lock,
                    std::chrono::milliseconds(
                        std::max(1u, Config.HeartbeatIntervalMs)),
                    [this] { return Stopping; });
    if (Stopping)
      break;

    // 1. Reap workers that died while idle (external SIGKILL, OOM
    //    killer striking between requests).
    for (auto &S : Slots) {
      if (S->St != Slot::State::Idle)
        continue;
      int Status = 0;
      pid_t R = ::waitpid(S->Proc.Pid, &Status, WNOHANG);
      if (R == S->Proc.Pid) {
        ::close(S->Proc.Fd);
        S->Proc.Fd = -1;
        S->Proc.Pid = -1;
        int Sig, Code;
        WorkerFailure Fail = classifyStatus(Status, Sig, Code);
        Metrics.SandboxCrashes.fetch_add(1, std::memory_order_relaxed);
        S->St = Slot::State::Dead;
        S->FailStreak = std::min(S->FailStreak + 1, 16u);
        S->NextSpawnAt = Clock::now() +
                         std::chrono::duration_cast<Clock::duration>(
                             backoffDelay(Config.Respawn, S->FailStreak,
                                          reinterpret_cast<uintptr_t>(S.get())));
        (void)Fail;
      }
    }

    // 2. Heartbeat: PING idle workers that have been quiet for a full
    //    interval; a silent one is watchdog-killed. The slot is marked
    //    Busy while we probe so no request can race onto it.
    for (auto &S : Slots) {
      if (S->St != Slot::State::Idle)
        continue;
      auto Quiet = std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - S->LastSeen)
                       .count();
      if (Quiet < static_cast<long long>(Config.HeartbeatIntervalMs))
        continue;
      S->St = Slot::State::Busy;
      Lock.unlock();
      Request Ping;
      Ping.V = Verb::Ping;
      Response Pong;
      WorkerFailure Fail;
      int Sig, Code;
      bool Ok = exchange(*S, serializeRequest(Ping),
                         std::max(1u, Config.HeartbeatTimeoutMs), Pong, Fail,
                         Sig, Code);
      if (Ok)
        release(*S, /*Healthy=*/true);
      // On failure exchange() already retired the slot.
      Lock.lock();
      if (Stopping)
        break;
    }
    if (Stopping)
      break;

    // 3. Respawn dead slots whose backoff has elapsed.
    for (auto &S : Slots) {
      if (S->St != Slot::State::Dead || Clock::now() < S->NextSpawnAt)
        continue;
      Slot *Raw = S.get();
      bool WasSpawned = Raw->EverSpawned;
      Lock.unlock();
      WorkerProcess Fresh;
      std::string Error;
      bool Ok = spawnWorker(Config, Fresh, Error);
      Lock.lock();
      if (Stopping) {
        if (Ok) {
          ::close(Fresh.Fd);
          reapWithDeadline(Fresh.Pid, 0);
        }
        break;
      }
      if (Ok) {
        Raw->Proc = Fresh;
        Raw->St = Slot::State::Idle;
        Raw->EverSpawned = true;
        Raw->LastSeen = Clock::now();
        if (WasSpawned)
          Metrics.SandboxRespawns.fetch_add(1, std::memory_order_relaxed);
        IdleCv.notify_all();
      } else {
        Raw->FailStreak = std::min(Raw->FailStreak + 1, 16u);
        Raw->NextSpawnAt =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               backoffDelay(Config.Respawn, Raw->FailStreak,
                                            reinterpret_cast<uintptr_t>(Raw)));
      }
    }
  }
}
