//===- Worker.h - Forked sandbox worker process -----------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One sandboxed worker: a fork()ed child (no exec — the vectorizer is
/// already in this binary) serving MVEC/1 frames on its half of an
/// AF_UNIX socketpair. The child applies its rlimits, drops every
/// inherited descriptor except its socket, builds a fresh single-thread
/// VectorizationService (its own caches, its own DiskStore handle on
/// the shared directory), and loops: read frame, serve, write frame,
/// until EOF — at which point it _exit(0)s. It never touches parent
/// state: the daemon's fleet, sockets, and locks are dead weight in the
/// child's address-space copy.
///
/// Fork safety: the parent is multithreaded, so the child may only call
/// into state that is either freshly constructed after the fork or
/// async-signal-safe until its own service exists. glibc reinitializes
/// its allocator across fork, and the child builds everything else from
/// scratch, so the only inherited mutable state the child reads is the
/// SandboxConfig value it was handed (copied pre-fork).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SANDBOX_WORKER_H
#define MVEC_SANDBOX_WORKER_H

#include "sandbox/Sandbox.h"

#include <string>
#include <sys/types.h>

namespace mvec {
namespace sandbox {

/// Parent-side handle to one live worker.
struct WorkerProcess {
  pid_t Pid = -1;
  int Fd = -1; ///< Parent half of the socketpair.
  bool valid() const { return Pid > 0 && Fd >= 0; }
};

/// socketpair + fork. On success \p Out holds the child's pid and the
/// parent-side fd (the child never returns from this call). Returns
/// false with \p Error set when the kernel refuses.
bool spawnWorker(const SandboxConfig &Config, WorkerProcess &Out,
                 std::string &Error);

/// The child's entire life: serve frames on \p Fd until EOF or a fatal
/// condition, then _exit. Exposed for tests that want to run the serve
/// loop over an arbitrary socket without forking.
[[noreturn]] void workerChildMain(int Fd, const SandboxConfig &Config);

} // namespace sandbox
} // namespace mvec

#endif // MVEC_SANDBOX_WORKER_H
