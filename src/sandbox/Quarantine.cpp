//===- Quarantine.cpp - Crash-input quarantine -------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sandbox/Quarantine.h"

#include "interp/simd/SimdDispatch.h"
#include "support/ContentHash.h"
#include "support/Io.h"

#include <filesystem>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace mvec;
using namespace mvec::sandbox;

namespace fs = std::filesystem;

std::string mvec::sandbox::quarantinePath(const std::string &Dir,
                                          uint64_t Key) {
  return Dir + "/" + contentHexKey(Key) + ".m";
}

bool mvec::sandbox::quarantineInput(const std::string &Dir, uint64_t Key,
                                    const std::string &Body,
                                    const QuarantineRecord &Rec,
                                    const SandboxConfig &Config) {
  if (Dir.empty())
    return false;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  std::string Path = quarantinePath(Dir, Key);
  if (fs::exists(Path, EC))
    return false; // First reproducer wins; keep counters == files.

  std::ostringstream Out;
  Out << "% mvec-quarantine v1\n"
      << "% key: " << contentHexKey(Key) << "\n"
      << "% cause: " << workerFailureName(Rec.Cause) << "\n"
      << "% signal: " << Rec.Signal << "\n"
      << "% exit: " << Rec.ExitCode << "\n"
      << "% engine: " << Config.Engine << "\n"
      << "% cost_model: " << Config.CostModel << "\n"
      << "% cost_profile: "
      << (Config.CostProfile.empty() ? "-" : Config.CostProfile) << "\n"
      << "% isa: " << simd::levelName(simd::activeLevel()) << "\n"
      << "% name: " << (Rec.Name.empty() ? "-" : Rec.Name) << "\n"
      << "% validate: " << (Rec.Validate ? 1 : 0) << "\n"
      << Body;
  std::string Data = Out.str();

  std::string Tmp = Path + ".tmp" + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  bool Ok = io::writeFull(Fd, Data.data(), Data.size());
  ::close(Fd);
  if (!Ok || ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}
