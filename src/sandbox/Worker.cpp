//===- Worker.cpp - Forked sandbox worker process ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sandbox/Worker.h"

#include "cost/CostModel.h"
#include "daemon/DiskStore.h"
#include "daemon/Protocol.h"
#include "service/VectorizationService.h"
#include "support/Io.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <vector>

#include <dirent.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

using namespace mvec;
using namespace mvec::sandbox;
using namespace mvec::daemon;

const char *mvec::sandbox::workerFailureName(WorkerFailure F) {
  switch (F) {
  case WorkerFailure::CleanExit:
    return "clean-exit";
  case WorkerFailure::ExitError:
    return "exit-error";
  case WorkerFailure::Crash:
    return "crash";
  case WorkerFailure::OomKill:
    return "oom-kill";
  case WorkerFailure::WatchdogTimeout:
    return "watchdog-timeout";
  case WorkerFailure::ProtocolError:
    return "protocol-error";
  case WorkerFailure::SpawnFailed:
    return "spawn-failed";
  }
  return "crash";
}

namespace {

/// Closes every descriptor except std{in,out,err} and \p Keep: the child
/// inherits the daemon's listening socket, client connections, sibling
/// worker sockets, and store fds, and must hold a reference to none of
/// them (a client whose connection the parent closes must see EOF, not a
/// half-dead socket pinned by a worker).
void closeAllFdsExcept(int Keep) {
  bool Scanned = false;
  if (DIR *D = ::opendir("/proc/self/fd")) {
    Scanned = true;
    std::vector<int> Victims;
    while (dirent *E = ::readdir(D)) {
      char *End = nullptr;
      long Fd = std::strtol(E->d_name, &End, 10);
      if (End == E->d_name || *End != '\0')
        continue;
      if (Fd > 2 && Fd != Keep && Fd != ::dirfd(D))
        Victims.push_back(static_cast<int>(Fd));
    }
    ::closedir(D);
    for (int Fd : Victims)
      ::close(Fd);
  }
  if (!Scanned) {
    long Max = ::sysconf(_SC_OPEN_MAX);
    if (Max <= 0 || Max > 65536)
      Max = 65536;
    for (int Fd = 3; Fd < Max; ++Fd)
      if (Fd != Keep)
        ::close(Fd);
  }
}

void applyLimit(int Resource, rlim_t Limit) {
  rlimit L{Limit, Limit};
  ::setrlimit(Resource, &L); // Best-effort; containment, not correctness.
}

/// Crash-campaign hooks: markers in a request body that make this worker
/// misbehave in a specific classified way. Gated behind
/// SandboxConfig::TestHooks; in production the markers are inert MATLAB
/// comments.
[[noreturn]] void runTestHook(const std::string &Marker) {
  if (Marker == "crash")
    ::abort(); // SIGABRT -> classified `crash`.
  if (Marker == "exit")
    ::_exit(7); // -> `exit-error`.
  if (Marker == "oom") {
    // Allocate-and-touch until the address space runs out, then emulate
    // the kernel OOM killer faithfully (it delivers SIGKILL) so the
    // parent exercises the same classification path a real OOM takes.
    try {
      std::vector<char *> Hog;
      for (;;) {
        char *P = new char[16 << 20];
        std::memset(P, 0x5a, 16 << 20);
        Hog.push_back(P);
      }
    } catch (const std::bad_alloc &) {
    }
    ::raise(SIGKILL);
  }
  // "spin": wedge without burning a full core so RLIMIT_CPU does not
  // race the watchdog in tests.
  for (;;)
    ::usleep(1000);
}

bool findTestHook(const std::string &Body, std::string &Marker) {
  size_t Pos = Body.find("%!sandbox-");
  if (Pos == std::string::npos)
    return false;
  size_t Start = Pos + std::strlen("%!sandbox-");
  size_t End = Start;
  while (End < Body.size() && std::isalpha(static_cast<unsigned char>(Body[End])))
    ++End;
  Marker = Body.substr(Start, End - Start);
  return true;
}

} // namespace

bool mvec::sandbox::spawnWorker(const SandboxConfig &Config,
                                WorkerProcess &Out, std::string &Error) {
  int Sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0) {
    Error = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Error = std::string("fork: ") + std::strerror(errno);
    ::close(Sv[0]);
    ::close(Sv[1]);
    return false;
  }
  if (Pid == 0) {
    ::close(Sv[0]);
    workerChildMain(Sv[1], Config); // noreturn
  }
  ::close(Sv[1]);
  Out.Pid = Pid;
  Out.Fd = Sv[0];
  return true;
}

void mvec::sandbox::workerChildMain(int Fd, const SandboxConfig &Config) {
  // Shed the parent's signal dispositions: the daemon's SIGINT/SIGTERM
  // handlers flip parent-side flags that mean nothing here, and the
  // watchdog's SIGKILL must behave exactly like an external kill.
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGHUP, SIG_DFL);
  ::signal(SIGPIPE, SIG_IGN);
#if defined(__linux__)
  // If the daemon itself dies, take the workers with it — no orphans.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  closeAllFdsExcept(Fd);
  if (Config.MemoryLimitMB)
    applyLimit(RLIMIT_AS, static_cast<rlim_t>(Config.MemoryLimitMB) << 20);
  if (Config.CpuLimitSeconds)
    applyLimit(RLIMIT_CPU, Config.CpuLimitSeconds);

  // Everything below is freshly constructed: own caches, own store
  // handle (no boot sweep — a sibling may be mid-write), own cost model.
  std::unique_ptr<DiskStore> Store;
  if (!Config.StoreDir.empty()) {
    try {
      Store = std::make_unique<DiskStore>(DiskStoreConfig{
          Config.StoreDir, Config.StoreMaxBytes, /*SweepTmps=*/false});
    } catch (const std::exception &E) {
      std::fprintf(stderr, "mvec-worker[%d]: store disabled: %s\n",
                   ::getpid(), E.what());
    }
  }
  std::unique_ptr<cost::CostModel> Cost;
  if (Config.CostModel == "on") {
    std::string Diag;
    Cost = std::make_unique<cost::CostModel>(
        cost::loadCostProfileOrDefault(Config.CostProfile, Diag));
    if (!Diag.empty())
      std::fprintf(stderr, "mvec-worker[%d]: %s\n", ::getpid(), Diag.c_str());
  }
  ServiceConfig SC;
  SC.Workers = 1; // One request in flight per worker process.
  SC.QueueCapacity = 4;
  SC.CacheCapacity = Config.CacheCapacity;
  SC.NestCacheCapacity = Config.NestCacheCapacity;
  SC.Store = Store.get();
  SC.Engine = Config.Engine == "vm" ? ExecEngine::Vm : ExecEngine::Ast;
  SC.CodeCacheCapacity = Config.CodeCacheCapacity;
  SC.Cost = Cost.get();
  VectorizationService Service(SC);

  FrameReader Reader;
  char Buf[16 << 10];
  for (;;) {
    FrameReader::Frame Frame;
    std::string Error;
    FrameReader::Result R = Reader.next(Frame, Error);
    if (R == FrameReader::Result::NeedMore) {
      ssize_t N = io::recvSome(Fd, Buf, sizeof(Buf));
      if (N <= 0)
        ::_exit(0); // Parent closed (or died): clean exit.
      Reader.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (R == FrameReader::Result::Malformed) {
      // The only peer is our own parent; garbage here is a supervisor
      // bug, not a client. Answer 400 for the record and bail.
      std::string Wire = badRequestResponse(Error);
      io::sendFull(Fd, Wire.data(), Wire.size(), 1000);
      ::_exit(3);
    }

    Request Req;
    Response Resp;
    if (!requestFromFrame(Frame, Req, Error)) {
      std::string Wire = badRequestResponse(Error);
      io::sendFull(Fd, Wire.data(), Wire.size(), 1000);
      ::_exit(3);
    }
    switch (Req.V) {
    case Verb::Ping:
      Resp.Message = "pong";
      break;
    case Verb::Stats:
      Resp.Body = Service.metrics().json();
      break;
    case Verb::Shutdown: {
      std::string Wire = serializeResponse(Resp);
      io::sendFull(Fd, Wire.data(), Wire.size(), 1000);
      ::_exit(0);
    }
    case Verb::Config:
      Resp.Status = jobStatusName(JobStatus::Failed);
      Resp.ErrorClass = errorClassName(ErrorClass::Input);
      Resp.Message = "workers take their config at spawn time";
      break;
    case Verb::Vec: {
      std::string Marker;
      if (Config.TestHooks && findTestHook(Req.Body, Marker))
        runTestHook(Marker); // noreturn
      JobSpec Spec;
      Spec.Name = Req.Name.empty() ? "request" : Req.Name;
      Spec.Source = Req.Body;
      Spec.Validate = Req.Validate;
      unsigned Deadline = Req.DeadlineMs ? Req.DeadlineMs : Config.DeadlineMs;
      Spec.Deadline = std::chrono::milliseconds(Deadline);
      JobResult Result = Service.submit(std::move(Spec)).get();
      Resp.Status = jobStatusName(Result.Status);
      Resp.ErrorClass = errorClassName(Result.Class);
      Resp.CacheTier =
          Result.DiskHit ? "disk" : (Result.CacheHit ? "memory" : "none");
      Resp.Attempts = Result.Attempts;
      Resp.Message = Result.Message;
      Resp.Body = std::move(Result.VectorizedSource);
      break;
    }
    }
    std::string Wire = serializeResponse(Resp);
    if (!io::sendFull(Fd, Wire.data(), Wire.size(), 10000))
      ::_exit(0); // Parent gone mid-response.
  }
}
