//===- Quarantine.h - Crash-input quarantine --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When an input kills a sandboxed worker, the supervisor writes it to
/// the quarantine directory so every crash becomes a fuzz-triage item
/// automatically. One file per content key:
///
///   <dir>/<content-hex-key>.m
///
/// The file is the request body verbatim, prefixed with a reproducer
/// header of MATLAB comment lines (so the file is still a loadable
/// script — `mvec_fuzz --replay` and `mvec` can consume it directly):
///
///   % mvec-quarantine v1
///   % key: 00c0ffee00c0ffee
///   % cause: crash
///   % signal: 11
///   % exit: -1
///   % engine: ast
///   % cost_model: off
///   % cost_profile: -
///   % isa: avx2
///   % name: request
///   % validate: 1
///   <original body bytes>
///
/// Writes are tmp+rename like the DiskStore, and a key that is already
/// quarantined is not rewritten — the first reproducer wins, and the
/// quarantined counter matches the number of files.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SANDBOX_QUARANTINE_H
#define MVEC_SANDBOX_QUARANTINE_H

#include "sandbox/Sandbox.h"

#include <string>

namespace mvec {
namespace sandbox {

/// What the header records about one worker death.
struct QuarantineRecord {
  WorkerFailure Cause = WorkerFailure::Crash;
  int Signal = 0;   ///< Terminating signal, 0 if none.
  int ExitCode = -1; ///< Exit status, -1 if killed by a signal.
  std::string Name;  ///< JobSpec name from the request.
  bool Validate = true;
};

/// Writes \p Body under \p Dir (created on demand) keyed by \p Key.
/// Returns true when a NEW quarantine file was published; false when the
/// key was already quarantined or any I/O failed. Thread-safe across
/// threads and processes (tmp+rename).
bool quarantineInput(const std::string &Dir, uint64_t Key,
                     const std::string &Body, const QuarantineRecord &Rec,
                     const SandboxConfig &Config);

/// The quarantine path \p Key would be written to.
std::string quarantinePath(const std::string &Dir, uint64_t Key);

} // namespace sandbox
} // namespace mvec

#endif // MVEC_SANDBOX_QUARANTINE_H
