//===- Sandbox.h - Process-isolation types ----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared types for `mvec::sandbox`, the daemon's crash-containment
/// layer. With `isolation = process`, each shard's VectorizationService
/// runs in forked worker processes behind AF_UNIX socketpairs speaking
/// the ordinary MVEC/1 frame protocol; the parent keeps only a
/// supervisor (SandboxPool) that forwards requests, watches heartbeats,
/// classifies deaths, quarantines crash-inducing inputs, and respawns
/// workers with jittered backoff. A genuine SIGSEGV, OOM kill, or
/// infinite loop then costs one worker process — never the daemon.
///
/// Failure taxonomy (WorkerFailure): every way a worker can stop serving
/// is classified so metrics, quarantine headers, and logs agree on
/// vocabulary:
///
///   clean-exit        exited 0 (EOF from the parent, SHUTDOWN frame)
///   exit-error        exited nonzero (unexpected; treated as a crash)
///   crash             died on a signal other than SIGKILL (SIGSEGV,
///                     SIGABRT from an assert or unhandled exception,
///                     SIGXCPU past RLIMIT_CPU, ...)
///   oom-kill          died on SIGKILL: the kernel OOM killer, or an
///                     operator/chaos campaign. Indistinguishable from
///                     the parent's side — both mean "gone, not my
///                     doing" — so they share a class.
///   watchdog-timeout  the parent SIGKILLed it: a request exceeded its
///                     deadline + grace, or an idle worker stopped
///                     answering PINGs
///   protocol-error    the worker wrote bytes that do not parse as a
///                     MVEC/1 response (memory corruption survived long
///                     enough to babble); killed and respawned
///   spawn-failed      fork/socketpair failed; retried with backoff
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SANDBOX_SANDBOX_H
#define MVEC_SANDBOX_SANDBOX_H

#include "resilience/Backoff.h"
#include "resilience/CircuitBreaker.h"

#include <cstddef>
#include <string>

namespace mvec {
namespace sandbox {

enum class WorkerFailure {
  CleanExit,
  ExitError,
  Crash,
  OomKill,
  WatchdogTimeout,
  ProtocolError,
  SpawnFailed,
};

const char *workerFailureName(WorkerFailure F);

struct SandboxConfig {
  /// Worker processes in the pool (one shard's worth; clamped >= 1).
  unsigned Workers = 2;

  // --- The service each worker runs (mirrors the shard's in-process
  // ServiceConfig; see Daemon::makeFleet) ---
  size_t CacheCapacity = 512;
  size_t NestCacheCapacity = 1024;
  size_t CodeCacheCapacity = 64;
  std::string Engine = "ast"; ///< "ast" or "vm"
  std::string CostModel = "off";
  std::string CostProfile;
  /// Directory of the shared DiskStore; each worker opens its own handle
  /// with SweepTmps=false (rename(2) atomicity makes concurrent writers
  /// safe; pid-qualified tmp names make them collision-free). Empty =
  /// memory tiers only.
  std::string StoreDir;
  size_t StoreMaxBytes = size_t(256) << 20;
  /// Default per-job deadline applied inside the worker when a request
  /// carries none.
  unsigned DeadlineMs = 10000;

  // --- Containment ---
  /// RLIMIT_AS per worker in MiB (0 = unlimited). Exhaustion surfaces as
  /// bad_alloc inside the worker (folded into a failed/degraded job
  /// result, or an abort if it strikes outside the service) — the
  /// kernel OOM killer path is SIGKILL and classified oom-kill.
  size_t MemoryLimitMB = 0;
  /// RLIMIT_CPU per worker in seconds, cumulative over the worker's
  /// lifetime (0 = unlimited). Exceeding it delivers SIGXCPU.
  unsigned CpuLimitSeconds = 0;
  /// How often the supervisor PINGs idle workers.
  unsigned HeartbeatIntervalMs = 250;
  /// An idle worker that does not answer a PING within this budget is
  /// SIGKILLed; also the grace added on top of a request's deadline
  /// before a busy worker is declared stuck.
  unsigned HeartbeatTimeoutMs = 2000;
  /// Where crash-inducing inputs are written (empty disables
  /// quarantine). See Quarantine.h for the file format.
  std::string QuarantineDir = "corpus/quarantine";
  /// Honor `%!sandbox-crash` / `%!sandbox-spin` / `%!sandbox-oom`
  /// markers in request bodies (crash-campaign hook; never set in
  /// production configurations).
  bool TestHooks = false;
  /// Backoff between respawn attempts of one worker slot; the retry
  /// number is the slot's consecutive-failure streak, so a crash-looping
  /// slot backs off exponentially while a one-off crash respawns almost
  /// immediately.
  RetryPolicy Respawn{/*MaxAttempts=*/3,
                      /*InitialBackoff=*/std::chrono::milliseconds(20),
                      /*Multiplier=*/2.0, /*Jitter=*/0.5,
                      /*MaxBackoff=*/std::chrono::milliseconds(2000)};
  /// Crash-loop breaker: consecutive worker deaths trip it Open and the
  /// pool sheds requests (the daemon answers degraded passthrough)
  /// until the cooldown elapses. FailureThreshold 0 disables.
  BreakerConfig CrashLoop{/*FailureThreshold=*/8,
                          /*Cooldown=*/std::chrono::milliseconds(2000),
                          /*HalfOpenProbes=*/1};
};

} // namespace sandbox
} // namespace mvec

#endif // MVEC_SANDBOX_SANDBOX_H
