//===- SandboxPool.h - Supervised out-of-process worker pool ----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parent half of process isolation: a pool of forked workers
/// (Worker.h) plus the supervisor that keeps them alive. One shard with
/// `isolation = process` owns one SandboxPool where it would otherwise
/// own a VectorizationService.
///
/// Request path (handle()): admission through the crash-loop breaker,
/// acquire an idle worker (waiting at most the request's deadline),
/// write the MVEC/1 request frame, and read the response with a
/// watchdog budget of deadline + heartbeat-timeout grace. Any deviation
/// — EOF, unparsable bytes, budget exhausted — kills the worker,
/// classifies the death from the wait status, quarantines the input,
/// feeds the breaker, and reports failure so the daemon can answer
/// degraded byte-exact passthrough. A worker serves exactly one request
/// at a time, so a response on its socket is unambiguously ours.
///
/// Supervisor thread: every heartbeat interval it reaps workers that
/// died while idle (external SIGKILL, OOM killer), PINGs idle workers
/// and SIGKILLs any that stay silent past the heartbeat timeout, and
/// respawns dead slots once their jittered backoff (slot failure streak
/// drives resilience::backoffDelay) has elapsed.
///
/// Metrics: the pool owns a ServiceMetrics registry — job counters are
/// mirrored from worker responses, and the Sandbox* counters record
/// supervision events — so the daemon's STATS document has the same
/// shape for both isolation modes.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SANDBOX_SANDBOXPOOL_H
#define MVEC_SANDBOX_SANDBOXPOOL_H

#include "daemon/Protocol.h"
#include "resilience/CircuitBreaker.h"
#include "sandbox/Worker.h"
#include "service/ServiceMetrics.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mvec {
namespace sandbox {

class SandboxPool {
public:
  /// Spawns the initial workers (failures are retried by the
  /// supervisor, not fatal) and starts the supervisor thread.
  explicit SandboxPool(SandboxConfig Config);
  /// Closes every worker socket (EOF = clean exit), reaps with a grace
  /// period, SIGKILLs stragglers.
  ~SandboxPool();

  SandboxPool(const SandboxPool &) = delete;
  SandboxPool &operator=(const SandboxPool &) = delete;

  /// Serves one request through an isolated worker. \p Key is the
  /// request's content key (quarantine file name / backoff seed).
  /// Returns false with \p Why set when no worker could produce a
  /// response — worker death, watchdog kill, breaker open, or no idle
  /// worker within the deadline — in which case the caller degrades;
  /// the no-protocol-error invariant is its job, not ours.
  bool handle(const daemon::Request &R, uint64_t Key,
              daemon::Response &Out, std::string &Why);

  const SandboxConfig &config() const { return Config; }
  ServiceMetrics &metrics() { return Metrics; }
  const ServiceMetrics &metrics() const { return Metrics; }
  /// Pids of currently-live workers (for STATS and kill campaigns).
  std::vector<pid_t> workerPids() const;
  /// Live worker count (spawned and not yet known-dead).
  size_t liveWorkers() const;

private:
  struct Slot {
    WorkerProcess Proc;
    enum class State { Dead, Idle, Busy } St = State::Dead;
    /// Consecutive deaths without an intervening successful response;
    /// drives the respawn backoff.
    unsigned FailStreak = 0;
    std::chrono::steady_clock::time_point NextSpawnAt{};
    std::chrono::steady_clock::time_point LastSeen{};
    bool EverSpawned = false;
  };

  /// Waits up to \p Budget for an idle slot and marks it Busy. Null on
  /// timeout or shutdown.
  Slot *acquire(std::chrono::milliseconds Budget);
  void release(Slot &S, bool Healthy);
  /// One full request/response exchange on a Busy slot. On failure the
  /// slot's worker is dead (killed if need be) and classified.
  bool exchange(Slot &S, const std::string &Wire, unsigned BudgetMs,
                daemon::Response &Out, WorkerFailure &Fail, int &Signal,
                int &ExitCode);
  /// Kills (if alive), reaps, classifies, and marks the slot Dead.
  /// \p Forced names the failure when the parent initiated the kill.
  void retireWorker(Slot &S, const WorkerFailure *Forced, WorkerFailure &Fail,
                    int &Signal, int &ExitCode);
  void noteDeath(Slot &S, WorkerFailure Fail);
  void supervise();

  SandboxConfig Config;
  ServiceMetrics Metrics;
  CircuitBreaker Breaker;

  mutable std::mutex Mutex;
  std::condition_variable IdleCv;
  std::vector<std::unique_ptr<Slot>> Slots;
  bool Stopping = false;

  std::thread Supervisor;
};

} // namespace sandbox
} // namespace mvec

#endif // MVEC_SANDBOX_SANDBOXPOOL_H
