//===- ASTUtils.h - AST traversal helpers -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality, identifier collection and identifier substitution
/// over expressions — the building blocks of the rewriting passes.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_ASTUTILS_H
#define MVEC_FRONTEND_ASTUTILS_H

#include "frontend/AST.h"

#include <functional>
#include <map>
#include <set>
#include <string>

namespace mvec {

/// Structural (syntactic) equality of two expressions. Source locations are
/// ignored. Used e.g. to recognize the accumulator occurrence A(J) on the
/// right-hand side of an additive-reduction statement.
bool exprEquals(const Expr &A, const Expr &B);

/// Collects every identifier occurring in \p E (including index-expression
/// base names) into \p Names.
void collectIdentifiers(const Expr &E, std::set<std::string> &Names);

/// True if identifier \p Name occurs anywhere in \p E.
bool mentionsIdentifier(const Expr &E, const std::string &Name);

/// Replaces every free occurrence of identifier \p Name in \p E with a clone
/// of \p Replacement, returning the rewritten expression. Occurrences as an
/// IndexExpr base are not replaced (a(i): the 'a' is a variable being
/// indexed, not a scalar use) unless \p ReplaceBases is set.
ExprPtr substituteIdentifier(ExprPtr E, const std::string &Name,
                             const Expr &Replacement,
                             bool ReplaceBases = false);

/// Visits every expression node of \p E in pre-order.
void visitExpr(const Expr &E, const std::function<void(const Expr &)> &Fn);

/// Visits every statement in \p Body recursively (including nested loop and
/// branch bodies) in source order.
void visitStmts(const std::vector<StmtPtr> &Body,
                const std::function<void(const Stmt &)> &Fn);

/// Evaluates \p E as a compile-time numeric constant. Returns true and sets
/// \p Value on success. Handles numbers, unary +/- and the four arithmetic
/// binary operators on constants.
bool evaluateConstant(const Expr &E, double &Value);

/// Like evaluateConstant, but additionally resolves plain identifiers
/// through \p Constants (name -> known numeric value).
bool evaluateConstantWith(const Expr &E,
                          const std::map<std::string, double> &Constants,
                          double &Value);

/// True when \p E contains an 'end' keyword belonging to the *current*
/// subscript — 'end' inside a nested subscript (A(B(end))) binds to the
/// nested one and is not counted.
bool mentionsEndKeyword(const Expr &E);

/// Replaces every current-subscript 'end' in \p E with the constant
/// \p Extent (nested subscripts keep theirs, resolved when they are
/// evaluated).
ExprPtr replaceEndKeyword(ExprPtr E, double Extent);

} // namespace mvec

#endif // MVEC_FRONTEND_ASTUTILS_H
