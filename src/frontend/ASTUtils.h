//===- ASTUtils.h - AST traversal helpers -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality, identifier collection and identifier substitution
/// over expressions — the building blocks of the rewriting passes.
///
/// The visitors are templates so the per-node callback inlines instead of
/// going through a std::function thunk; profiles showed the thunk dispatch
/// dominating the cold compile path.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_ASTUTILS_H
#define MVEC_FRONTEND_ASTUTILS_H

#include "frontend/AST.h"

#include <map>
#include <set>
#include <string>

namespace mvec {

/// Structural (syntactic) equality of two expressions. Source locations are
/// ignored. Used e.g. to recognize the accumulator occurrence A(J) on the
/// right-hand side of an additive-reduction statement.
bool exprEquals(const Expr &A, const Expr &B);

namespace detail {

template <typename Fn> void visitExprImpl(const Expr &E, Fn &F) {
  F(E);
  switch (E.kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return;
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    visitExprImpl(*R.start(), F);
    if (R.step())
      visitExprImpl(*R.step(), F);
    visitExprImpl(*R.stop(), F);
    return;
  }
  case Expr::Kind::Unary:
    visitExprImpl(*cast<UnaryExpr>(E).operand(), F);
    return;
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    visitExprImpl(*B.lhs(), F);
    visitExprImpl(*B.rhs(), F);
    return;
  }
  case Expr::Kind::Transpose:
    visitExprImpl(*cast<TransposeExpr>(E).operand(), F);
    return;
  case Expr::Kind::Index: {
    const auto &I = cast<IndexExpr>(E);
    visitExprImpl(*I.base(), F);
    for (unsigned A = 0, N = I.numArgs(); A != N; ++A)
      visitExprImpl(*I.arg(A), F);
    return;
  }
  case Expr::Kind::Matrix:
    for (const auto &Row : cast<MatrixExpr>(E).rows())
      for (const ExprPtr &Elt : Row)
        visitExprImpl(*Elt, F);
    return;
  }
}

template <typename Fn>
void visitStmtsImpl(const std::vector<StmtPtr> &Body, Fn &F) {
  for (const StmtPtr &S : Body) {
    F(*S);
    if (const auto *For = dyn_cast<ForStmt>(S.get()))
      visitStmtsImpl(For->body(), F);
    else if (const auto *While = dyn_cast<WhileStmt>(S.get()))
      visitStmtsImpl(While->body(), F);
    else if (const auto *If = dyn_cast<IfStmt>(S.get()))
      for (const IfStmt::Branch &B : If->branches())
        visitStmtsImpl(B.Body, F);
  }
}

} // namespace detail

/// Visits every expression node of \p E in pre-order.
template <typename Fn> void visitExpr(const Expr &E, Fn &&F) {
  detail::visitExprImpl(E, F);
}

/// Visits every statement in \p Body recursively (including nested loop and
/// branch bodies) in source order.
template <typename Fn>
void visitStmts(const std::vector<StmtPtr> &Body, Fn &&F) {
  detail::visitStmtsImpl(Body, F);
}

/// Collects every identifier occurring in \p E (including index-expression
/// base names) into \p Names.
void collectIdentifiers(const Expr &E, std::set<std::string> &Names);

/// Interned-symbol variant of collectIdentifiers.
void collectIdentifiers(const Expr &E, std::set<Symbol> &Names);

/// True if identifier \p Name occurs anywhere in \p E. The Symbol overload
/// pointer-compares and stops at the first hit.
bool mentionsIdentifier(const Expr &E, Symbol Name);
inline bool mentionsIdentifier(const Expr &E, const std::string &Name) {
  return mentionsIdentifier(E, internSymbol(Name));
}

/// Replaces every free occurrence of identifier \p Name in \p E with a clone
/// of \p Replacement, returning the rewritten expression. Occurrences as an
/// IndexExpr base are not replaced (a(i): the 'a' is a variable being
/// indexed, not a scalar use) unless \p ReplaceBases is set.
ExprPtr substituteIdentifier(ExprPtr E, Symbol Name, const Expr &Replacement,
                             bool ReplaceBases = false);
inline ExprPtr substituteIdentifier(ExprPtr E, const std::string &Name,
                                    const Expr &Replacement,
                                    bool ReplaceBases = false) {
  return substituteIdentifier(std::move(E), internSymbol(Name), Replacement,
                              ReplaceBases);
}

/// Evaluates \p E as a compile-time numeric constant. Returns true and sets
/// \p Value on success. Handles numbers, unary +/- and the four arithmetic
/// binary operators on constants.
bool evaluateConstant(const Expr &E, double &Value);

/// Like evaluateConstant, but additionally resolves plain identifiers
/// through \p Constants (name -> known numeric value).
bool evaluateConstantWith(const Expr &E,
                          const std::map<Symbol, double> &Constants,
                          double &Value);

/// True when \p E contains an 'end' keyword belonging to the *current*
/// subscript — 'end' inside a nested subscript (A(B(end))) binds to the
/// nested one and is not counted.
bool mentionsEndKeyword(const Expr &E);

/// Replaces every current-subscript 'end' in \p E with the constant
/// \p Extent (nested subscripts keep theirs, resolved when they are
/// evaluated).
ExprPtr replaceEndKeyword(ExprPtr E, double Extent);

} // namespace mvec

#endif // MVEC_FRONTEND_ASTUTILS_H
