//===- Simplify.h - Algebraic expression cleanup ----------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local algebraic simplification of expressions: constant folding and the
/// identities x+0, x-0, 0+x, x*1, 1*x, x/1, x*0. Used to keep generated
/// code readable (loop normalization would otherwise emit "2*i+0").
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_SIMPLIFY_H
#define MVEC_FRONTEND_SIMPLIFY_H

#include "frontend/AST.h"

namespace mvec {

/// Returns the simplified expression (may be the input, rewritten in
/// place).
ExprPtr simplifyExpr(ExprPtr E);

/// Simplifies every expression in a statement in place.
void simplifyStmt(Stmt &S);

/// Distributes transposes inward — the "later optimization" the paper
/// leaves open: (A+B)' becomes A'+B', (A*B)' becomes B'*A', x'' becomes
/// x. All rewrites are shape-generic identities; transposes that cannot
/// be distributed (subscripts, calls, '/') stay put.
ExprPtr distributeTransposes(ExprPtr E);

} // namespace mvec

#endif // MVEC_FRONTEND_SIMPLIFY_H
