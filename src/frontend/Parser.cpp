//===- Parser.cpp - MATLAB parser -----------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "resilience/FaultInjection.h"

#include <cassert>

using namespace mvec;

Parser::Parser(std::string Source, DiagnosticEngine &Diags) : Diags(Diags) {
  Lexer Lex(std::move(Source), Diags);
  Tokens = Lex.lexAll();
  Annotations = Lex.annotations();
}

const Token &Parser::peek(unsigned Ahead) {
  size_t P = Pos;
  unsigned Remaining = Ahead;
  while (P < Tokens.size()) {
    const Token &Tok = Tokens[P];
    // Inside parentheses (but not matrix brackets, where newlines separate
    // rows) newlines are insignificant.
    bool SkipNewline = ParenDepth > 0 && Tok.is(TokenKind::Newline);
    if (!SkipNewline) {
      if (Remaining == 0)
        return Tok;
      --Remaining;
    }
    ++P;
  }
  return Tokens.back(); // Eof
}

Token Parser::consume() {
  while (Pos < Tokens.size() - 1 && ParenDepth > 0 &&
         Tokens[Pos].is(TokenKind::Newline))
    ++Pos;
  Token Tok = Tokens[Pos];
  if (Pos < Tokens.size() - 1)
    ++Pos;
  return Tok;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (!current().is(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (consumeIf(Kind))
    return true;
  // After the depth limit tripped the parse was abandoned wholesale; every
  // frame unwinding against Eof would otherwise add one bogus diagnostic.
  if (!DepthExceeded)
    Diags.error(current().Loc, std::string("expected ") +
                                   tokenKindName(Kind) + " " + Context +
                                   ", found " +
                                   tokenKindName(current().Kind));
  return false;
}

bool Parser::enterExpr() {
  if (DepthExceeded)
    return false;
  if (ExprDepth >= MaxExprDepth) {
    reportDepthLimit();
    return false;
  }
  ++ExprDepth;
  return true;
}

void Parser::reportDepthLimit() {
  DepthExceeded = true;
  Diags.error(current().Loc,
              "expression nesting exceeds the maximum depth of " +
                  std::to_string(MaxExprDepth) +
                  "; rewrite using intermediate variables");
  // Abandon the rest of the parse: consume to Eof so every recursive frame
  // already on the stack unwinds against a terminator and recovery stays
  // linear in the input size.
  while (!current().is(TokenKind::Eof))
    consume();
}

void Parser::skipStatementSeparators() {
  while (current().is(TokenKind::Newline) ||
         current().is(TokenKind::Semicolon) || current().is(TokenKind::Comma))
    consume();
}

void Parser::syncToStatementBoundary() {
  while (!current().is(TokenKind::Eof) && !current().is(TokenKind::Newline) &&
         !current().is(TokenKind::Semicolon) &&
         !current().is(TokenKind::KwEnd))
    consume();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ParseResult Parser::parseProgram() {
  ParseResult Result;
  // The whole parse tree lives and dies with the returned Program.
  Result.Prog.Arena = std::make_shared<ArenaAllocator>();
  ArenaScope Scope(Result.Prog.Arena.get());
  Result.Prog.Stmts = parseStmtList();
  if (!current().is(TokenKind::Eof))
    Diags.error(current().Loc, std::string("unexpected ") +
                                   tokenKindName(current().Kind) +
                                   " at top level");
  Result.Annotations = std::move(Annotations);
  return Result;
}

ExprPtr Parser::parseSingleExpression() {
  ExprPtr E = parseExpr();
  skipStatementSeparators();
  if (!current().is(TokenKind::Eof))
    Diags.error(current().Loc, "trailing input after expression");
  return E;
}

bool Parser::startsStmtListTerminator() const {
  const Token &Tok = Tokens[Pos];
  return Tok.is(TokenKind::Eof) || Tok.is(TokenKind::KwEnd) ||
         Tok.is(TokenKind::KwElse) || Tok.is(TokenKind::KwElseIf);
}

std::vector<StmtPtr> Parser::parseStmtList() {
  std::vector<StmtPtr> Stmts;
  skipStatementSeparators();
  while (!startsStmtListTerminator()) {
    unsigned Before = Diags.errorCount();
    StmtPtr S = parseStmt();
    if (S)
      Stmts.push_back(std::move(S));
    if (Diags.errorCount() != Before)
      syncToStatementBoundary();
    skipStatementSeparators();
  }
  return Stmts;
}

StmtPtr Parser::parseStmt() {
  switch (current().Kind) {
  case TokenKind::KwFor:
  case TokenKind::KwWhile:
  case TokenKind::KwIf: {
    // Nested control flow recurses through parseStmtList and charges the
    // same depth budget as expressions: statement trees run through the
    // same recursive destructor and visitor paths.
    if (!enterExpr())
      return nullptr;
    StmtPtr S = current().is(TokenKind::KwFor)     ? parseFor()
                : current().is(TokenKind::KwWhile) ? parseWhile()
                                                   : parseIf();
    leaveExpr();
    return S;
  }
  case TokenKind::KwBreak: {
    SourceLoc Loc = consume().Loc;
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = consume().Loc;
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::KwReturn: {
    SourceLoc Loc = consume().Loc;
    return std::make_unique<ReturnStmt>(Loc);
  }
  case TokenKind::KwFunction:
    Diags.error(current().Loc,
                "function definitions are not supported; provide a script");
    syncToStatementBoundary();
    return nullptr;
  default:
    return parseAssignOrExpr();
  }
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = consume().Loc; // 'for'
  bool Parenthesized = consumeIf(TokenKind::LParen);
  if (!current().is(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected loop index variable after 'for'");
    syncToStatementBoundary();
    return nullptr;
  }
  std::string IndexVar = consume().Text;
  if (!expect(TokenKind::Assign, "after for-loop index variable"))
    return nullptr;
  ExprPtr Range = parseExpr();
  if (Parenthesized)
    expect(TokenKind::RParen, "to close 'for ('");
  std::vector<StmtPtr> Body = parseStmtList();
  expect(TokenKind::KwEnd, "to close 'for'");
  return std::make_unique<ForStmt>(std::move(IndexVar), std::move(Range),
                                   std::move(Body), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  ExprPtr Cond = parseExpr();
  std::vector<StmtPtr> Body = parseStmtList();
  expect(TokenKind::KwEnd, "to close 'while'");
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // 'if'
  std::vector<IfStmt::Branch> Branches;
  IfStmt::Branch First;
  First.Cond = parseExpr();
  First.Body = parseStmtList();
  Branches.push_back(std::move(First));
  while (current().is(TokenKind::KwElseIf)) {
    consume();
    IfStmt::Branch B;
    B.Cond = parseExpr();
    B.Body = parseStmtList();
    Branches.push_back(std::move(B));
  }
  if (consumeIf(TokenKind::KwElse)) {
    IfStmt::Branch Else;
    Else.Body = parseStmtList();
    Branches.push_back(std::move(Else));
  }
  expect(TokenKind::KwEnd, "to close 'if'");
  return std::make_unique<IfStmt>(std::move(Branches), Loc);
}

StmtPtr Parser::parseAssignOrExpr() {
  SourceLoc Loc = current().Loc;
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (!consumeIf(TokenKind::Assign))
    return std::make_unique<ExprStmt>(std::move(E), Loc);

  if (!isa<IdentExpr>(E.get()) && !isa<IndexExpr>(E.get())) {
    Diags.error(Loc, "invalid assignment target");
    syncToStatementBoundary();
    return nullptr;
  }
  ExprPtr RHS = parseExpr();
  if (!RHS)
    return nullptr;
  return std::make_unique<AssignStmt>(std::move(E), std::move(RHS), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::errorExpr(const char *Message) {
  if (!DepthExceeded)
    Diags.error(current().Loc, Message);
  return makeNumber(0);
}

ExprPtr Parser::parseExpr() {
  if (!enterExpr())
    return errorExpr("expression too deeply nested");
  ExprPtr E = parseOrOr();
  leaveExpr();
  return E;
}

// The binary-operator levels below build left-leaning chains iteratively, so
// they never deepen the C++ call stack themselves — but each iteration adds
// one level to the resulting *tree*, and a 100k-term chain would later blow
// the stack in the recursive consumers (and in the unique_ptr destructor
// chain). Each loop therefore charges one depth unit per node built and
// credits them back when it returns.

ExprPtr Parser::parseOrOr() {
  ExprPtr LHS = parseAndAnd();
  unsigned Charged = 0;
  while (current().is(TokenKind::PipePipe)) {
    if (!enterExpr())
      break;
    ++Charged;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseAndAnd();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::OrOr, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  ExprDepth -= Charged;
  return LHS;
}

ExprPtr Parser::parseAndAnd() {
  ExprPtr LHS = parseOr();
  unsigned Charged = 0;
  while (current().is(TokenKind::AmpAmp)) {
    if (!enterExpr())
      break;
    ++Charged;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseOr();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::AndAnd, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  ExprDepth -= Charged;
  return LHS;
}

ExprPtr Parser::parseOr() {
  ExprPtr LHS = parseAnd();
  unsigned Charged = 0;
  while (current().is(TokenKind::Pipe)) {
    if (!enterExpr())
      break;
    ++Charged;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseAnd();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  ExprDepth -= Charged;
  return LHS;
}

ExprPtr Parser::parseAnd() {
  ExprPtr LHS = parseComparison();
  unsigned Charged = 0;
  while (current().is(TokenKind::Amp)) {
    if (!enterExpr())
      break;
    ++Charged;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseComparison();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  ExprDepth -= Charged;
  return LHS;
}

ExprPtr Parser::parseComparison() {
  ExprPtr LHS = parseRange();
  unsigned Charged = 0;
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Lt:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::Gt:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::Le:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Ge:
      Op = BinaryOp::Ge;
      break;
    case TokenKind::EqEq:
      Op = BinaryOp::Eq;
      break;
    case TokenKind::NotEq:
      Op = BinaryOp::Ne;
      break;
    default:
      ExprDepth -= Charged;
      return LHS;
    }
    if (!enterExpr()) {
      ExprDepth -= Charged;
      return LHS;
    }
    ++Charged;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseRange();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
}

ExprPtr Parser::parseRange() {
  ExprPtr First = parseAdditive();
  if (!current().is(TokenKind::Colon))
    return First;
  SourceLoc Loc = consume().Loc;
  ExprPtr Second = parseAdditive();
  if (!current().is(TokenKind::Colon))
    return std::make_unique<RangeExpr>(std::move(First), nullptr,
                                       std::move(Second), Loc);
  consume();
  ExprPtr Third = parseAdditive();
  return std::make_unique<RangeExpr>(std::move(First), std::move(Second),
                                     std::move(Third), Loc);
}

bool Parser::minusBeginsNewMatrixElement() {
  // Inside a matrix literal, "a -b" is two elements while "a - b" and "a-b"
  // are subtractions: the sign must be preceded but not followed by
  // whitespace.
  if (MatrixDepth == 0 || ParenDepth > 0)
    return false;
  const Token &Op = current();
  if (!Op.is(TokenKind::Plus) && !Op.is(TokenKind::Minus))
    return false;
  return Op.PrecededBySpace && !peek(1).PrecededBySpace;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  unsigned Charged = 0;
  while ((current().is(TokenKind::Plus) || current().is(TokenKind::Minus)) &&
         !minusBeginsNewMatrixElement()) {
    if (!enterExpr())
      break;
    ++Charged;
    BinaryOp Op =
        current().is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseMultiplicative();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  ExprDepth -= Charged;
  return LHS;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parseUnary();
  unsigned Charged = 0;
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Star:
      Op = BinaryOp::Mul;
      break;
    case TokenKind::Slash:
      Op = BinaryOp::Div;
      break;
    case TokenKind::DotStar:
      Op = BinaryOp::DotMul;
      break;
    case TokenKind::DotSlash:
      Op = BinaryOp::DotDiv;
      break;
    case TokenKind::Backslash:
    case TokenKind::DotBackslash:
      Diags.error(current().Loc,
                  "left-division operators are not supported");
      consume();
      continue;
    default:
      ExprDepth -= Charged;
      return LHS;
    }
    if (!enterExpr()) {
      ExprDepth -= Charged;
      return LHS;
    }
    ++Charged;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseUnary();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
}

ExprPtr Parser::parseUnary() {
  UnaryOp Op;
  switch (current().Kind) {
  case TokenKind::Plus:
    Op = UnaryOp::Plus;
    break;
  case TokenKind::Minus:
    Op = UnaryOp::Minus;
    break;
  case TokenKind::Tilde:
    Op = UnaryOp::Not;
    break;
  default:
    return parsePower();
  }
  // Prefix chains ("----x") self-recurse, so they charge depth directly.
  if (!enterExpr())
    return errorExpr("expression too deeply nested");
  SourceLoc Loc = consume().Loc;
  ExprPtr E = std::make_unique<UnaryExpr>(Op, parseUnary(), Loc);
  leaveExpr();
  return E;
}

ExprPtr Parser::parsePower() {
  ExprPtr LHS = parsePostfix();
  unsigned Charged = 0;
  while (current().is(TokenKind::Caret) ||
         current().is(TokenKind::DotCaret)) {
    if (!enterExpr())
      break;
    ++Charged;
    BinaryOp Op =
        current().is(TokenKind::Caret) ? BinaryOp::Pow : BinaryOp::DotPow;
    SourceLoc Loc = consume().Loc;
    // MATLAB allows a signed exponent: 2^-1.
    ExprPtr RHS;
    if (current().is(TokenKind::Plus) || current().is(TokenKind::Minus)) {
      UnaryOp UOp = current().is(TokenKind::Plus) ? UnaryOp::Plus
                                                  : UnaryOp::Minus;
      SourceLoc ULoc = consume().Loc;
      RHS = std::make_unique<UnaryExpr>(UOp, parsePostfix(), ULoc);
    } else {
      RHS = parsePostfix();
    }
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  ExprDepth -= Charged;
  return LHS;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  unsigned Charged = 0;
  while (true) {
    if (current().is(TokenKind::LParen)) {
      if (!enterExpr())
        break;
      ++Charged;
      SourceLoc Loc = current().Loc;
      std::vector<ExprPtr> Args = parseIndexArgs();
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Args), Loc);
      continue;
    }
    if (current().is(TokenKind::Quote) || current().is(TokenKind::DotQuote)) {
      if (!enterExpr())
        break;
      ++Charged;
      SourceLoc Loc = consume().Loc;
      E = std::make_unique<TransposeExpr>(std::move(E), Loc);
      continue;
    }
    break;
  }
  ExprDepth -= Charged;
  return E;
}

std::vector<ExprPtr> Parser::parseIndexArgs() {
  assert(current().is(TokenKind::LParen));
  consume();
  ++ParenDepth;
  ++IndexDepth;
  std::vector<ExprPtr> Args;
  if (!current().is(TokenKind::RParen)) {
    while (true) {
      // A bare ':' argument (whole-dimension selection).
      if (current().is(TokenKind::Colon) &&
          (peek(1).is(TokenKind::Comma) || peek(1).is(TokenKind::RParen))) {
        SourceLoc Loc = consume().Loc;
        Args.push_back(std::make_unique<MagicColonExpr>(Loc));
      } else {
        Args.push_back(parseExpr());
      }
      if (!consumeIf(TokenKind::Comma))
        break;
    }
  }
  --IndexDepth;
  --ParenDepth;
  expect(TokenKind::RParen, "to close subscript or call");
  return Args;
}

bool Parser::startsMatrixElement() {
  switch (current().Kind) {
  case TokenKind::Number:
  case TokenKind::String:
  case TokenKind::Identifier:
  case TokenKind::LParen:
  case TokenKind::LBracket:
  case TokenKind::Tilde:
  case TokenKind::Plus:
  case TokenKind::Minus:
    return true;
  default:
    return false;
  }
}

ExprPtr Parser::parseMatrixLiteral() {
  SourceLoc Loc = consume().Loc; // '['
  ++MatrixDepth;
  std::vector<MatrixExpr::Row> Rows;
  MatrixExpr::Row CurrentRow;
  while (!current().is(TokenKind::RBracket) &&
         !current().is(TokenKind::Eof)) {
    if (current().is(TokenKind::Semicolon) ||
        current().is(TokenKind::Newline)) {
      consume();
      if (!CurrentRow.empty()) {
        Rows.push_back(std::move(CurrentRow));
        CurrentRow.clear();
      }
      continue;
    }
    if (current().is(TokenKind::Comma)) {
      consume();
      continue;
    }
    if (!CurrentRow.empty() && !startsMatrixElement()) {
      Diags.error(current().Loc, std::string("unexpected ") +
                                     tokenKindName(current().Kind) +
                                     " in matrix literal");
      break;
    }
    CurrentRow.push_back(parseExpr());
  }
  if (!CurrentRow.empty())
    Rows.push_back(std::move(CurrentRow));
  --MatrixDepth;
  expect(TokenKind::RBracket, "to close matrix literal");
  return std::make_unique<MatrixExpr>(std::move(Rows), Loc);
}

ExprPtr Parser::parsePrimary() {
  switch (current().Kind) {
  case TokenKind::Number: {
    Token Tok = consume();
    return std::make_unique<NumberExpr>(Tok.NumValue, Tok.Loc);
  }
  case TokenKind::String: {
    Token Tok = consume();
    return std::make_unique<StringExpr>(Tok.Text, Tok.Loc);
  }
  case TokenKind::Identifier: {
    Token Tok = consume();
    return std::make_unique<IdentExpr>(Tok.Text, Tok.Loc);
  }
  case TokenKind::KwEnd:
    if (IndexDepth > 0) {
      SourceLoc Loc = consume().Loc;
      return std::make_unique<EndKeywordExpr>(Loc);
    }
    return errorExpr("'end' is only valid inside a subscript");
  case TokenKind::LParen: {
    consume();
    ++ParenDepth;
    ExprPtr E = parseExpr();
    --ParenDepth;
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::LBracket:
    return parseMatrixLiteral();
  case TokenKind::LBrace:
    return errorExpr("cell arrays are not supported");
  default:
    return errorExpr("expected an expression");
  }
}

ParseResult mvec::parseMatlab(std::string Source, DiagnosticEngine &Diags) {
  maybeInject(FaultSite::ParseEntry);
  Parser P(std::move(Source), Diags);
  return P.parseProgram();
}
