//===- ASTUtils.cpp - AST traversal helpers -------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTUtils.h"

#include <cmath>

using namespace mvec;

bool mvec::exprEquals(const Expr &A, const Expr &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Expr::Kind::Number:
    return cast<NumberExpr>(A).value() == cast<NumberExpr>(B).value();
  case Expr::Kind::String:
    return cast<StringExpr>(A).value() == cast<StringExpr>(B).value();
  case Expr::Kind::Ident:
    return cast<IdentExpr>(A).sym() == cast<IdentExpr>(B).sym();
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return true;
  case Expr::Kind::Range: {
    const auto &RA = cast<RangeExpr>(A);
    const auto &RB = cast<RangeExpr>(B);
    if ((RA.step() == nullptr) != (RB.step() == nullptr))
      return false;
    if (RA.step() && !exprEquals(*RA.step(), *RB.step()))
      return false;
    return exprEquals(*RA.start(), *RB.start()) &&
           exprEquals(*RA.stop(), *RB.stop());
  }
  case Expr::Kind::Unary: {
    const auto &UA = cast<UnaryExpr>(A);
    const auto &UB = cast<UnaryExpr>(B);
    return UA.op() == UB.op() && exprEquals(*UA.operand(), *UB.operand());
  }
  case Expr::Kind::Binary: {
    const auto &BA = cast<BinaryExpr>(A);
    const auto &BB = cast<BinaryExpr>(B);
    return BA.op() == BB.op() && exprEquals(*BA.lhs(), *BB.lhs()) &&
           exprEquals(*BA.rhs(), *BB.rhs());
  }
  case Expr::Kind::Transpose:
    return exprEquals(*cast<TransposeExpr>(A).operand(),
                      *cast<TransposeExpr>(B).operand());
  case Expr::Kind::Index: {
    const auto &IA = cast<IndexExpr>(A);
    const auto &IB = cast<IndexExpr>(B);
    if (IA.numArgs() != IB.numArgs())
      return false;
    if (!exprEquals(*IA.base(), *IB.base()))
      return false;
    for (unsigned I = 0, E = IA.numArgs(); I != E; ++I)
      if (!exprEquals(*IA.arg(I), *IB.arg(I)))
        return false;
    return true;
  }
  case Expr::Kind::Matrix: {
    const auto &MA = cast<MatrixExpr>(A);
    const auto &MB = cast<MatrixExpr>(B);
    if (MA.rows().size() != MB.rows().size())
      return false;
    for (size_t R = 0; R != MA.rows().size(); ++R) {
      if (MA.rows()[R].size() != MB.rows()[R].size())
        return false;
      for (size_t C = 0; C != MA.rows()[R].size(); ++C)
        if (!exprEquals(*MA.rows()[R][C], *MB.rows()[R][C]))
          return false;
    }
    return true;
  }
  }
  return false;
}

void mvec::collectIdentifiers(const Expr &E, std::set<std::string> &Names) {
  visitExpr(E, [&Names](const Expr &Node) {
    if (const auto *Ident = dyn_cast<IdentExpr>(&Node))
      Names.insert(Ident->name());
  });
}

void mvec::collectIdentifiers(const Expr &E, std::set<Symbol> &Names) {
  visitExpr(E, [&Names](const Expr &Node) {
    if (const auto *Ident = dyn_cast<IdentExpr>(&Node))
      Names.insert(Ident->sym());
  });
}

bool mvec::mentionsIdentifier(const Expr &E, Symbol Name) {
  switch (E.kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return false;
  case Expr::Kind::Ident:
    return cast<IdentExpr>(E).sym() == Name;
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    return mentionsIdentifier(*R.start(), Name) ||
           (R.step() && mentionsIdentifier(*R.step(), Name)) ||
           mentionsIdentifier(*R.stop(), Name);
  }
  case Expr::Kind::Unary:
    return mentionsIdentifier(*cast<UnaryExpr>(E).operand(), Name);
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return mentionsIdentifier(*B.lhs(), Name) ||
           mentionsIdentifier(*B.rhs(), Name);
  }
  case Expr::Kind::Transpose:
    return mentionsIdentifier(*cast<TransposeExpr>(E).operand(), Name);
  case Expr::Kind::Index: {
    const auto &I = cast<IndexExpr>(E);
    if (mentionsIdentifier(*I.base(), Name))
      return true;
    for (unsigned A = 0, N = I.numArgs(); A != N; ++A)
      if (mentionsIdentifier(*I.arg(A), Name))
        return true;
    return false;
  }
  case Expr::Kind::Matrix:
    for (const auto &Row : cast<MatrixExpr>(E).rows())
      for (const ExprPtr &Elt : Row)
        if (mentionsIdentifier(*Elt, Name))
          return true;
    return false;
  }
  return false;
}

ExprPtr mvec::substituteIdentifier(ExprPtr E, Symbol Name,
                                   const Expr &Replacement,
                                   bool ReplaceBases) {
  switch (E->kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return E;
  case Expr::Kind::Ident:
    if (cast<IdentExpr>(*E).sym() == Name)
      return Replacement.clone();
    return E;
  case Expr::Kind::Range: {
    auto &R = cast<RangeExpr>(*E);
    ExprPtr Start = substituteIdentifier(R.start()->clone(), Name, Replacement,
                                         ReplaceBases);
    ExprPtr Step;
    if (R.step())
      Step = substituteIdentifier(R.step()->clone(), Name, Replacement,
                                  ReplaceBases);
    ExprPtr Stop = substituteIdentifier(R.stop()->clone(), Name, Replacement,
                                        ReplaceBases);
    return std::make_unique<RangeExpr>(std::move(Start), std::move(Step),
                                       std::move(Stop), E->loc());
  }
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(*E);
    ExprPtr Operand = substituteIdentifier(U.takeOperand(), Name, Replacement,
                                           ReplaceBases);
    return std::make_unique<UnaryExpr>(U.op(), std::move(Operand), E->loc());
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(*E);
    ExprPtr LHS =
        substituteIdentifier(B.takeLHS(), Name, Replacement, ReplaceBases);
    ExprPtr RHS =
        substituteIdentifier(B.takeRHS(), Name, Replacement, ReplaceBases);
    return std::make_unique<BinaryExpr>(B.op(), std::move(LHS), std::move(RHS),
                                        E->loc());
  }
  case Expr::Kind::Transpose: {
    auto &T = cast<TransposeExpr>(*E);
    ExprPtr Operand = substituteIdentifier(T.takeOperand(), Name, Replacement,
                                           ReplaceBases);
    return std::make_unique<TransposeExpr>(std::move(Operand), E->loc());
  }
  case Expr::Kind::Index: {
    auto &I = cast<IndexExpr>(*E);
    ExprPtr Base = I.base()->clone();
    if (ReplaceBases || !isa<IdentExpr>(Base.get()))
      Base = substituteIdentifier(std::move(Base), Name, Replacement,
                                  ReplaceBases);
    std::vector<ExprPtr> Args;
    Args.reserve(I.numArgs());
    for (ExprPtr &A : I.args())
      Args.push_back(substituteIdentifier(std::move(A), Name, Replacement,
                                          ReplaceBases));
    return std::make_unique<IndexExpr>(std::move(Base), std::move(Args),
                                       E->loc());
  }
  case Expr::Kind::Matrix: {
    auto &M = cast<MatrixExpr>(*E);
    std::vector<MatrixExpr::Row> Rows;
    Rows.reserve(M.rows().size());
    for (MatrixExpr::Row &Row : M.rows()) {
      MatrixExpr::Row NewRow;
      NewRow.reserve(Row.size());
      for (ExprPtr &Elt : Row)
        NewRow.push_back(substituteIdentifier(std::move(Elt), Name,
                                              Replacement, ReplaceBases));
      Rows.push_back(std::move(NewRow));
    }
    return std::make_unique<MatrixExpr>(std::move(Rows), E->loc());
  }
  }
  return E;
}

bool mvec::evaluateConstant(const Expr &E, double &Value) {
  static const std::map<Symbol, double> NoConstants;
  return evaluateConstantWith(E, NoConstants, Value);
}

bool mvec::evaluateConstantWith(const Expr &E,
                                const std::map<Symbol, double> &Constants,
                                double &Value) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    Value = cast<NumberExpr>(E).value();
    return true;
  case Expr::Kind::Ident: {
    auto It = Constants.find(cast<IdentExpr>(E).sym());
    if (It == Constants.end())
      return false;
    Value = It->second;
    return true;
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    double Inner = 0;
    if (!evaluateConstantWith(*U.operand(), Constants, Inner))
      return false;
    switch (U.op()) {
    case UnaryOp::Plus:
      Value = Inner;
      return true;
    case UnaryOp::Minus:
      Value = -Inner;
      return true;
    case UnaryOp::Not:
      return false;
    }
    return false;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    double L = 0, R = 0;
    if (!evaluateConstantWith(*B.lhs(), Constants, L) ||
        !evaluateConstantWith(*B.rhs(), Constants, R))
      return false;
    switch (B.op()) {
    case BinaryOp::Add:
      Value = L + R;
      return true;
    case BinaryOp::Sub:
      Value = L - R;
      return true;
    case BinaryOp::Mul:
    case BinaryOp::DotMul:
      Value = L * R;
      return true;
    case BinaryOp::Div:
    case BinaryOp::DotDiv:
      if (R == 0)
        return false;
      Value = L / R;
      return true;
    case BinaryOp::Pow:
    case BinaryOp::DotPow:
      Value = std::pow(L, R);
      return true;
    default:
      return false;
    }
  }
  default:
    return false;
  }
}

bool mvec::mentionsEndKeyword(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::EndKeyword:
    return true;
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::MagicColon:
    return false;
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    return mentionsEndKeyword(*R.start()) ||
           (R.step() && mentionsEndKeyword(*R.step())) ||
           mentionsEndKeyword(*R.stop());
  }
  case Expr::Kind::Unary:
    return mentionsEndKeyword(*cast<UnaryExpr>(E).operand());
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return mentionsEndKeyword(*B.lhs()) || mentionsEndKeyword(*B.rhs());
  }
  case Expr::Kind::Transpose:
    return mentionsEndKeyword(*cast<TransposeExpr>(E).operand());
  case Expr::Kind::Index:
    // 'end' inside a nested subscript binds to that subscript.
    return mentionsEndKeyword(*cast<IndexExpr>(E).base());
  case Expr::Kind::Matrix:
    for (const auto &Row : cast<MatrixExpr>(E).rows())
      for (const ExprPtr &Elt : Row)
        if (mentionsEndKeyword(*Elt))
          return true;
    return false;
  }
  return false;
}

ExprPtr mvec::replaceEndKeyword(ExprPtr E, double Extent) {
  switch (E->kind()) {
  case Expr::Kind::EndKeyword:
    return makeNumber(Extent);
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::MagicColon:
    return E;
  case Expr::Kind::Range: {
    auto &R = cast<RangeExpr>(*E);
    ExprPtr Start = replaceEndKeyword(R.start()->clone(), Extent);
    ExprPtr Step =
        R.step() ? replaceEndKeyword(R.step()->clone(), Extent) : nullptr;
    ExprPtr Stop = replaceEndKeyword(R.stop()->clone(), Extent);
    return std::make_unique<RangeExpr>(std::move(Start), std::move(Step),
                                       std::move(Stop), E->loc());
  }
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(*E);
    return std::make_unique<UnaryExpr>(
        U.op(), replaceEndKeyword(U.takeOperand(), Extent), E->loc());
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(*E);
    ExprPtr LHS = replaceEndKeyword(B.takeLHS(), Extent);
    ExprPtr RHS = replaceEndKeyword(B.takeRHS(), Extent);
    return std::make_unique<BinaryExpr>(B.op(), std::move(LHS),
                                        std::move(RHS), E->loc());
  }
  case Expr::Kind::Transpose: {
    auto &T = cast<TransposeExpr>(*E);
    return std::make_unique<TransposeExpr>(
        replaceEndKeyword(T.takeOperand(), Extent), E->loc());
  }
  case Expr::Kind::Index: {
    // Only the base participates; nested subscript args keep their 'end'.
    auto &I = cast<IndexExpr>(*E);
    ExprPtr Base = replaceEndKeyword(I.base()->clone(), Extent);
    std::vector<ExprPtr> Args;
    for (ExprPtr &A : I.args())
      Args.push_back(std::move(A));
    return std::make_unique<IndexExpr>(std::move(Base), std::move(Args),
                                       E->loc());
  }
  case Expr::Kind::Matrix:
    return E; // matrix literals inside subscripts keep 'end' unresolved
  }
  return E;
}
