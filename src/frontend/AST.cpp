//===- AST.cpp - MATLAB abstract syntax tree ------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/AST.h"

using namespace mvec;

const char *mvec::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Pow:
    return "^";
  case BinaryOp::DotMul:
    return ".*";
  case BinaryOp::DotDiv:
    return "./";
  case BinaryOp::DotPow:
    return ".^";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "~=";
  case BinaryOp::And:
    return "&";
  case BinaryOp::Or:
    return "|";
  case BinaryOp::AndAnd:
    return "&&";
  case BinaryOp::OrOr:
    return "||";
  }
  return "?";
}

const char *mvec::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Plus:
    return "+";
  case UnaryOp::Minus:
    return "-";
  case UnaryOp::Not:
    return "~";
  }
  return "?";
}

bool mvec::isPointwiseArithOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::DotMul:
  case BinaryOp::DotDiv:
  case BinaryOp::DotPow:
    return true;
  default:
    return false;
  }
}

bool mvec::isElementwiseRelOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::And:
  case BinaryOp::Or:
    return true;
  default:
    return false;
  }
}

std::string IndexExpr::baseName() const {
  return baseSym().str();
}

Symbol IndexExpr::baseSym() const {
  if (const auto *Ident = dyn_cast<IdentExpr>(Base.get()))
    return Ident->sym();
  return Symbol();
}

ExprPtr IndexExpr::clone() const {
  std::vector<ExprPtr> ClonedArgs;
  ClonedArgs.reserve(Args.size());
  for (const ExprPtr &A : Args)
    ClonedArgs.push_back(A->clone());
  return std::make_unique<IndexExpr>(Base->clone(), std::move(ClonedArgs),
                                     loc());
}

ExprPtr MatrixExpr::clone() const {
  std::vector<Row> ClonedRows;
  ClonedRows.reserve(Rows.size());
  for (const Row &R : Rows) {
    Row Cloned;
    Cloned.reserve(R.size());
    for (const ExprPtr &E : R)
      Cloned.push_back(E->clone());
    ClonedRows.push_back(std::move(Cloned));
  }
  return std::make_unique<MatrixExpr>(std::move(ClonedRows), loc());
}

std::string AssignStmt::targetName() const {
  return targetSym().str();
}

Symbol AssignStmt::targetSym() const {
  if (const auto *Ident = dyn_cast<IdentExpr>(LHS.get()))
    return Ident->sym();
  if (const auto *Index = dyn_cast<IndexExpr>(LHS.get()))
    return Index->baseSym();
  return Symbol();
}

static std::vector<StmtPtr> cloneBody(const std::vector<StmtPtr> &Body) {
  std::vector<StmtPtr> Cloned;
  Cloned.reserve(Body.size());
  for (const StmtPtr &S : Body)
    Cloned.push_back(S->clone());
  return Cloned;
}

StmtPtr ForStmt::clone() const {
  return std::make_unique<ForStmt>(IndexSym, RangeE->clone(), cloneBody(Body),
                                   loc());
}

StmtPtr WhileStmt::clone() const {
  return std::make_unique<WhileStmt>(Cond->clone(), cloneBody(Body), loc());
}

StmtPtr IfStmt::clone() const {
  std::vector<Branch> ClonedBranches;
  ClonedBranches.reserve(Branches.size());
  for (const Branch &B : Branches) {
    Branch Cloned;
    Cloned.Cond = B.Cond ? B.Cond->clone() : nullptr;
    Cloned.Body = cloneBody(B.Body);
    ClonedBranches.push_back(std::move(Cloned));
  }
  return std::make_unique<IfStmt>(std::move(ClonedBranches), loc());
}

Program Program::cloneProgram() const {
  Program P;
  P.Arena = std::make_shared<ArenaAllocator>();
  ArenaScope Scope(P.Arena.get());
  P.Stmts = cloneBody(Stmts);
  return P;
}

ExprPtr mvec::makeNumber(double Value) {
  return std::make_unique<NumberExpr>(Value);
}

ExprPtr mvec::makeIdent(std::string Name) {
  return std::make_unique<IdentExpr>(Name);
}

ExprPtr mvec::makeIdent(Symbol Sym) {
  return std::make_unique<IdentExpr>(Sym);
}

ExprPtr mvec::makeBinary(BinaryOp Op, ExprPtr LHS, ExprPtr RHS) {
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS));
}

ExprPtr mvec::makeUnary(UnaryOp Op, ExprPtr Operand) {
  return std::make_unique<UnaryExpr>(Op, std::move(Operand));
}

ExprPtr mvec::makeTranspose(ExprPtr Operand) {
  return std::make_unique<TransposeExpr>(std::move(Operand));
}

ExprPtr mvec::makeRange(ExprPtr Start, ExprPtr Stop) {
  return std::make_unique<RangeExpr>(std::move(Start), nullptr,
                                     std::move(Stop));
}

ExprPtr mvec::makeRange(ExprPtr Start, ExprPtr Step, ExprPtr Stop) {
  return std::make_unique<RangeExpr>(std::move(Start), std::move(Step),
                                     std::move(Stop));
}

ExprPtr mvec::makeIndex(std::string Base, std::vector<ExprPtr> Args) {
  return std::make_unique<IndexExpr>(makeIdent(std::move(Base)),
                                     std::move(Args));
}

ExprPtr mvec::makeCall(std::string Callee, std::vector<ExprPtr> Args) {
  return makeIndex(std::move(Callee), std::move(Args));
}
