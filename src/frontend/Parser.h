//===- Parser.h - MATLAB parser ---------------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the MATLAB subset. Produces a Program AST
/// and the list of `%!` shape-annotation comments found in the source.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_PARSER_H
#define MVEC_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace mvec {

/// Result of parsing a script.
struct ParseResult {
  Program Prog;
  std::vector<AnnotationComment> Annotations;
};

class Parser {
public:
  Parser(std::string Source, DiagnosticEngine &Diags);

  /// Parses the whole script. Errors are reported through the diagnostic
  /// engine; a partial program is still returned so tools can report as many
  /// problems as possible.
  ParseResult parseProgram();

  /// Convenience: parse a single expression (used by tests and by the
  /// annotation-driven tools).
  ExprPtr parseSingleExpression();

private:
  // Token stream access. When the paren context is active, newlines are
  // transparent (the lexer has already folded `...` continuations).
  const Token &peek(unsigned Ahead = 0);
  const Token &current() { return peek(0); }
  Token consume();
  bool consumeIf(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipStatementSeparators();
  void syncToStatementBoundary();

  // Statements.
  std::vector<StmtPtr> parseStmtList();
  bool startsStmtListTerminator() const;
  StmtPtr parseStmt();
  StmtPtr parseFor();
  StmtPtr parseWhile();
  StmtPtr parseIf();
  StmtPtr parseAssignOrExpr();

  // Expressions, lowest to highest precedence.
  ExprPtr parseExpr();
  ExprPtr parseOrOr();
  ExprPtr parseAndAnd();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseComparison();
  ExprPtr parseRange();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePower();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseMatrixLiteral();
  std::vector<ExprPtr> parseIndexArgs();

  /// True when the current token could begin a new matrix element after the
  /// previous one ended (MATLAB's whitespace-separated elements).
  bool startsMatrixElement();
  /// True when a '+'/'-' at the current position should end the current
  /// matrix element ("[a -b]" is two elements; "[a - b]" is a subtraction).
  bool minusBeginsNewMatrixElement();

  ExprPtr errorExpr(const char *Message);

  /// Expression-tree depth cap. Both the recursive descent (parens, unary
  /// prefixes) and the iteratively built binary/postfix chains charge one
  /// level per tree level, so no parse can build an AST deeper than this —
  /// which bounds every downstream recursion over the tree (printer, shape
  /// inference, dim checking, interpretation, and the unique_ptr destructor
  /// chains) instead of overflowing the stack on hostile input. Sized so
  /// the ~13-frame descent cycle per level fits the default stack even
  /// under ASan's inflated frames (1000 overflowed there).
  static constexpr unsigned MaxExprDepth = 256;

  /// Charges one expression-tree level; on exhaustion reports the depth
  /// error (once), abandons the statement, and returns false.
  bool enterExpr();
  void leaveExpr() { --ExprDepth; }
  /// One structured "nesting too deep" diagnostic per parse, followed by a
  /// token-level sync so error recovery stays linear in the input size.
  void reportDepthLimit();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  std::vector<AnnotationComment> Annotations;
  unsigned ParenDepth = 0;
  unsigned MatrixDepth = 0;
  unsigned IndexDepth = 0;
  unsigned ExprDepth = 0;
  bool DepthExceeded = false;
};

/// Parses \p Source, returning the program (empty on hard errors; check
/// \p Diags).
ParseResult parseMatlab(std::string Source, DiagnosticEngine &Diags);

} // namespace mvec

#endif // MVEC_FRONTEND_PARSER_H
