//===- ASTPrinter.h - MATLAB source emission --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back to MATLAB source. Parenthesization is recomputed
/// from operator precedence, so rewritten trees always print as valid
/// MATLAB regardless of how they were constructed.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_ASTPRINTER_H
#define MVEC_FRONTEND_ASTPRINTER_H

#include "frontend/AST.h"

#include <string>

namespace mvec {

/// Renders a single expression.
std::string printExpr(const Expr &E);

/// Renders a single statement (including any nested bodies), with
/// \p Indent leading levels of two-space indentation.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a whole program.
std::string printProgram(const Program &P);

} // namespace mvec

#endif // MVEC_FRONTEND_ASTPRINTER_H
