//===- AST.h - MATLAB abstract syntax tree ----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the MATLAB subset. Nodes use LLVM-style kind discriminators with
/// isa<>/cast<>/dyn_cast<> (see support/Casting.h). All nodes are clonable,
/// because the vectorizer rewrites statement parse trees.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_AST_H
#define MVEC_FRONTEND_AST_H

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mvec {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

enum class BinaryOp {
  Add,    // +
  Sub,    // -
  Mul,    // *   (matrix multiply)
  Div,    // /   (matrix right divide)
  Pow,    // ^   (matrix power)
  DotMul, // .*
  DotDiv, // ./
  DotPow, // .^
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  And,    // &
  Or,     // |
  AndAnd, // &&
  OrOr,   // ||
};

enum class UnaryOp { Plus, Minus, Not };

/// MATLAB source spelling of \p Op ("+", ".*", ...).
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);

/// True for the pointwise arithmetic operators {+, -, .*, ./, .^} that the
/// dimensionality analysis of Sec. 2.1 applies to.
bool isPointwiseArithOp(BinaryOp Op);

/// True for elementwise comparison / logical operators (also pointwise in
/// MATLAB and safe to vectorize pointwise).
bool isElementwiseRelOp(BinaryOp Op);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    Number,
    String,
    Ident,
    MagicColon, // bare ':' inside a subscript
    EndKeyword, // 'end' inside a subscript
    Range,      // a:b or a:s:b
    Unary,
    Binary,
    Transpose,
    Index, // base(args...) — subscript or function call
    Matrix // [ ... ; ... ]
  };

  virtual ~Expr() = default;

  /// Nodes allocate from the thread's active ArenaScope when one is set
  /// (see support/Arena.h); delete is a no-op for arena nodes.
  void *operator new(size_t Size) { return detail::allocNode(Size); }
  void operator delete(void *P) noexcept { detail::freeNode(P); }

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep copy.
  virtual ExprPtr clone() const = 0;

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

class NumberExpr : public Expr {
public:
  NumberExpr(double Value, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Number, Loc), Value(Value) {}

  double value() const { return Value; }

  ExprPtr clone() const override {
    return std::make_unique<NumberExpr>(Value, loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Number; }

private:
  double Value;
};

class StringExpr : public Expr {
public:
  StringExpr(std::string Value, SourceLoc Loc = SourceLoc())
      : Expr(Kind::String, Loc), Value(std::move(Value)) {}

  const std::string &value() const { return Value; }

  ExprPtr clone() const override {
    return std::make_unique<StringExpr>(Value, loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::String; }

private:
  std::string Value;
};

class IdentExpr : public Expr {
public:
  IdentExpr(std::string_view Name, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Ident, Loc), Sym(internSymbol(Name)) {}
  IdentExpr(Symbol Sym, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Ident, Loc), Sym(Sym) {}

  const std::string &name() const { return Sym.str(); }
  /// Interned handle; pointer-compares equal iff the spellings match.
  Symbol sym() const { return Sym; }

  ExprPtr clone() const override {
    return std::make_unique<IdentExpr>(Sym, loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Ident; }

private:
  Symbol Sym;
};

/// The bare ':' subscript selecting a whole dimension, e.g. A(:,i).
class MagicColonExpr : public Expr {
public:
  explicit MagicColonExpr(SourceLoc Loc = SourceLoc())
      : Expr(Kind::MagicColon, Loc) {}

  ExprPtr clone() const override {
    return std::make_unique<MagicColonExpr>(loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::MagicColon; }
};

/// The 'end' keyword used inside a subscript, e.g. A(end,1).
class EndKeywordExpr : public Expr {
public:
  explicit EndKeywordExpr(SourceLoc Loc = SourceLoc())
      : Expr(Kind::EndKeyword, Loc) {}

  ExprPtr clone() const override {
    return std::make_unique<EndKeywordExpr>(loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::EndKeyword; }
};

/// A colon range start:stop or start:step:stop.
class RangeExpr : public Expr {
public:
  RangeExpr(ExprPtr Start, ExprPtr Step, ExprPtr Stop,
            SourceLoc Loc = SourceLoc())
      : Expr(Kind::Range, Loc), Start(std::move(Start)), Step(std::move(Step)),
        Stop(std::move(Stop)) {}

  const Expr *start() const { return Start.get(); }
  Expr *start() { return Start.get(); }
  /// Null when the step is the implicit 1.
  const Expr *step() const { return Step.get(); }
  Expr *step() { return Step.get(); }
  const Expr *stop() const { return Stop.get(); }
  Expr *stop() { return Stop.get(); }

  ExprPtr clone() const override {
    return std::make_unique<RangeExpr>(Start->clone(),
                                       Step ? Step->clone() : nullptr,
                                       Stop->clone(), loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Range; }

private:
  ExprPtr Start;
  ExprPtr Step; // may be null
  ExprPtr Stop;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  const Expr *operand() const { return Operand.get(); }
  Expr *operand() { return Operand.get(); }
  ExprPtr takeOperand() { return std::move(Operand); }

  ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(Op, Operand->clone(), loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  void setOp(BinaryOp NewOp) { Op = NewOp; }
  const Expr *lhs() const { return LHS.get(); }
  Expr *lhs() { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }
  Expr *rhs() { return RHS.get(); }
  ExprPtr takeLHS() { return std::move(LHS); }
  ExprPtr takeRHS() { return std::move(RHS); }
  void setLHS(ExprPtr E) { LHS = std::move(E); }
  void setRHS(ExprPtr E) { RHS = std::move(E); }

  ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone(), loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// Transpose e' (both ' and .' — all values are real in this subset).
class TransposeExpr : public Expr {
public:
  TransposeExpr(ExprPtr Operand, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Transpose, Loc), Operand(std::move(Operand)) {}

  const Expr *operand() const { return Operand.get(); }
  Expr *operand() { return Operand.get(); }
  ExprPtr takeOperand() { return std::move(Operand); }

  ExprPtr clone() const override {
    return std::make_unique<TransposeExpr>(Operand->clone(), loc());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Transpose; }

private:
  ExprPtr Operand;
};

/// base(arg1, ..., argK). Covers both array subscripts and function calls;
/// the distinction is made semantically (via the shape environment and the
/// builtin table), exactly as in MATLAB.
class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, std::vector<ExprPtr> Args, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Index, Loc), Base(std::move(Base)), Args(std::move(Args)) {}

  const Expr *base() const { return Base.get(); }
  Expr *base() { return Base.get(); }
  unsigned numArgs() const { return Args.size(); }
  const Expr *arg(unsigned I) const { return Args[I].get(); }
  Expr *arg(unsigned I) { return Args[I].get(); }
  std::vector<ExprPtr> &args() { return Args; }
  const std::vector<ExprPtr> &args() const { return Args; }
  void setArg(unsigned I, ExprPtr E) { Args[I] = std::move(E); }

  /// The base name when the base is a plain identifier, else "".
  std::string baseName() const;
  /// Same, as an interned handle (empty Symbol for non-identifier bases).
  Symbol baseSym() const;

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  ExprPtr Base;
  std::vector<ExprPtr> Args;
};

/// Matrix literal [r11, r12; r21, r22].
class MatrixExpr : public Expr {
public:
  using Row = std::vector<ExprPtr>;

  MatrixExpr(std::vector<Row> Rows, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Matrix, Loc), Rows(std::move(Rows)) {}

  const std::vector<Row> &rows() const { return Rows; }
  std::vector<Row> &rows() { return Rows; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Matrix; }

private:
  std::vector<Row> Rows;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind { Assign, Expr, For, While, If, Break, Continue, Return };

  virtual ~Stmt() = default;

  void *operator new(size_t Size) { return detail::allocNode(Size); }
  void operator delete(void *P) noexcept { detail::freeNode(P); }

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  virtual StmtPtr clone() const = 0;

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// lhs = rhs. The LHS is an identifier or a subscripted identifier.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr LHS, ExprPtr RHS, SourceLoc Loc = SourceLoc())
      : Stmt(Kind::Assign, Loc), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  const Expr *lhs() const { return LHS.get(); }
  Expr *lhs() { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }
  Expr *rhs() { return RHS.get(); }
  ExprPtr takeRHS() { return std::move(RHS); }
  ExprPtr takeLHS() { return std::move(LHS); }
  void setRHS(ExprPtr E) { RHS = std::move(E); }
  void setLHS(ExprPtr E) { LHS = std::move(E); }

  /// Name of the variable being (possibly partially) written.
  std::string targetName() const;
  /// Same, as an interned handle (empty Symbol when the LHS is malformed).
  Symbol targetSym() const;

  StmtPtr clone() const override {
    return std::make_unique<AssignStmt>(LHS->clone(), RHS->clone(), loc());
  }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprPtr LHS;
  ExprPtr RHS;
};

/// A bare expression statement (usually a call such as disp(x)).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc = SourceLoc())
      : Stmt(Kind::Expr, Loc), E(std::move(E)) {}

  const Expr *expr() const { return E.get(); }
  Expr *expr() { return E.get(); }

  StmtPtr clone() const override {
    return std::make_unique<ExprStmt>(E->clone(), loc());
  }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  ExprPtr E;
};

class ForStmt : public Stmt {
public:
  ForStmt(std::string_view IndexVar, ExprPtr RangeE, std::vector<StmtPtr> Body,
          SourceLoc Loc = SourceLoc())
      : Stmt(Kind::For, Loc), IndexSym(internSymbol(IndexVar)),
        RangeE(std::move(RangeE)), Body(std::move(Body)) {}
  ForStmt(Symbol IndexSym, ExprPtr RangeE, std::vector<StmtPtr> Body,
          SourceLoc Loc = SourceLoc())
      : Stmt(Kind::For, Loc), IndexSym(IndexSym), RangeE(std::move(RangeE)),
        Body(std::move(Body)) {}

  const std::string &indexVar() const { return IndexSym.str(); }
  /// Interned handle for the index variable.
  Symbol indexSym() const { return IndexSym; }
  const Expr *range() const { return RangeE.get(); }
  Expr *range() { return RangeE.get(); }
  void setRange(ExprPtr E) { RangeE = std::move(E); }
  const std::vector<StmtPtr> &body() const { return Body; }
  std::vector<StmtPtr> &body() { return Body; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  Symbol IndexSym;
  ExprPtr RangeE;
  std::vector<StmtPtr> Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, std::vector<StmtPtr> Body, SourceLoc Loc = SourceLoc())
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  const Expr *cond() const { return Cond.get(); }
  Expr *cond() { return Cond.get(); }
  const std::vector<StmtPtr> &body() const { return Body; }
  std::vector<StmtPtr> &body() { return Body; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  std::vector<StmtPtr> Body;
};

class IfStmt : public Stmt {
public:
  struct Branch {
    ExprPtr Cond; // null for the final else
    std::vector<StmtPtr> Body;
  };

  IfStmt(std::vector<Branch> Branches, SourceLoc Loc = SourceLoc())
      : Stmt(Kind::If, Loc), Branches(std::move(Branches)) {}

  const std::vector<Branch> &branches() const { return Branches; }
  std::vector<Branch> &branches() { return Branches; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  std::vector<Branch> Branches;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc = SourceLoc()) : Stmt(Kind::Break, Loc) {}
  StmtPtr clone() const override {
    return std::make_unique<BreakStmt>(loc());
  }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc = SourceLoc())
      : Stmt(Kind::Continue, Loc) {}
  StmtPtr clone() const override {
    return std::make_unique<ContinueStmt>(loc());
  }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc Loc = SourceLoc()) : Stmt(Kind::Return, Loc) {}
  StmtPtr clone() const override {
    return std::make_unique<ReturnStmt>(loc());
  }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }
};

/// A whole script: a list of top-level statements. When built under an
/// ArenaScope (the parser and cloneProgram do this), the Program owns the
/// arena its nodes live in; Arena is declared before Stmts so statement
/// destructors run while the arena is still alive.
struct Program {
  std::shared_ptr<ArenaAllocator> Arena;
  std::vector<StmtPtr> Stmts;

  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&Other) noexcept {
    if (this != &Other) {
      // Destroy the old statements before their arena: member-wise move
      // assignment would release the arena first and then run node
      // destructors over freed memory.
      Stmts.clear();
      Stmts = std::move(Other.Stmts);
      Arena = std::move(Other.Arena);
    }
    return *this;
  }

  /// Deep copy into a fresh arena owned by the returned Program.
  Program cloneProgram() const;
};

//===----------------------------------------------------------------------===//
// Convenience constructors (used heavily by the rewriter and tests)
//===----------------------------------------------------------------------===//

ExprPtr makeNumber(double Value);
ExprPtr makeIdent(std::string Name);
ExprPtr makeIdent(Symbol Sym);
ExprPtr makeBinary(BinaryOp Op, ExprPtr LHS, ExprPtr RHS);
ExprPtr makeUnary(UnaryOp Op, ExprPtr Operand);
ExprPtr makeTranspose(ExprPtr Operand);
ExprPtr makeRange(ExprPtr Start, ExprPtr Stop);
ExprPtr makeRange(ExprPtr Start, ExprPtr Step, ExprPtr Stop);
ExprPtr makeIndex(std::string Base, std::vector<ExprPtr> Args);
ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args);

} // namespace mvec

#endif // MVEC_FRONTEND_AST_H
