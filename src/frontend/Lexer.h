//===- Lexer.h - MATLAB lexer -----------------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the MATLAB subset handled by the vectorizer.
///
/// MATLAB-specific behaviour implemented here:
///  - `'` is transpose after an operand (identifier, number, `)`, `]`, `}`,
///    another transpose) and a string delimiter otherwise;
///  - `...` swallows the rest of the line (continuation);
///  - `%` starts a comment; `%!` comments carry shape annotations and are
///    collected separately for the annotation parser;
///  - newlines are significant (statement separators) and are emitted as
///    Newline tokens.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_LEXER_H
#define MVEC_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace mvec {

/// A `%!` comment found during lexing, e.g. "%! a(1,*) B(*,*)".
struct AnnotationComment {
  SourceLoc Loc;
  std::string Text; // Text after the "%!" marker.
};

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the next token. Returns Eof forever once the input is exhausted.
  Token next();

  /// Lexes the whole input. The trailing Eof token is included.
  std::vector<Token> lexAll();

  const std::vector<AnnotationComment> &annotations() const {
    return Annotations;
  }

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  Token make(TokenKind Kind, SourceLoc Loc, std::string Text = std::string());
  Token lexNumber(SourceLoc Start);
  Token lexIdentifier(SourceLoc Start);
  Token lexString(SourceLoc Start);

  /// True if `'` at the current position is a transpose, based on the
  /// previously produced token.
  bool quoteIsTranspose() const;

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  bool SpaceBefore = false;
  TokenKind PrevKind = TokenKind::Newline;
  std::vector<AnnotationComment> Annotations;
};

} // namespace mvec

#endif // MVEC_FRONTEND_LEXER_H
