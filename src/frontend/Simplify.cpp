//===- Simplify.cpp - Algebraic expression cleanup --------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Simplify.h"

#include "frontend/ASTUtils.h"

#include <cmath>

using namespace mvec;

namespace {

bool isNumber(const Expr *E, double Value) {
  const auto *N = dyn_cast<NumberExpr>(E);
  return N && N->value() == Value;
}

} // namespace

ExprPtr mvec::simplifyExpr(ExprPtr E) {
  switch (E->kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return E;
  case Expr::Kind::Range: {
    auto &R = cast<RangeExpr>(*E);
    ExprPtr Start = simplifyExpr(R.start()->clone());
    ExprPtr Step = R.step() ? simplifyExpr(R.step()->clone()) : nullptr;
    ExprPtr Stop = simplifyExpr(R.stop()->clone());
    if (Step && isNumber(Step.get(), 1.0))
      Step = nullptr; // 1:1:n is just 1:n
    return std::make_unique<RangeExpr>(std::move(Start), std::move(Step),
                                       std::move(Stop), E->loc());
  }
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(*E);
    ExprPtr Operand = simplifyExpr(U.takeOperand());
    if (U.op() == UnaryOp::Plus)
      return Operand;
    if (U.op() == UnaryOp::Minus)
      if (const auto *N = dyn_cast<NumberExpr>(Operand.get()))
        return makeNumber(-N->value());
    // --x => x
    if (U.op() == UnaryOp::Minus)
      if (auto *Inner = dyn_cast<UnaryExpr>(Operand.get()))
        if (Inner->op() == UnaryOp::Minus)
          return Inner->takeOperand();
    return std::make_unique<UnaryExpr>(U.op(), std::move(Operand), E->loc());
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(*E);
    ExprPtr LHS = simplifyExpr(B.takeLHS());
    ExprPtr RHS = simplifyExpr(B.takeRHS());
    BinaryOp Op = B.op();

    // Constant folding for the arithmetic operators.
    const auto *LN = dyn_cast<NumberExpr>(LHS.get());
    const auto *RN = dyn_cast<NumberExpr>(RHS.get());
    if (LN && RN) {
      switch (Op) {
      case BinaryOp::Add:
        return makeNumber(LN->value() + RN->value());
      case BinaryOp::Sub:
        return makeNumber(LN->value() - RN->value());
      case BinaryOp::Mul:
      case BinaryOp::DotMul:
        return makeNumber(LN->value() * RN->value());
      case BinaryOp::Div:
      case BinaryOp::DotDiv:
        if (RN->value() != 0.0)
          return makeNumber(LN->value() / RN->value());
        break;
      case BinaryOp::Pow:
      case BinaryOp::DotPow:
        return makeNumber(std::pow(LN->value(), RN->value()));
      default:
        break;
      }
    }

    switch (Op) {
    case BinaryOp::Add:
      if (isNumber(LHS.get(), 0.0))
        return RHS;
      if (isNumber(RHS.get(), 0.0))
        return LHS;
      // x + (-c) => x - c
      if (RN && RN->value() < 0)
        return makeBinary(BinaryOp::Sub, std::move(LHS),
                          makeNumber(-RN->value()));
      break;
    case BinaryOp::Sub:
      if (isNumber(RHS.get(), 0.0))
        return LHS;
      if (RN && RN->value() < 0)
        return makeBinary(BinaryOp::Add, std::move(LHS),
                          makeNumber(-RN->value()));
      break;
    case BinaryOp::Mul:
    case BinaryOp::DotMul:
      if (isNumber(LHS.get(), 1.0))
        return RHS;
      if (isNumber(RHS.get(), 1.0))
        return LHS;
      if (isNumber(LHS.get(), 0.0) || isNumber(RHS.get(), 0.0))
        return makeNumber(0.0);
      break;
    case BinaryOp::Div:
    case BinaryOp::DotDiv:
      if (isNumber(RHS.get(), 1.0))
        return LHS;
      break;
    default:
      break;
    }
    return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                        E->loc());
  }
  case Expr::Kind::Transpose: {
    auto &T = cast<TransposeExpr>(*E);
    ExprPtr Operand = simplifyExpr(T.takeOperand());
    // Scalars are transpose-invariant.
    if (isa<NumberExpr>(Operand.get()))
      return Operand;
    // x'' == x.
    if (auto *Inner = dyn_cast<TransposeExpr>(Operand.get()))
      return Inner->takeOperand();
    return std::make_unique<TransposeExpr>(std::move(Operand), E->loc());
  }
  case Expr::Kind::Index: {
    auto &I = cast<IndexExpr>(*E);
    ExprPtr Base = simplifyExpr(I.base()->clone());
    std::vector<ExprPtr> Args;
    Args.reserve(I.numArgs());
    for (ExprPtr &A : I.args())
      Args.push_back(simplifyExpr(std::move(A)));
    return std::make_unique<IndexExpr>(std::move(Base), std::move(Args),
                                       E->loc());
  }
  case Expr::Kind::Matrix: {
    auto &M = cast<MatrixExpr>(*E);
    std::vector<MatrixExpr::Row> Rows;
    for (MatrixExpr::Row &Row : M.rows()) {
      MatrixExpr::Row NewRow;
      for (ExprPtr &Elt : Row)
        NewRow.push_back(simplifyExpr(std::move(Elt)));
      Rows.push_back(std::move(NewRow));
    }
    return std::make_unique<MatrixExpr>(std::move(Rows), E->loc());
  }
  }
  return E;
}

void mvec::simplifyStmt(Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    auto &A = cast<AssignStmt>(S);
    A.setLHS(simplifyExpr(A.takeLHS()));
    A.setRHS(simplifyExpr(A.takeRHS()));
    return;
  }
  case Stmt::Kind::For: {
    auto &F = cast<ForStmt>(S);
    ExprPtr Range = F.range()->clone();
    F.setRange(simplifyExpr(std::move(Range)));
    for (StmtPtr &Child : F.body())
      simplifyStmt(*Child);
    return;
  }
  case Stmt::Kind::While: {
    auto &W = cast<WhileStmt>(S);
    for (StmtPtr &Child : W.body())
      simplifyStmt(*Child);
    return;
  }
  case Stmt::Kind::If: {
    auto &If = cast<IfStmt>(S);
    for (IfStmt::Branch &B : If.branches())
      for (StmtPtr &Child : B.Body)
        simplifyStmt(*Child);
    return;
  }
  default:
    return;
  }
}

namespace {

/// Builds the distributed equivalent of Transpose(\p Inner); \p Inner has
/// already been processed bottom-up.
ExprPtr pushTransposeInward(ExprPtr Inner) {
  switch (Inner->kind()) {
  case Expr::Kind::Number:
    return Inner; // scalars are transpose-invariant
  case Expr::Kind::Transpose:
    // (x')' == x.
    return cast<TransposeExpr>(*Inner).takeOperand();
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(*Inner);
    if (U.op() == UnaryOp::Minus || U.op() == UnaryOp::Plus)
      return std::make_unique<UnaryExpr>(
          U.op(), pushTransposeInward(U.takeOperand()), Inner->loc());
    break;
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(*Inner);
    switch (B.op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::DotMul:
    case BinaryOp::DotDiv:
    case BinaryOp::DotPow:
      // Elementwise: distribute to both operands.
      return std::make_unique<BinaryExpr>(
          B.op(), pushTransposeInward(B.takeLHS()),
          pushTransposeInward(B.takeRHS()), Inner->loc());
    case BinaryOp::Mul:
      // (A*B)' == B'*A'.
      return std::make_unique<BinaryExpr>(
          BinaryOp::Mul, pushTransposeInward(B.takeRHS()),
          pushTransposeInward(B.takeLHS()), Inner->loc());
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  return std::make_unique<TransposeExpr>(std::move(Inner));
}

} // namespace

ExprPtr mvec::distributeTransposes(ExprPtr E) {
  switch (E->kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return E;
  case Expr::Kind::Range: {
    auto &R = cast<RangeExpr>(*E);
    ExprPtr Start = distributeTransposes(R.start()->clone());
    ExprPtr Step =
        R.step() ? distributeTransposes(R.step()->clone()) : nullptr;
    ExprPtr Stop = distributeTransposes(R.stop()->clone());
    return std::make_unique<RangeExpr>(std::move(Start), std::move(Step),
                                       std::move(Stop), E->loc());
  }
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(*E);
    return std::make_unique<UnaryExpr>(
        U.op(), distributeTransposes(U.takeOperand()), E->loc());
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(*E);
    ExprPtr LHS = distributeTransposes(B.takeLHS());
    ExprPtr RHS = distributeTransposes(B.takeRHS());
    return std::make_unique<BinaryExpr>(B.op(), std::move(LHS),
                                        std::move(RHS), E->loc());
  }
  case Expr::Kind::Transpose: {
    auto &T = cast<TransposeExpr>(*E);
    ExprPtr Inner = distributeTransposes(T.takeOperand());
    return pushTransposeInward(std::move(Inner));
  }
  case Expr::Kind::Index: {
    auto &I = cast<IndexExpr>(*E);
    ExprPtr Base = distributeTransposes(I.base()->clone());
    std::vector<ExprPtr> Args;
    for (ExprPtr &A : I.args())
      Args.push_back(distributeTransposes(std::move(A)));
    return std::make_unique<IndexExpr>(std::move(Base), std::move(Args),
                                       E->loc());
  }
  case Expr::Kind::Matrix: {
    auto &M = cast<MatrixExpr>(*E);
    std::vector<MatrixExpr::Row> Rows;
    for (MatrixExpr::Row &Row : M.rows()) {
      MatrixExpr::Row NewRow;
      for (ExprPtr &Elt : Row)
        NewRow.push_back(distributeTransposes(std::move(Elt)));
      Rows.push_back(std::move(NewRow));
    }
    return std::make_unique<MatrixExpr>(std::move(Rows), E->loc());
  }
  }
  return E;
}
