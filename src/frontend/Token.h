//===- Token.h - MATLAB token definitions -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the MATLAB lexer.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FRONTEND_TOKEN_H
#define MVEC_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <string>

namespace mvec {

enum class TokenKind {
  Eof,
  Newline, // '\n' or '\r\n' (statement separator)
  Number,
  String,
  Identifier,

  // Keywords.
  KwFor,
  KwEnd,
  KwIf,
  KwElseIf,
  KwElse,
  KwWhile,
  KwFunction,
  KwReturn,
  KwBreak,
  KwContinue,

  // Punctuation.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Colon,
  Assign, // '='

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Backslash,
  Caret,
  DotStar,
  DotSlash,
  DotBackslash,
  DotCaret,
  Quote,    // '  (transpose; string literals are lexed separately)
  DotQuote, // .'
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq, // ~=
  Amp,
  Pipe,
  AmpAmp,
  PipePipe,
  Tilde, // ~
};

/// Returns a human-readable spelling for diagnostics ("'('", "identifier").
const char *tokenKindName(TokenKind Kind);

/// A lexed token. \c Text holds the literal spelling for identifiers,
/// numbers and strings (string text excludes the surrounding quotes).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  double NumValue = 0;
  /// True when at least one whitespace character precedes this token on the
  /// same line. The parser needs this to disambiguate matrix elements
  /// ("[a -b]" vs "[a - b]") the same way MATLAB does.
  bool PrecededBySpace = false;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace mvec

#endif // MVEC_FRONTEND_TOKEN_H
