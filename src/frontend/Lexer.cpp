//===- Lexer.cpp - MATLAB lexer -------------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace mvec;

const char *mvec::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Newline:
    return "newline";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElseIf:
    return "'elseif'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Backslash:
    return "'\\'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::DotStar:
    return "'.*'";
  case TokenKind::DotSlash:
    return "'./'";
  case TokenKind::DotBackslash:
    return "'.\\'";
  case TokenKind::DotCaret:
    return "'.^'";
  case TokenKind::Quote:
    return "transpose";
  case TokenKind::DotQuote:
    return "'.''";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'~='";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Tilde:
    return "'~'";
  }
  return "token";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

Token Lexer::make(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = std::move(Text);
  Tok.PrecededBySpace = SpaceBefore;
  SpaceBefore = false;
  PrevKind = Kind;
  return Tok;
}

bool Lexer::quoteIsTranspose() const {
  switch (PrevKind) {
  case TokenKind::Identifier:
  case TokenKind::Number:
  case TokenKind::RParen:
  case TokenKind::RBracket:
  case TokenKind::RBrace:
  case TokenKind::Quote:
  case TokenKind::DotQuote:
  case TokenKind::KwEnd:
    return true;
  default:
    return false;
  }
}

Token Lexer::lexNumber(SourceLoc Start) {
  std::string Text;
  bool SawDigit = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) {
    Text += advance();
    SawDigit = true;
  }
  // Fractional part. Take care not to consume the '.' of '.*', '.^', or of
  // a '.'' transpose ("3.'": MATLAB parses the dot as part of the number,
  // but we only need numbers the paper's codes use).
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    Text += advance(); // '.'
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      Text += advance();
      SawDigit = true;
    }
  }
  if (SawDigit && (peek() == 'e' || peek() == 'E')) {
    char Next = peek(1);
    char Next2 = peek(2);
    if (std::isdigit(static_cast<unsigned char>(Next)) ||
        ((Next == '+' || Next == '-') &&
         std::isdigit(static_cast<unsigned char>(Next2)))) {
      Text += advance(); // 'e'
      if (peek() == '+' || peek() == '-')
        Text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
  }
  Token Tok = make(TokenKind::Number, Start, Text);
  Tok.NumValue = std::strtod(Text.c_str(), nullptr);
  return Tok;
}

Token Lexer::lexIdentifier(SourceLoc Start) {
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();
  TokenKind Kind = TokenKind::Identifier;
  if (Text == "for")
    Kind = TokenKind::KwFor;
  else if (Text == "end")
    Kind = TokenKind::KwEnd;
  else if (Text == "if")
    Kind = TokenKind::KwIf;
  else if (Text == "elseif")
    Kind = TokenKind::KwElseIf;
  else if (Text == "else")
    Kind = TokenKind::KwElse;
  else if (Text == "while")
    Kind = TokenKind::KwWhile;
  else if (Text == "function")
    Kind = TokenKind::KwFunction;
  else if (Text == "return")
    Kind = TokenKind::KwReturn;
  else if (Text == "break")
    Kind = TokenKind::KwBreak;
  else if (Text == "continue")
    Kind = TokenKind::KwContinue;
  return make(Kind, Start, Text);
}

Token Lexer::lexString(SourceLoc Start) {
  std::string Text;
  while (true) {
    char C = peek();
    if (C == '\0' || C == '\n') {
      Diags.error(loc(), "unterminated string literal");
      break;
    }
    advance();
    if (C == '\'') {
      if (peek() == '\'') { // Escaped quote inside the string.
        Text += '\'';
        advance();
        continue;
      }
      break;
    }
    Text += C;
  }
  return make(TokenKind::String, Start, Text);
}

Token Lexer::next() {
  while (true) {
    char C = peek();
    if (C == '\0')
      return make(TokenKind::Eof, loc());

    if (C == ' ' || C == '\t' || C == '\r') {
      SpaceBefore = true;
      advance();
      continue;
    }

    if (C == '%') {
      SourceLoc CommentLoc = loc();
      advance();
      bool IsAnnotation = peek() == '!';
      if (IsAnnotation)
        advance();
      std::string Text;
      while (peek() != '\n' && peek() != '\0')
        Text += advance();
      if (IsAnnotation)
        Annotations.push_back(AnnotationComment{CommentLoc, Text});
      continue;
    }

    if (C == '.' && peek(1) == '.' && peek(2) == '.') {
      // Line continuation: skip to (and including) the newline.
      while (peek() != '\n' && peek() != '\0')
        advance();
      if (peek() == '\n')
        advance();
      SpaceBefore = true;
      continue;
    }

    SourceLoc Start = loc();
    if (C == '\n') {
      advance();
      return make(TokenKind::Newline, Start);
    }

    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
      return lexNumber(Start);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifier(Start);

    advance();
    switch (C) {
    case '(':
      return make(TokenKind::LParen, Start);
    case ')':
      return make(TokenKind::RParen, Start);
    case '[':
      return make(TokenKind::LBracket, Start);
    case ']':
      return make(TokenKind::RBracket, Start);
    case '{':
      return make(TokenKind::LBrace, Start);
    case '}':
      return make(TokenKind::RBrace, Start);
    case ',':
      return make(TokenKind::Comma, Start);
    case ';':
      return make(TokenKind::Semicolon, Start);
    case ':':
      return make(TokenKind::Colon, Start);
    case '+':
      return make(TokenKind::Plus, Start);
    case '-':
      return make(TokenKind::Minus, Start);
    case '*':
      return make(TokenKind::Star, Start);
    case '/':
      return make(TokenKind::Slash, Start);
    case '\\':
      return make(TokenKind::Backslash, Start);
    case '^':
      return make(TokenKind::Caret, Start);
    case '=':
      return make(match('=') ? TokenKind::EqEq : TokenKind::Assign, Start);
    case '<':
      return make(match('=') ? TokenKind::Le : TokenKind::Lt, Start);
    case '>':
      return make(match('=') ? TokenKind::Ge : TokenKind::Gt, Start);
    case '~':
      return make(match('=') ? TokenKind::NotEq : TokenKind::Tilde, Start);
    case '&':
      return make(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Start);
    case '|':
      return make(match('|') ? TokenKind::PipePipe : TokenKind::Pipe, Start);
    case '.':
      if (match('*'))
        return make(TokenKind::DotStar, Start);
      if (match('/'))
        return make(TokenKind::DotSlash, Start);
      if (match('\\'))
        return make(TokenKind::DotBackslash, Start);
      if (match('^'))
        return make(TokenKind::DotCaret, Start);
      if (match('\''))
        return make(TokenKind::DotQuote, Start);
      Diags.error(Start, "unexpected '.'");
      continue;
    case '\'':
      if (quoteIsTranspose())
        return make(TokenKind::Quote, Start);
      return lexString(Start);
    default:
      Diags.error(Start, std::string("unexpected character '") + C + "'");
      continue;
    }
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  // MATLAB averages well under 3 chars per token; one upfront reservation
  // beats a dozen doubling reallocations on scripts of any real size.
  Tokens.reserve(Source.size() / 3 + 8);
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
