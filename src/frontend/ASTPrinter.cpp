//===- ASTPrinter.cpp - MATLAB source emission ----------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTPrinter.h"

#include "support/StringExtras.h"

using namespace mvec;

namespace {

/// Binding strength used to decide parenthesization. Higher binds tighter.
enum Precedence : unsigned {
  PrecNone = 0,
  PrecOrOr = 1,
  PrecAndAnd = 2,
  PrecOr = 3,
  PrecAnd = 4,
  PrecCmp = 5,
  PrecRange = 6,
  PrecAdd = 7,
  PrecMul = 8,
  PrecUnary = 9,
  PrecPow = 10,
  PrecPostfix = 11,
};

unsigned binaryPrec(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::OrOr:
    return PrecOrOr;
  case BinaryOp::AndAnd:
    return PrecAndAnd;
  case BinaryOp::Or:
    return PrecOr;
  case BinaryOp::And:
    return PrecAnd;
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return PrecCmp;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return PrecAdd;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::DotMul:
  case BinaryOp::DotDiv:
    return PrecMul;
  case BinaryOp::Pow:
  case BinaryOp::DotPow:
    return PrecPow;
  }
  return PrecNone;
}

class PrinterImpl {
public:
  void printExpr(std::string &Out, const Expr &E, unsigned MinPrec);
  void printStmtList(std::string &Out, const std::vector<StmtPtr> &Body,
                     unsigned Indent);
  void printStmt(std::string &Out, const Stmt &S, unsigned Indent);

private:
  void indent(std::string &Out, unsigned Indent) {
    Out.append(2 * static_cast<size_t>(Indent), ' ');
  }

  /// Defensive backstop: the parser caps AST depth well below this, so the
  /// limit is unreachable through the normal pipeline, but programmatically
  /// built trees (tests, future transforms) must not overflow the stack.
  static constexpr unsigned MaxPrintDepth = 4000;
  unsigned Depth = 0;
};

void PrinterImpl::printExpr(std::string &Out, const Expr &E,
                            unsigned MinPrec) {
  if (Depth >= MaxPrintDepth) {
    Out += '0'; // sentinel; such a tree cannot round-trip anyway
    return;
  }
  ++Depth;
  struct DepthGuard {
    unsigned &D;
    ~DepthGuard() { --D; }
  } Guard{Depth};
  switch (E.kind()) {
  case Expr::Kind::Number:
    Out += formatMatlabNumber(cast<NumberExpr>(E).value());
    return;
  case Expr::Kind::String: {
    Out += '\'';
    for (char C : cast<StringExpr>(E).value()) {
      Out += C;
      if (C == '\'')
        Out += '\''; // re-escape
    }
    Out += '\'';
    return;
  }
  case Expr::Kind::Ident:
    Out += cast<IdentExpr>(E).name();
    return;
  case Expr::Kind::MagicColon:
    Out += ':';
    return;
  case Expr::Kind::EndKeyword:
    Out += "end";
    return;
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    bool Paren = PrecRange < MinPrec;
    if (Paren)
      Out += '(';
    printExpr(Out, *R.start(), PrecAdd);
    Out += ':';
    if (R.step()) {
      printExpr(Out, *R.step(), PrecAdd);
      Out += ':';
    }
    printExpr(Out, *R.stop(), PrecAdd);
    if (Paren)
      Out += ')';
    return;
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    bool Paren = PrecUnary < MinPrec;
    if (Paren)
      Out += '(';
    Out += unaryOpSpelling(U.op());
    printExpr(Out, *U.operand(), PrecUnary);
    if (Paren)
      Out += ')';
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    unsigned Prec = binaryPrec(B.op());
    bool Paren = Prec < MinPrec;
    if (Paren)
      Out += '(';
    printExpr(Out, *B.lhs(), Prec);
    Out += binaryOpSpelling(B.op());
    // Left-associative: the right operand needs one level more binding.
    printExpr(Out, *B.rhs(), Prec + 1);
    if (Paren)
      Out += ')';
    return;
  }
  case Expr::Kind::Transpose: {
    const auto &T = cast<TransposeExpr>(E);
    printExpr(Out, *T.operand(), PrecPostfix);
    Out += '\'';
    return;
  }
  case Expr::Kind::Index: {
    const auto &I = cast<IndexExpr>(E);
    printExpr(Out, *I.base(), PrecPostfix);
    Out += '(';
    for (unsigned A = 0, N = I.numArgs(); A != N; ++A) {
      if (A != 0)
        Out += ',';
      printExpr(Out, *I.arg(A), PrecNone);
    }
    Out += ')';
    return;
  }
  case Expr::Kind::Matrix: {
    const auto &M = cast<MatrixExpr>(E);
    Out += '[';
    for (size_t R = 0; R != M.rows().size(); ++R) {
      if (R != 0)
        Out += ';';
      const MatrixExpr::Row &Row = M.rows()[R];
      for (size_t C = 0; C != Row.size(); ++C) {
        if (C != 0)
          Out += ',';
        printExpr(Out, *Row[C], PrecNone);
      }
    }
    Out += ']';
    return;
  }
  }
}

void PrinterImpl::printStmtList(std::string &Out,
                                const std::vector<StmtPtr> &Body,
                                unsigned Indent) {
  for (const StmtPtr &S : Body)
    printStmt(Out, *S, Indent);
}

void PrinterImpl::printStmt(std::string &Out, const Stmt &S, unsigned Indent) {
  indent(Out, Indent);
  switch (S.kind()) {
  case Stmt::Kind::Assign: {
    const auto &A = cast<AssignStmt>(S);
    printExpr(Out, *A.lhs(), PrecNone);
    Out += '=';
    printExpr(Out, *A.rhs(), PrecNone);
    Out += ";\n";
    return;
  }
  case Stmt::Kind::Expr: {
    const auto &E = cast<ExprStmt>(S);
    printExpr(Out, *E.expr(), PrecNone);
    Out += ";\n";
    return;
  }
  case Stmt::Kind::For: {
    const auto &F = cast<ForStmt>(S);
    Out += "for ";
    Out += F.indexVar();
    Out += '=';
    printExpr(Out, *F.range(), PrecNone);
    Out += '\n';
    printStmtList(Out, F.body(), Indent + 1);
    indent(Out, Indent);
    Out += "end\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto &W = cast<WhileStmt>(S);
    Out += "while ";
    printExpr(Out, *W.cond(), PrecNone);
    Out += '\n';
    printStmtList(Out, W.body(), Indent + 1);
    indent(Out, Indent);
    Out += "end\n";
    return;
  }
  case Stmt::Kind::If: {
    const auto &If = cast<IfStmt>(S);
    for (size_t BI = 0; BI != If.branches().size(); ++BI) {
      const IfStmt::Branch &B = If.branches()[BI];
      if (BI != 0)
        indent(Out, Indent);
      if (BI == 0) {
        Out += "if ";
        printExpr(Out, *B.Cond, PrecNone);
      } else if (B.Cond) {
        Out += "elseif ";
        printExpr(Out, *B.Cond, PrecNone);
      } else {
        Out += "else";
      }
      Out += '\n';
      printStmtList(Out, B.Body, Indent + 1);
    }
    indent(Out, Indent);
    Out += "end\n";
    return;
  }
  case Stmt::Kind::Break:
    Out += "break;\n";
    return;
  case Stmt::Kind::Continue:
    Out += "continue;\n";
    return;
  case Stmt::Kind::Return:
    Out += "return;\n";
    return;
  }
}

} // namespace

std::string mvec::printExpr(const Expr &E) {
  std::string Out;
  PrinterImpl().printExpr(Out, E, PrecNone);
  return Out;
}

std::string mvec::printStmt(const Stmt &S, unsigned Indent) {
  std::string Out;
  PrinterImpl().printStmt(Out, S, Indent);
  return Out;
}

std::string mvec::printProgram(const Program &P) {
  std::string Out;
  // Skip the early growth doublings; a top-level statement (with its
  // nested body) rarely prints shorter than this.
  Out.reserve(64 * P.Stmts.size());
  PrinterImpl Printer;
  for (const StmtPtr &S : P.Stmts)
    Printer.printStmt(Out, *S, 0);
  return Out;
}
