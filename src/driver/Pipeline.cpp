//===- Pipeline.cpp - End-to-end vectorization pipeline ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "resilience/FaultInjection.h"
#include "shape/AnnotationParser.h"
#include "shape/ShapeInference.h"
#include "vm/CodeCache.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace mvec;

namespace {

/// Runs \p Prog on \p I under the engine selected in \p Limits. The VM
/// tier needs the program's source text for content-addressed cache
/// lookup (and to stamp the source hash into fresh compilations).
bool runWithEngine(Interpreter &I, const Program &Prog,
                   const std::string &Source, const RunLimits &Limits) {
  if (Limits.Engine != ExecEngine::Vm)
    return I.run(Prog);
  std::shared_ptr<const vm::CompiledProgram> CP;
  if (Limits.Code)
    CP = Limits.Code->obtain(Source, Prog);
  else
    CP = std::make_shared<const vm::CompiledProgram>(
        vm::compileProgram(Prog, Source));
  return vm::execute(*CP, I);
}

} // namespace

const PatternDatabase &mvec::defaultPatternDatabase() {
  // Built on first use and frozen before the reference escapes; C++
  // magic-static initialization makes the build race-free, and a frozen
  // database is safe to read from any number of threads.
  static const PatternDatabase &DB = []() -> const PatternDatabase & {
    // The database outlives every program arena, so its template ASTs
    // must come from the heap even if the first caller holds a scope.
    ArenaScope ForceHeap(nullptr);
    static PatternDatabase D;
    registerBuiltinPatterns(D);
    D.freeze();
    return D;
  }();
  return DB;
}

/// Whitespace-tokenized comparison of two printed transcripts. Tokens
/// that both parse fully as numbers are compared with the same relative
/// tolerance as workspace values — a reassociated reduction can shift
/// the last ulp, and round-trip printing would surface it — everything
/// else must match byte for byte.
///
/// Identical transcripts (the overwhelmingly common case) are accepted
/// with one memcmp; the tokenizer runs only on a mismatch, walking both
/// strings in place without istringstream or per-token allocation.
bool mvec::detail::outputsMatch(const std::string &OutA,
                                const std::string &OutB, double Tol) {
  if (OutA == OutB)
    return true;

  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\v' || C == '\f' ||
           C == '\r';
  };
  // Returns the half-open token range at/after Pos, or an empty range at
  // the end of input.
  auto NextToken = [&IsSpace](const std::string &S, size_t &Pos) {
    while (Pos != S.size() && IsSpace(S[Pos]))
      ++Pos;
    size_t Begin = Pos;
    while (Pos != S.size() && !IsSpace(S[Pos]))
      ++Pos;
    return std::pair<size_t, size_t>(Begin, Pos);
  };

  size_t PA = 0, PB = 0;
  std::string TA, TB; // strtod scratch, reused across tokens
  while (true) {
    auto [BeginA, EndA] = NextToken(OutA, PA);
    auto [BeginB, EndB] = NextToken(OutB, PB);
    bool HasA = BeginA != EndA, HasB = BeginB != EndB;
    if (HasA != HasB)
      return false;
    if (!HasA)
      return true;
    size_t LenA = EndA - BeginA, LenB = EndB - BeginB;
    if (LenA == LenB && OutA.compare(BeginA, LenA, OutB, BeginB, LenB) == 0)
      continue;
    TA.assign(OutA, BeginA, LenA);
    TB.assign(OutB, BeginB, LenB);
    char *TailA = nullptr, *TailB = nullptr;
    double VA = std::strtod(TA.c_str(), &TailA);
    double VB = std::strtod(TB.c_str(), &TailB);
    if (TailA == TA.c_str() || *TailA != '\0' || TailB == TB.c_str() ||
        *TailB != '\0')
      return false;
    if (std::isnan(VA) && std::isnan(VB))
      continue;
    // An infinite value makes the relative-tolerance band infinite too
    // (inf <= Tol*inf), which would accept Inf against -Inf or against
    // any finite number; infinities only ever match themselves.
    if (std::isinf(VA) || std::isinf(VB)) {
      if (VA == VB)
        continue;
      return false;
    }
    double Scale = std::fmax(1.0, std::fmax(std::fabs(VA), std::fabs(VB)));
    if (!(std::fabs(VA - VB) <= Tol * Scale))
      return false;
  }
}

PipelineResult mvec::vectorizeSource(const std::string &Source,
                                     const VectorizerOptions &Opts,
                                     const PatternDatabase *DB,
                                     NestCache *NestC) {
  maybeInject(FaultSite::VectorizeEntry);
  PipelineResult Result;
  ParseResult Parsed = parseMatlab(Source, Result.Diags);
  if (Result.Diags.hasErrors())
    return Result;

  ShapeEnv Env = parseShapeAnnotations(Parsed.Annotations, Result.Diags);
  inferProgramShapes(Parsed.Prog, Env);

  if (!DB)
    DB = &defaultPatternDatabase();

  Program Vectorized = vectorizeProgram(Parsed.Prog, Env, *DB, Opts,
                                        Result.Diags, &Result.Stats, NestC);
  Result.VectorizedSource = printProgram(Vectorized);
  return Result;
}

DiffOutcome mvec::diffRunLimited(const std::string &OriginalSource,
                                 const std::string &TransformedSource,
                                 const RunLimits &Limits, double Tol,
                                 uint64_t Seed) {
  maybeInject(FaultSite::ValidateEntry);
  auto Fail = [](DiffStatus Status, std::string Message) {
    return DiffOutcome{Status, std::move(Message)};
  };
  DiagnosticEngine Diags;
  ParseResult Original = parseMatlab(OriginalSource, Diags);
  if (Diags.hasErrors())
    return Fail(DiffStatus::Error,
                "original program does not parse: " + Diags.str());
  ParseResult Transformed = parseMatlab(TransformedSource, Diags);
  if (Diags.hasErrors())
    return Fail(DiffStatus::Error,
                "transformed program does not parse: " + Diags.str());

  Interpreter A, B;
  for (Interpreter *I : {&A, &B}) {
    I->seedRandom(Seed);
    I->setStepLimit(Limits.MaxSteps);
    if (Limits.Deadline)
      I->setDeadline(*Limits.Deadline);
    I->setCancelFlag(Limits.Cancel);
  }
  // Maps an interrupted run onto the outcome status; plain runtime errors
  // stay Error.
  auto RunStatus = [](const Interpreter &I) {
    switch (I.interruptKind()) {
    case Interpreter::InterruptKind::StepLimit:
    case Interpreter::InterruptKind::Deadline:
      return DiffStatus::TimedOut;
    case Interpreter::InterruptKind::Cancelled:
      return DiffStatus::Cancelled;
    case Interpreter::InterruptKind::None:
      break;
    }
    return DiffStatus::Error;
  };
  DiagnosticEngine AnnDiags;
  ShapeEnv Declared;
  if (Limits.CheckAnnotations) {
    Declared = parseShapeAnnotations(Original.Annotations, AnnDiags);
    // Axes declared as 1 must never widen, not even transiently: the
    // vectorizer trusted the annotation for every statement it rewrote,
    // so a loop-time violation invalidates the whole comparison even if
    // the final workspace happens to conform.
    std::unordered_map<std::string, std::pair<bool, bool>> Caps;
    for (const auto &[Name, Dim] : Declared.shapes()) {
      bool RowCapped = Dim.size() > 0 && Dim[0].isOne();
      bool ColCapped = Dim.size() > 1 && Dim[1].isOne();
      if (RowCapped || ColCapped)
        Caps[Name] = {RowCapped, ColCapped};
    }
    A.setShapeCaps(std::move(Caps));
  }

  if (!runWithEngine(A, Original.Prog, OriginalSource, Limits))
    return Fail(RunStatus(A), "original program failed: " + A.errorMessage());

  if (Limits.CheckAnnotations) {
    for (const auto &[Name, Dim] : Declared.shapes()) {
      const Value *V = A.getVariable(Name);
      if (!V)
        continue; // never materialized: nothing to contradict
      size_t Actual[2] = {V->rows(), V->cols()};
      bool Honored = true;
      for (size_t I = 0; I != Dim.size(); ++I) {
        size_t Size = I < 2 ? Actual[I] : 1;
        if (Dim[I].isOne() ? Size != 1 : Size <= 1)
          Honored = false;
      }
      if (!Honored)
        return Fail(DiffStatus::Error,
                    "original program violates annotation: '" + Name +
                        "' declared " + Dim.str() + " but is " +
                        std::to_string(V->rows()) + "x" +
                        std::to_string(V->cols()));
    }
  }

  if (!runWithEngine(B, Transformed.Prog, TransformedSource, Limits))
    return Fail(RunStatus(B),
                "transformed program failed: " + B.errorMessage());

  // For-loop index variables of either program are incidental state: a
  // vectorized loop never materializes its index.
  std::set<std::string> Ignore;
  auto CollectIndexVars = [&Ignore](const Program &P) {
    visitStmts(P.Stmts, [&Ignore](const Stmt &S) {
      if (const auto *For = dyn_cast<ForStmt>(&S))
        Ignore.insert(For->indexVar());
    });
  };
  CollectIndexVars(Original.Prog);
  CollectIndexVars(Transformed.Prog);

  for (const auto &[Name, ValueA] : A.workspace()) {
    if (Ignore.count(Name))
      continue;
    const Value *ValueB = B.getVariable(Name);
    if (!ValueB)
      return Fail(DiffStatus::Mismatch,
                  "variable '" + Name + "' missing after transformation");
    if (!ValueA.equals(*ValueB, Tol))
      return Fail(DiffStatus::Mismatch, "variable '" + Name +
                                            "' differs: " + ValueA.str() +
                                            " vs " + ValueB->str());
  }
  for (const auto &[Name, ValueB] : B.workspace()) {
    (void)ValueB;
    if (!Ignore.count(Name) && !A.getVariable(Name))
      return Fail(DiffStatus::Mismatch,
                  "transformation introduced variable '" + Name + "'");
  }
  if (!detail::outputsMatch(A.output(), B.output(), Tol))
    return Fail(DiffStatus::Mismatch, "printed output differs");
  return DiffOutcome{};
}

DiffOutcome mvec::engineDiffRun(const std::string &Source,
                                const RunLimits &Limits, uint64_t Seed) {
  DiagnosticEngine Diags;
  ParseResult Parsed = parseMatlab(Source, Diags);
  if (Diags.hasErrors())
    return DiffOutcome{DiffStatus::Error,
                       "program does not parse: " + Diags.str()};

  Interpreter Ast, Vm;
  for (Interpreter *I : {&Ast, &Vm}) {
    I->seedRandom(Seed);
    I->setStepLimit(Limits.MaxSteps);
    if (Limits.Deadline)
      I->setDeadline(*Limits.Deadline);
    I->setCancelFlag(Limits.Cancel);
  }

  RunLimits AstLimits = Limits;
  AstLimits.Engine = ExecEngine::Ast;
  RunLimits VmLimits = Limits;
  VmLimits.Engine = ExecEngine::Vm;
  bool AstOk = runWithEngine(Ast, Parsed.Prog, Source, AstLimits);
  bool VmOk = runWithEngine(Vm, Parsed.Prog, Source, VmLimits);

  // A wall-clock interrupt (deadline/cancel) on either side makes the
  // comparison inconclusive: where the clock fires is nondeterministic,
  // so the engines legitimately stop at different statements.
  auto WallClock = [](const Interpreter &I) {
    return I.interruptKind() == Interpreter::InterruptKind::Deadline ||
           I.interruptKind() == Interpreter::InterruptKind::Cancelled;
  };
  if (WallClock(Ast) || WallClock(Vm)) {
    bool Cancelled =
        Ast.interruptKind() == Interpreter::InterruptKind::Cancelled ||
        Vm.interruptKind() == Interpreter::InterruptKind::Cancelled;
    return DiffOutcome{Cancelled ? DiffStatus::Cancelled
                                 : DiffStatus::TimedOut,
                       ""};
  }

  auto Mismatch = [](std::string Message) {
    return DiffOutcome{DiffStatus::Mismatch, std::move(Message)};
  };
  if (AstOk != VmOk || Ast.failed() != Vm.failed())
    return Mismatch(std::string("engines disagree on failure: ast ") +
                    (Ast.failed() ? "failed" : "succeeded") + " ('" +
                    Ast.errorMessage() + "'), vm " +
                    (Vm.failed() ? "failed" : "succeeded") + " ('" +
                    Vm.errorMessage() + "')");
  if (Ast.failed()) {
    if (Ast.errorMessage() != Vm.errorMessage())
      return Mismatch("error messages differ: ast '" + Ast.errorMessage() +
                      "' vs vm '" + Vm.errorMessage() + "'");
    if (!(Ast.errorLoc() == Vm.errorLoc()))
      return Mismatch(
          "error locations differ: ast " +
          std::to_string(Ast.errorLoc().Line) + ":" +
          std::to_string(Ast.errorLoc().Col) + " vs vm " +
          std::to_string(Vm.errorLoc().Line) + ":" +
          std::to_string(Vm.errorLoc().Col) + " for '" +
          Ast.errorMessage() + "'");
  }
  if (Ast.interruptKind() != Vm.interruptKind())
    return Mismatch("interrupt kinds differ");
  if (Ast.stepsExecuted() != Vm.stepsExecuted())
    return Mismatch("step counts differ: ast " +
                    std::to_string(Ast.stepsExecuted()) + " vs vm " +
                    std::to_string(Vm.stepsExecuted()));
  if (Ast.output() != Vm.output())
    return Mismatch("printed output differs byte-for-byte");

  // Workspaces must agree exactly — tolerance 0 (Value::equals treats
  // NaN as equal to NaN, so identical computations always pass).
  auto WsA = Ast.workspace();
  auto WsB = Vm.workspace();
  for (const auto &[Name, ValueA] : WsA) {
    const Value *ValueB = Vm.getVariable(Name);
    if (!ValueB)
      return Mismatch("variable '" + Name + "' defined by ast engine only");
    if (!ValueA.equals(*ValueB, 0.0))
      return Mismatch("variable '" + Name + "' differs: ast " +
                      ValueA.str() + " vs vm " + ValueB->str());
  }
  for (const auto &[Name, ValueB] : WsB) {
    (void)ValueB;
    if (!Ast.getVariable(Name))
      return Mismatch("variable '" + Name + "' defined by vm engine only");
  }
  return DiffOutcome{};
}

std::string mvec::diffRun(const std::string &OriginalSource,
                          const std::string &TransformedSource, double Tol,
                          uint64_t Seed) {
  return diffRunLimited(OriginalSource, TransformedSource, RunLimits{}, Tol,
                        Seed)
      .Message;
}

std::optional<std::string>
mvec::vectorizeAndValidate(const std::string &Source, std::string &Error,
                           const VectorizerOptions &Opts) {
  PipelineResult Result = vectorizeSource(Source, Opts);
  if (!Result.succeeded()) {
    Error = "vectorization failed: " + Result.Diags.str();
    return std::nullopt;
  }
  std::string Diff = diffRun(Source, Result.VectorizedSource);
  if (!Diff.empty()) {
    Error = "semantic divergence: " + Diff + "\n--- vectorized ---\n" +
            Result.VectorizedSource;
    return std::nullopt;
  }
  return Result.VectorizedSource;
}
