//===- Pipeline.cpp - End-to-end vectorization pipeline ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "shape/AnnotationParser.h"
#include "shape/ShapeInference.h"

#include <set>

using namespace mvec;

PipelineResult mvec::vectorizeSource(const std::string &Source,
                                     const VectorizerOptions &Opts,
                                     const PatternDatabase *DB) {
  PipelineResult Result;
  ParseResult Parsed = parseMatlab(Source, Result.Diags);
  if (Result.Diags.hasErrors())
    return Result;

  ShapeEnv Env = parseShapeAnnotations(Parsed.Annotations, Result.Diags);
  inferProgramShapes(Parsed.Prog, Env);

  PatternDatabase Default;
  if (!DB) {
    registerBuiltinPatterns(Default);
    DB = &Default;
  }

  Program Vectorized = vectorizeProgram(Parsed.Prog, Env, *DB, Opts,
                                        Result.Diags, &Result.Stats);
  Result.VectorizedSource = printProgram(Vectorized);
  return Result;
}

DiffOutcome mvec::diffRunLimited(const std::string &OriginalSource,
                                 const std::string &TransformedSource,
                                 const RunLimits &Limits, double Tol,
                                 uint64_t Seed) {
  auto Fail = [](DiffStatus Status, std::string Message) {
    return DiffOutcome{Status, std::move(Message)};
  };
  DiagnosticEngine Diags;
  ParseResult Original = parseMatlab(OriginalSource, Diags);
  if (Diags.hasErrors())
    return Fail(DiffStatus::Error,
                "original program does not parse: " + Diags.str());
  ParseResult Transformed = parseMatlab(TransformedSource, Diags);
  if (Diags.hasErrors())
    return Fail(DiffStatus::Error,
                "transformed program does not parse: " + Diags.str());

  Interpreter A, B;
  for (Interpreter *I : {&A, &B}) {
    I->seedRandom(Seed);
    I->setStepLimit(Limits.MaxSteps);
    if (Limits.Deadline)
      I->setDeadline(*Limits.Deadline);
    I->setCancelFlag(Limits.Cancel);
  }
  // Maps an interrupted run onto the outcome status; plain runtime errors
  // stay Error.
  auto RunStatus = [](const Interpreter &I) {
    switch (I.interruptKind()) {
    case Interpreter::InterruptKind::StepLimit:
    case Interpreter::InterruptKind::Deadline:
      return DiffStatus::TimedOut;
    case Interpreter::InterruptKind::Cancelled:
      return DiffStatus::Cancelled;
    case Interpreter::InterruptKind::None:
      break;
    }
    return DiffStatus::Error;
  };
  if (!A.run(Original.Prog))
    return Fail(RunStatus(A), "original program failed: " + A.errorMessage());
  if (!B.run(Transformed.Prog))
    return Fail(RunStatus(B),
                "transformed program failed: " + B.errorMessage());

  // For-loop index variables of either program are incidental state: a
  // vectorized loop never materializes its index.
  std::set<std::string> Ignore;
  auto CollectIndexVars = [&Ignore](const Program &P) {
    visitStmts(P.Stmts, [&Ignore](const Stmt &S) {
      if (const auto *For = dyn_cast<ForStmt>(&S))
        Ignore.insert(For->indexVar());
    });
  };
  CollectIndexVars(Original.Prog);
  CollectIndexVars(Transformed.Prog);

  for (const auto &[Name, ValueA] : A.workspace()) {
    if (Ignore.count(Name))
      continue;
    const Value *ValueB = B.getVariable(Name);
    if (!ValueB)
      return Fail(DiffStatus::Mismatch,
                  "variable '" + Name + "' missing after transformation");
    if (!ValueA.equals(*ValueB, Tol))
      return Fail(DiffStatus::Mismatch, "variable '" + Name +
                                            "' differs: " + ValueA.str() +
                                            " vs " + ValueB->str());
  }
  for (const auto &[Name, ValueB] : B.workspace()) {
    (void)ValueB;
    if (!Ignore.count(Name) && !A.getVariable(Name))
      return Fail(DiffStatus::Mismatch,
                  "transformation introduced variable '" + Name + "'");
  }
  if (A.output() != B.output())
    return Fail(DiffStatus::Mismatch, "printed output differs");
  return DiffOutcome{};
}

std::string mvec::diffRun(const std::string &OriginalSource,
                          const std::string &TransformedSource, double Tol,
                          uint64_t Seed) {
  return diffRunLimited(OriginalSource, TransformedSource, RunLimits{}, Tol,
                        Seed)
      .Message;
}

std::optional<std::string>
mvec::vectorizeAndValidate(const std::string &Source, std::string &Error,
                           const VectorizerOptions &Opts) {
  PipelineResult Result = vectorizeSource(Source, Opts);
  if (!Result.succeeded()) {
    Error = "vectorization failed: " + Result.Diags.str();
    return std::nullopt;
  }
  std::string Diff = diffRun(Source, Result.VectorizedSource);
  if (!Diff.empty()) {
    Error = "semantic divergence: " + Diff + "\n--- vectorized ---\n" +
            Result.VectorizedSource;
    return std::nullopt;
  }
  return Result.VectorizedSource;
}
