//===- Pipeline.h - End-to-end vectorization pipeline -----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API (paper Fig. 1): MATLAB source in, vectorized
/// MATLAB source out — parse, collect `%!` shape annotations, run the
/// light intra-script shape inference, vectorize, print. Also provides the
/// differential runner that validates a transformation by executing the
/// original and vectorized programs and comparing final workspaces.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DRIVER_PIPELINE_H
#define MVEC_DRIVER_PIPELINE_H

#include "patterns/PatternDatabase.h"
#include "support/Diagnostics.h"
#include "vectorizer/Options.h"
#include "vectorizer/Vectorizer.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <string>

namespace mvec {

namespace vm {
class CodeCache;
} // namespace vm

/// Which execution tier runs interpreted programs during differential
/// validation. Both tiers share one semantics contract: the bytecode VM
/// executes through a host Interpreter (same workspace, kernels, RNG,
/// error/interrupt machinery), so a program must behave byte-identically
/// under either engine. engineDiffRun() enforces exactly that.
enum class ExecEngine {
  Ast, ///< the original tree-walking interpreter
  Vm,  ///< register-bytecode VM (compiled via vm::compileProgram)
};

struct PipelineResult {
  /// The vectorized program, re-rendered as MATLAB source.
  std::string VectorizedSource;
  VectorizeStats Stats;
  /// Parse/analysis diagnostics (includes remarks when enabled).
  DiagnosticEngine Diags;

  bool succeeded() const { return !Diags.hasErrors(); }
};

/// The shared builtin pattern database vectorizeSource falls back to when
/// no caller database is given: built once on first use, frozen, and read
/// concurrently ever after. Callers that want plugins or extra patterns
/// still build their own.
const PatternDatabase &defaultPatternDatabase();

namespace detail {
/// Whitespace-tokenized transcript comparison with numeric tolerance;
/// exposed for unit tests (see Pipeline.cpp for the semantics).
bool outputsMatch(const std::string &OutA, const std::string &OutB,
                  double Tol);
} // namespace detail

/// Runs the full pipeline on \p Source. \p DB defaults to the builtin
/// pattern database when null. \p NestC, when given, memoizes per-loop-nest
/// vectorization outcomes across calls (see vectorizer/NestCache.h); there
/// is no default instance, so plain calls always measure the true cold
/// path.
///
/// Thread-safety: re-entrant. All state (parse tree, shape environment,
/// diagnostics, the fallback pattern database) is local to the call; a
/// caller-supplied \p DB is only read through its const interface, so one
/// frozen database may be shared by any number of concurrent calls (see
/// PatternDatabase::freeze()), and a shared \p NestC synchronizes
/// internally. The service layer (src/service) relies on this to fan the
/// pipeline out over a worker pool.
PipelineResult vectorizeSource(const std::string &Source,
                               const VectorizerOptions &Opts = {},
                               const PatternDatabase *DB = nullptr,
                               NestCache *NestC = nullptr);

/// Execution bounds for differential validation. Interpreted MATLAB can
/// loop forever (or merely far too long); services must be able to cut a
/// runaway run off without wedging a worker thread.
struct RunLimits {
  /// Abort after this many interpreted statements (0 = unlimited).
  uint64_t MaxSteps = 0;
  /// Abort once the steady clock passes this point.
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  /// Abort soon after the flag becomes true (caller-owned; may be shared
  /// across a batch for bulk cancellation). Must outlive the call.
  const std::atomic<bool> *Cancel = nullptr;
  /// After the original program runs, check that its workspace honors the
  /// %! shape annotations (a declared 1 axis is exactly one, a declared *
  /// axis exceeds one). A violation is reported as an "original program"
  /// error: the input lied to the vectorizer, so a divergence is the
  /// input's fault, not the transformation's. Used by the fuzzer, where
  /// mutation can desynchronize annotations from code.
  bool CheckAnnotations = false;
  /// Execution tier for both runs.
  ExecEngine Engine = ExecEngine::Ast;
  /// Optional compiled-program cache consulted when Engine == Vm; null
  /// compiles fresh each run (caller-owned, must outlive the call).
  vm::CodeCache *Code = nullptr;
};

enum class DiffStatus {
  Match,     ///< programs agree
  Mismatch,  ///< both ran; final states diverge
  Error,     ///< a program failed to parse or raised a runtime error
  TimedOut,  ///< a run hit MaxSteps or the deadline
  Cancelled, ///< the cancel flag fired mid-run
};

struct DiffOutcome {
  DiffStatus Status = DiffStatus::Match;
  /// Empty on Match, else a description of the divergence / failure.
  std::string Message;
  bool agreed() const { return Status == DiffStatus::Match; }
};

/// diffRun with execution bounds; see diffRun below for the comparison
/// semantics. Also re-entrant (fresh interpreters per call).
DiffOutcome diffRunLimited(const std::string &OriginalSource,
                           const std::string &TransformedSource,
                           const RunLimits &Limits, double Tol = 1e-9,
                           uint64_t Seed = 12345);

/// Engine-differential validation: runs \p Source once under the
/// tree-walker and once under the bytecode VM (fresh interpreters, same
/// seed and limits) and demands *byte-identical* behaviour: same
/// failed/error message/error location, same interrupt kind, same step
/// count, exactly equal workspaces (tolerance 0; NaNs compare equal) and
/// printed output. The only tolerated asymmetry is wall-clock interrupts:
/// when either run is cut off by the deadline or the cancel flag, the
/// comparison is inconclusive (returns TimedOut/Cancelled with an empty
/// message) because where the clock fires is not deterministic. Step-limit
/// interrupts ARE deterministic and must match exactly.
DiffOutcome engineDiffRun(const std::string &Source,
                          const RunLimits &Limits = {},
                          uint64_t Seed = 12345);

/// Differential validation: executes \p OriginalSource and
/// \p TransformedSource in fresh interpreters (same RNG seed) and compares
/// the final workspaces, ignoring for-loop index variables of the original
/// program (vectorized code no longer materializes them). Returns an empty
/// string when the states agree, else a description of the divergence.
/// Unbounded; prefer diffRunLimited when the input is untrusted.
std::string diffRun(const std::string &OriginalSource,
                    const std::string &TransformedSource,
                    double Tol = 1e-9, uint64_t Seed = 12345);

/// Convenience for tests and benchmarks: vectorizes \p Source and checks
/// semantic equivalence via diffRun. Returns the vectorized source, or
/// nullopt with \p Error filled.
std::optional<std::string> vectorizeAndValidate(const std::string &Source,
                                                std::string &Error,
                                                const VectorizerOptions &Opts = {});

} // namespace mvec

#endif // MVEC_DRIVER_PIPELINE_H
