//===- Pipeline.h - End-to-end vectorization pipeline -----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API (paper Fig. 1): MATLAB source in, vectorized
/// MATLAB source out — parse, collect `%!` shape annotations, run the
/// light intra-script shape inference, vectorize, print. Also provides the
/// differential runner that validates a transformation by executing the
/// original and vectorized programs and comparing final workspaces.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DRIVER_PIPELINE_H
#define MVEC_DRIVER_PIPELINE_H

#include "patterns/PatternDatabase.h"
#include "support/Diagnostics.h"
#include "vectorizer/Options.h"
#include "vectorizer/Vectorizer.h"

#include <optional>
#include <string>

namespace mvec {

struct PipelineResult {
  /// The vectorized program, re-rendered as MATLAB source.
  std::string VectorizedSource;
  VectorizeStats Stats;
  /// Parse/analysis diagnostics (includes remarks when enabled).
  DiagnosticEngine Diags;

  bool succeeded() const { return !Diags.hasErrors(); }
};

/// Runs the full pipeline on \p Source. \p DB defaults to the builtin
/// pattern database when null.
PipelineResult vectorizeSource(const std::string &Source,
                               const VectorizerOptions &Opts = {},
                               const PatternDatabase *DB = nullptr);

/// Differential validation: executes \p OriginalSource and
/// \p TransformedSource in fresh interpreters (same RNG seed) and compares
/// the final workspaces, ignoring for-loop index variables of the original
/// program (vectorized code no longer materializes them). Returns an empty
/// string when the states agree, else a description of the divergence.
std::string diffRun(const std::string &OriginalSource,
                    const std::string &TransformedSource,
                    double Tol = 1e-9, uint64_t Seed = 12345);

/// Convenience for tests and benchmarks: vectorizes \p Source and checks
/// semantic equivalence via diffRun. Returns the vectorized source, or
/// nullopt with \p Error filled.
std::optional<std::string> vectorizeAndValidate(const std::string &Source,
                                                std::string &Error,
                                                const VectorizerOptions &Opts = {});

} // namespace mvec

#endif // MVEC_DRIVER_PIPELINE_H
