//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a bounded FIFO job queue. Submission
/// blocks when the queue is full (back-pressure, not unbounded memory),
/// which is the behaviour a batch front-end wants: the producer slows to
/// the rate the workers sustain. Tasks are type-erased closures; result
/// plumbing (futures) lives in the caller.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SERVICE_THREADPOOL_H
#define MVEC_SERVICE_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mvec {

class ThreadPool {
public:
  /// Starts \p Workers threads (at least one) with a queue holding at
  /// most \p QueueCapacity pending tasks (at least one).
  ThreadPool(unsigned Workers, size_t QueueCapacity);
  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task, blocking while the queue is full. Returns false
  /// (dropping the task) when the pool is shutting down.
  bool submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished executing.
  void drain();

  /// Stops accepting work, runs what is already queued, joins workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }
  size_t queueCapacity() const { return Capacity; }
  /// Current number of queued (not yet running) tasks.
  size_t queueDepth() const;
  /// Deepest the queue has been since construction.
  size_t queueHighWater() const;
  /// Tasks that escaped with an exception (contained by the worker loop).
  size_t taskFaults() const;

private:
  void workerLoop();

  const size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable QueueNotFull;
  std::condition_variable QueueNotEmpty;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  size_t HighWater = 0;
  size_t Running = 0;
  size_t TaskFaults = 0;
  bool ShuttingDown = false;
};

} // namespace mvec

#endif // MVEC_SERVICE_THREADPOOL_H
