//===- VectorizationService.h - Concurrent batch vectorization --*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer over the one-shot pipeline: many scripts in, many
/// results out, concurrently. A fixed worker pool fans vectorizeSource
/// (+ optional differential validation) out over submitted jobs; a
/// content-addressed LRU cache serves repeated submissions without
/// re-parsing; per-job deadlines and batch cancellation keep a runaway
/// interpreter run from wedging a worker; and a metrics registry counts
/// everything a dashboard would want.
///
/// Threading model: one shared frozen PatternDatabase (read-only during
/// serving), per-job DiagnosticEngine and interpreters (the pipeline is
/// re-entrant, see Pipeline.h), shared cache/metrics behind their own
/// synchronization. submit() may be called from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SERVICE_VECTORIZATIONSERVICE_H
#define MVEC_SERVICE_VECTORIZATIONSERVICE_H

#include "driver/Pipeline.h"
#include "patterns/PatternDatabase.h"
#include "resilience/CircuitBreaker.h"
#include "resilience/FaultInjection.h"
#include "resilience/Resilience.h"
#include "service/ContentCache.h"
#include "service/Job.h"
#include "service/ResultStore.h"
#include "service/ServiceMetrics.h"
#include "service/ThreadPool.h"

#include <atomic>
#include <future>
#include <memory>
#include <vector>

namespace mvec {

struct ServiceConfig {
  /// Worker threads (clamped to >= 1).
  unsigned Workers = 4;
  /// Bounded submission queue; submit() blocks when full (back-pressure).
  size_t QueueCapacity = 64;
  /// Result-cache entries; 0 disables caching.
  size_t CacheCapacity = 256;
  /// Per-loop-nest outcome cache entries (see vectorizer/NestCache.h);
  /// serves nests shared between otherwise-distinct scripts, below the
  /// whole-script result cache. 0 disables nest caching.
  size_t NestCacheCapacity = 1024;
  /// Default per-job deadline (zero = no deadline). Individual jobs may
  /// override via JobSpec::Deadline.
  std::chrono::milliseconds DefaultDeadline{0};
  /// Pattern database to serve with; null uses the builtins (which the
  /// service builds and freezes itself). A caller-supplied database must
  /// outlive the service and must be fully registered — ideally frozen —
  /// before the first job is submitted (see PatternDatabase::freeze()).
  const PatternDatabase *DB = nullptr;
  /// Persistent second cache tier consulted on a memory-cache miss and
  /// written through on success (null = memory tier only). Must outlive
  /// the service and be callable from every worker concurrently; the
  /// daemon wires its on-disk DiskStore in here so warm results survive
  /// restarts.
  ResultStore *Store = nullptr;
  /// Retry, circuit-breaker, budget, and degradation policy.
  ResilienceConfig Resilience;
  /// Fault-injection plan armed for every job (null = disarmed). Must
  /// outlive the service. Testing/chaos-campaign hook; never set in
  /// production configurations.
  const FaultPlan *Faults = nullptr;
  /// Execution tier for the differential-validation runs: the classic
  /// tree-walker, or the register-bytecode VM (src/vm). Result-cache keys
  /// are salted with the engine so a verdict produced by one tier is
  /// never served as the other's.
  ExecEngine Engine = ExecEngine::Ast;
  /// Compiled-program (bytecode) cache entries when Engine == Vm; 0
  /// disables the memory tier. The cache writes serialized programs
  /// through to Store (when wired), so a restarted daemon re-executes
  /// warm scripts without re-lowering them.
  size_t CodeCacheCapacity = 64;
  /// Profitability cost model applied to every job that did not bring its
  /// own (null = vectorize whenever legal). Must outlive the service; its
  /// fingerprint salts every cache tier through optionsFingerprint, so
  /// results computed under one calibration are never served under
  /// another.
  const cost::CostModel *Cost = nullptr;
};

class VectorizationService {
public:
  explicit VectorizationService(ServiceConfig Config = {});
  /// Waits for in-flight jobs (drains the queue) before tearing down.
  ~VectorizationService();

  VectorizationService(const VectorizationService &) = delete;
  VectorizationService &operator=(const VectorizationService &) = delete;

  /// Enqueues one job; blocks while the submission queue is full. The
  /// future is fulfilled when the job reaches a terminal status (it never
  /// throws — all failures are folded into JobResult).
  std::future<JobResult> submit(JobSpec Spec);

  /// Convenience: submits every spec, waits for all of them, and returns
  /// results in submission order.
  std::vector<JobResult> runBatch(std::vector<JobSpec> Specs);

  /// Blocks until every job submitted so far has completed.
  void drain();

  /// Requests cancellation of everything in flight and everything queued.
  /// Running interpreter work stops at the next interrupt poll; queued
  /// jobs complete immediately as Cancelled. Cancellation is sticky until
  /// resetCancellation() — new submissions complete as Cancelled too.
  void cancelAll();
  void resetCancellation();

  const ServiceConfig &config() const { return Config; }
  ServiceMetrics &metrics() { return Metrics; }
  const ServiceMetrics &metrics() const { return Metrics; }
  const ContentCache &cache() const { return Cache; }
  const NestCache &nestCache() const { return NCache; }
  /// Null unless the service runs the Vm engine.
  const vm::CodeCache *codeCache() const { return Code.get(); }

private:
  JobResult processJob(const JobSpec &Spec,
                       std::chrono::steady_clock::time_point SubmitTime);
  /// Breaker gate + per-attempt fault/governor scopes + retry with
  /// jittered backoff + graceful degradation, around executeUncached.
  JobResult
  executeWithResilience(const JobSpec &Spec,
                        std::chrono::steady_clock::time_point Start,
                        uint64_t JobSalt);
  JobResult executeUncached(const JobSpec &Spec,
                            std::chrono::steady_clock::time_point Start);

  ServiceConfig Config;
  /// Owns the database when the config did not supply one.
  PatternDatabase OwnedDB;
  const PatternDatabase *DB;
  ContentCache Cache;
  /// Nest-level outcome cache shared by every worker (internally
  /// synchronized).
  NestCache NCache;
  /// Compiled-bytecode cache (built only for the Vm engine; internally
  /// synchronized, shared by every worker).
  std::unique_ptr<vm::CodeCache> Code;
  ServiceMetrics Metrics;
  /// Service-wide breaker fed by internal/resource failures; open sheds
  /// new attempts into immediate degraded results.
  CircuitBreaker Breaker;
  std::atomic<bool> CancelRequested{false};
  /// Constructed last so workers never see a half-built service; the
  /// unique_ptr keeps teardown order explicit (reset first in ~).
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace mvec

#endif // MVEC_SERVICE_VECTORIZATIONSERVICE_H
