//===- ContentCache.h - Content-addressed result cache ----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, content-addressed cache of vectorization results with
/// LRU eviction. The key is a 64-bit FNV-1a hash over the exact source
/// text plus a fingerprint of every option that can change the output
/// (VectorizerOptions toggles and the validate flag), so two submissions
/// collide only when the pipeline would provably do identical work.
/// Results of failed jobs are never cached: a failure may be transient
/// (deadline, cancellation) and re-attempting is cheap relative to
/// serving a wrong verdict forever.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SERVICE_CONTENTCACHE_H
#define MVEC_SERVICE_CONTENTCACHE_H

#include "service/Job.h"
#include "vectorizer/NestCache.h" // fnv1aHash, optionsFingerprint

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mvec {

/// The cache key for one job: hash(source) combined with the options
/// fingerprint and the validate flag.
uint64_t cacheKeyFor(const std::string &Source, const VectorizerOptions &Opts,
                     bool Validate);

/// The cache key for a full job spec. Additionally folds in the
/// result-affecting validation knobs (tolerance, step budget) so two
/// submissions of the same source under different execution bounds never
/// share a verdict. Deadlines are deliberately excluded: they only decide
/// *whether* a result is produced, and failed results are never cached.
uint64_t cacheKeyFor(const JobSpec &Spec);

/// Bounded LRU map from cache key to successful JobResult.
class ContentCache {
public:
  /// \p Capacity of zero disables caching (every lookup misses, inserts
  /// are dropped).
  explicit ContentCache(size_t Capacity) : Capacity(Capacity) {}

  /// Returns the cached result for \p Key and refreshes its recency;
  /// counts a hit or a miss.
  std::optional<JobResult> lookup(uint64_t Key);

  /// Inserts (or refreshes) \p Result under \p Key, evicting the least
  /// recently used entry when full.
  void insert(uint64_t Key, JobResult Result);

  size_t size() const;
  size_t capacity() const { return Capacity; }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

private:
  struct Entry {
    uint64_t Key;
    JobResult Result;
  };

  const size_t Capacity;
  mutable std::mutex Mutex;
  /// Most recently used at the front.
  std::list<Entry> LRU;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace mvec

#endif // MVEC_SERVICE_CONTENTCACHE_H
