//===- ServiceMetrics.h - Service observability -----------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters and latency histograms for the vectorization service. All
/// recording paths are lock-free (relaxed atomics): workers bump them on
/// the hot path, and dump() readers tolerate a momentarily torn view
/// (counts may be one apart across counters — fine for monitoring).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SERVICE_SERVICEMETRICS_H
#define MVEC_SERVICE_SERVICEMETRICS_H

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace mvec {

/// A fixed-bucket log-2 latency histogram (microsecond resolution).
/// Bucket B counts samples in [2^B, 2^(B+1)) microseconds; the last
/// bucket absorbs everything slower (~34 s and beyond).
class LatencyHistogram {
public:
  static constexpr size_t NumBuckets = 26;

  // Inline so recorders outside the service library (the vm CodeCache)
  // need only this header.
  void record(double Seconds) {
    double Micros = std::max(Seconds, 0.0) * 1e6;
    auto Us = static_cast<uint64_t>(Micros);
    size_t B = 0;
    while (B + 1 < NumBuckets && (uint64_t(1) << (B + 1)) <= (Us | 1))
      ++B;
    Buckets[B].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    SumUs.fetch_add(Us, std::memory_order_relaxed);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  /// Total observed time in microseconds.
  uint64_t sumMicros() const { return SumUs.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }
  double meanSeconds() const;
  /// Upper edge (seconds) of the bucket containing quantile \p Q — a
  /// conservative approximation good enough for dashboards.
  double quantileSeconds(double Q) const;

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> SumUs{0};
};

/// The service-wide counter registry.
struct ServiceMetrics {
  std::atomic<uint64_t> JobsSubmitted{0};
  std::atomic<uint64_t> JobsSucceeded{0};
  std::atomic<uint64_t> JobsFailed{0};
  std::atomic<uint64_t> JobsTimedOut{0};
  std::atomic<uint64_t> JobsCancelled{0};
  /// Jobs that exhausted retries/budgets and fell back to passing the
  /// original source through.
  std::atomic<uint64_t> JobsDegraded{0};
  /// Pipeline re-attempts after a retryable (internal) failure.
  std::atomic<uint64_t> Retries{0};
  /// Jobs shed without an attempt because the circuit breaker was open.
  std::atomic<uint64_t> BreakerShed{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheMisses{0};
  /// Persistent-store (second tier) hits/misses; only move when a
  /// ResultStore is configured, and only on memory-tier misses.
  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> DiskMisses{0};
  /// Deepest the submission queue has ever been.
  std::atomic<uint64_t> QueueDepthHighWater{0};
  /// Compiled-execution tier: programs lowered to bytecode, and
  /// CodeCache hits (memory or persisted) vs misses (had to lower).
  std::atomic<uint64_t> BytecodeCompiles{0};
  std::atomic<uint64_t> CodeCacheHits{0};
  std::atomic<uint64_t> CodeCacheMisses{0};
  /// Cost-model decisions (only move when ServiceConfig::Cost is set):
  /// nests with at least one vector-form statement, nests where the model
  /// kept at least one legal vectorization in loop form, and mul-chain
  /// variant overrides. Replayed on cache hits like the VectorizeStats
  /// they derive from.
  std::atomic<uint64_t> NestsVectorized{0};
  std::atomic<uint64_t> NestsKeptLoop{0};
  std::atomic<uint64_t> VariantOverrides{0};
  /// Sandbox supervisor counters (only move for process-isolated shards,
  /// where this registry belongs to a sandbox::SandboxPool): worker
  /// processes that died unexpectedly (signal, OOM kill, nonzero exit),
  /// workers respawned after a death, workers SIGKILLed by the watchdog
  /// (stuck past their deadline or missed heartbeats), crash-inducing
  /// inputs written to the quarantine directory, and requests shed
  /// because the crash-loop breaker was open.
  std::atomic<uint64_t> SandboxCrashes{0};
  std::atomic<uint64_t> SandboxRespawns{0};
  std::atomic<uint64_t> SandboxWatchdogKills{0};
  std::atomic<uint64_t> SandboxQuarantined{0};
  std::atomic<uint64_t> SandboxBreakerShed{0};

  LatencyHistogram QueueLatency;     ///< submission -> worker pickup
  LatencyHistogram VectorizeLatency; ///< parse+infer+vectorize stage
  LatencyHistogram ValidateLatency;  ///< differential validation stage
  LatencyHistogram TotalLatency;     ///< submission -> completion
  LatencyHistogram CompileLatency;   ///< AST -> bytecode lowering

  uint64_t jobsCompleted() const {
    return JobsSucceeded.load(std::memory_order_relaxed) +
           JobsFailed.load(std::memory_order_relaxed) +
           JobsTimedOut.load(std::memory_order_relaxed) +
           JobsCancelled.load(std::memory_order_relaxed) +
           JobsDegraded.load(std::memory_order_relaxed);
  }

  /// Raises QueueDepthHighWater to at least \p Depth.
  void noteQueueDepth(uint64_t Depth);

  /// Human-readable multi-line dump.
  std::string text() const;
  /// Machine-readable dump (one JSON object; stable key names).
  std::string json() const;
};

} // namespace mvec

#endif // MVEC_SERVICE_SERVICEMETRICS_H
