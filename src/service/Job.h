//===- Job.h - Service job specification and result -------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of work of the vectorization service: one MATLAB script to
/// vectorize (and optionally validate by differential execution), plus the
/// per-job knobs a batch submitter may override, and the structured result
/// the service hands back.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SERVICE_JOB_H
#define MVEC_SERVICE_JOB_H

#include "resilience/Resilience.h"
#include "vectorizer/Options.h"
#include "vectorizer/Vectorizer.h"

#include <chrono>
#include <string>

namespace mvec {

/// Terminal state of a service job.
enum class JobStatus {
  Succeeded, ///< vectorized (and validated, when requested)
  Failed,    ///< parse/vectorize error, runtime error, or divergence
  TimedOut,  ///< the per-job deadline fired before the job finished
  Cancelled, ///< the batch was cancelled before/while the job ran
  Degraded,  ///< retries/budgets exhausted; original source passed through
};

/// Display name for \p Status ("succeeded", "failed", ...).
const char *jobStatusName(JobStatus Status);

/// One script submitted to the service.
struct JobSpec {
  /// Display name (typically the file name); shows up in reports only.
  std::string Name;
  /// The annotated MATLAB source to vectorize.
  std::string Source;
  VectorizerOptions Opts;
  /// Run differential validation (original vs. vectorized under the
  /// interpreter) before declaring success.
  bool Validate = true;
  /// Per-job deadline override; zero uses the service default. The clock
  /// starts when a worker picks the job up, and bounds the whole job
  /// (vectorization plus validation runs).
  std::chrono::milliseconds Deadline{0};
  /// Comparison tolerance for differential validation. The pipeline may
  /// reorder floating-point reductions; callers comparing reduction-heavy
  /// programs typically relax this to ~1e-7.
  double ValidateTol = 1e-9;
  /// Per-run interpreted-statement budget for each validation run
  /// (0 = unlimited). Unlike the wall-clock deadline this is
  /// deterministic, which the fuzzing oracle relies on to classify hangs
  /// reproducibly.
  uint64_t MaxSteps = 0;
  /// Reject (as an "original program" failure) inputs whose runtime
  /// shapes contradict their %! annotations; see
  /// RunLimits::CheckAnnotations.
  bool CheckAnnotations = false;
};

/// What the service produced for one job.
struct JobResult {
  JobStatus Status = JobStatus::Failed;
  /// Coarse failure taxonomy driving retry/breaker/degradation decisions
  /// (None on success). Input errors are the script's fault, Resource
  /// means a budget was exhausted, Deadline the clock ran out, Internal
  /// an unexpected exception escaped the pipeline.
  ErrorClass Class = ErrorClass::None;
  /// Pipeline attempts this result took (retries = Attempts - 1).
  unsigned Attempts = 1;
  /// Echo of JobSpec::Name.
  std::string Name;
  /// The vectorized program (empty unless Status == Succeeded). For
  /// Degraded results this is the *original* source, byte for byte: the
  /// caller can always run whatever comes back here.
  std::string VectorizedSource;
  /// Diagnostics / failure description (empty on success).
  std::string Message;
  VectorizeStats Stats;
  /// True when the result was served from the content-addressed cache
  /// without re-running the pipeline.
  bool CacheHit = false;
  /// True when the serving cache tier was the persistent result store
  /// (implies CacheHit; the in-memory tier missed, e.g. after a restart).
  bool DiskHit = false;
  /// Wall time spent queued before a worker picked the job up.
  double QueueSeconds = 0;
  /// Wall time of the parse+infer+vectorize stage (0 on cache hits).
  double VectorizeSeconds = 0;
  /// Wall time of the differential-validation stage (0 when skipped).
  double ValidateSeconds = 0;
  /// Submission-to-completion wall time.
  double TotalSeconds = 0;

  bool succeeded() const { return Status == JobStatus::Succeeded; }
};

} // namespace mvec

#endif // MVEC_SERVICE_JOB_H
