//===- ThreadPool.cpp - Fixed-size worker pool ------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ThreadPool.h"

#include <algorithm>

using namespace mvec;

ThreadPool::ThreadPool(unsigned Workers, size_t QueueCapacity)
    : Capacity(std::max<size_t>(QueueCapacity, 1)) {
  Workers = std::max(Workers, 1u);
  Threads.reserve(Workers);
  for (unsigned W = 0; W != Workers; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    QueueNotFull.wait(
        Lock, [this] { return ShuttingDown || Queue.size() < Capacity; });
    if (ShuttingDown)
      return false;
    Queue.push_back(std::move(Task));
    HighWater = std::max(HighWater, Queue.size());
  }
  QueueNotEmpty.notify_one();
  return true;
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::shutdown() {
  // Claim the thread handles under the lock: two concurrent shutdown()
  // calls previously both reached the join loop (the second saw
  // ShuttingDown set but Threads not yet cleared) and raced on the same
  // std::thread objects. Whoever swaps the vector out joins; everyone
  // else returns with nothing to do.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
    ToJoin.swap(Threads);
  }
  QueueNotEmpty.notify_all();
  QueueNotFull.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
}

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

size_t ThreadPool::queueHighWater() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return HighWater;
}

size_t ThreadPool::taskFaults() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TaskFaults;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      QueueNotEmpty.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        // Shutting down with nothing left to run.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    QueueNotFull.notify_one();
    // A task that throws must not take the worker thread down with it
    // (std::terminate): the pool would silently shrink and, at shutdown,
    // queued tasks would never resolve their promises. Task wrappers are
    // expected to catch their own exceptions; this is the containment of
    // last resort.
    try {
      Task();
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++TaskFaults;
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Running;
      if (Queue.empty() && Running == 0)
        Idle.notify_all();
    }
  }
}
