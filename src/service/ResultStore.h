//===- ResultStore.h - Persistent result-store interface --------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the service's in-memory ContentCache and a durable
/// second tier. The service consults the store only on a memory miss and
/// writes through on success; the store owns its own durability story
/// (the daemon's DiskStore does atomic write-then-rename with checksums).
/// Declared here — not in src/daemon — so the service layer never depends
/// on the daemon that embeds it.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SERVICE_RESULTSTORE_H
#define MVEC_SERVICE_RESULTSTORE_H

#include "service/Job.h"

#include <cstdint>
#include <optional>

namespace mvec {

/// A persistent, content-addressed map from cache key to successful
/// JobResult. Implementations must be safe to call from every service
/// worker concurrently, and must treat any entry they cannot prove intact
/// as a miss — the pipeline below is always able to recompute.
class ResultStore {
public:
  virtual ~ResultStore() = default;

  /// Returns the stored result for \p Key, or nullopt on miss/corruption.
  /// Returned results carry clean serving flags (CacheHit/DiskHit false);
  /// the service layer stamps how the result was actually served.
  virtual std::optional<JobResult> load(uint64_t Key) = 0;

  /// Durably records \p Result under \p Key. Only successful results are
  /// ever handed in. Failures must be swallowed or thrown — never allowed
  /// to corrupt an existing entry (write-then-rename, not in-place).
  virtual void store(uint64_t Key, const JobResult &Result) = 0;
};

} // namespace mvec

#endif // MVEC_SERVICE_RESULTSTORE_H
