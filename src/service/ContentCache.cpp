//===- ContentCache.cpp - Content-addressed result cache --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ContentCache.h"

#include <cstring>

using namespace mvec;

uint64_t mvec::cacheKeyFor(const std::string &Source,
                           const VectorizerOptions &Opts, bool Validate) {
  uint64_t Key = fnv1aHash(Source);
  // Fold the configuration in through one more FNV round per byte so a
  // toggle flip never cancels against a source edit.
  uint64_t Config = (optionsFingerprint(Opts) << 1) | (Validate ? 1 : 0);
  return fnv1aMix(Config, Key);
}

uint64_t mvec::cacheKeyFor(const JobSpec &Spec) {
  uint64_t Key = cacheKeyFor(Spec.Source, Spec.Opts, Spec.Validate);
  uint64_t TolBits;
  static_assert(sizeof(TolBits) == sizeof(Spec.ValidateTol));
  std::memcpy(&TolBits, &Spec.ValidateTol, sizeof(TolBits));
  for (uint64_t Word :
       {TolBits, Spec.MaxSteps, uint64_t(Spec.CheckAnnotations)})
    Key = fnv1aMix(Word, Key);
  return Key;
}

std::optional<JobResult> ContentCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  LRU.splice(LRU.begin(), LRU, It->second);
  return It->second->Result;
}

void ContentCache::insert(uint64_t Key, JobResult Result) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->Result = std::move(Result);
    LRU.splice(LRU.begin(), LRU, It->second);
    return;
  }
  if (LRU.size() >= Capacity) {
    Index.erase(LRU.back().Key);
    LRU.pop_back();
    ++Evictions;
  }
  LRU.push_front(Entry{Key, std::move(Result)});
  Index[Key] = LRU.begin();
}

size_t ContentCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return LRU.size();
}

uint64_t ContentCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t ContentCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

uint64_t ContentCache::evictions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Evictions;
}
