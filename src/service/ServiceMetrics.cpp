//===- ServiceMetrics.cpp - Service observability ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceMetrics.h"

#include "interp/simd/SimdDispatch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace mvec;

double LatencyHistogram::meanSeconds() const {
  uint64_t N = count();
  return N == 0 ? 0.0 : double(sumMicros()) / double(N) * 1e-6;
}

double LatencyHistogram::quantileSeconds(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  auto Rank = static_cast<uint64_t>(std::ceil(Q * double(N)));
  Rank = std::max<uint64_t>(Rank, 1);
  uint64_t Seen = 0;
  for (size_t B = 0; B != NumBuckets; ++B) {
    Seen += bucket(B);
    if (Seen >= Rank)
      return double(uint64_t(1) << (B + 1)) * 1e-6;
  }
  return double(uint64_t(1) << NumBuckets) * 1e-6;
}

void ServiceMetrics::noteQueueDepth(uint64_t Depth) {
  uint64_t Cur = QueueDepthHighWater.load(std::memory_order_relaxed);
  while (Depth > Cur && !QueueDepthHighWater.compare_exchange_weak(
                            Cur, Depth, std::memory_order_relaxed))
    ;
}

namespace {

void appendHistText(std::ostringstream &Out, const char *Name,
                    const LatencyHistogram &H) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "  %-10s count=%llu mean=%.6fs p50<=%.6fs p99<=%.6fs "
                "p999<=%.6fs\n",
                Name, static_cast<unsigned long long>(H.count()),
                H.meanSeconds(), H.quantileSeconds(0.5),
                H.quantileSeconds(0.99), H.quantileSeconds(0.999));
  Out << Buf;
}

void appendHistJson(std::ostringstream &Out, const char *Name,
                    const LatencyHistogram &H) {
  Out << "\"" << Name << "\":{\"count\":" << H.count()
      << ",\"sum_us\":" << H.sumMicros() << ",\"mean_s\":" << H.meanSeconds()
      << ",\"p50_le_s\":" << H.quantileSeconds(0.5)
      << ",\"p99_le_s\":" << H.quantileSeconds(0.99)
      << ",\"p999_le_s\":" << H.quantileSeconds(0.999) << ",\"buckets_us\":[";
  for (size_t B = 0; B != LatencyHistogram::NumBuckets; ++B)
    Out << (B ? "," : "") << H.bucket(B);
  Out << "]}";
}

} // namespace

std::string ServiceMetrics::text() const {
  std::ostringstream Out;
  Out << "service metrics:\n"
      << "  jobs: submitted=" << JobsSubmitted.load()
      << " succeeded=" << JobsSucceeded.load()
      << " failed=" << JobsFailed.load()
      << " timed_out=" << JobsTimedOut.load()
      << " cancelled=" << JobsCancelled.load()
      << " degraded=" << JobsDegraded.load() << "\n"
      << "  resilience: retries=" << Retries.load()
      << " breaker_shed=" << BreakerShed.load() << "\n"
      << "  cache: hits=" << CacheHits.load()
      << " misses=" << CacheMisses.load()
      << " disk_hits=" << DiskHits.load()
      << " disk_misses=" << DiskMisses.load() << "\n"
      << "  queue: depth_high_water=" << QueueDepthHighWater.load() << "\n"
      << "  compile: bytecode_compiles=" << BytecodeCompiles.load()
      << " code_cache_hits=" << CodeCacheHits.load()
      << " code_cache_misses=" << CodeCacheMisses.load() << "\n"
      << "  cost: nests_vectorized=" << NestsVectorized.load()
      << " nests_kept_loop=" << NestsKeptLoop.load()
      << " variant_overrides=" << VariantOverrides.load() << "\n"
      << "  sandbox: crashes=" << SandboxCrashes.load()
      << " respawns=" << SandboxRespawns.load()
      << " watchdog_kills=" << SandboxWatchdogKills.load()
      << " quarantined=" << SandboxQuarantined.load()
      << " breaker_shed=" << SandboxBreakerShed.load() << "\n";
  // Dispatch state is process-global (one kernel table per process), so
  // every service in the process reports the same tier and shares one set
  // of counters; it still answers "which ISA actually served my traffic".
  const simd::DispatchCounters &D = simd::dispatchCounters();
  Out << "  simd: isa=" << simd::levelName(simd::activeLevel())
      << " elementwise=" << D.Elementwise.load()
      << " compare=" << D.Compare.load()
      << " fused_mul_add=" << D.FusedMulAdd.load()
      << " matmul=" << D.MatMul.load() << " reduce=" << D.Reduce.load()
      << " cumsum=" << D.Cumsum.load() << " unary=" << D.Unary.load() << "\n";
  appendHistText(Out, "queue", QueueLatency);
  appendHistText(Out, "vectorize", VectorizeLatency);
  appendHistText(Out, "validate", ValidateLatency);
  appendHistText(Out, "total", TotalLatency);
  appendHistText(Out, "compile", CompileLatency);
  return Out.str();
}

std::string ServiceMetrics::json() const {
  std::ostringstream Out;
  Out << "{\"jobs\":{\"submitted\":" << JobsSubmitted.load()
      << ",\"succeeded\":" << JobsSucceeded.load()
      << ",\"failed\":" << JobsFailed.load()
      << ",\"timed_out\":" << JobsTimedOut.load()
      << ",\"cancelled\":" << JobsCancelled.load()
      << ",\"degraded\":" << JobsDegraded.load() << "},"
      << "\"resilience\":{\"retries\":" << Retries.load()
      << ",\"breaker_shed\":" << BreakerShed.load() << "},"
      << "\"cache\":{\"hits\":" << CacheHits.load()
      << ",\"misses\":" << CacheMisses.load()
      << ",\"disk_hits\":" << DiskHits.load()
      << ",\"disk_misses\":" << DiskMisses.load() << "},"
      << "\"queue\":{\"depth_high_water\":" << QueueDepthHighWater.load()
      << "},\"compile\":{\"bytecode_compiles\":" << BytecodeCompiles.load()
      << ",\"code_cache_hits\":" << CodeCacheHits.load()
      << ",\"code_cache_misses\":" << CodeCacheMisses.load()
      << "},\"cost\":{\"nests_vectorized\":" << NestsVectorized.load()
      << ",\"nests_kept_loop\":" << NestsKeptLoop.load()
      << ",\"variant_overrides\":" << VariantOverrides.load()
      << "},\"sandbox\":{\"crashes\":" << SandboxCrashes.load()
      << ",\"respawns\":" << SandboxRespawns.load()
      << ",\"watchdog_kills\":" << SandboxWatchdogKills.load()
      << ",\"quarantined\":" << SandboxQuarantined.load()
      << ",\"breaker_shed\":" << SandboxBreakerShed.load() << "},";
  const simd::DispatchCounters &D = simd::dispatchCounters();
  Out << "\"simd\":{\"isa\":\"" << simd::levelName(simd::activeLevel())
      << "\",\"dispatch\":{\"elementwise\":" << D.Elementwise.load()
      << ",\"compare\":" << D.Compare.load()
      << ",\"fused_mul_add\":" << D.FusedMulAdd.load()
      << ",\"matmul\":" << D.MatMul.load() << ",\"reduce\":" << D.Reduce.load()
      << ",\"cumsum\":" << D.Cumsum.load() << ",\"unary\":" << D.Unary.load()
      << "}},\"latency\":{";
  appendHistJson(Out, "queue", QueueLatency);
  Out << ",";
  appendHistJson(Out, "vectorize", VectorizeLatency);
  Out << ",";
  appendHistJson(Out, "validate", ValidateLatency);
  Out << ",";
  appendHistJson(Out, "total", TotalLatency);
  Out << ",";
  appendHistJson(Out, "compile", CompileLatency);
  Out << "}}";
  return Out.str();
}
