//===- VectorizationService.cpp - Concurrent batch vectorization ------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/VectorizationService.h"

#include "driver/Pipeline.h"
#include "resilience/ResourceGovernor.h"
#include "support/ContentHash.h"
#include "vm/CodeCache.h"

#include <optional>
#include <thread>

using namespace mvec;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start, Clock::time_point End) {
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

const char *mvec::jobStatusName(JobStatus Status) {
  switch (Status) {
  case JobStatus::Succeeded:
    return "succeeded";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::TimedOut:
    return "timed_out";
  case JobStatus::Cancelled:
    return "cancelled";
  case JobStatus::Degraded:
    return "degraded";
  }
  return "unknown";
}

VectorizationService::VectorizationService(ServiceConfig Config)
    : Config(Config), Cache(Config.CacheCapacity),
      NCache(Config.NestCacheCapacity), Breaker(Config.Resilience.Breaker) {
  if (Config.DB) {
    DB = Config.DB;
  } else {
    registerBuiltinPatterns(OwnedDB);
    OwnedDB.freeze();
    DB = &OwnedDB;
  }
  if (Config.Engine == ExecEngine::Vm)
    Code = std::make_unique<vm::CodeCache>(Config.CodeCacheCapacity,
                                           Config.Store, &Metrics);
  Pool = std::make_unique<ThreadPool>(Config.Workers, Config.QueueCapacity);
}

VectorizationService::~VectorizationService() {
  // Runs everything already queued (fulfilling every future), then joins.
  Pool.reset();
}

std::future<JobResult> VectorizationService::submit(JobSpec Spec) {
  // Service-wide cost model, unless the job brought its own. Applied
  // before anything hashes the spec: the model's fingerprint is part of
  // the options fingerprint and therefore of every cache key.
  if (!Spec.Opts.Cost && Config.Cost)
    Spec.Opts.Cost = Config.Cost;
  Metrics.JobsSubmitted.fetch_add(1, std::memory_order_relaxed);
  Clock::time_point SubmitTime = Clock::now();
  auto Promise = std::make_shared<std::promise<JobResult>>();
  std::future<JobResult> Future = Promise->get_future();
  std::string Name = Spec.Name;
  bool Accepted = Pool->submit(
      [this, Promise, Spec = std::move(Spec), SubmitTime]() mutable {
        // The promise MUST resolve no matter what processJob does: a
        // dropped promise turns the caller's future.get() into a hang (or
        // broken_promise), and an escaping exception would previously have
        // killed the worker via std::terminate.
        JobResult R;
        try {
          R = processJob(Spec, SubmitTime);
        } catch (const std::exception &E) {
          R.Name = Spec.Name;
          R.Status = JobStatus::Failed;
          R.Class = ErrorClass::Internal;
          R.Message = std::string("internal error: ") + E.what();
          Metrics.JobsFailed.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          R.Name = Spec.Name;
          R.Status = JobStatus::Failed;
          R.Class = ErrorClass::Internal;
          R.Message = "internal error: unknown exception";
          Metrics.JobsFailed.fetch_add(1, std::memory_order_relaxed);
        }
        Promise->set_value(std::move(R));
      });
  Metrics.noteQueueDepth(Pool->queueHighWater());
  if (!Accepted) {
    JobResult R;
    R.Name = std::move(Name);
    R.Status = JobStatus::Cancelled;
    R.Message = "service is shutting down";
    Metrics.JobsCancelled.fetch_add(1, std::memory_order_relaxed);
    Promise->set_value(std::move(R));
  }
  return Future;
}

std::vector<JobResult> VectorizationService::runBatch(
    std::vector<JobSpec> Specs) {
  std::vector<std::future<JobResult>> Futures;
  Futures.reserve(Specs.size());
  for (JobSpec &Spec : Specs)
    Futures.push_back(submit(std::move(Spec)));
  std::vector<JobResult> Results;
  Results.reserve(Futures.size());
  for (std::future<JobResult> &F : Futures)
    Results.push_back(F.get());
  return Results;
}

void VectorizationService::drain() { Pool->drain(); }

void VectorizationService::cancelAll() {
  CancelRequested.store(true, std::memory_order_relaxed);
}

void VectorizationService::resetCancellation() {
  CancelRequested.store(false, std::memory_order_relaxed);
}

JobResult VectorizationService::processJob(const JobSpec &Spec,
                                           Clock::time_point SubmitTime) {
  Clock::time_point Start = Clock::now();
  double QueueSeconds = secondsSince(SubmitTime, Start);
  Metrics.QueueLatency.record(QueueSeconds);

  JobResult R;
  // Job salt: same spec -> same salt -> the same fault plan replays the
  // same schedule for the same job, which is what makes campaign failures
  // reproducible in isolation.
  uint64_t Key = cacheKeyFor(Spec);
  // Engine-salted: a validation verdict from one execution tier must
  // never be served as the other's (neither from memory nor from disk).
  if (Config.Engine == ExecEngine::Vm)
    Key = fnv1aMix(0x564d, Key);
  if (CancelRequested.load(std::memory_order_relaxed)) {
    R.Name = Spec.Name;
    R.Status = JobStatus::Cancelled;
    R.Message = "batch cancelled before execution";
  } else if (Config.CacheCapacity > 0) {
    if (std::optional<JobResult> Hit = Cache.lookup(Key)) {
      Metrics.CacheHits.fetch_add(1, std::memory_order_relaxed);
      R = std::move(*Hit);
      R.Name = Spec.Name;
      R.CacheHit = true;
      // Stage timings describe *this* serving, not the original run.
      R.VectorizeSeconds = 0;
      R.ValidateSeconds = 0;
    } else {
      Metrics.CacheMisses.fetch_add(1, std::memory_order_relaxed);
      // Second tier: the persistent result store (when wired in). A disk
      // hit promotes the entry back into the memory tier so the next
      // request is a plain memory hit.
      std::optional<JobResult> FromStore;
      if (Config.Store) {
        // Store lookups are best-effort: a torn/corrupt entry or an I/O
        // error is a miss, never a job failure.
        try {
          FromStore = Config.Store->load(Key);
        } catch (...) {
        }
        if (FromStore)
          Metrics.DiskHits.fetch_add(1, std::memory_order_relaxed);
        else
          Metrics.DiskMisses.fetch_add(1, std::memory_order_relaxed);
      }
      if (FromStore) {
        R = std::move(*FromStore);
        R.Name = Spec.Name;
        try {
          Cache.insert(Key, R);
        } catch (...) {
        }
        R.CacheHit = true;
        R.DiskHit = true;
        R.VectorizeSeconds = 0;
        R.ValidateSeconds = 0;
      } else {
        R = executeWithResilience(Spec, Start, Key);
        if (R.succeeded()) {
          // Cache insertion is best-effort: an injected (or real) failure
          // here must not undo an otherwise-successful job.
          try {
            if (Config.Faults) {
              FaultContext Ctx(Config.Faults, Key ^ 0x9E3779B97F4A7C15ull);
              FaultScope Scope(&Ctx);
              maybeInject(FaultSite::CacheInsert);
            }
            Cache.insert(Key, R);
            if (Config.Store)
              Config.Store->store(Key, R);
          } catch (...) {
          }
        }
      }
    }
  } else {
    R = executeWithResilience(Spec, Start, Key);
  }

  R.QueueSeconds = QueueSeconds;
  R.TotalSeconds = secondsSince(SubmitTime, Clock::now());
  Metrics.TotalLatency.record(R.TotalSeconds);
  switch (R.Status) {
  case JobStatus::Succeeded:
    Metrics.JobsSucceeded.fetch_add(1, std::memory_order_relaxed);
    // Cost-model decision counters ride on the replayed VectorizeStats,
    // so cache hits count the same decisions the original run made.
    Metrics.NestsVectorized.fetch_add(R.Stats.LoopNestsImproved,
                                      std::memory_order_relaxed);
    Metrics.NestsKeptLoop.fetch_add(R.Stats.NestsKeptLoop,
                                    std::memory_order_relaxed);
    Metrics.VariantOverrides.fetch_add(R.Stats.VariantOverrides,
                                       std::memory_order_relaxed);
    break;
  case JobStatus::Failed:
    Metrics.JobsFailed.fetch_add(1, std::memory_order_relaxed);
    break;
  case JobStatus::TimedOut:
    Metrics.JobsTimedOut.fetch_add(1, std::memory_order_relaxed);
    break;
  case JobStatus::Cancelled:
    Metrics.JobsCancelled.fetch_add(1, std::memory_order_relaxed);
    break;
  case JobStatus::Degraded:
    Metrics.JobsDegraded.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  return R;
}

JobResult VectorizationService::executeWithResilience(const JobSpec &Spec,
                                                      Clock::time_point Start,
                                                      uint64_t JobSalt) {
  const ResilienceConfig &RC = Config.Resilience;

  // Breaker gate: when the service is drowning in infrastructure
  // failures, shed immediately instead of burning a worker on an attempt
  // that is overwhelmingly likely to fail too.
  if (!Breaker.allow()) {
    Metrics.BreakerShed.fetch_add(1, std::memory_order_relaxed);
    JobResult R;
    R.Name = Spec.Name;
    R.Class = ErrorClass::Resource;
    if (RC.DegradeOnExhaustion) {
      R.Status = JobStatus::Degraded;
      R.VectorizedSource = Spec.Source;
      R.Message = "degraded: circuit breaker open, load shed";
    } else {
      R.Status = JobStatus::Failed;
      R.Message = "circuit breaker open: load shed";
    }
    return R;
  }

  std::chrono::milliseconds DeadlineMs =
      Spec.Deadline.count() > 0 ? Spec.Deadline : Config.DefaultDeadline;
  std::optional<Clock::time_point> Deadline;
  if (DeadlineMs.count() > 0)
    Deadline = Start + DeadlineMs;

  unsigned MaxAttempts = std::max(RC.Retry.MaxAttempts, 1u);
  JobResult R;
  for (unsigned Attempt = 1;; ++Attempt) {
    {
      // Fresh fault schedule and memory budget per attempt. The salt
      // folds in the attempt number so a rule with Period > 1 doesn't
      // replay the identical decision sequence on every retry.
      std::optional<FaultContext> Faults;
      if (Config.Faults)
        Faults.emplace(Config.Faults, JobSalt + Attempt);
      FaultScope FS(Faults ? &*Faults : nullptr);
      ResourceGovernor Governor(RC.MaxJobBytes);
      GovernorScope GS(RC.MaxJobBytes != 0 ? &Governor : nullptr);
      R = executeUncached(Spec, Start);
    }
    R.Attempts = Attempt;

    bool Infra =
        R.Class == ErrorClass::Internal || R.Class == ErrorClass::Resource;
    if (!R.succeeded() && Infra)
      Breaker.recordFailure();
    else
      Breaker.recordSuccess();

    // Only presumed-transient internal faults are worth retrying: bad
    // input stays bad, a blown budget blows again, an expired deadline
    // only gets more expired.
    if (R.succeeded() || R.Class != ErrorClass::Internal ||
        Attempt >= MaxAttempts)
      break;
    if (CancelRequested.load(std::memory_order_relaxed))
      break;

    std::chrono::microseconds Delay = backoffDelay(RC.Retry, Attempt, JobSalt);
    if (Deadline) {
      auto Remaining = std::chrono::duration_cast<std::chrono::microseconds>(
          *Deadline - Clock::now());
      if (Remaining <= std::chrono::microseconds::zero())
        break; // No budget left to retry in.
      Delay = std::min(Delay, Remaining);
    }
    Metrics.Retries.fetch_add(1, std::memory_order_relaxed);
    if (Delay.count() > 0)
      std::this_thread::sleep_for(Delay);
  }

  // Graceful degradation: infrastructure trouble (not bad input, not a
  // missed deadline) falls back to shipping the original source verbatim
  // with a structured diagnostic, so the batch as a whole still lands.
  if (!R.succeeded() && RC.DegradeOnExhaustion &&
      (R.Class == ErrorClass::Internal || R.Class == ErrorClass::Resource)) {
    R.Status = JobStatus::Degraded;
    R.VectorizedSource = Spec.Source;
    R.Message = "degraded: " + R.Message;
  }
  return R;
}

JobResult VectorizationService::executeUncached(const JobSpec &Spec,
                                                Clock::time_point Start) {
  JobResult R;
  R.Name = Spec.Name;

  std::chrono::milliseconds DeadlineMs =
      Spec.Deadline.count() > 0 ? Spec.Deadline : Config.DefaultDeadline;
  RunLimits Limits;
  if (DeadlineMs.count() > 0)
    Limits.Deadline = Start + DeadlineMs;
  Limits.Cancel = &CancelRequested;
  Limits.MaxSteps = Spec.MaxSteps;
  Limits.CheckAnnotations = Spec.CheckAnnotations;
  Limits.Engine = Config.Engine;
  Limits.Code = Code.get();

  // One malformed (or downright hostile) script must never take the
  // worker — or the batch — down with it: every failure mode folds into
  // the job's result, tagged with the ErrorClass the retry/degradation
  // machinery keys off.
  try {
    maybeInject(FaultSite::WorkerPickup);
    Clock::time_point T0 = Clock::now();
    PipelineResult P = vectorizeSource(Spec.Source, Spec.Opts, DB,
                                       Config.NestCacheCapacity > 0 ? &NCache
                                                                    : nullptr);
    R.VectorizeSeconds = secondsSince(T0, Clock::now());
    Metrics.VectorizeLatency.record(R.VectorizeSeconds);
    if (!P.succeeded()) {
      R.Status = JobStatus::Failed;
      R.Class = ErrorClass::Input;
      R.Message = P.Diags.str(Spec.Name.empty() ? "<input>" : Spec.Name);
      return R;
    }
    R.Stats = P.Stats;

    if ((Limits.Deadline && Clock::now() >= *Limits.Deadline) ||
        faultDeadlineForced()) {
      R.Status = JobStatus::TimedOut;
      R.Class = ErrorClass::Deadline;
      R.Message = "deadline exceeded during vectorization";
      return R;
    }
    if (CancelRequested.load(std::memory_order_relaxed)) {
      R.Status = JobStatus::Cancelled;
      R.Message = "batch cancelled";
      return R;
    }

    if (Spec.Validate) {
      Clock::time_point T1 = Clock::now();
      DiffOutcome Diff = diffRunLimited(Spec.Source, P.VectorizedSource,
                                        Limits, Spec.ValidateTol);
      R.ValidateSeconds = secondsSince(T1, Clock::now());
      Metrics.ValidateLatency.record(R.ValidateSeconds);
      switch (Diff.Status) {
      case DiffStatus::Match:
        break;
      case DiffStatus::TimedOut:
        R.Status = JobStatus::TimedOut;
        R.Class = ErrorClass::Deadline;
        R.Message = "validation timed out: " + Diff.Message;
        return R;
      case DiffStatus::Cancelled:
        R.Status = JobStatus::Cancelled;
        R.Message = "validation cancelled: " + Diff.Message;
        return R;
      case DiffStatus::Mismatch:
      case DiffStatus::Error:
        R.Status = JobStatus::Failed;
        R.Class = ErrorClass::Input;
        R.Message = "validation failed: " + Diff.Message;
        return R;
      }
    }

    R.Status = JobStatus::Succeeded;
    R.VectorizedSource = std::move(P.VectorizedSource);
  } catch (const ResourceExhausted &E) {
    R.Status = JobStatus::Failed;
    R.Class = ErrorClass::Resource;
    R.Message = E.what();
  } catch (const std::exception &E) {
    R.Status = JobStatus::Failed;
    R.Class = ErrorClass::Internal;
    R.Message = std::string("internal error: ") + E.what();
  } catch (...) {
    R.Status = JobStatus::Failed;
    R.Class = ErrorClass::Internal;
    R.Message = "internal error: unknown exception";
  }
  return R;
}
