//===- VectorizationService.cpp - Concurrent batch vectorization ------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/VectorizationService.h"

#include "driver/Pipeline.h"

using namespace mvec;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start, Clock::time_point End) {
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

const char *mvec::jobStatusName(JobStatus Status) {
  switch (Status) {
  case JobStatus::Succeeded:
    return "succeeded";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::TimedOut:
    return "timed_out";
  case JobStatus::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

VectorizationService::VectorizationService(ServiceConfig Config)
    : Config(Config), Cache(Config.CacheCapacity),
      NCache(Config.NestCacheCapacity) {
  if (Config.DB) {
    DB = Config.DB;
  } else {
    registerBuiltinPatterns(OwnedDB);
    OwnedDB.freeze();
    DB = &OwnedDB;
  }
  Pool = std::make_unique<ThreadPool>(Config.Workers, Config.QueueCapacity);
}

VectorizationService::~VectorizationService() {
  // Runs everything already queued (fulfilling every future), then joins.
  Pool.reset();
}

std::future<JobResult> VectorizationService::submit(JobSpec Spec) {
  Metrics.JobsSubmitted.fetch_add(1, std::memory_order_relaxed);
  Clock::time_point SubmitTime = Clock::now();
  auto Promise = std::make_shared<std::promise<JobResult>>();
  std::future<JobResult> Future = Promise->get_future();
  std::string Name = Spec.Name;
  bool Accepted = Pool->submit(
      [this, Promise, Spec = std::move(Spec), SubmitTime]() mutable {
        Promise->set_value(processJob(Spec, SubmitTime));
      });
  Metrics.noteQueueDepth(Pool->queueHighWater());
  if (!Accepted) {
    JobResult R;
    R.Name = std::move(Name);
    R.Status = JobStatus::Cancelled;
    R.Message = "service is shutting down";
    Metrics.JobsCancelled.fetch_add(1, std::memory_order_relaxed);
    Promise->set_value(std::move(R));
  }
  return Future;
}

std::vector<JobResult> VectorizationService::runBatch(
    std::vector<JobSpec> Specs) {
  std::vector<std::future<JobResult>> Futures;
  Futures.reserve(Specs.size());
  for (JobSpec &Spec : Specs)
    Futures.push_back(submit(std::move(Spec)));
  std::vector<JobResult> Results;
  Results.reserve(Futures.size());
  for (std::future<JobResult> &F : Futures)
    Results.push_back(F.get());
  return Results;
}

void VectorizationService::drain() { Pool->drain(); }

void VectorizationService::cancelAll() {
  CancelRequested.store(true, std::memory_order_relaxed);
}

void VectorizationService::resetCancellation() {
  CancelRequested.store(false, std::memory_order_relaxed);
}

JobResult VectorizationService::processJob(const JobSpec &Spec,
                                           Clock::time_point SubmitTime) {
  Clock::time_point Start = Clock::now();
  double QueueSeconds = secondsSince(SubmitTime, Start);
  Metrics.QueueLatency.record(QueueSeconds);

  JobResult R;
  if (CancelRequested.load(std::memory_order_relaxed)) {
    R.Name = Spec.Name;
    R.Status = JobStatus::Cancelled;
    R.Message = "batch cancelled before execution";
  } else if (Config.CacheCapacity > 0) {
    uint64_t Key = cacheKeyFor(Spec);
    if (std::optional<JobResult> Hit = Cache.lookup(Key)) {
      Metrics.CacheHits.fetch_add(1, std::memory_order_relaxed);
      R = std::move(*Hit);
      R.Name = Spec.Name;
      R.CacheHit = true;
      // Stage timings describe *this* serving, not the original run.
      R.VectorizeSeconds = 0;
      R.ValidateSeconds = 0;
    } else {
      Metrics.CacheMisses.fetch_add(1, std::memory_order_relaxed);
      R = executeUncached(Spec, Start);
      if (R.succeeded())
        Cache.insert(Key, R);
    }
  } else {
    R = executeUncached(Spec, Start);
  }

  R.QueueSeconds = QueueSeconds;
  R.TotalSeconds = secondsSince(SubmitTime, Clock::now());
  Metrics.TotalLatency.record(R.TotalSeconds);
  switch (R.Status) {
  case JobStatus::Succeeded:
    Metrics.JobsSucceeded.fetch_add(1, std::memory_order_relaxed);
    break;
  case JobStatus::Failed:
    Metrics.JobsFailed.fetch_add(1, std::memory_order_relaxed);
    break;
  case JobStatus::TimedOut:
    Metrics.JobsTimedOut.fetch_add(1, std::memory_order_relaxed);
    break;
  case JobStatus::Cancelled:
    Metrics.JobsCancelled.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  return R;
}

JobResult VectorizationService::executeUncached(const JobSpec &Spec,
                                                Clock::time_point Start) {
  JobResult R;
  R.Name = Spec.Name;

  std::chrono::milliseconds DeadlineMs =
      Spec.Deadline.count() > 0 ? Spec.Deadline : Config.DefaultDeadline;
  RunLimits Limits;
  if (DeadlineMs.count() > 0)
    Limits.Deadline = Start + DeadlineMs;
  Limits.Cancel = &CancelRequested;
  Limits.MaxSteps = Spec.MaxSteps;
  Limits.CheckAnnotations = Spec.CheckAnnotations;

  // One malformed (or downright hostile) script must never take the
  // worker — or the batch — down with it: every failure mode folds into
  // the job's result.
  try {
    Clock::time_point T0 = Clock::now();
    PipelineResult P = vectorizeSource(Spec.Source, Spec.Opts, DB,
                                       Config.NestCacheCapacity > 0 ? &NCache
                                                                    : nullptr);
    R.VectorizeSeconds = secondsSince(T0, Clock::now());
    Metrics.VectorizeLatency.record(R.VectorizeSeconds);
    if (!P.succeeded()) {
      R.Status = JobStatus::Failed;
      R.Message = P.Diags.str(Spec.Name.empty() ? "<input>" : Spec.Name);
      return R;
    }
    R.Stats = P.Stats;

    if (Limits.Deadline && Clock::now() >= *Limits.Deadline) {
      R.Status = JobStatus::TimedOut;
      R.Message = "deadline exceeded during vectorization";
      return R;
    }
    if (CancelRequested.load(std::memory_order_relaxed)) {
      R.Status = JobStatus::Cancelled;
      R.Message = "batch cancelled";
      return R;
    }

    if (Spec.Validate) {
      Clock::time_point T1 = Clock::now();
      DiffOutcome Diff = diffRunLimited(Spec.Source, P.VectorizedSource,
                                        Limits, Spec.ValidateTol);
      R.ValidateSeconds = secondsSince(T1, Clock::now());
      Metrics.ValidateLatency.record(R.ValidateSeconds);
      switch (Diff.Status) {
      case DiffStatus::Match:
        break;
      case DiffStatus::TimedOut:
        R.Status = JobStatus::TimedOut;
        R.Message = "validation timed out: " + Diff.Message;
        return R;
      case DiffStatus::Cancelled:
        R.Status = JobStatus::Cancelled;
        R.Message = "validation cancelled: " + Diff.Message;
        return R;
      case DiffStatus::Mismatch:
      case DiffStatus::Error:
        R.Status = JobStatus::Failed;
        R.Message = "validation failed: " + Diff.Message;
        return R;
      }
    }

    R.Status = JobStatus::Succeeded;
    R.VectorizedSource = std::move(P.VectorizedSource);
  } catch (const std::exception &E) {
    R.Status = JobStatus::Failed;
    R.Message = std::string("internal error: ") + E.what();
  } catch (...) {
    R.Status = JobStatus::Failed;
    R.Message = "internal error: unknown exception";
  }
  return R;
}
