//===- Value.cpp - MATLAB runtime value -----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "support/StringExtras.h"

#include <cmath>

using namespace mvec;

Value Value::transposed() const {
  Value Result(NumCols, NumRows);
  for (size_t C = 0; C != NumCols; ++C)
    for (size_t R = 0; R != NumRows; ++R)
      Result.at(C, R) = at(R, C);
  Result.setLogical(isLogical());
  return Result;
}

void Value::growTo(size_t Rows, size_t Cols) {
  if (Rows <= NumRows && Cols <= NumCols)
    return;
  size_t NewRows = Rows > NumRows ? Rows : NumRows;
  size_t NewCols = Cols > NumCols ? Cols : NumCols;
  std::vector<double> NewData(NewRows * NewCols, 0.0);
  for (size_t C = 0; C != NumCols; ++C)
    for (size_t R = 0; R != NumRows; ++R)
      NewData[C * NewRows + R] = Data[C * NumRows + R];
  NumRows = NewRows;
  NumCols = NewCols;
  Data = std::move(NewData);
}

bool Value::equals(const Value &Other, double Tol) const {
  if (NumRows != Other.NumRows || NumCols != Other.NumCols)
    return false;
  for (size_t I = 0, E = Data.size(); I != E; ++I) {
    double A = Data[I], B = Other.Data[I];
    if (std::isnan(A) && std::isnan(B))
      continue;
    if (Tol == 0.0) {
      if (A != B)
        return false;
    } else {
      double Scale = std::fmax(1.0, std::fmax(std::fabs(A), std::fabs(B)));
      if (std::fabs(A - B) > Tol * Scale)
        return false;
    }
  }
  return true;
}

bool Value::isTrue() const {
  if (isEmpty())
    return false;
  for (double D : Data)
    if (D == 0.0)
      return false;
  return true;
}

std::string Value::str() const {
  if (isEmpty())
    return "[]";
  if (isScalar())
    return formatMatlabNumber(Data[0]);
  std::string Out = "[" + std::to_string(NumRows) + "x" +
                    std::to_string(NumCols) + "]";
  if (numel() <= 16) {
    Out += " [";
    for (size_t R = 0; R != NumRows; ++R) {
      if (R != 0)
        Out += "; ";
      for (size_t C = 0; C != NumCols; ++C) {
        if (C != 0)
          Out += ' ';
        Out += formatMatlabNumber(at(R, C));
      }
    }
    Out += ']';
  }
  return Out;
}
