//===- Value.cpp - MATLAB runtime value -----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <cmath>

using namespace mvec;

Value Value::transposed() const {
  Value Result(NumCols, NumRows);
  const double *Src = raw();
  double *Dst = Result.mutableRaw();
  for (size_t C = 0; C != NumCols; ++C)
    for (size_t R = 0; R != NumRows; ++R)
      Dst[R * NumCols + C] = Src[C * NumRows + R];
  Result.setLogical(isLogical());
  return Result;
}

void Value::growTo(size_t Rows, size_t Cols) {
  if (Rows <= NumRows && Cols <= NumCols)
    return;
  size_t NewRows = std::max(Rows, NumRows);
  size_t NewCols = std::max(Cols, NumCols);
  size_t OldN = numel();
  size_t NewN = NewRows * NewCols;
  // An element's linear position C * NumRows + R is unchanged by growth
  // when the row count stays fixed or all data lives in column zero, so
  // those cases (vector append, matrix column append) extend in place.
  bool LayoutPreserved = NewRows == NumRows || NumCols <= 1 || OldN == 0;
  if (NewN <= 1 && !Heap) {
    // 0x0 -> 1x1 and friends: stays inline.
  } else if (LayoutPreserved) {
    if (!Heap) {
      chargeMemory(NewN * sizeof(double));
      Heap = std::make_shared<PayloadBuffer>();
      Heap->resize(NewN, 0.0);
      if (OldN == 1)
        (*Heap)[0] = InlineVal;
    } else if (Heap.use_count() > 1) {
      chargeMemory(NewN * sizeof(double));
      auto NewBuf = std::make_shared<PayloadBuffer>();
      NewBuf->reserve(NewN);
      NewBuf->assign(Heap->begin(), Heap->end());
      NewBuf->resize(NewN, 0.0);
      Heap = std::move(NewBuf);
    } else {
      // vector::resize grows capacity geometrically, which is what makes
      // A(i) = ... append loops amortized linear. Charge the delta, not
      // the total: cumulative deltas sum to the final footprint without
      // turning an append loop into a quadratic charge.
      chargeMemory((NewN - OldN) * sizeof(double));
      Heap->resize(NewN, 0.0);
    }
  } else {
    chargeMemory(NewN * sizeof(double));
    auto NewBuf = std::make_shared<PayloadBuffer>(NewN, 0.0);
    const double *Src = raw();
    double *Dst = NewBuf->data();
    for (size_t C = 0; C != NumCols; ++C)
      for (size_t R = 0; R != NumRows; ++R)
        Dst[C * NewRows + R] = Src[C * NumRows + R];
    Heap = std::move(NewBuf);
  }
  NumRows = NewRows;
  NumCols = NewCols;
}

void Value::reserveHint(size_t Numel) {
  if (Numel <= 1)
    return;
  if (Heap) {
    if (Heap.use_count() == 1 && Heap->capacity() < Numel) {
      chargeMemory(Numel * sizeof(double));
      Heap->reserve(Numel);
    }
    return;
  }
  size_t N = numel(); // 0 or 1
  chargeMemory(Numel * sizeof(double));
  Heap = std::make_shared<PayloadBuffer>();
  Heap->reserve(Numel);
  Heap->resize(N);
  if (N == 1)
    (*Heap)[0] = InlineVal;
}

bool Value::equals(const Value &Other, double Tol) const {
  if (NumRows != Other.NumRows || NumCols != Other.NumCols)
    return false;
  const double *AD = raw();
  const double *BD = Other.raw();
  for (size_t I = 0, E = numel(); I != E; ++I) {
    double A = AD[I], B = BD[I];
    if (std::isnan(A) && std::isnan(B))
      continue;
    if (Tol == 0.0) {
      if (A != B)
        return false;
    } else {
      double Scale = std::fmax(1.0, std::fmax(std::fabs(A), std::fabs(B)));
      if (std::fabs(A - B) > Tol * Scale)
        return false;
    }
  }
  return true;
}

bool Value::isTrue() const {
  if (isEmpty())
    return false;
  for (double D : *this)
    if (D == 0.0)
      return false;
  return true;
}

std::string Value::str() const {
  if (isEmpty())
    return "[]";
  if (isScalar())
    return formatMatlabNumber(raw()[0]);
  std::string Out = "[" + std::to_string(NumRows) + "x" +
                    std::to_string(NumCols) + "]";
  if (numel() <= 16) {
    Out += " [";
    for (size_t R = 0; R != NumRows; ++R) {
      if (R != 0)
        Out += "; ";
      for (size_t C = 0; C != NumCols; ++C) {
        if (C != 0)
          Out += ' ';
        Out += formatMatlabNumber(at(R, C));
      }
    }
    Out += ']';
  }
  return Out;
}
