//===- MatrixOps.h - Bulk matrix kernels ------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tight C++ kernels behind MATLAB's built-in array operations. These
/// are the "fast path" of the simulated MATLAB environment: vectorized
/// statements execute through these, while interpreted loops pay per-node
/// dispatch cost — reproducing the performance profile the paper measures.
///
/// Following MATLAB 7 semantics (the paper's version), elementwise binary
/// operations require equal shapes or a scalar operand; there is no implicit
/// row/column broadcasting (that is what repmat is for).
///
/// All functions report problems through an OpError out-parameter instead of
/// throwing.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_MATRIXOPS_H
#define MVEC_INTERP_MATRIXOPS_H

#include "frontend/AST.h"
#include "interp/Value.h"

#include <string>

namespace mvec {

/// Error slot for the kernels. Empty message means success.
struct OpError {
  std::string Message;

  bool failed() const { return !Message.empty(); }
  void set(std::string Msg) {
    if (Message.empty())
      Message = std::move(Msg);
  }
};

/// Elementwise binary operation with MATLAB scalar expansion. Handles the
/// pointwise arithmetic operators, comparisons and logical &,|.
Value elementwiseBinary(BinaryOp Op, const Value &A, const Value &B,
                        OpError &Err);

/// Full MATLAB '*': scalar*X, X*scalar or matrix product with inner-dim
/// check.
Value mulOp(const Value &A, const Value &B, OpError &Err);

/// Full MATLAB '/': X/scalar only (general linear solves are out of scope).
Value divOp(const Value &A, const Value &B, OpError &Err);

/// Full MATLAB '^': scalar^scalar or square-matrix^nonnegative-integer.
Value powOp(const Value &A, const Value &B, OpError &Err);

/// Plain matrix product (shapes already conformant).
Value matMul(const Value &A, const Value &B, OpError &Err);

Value unaryMinus(const Value &A);
Value unaryNot(const Value &A);

/// Builds the row vector start:step:stop (empty when the range is empty).
Value makeRange(double Start, double Step, double Stop, OpError &Err);

/// Horizontal / vertical concatenation for matrix literals.
Value horzcat(const Value &A, const Value &B, OpError &Err);
Value vertcat(const Value &A, const Value &B, OpError &Err);

/// sum along dimension \p Dim (1 = down columns, 2 = across rows).
Value sumAlong(const Value &A, unsigned Dim);
/// MATLAB sum(X): columns sums for matrices, total for vectors.
Value sumDefault(const Value &A);
Value cumsumAlong(const Value &A, unsigned Dim);
Value cumsumDefault(const Value &A);
Value prodDefault(const Value &A);

/// repmat(X, R, C).
Value repmat(const Value &A, size_t R, size_t C);

/// MATLAB hist(x, centers): bin counts with edges midway between centers.
Value histCounts(const Value &X, const Value &Centers, OpError &Err);

} // namespace mvec

#endif // MVEC_INTERP_MATRIXOPS_H
