//===- MatrixOps.h - Bulk matrix kernels ------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tight C++ kernels behind MATLAB's built-in array operations. These
/// are the "fast path" of the simulated MATLAB environment: vectorized
/// statements execute through these, while interpreted loops pay per-node
/// dispatch cost — reproducing the performance profile the paper measures.
///
/// Following MATLAB 7 semantics (the paper's version), elementwise binary
/// operations require equal shapes or a scalar operand; there is no implicit
/// row/column broadcasting (that is what repmat is for).
///
/// All functions report problems through an OpError out-parameter instead of
/// throwing. Kernels optionally take an OpWorkspace — a pool of payload
/// buffers that lets expression chains reuse destination storage instead of
/// allocating a temporary per node; passing null preserves the old
/// allocate-per-result behavior.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_MATRIXOPS_H
#define MVEC_INTERP_MATRIXOPS_H

#include "frontend/AST.h"
#include "interp/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace mvec {

/// Error slot for the kernels. Empty message means success.
struct OpError {
  std::string Message;

  bool failed() const { return !Message.empty(); }
  void set(std::string Msg) {
    if (Message.empty())
      Message = std::move(Msg);
  }
};

/// A small pool of payload buffers recycled between kernel invocations.
/// One workspace belongs to one interpreter (one thread); buffers are only
/// pooled while exclusively owned, so COW copies handed to other threads
/// are never recycled underneath them.
class OpWorkspace {
public:
  /// Cooperative-interrupt hook polled by long-running kernels (matrix
  /// product, fused multiply-add) between bounded chunks of work, so a
  /// deadline or cancellation lands within a chunk's worth of arithmetic
  /// instead of after the whole kernel. Returns true to abort the kernel
  /// early; the partially written destination is discarded by the failing
  /// caller.
  using PollFn = bool (*)(void *Ctx);
  void setPollHook(PollFn Fn, void *Ctx) {
    Hook = Fn;
    HookCtx = Ctx;
  }
  bool poll() { return Hook && Hook(HookCtx); }

  /// A buffer of exactly \p N elements with unspecified contents (callers
  /// overwrite every element).
  std::shared_ptr<PayloadBuffer> acquire(size_t N);

  /// Like acquire, but zero-filled (for accumulation kernels).
  std::shared_ptr<PayloadBuffer> acquireZeroed(size_t N);

  /// Takes a dying value's payload back into the pool when it is heap
  /// allocated and exclusively owned; otherwise does nothing.
  void recycle(Value &&V);

  /// Returns a raw buffer (from acquire) to the pool.
  void recycleBuffer(std::shared_ptr<PayloadBuffer> Buf);

  void clear() { Free.clear(); }

private:
  static constexpr size_t MaxPooled = 8;
  std::vector<std::shared_ptr<PayloadBuffer>> Free;
  PollFn Hook = nullptr;
  void *HookCtx = nullptr;
};

/// Elementwise binary operation with MATLAB scalar expansion. Handles the
/// pointwise arithmetic operators, comparisons and logical &,|.
Value elementwiseBinary(BinaryOp Op, const Value &A, const Value &B,
                        OpError &Err, OpWorkspace *WS = nullptr);

/// True when (A .* B) +/- C is computable in one fused pass: each step
/// conforms under MATLAB scalar expansion. When false, callers must fall
/// back to the two-step path (which also reproduces the exact error).
bool fusableMulAddShapes(const Value &A, const Value &B, const Value &C);

/// Fused elementwise multiply-add: (A .* B) op C when \p ProductOnLeft,
/// else C op (A .* B), for op in {+, -}. No intermediate product value is
/// materialized. Requires fusableMulAddShapes(A, B, C).
Value fusedMulAdd(const Value &A, const Value &B, const Value &C,
                  bool Subtract, bool ProductOnLeft, OpWorkspace *WS = nullptr);

/// Full MATLAB '*': scalar*X, X*scalar or matrix product with inner-dim
/// check.
Value mulOp(const Value &A, const Value &B, OpError &Err,
            OpWorkspace *WS = nullptr);

/// Full MATLAB '/': X/scalar only (general linear solves are out of scope).
Value divOp(const Value &A, const Value &B, OpError &Err,
            OpWorkspace *WS = nullptr);

/// Full MATLAB '^': scalar^scalar or square-matrix^nonnegative-integer.
Value powOp(const Value &A, const Value &B, OpError &Err);

/// Plain matrix product (shapes already conformant). Blocked over the
/// inner dimension; accumulation order per output element is unchanged.
Value matMul(const Value &A, const Value &B, OpError &Err,
             OpWorkspace *WS = nullptr);

/// A * B' without materializing the transpose as a Value: B is packed
/// transposed into workspace scratch and fed to the blocked kernel.
/// Requires A.cols() == B.cols(); result is A.rows() x B.rows().
Value matMulTransB(const Value &A, const Value &B, OpError &Err,
                   OpWorkspace *WS = nullptr);

Value unaryMinus(const Value &A, OpWorkspace *WS = nullptr);
Value unaryNot(const Value &A, OpWorkspace *WS = nullptr);

/// Builds the row vector start:step:stop (empty when the range is empty).
Value makeRange(double Start, double Step, double Stop, OpError &Err);

/// Horizontal / vertical concatenation for matrix literals.
Value horzcat(const Value &A, const Value &B, OpError &Err);
Value vertcat(const Value &A, const Value &B, OpError &Err);

/// sum along dimension \p Dim (1 = down columns, 2 = across rows).
Value sumAlong(const Value &A, unsigned Dim);
/// MATLAB sum(X): columns sums for matrices, total for vectors.
Value sumDefault(const Value &A);
Value cumsumAlong(const Value &A, unsigned Dim);
Value cumsumDefault(const Value &A);
Value prodDefault(const Value &A);

/// repmat(X, R, C).
Value repmat(const Value &A, size_t R, size_t C);

/// MATLAB hist(x, centers): bin counts with edges midway between centers.
Value histCounts(const Value &X, const Value &Centers, OpError &Err);

} // namespace mvec

#endif // MVEC_INTERP_MATRIXOPS_H
