//===- Workspace.h - Slot-resolved variable store ---------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's variable store. Names are interned into dense slot
/// indices once (during the interpreter's per-program pre-pass), after which
/// every read and write is an O(1) vector access instead of a string-keyed
/// map lookup. The name-keyed entry points remain for callers that hold
/// only a name (tests, the service API, ephemeral rewritten AST nodes).
///
/// Invariant: an undefined slot holds an empty Value, so "define on first
/// indexed write" sees the same [] starting point the old map-based store
/// produced with operator[].
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_WORKSPACE_H
#define MVEC_INTERP_WORKSPACE_H

#include "interp/Value.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace mvec {

class Workspace {
public:
  /// Returns the slot for \p Name, creating one on first sight. Interning
  /// never invalidates other slots' indices.
  unsigned intern(const std::string &Name) {
    auto [It, Inserted] =
        NameToSlot.emplace(Name, static_cast<unsigned>(Names.size()));
    if (Inserted) {
      Names.push_back(Name);
      Slots.emplace_back();
      DefinedFlags.push_back(0);
    }
    return It->second;
  }

  /// Slot for \p Name, or -1 when the name was never interned.
  int lookup(const std::string &Name) const {
    auto It = NameToSlot.find(Name);
    return It == NameToSlot.end() ? -1 : static_cast<int>(It->second);
  }

  size_t numSlots() const { return Slots.size(); }
  const std::string &nameOf(unsigned Slot) const { return Names[Slot]; }

  bool isDefined(unsigned Slot) const { return DefinedFlags[Slot] != 0; }

  const Value &slotValue(unsigned Slot) const { return Slots[Slot]; }
  Value &slotValue(unsigned Slot) { return Slots[Slot]; }

  void define(unsigned Slot, Value V) {
    Slots[Slot] = std::move(V);
    DefinedFlags[Slot] = 1;
  }

  /// Marks \p Slot defined and returns its value for in-place mutation.
  /// A previously undefined slot starts as [] (indexed-write creation).
  Value &defineRef(unsigned Slot) {
    DefinedFlags[Slot] = 1;
    return Slots[Slot];
  }

  /// Null when undefined.
  const Value *get(const std::string &Name) const {
    auto It = NameToSlot.find(Name);
    if (It == NameToSlot.end() || !DefinedFlags[It->second])
      return nullptr;
    return &Slots[It->second];
  }

  void set(const std::string &Name, Value V) {
    define(intern(Name), std::move(V));
  }

  /// Undefines everything (slot numbering is preserved: cached slot
  /// indices held by a prepared program stay valid).
  void clear() {
    for (size_t I = 0, E = Slots.size(); I != E; ++I) {
      Slots[I] = Value();
      DefinedFlags[I] = 0;
    }
  }

  /// Name-keyed view of the defined variables. Values are COW copies, so
  /// the snapshot is cheap and isolated from later mutations.
  std::map<std::string, Value> snapshot() const {
    std::map<std::string, Value> Out;
    for (size_t I = 0, E = Slots.size(); I != E; ++I)
      if (DefinedFlags[I])
        Out.emplace(Names[I], Slots[I]);
    return Out;
  }

private:
  std::unordered_map<std::string, unsigned> NameToSlot;
  std::vector<std::string> Names;
  std::vector<Value> Slots;
  std::vector<uint8_t> DefinedFlags;
};

} // namespace mvec

#endif // MVEC_INTERP_WORKSPACE_H
