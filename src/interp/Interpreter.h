//===- Interpreter.h - MATLAB interpreter -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for the MATLAB subset. This is the simulated
/// MATLAB environment the benchmarks run on: loop iterations pay per-node
/// dispatch and environment-lookup cost, while array built-ins execute as
/// tight kernels (MatrixOps) — the performance profile the paper's
/// measurements rely on.
///
/// Runtime errors do not throw; they put the interpreter into a failed
/// state carrying a message and location (checked via failed()).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_INTERPRETER_H
#define MVEC_INTERP_INTERPRETER_H

#include "frontend/AST.h"
#include "interp/MatrixOps.h"
#include "interp/Value.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace mvec {

class Interpreter {
public:
  Interpreter() = default;

  /// Executes a whole program. Returns false when a runtime error occurred
  /// (see errorMessage()). The workspace persists across run() calls.
  bool run(const Program &P);

  /// Evaluates a single expression in the current workspace.
  Value eval(const Expr &E);

  // Workspace access.
  void setVariable(const std::string &Name, Value V) {
    Vars[Name] = std::move(V);
  }
  /// Null when undefined.
  const Value *getVariable(const std::string &Name) const {
    auto It = Vars.find(Name);
    return It == Vars.end() ? nullptr : &It->second;
  }
  const std::map<std::string, Value> &workspace() const { return Vars; }
  void clearWorkspace() { Vars.clear(); }

  // Error state.
  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrorMsg; }
  SourceLoc errorLoc() const { return ErrorLoc; }
  void clearError() {
    Failed = false;
    ErrorMsg.clear();
    Interrupt = InterruptKind::None;
  }

  /// Text printed by disp/fprintf.
  const std::string &output() const { return Output; }
  void appendOutput(const std::string &Text) { Output += Text; }
  void clearOutput() { Output.clear(); }

  /// Aborts execution after this many statement executions (0 = unlimited).
  /// Useful to bound property tests against accidental infinite loops.
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }
  uint64_t stepsExecuted() const { return Steps; }

  /// Why execution was aborted early, if it was. StepLimit/Deadline/
  /// Cancelled interrupts also put the interpreter into the failed state,
  /// so failed() callers keep working unchanged; interruptKind() lets a
  /// driver (e.g. the vectorization service) distinguish "the program is
  /// wrong" from "the program was cut off".
  enum class InterruptKind { None, StepLimit, Deadline, Cancelled };
  InterruptKind interruptKind() const { return Interrupt; }

  /// Aborts execution once the steady clock passes \p Deadline. The check
  /// runs every few statements and inside pause(), so a runaway loop stops
  /// within microseconds of the deadline, not at the next quiescent point.
  void setDeadline(std::chrono::steady_clock::time_point Deadline) {
    DeadlineTp = Deadline;
  }
  /// Aborts execution soon after \p Flag becomes true. The flag is owned
  /// by the caller (typically shared by every job of a cancelled batch)
  /// and must outlive the run.
  void setCancelFlag(const std::atomic<bool> *Flag) { CancelFlag = Flag; }

  /// Polls the step limit, deadline, and cancel flag; on expiry enters the
  /// failed state (recording \p Loc) and returns true. Builtins with
  /// internal waits (pause) call this between slices.
  bool checkInterrupt(SourceLoc Loc);

  /// Deterministic PRNG used by the rand builtin.
  void seedRandom(uint64_t Seed) { RandState = Seed ? Seed : 1; }
  double nextRandom();

  /// Reports a runtime error (first error wins).
  void fail(SourceLoc Loc, std::string Message);

  /// Declares that a variable's row/column extent must never exceed one
  /// (pair = {rows capped, cols capped}). Checked after every assignment
  /// to that name; a violation is a runtime error. Differential
  /// validation uses this to reject inputs whose %! annotations declare
  /// an axis as 1 while the program materializes something wider — the
  /// input lied to the shape analysis, so divergence is not a
  /// vectorizer defect.
  void setShapeCaps(std::map<std::string, std::pair<bool, bool>> Caps) {
    ShapeCaps = std::move(Caps);
  }

private:
  enum class Flow { Normal, Break, Continue, Return };

  Flow execBody(const std::vector<StmtPtr> &Body);
  Flow execStmt(const Stmt &S);
  Flow execFor(const ForStmt &S);
  Flow execWhile(const WhileStmt &S);
  Flow execIf(const IfStmt &S);
  void execAssign(const AssignStmt &S);

  Value evalBinary(const BinaryExpr &E);
  Value evalIndexOrCall(const IndexExpr &E);
  Value evalMatrixLiteral(const MatrixExpr &E);

  /// Evaluates subscript argument \p Arg for a dimension of extent
  /// \p Extent ('end' resolves to Extent; ':' yields 1..Extent).
  Value evalSubscript(const Expr &Arg, size_t Extent);

  /// Converts \p Idx to validated 0-based indices against \p Extent
  /// (growing writes pass Extent = SIZE_MAX to skip the upper check).
  bool toIndices(const Value &Idx, size_t Extent, std::vector<size_t> &Out,
                 SourceLoc Loc);

  Value readIndexed(const Value &Base, const IndexExpr &E);
  void writeIndexed(Value &Target, const IndexExpr &LHS, const Value &RHS);

  /// Enforces a registered shape cap after an assignment to \p Name.
  void checkShapeCap(const std::string &Name, SourceLoc Loc);

  std::map<std::string, Value> Vars;
  std::map<std::string, std::pair<bool, bool>> ShapeCaps;
  std::string Output;
  bool Failed = false;
  std::string ErrorMsg;
  SourceLoc ErrorLoc;
  uint64_t StepLimit = 0;
  uint64_t Steps = 0;
  std::optional<std::chrono::steady_clock::time_point> DeadlineTp;
  const std::atomic<bool> *CancelFlag = nullptr;
  InterruptKind Interrupt = InterruptKind::None;
  uint64_t RandState = 0x9E3779B97F4A7C15ull;
};

/// Compares two workspaces for semantic equality within \p Tol. Returns an
/// empty string when equal, else a description of the first difference.
/// Used by the differential tests: original vs. vectorized program state.
std::string compareWorkspaces(const Interpreter &A, const Interpreter &B,
                              double Tol = 1e-9);

} // namespace mvec

#endif // MVEC_INTERP_INTERPRETER_H
