//===- Interpreter.h - MATLAB interpreter -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for the MATLAB subset. This is the simulated
/// MATLAB environment the benchmarks run on: loop iterations pay per-node
/// dispatch cost, while array built-ins execute as tight kernels
/// (MatrixOps) — the performance profile the paper's measurements rely on.
///
/// run() begins with a pre-pass over the program that interns every
/// variable name into a dense workspace slot and resolves builtin names to
/// table ids, keyed by AST node. The hot evaluation loop then works on
/// integer slots and ids; only AST nodes materialized after the pre-pass
/// (the 'end'-keyword rewrites) fall back to name-based resolution.
///
/// Runtime errors do not throw; they put the interpreter into a failed
/// state carrying a message and location (checked via failed()).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_INTERPRETER_H
#define MVEC_INTERP_INTERPRETER_H

#include "frontend/AST.h"
#include "interp/Builtins.h"
#include "interp/MatrixOps.h"
#include "interp/Value.h"
#include "interp/Workspace.h"
#include "resilience/FaultInjection.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mvec {

class Interpreter {
public:
  Interpreter() = default;

  /// Executes a whole program. Returns false when a runtime error occurred
  /// (see errorMessage()). The workspace persists across run() calls.
  bool run(const Program &P);

  /// Evaluates a single expression in the current workspace. Guards the
  /// recursion depth: evaluating a programmatically built tree deeper than
  /// the evaluator limit is a runtime error, not a stack overflow.
  Value eval(const Expr &E);

  // Workspace access.
  void setVariable(const std::string &Name, Value V) {
    Env.set(Name, std::move(V));
  }
  /// Null when undefined.
  const Value *getVariable(const std::string &Name) const {
    return Env.get(Name);
  }
  /// Name-keyed snapshot of the defined variables (values are COW copies,
  /// so this is cheap and isolated from later mutations).
  std::map<std::string, Value> workspace() const { return Env.snapshot(); }
  void clearWorkspace() { Env.clear(); }

  // Error state.
  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrorMsg; }
  SourceLoc errorLoc() const { return ErrorLoc; }
  void clearError() {
    Failed = false;
    ErrorMsg.clear();
    Interrupt = InterruptKind::None;
  }

  /// Text printed by disp/fprintf.
  const std::string &output() const { return Output; }
  void appendOutput(const std::string &Text) { Output += Text; }
  void clearOutput() { Output.clear(); }

  /// Aborts execution after this many statement executions (0 = unlimited).
  /// Useful to bound property tests against accidental infinite loops.
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }
  uint64_t stepsExecuted() const { return Steps; }

  /// Why execution was aborted early, if it was. StepLimit/Deadline/
  /// Cancelled interrupts also put the interpreter into the failed state,
  /// so failed() callers keep working unchanged; interruptKind() lets a
  /// driver (e.g. the vectorization service) distinguish "the program is
  /// wrong" from "the program was cut off".
  enum class InterruptKind { None, StepLimit, Deadline, Cancelled };
  InterruptKind interruptKind() const { return Interrupt; }

  /// Aborts execution once the steady clock passes \p Deadline. The check
  /// runs every few statements and inside pause(), so a runaway loop stops
  /// within microseconds of the deadline, not at the next quiescent point.
  void setDeadline(std::chrono::steady_clock::time_point Deadline) {
    DeadlineTp = Deadline;
  }
  /// Aborts execution soon after \p Flag becomes true. The flag is owned
  /// by the caller (typically shared by every job of a cancelled batch)
  /// and must outlive the run.
  void setCancelFlag(const std::atomic<bool> *Flag) { CancelFlag = Flag; }

  /// Polls the step limit, deadline, and cancel flag; on expiry enters the
  /// failed state (recording \p Loc) and returns true. Builtins with
  /// internal waits (pause) call this between slices.
  bool checkInterrupt(SourceLoc Loc);

  /// Deterministic PRNG used by the rand builtin.
  void seedRandom(uint64_t Seed) { RandState = Seed ? Seed : 1; }
  double nextRandom();

  /// Reports a runtime error (first error wins).
  void fail(SourceLoc Loc, std::string Message);

  /// Declares that a variable's row/column extent must never exceed one
  /// (pair = {rows capped, cols capped}). Checked after every assignment
  /// to that name; a violation is a runtime error. Differential
  /// validation uses this to reject inputs whose %! annotations declare
  /// an axis as 1 while the program materializes something wider — the
  /// input lied to the shape analysis, so divergence is not a
  /// vectorizer defect.
  void setShapeCaps(std::unordered_map<std::string, std::pair<bool, bool>> Caps) {
    ShapeCaps = std::move(Caps);
    SlotCaps.clear();
  }

  //===--------------------------------------------------------------------===//
  // Execution-engine support
  //
  // The bytecode VM (src/vm) executes *through* a host Interpreter: it
  // shares the workspace, the kernel buffer pool, the RNG, the output
  // buffer, the error/interrupt state, and the per-statement accounting
  // below, so both engines observe byte-identical semantics by
  // construction. The tree-walker itself is rewired through the same
  // primitives.
  //===--------------------------------------------------------------------===//

  Workspace &env() { return Env; }
  OpWorkspace &pool() { return Pool; }

  /// Samples the thread's fault-injection context and arms the in-kernel
  /// poll hook, exactly as run() does for the tree-walker. An engine must
  /// pair this with engineEnd(), including on unwind.
  void engineBegin();
  void engineEnd();

  /// Per-statement accounting: counts the step, enforces the step limit at
  /// the exact overflowing statement, and amortizes the fault/cancel/
  /// deadline polls over 16 statements. Returns true when execution must
  /// stop (the interpreter is then in the failed state).
  bool stmtStep(SourceLoc Loc) {
    ++Steps;
    if (StepLimit != 0 && Steps > StepLimit) {
      Interrupt = InterruptKind::StepLimit;
      fail(Loc, "execution step limit exceeded");
      return true;
    }
    if ((Steps & 0xF) == 0)
      return stmtPoll(Loc);
    return false;
  }

  /// Amortized cancel/deadline poll charged on loop back-edges by both
  /// engines. A bodiless loop never reaches stmtStep, so without this an
  /// armed deadline cannot interrupt `while 1; end`; polling instead of
  /// stepping leaves the step count the engines keep in lockstep
  /// untouched. Returns true when execution must stop.
  bool backEdgePoll(SourceLoc Loc) {
    if ((++BackEdges & 0xF) == 0)
      return stmtPoll(Loc);
    return false;
  }

  /// Deferred accumulator reserve hints (see execFor). Engines record the
  /// watermark at loop entry and restore it on loop exit and on unwind.
  size_t pendingHintCount() const { return PendingHints.size(); }
  void restorePendingHints(size_t Watermark) { PendingHints.resize(Watermark); }
  /// Records a reserve hint for \p Slot: applied immediately when the slot
  /// is defined, deferred to its creating assignment otherwise.
  void noteHintForSlot(unsigned Slot, size_t NumIters) {
    if (Env.isDefined(Slot))
      Env.slotValue(Slot).reserveHint(NumIters);
    else
      PendingHints.emplace_back(Slot, NumIters);
  }

  /// Indexed-assignment target: marks the slot defined (empty value if
  /// new) and applies any pending reserve hint, exactly as execAssign
  /// does before writeIndexed.
  Value &defineSlotRef(unsigned Slot) {
    Value &Target = Env.defineRef(Slot);
    if (!PendingHints.empty())
      applyPendingHint(Slot, Target);
    return Target;
  }

  /// Enforces a registered shape cap after an assignment to \p Slot.
  /// Inline guard: assignments are the hottest statement kind and almost
  /// no run registers caps, so the empty case must not cost a call.
  void checkShapeCap(unsigned Slot, SourceLoc Loc) {
    if (ShapeCaps.empty() || Failed)
      return;
    checkShapeCapSlow(Slot, Loc);
  }
  /// True when any shape caps are registered (a capless assignment can
  /// never enter the failed state).
  bool hasShapeCaps() const { return !ShapeCaps.empty(); }

  // AST-free evaluation primitives shared by both engines. Each reports
  // errors via fail() at the caller-supplied location with the exact
  // tree-walker messages; on failure the returned value is empty.
  Value applyBinary(BinaryOp Op, const Value &LHS, const Value &RHS,
                    SourceLoc Loc);
  /// (A .* B) +/- C with the fused-kernel gate and the exact two-step
  /// fallback of the tree-walker. \p DotMul says the product was written
  /// '.*' (a '*' product is elementwise only when an operand is scalar).
  Value applyFusedMulAdd(const Value &A, const Value &B, const Value &C,
                         bool Subtract, bool ProductOnLeft, bool DotMul,
                         SourceLoc ELoc, SourceLoc ProdLoc);
  /// L * B' through the packed-transpose kernel when shapes allow,
  /// materialized transpose + applyBinary otherwise.
  Value applyMulTransB(const Value &LHS, const Value &B, SourceLoc Loc);
  /// Range construction with the scalar-endpoint check.
  Value makeRangeChecked(const Value &Start, const Value &Step,
                         const Value &Stop, SourceLoc Loc);
  /// The 1..Extent row vector a bare ':' subscript denotes.
  static Value makeColonVector(size_t Extent);

  // Indexing cores: subscript values are already evaluated ('end' resolved,
  // ':' materialized); these implement shape rules, growth, and writes.
  Value indexReadAll(const Value &Base);
  Value indexRead1(const Value &Base, const Value &Idx, SourceLoc Loc);
  Value indexRead2(const Value &Base, const Value &RowIdx, const Value &ColIdx,
                   SourceLoc Loc);
  void indexWriteAll(Value &Target, const Value &RHS, SourceLoc Loc);
  void indexWrite1(Value &Target, const Value &Idx, const Value &RHS,
                   SourceLoc Loc);
  void indexWrite2(Value &Target, const Value &RowIdx, const Value &ColIdx,
                   const Value &RHS, SourceLoc Loc);

private:
  enum class Flow { Normal, Break, Continue, Return };

  /// What the pre-pass learned about an AST node: the workspace slot of the
  /// identifier (or index base) it names, the builtin it resolves to when
  /// the slot is undefined at use time, and whether the name is 'pi'. For
  /// ForStmt nodes, Slot is the loop variable's slot.
  struct NodeInfo {
    int Slot = -1;
    BuiltinId Builtin = InvalidBuiltinId;
    bool IsPi = false;
  };

  /// Open-addressing hash map from AST node pointer to NodeInfo. The find
  /// on this map runs once per identifier evaluation — a flat power-of-two
  /// table with linear probing beats std::unordered_map's bucket chasing
  /// on that path.
  class NodeInfoMap {
  public:
    const NodeInfo *find(const void *Key) const {
      if (Table.empty())
        return nullptr;
      size_t Mask = Table.size() - 1;
      for (size_t I = hashPtr(Key) & Mask;; I = (I + 1) & Mask) {
        const Entry &E = Table[I];
        if (E.Key == Key)
          return &E.Info;
        if (!E.Key)
          return nullptr;
      }
    }

    /// First insertion for a key wins (re-inserts are ignored).
    void insert(const void *Key, const NodeInfo &Info) {
      if (Table.empty() || Count * 4 >= Table.size() * 3)
        grow();
      Entry *E = findSlot(Key);
      if (!E->Key) {
        E->Key = Key;
        E->Info = Info;
        ++Count;
      }
    }

    /// Empties the map but keeps the table storage for the next program.
    void clear() {
      std::fill(Table.begin(), Table.end(), Entry());
      Count = 0;
    }

  private:
    struct Entry {
      const void *Key = nullptr;
      NodeInfo Info;
    };

    static size_t hashPtr(const void *P) {
      auto X = reinterpret_cast<uintptr_t>(P);
      X ^= X >> 33;
      X *= 0xff51afd7ed558ccdULL;
      X ^= X >> 33;
      return static_cast<size_t>(X);
    }

    Entry *findSlot(const void *Key) {
      size_t Mask = Table.size() - 1;
      size_t I = hashPtr(Key) & Mask;
      while (Table[I].Key && Table[I].Key != Key)
        I = (I + 1) & Mask;
      return &Table[I];
    }

    void grow() {
      std::vector<Entry> Old = std::move(Table);
      Table.assign(Old.empty() ? 64 : Old.size() * 2, Entry());
      Count = 0;
      for (const Entry &E : Old)
        if (E.Key) {
          *findSlot(E.Key) = E;
          ++Count;
        }
    }

    std::vector<Entry> Table;
    size_t Count = 0;
  };

  /// Interns every name in \p P and caches the resolution per AST node.
  /// The cache is rebuilt per run() and dropped afterwards, so pointers of
  /// freed programs can never alias a later program's nodes.
  void prepare(const Program &P);

  const NodeInfo *cachedInfo(const void *Node) const {
    return NodeCache.find(Node);
  }

  /// eval()'s dispatch body; all recursion re-enters through eval() so the
  /// depth guard sees every level.
  Value evalImpl(const Expr &E);

  Flow execBody(const std::vector<StmtPtr> &Body);
  Flow execStmt(const Stmt &S);
  Flow execFor(const ForStmt &S);
  Flow execWhile(const WhileStmt &S);
  Flow execIf(const IfStmt &S);
  void execAssign(const AssignStmt &S);

  Value evalBinary(const BinaryExpr &E);
  /// Evaluates \p E for use as a read-only kernel operand. A defined plain
  /// identifier resolves to a reference into the workspace (no COW copy,
  /// no refcount traffic); anything else evaluates into \p Storage. The
  /// reference is valid until the next assignment — expression evaluation
  /// never assigns, so operands stay pinned for the kernel call.
  const Value &evalOperand(const Expr &E, Value &Storage);
  /// Single-pass (A .* B) +/- C when shapes conform; exact two-step
  /// fallback (same kernels, same errors) otherwise. \p Prod is the
  /// product child of \p E; \p ProductOnLeft says which operand it is.
  Value evalFusedMulAdd(const BinaryExpr &E, const BinaryExpr &Prod,
                        bool ProductOnLeft);
  Value evalIndexOrCall(const IndexExpr &E);
  Value evalMatrixLiteral(const MatrixExpr &E);

  /// Evaluates subscript argument \p Arg for a dimension of extent
  /// \p Extent ('end' resolves to Extent; ':' yields 1..Extent).
  Value evalSubscript(const Expr &Arg, size_t Extent);

  /// Converts \p Idx to validated 0-based indices against \p Extent
  /// (growing writes pass Extent = SIZE_MAX to skip the upper check).
  bool toIndices(const Value &Idx, size_t Extent, std::vector<size_t> &Out,
                 SourceLoc Loc);

  Value readIndexed(const Value &Base, const IndexExpr &E);
  void writeIndexed(Value &Target, const IndexExpr &LHS, const Value &RHS);

  /// The amortized slice of stmtStep: fault injection plus the cancel/
  /// deadline poll, run every 16 statements.
  bool stmtPoll(SourceLoc Loc);

  /// The caps-registered tail of checkShapeCap.
  void checkShapeCapSlow(unsigned Slot, SourceLoc Loc);

  /// Records capacity hints for top-level A(i) = ... accumulators of a
  /// loop with \p NumIters iterations; applied when the target variable
  /// is (or becomes) defined.
  void noteAccumulatorHints(const ForStmt &S, size_t NumIters);
  void applyPendingHint(unsigned Slot, Value &Target);

  Workspace Env;
  /// Payload buffer pool shared by the kernels this interpreter invokes.
  OpWorkspace Pool;
  NodeInfoMap NodeCache;
  std::unordered_map<std::string, std::pair<bool, bool>> ShapeCaps;
  /// Per-slot cap mask (bit0 = rows capped, bit1 = cols capped), extended
  /// lazily from ShapeCaps as slots appear.
  std::vector<int8_t> SlotCaps;
  /// Reusable argument vectors for builtin calls, indexed by nesting
  /// depth (deque: growth never invalidates outstanding references).
  std::deque<std::vector<Value>> ArgPool;
  size_t ArgDepth = 0;
  /// Scratch index buffers for readIndexed/writeIndexed. Subscript
  /// evaluation (which may recurse into indexing) always completes before
  /// these are filled, so reuse is safe.
  std::vector<size_t> IdxScratchA, IdxScratchB;
  /// (slot, numel) reserve hints noted by enclosing for-loops.
  std::vector<std::pair<unsigned, size_t>> PendingHints;

  std::string Output;
  bool Failed = false;
  std::string ErrorMsg;
  SourceLoc ErrorLoc;
  uint64_t StepLimit = 0;
  uint64_t Steps = 0;
  uint64_t BackEdges = 0;
  std::optional<std::chrono::steady_clock::time_point> DeadlineTp;
  const std::atomic<bool> *CancelFlag = nullptr;
  InterruptKind Interrupt = InterruptKind::None;
  uint64_t RandState = 0x9E3779B97F4A7C15ull;

  /// eval() recursion ceiling; the parser caps parse trees far below this.
  static constexpr unsigned MaxEvalDepth = 2000;
  unsigned EvalDepth = 0;
  /// The thread's fault-injection context, sampled once per run() so the
  /// per-statement gate is a cached member null check, not a TLS load.
  FaultContext *FaultCtx = nullptr;
};

/// Compares two workspaces for semantic equality within \p Tol. Returns an
/// empty string when equal, else a description of the first difference.
/// Used by the differential tests: original vs. vectorized program state.
std::string compareWorkspaces(const Interpreter &A, const Interpreter &B,
                              double Tol = 1e-9);

} // namespace mvec

#endif // MVEC_INTERP_INTERPRETER_H
