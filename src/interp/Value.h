//===- Value.h - MATLAB runtime value ---------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value of the MATLAB interpreter: a dense 2-D double matrix
/// in column-major order (MATLAB's layout — the diagonal-access pattern in
/// the paper relies on it). Scalars are 1x1, the empty value is 0x0.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_VALUE_H
#define MVEC_INTERP_VALUE_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace mvec {

class Value {
public:
  /// The empty 0x0 value ([]).
  Value() = default;

  Value(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols),
        Data(Rows * Cols, Fill) {}

  static Value scalar(double V) {
    Value Result(1, 1);
    Result.Data[0] = V;
    return Result;
  }

  /// Builds a vector from \p Elems, as a row when \p Row is true, else a
  /// column.
  static Value vector(std::vector<double> Elems, bool Row) {
    Value Result;
    Result.NumRows = Row ? (Elems.empty() ? 0 : 1) : Elems.size();
    Result.NumCols = Row ? Elems.size() : (Elems.empty() ? 0 : 1);
    Result.Data = std::move(Elems);
    return Result;
  }

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t numel() const { return Data.size(); }

  bool isEmpty() const { return Data.empty(); }
  bool isScalar() const { return NumRows == 1 && NumCols == 1; }
  bool isRow() const { return NumRows == 1 && NumCols >= 1; }
  bool isColumn() const { return NumCols == 1 && NumRows >= 1; }
  bool isVector() const { return !isEmpty() && (NumRows == 1 || NumCols == 1); }

  double scalarValue() const {
    assert(isScalar() && "not a scalar");
    return Data[0];
  }

  /// 0-based element access (column-major linear index).
  double linear(size_t I) const {
    assert(I < Data.size() && "linear index out of range");
    return Data[I];
  }
  double &linear(size_t I) {
    assert(I < Data.size() && "linear index out of range");
    return Data[I];
  }

  /// 0-based (row, col) access.
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "subscript out of range");
    return Data[C * NumRows + R];
  }
  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "subscript out of range");
    return Data[C * NumRows + R];
  }

  const std::vector<double> &data() const { return Data; }
  std::vector<double> &data() { return Data; }

  Value transposed() const;

  /// Grows to \p Rows x \p Cols, zero-filling new elements and preserving
  /// existing elements at their (row, col) positions.
  void growTo(size_t Rows, size_t Cols);

  /// Reshapes in place (column-major element order preserved).
  /// Requires Rows*Cols == numel().
  void reshapeTo(size_t Rows, size_t Cols) {
    assert(Rows * Cols == Data.size() && "reshape changes element count");
    NumRows = Rows;
    NumCols = Cols;
  }

  /// All elements equal within \p Tol (and same shape).
  bool equals(const Value &Other, double Tol = 0.0) const;

  /// MATLAB-truthiness: nonempty and all elements nonzero.
  bool isTrue() const;

  /// MATLAB logical class flag: set on the results of comparisons and
  /// logical operators. A logical value used as a subscript selects by
  /// mask instead of by position.
  bool isLogical() const { return Logical; }
  void setLogical(bool L) { Logical = L; }

  /// A short display form ("[2x3]" contents for small values).
  std::string str() const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  bool Logical = false;
  std::vector<double> Data;
};

} // namespace mvec

#endif // MVEC_INTERP_VALUE_H
