//===- Value.h - MATLAB runtime value ---------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value of the MATLAB interpreter: a dense 2-D double matrix
/// in column-major order (MATLAB's layout — the diagonal-access pattern in
/// the paper relies on it). Scalars are 1x1, the empty value is 0x0.
///
/// Values are copy-on-write: copies share one refcounted payload buffer
/// and a mutation detaches (clones) only when the buffer is shared. The
/// refcount is the atomic shared_ptr control block, so read-only sharing
/// across service threads is safe; mutating accessors must only be used by
/// the owning thread, as before. Values with at most one element store the
/// payload inline, so Value::scalar never heap-allocates — the interpreter
/// hot path runs mostly on scalars.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_VALUE_H
#define MVEC_INTERP_VALUE_H

#include "resilience/ResourceGovernor.h"

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

namespace mvec {

/// STL allocator backing every matrix payload with 64-byte-aligned
/// storage (cache line / AVX-512 width). Alignment is a property of the
/// allocator type, so it survives any buffer round trip — OpWorkspace
/// pooling, Value::adoptBuffer / releaseBuffer — by construction; the
/// SIMD kernel backend (src/interp/simd) relies on payloads never
/// straddling a vector register's natural boundary at element 0.
template <typename T> struct PayloadAllocator {
  using value_type = T;
  static constexpr std::align_val_t Alignment{64};

  PayloadAllocator() = default;
  template <typename U> PayloadAllocator(const PayloadAllocator<U> &) {}

  T *allocate(size_t N) {
    return static_cast<T *>(::operator new(N * sizeof(T), Alignment));
  }
  void deallocate(T *P, size_t) noexcept { ::operator delete(P, Alignment); }

  friend bool operator==(const PayloadAllocator &, const PayloadAllocator &) {
    return true;
  }
  friend bool operator!=(const PayloadAllocator &, const PayloadAllocator &) {
    return false;
  }
};

/// The payload vector type shared by Value and the OpWorkspace pool.
using PayloadBuffer = std::vector<double, PayloadAllocator<double>>;

class Value {
public:
  /// The empty 0x0 value ([]).
  Value() = default;

  Value(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols) {
    size_t N = Rows * Cols;
    if (N > 1) {
      chargeMemory(N * sizeof(double));
      Heap = std::make_shared<PayloadBuffer>(N, Fill);
    } else {
      InlineVal = Fill;
    }
  }

  static Value scalar(double V) {
    Value Result;
    Result.NumRows = Result.NumCols = 1;
    Result.InlineVal = V;
    return Result;
  }

  /// Builds a vector from \p Elems, as a row when \p Row is true, else a
  /// column.
  static Value vector(std::vector<double> Elems, bool Row) {
    Value Result;
    Result.NumRows = Row ? (Elems.empty() ? 0 : 1) : Elems.size();
    Result.NumCols = Row ? Elems.size() : (Elems.empty() ? 0 : 1);
    if (Elems.size() > 1) {
      chargeMemory(Elems.size() * sizeof(double));
      // Copies (allocator conversion) rather than moves: the payload must
      // land in aligned storage.
      Result.Heap =
          std::make_shared<PayloadBuffer>(Elems.begin(), Elems.end());
    } else if (!Elems.empty()) {
      Result.InlineVal = Elems[0];
    }
    return Result;
  }

  /// Wraps a payload buffer (typically recycled from an OpWorkspace pool)
  /// as a \p Rows x \p Cols value. Requires Buf->size() == Rows * Cols.
  static Value adoptBuffer(std::shared_ptr<PayloadBuffer> Buf, size_t Rows,
                           size_t Cols) {
    assert(Buf && Buf->size() == Rows * Cols && "buffer/shape mismatch");
    Value Result;
    Result.NumRows = Rows;
    Result.NumCols = Cols;
    if (Buf->size() > 1)
      Result.Heap = std::move(Buf);
    else if (!Buf->empty())
      Result.InlineVal = (*Buf)[0];
    return Result;
  }

  /// Surrenders the heap payload for pooling when this value owns one
  /// exclusively; returns null for inline/shared payloads. The value
  /// becomes empty either way.
  std::shared_ptr<PayloadBuffer> releaseBuffer() {
    std::shared_ptr<PayloadBuffer> Out;
    if (Heap && Heap.use_count() == 1)
      Out = std::move(Heap);
    Heap.reset();
    NumRows = NumCols = 0;
    Logical = false;
    return Out;
  }

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t numel() const { return NumRows * NumCols; }

  bool isEmpty() const { return numel() == 0; }
  bool isScalar() const { return NumRows == 1 && NumCols == 1; }
  bool isRow() const { return NumRows == 1 && NumCols >= 1; }
  bool isColumn() const { return NumCols == 1 && NumRows >= 1; }
  bool isVector() const { return !isEmpty() && (NumRows == 1 || NumCols == 1); }

  /// True when this value shares its payload with another (COW tests).
  bool sharesBufferWith(const Value &Other) const {
    return Heap && Heap == Other.Heap;
  }

  double scalarValue() const {
    assert(isScalar() && "not a scalar");
    return raw()[0];
  }

  /// Read-only payload pointer (column-major).
  const double *raw() const { return Heap ? Heap->data() : &InlineVal; }

  /// Mutable payload pointer; detaches from any sharing copies first.
  double *mutableRaw() {
    if (Heap && Heap.use_count() > 1) {
      chargeMemory(Heap->size() * sizeof(double));
      Heap = std::make_shared<PayloadBuffer>(*Heap);
    }
    return Heap ? Heap->data() : &InlineVal;
  }

  /// Const iteration over the payload (range-for support).
  const double *begin() const { return raw(); }
  const double *end() const { return raw() + numel(); }

  /// 0-based element access (column-major linear index).
  double linear(size_t I) const {
    assert(I < numel() && "linear index out of range");
    return raw()[I];
  }
  double &linear(size_t I) {
    assert(I < numel() && "linear index out of range");
    return mutableRaw()[I];
  }

  /// 0-based (row, col) access.
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "subscript out of range");
    return raw()[C * NumRows + R];
  }
  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "subscript out of range");
    return mutableRaw()[C * NumRows + R];
  }

  Value transposed() const;

  /// Grows to \p Rows x \p Cols, zero-filling new elements and preserving
  /// existing elements at their (row, col) positions. Growth that keeps the
  /// row count (vector append, matrix column append) extends the payload in
  /// place with the geometric capacity policy, so element-at-a-time
  /// accumulator loops are amortized O(n), not O(n^2).
  void growTo(size_t Rows, size_t Cols);

  /// Capacity hint: pre-reserves payload space for \p Numel elements
  /// without changing shape or contents. Used by the interpreter when a
  /// loop's trip count bounds how far an accumulator will grow. No-op on
  /// shared payloads.
  void reserveHint(size_t Numel);

  /// Reshapes in place (column-major element order preserved).
  /// Requires Rows*Cols == numel().
  void reshapeTo(size_t Rows, size_t Cols) {
    assert(Rows * Cols == numel() && "reshape changes element count");
    NumRows = Rows;
    NumCols = Cols;
  }

  /// All elements equal within \p Tol (and same shape).
  bool equals(const Value &Other, double Tol = 0.0) const;

  /// MATLAB-truthiness: nonempty and all elements nonzero.
  bool isTrue() const;

  /// MATLAB logical class flag: set on the results of comparisons and
  /// logical operators. A logical value used as a subscript selects by
  /// mask instead of by position.
  bool isLogical() const { return Logical; }
  void setLogical(bool L) { Logical = L; }

  /// A short display form ("[2x3]" contents for small values).
  std::string str() const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  bool Logical = false;
  /// Payload when numel() <= 1 and no heap buffer exists.
  double InlineVal = 0.0;
  /// Shared payload; null iff the value fits inline (reserveHint may
  /// promote a small value to a heap buffer early). When set, the vector's
  /// size equals numel().
  std::shared_ptr<PayloadBuffer> Heap;
};

} // namespace mvec

#endif // MVEC_INTERP_VALUE_H
