//===- SimdDispatch.h - Runtime-dispatched SIMD kernel backend --*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's SIMD kernel backend: a table of leaf kernel function
/// pointers (elementwise arithmetic/compares, fused multiply-add, the
/// blocked-matmul inner tile, order-preserving reductions) with one
/// implementation per instruction set, selected once at load time by a
/// cpuid-based dispatcher.
///
/// Each ISA lives in its own translation unit compiled with that ISA's
/// flags (Kernels_sse2.cpp, Kernels_sse41.cpp, Kernels_avx2.cpp — the
/// per-ISA-object-file pattern of RayDemo's `_Ray_Sse41.cpp` builds); the
/// portable scalar table (Kernels_scalar.cpp) is always compiled and is
/// both the fallback on non-x86 hosts and the bit-exact reference the
/// differential tests compare every other table against.
///
/// Exact-semantics contract (PR 3): every table must produce bit-identical
/// results to the scalar table. Concretely:
///   * no FMA contraction — products and sums are separate roundings, so
///     the per-ISA translation units are built without -mfma and with
///     -ffp-contract=off;
///   * no reassociation in order-sensitive reductions — SIMD reductions
///     vectorize across *independent* output elements (lanes are distinct
///     columns/rows), never across a single accumulation chain;
///   * the blocked matmul keeps the scalar kernel's per-(column, P)
///     zero-skip, so Inf/NaN propagation through zero multipliers is
///     unchanged.
///
/// Selection: the first use picks the best CPU-supported compiled-in
/// level, overridable by the MVEC_SIMD environment variable or the tools'
/// --simd flag ("auto", "best", "scalar", "sse2", "sse41", "avx2").
/// Dispatch state is process-global; per-kernel dispatch counters let
/// deployments confirm which tier actually served their traffic.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_SIMD_SIMDDISPATCH_H
#define MVEC_INTERP_SIMD_SIMDDISPATCH_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mvec::simd {

/// Dispatch levels, ordered weakest to strongest. Scalar is always
/// available; the x86 levels exist only when compiled in (MVEC_SIMD=ON,
/// x86-64 host toolchain) and the CPU reports the feature.
enum class Level : int { Scalar = 0, Sse2 = 1, Sse41 = 2, Avx2 = 3 };

/// Comparison / elementwise-logical predicates, decoupled from the
/// frontend's BinaryOp so kernel translation units stay AST-free.
/// All produce MATLAB logical 1.0/0.0; NaN compares follow IEEE scalar
/// semantics (ordered compares false, Ne true).
enum class CmpPred : int { Lt, Gt, Le, Ge, Eq, Ne, And, Or };

/// Fused multiply-add flavors: (A.*B)+C, (A.*B)-C, C-(A.*B).
enum class FmaMode : int { MulAdd = 0, MulSub = 1, RevSub = 2 };

/// One ISA's leaf kernels. Pointers are never null: levels that have no
/// profitable vector form for a kernel (e.g. the serial-per-column cumsum
/// along dim 1) point at the shared portable loop.
///
/// Conventions: payloads are dense column-major doubles. Elementwise
/// strides SA/SB/SC are 0 (replay one scalar) or 1 (walk the payload).
/// Leaves contain no polling and no allocation — deadline polls and
/// ResourceGovernor charges stay in MatrixOps.cpp, between tile calls, so
/// resilience behavior is identical on every level.
struct KernelTable {
  Level Isa;
  const char *Name;

  /// R[i] = A[i*SA] op B[i*SB] for i in [0, N).
  void (*EwAdd)(const double *A, size_t SA, const double *B, size_t SB,
                double *R, size_t N);
  void (*EwSub)(const double *A, size_t SA, const double *B, size_t SB,
                double *R, size_t N);
  void (*EwMul)(const double *A, size_t SA, const double *B, size_t SB,
                double *R, size_t N);
  void (*EwDiv)(const double *A, size_t SA, const double *B, size_t SB,
                double *R, size_t N);
  /// R[i] = pred(A[i*SA], B[i*SB]) ? 1.0 : 0.0.
  void (*EwCmp)(CmpPred Pred, const double *A, size_t SA, const double *B,
                size_t SB, double *R, size_t N);
  /// R[i] = mode(A[i*SA] * B[i*SB], C[i*SC]); product and sum are two
  /// roundings (never contracted to a hardware fma).
  void (*FusedMulAdd)(FmaMode Mode, const double *A, size_t SA,
                      const double *B, size_t SB, const double *C, size_t SC,
                      double *R, size_t N);
  /// R[i] = -A[i] / R[i] = (A[i] == 0.0).
  void (*UnaryNeg)(const double *A, double *R, size_t N);
  void (*UnaryNot)(const double *A, double *R, size_t N);
  /// Matmul inner tile: R columns [J0, J1) += A(:, P0:P1) * B(P0:P1,
  /// J0:J1) on raw column-major payloads (A is M x K, B is K x N, R is
  /// M x N). Per output element the accumulation over P is strictly
  /// ascending, and a zero B element skips its update entirely — both
  /// exactly as the scalar kernel.
  void (*MatMulTile)(const double *A, const double *B, double *R, size_t M,
                     size_t K, size_t P0, size_t P1, size_t J0, size_t J1);
  /// Out[c] = sum/prod of column c (ascending row order per column).
  void (*ColSums)(const double *A, size_t Rows, size_t Cols, double *Out);
  void (*ColProds)(const double *A, size_t Rows, size_t Cols, double *Out);
  /// Out[r] = sum of row r (ascending column order per row).
  void (*RowSums)(const double *A, size_t Rows, size_t Cols, double *Out);
  /// Running sums down columns (dim 1) / across rows (dim 2), writing a
  /// full Rows x Cols result.
  void (*CumsumDim1)(const double *A, size_t Rows, size_t Cols, double *Out);
  void (*CumsumDim2)(const double *A, size_t Rows, size_t Cols, double *Out);
};

/// Process-global per-kernel dispatch counters (relaxed atomics, bumped
/// once per kernel call, not per element). Shared by every service in the
/// process — they answer "which tier ran, and did it actually get
/// traffic", not per-tenant accounting.
struct DispatchCounters {
  std::atomic<uint64_t> Elementwise{0};
  std::atomic<uint64_t> Compare{0};
  std::atomic<uint64_t> FusedMulAdd{0};
  std::atomic<uint64_t> MatMul{0};
  std::atomic<uint64_t> Reduce{0};
  std::atomic<uint64_t> Cumsum{0};
  std::atomic<uint64_t> Unary{0};
};

DispatchCounters &dispatchCounters();

/// The active kernel table. First call runs detection (and the MVEC_SIMD
/// environment override); afterwards this is one atomic load.
const KernelTable &kernels();

Level activeLevel();
const char *levelName(Level L);

/// Levels whose translation units are compiled into this binary
/// (ascending; always includes Scalar).
std::vector<Level> compiledLevels();

/// True when \p L is compiled in and the running CPU supports it.
bool levelSupported(Level L);

/// Strongest supported compiled-in level on this CPU.
Level bestSupportedLevel();

/// Pins dispatch to \p L. Fails (returning false, leaving dispatch
/// unchanged) when \p L is not supported on this host.
bool setLevel(Level L, std::string *Err = nullptr);

/// Parses a --simd / MVEC_SIMD spec: "auto" and "best" select the
/// strongest supported level, otherwise a level name pins that level.
/// Unknown names and unsupported levels fail with a diagnostic in \p Err.
bool configureFromString(const std::string &Spec, std::string *Err = nullptr);

/// The usage string shared by every tool flag: "auto|scalar|sse2|sse41|avx2".
inline const char *flagValues() { return "auto|scalar|sse2|sse41|avx2"; }

/// CLI helper shared by the tools and benches: recognizes both
/// "--simd LEVEL" and "--simd=LEVEL". Returns false when \p Argv[I] is
/// not a --simd flag. On a recognized flag, configures dispatch and
/// returns true, advancing \p I past a separate LEVEL argument; a bad or
/// missing level prints a diagnostic to stderr and exits with status 2.
bool handleSimdFlag(int Argc, char **Argv, int &I);

} // namespace mvec::simd

#endif // MVEC_INTERP_SIMD_SIMDDISPATCH_H
