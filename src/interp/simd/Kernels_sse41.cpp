//===- Kernels_sse41.cpp - SSE4.1 kernel table ----------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// KernelsImpl.h at vector width 2, compiled with -msse4.1. The source is
// identical to the SSE2 table; the compiler is free to use SSE3/SSSE3/
// SSE4.1 encodings (e.g. blendvpd for the compare selects) that the SSE2
// object cannot, which is exactly the per-ISA-translation-unit pattern
// this backend exists to exploit.
//
//===----------------------------------------------------------------------===//

#define MVEC_SIMD_IMPL_NS sse41_impl
#define MVEC_SIMD_IMPL_LEVEL ::mvec::simd::Level::Sse41
#define MVEC_SIMD_IMPL_NAME "sse41"
#define MVEC_SIMD_WIDTH 2
#define MVEC_SIMD_TABLE_ACCESSOR sse41Table

#include "interp/simd/KernelsImpl.h"
