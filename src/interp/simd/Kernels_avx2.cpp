//===- Kernels_avx2.cpp - AVX2 kernel table -------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// KernelsImpl.h at vector width 4, compiled with -mavx2 — four doubles per
// register, 256-bit loads/stores, permute2f128-based 4x4 transposes in the
// column reductions. Deliberately NOT compiled with -mfma and built with
// -ffp-contract=off: a hardware fused multiply-add rounds once where the
// scalar reference rounds twice, which would break the bit-exactness
// contract (SimdDispatch.h).
//
//===----------------------------------------------------------------------===//

#define MVEC_SIMD_IMPL_NS avx2_impl
#define MVEC_SIMD_IMPL_LEVEL ::mvec::simd::Level::Avx2
#define MVEC_SIMD_IMPL_NAME "avx2"
#define MVEC_SIMD_WIDTH 4
#define MVEC_SIMD_TABLE_ACCESSOR avx2Table

#include "interp/simd/KernelsImpl.h"
