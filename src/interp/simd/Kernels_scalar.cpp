//===- Kernels_scalar.cpp - Portable scalar kernel table ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The always-compiled portable build of KernelsImpl.h: plain C++ loops, no
// intrinsics, no ISA flags. This table is the differential-testing
// reference every vector table must match bit-for-bit, and the fallback on
// hosts (or -DMVEC_SIMD=OFF builds) with no vector tier.
//
//===----------------------------------------------------------------------===//

#define MVEC_SIMD_IMPL_NS scalar_impl
#define MVEC_SIMD_IMPL_LEVEL ::mvec::simd::Level::Scalar
#define MVEC_SIMD_IMPL_NAME "scalar"
#define MVEC_SIMD_WIDTH 1
#define MVEC_SIMD_TABLE_ACCESSOR scalarTable

#include "interp/simd/KernelsImpl.h"
