//===- Kernels_sse2.cpp - SSE2 kernel table -------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// KernelsImpl.h at vector width 2, compiled with -msse2 (the x86-64
// baseline — every 64-bit x86 CPU runs this table). Own translation unit
// so its object file alone carries the ISA flags; see
// src/interp/CMakeLists.txt.
//
//===----------------------------------------------------------------------===//

#define MVEC_SIMD_IMPL_NS sse2_impl
#define MVEC_SIMD_IMPL_LEVEL ::mvec::simd::Level::Sse2
#define MVEC_SIMD_IMPL_NAME "sse2"
#define MVEC_SIMD_WIDTH 2
#define MVEC_SIMD_TABLE_ACCESSOR sse2Table

#include "interp/simd/KernelsImpl.h"
