//===- KernelsImpl.h - Shared per-ISA kernel implementation -----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one kernel implementation every ISA translation unit compiles.
/// Include it after defining:
///
///   MVEC_SIMD_IMPL_NS        namespace for this build (e.g. avx2_impl)
///   MVEC_SIMD_IMPL_LEVEL     the simd::Level this table claims
///   MVEC_SIMD_IMPL_NAME      display name ("avx2")
///   MVEC_SIMD_WIDTH          doubles per vector register: 1, 2 or 4
///   MVEC_SIMD_TABLE_ACCESSOR name of the detail::<fn>() accessor defined
///
/// Width 1 produces the portable scalar loops (the differential-testing
/// reference — these are byte-for-byte the loops MatrixOps.cpp ran before
/// the backend split). Widths 2/4 produce SSE/AVX intrinsic bodies; the
/// same source compiled with different ISA flags is what makes the tiers
/// comparable: the per-element arithmetic is identical, only the lane
/// count and instruction encoding differ.
///
/// Exact-semantics rules (see SimdDispatch.h): no hardware FMA, no
/// reassociation — vector lanes always map to *independent* output
/// elements, so each output's operation sequence matches the scalar loop
/// exactly, and results are bit-identical across every table.
///
//===----------------------------------------------------------------------===//

#include "interp/simd/SimdDispatch.h"

#include <cstddef>

#if MVEC_SIMD_WIDTH > 1
#include <immintrin.h>
#endif

namespace mvec::simd {
namespace MVEC_SIMD_IMPL_NS {
namespace {

constexpr size_t W = MVEC_SIMD_WIDTH;

//===----------------------------------------------------------------------===//
// Scalar helpers (vector-loop tails, and the whole width-1 build)
//===----------------------------------------------------------------------===//

inline double sCmp(CmpPred Pred, double A, double B) {
  switch (Pred) {
  case CmpPred::Lt:
    return A < B ? 1.0 : 0.0;
  case CmpPred::Gt:
    return A > B ? 1.0 : 0.0;
  case CmpPred::Le:
    return A <= B ? 1.0 : 0.0;
  case CmpPred::Ge:
    return A >= B ? 1.0 : 0.0;
  case CmpPred::Eq:
    return A == B ? 1.0 : 0.0;
  case CmpPred::Ne:
    return A != B ? 1.0 : 0.0;
  case CmpPred::And:
    return (A != 0.0 && B != 0.0) ? 1.0 : 0.0;
  case CmpPred::Or:
    return (A != 0.0 || B != 0.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

inline double sFma(FmaMode Mode, double A, double B, double C) {
  double P = A * B; // one rounding for the product ...
  switch (Mode) {
  case FmaMode::MulAdd:
    return P + C; // ... and one for the sum: never contracted.
  case FmaMode::MulSub:
    return P - C;
  case FmaMode::RevSub:
    return C - P;
  }
  return 0.0;
}

//===----------------------------------------------------------------------===//
// Vector primitive layer (widths 2 and 4)
//===----------------------------------------------------------------------===//

#if MVEC_SIMD_WIDTH == 4

using VD = __m256d;
inline VD vLoad(const double *P) { return _mm256_loadu_pd(P); }
inline void vStore(double *P, VD V) { _mm256_storeu_pd(P, V); }
inline VD vSet1(double X) { return _mm256_set1_pd(X); }
inline VD vZero() { return _mm256_setzero_pd(); }
inline VD vAdd(VD A, VD B) { return _mm256_add_pd(A, B); }
inline VD vSub(VD A, VD B) { return _mm256_sub_pd(A, B); }
inline VD vMul(VD A, VD B) { return _mm256_mul_pd(A, B); }
inline VD vDiv(VD A, VD B) { return _mm256_div_pd(A, B); }
inline VD vAnd(VD A, VD B) { return _mm256_and_pd(A, B); }
inline VD vOr(VD A, VD B) { return _mm256_or_pd(A, B); }
inline VD vXor(VD A, VD B) { return _mm256_xor_pd(A, B); }

/// Lanes from a strided walk: {P[0], P[S], P[2S], P[3S]}.
inline VD vGatherStride(const double *P, size_t S) {
  return _mm256_set_pd(P[3 * S], P[2 * S], P[S], P[0]);
}

/// All-ones lane mask per the IEEE predicate. Ordered-quiet compares give
/// scalar semantics for NaN (false; Ne is unordered, so NaN gives true).
inline VD vCmpMask(CmpPred Pred, VD A, VD B) {
  switch (Pred) {
  case CmpPred::Lt:
    return _mm256_cmp_pd(A, B, _CMP_LT_OQ);
  case CmpPred::Gt:
    return _mm256_cmp_pd(A, B, _CMP_GT_OQ);
  case CmpPred::Le:
    return _mm256_cmp_pd(A, B, _CMP_LE_OQ);
  case CmpPred::Ge:
    return _mm256_cmp_pd(A, B, _CMP_GE_OQ);
  case CmpPred::Eq:
    return _mm256_cmp_pd(A, B, _CMP_EQ_OQ);
  case CmpPred::Ne:
    return _mm256_cmp_pd(A, B, _CMP_NEQ_UQ);
  case CmpPred::And:
    return vAnd(_mm256_cmp_pd(A, vZero(), _CMP_NEQ_UQ),
                _mm256_cmp_pd(B, vZero(), _CMP_NEQ_UQ));
  case CmpPred::Or:
    return vOr(_mm256_cmp_pd(A, vZero(), _CMP_NEQ_UQ),
               _mm256_cmp_pd(B, vZero(), _CMP_NEQ_UQ));
  }
  return vZero();
}

/// In-register 4x4 transpose: four column fragments (rows I..I+3 of
/// columns J..J+3) become four row vectors across those columns.
inline void vTranspose(VD &C0, VD &C1, VD &C2, VD &C3) {
  VD T0 = _mm256_unpacklo_pd(C0, C1);
  VD T1 = _mm256_unpackhi_pd(C0, C1);
  VD T2 = _mm256_unpacklo_pd(C2, C3);
  VD T3 = _mm256_unpackhi_pd(C2, C3);
  C0 = _mm256_permute2f128_pd(T0, T2, 0x20);
  C1 = _mm256_permute2f128_pd(T1, T3, 0x20);
  C2 = _mm256_permute2f128_pd(T0, T2, 0x31);
  C3 = _mm256_permute2f128_pd(T1, T3, 0x31);
}

#elif MVEC_SIMD_WIDTH == 2

using VD = __m128d;
inline VD vLoad(const double *P) { return _mm_loadu_pd(P); }
inline void vStore(double *P, VD V) { _mm_storeu_pd(P, V); }
inline VD vSet1(double X) { return _mm_set1_pd(X); }
inline VD vZero() { return _mm_setzero_pd(); }
inline VD vAdd(VD A, VD B) { return _mm_add_pd(A, B); }
inline VD vSub(VD A, VD B) { return _mm_sub_pd(A, B); }
inline VD vMul(VD A, VD B) { return _mm_mul_pd(A, B); }
inline VD vDiv(VD A, VD B) { return _mm_div_pd(A, B); }
inline VD vAnd(VD A, VD B) { return _mm_and_pd(A, B); }
inline VD vOr(VD A, VD B) { return _mm_or_pd(A, B); }
inline VD vXor(VD A, VD B) { return _mm_xor_pd(A, B); }

inline VD vGatherStride(const double *P, size_t S) {
  return _mm_set_pd(P[S], P[0]);
}

inline VD vCmpMask(CmpPred Pred, VD A, VD B) {
  switch (Pred) {
  case CmpPred::Lt:
    return _mm_cmplt_pd(A, B);
  case CmpPred::Gt:
    return _mm_cmpgt_pd(A, B);
  case CmpPred::Le:
    return _mm_cmple_pd(A, B);
  case CmpPred::Ge:
    return _mm_cmpge_pd(A, B);
  case CmpPred::Eq:
    return _mm_cmpeq_pd(A, B);
  case CmpPred::Ne:
    return _mm_cmpneq_pd(A, B);
  case CmpPred::And:
    return vAnd(_mm_cmpneq_pd(A, vZero()), _mm_cmpneq_pd(B, vZero()));
  case CmpPred::Or:
    return vOr(_mm_cmpneq_pd(A, vZero()), _mm_cmpneq_pd(B, vZero()));
  }
  return vZero();
}

inline void vTranspose(VD &C0, VD &C1) {
  VD T0 = _mm_unpacklo_pd(C0, C1);
  C1 = _mm_unpackhi_pd(C0, C1);
  C0 = T0;
}

#endif // MVEC_SIMD_WIDTH

//===----------------------------------------------------------------------===//
// Elementwise binary arithmetic
//===----------------------------------------------------------------------===//

#if MVEC_SIMD_WIDTH == 1

#define MVEC_EW_KERNEL(NAME, SEXPR)                                           \
  void NAME(const double *A, size_t SA, const double *B, size_t SB,           \
            double *R, size_t N) {                                            \
    for (size_t I = 0; I != N; ++I) {                                         \
      double X = A[I * SA], Y = B[I * SB];                                    \
      R[I] = (SEXPR);                                                         \
    }                                                                         \
  }

#else

#define MVEC_EW_KERNEL(NAME, SEXPR)                                           \
  void NAME(const double *A, size_t SA, const double *B, size_t SB,           \
            double *R, size_t N) {                                            \
    size_t I = 0;                                                             \
    if (SA == 1 && SB == 1) {                                                 \
      for (; I + W <= N; I += W)                                              \
        vStore(R + I, vEw_##NAME(vLoad(A + I), vLoad(B + I)));                \
    } else if (SA == 0 && SB == 1) {                                          \
      VD VA = vSet1(A[0]);                                                    \
      for (; I + W <= N; I += W)                                              \
        vStore(R + I, vEw_##NAME(VA, vLoad(B + I)));                          \
    } else if (SA == 1 && SB == 0) {                                          \
      VD VB = vSet1(B[0]);                                                    \
      for (; I + W <= N; I += W)                                              \
        vStore(R + I, vEw_##NAME(vLoad(A + I), VB));                          \
    }                                                                         \
    for (; I != N; ++I) {                                                     \
      double X = A[I * SA], Y = B[I * SB];                                    \
      R[I] = (SEXPR);                                                         \
    }                                                                         \
  }

inline VD vEw_ewAdd(VD A, VD B) { return vAdd(A, B); }
inline VD vEw_ewSub(VD A, VD B) { return vSub(A, B); }
inline VD vEw_ewMul(VD A, VD B) { return vMul(A, B); }
inline VD vEw_ewDiv(VD A, VD B) { return vDiv(A, B); }

#endif

MVEC_EW_KERNEL(ewAdd, X + Y)
MVEC_EW_KERNEL(ewSub, X - Y)
MVEC_EW_KERNEL(ewMul, X *Y)
MVEC_EW_KERNEL(ewDiv, X / Y)

#undef MVEC_EW_KERNEL

//===----------------------------------------------------------------------===//
// Comparisons and elementwise logic (MATLAB logical 1.0/0.0 results)
//===----------------------------------------------------------------------===//

void ewCmp(CmpPred Pred, const double *A, size_t SA, const double *B,
           size_t SB, double *R, size_t N) {
  size_t I = 0;
#if MVEC_SIMD_WIDTH > 1
  VD One = vSet1(1.0);
  if (SA == 1 && SB == 1) {
    for (; I + W <= N; I += W)
      vStore(R + I, vAnd(vCmpMask(Pred, vLoad(A + I), vLoad(B + I)), One));
  } else if (SA == 0 && SB == 1) {
    VD VA = vSet1(A[0]);
    for (; I + W <= N; I += W)
      vStore(R + I, vAnd(vCmpMask(Pred, VA, vLoad(B + I)), One));
  } else if (SA == 1 && SB == 0) {
    VD VB = vSet1(B[0]);
    for (; I + W <= N; I += W)
      vStore(R + I, vAnd(vCmpMask(Pred, vLoad(A + I), VB), One));
  }
#endif
  for (; I != N; ++I)
    R[I] = sCmp(Pred, A[I * SA], B[I * SB]);
}

//===----------------------------------------------------------------------===//
// Fused elementwise multiply-add
//===----------------------------------------------------------------------===//

void fusedMulAdd(FmaMode Mode, const double *A, size_t SA, const double *B,
                 size_t SB, const double *C, size_t SC, double *R, size_t N) {
  if (N == 0)
    return;
  size_t I = 0;
#if MVEC_SIMD_WIDTH > 1
  // Splats are loop-invariant; strides select lane loads vs replay. The
  // stride branches are loop-invariant too, so the compiler unswitches.
  VD SplA = vSet1(A[0]), SplB = vSet1(B[0]), SplC = vSet1(C[0]);
  for (; I + W <= N; I += W) {
    VD VA = SA ? vLoad(A + I) : SplA;
    VD VB = SB ? vLoad(B + I) : SplB;
    VD VC = SC ? vLoad(C + I) : SplC;
    VD P = vMul(VA, VB);
    vStore(R + I, Mode == FmaMode::MulAdd   ? vAdd(P, VC)
                  : Mode == FmaMode::MulSub ? vSub(P, VC)
                                            : vSub(VC, P));
  }
#endif
  for (; I != N; ++I)
    R[I] = sFma(Mode, A[I * SA], B[I * SB], C[I * SC]);
}

//===----------------------------------------------------------------------===//
// Unary elementwise
//===----------------------------------------------------------------------===//

void unaryNeg(const double *A, double *R, size_t N) {
  size_t I = 0;
#if MVEC_SIMD_WIDTH > 1
  VD SignBit = vSet1(-0.0); // flip only the sign bit: exactly scalar '-x'
  for (; I + W <= N; I += W)
    vStore(R + I, vXor(vLoad(A + I), SignBit));
#endif
  for (; I != N; ++I)
    R[I] = -A[I];
}

void unaryNot(const double *A, double *R, size_t N) {
  size_t I = 0;
#if MVEC_SIMD_WIDTH > 1
  VD One = vSet1(1.0);
  for (; I + W <= N; I += W)
    vStore(R + I, vAnd(vCmpMask(CmpPred::Eq, vLoad(A + I), vZero()), One));
#endif
  for (; I != N; ++I)
    R[I] = A[I] == 0.0 ? 1.0 : 0.0;
}

//===----------------------------------------------------------------------===//
// Blocked matmul inner tile
//===----------------------------------------------------------------------===//

#if MVEC_SIMD_WIDTH == 1

void matMulTile(const double *AD, const double *BD, double *RD, size_t M,
                size_t K, size_t P0, size_t P1, size_t J0, size_t J1) {
  for (size_t J = J0; J != J1; ++J) {
    double *RCol = RD + J * M;
    const double *BCol = BD + J * K;
    for (size_t P = P0; P != P1; ++P) {
      double BV = BCol[P];
      if (BV == 0.0)
        continue;
      const double *ACol = AD + P * M;
      for (size_t I = 0; I != M; ++I)
        RCol[I] += ACol[I] * BV;
    }
  }
}

#else

/// One result column += A panel * one B column, with the scalar kernel's
/// per-P zero skip. Lanes are independent rows; per element the adds over
/// P happen in the same ascending order as the scalar loop.
inline void axpyPanel(const double *AD, const double *BCol, double *RCol,
                      size_t M, size_t P0, size_t P1) {
  for (size_t P = P0; P != P1; ++P) {
    double BV = BCol[P];
    if (BV == 0.0)
      continue;
    const double *ACol = AD + P * M;
    VD VB = vSet1(BV);
    size_t I = 0;
    for (; I + W <= M; I += W)
      vStore(RCol + I, vAdd(vLoad(RCol + I), vMul(vLoad(ACol + I), VB)));
    for (; I != M; ++I)
      RCol[I] += ACol[I] * BV;
  }
}

/// Register-blocked 4-column micro-kernel: accumulators for a 2W x 4 tile
/// of R stay in registers across the whole P panel, and each A load feeds
/// all four columns. Only legal when the panel holds no zero B element —
/// the caller checked, so the scalar kernel's zero-skip can't diverge.
inline void panel4(const double *AD, const double *B0, const double *B1,
                   const double *B2, const double *B3, double *R0, double *R1,
                   double *R2, double *R3, size_t M, size_t P0, size_t P1) {
  size_t I = 0;
  for (; I + 2 * W <= M; I += 2 * W) {
    VD C00 = vLoad(R0 + I), C01 = vLoad(R0 + I + W);
    VD C10 = vLoad(R1 + I), C11 = vLoad(R1 + I + W);
    VD C20 = vLoad(R2 + I), C21 = vLoad(R2 + I + W);
    VD C30 = vLoad(R3 + I), C31 = vLoad(R3 + I + W);
    for (size_t P = P0; P != P1; ++P) {
      const double *ACol = AD + P * M;
      VD A0 = vLoad(ACol + I), A1 = vLoad(ACol + I + W);
      VD VB0 = vSet1(B0[P]);
      C00 = vAdd(C00, vMul(A0, VB0));
      C01 = vAdd(C01, vMul(A1, VB0));
      VD VB1 = vSet1(B1[P]);
      C10 = vAdd(C10, vMul(A0, VB1));
      C11 = vAdd(C11, vMul(A1, VB1));
      VD VB2 = vSet1(B2[P]);
      C20 = vAdd(C20, vMul(A0, VB2));
      C21 = vAdd(C21, vMul(A1, VB2));
      VD VB3 = vSet1(B3[P]);
      C30 = vAdd(C30, vMul(A0, VB3));
      C31 = vAdd(C31, vMul(A1, VB3));
    }
    vStore(R0 + I, C00);
    vStore(R0 + I + W, C01);
    vStore(R1 + I, C10);
    vStore(R1 + I + W, C11);
    vStore(R2 + I, C20);
    vStore(R2 + I + W, C21);
    vStore(R3 + I, C30);
    vStore(R3 + I + W, C31);
  }
  for (; I + W <= M; I += W) {
    VD C0 = vLoad(R0 + I), C1 = vLoad(R1 + I);
    VD C2 = vLoad(R2 + I), C3 = vLoad(R3 + I);
    for (size_t P = P0; P != P1; ++P) {
      VD A0 = vLoad(AD + P * M + I);
      C0 = vAdd(C0, vMul(A0, vSet1(B0[P])));
      C1 = vAdd(C1, vMul(A0, vSet1(B1[P])));
      C2 = vAdd(C2, vMul(A0, vSet1(B2[P])));
      C3 = vAdd(C3, vMul(A0, vSet1(B3[P])));
    }
    vStore(R0 + I, C0);
    vStore(R1 + I, C1);
    vStore(R2 + I, C2);
    vStore(R3 + I, C3);
  }
  for (; I != M; ++I) {
    double Acc0 = R0[I], Acc1 = R1[I], Acc2 = R2[I], Acc3 = R3[I];
    for (size_t P = P0; P != P1; ++P) {
      double AV = AD[P * M + I];
      Acc0 += AV * B0[P];
      Acc1 += AV * B1[P];
      Acc2 += AV * B2[P];
      Acc3 += AV * B3[P];
    }
    R0[I] = Acc0;
    R1[I] = Acc1;
    R2[I] = Acc2;
    R3[I] = Acc3;
  }
}

void matMulTile(const double *AD, const double *BD, double *RD, size_t M,
                size_t K, size_t P0, size_t P1, size_t J0, size_t J1) {
  size_t J = J0;
  for (; J + 4 <= J1; J += 4) {
    const double *B0 = BD + J * K, *B1 = B0 + K, *B2 = B1 + K, *B3 = B2 + K;
    double *R0 = RD + J * M, *R1 = R0 + M, *R2 = R1 + M, *R3 = R2 + M;
    // The register-blocked path cannot honor the per-(column, P) zero
    // skip, so it only runs on zero-free panels; real matrices (rand()
    // payloads) essentially never hit the fallback.
    bool HasZero = false;
    for (size_t P = P0; P != P1 && !HasZero; ++P)
      HasZero =
          B0[P] == 0.0 || B1[P] == 0.0 || B2[P] == 0.0 || B3[P] == 0.0;
    if (!HasZero) {
      panel4(AD, B0, B1, B2, B3, R0, R1, R2, R3, M, P0, P1);
    } else {
      axpyPanel(AD, B0, R0, M, P0, P1);
      axpyPanel(AD, B1, R1, M, P0, P1);
      axpyPanel(AD, B2, R2, M, P0, P1);
      axpyPanel(AD, B3, R3, M, P0, P1);
    }
  }
  for (; J != J1; ++J)
    axpyPanel(AD, BD + J * K, RD + J * M, M, P0, P1);
}

#endif // MVEC_SIMD_WIDTH

//===----------------------------------------------------------------------===//
// Order-preserving reductions
//===----------------------------------------------------------------------===//

#if MVEC_SIMD_WIDTH == 1

#define MVEC_COL_REDUCE(NAME, INIT, SOP)                                      \
  void NAME(const double *AD, size_t Rows, size_t Cols, double *Out) {        \
    for (size_t J = 0; J != Cols; ++J) {                                      \
      double Acc = (INIT);                                                    \
      const double *Col = AD + J * Rows;                                      \
      for (size_t I = 0; I != Rows; ++I)                                      \
        Acc = Acc SOP Col[I];                                                 \
      Out[J] = Acc;                                                           \
    }                                                                         \
  }

#else

// One vector op per reduce kernel so a single macro body serves sums (+)
// and prods (*).
inline VD vVop_colSums(VD A, VD B) { return vAdd(A, B); }
inline VD vVop_colProds(VD A, VD B) { return vMul(A, B); }

#if MVEC_SIMD_WIDTH == 4
#define MVEC_COL_REDUCE_BLOCK(NAME)                                           \
  VD V2 = vLoad(AD + (J + 2) * Rows + I);                                     \
  VD V3 = vLoad(AD + (J + 3) * Rows + I);                                     \
  vTranspose(V0, V1, V2, V3);                                                 \
  Acc = vVop_##NAME(Acc, V0);                                                 \
  Acc = vVop_##NAME(Acc, V1);                                                 \
  Acc = vVop_##NAME(Acc, V2);                                                 \
  Acc = vVop_##NAME(Acc, V3);
#else
#define MVEC_COL_REDUCE_BLOCK(NAME)                                           \
  vTranspose(V0, V1);                                                         \
  Acc = vVop_##NAME(Acc, V0);                                                 \
  Acc = vVop_##NAME(Acc, V1);
#endif

/// Columns reduce in ascending row order per lane; lanes are independent
/// columns, so no accumulation chain is ever reassociated. The WxW
/// transpose turns contiguous column loads into across-column row vectors.
#define MVEC_COL_REDUCE(NAME, INIT, SOP)                                      \
  void NAME(const double *AD, size_t Rows, size_t Cols, double *Out) {        \
    size_t J = 0;                                                             \
    for (; J + W <= Cols; J += W) {                                           \
      VD Acc = vSet1(INIT);                                                   \
      size_t I = 0;                                                           \
      for (; I + W <= Rows; I += W) {                                         \
        VD V0 = vLoad(AD + (J + 0) * Rows + I);                               \
        VD V1 = vLoad(AD + (J + 1) * Rows + I);                               \
        MVEC_COL_REDUCE_BLOCK(NAME)                                           \
      }                                                                       \
      for (; I != Rows; ++I)                                                  \
        Acc = vVop_##NAME(Acc, vGatherStride(AD + J * Rows + I, Rows));       \
      vStore(Out + J, Acc);                                                   \
    }                                                                         \
    for (; J != Cols; ++J) {                                                  \
      double Acc = (INIT);                                                    \
      const double *Col = AD + J * Rows;                                      \
      for (size_t I = 0; I != Rows; ++I)                                      \
        Acc = Acc SOP Col[I];                                                 \
      Out[J] = Acc;                                                           \
    }                                                                         \
  }

#endif // MVEC_SIMD_WIDTH

MVEC_COL_REDUCE(colSums, 0.0, +)
MVEC_COL_REDUCE(colProds, 1.0, *)

#undef MVEC_COL_REDUCE
#ifdef MVEC_COL_REDUCE_BLOCK
#undef MVEC_COL_REDUCE_BLOCK
#endif

void rowSums(const double *AD, size_t Rows, size_t Cols, double *Out) {
  size_t I = 0;
#if MVEC_SIMD_WIDTH > 1
  for (; I + W <= Rows; I += W) {
    VD Acc = vZero();
    for (size_t J = 0; J != Cols; ++J)
      Acc = vAdd(Acc, vLoad(AD + J * Rows + I));
    vStore(Out + I, Acc);
  }
#endif
  for (; I != Rows; ++I) {
    double Acc = 0.0;
    for (size_t J = 0; J != Cols; ++J)
      Acc += AD[J * Rows + I];
    Out[I] = Acc;
  }
}

/// Running sums down each column. The chain is serial per column and the
/// lanes would walk strided memory, so every width shares the portable
/// loop (listed in the table so callers need no special case).
void cumsumDim1(const double *AD, size_t Rows, size_t Cols, double *Out) {
  for (size_t J = 0; J != Cols; ++J) {
    double Acc = 0.0;
    const double *Col = AD + J * Rows;
    double *OutCol = Out + J * Rows;
    for (size_t I = 0; I != Rows; ++I) {
      Acc += Col[I];
      OutCol[I] = Acc;
    }
  }
}

void cumsumDim2(const double *AD, size_t Rows, size_t Cols, double *Out) {
  size_t I = 0;
#if MVEC_SIMD_WIDTH > 1
  for (; I + W <= Rows; I += W) {
    VD Acc = vZero();
    for (size_t J = 0; J != Cols; ++J) {
      Acc = vAdd(Acc, vLoad(AD + J * Rows + I));
      vStore(Out + J * Rows + I, Acc);
    }
  }
#endif
  for (; I != Rows; ++I) {
    double Acc = 0.0;
    for (size_t J = 0; J != Cols; ++J) {
      Acc += AD[J * Rows + I];
      Out[J * Rows + I] = Acc;
    }
  }
}

} // namespace
} // namespace MVEC_SIMD_IMPL_NS

namespace detail {

const KernelTable &MVEC_SIMD_TABLE_ACCESSOR() {
  static const KernelTable Table = {
      MVEC_SIMD_IMPL_LEVEL,
      MVEC_SIMD_IMPL_NAME,
      &MVEC_SIMD_IMPL_NS::ewAdd,
      &MVEC_SIMD_IMPL_NS::ewSub,
      &MVEC_SIMD_IMPL_NS::ewMul,
      &MVEC_SIMD_IMPL_NS::ewDiv,
      &MVEC_SIMD_IMPL_NS::ewCmp,
      &MVEC_SIMD_IMPL_NS::fusedMulAdd,
      &MVEC_SIMD_IMPL_NS::unaryNeg,
      &MVEC_SIMD_IMPL_NS::unaryNot,
      &MVEC_SIMD_IMPL_NS::matMulTile,
      &MVEC_SIMD_IMPL_NS::colSums,
      &MVEC_SIMD_IMPL_NS::colProds,
      &MVEC_SIMD_IMPL_NS::rowSums,
      &MVEC_SIMD_IMPL_NS::cumsumDim1,
      &MVEC_SIMD_IMPL_NS::cumsumDim2,
  };
  return Table;
}

} // namespace detail
} // namespace mvec::simd
