//===- SimdDispatch.cpp - cpuid-based kernel table selection --------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/simd/SimdDispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mvec::simd {

namespace detail {
const KernelTable &scalarTable();
#ifdef MVEC_SIMD_X86
const KernelTable &sse2Table();
const KernelTable &sse41Table();
const KernelTable &avx2Table();
#endif
} // namespace detail

namespace {

const KernelTable *tableFor(Level L) {
  switch (L) {
  case Level::Scalar:
    return &detail::scalarTable();
#ifdef MVEC_SIMD_X86
  case Level::Sse2:
    return &detail::sse2Table();
  case Level::Sse41:
    return &detail::sse41Table();
  case Level::Avx2:
    return &detail::avx2Table();
#else
  default:
    break;
#endif
  }
  return nullptr;
}

bool cpuSupports(Level L) {
  switch (L) {
  case Level::Scalar:
    return true;
#ifdef MVEC_SIMD_X86
  case Level::Sse2:
    return __builtin_cpu_supports("sse2");
  case Level::Sse41:
    return __builtin_cpu_supports("sse4.1");
  case Level::Avx2:
    // AVX2 kernels also use AVX encodings of the 128-bit ops; the OS must
    // save ymm state, which cpu_supports("avx2") implies on GCC/Clang.
    return __builtin_cpu_supports("avx2");
#else
  default:
    return false;
#endif
  }
  return false;
}

/// The active table. Null until first use; kernels() initializes it from
/// detection + MVEC_SIMD, tools may re-point it via setLevel().
std::atomic<const KernelTable *> ActiveTable{nullptr};
std::once_flag InitOnce;

void initFromEnvironment() {
  Level Chosen = bestSupportedLevel();
  if (const char *Env = std::getenv("MVEC_SIMD"); Env && *Env) {
    Level EnvLevel = Level::Scalar;
    bool Parsed = true;
    std::string Spec(Env);
    if (Spec == "auto" || Spec == "best")
      EnvLevel = bestSupportedLevel();
    else if (Spec == "scalar")
      EnvLevel = Level::Scalar;
    else if (Spec == "sse2")
      EnvLevel = Level::Sse2;
    else if (Spec == "sse41")
      EnvLevel = Level::Sse41;
    else if (Spec == "avx2")
      EnvLevel = Level::Avx2;
    else
      Parsed = false;
    if (!Parsed) {
      std::fprintf(stderr,
                   "mvec: ignoring MVEC_SIMD=%s (expected %s); using %s\n",
                   Env, flagValues(), levelName(Chosen));
    } else if (!levelSupported(EnvLevel)) {
      std::fprintf(
          stderr,
          "mvec: MVEC_SIMD=%s not supported on this host/build; using %s\n",
          Env, levelName(Chosen));
    } else {
      Chosen = EnvLevel;
    }
  }
  ActiveTable.store(tableFor(Chosen), std::memory_order_release);
}

} // namespace

DispatchCounters &dispatchCounters() {
  static DispatchCounters Counters;
  return Counters;
}

const KernelTable &kernels() {
  const KernelTable *T = ActiveTable.load(std::memory_order_acquire);
  if (T)
    return *T;
  std::call_once(InitOnce, initFromEnvironment);
  return *ActiveTable.load(std::memory_order_acquire);
}

Level activeLevel() { return kernels().Isa; }

const char *levelName(Level L) {
  switch (L) {
  case Level::Scalar:
    return "scalar";
  case Level::Sse2:
    return "sse2";
  case Level::Sse41:
    return "sse41";
  case Level::Avx2:
    return "avx2";
  }
  return "?";
}

std::vector<Level> compiledLevels() {
  std::vector<Level> Levels{Level::Scalar};
#ifdef MVEC_SIMD_X86
  Levels.push_back(Level::Sse2);
  Levels.push_back(Level::Sse41);
  Levels.push_back(Level::Avx2);
#endif
  return Levels;
}

bool levelSupported(Level L) { return tableFor(L) && cpuSupports(L); }

Level bestSupportedLevel() {
  Level Best = Level::Scalar;
#ifdef MVEC_SIMD_X86
  for (Level L : {Level::Sse2, Level::Sse41, Level::Avx2})
    if (levelSupported(L))
      Best = L;
#endif
  return Best;
}

bool setLevel(Level L, std::string *Err) {
  if (!levelSupported(L)) {
    if (Err)
      *Err = std::string("simd level '") + levelName(L) +
             "' is not supported on this host/build";
    return false;
  }
  // Ensure first-use init can't race in later and clobber the pin.
  std::call_once(InitOnce, initFromEnvironment);
  ActiveTable.store(tableFor(L), std::memory_order_release);
  return true;
}

bool configureFromString(const std::string &Spec, std::string *Err) {
  if (Spec == "auto" || Spec == "best")
    return setLevel(bestSupportedLevel(), Err);
  if (Spec == "scalar")
    return setLevel(Level::Scalar, Err);
  if (Spec == "sse2")
    return setLevel(Level::Sse2, Err);
  if (Spec == "sse41")
    return setLevel(Level::Sse41, Err);
  if (Spec == "avx2")
    return setLevel(Level::Avx2, Err);
  if (Err)
    *Err = "unknown simd level '" + Spec + "' (expected " + flagValues() + ")";
  return false;
}

bool handleSimdFlag(int Argc, char **Argv, int &I) {
  const char *Arg = Argv[I];
  if (std::strncmp(Arg, "--simd", 6) != 0)
    return false;
  const char *Spec;
  if (Arg[6] == '=')
    Spec = Arg + 7;
  else if (Arg[6] == '\0' && I + 1 < Argc)
    Spec = Argv[++I];
  else if (Arg[6] == '\0') {
    std::fprintf(stderr, "error: --simd requires a level (%s)\n",
                 flagValues());
    std::exit(2);
  } else
    return false; // e.g. some future --simd-foo flag
  std::string Err;
  if (!configureFromString(Spec, &Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    std::exit(2);
  }
  return true;
}

} // namespace mvec::simd
