//===- Builtins.h - MATLAB builtin functions --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin function table of the interpreter. These are the "efficient
/// intrinsics" the vectorizer targets (size, sum, cumsum, repmat, ...).
///
/// Builtins are identified by a dense BuiltinId so the interpreter can
/// resolve a call-site name once (during its pre-pass) and dispatch through
/// an index instead of a per-call string comparison.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_BUILTINS_H
#define MVEC_INTERP_BUILTINS_H

#include "interp/Value.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mvec {

class Interpreter;

/// Index into the builtin dispatch table. Values >= 0 are valid builtins;
/// InvalidBuiltinId means "not a builtin".
using BuiltinId = int16_t;
inline constexpr BuiltinId InvalidBuiltinId = -1;

/// Resolves \p Name to its table index, or InvalidBuiltinId.
BuiltinId builtinIdFor(const std::string &Name);

/// True when \p Name is a builtin function known to the interpreter.
inline bool isBuiltinName(const std::string &Name) {
  return builtinIdFor(Name) != InvalidBuiltinId;
}

/// Invokes builtin \p Id (from builtinIdFor) with already-evaluated \p Args.
/// Reports problems through the interpreter's fail state.
Value callBuiltin(Interpreter &Interp, BuiltinId Id,
                  const std::vector<Value> &Args, SourceLoc Loc);

/// Name-keyed convenience wrapper around the ID form.
Value callBuiltin(Interpreter &Interp, const std::string &Name,
                  const std::vector<Value> &Args, SourceLoc Loc);

/// Names of every registered builtin, sorted (used by analyses that must
/// decide whether an identifier is a function or an array).
std::vector<std::string> builtinNames();

} // namespace mvec

#endif // MVEC_INTERP_BUILTINS_H
