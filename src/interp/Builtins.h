//===- Builtins.h - MATLAB builtin functions --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin function table of the interpreter. These are the "efficient
/// intrinsics" the vectorizer targets (size, sum, cumsum, repmat, ...).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_INTERP_BUILTINS_H
#define MVEC_INTERP_BUILTINS_H

#include "interp/Value.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace mvec {

class Interpreter;

/// True when \p Name is a builtin function known to the interpreter.
bool isBuiltinName(const std::string &Name);

/// Invokes builtin \p Name with already-evaluated \p Args. Reports problems
/// through the interpreter's fail state.
Value callBuiltin(Interpreter &Interp, const std::string &Name,
                  const std::vector<Value> &Args, SourceLoc Loc);

/// Names of every registered builtin (used by analyses that must decide
/// whether an identifier is a function or an array).
std::vector<std::string> builtinNames();

} // namespace mvec

#endif // MVEC_INTERP_BUILTINS_H
