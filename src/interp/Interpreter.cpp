//===- Interpreter.cpp - MATLAB interpreter --------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "frontend/ASTUtils.h"
#include "interp/Builtins.h"

#include <cmath>

using namespace mvec;

void Interpreter::fail(SourceLoc Loc, std::string Message) {
  if (Failed)
    return;
  Failed = true;
  ErrorMsg = std::move(Message);
  ErrorLoc = Loc;
}

double Interpreter::nextRandom() {
  // xorshift64*: deterministic, seedable, good enough for workloads.
  RandState ^= RandState >> 12;
  RandState ^= RandState << 25;
  RandState ^= RandState >> 27;
  uint64_t Bits = RandState * 0x2545F4914F6CDD1Dull;
  return static_cast<double>(Bits >> 11) * (1.0 / 9007199254740992.0);
}

bool Interpreter::run(const Program &P) {
  execBody(P.Stmts);
  return !Failed;
}

Interpreter::Flow Interpreter::execBody(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body) {
    Flow F = execStmt(*S);
    if (Failed)
      return Flow::Return;
    if (F != Flow::Normal)
      return F;
  }
  return Flow::Normal;
}

bool Interpreter::checkInterrupt(SourceLoc Loc) {
  if (Failed)
    return true;
  if (StepLimit != 0 && Steps > StepLimit) {
    Interrupt = InterruptKind::StepLimit;
    fail(Loc, "execution step limit exceeded");
    return true;
  }
  if (CancelFlag && CancelFlag->load(std::memory_order_relaxed)) {
    Interrupt = InterruptKind::Cancelled;
    fail(Loc, "execution cancelled");
    return true;
  }
  if (DeadlineTp && std::chrono::steady_clock::now() >= *DeadlineTp) {
    Interrupt = InterruptKind::Deadline;
    fail(Loc, "execution deadline exceeded");
    return true;
  }
  return false;
}

Interpreter::Flow Interpreter::execStmt(const Stmt &S) {
  ++Steps;
  // The step limit must catch the exact overflowing statement (property
  // tests rely on it); the clock and cancel-flag polls are amortized over
  // a few statements to keep the hot interpret loop cheap.
  if (StepLimit != 0 && Steps > StepLimit) {
    Interrupt = InterruptKind::StepLimit;
    fail(S.loc(), "execution step limit exceeded");
    return Flow::Return;
  }
  if ((CancelFlag || DeadlineTp) && (Steps & 0xF) == 0 &&
      checkInterrupt(S.loc()))
    return Flow::Return;
  switch (S.kind()) {
  case Stmt::Kind::Assign:
    execAssign(cast<AssignStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::Expr:
    eval(*cast<ExprStmt>(S).expr());
    return Flow::Normal;
  case Stmt::Kind::For:
    return execFor(cast<ForStmt>(S));
  case Stmt::Kind::While:
    return execWhile(cast<WhileStmt>(S));
  case Stmt::Kind::If:
    return execIf(cast<IfStmt>(S));
  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  case Stmt::Kind::Return:
    return Flow::Return;
  }
  return Flow::Normal;
}

Interpreter::Flow Interpreter::execFor(const ForStmt &S) {
  Value RangeV = eval(*S.range());
  if (Failed)
    return Flow::Return;
  // MATLAB iterates over the columns of the range value.
  size_t NumIters = RangeV.isEmpty() ? 0 : RangeV.cols();
  for (size_t Col = 0; Col != NumIters; ++Col) {
    if (RangeV.rows() == 1) {
      Vars[S.indexVar()] = Value::scalar(RangeV.at(0, Col));
    } else {
      Value Slice(RangeV.rows(), 1);
      for (size_t R = 0; R != RangeV.rows(); ++R)
        Slice.at(R, 0) = RangeV.at(R, Col);
      Vars[S.indexVar()] = std::move(Slice);
    }
    Flow F = execBody(S.body());
    if (Failed || F == Flow::Return)
      return Flow::Return;
    if (F == Flow::Break)
      break;
  }
  return Flow::Normal;
}

Interpreter::Flow Interpreter::execWhile(const WhileStmt &S) {
  while (true) {
    Value Cond = eval(*S.cond());
    if (Failed)
      return Flow::Return;
    if (!Cond.isTrue())
      return Flow::Normal;
    Flow F = execBody(S.body());
    if (Failed || F == Flow::Return)
      return Flow::Return;
    if (F == Flow::Break)
      return Flow::Normal;
  }
}

Interpreter::Flow Interpreter::execIf(const IfStmt &S) {
  for (const IfStmt::Branch &B : S.branches()) {
    bool Taken = true;
    if (B.Cond) {
      Value Cond = eval(*B.Cond);
      if (Failed)
        return Flow::Return;
      Taken = Cond.isTrue();
    }
    if (Taken)
      return execBody(B.Body);
  }
  return Flow::Normal;
}

void Interpreter::execAssign(const AssignStmt &S) {
  Value RHS = eval(*S.rhs());
  if (Failed)
    return;
  if (const auto *Ident = dyn_cast<IdentExpr>(S.lhs())) {
    Vars[Ident->name()] = std::move(RHS);
    checkShapeCap(Ident->name(), S.loc());
    return;
  }
  const auto *Index = dyn_cast<IndexExpr>(S.lhs());
  if (!Index || Index->baseName().empty()) {
    fail(S.loc(), "invalid assignment target");
    return;
  }
  Value &Target = Vars[Index->baseName()]; // creates [] when absent
  writeIndexed(Target, *Index, RHS);
  checkShapeCap(Index->baseName(), S.loc());
}

void Interpreter::checkShapeCap(const std::string &Name, SourceLoc Loc) {
  if (ShapeCaps.empty() || Failed)
    return;
  auto It = ShapeCaps.find(Name);
  if (It == ShapeCaps.end())
    return;
  const Value *V = getVariable(Name);
  if (!V)
    return;
  if ((It->second.first && V->rows() > 1) ||
      (It->second.second && V->cols() > 1))
    fail(Loc, "variable '" + Name + "' exceeds its annotated shape (" +
                  std::to_string(V->rows()) + "x" +
                  std::to_string(V->cols()) + ")");
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

Value Interpreter::eval(const Expr &E) {
  if (Failed)
    return Value();
  switch (E.kind()) {
  case Expr::Kind::Number:
    return Value::scalar(cast<NumberExpr>(E).value());
  case Expr::Kind::String: {
    // Strings become char-code row vectors (enough for fprintf/disp).
    const std::string &S = cast<StringExpr>(E).value();
    std::vector<double> Codes(S.begin(), S.end());
    return Value::vector(std::move(Codes), /*Row=*/true);
  }
  case Expr::Kind::Ident: {
    const auto &Ident = cast<IdentExpr>(E);
    if (const Value *V = getVariable(Ident.name()))
      return *V;
    if (Ident.name() == "pi")
      return Value::scalar(3.14159265358979323846);
    // Zero-argument builtin call without parens (e.g. rand).
    if (isBuiltinName(Ident.name()))
      return callBuiltin(*this, Ident.name(), {}, E.loc());
    fail(E.loc(), "undefined variable '" + Ident.name() + "'");
    return Value();
  }
  case Expr::Kind::MagicColon:
    fail(E.loc(), "':' is only valid inside a subscript");
    return Value();
  case Expr::Kind::EndKeyword:
    fail(E.loc(), "'end' outside of a subscript");
    return Value();
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    Value Start = eval(*R.start());
    Value Step = R.step() ? eval(*R.step()) : Value::scalar(1.0);
    Value Stop = eval(*R.stop());
    if (Failed)
      return Value();
    if (!Start.isScalar() || !Step.isScalar() || !Stop.isScalar()) {
      fail(E.loc(), "range endpoints must be scalars");
      return Value();
    }
    OpError Err;
    Value Result = makeRange(Start.scalarValue(), Step.scalarValue(),
                             Stop.scalarValue(), Err);
    if (Err.failed())
      fail(E.loc(), Err.Message);
    return Result;
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    Value Operand = eval(*U.operand());
    if (Failed)
      return Value();
    switch (U.op()) {
    case UnaryOp::Plus:
      return Operand;
    case UnaryOp::Minus:
      return unaryMinus(Operand);
    case UnaryOp::Not:
      return unaryNot(Operand);
    }
    return Value();
  }
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Transpose: {
    Value Operand = eval(*cast<TransposeExpr>(E).operand());
    if (Failed)
      return Value();
    return Operand.transposed();
  }
  case Expr::Kind::Index:
    return evalIndexOrCall(cast<IndexExpr>(E));
  case Expr::Kind::Matrix:
    return evalMatrixLiteral(cast<MatrixExpr>(E));
  }
  return Value();
}

Value Interpreter::evalBinary(const BinaryExpr &E) {
  // Short-circuit logical operators first.
  if (E.op() == BinaryOp::AndAnd || E.op() == BinaryOp::OrOr) {
    Value LHS = eval(*E.lhs());
    if (Failed)
      return Value();
    bool LTrue = LHS.isTrue();
    if (E.op() == BinaryOp::AndAnd && !LTrue)
      return Value::scalar(0.0);
    if (E.op() == BinaryOp::OrOr && LTrue)
      return Value::scalar(1.0);
    Value RHS = eval(*E.rhs());
    if (Failed)
      return Value();
    return Value::scalar(RHS.isTrue() ? 1.0 : 0.0);
  }

  Value LHS = eval(*E.lhs());
  Value RHS = eval(*E.rhs());
  if (Failed)
    return Value();

  OpError Err;
  Value Result;
  switch (E.op()) {
  case BinaryOp::Mul:
    Result = mulOp(LHS, RHS, Err);
    break;
  case BinaryOp::Div:
    Result = divOp(LHS, RHS, Err);
    break;
  case BinaryOp::Pow:
    Result = powOp(LHS, RHS, Err);
    break;
  default:
    Result = elementwiseBinary(E.op(), LHS, RHS, Err);
    break;
  }
  if (Err.failed())
    fail(E.loc(), Err.Message);
  return Result;
}

Value Interpreter::evalMatrixLiteral(const MatrixExpr &E) {
  OpError Err;
  Value Result;
  bool FirstRow = true;
  for (const MatrixExpr::Row &Row : E.rows()) {
    Value RowValue;
    bool FirstElt = true;
    for (const ExprPtr &Elt : Row) {
      Value V = eval(*Elt);
      if (Failed)
        return Value();
      if (FirstElt) {
        RowValue = std::move(V);
        FirstElt = false;
      } else {
        RowValue = horzcat(RowValue, V, Err);
      }
    }
    if (FirstRow) {
      Result = std::move(RowValue);
      FirstRow = false;
    } else {
      Result = vertcat(Result, RowValue, Err);
    }
  }
  if (Err.failed())
    fail(E.loc(), Err.Message);
  return Result;
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

Value Interpreter::evalSubscript(const Expr &Arg, size_t Extent) {
  if (isa<MagicColonExpr>(&Arg)) {
    Value All(1, Extent);
    for (size_t I = 0; I != Extent; ++I)
      All.linear(I) = static_cast<double>(I + 1);
    return All;
  }
  if (!mentionsEndKeyword(Arg))
    return eval(Arg);
  ExprPtr Rewritten =
      replaceEndKeyword(Arg.clone(), static_cast<double>(Extent));
  return eval(*Rewritten);
}

bool Interpreter::toIndices(const Value &Idx, size_t Extent,
                            std::vector<size_t> &Out, SourceLoc Loc) {
  Out.clear();
  // Logical subscripts select by mask (MATLAB logical indexing).
  if (Idx.isLogical()) {
    if (Idx.numel() > Extent) {
      fail(Loc, "logical index has too many elements (" +
                    std::to_string(Idx.numel()) + " for extent " +
                    std::to_string(Extent) + ")");
      return false;
    }
    for (size_t I = 0, E = Idx.numel(); I != E; ++I)
      if (Idx.linear(I) != 0.0)
        Out.push_back(I);
    return true;
  }
  Out.reserve(Idx.numel());
  for (size_t I = 0, E = Idx.numel(); I != E; ++I) {
    double D = Idx.linear(I);
    // The finiteness check matters: floor(Inf) == Inf passes the
    // integer test, and casting Inf to size_t is undefined behavior
    // that turns into an out-of-bounds read.
    if (!std::isfinite(D) || D < 1.0 || D != std::floor(D)) {
      fail(Loc, "subscript indices must be positive integers");
      return false;
    }
    auto Index = static_cast<size_t>(D);
    if (Index > Extent) {
      fail(Loc, "index " + std::to_string(Index) +
                    " exceeds matrix dimension (" + std::to_string(Extent) +
                    ")");
      return false;
    }
    Out.push_back(Index - 1);
  }
  return true;
}

Value Interpreter::readIndexed(const Value &Base, const IndexExpr &E) {
  if (E.numArgs() == 0)
    return Base; // f() with a variable f is just the value.

  if (E.numArgs() == 1) {
    // Linear (column-major) indexing. A(:) flattens to a column.
    if (isa<MagicColonExpr>(E.arg(0))) {
      Value Result = Base;
      Result.reshapeTo(Base.numel(), Base.numel() ? 1 : 0);
      return Result;
    }
    Value Idx = evalSubscript(*E.arg(0), Base.numel());
    if (Failed)
      return Value();
    std::vector<size_t> Indices;
    if (!toIndices(Idx, Base.numel(), Indices, E.loc()))
      return Value();
    // Result shape: like the index, except that vector(A)(vector idx)
    // follows A's orientation; mask selection yields a column unless the
    // base is a row.
    size_t R = Idx.rows(), C = Idx.cols();
    if (Idx.isLogical()) {
      if (Base.isRow()) {
        R = 1;
        C = Indices.size();
      } else {
        R = Indices.size();
        C = Indices.empty() ? 0 : 1;
      }
    } else if (Base.isVector() && Idx.isVector()) {
      if (Base.isRow()) {
        R = 1;
        C = Indices.size();
      } else {
        R = Indices.size();
        C = 1;
      }
    }
    Value Result(R, C);
    for (size_t I = 0; I != Indices.size(); ++I)
      Result.linear(I) = Base.linear(Indices[I]);
    Result.setLogical(Base.isLogical());
    return Result;
  }

  if (E.numArgs() == 2) {
    Value RowIdx = evalSubscript(*E.arg(0), Base.rows());
    Value ColIdx = evalSubscript(*E.arg(1), Base.cols());
    if (Failed)
      return Value();
    std::vector<size_t> RI, CI;
    if (!toIndices(RowIdx, Base.rows(), RI, E.loc()) ||
        !toIndices(ColIdx, Base.cols(), CI, E.loc()))
      return Value();
    Value Result(RI.size(), CI.size());
    for (size_t C = 0; C != CI.size(); ++C)
      for (size_t R = 0; R != RI.size(); ++R)
        Result.at(R, C) = Base.at(RI[R], CI[C]);
    Result.setLogical(Base.isLogical());
    return Result;
  }

  fail(E.loc(), "N-dimensional indexing is not supported");
  return Value();
}

void Interpreter::writeIndexed(Value &Target, const IndexExpr &LHS,
                               const Value &RHS) {
  if (LHS.numArgs() == 0) {
    fail(LHS.loc(), "invalid indexed assignment");
    return;
  }

  if (LHS.numArgs() == 1) {
    if (isa<MagicColonExpr>(LHS.arg(0))) {
      // A(:) = B requires matching element count or scalar B.
      if (RHS.isScalar()) {
        for (size_t I = 0, E = Target.numel(); I != E; ++I)
          Target.linear(I) = RHS.scalarValue();
        return;
      }
      if (RHS.numel() != Target.numel()) {
        fail(LHS.loc(), "A(:) assignment requires matching element counts");
        return;
      }
      for (size_t I = 0, E = Target.numel(); I != E; ++I)
        Target.linear(I) = RHS.linear(I);
      return;
    }
    Value Idx = evalSubscript(*LHS.arg(0), Target.numel());
    if (Failed)
      return;
    if (Idx.isLogical()) {
      std::vector<size_t> Indices;
      if (!toIndices(Idx, Target.numel(), Indices, LHS.loc()))
        return;
      if (!RHS.isScalar() && RHS.numel() != Indices.size()) {
        fail(LHS.loc(), "masked assignment size mismatch");
        return;
      }
      for (size_t I = 0; I != Indices.size(); ++I)
        Target.linear(Indices[I]) =
            RHS.isScalar() ? RHS.scalarValue() : RHS.linear(I);
      return;
    }
    // Determine whether growth is needed and legal.
    double MaxIdx = 0;
    for (size_t I = 0, E = Idx.numel(); I != E; ++I)
      MaxIdx = std::fmax(MaxIdx, Idx.linear(I));
    if (MaxIdx > static_cast<double>(Target.numel())) {
      auto Needed = static_cast<size_t>(MaxIdx);
      if (Target.rows() == 0 && Target.cols() <= 1) {
        // x(5) = v on a 0x0 x yields a row vector, unless the index
        // values come as a column. A 0x1 empty takes the same path:
        // element-at-a-time growth necessarily passes through a 1x1
        // value (which then widens into a row), so slice growth must
        // agree or the two orders of writing the same elements would
        // produce different shapes. Degenerate empties with a wider
        // dimension (e.g. zeros(7,0)) are matrices and fall through to
        // the growth error below, as in MATLAB.
        if (Idx.isColumn() && Idx.numel() > 1)
          Target.growTo(Needed, 1);
        else
          Target.growTo(1, Needed);
      } else if (Target.rows() == 1) {
        Target.growTo(1, Needed);
      } else if (Target.cols() == 1) {
        Target.growTo(Needed, 1);
      } else {
        fail(LHS.loc(),
             "linear indexed assignment cannot grow a matrix");
        return;
      }
    }
    std::vector<size_t> Indices;
    if (!toIndices(Idx, Target.numel(), Indices, LHS.loc()))
      return;
    if (!RHS.isScalar() && RHS.numel() != Indices.size()) {
      fail(LHS.loc(), "indexed assignment size mismatch");
      return;
    }
    for (size_t I = 0; I != Indices.size(); ++I)
      Target.linear(Indices[I]) =
          RHS.isScalar() ? RHS.scalarValue() : RHS.linear(I);
    return;
  }

  if (LHS.numArgs() == 2) {
    Value RowIdx = evalSubscript(*LHS.arg(0), Target.rows());
    Value ColIdx = evalSubscript(*LHS.arg(1), Target.cols());
    if (Failed)
      return;
    double MaxRow = 0, MaxCol = 0;
    for (size_t I = 0, E = RowIdx.numel(); I != E; ++I)
      MaxRow = std::fmax(MaxRow, RowIdx.linear(I));
    for (size_t I = 0, E = ColIdx.numel(); I != E; ++I)
      MaxCol = std::fmax(MaxCol, ColIdx.linear(I));
    if (MaxRow > static_cast<double>(Target.rows()) ||
        MaxCol > static_cast<double>(Target.cols()))
      Target.growTo(static_cast<size_t>(std::fmax(
                        MaxRow, static_cast<double>(Target.rows()))),
                    static_cast<size_t>(std::fmax(
                        MaxCol, static_cast<double>(Target.cols()))));
    std::vector<size_t> RI, CI;
    if (!toIndices(RowIdx, Target.rows(), RI, LHS.loc()) ||
        !toIndices(ColIdx, Target.cols(), CI, LHS.loc()))
      return;
    if (!RHS.isScalar() && RHS.numel() != RI.size() * CI.size()) {
      fail(LHS.loc(), "indexed assignment size mismatch");
      return;
    }
    size_t Flat = 0;
    for (size_t C = 0; C != CI.size(); ++C)
      for (size_t R = 0; R != RI.size(); ++R) {
        Target.at(RI[R], CI[C]) =
            RHS.isScalar() ? RHS.scalarValue() : RHS.linear(Flat);
        ++Flat;
      }
    return;
  }

  fail(LHS.loc(), "N-dimensional indexed assignment is not supported");
}

Value Interpreter::evalIndexOrCall(const IndexExpr &E) {
  std::string Name = E.baseName();
  if (Name.empty()) {
    // Expression base: evaluate it and index the result, e.g. (A*B)(1,2) is
    // not MATLAB syntax, but transposed bases appear via rewrites.
    Value Base = eval(*E.base());
    if (Failed)
      return Value();
    return readIndexed(Base, E);
  }
  if (const Value *Var = getVariable(Name))
    return readIndexed(*Var, E);
  if (isBuiltinName(Name)) {
    std::vector<Value> Args;
    Args.reserve(E.numArgs());
    for (unsigned I = 0, N = E.numArgs(); I != N; ++I) {
      if (isa<MagicColonExpr>(E.arg(I)) || isa<EndKeywordExpr>(E.arg(I))) {
        fail(E.loc(), "':' and 'end' are not valid function arguments");
        return Value();
      }
      Args.push_back(eval(*E.arg(I)));
      if (Failed)
        return Value();
    }
    return callBuiltin(*this, Name, Args, E.loc());
  }
  fail(E.loc(), "undefined function or variable '" + Name + "'");
  return Value();
}

//===----------------------------------------------------------------------===//
// Workspace comparison
//===----------------------------------------------------------------------===//

std::string mvec::compareWorkspaces(const Interpreter &A, const Interpreter &B,
                                    double Tol) {
  for (const auto &[Name, ValueA] : A.workspace()) {
    const Value *ValueB = B.getVariable(Name);
    if (!ValueB)
      return "variable '" + Name + "' missing from second workspace";
    if (!ValueA.equals(*ValueB, Tol))
      return "variable '" + Name + "' differs: " + ValueA.str() + " vs " +
             ValueB->str();
  }
  for (const auto &[Name, ValueB] : B.workspace()) {
    (void)ValueB;
    if (!A.getVariable(Name))
      return "variable '" + Name + "' missing from first workspace";
  }
  return std::string();
}
