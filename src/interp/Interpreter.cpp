//===- Interpreter.cpp - MATLAB interpreter --------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "frontend/ASTUtils.h"
#include "interp/Builtins.h"

#include <cmath>

using namespace mvec;

void Interpreter::fail(SourceLoc Loc, std::string Message) {
  if (Failed)
    return;
  Failed = true;
  ErrorMsg = std::move(Message);
  ErrorLoc = Loc;
}

double Interpreter::nextRandom() {
  // xorshift64*: deterministic, seedable, good enough for workloads.
  RandState ^= RandState >> 12;
  RandState ^= RandState << 25;
  RandState ^= RandState >> 27;
  uint64_t Bits = RandState * 0x2545F4914F6CDD1Dull;
  return static_cast<double>(Bits >> 11) * (1.0 / 9007199254740992.0);
}

//===----------------------------------------------------------------------===//
// Pre-pass: name interning and builtin resolution
//===----------------------------------------------------------------------===//

void Interpreter::prepare(const Program &P) {
  NodeCache.clear();
  auto NoteName = [&](const void *Node, const std::string &Name) {
    NodeInfo Info;
    Info.Slot = static_cast<int>(Env.intern(Name));
    Info.Builtin = builtinIdFor(Name);
    Info.IsPi = Name == "pi";
    NodeCache.insert(Node, Info);
  };
  auto NoteExpr = [&](const Expr &E) {
    if (const auto *Ident = dyn_cast<IdentExpr>(&E)) {
      NoteName(Ident, Ident->name());
    } else if (const auto *Index = dyn_cast<IndexExpr>(&E)) {
      std::string Base = Index->baseName();
      if (!Base.empty())
        NoteName(Index, Base);
    }
  };
  visitStmts(P.Stmts, [&](const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(S);
      visitExpr(*A.lhs(), NoteExpr);
      visitExpr(*A.rhs(), NoteExpr);
      break;
    }
    case Stmt::Kind::Expr:
      visitExpr(*cast<ExprStmt>(S).expr(), NoteExpr);
      break;
    case Stmt::Kind::For: {
      const auto &F = cast<ForStmt>(S);
      NodeInfo Info;
      Info.Slot = static_cast<int>(Env.intern(F.indexVar()));
      NodeCache.insert(&S, Info);
      visitExpr(*F.range(), NoteExpr);
      break;
    }
    case Stmt::Kind::While:
      visitExpr(*cast<WhileStmt>(S).cond(), NoteExpr);
      break;
    case Stmt::Kind::If:
      for (const IfStmt::Branch &B : cast<IfStmt>(S).branches())
        if (B.Cond)
          visitExpr(*B.Cond, NoteExpr);
      break;
    default:
      break;
    }
  });
}

namespace {
/// OpWorkspace poll trampoline: long kernels call this between chunks so
/// deadlines, cancellation, and armed kernel-poll faults land mid-kernel.
bool interpKernelPoll(void *Ctx) {
  auto *I = static_cast<Interpreter *>(Ctx);
  maybeInject(FaultSite::KernelPoll);
  return I->checkInterrupt(SourceLoc());
}
} // namespace

void Interpreter::engineBegin() {
  FaultCtx = detail::tlsFaultContext();
  // Only arm the in-kernel poll when something could actually interrupt:
  // the disarmed configuration must stay at benchmark-identical cost.
  if (CancelFlag || DeadlineTp || FaultCtx)
    Pool.setPollHook(&interpKernelPoll, this);
}

void Interpreter::engineEnd() {
  Pool.setPollHook(nullptr, nullptr);
  FaultCtx = nullptr;
}

bool Interpreter::run(const Program &P) {
  engineBegin();
  prepare(P);
  try {
    execBody(P.Stmts);
  } catch (...) {
    // Injected faults and resource-budget exhaustion unwind through here;
    // leave the interpreter reusable before letting the job layer classify
    // the exception.
    NodeCache.clear();
    engineEnd();
    throw;
  }
  // Drop the node cache: a later program could allocate nodes at the same
  // addresses, and a stale hit would resolve them to the wrong slots.
  NodeCache.clear();
  engineEnd();
  return !Failed;
}

Interpreter::Flow Interpreter::execBody(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body) {
    Flow F = execStmt(*S);
    if (Failed)
      return Flow::Return;
    if (F != Flow::Normal)
      return F;
  }
  return Flow::Normal;
}

bool Interpreter::checkInterrupt(SourceLoc Loc) {
  if (Failed)
    return true;
  if (StepLimit != 0 && Steps > StepLimit) {
    Interrupt = InterruptKind::StepLimit;
    fail(Loc, "execution step limit exceeded");
    return true;
  }
  if (CancelFlag && CancelFlag->load(std::memory_order_relaxed)) {
    Interrupt = InterruptKind::Cancelled;
    fail(Loc, "execution cancelled");
    return true;
  }
  if (DeadlineTp && std::chrono::steady_clock::now() >= *DeadlineTp) {
    Interrupt = InterruptKind::Deadline;
    fail(Loc, "execution deadline exceeded");
    return true;
  }
  if (FaultCtx && FaultCtx->deadlineForced()) {
    Interrupt = InterruptKind::Deadline;
    fail(Loc, "execution deadline exceeded");
    return true;
  }
  return false;
}

bool Interpreter::stmtPoll(SourceLoc Loc) {
  if (FaultCtx)
    FaultCtx->inject(FaultSite::InterpStmt);
  if ((CancelFlag || DeadlineTp || FaultCtx) && checkInterrupt(Loc))
    return true;
  return false;
}

Interpreter::Flow Interpreter::execStmt(const Stmt &S) {
  if (stmtStep(S.loc()))
    return Flow::Return;
  switch (S.kind()) {
  case Stmt::Kind::Assign:
    execAssign(cast<AssignStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::Expr:
    eval(*cast<ExprStmt>(S).expr());
    return Flow::Normal;
  case Stmt::Kind::For:
    return execFor(cast<ForStmt>(S));
  case Stmt::Kind::While:
    return execWhile(cast<WhileStmt>(S));
  case Stmt::Kind::If:
    return execIf(cast<IfStmt>(S));
  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  case Stmt::Kind::Return:
    return Flow::Return;
  }
  return Flow::Normal;
}

void Interpreter::noteAccumulatorHints(const ForStmt &S, size_t NumIters) {
  for (const StmtPtr &BS : S.body()) {
    const auto *A = dyn_cast<AssignStmt>(BS.get());
    if (!A)
      continue;
    const auto *Idx = dyn_cast<IndexExpr>(A->lhs());
    if (!Idx || Idx->numArgs() != 1)
      continue;
    const auto *Arg = dyn_cast<IdentExpr>(Idx->arg(0));
    if (!Arg || Arg->name() != S.indexVar())
      continue;
    int Slot;
    if (const NodeInfo *Info = cachedInfo(Idx))
      Slot = Info->Slot;
    else
      Slot = Env.lookup(Idx->baseName());
    if (Slot < 0)
      continue;
    noteHintForSlot(static_cast<unsigned>(Slot), NumIters);
  }
}

void Interpreter::applyPendingHint(unsigned Slot, Value &Target) {
  for (size_t I = 0, E = PendingHints.size(); I != E; ++I)
    if (PendingHints[I].first == Slot) {
      Target.reserveHint(PendingHints[I].second);
      PendingHints.erase(PendingHints.begin() + I);
      return;
    }
}

Interpreter::Flow Interpreter::execFor(const ForStmt &S) {
  Value RangeV = eval(*S.range());
  if (Failed)
    return Flow::Return;
  // MATLAB iterates over the columns of the range value.
  size_t NumIters = RangeV.isEmpty() ? 0 : RangeV.cols();
  unsigned IdxSlot;
  if (const NodeInfo *Info = cachedInfo(&S))
    IdxSlot = static_cast<unsigned>(Info->Slot);
  else
    IdxSlot = Env.intern(S.indexVar());

  // A top-level A(i) = ... accumulator grows to at most NumIters elements;
  // reserving up front turns the growth into one allocation. The hint for
  // a not-yet-defined target is deferred to its creating assignment so a
  // body that never reaches the assignment leaves the workspace untouched.
  size_t HintsBefore = PendingHints.size();
  if (NumIters > 8)
    noteAccumulatorHints(S, NumIters);

  Flow Result = Flow::Normal;
  for (size_t Col = 0; Col != NumIters; ++Col) {
    if (backEdgePoll(S.loc())) {
      Result = Flow::Return;
      break;
    }
    if (RangeV.rows() == 1) {
      Env.define(IdxSlot, Value::scalar(RangeV.at(0, Col)));
    } else {
      Value Slice(RangeV.rows(), 1);
      double *SliceD = Slice.mutableRaw();
      for (size_t R = 0; R != RangeV.rows(); ++R)
        SliceD[R] = RangeV.at(R, Col);
      Env.define(IdxSlot, std::move(Slice));
    }
    Flow F = execBody(S.body());
    if (Failed || F == Flow::Return) {
      Result = Flow::Return;
      break;
    }
    if (F == Flow::Break)
      break;
  }
  PendingHints.resize(HintsBefore);
  return Result;
}

Interpreter::Flow Interpreter::execWhile(const WhileStmt &S) {
  while (true) {
    if (backEdgePoll(S.loc()))
      return Flow::Return;
    Value Cond = eval(*S.cond());
    if (Failed)
      return Flow::Return;
    if (!Cond.isTrue())
      return Flow::Normal;
    Flow F = execBody(S.body());
    if (Failed || F == Flow::Return)
      return Flow::Return;
    if (F == Flow::Break)
      return Flow::Normal;
  }
}

Interpreter::Flow Interpreter::execIf(const IfStmt &S) {
  for (const IfStmt::Branch &B : S.branches()) {
    bool Taken = true;
    if (B.Cond) {
      Value Cond = eval(*B.Cond);
      if (Failed)
        return Flow::Return;
      Taken = Cond.isTrue();
    }
    if (Taken)
      return execBody(B.Body);
  }
  return Flow::Normal;
}

void Interpreter::execAssign(const AssignStmt &S) {
  Value RHS = eval(*S.rhs());
  if (Failed)
    return;
  if (const auto *Ident = dyn_cast<IdentExpr>(S.lhs())) {
    unsigned Slot;
    if (const NodeInfo *Info = cachedInfo(Ident))
      Slot = static_cast<unsigned>(Info->Slot);
    else
      Slot = Env.intern(Ident->name());
    Env.define(Slot, std::move(RHS));
    checkShapeCap(Slot, S.loc());
    return;
  }
  const auto *Index = dyn_cast<IndexExpr>(S.lhs());
  int Slot = -1;
  if (Index) {
    if (const NodeInfo *Info = cachedInfo(Index)) {
      Slot = Info->Slot;
    } else {
      std::string Base = Index->baseName();
      if (!Base.empty())
        Slot = static_cast<int>(Env.intern(Base));
    }
  }
  if (Slot < 0) {
    fail(S.loc(), "invalid assignment target");
    return;
  }
  // Marks the slot defined even if the write then fails — same as the old
  // map-based store, whose operator[] created the [] entry up front.
  Value &Target = defineSlotRef(static_cast<unsigned>(Slot));
  writeIndexed(Target, *Index, RHS);
  checkShapeCap(static_cast<unsigned>(Slot), S.loc());
}

void Interpreter::checkShapeCapSlow(unsigned Slot, SourceLoc Loc) {
  while (SlotCaps.size() < Env.numSlots()) {
    auto It = ShapeCaps.find(Env.nameOf(static_cast<unsigned>(SlotCaps.size())));
    int8_t Mask = 0;
    if (It != ShapeCaps.end())
      Mask = static_cast<int8_t>((It->second.first ? 1 : 0) |
                                 (It->second.second ? 2 : 0));
    SlotCaps.push_back(Mask);
  }
  int8_t Mask = SlotCaps[Slot];
  if (!Mask || !Env.isDefined(Slot))
    return;
  const Value &V = Env.slotValue(Slot);
  if (((Mask & 1) && V.rows() > 1) || ((Mask & 2) && V.cols() > 1))
    fail(Loc, "variable '" + Env.nameOf(Slot) +
                  "' exceeds its annotated shape (" + std::to_string(V.rows()) +
                  "x" + std::to_string(V.cols()) + ")");
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

static const std::vector<Value> &noArgs() {
  static const std::vector<Value> Empty;
  return Empty;
}

Value Interpreter::eval(const Expr &E) {
  if (Failed)
    return Value();
  if (EvalDepth >= MaxEvalDepth) {
    fail(E.loc(), "expression nesting exceeds the evaluator depth limit");
    return Value();
  }
  ++EvalDepth;
  // Injected faults and budget exhaustion unwind through eval() by
  // exception, so the counter needs unwind-safe restoration.
  struct DepthGuard {
    unsigned &D;
    ~DepthGuard() { --D; }
  } Guard{EvalDepth};
  return evalImpl(E);
}

Value Interpreter::evalImpl(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return Value::scalar(cast<NumberExpr>(E).value());
  case Expr::Kind::String: {
    // Strings become char-code row vectors (enough for fprintf/disp).
    const std::string &S = cast<StringExpr>(E).value();
    std::vector<double> Codes(S.begin(), S.end());
    return Value::vector(std::move(Codes), /*Row=*/true);
  }
  case Expr::Kind::Ident: {
    const auto &Ident = cast<IdentExpr>(E);
    if (const NodeInfo *Info = cachedInfo(&Ident)) {
      if (Info->Slot >= 0 && Env.isDefined(Info->Slot))
        return Env.slotValue(Info->Slot);
      if (Info->IsPi)
        return Value::scalar(3.14159265358979323846);
      if (Info->Builtin != InvalidBuiltinId)
        return callBuiltin(*this, Info->Builtin, noArgs(), E.loc());
      fail(E.loc(), "undefined variable '" + Ident.name() + "'");
      return Value();
    }
    // Uncached node ('end'-keyword rewrite or standalone eval): resolve by
    // name, with the same variable -> pi -> builtin precedence.
    if (const Value *V = Env.get(Ident.name()))
      return *V;
    if (Ident.name() == "pi")
      return Value::scalar(3.14159265358979323846);
    if (BuiltinId Id = builtinIdFor(Ident.name()); Id != InvalidBuiltinId)
      return callBuiltin(*this, Id, noArgs(), E.loc());
    fail(E.loc(), "undefined variable '" + Ident.name() + "'");
    return Value();
  }
  case Expr::Kind::MagicColon:
    fail(E.loc(), "':' is only valid inside a subscript");
    return Value();
  case Expr::Kind::EndKeyword:
    fail(E.loc(), "'end' outside of a subscript");
    return Value();
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    Value Start = eval(*R.start());
    Value Step = R.step() ? eval(*R.step()) : Value::scalar(1.0);
    Value Stop = eval(*R.stop());
    if (Failed)
      return Value();
    return makeRangeChecked(Start, Step, Stop, E.loc());
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    Value Tmp;
    const Value &Operand = evalOperand(*U.operand(), Tmp);
    if (Failed)
      return Value();
    switch (U.op()) {
    case UnaryOp::Plus:
      return Operand; // COW copy when the operand is a workspace variable
    case UnaryOp::Minus: {
      Value Result = unaryMinus(Operand, &Pool);
      Pool.recycle(std::move(Tmp));
      return Result;
    }
    case UnaryOp::Not: {
      Value Result = unaryNot(Operand, &Pool);
      Pool.recycle(std::move(Tmp));
      return Result;
    }
    }
    return Value();
  }
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Transpose: {
    Value Tmp;
    const Value &Operand = evalOperand(*cast<TransposeExpr>(E).operand(), Tmp);
    if (Failed)
      return Value();
    Value Result = Operand.transposed();
    Pool.recycle(std::move(Tmp));
    return Result;
  }
  case Expr::Kind::Index:
    return evalIndexOrCall(cast<IndexExpr>(E));
  case Expr::Kind::Matrix:
    return evalMatrixLiteral(cast<MatrixExpr>(E));
  }
  return Value();
}

const Value &Interpreter::evalOperand(const Expr &E, Value &Storage) {
  if (E.kind() == Expr::Kind::Ident) {
    if (const NodeInfo *Info = cachedInfo(&E)) {
      if (Info->Slot >= 0 && Env.isDefined(Info->Slot))
        return Env.slotValue(Info->Slot);
    }
  }
  Storage = eval(E);
  return Storage;
}

Value Interpreter::evalFusedMulAdd(const BinaryExpr &E, const BinaryExpr &Prod,
                                   bool ProductOnLeft) {
  // Operand evaluation order matches the unfused tree exactly (rand's
  // state advances identically): product operands around the other side.
  Value AT, BT, CT;
  const Value *AP, *BP, *CP;
  if (ProductOnLeft) {
    AP = &evalOperand(*Prod.lhs(), AT);
    BP = &evalOperand(*Prod.rhs(), BT);
    CP = &evalOperand(*E.rhs(), CT);
  } else {
    CP = &evalOperand(*E.lhs(), CT);
    AP = &evalOperand(*Prod.lhs(), AT);
    BP = &evalOperand(*Prod.rhs(), BT);
  }
  if (Failed)
    return Value();
  Value Result = applyFusedMulAdd(*AP, *BP, *CP,
                                  /*Subtract=*/E.op() == BinaryOp::Sub,
                                  ProductOnLeft,
                                  /*DotMul=*/Prod.op() == BinaryOp::DotMul,
                                  E.loc(), Prod.loc());
  Pool.recycle(std::move(AT));
  Pool.recycle(std::move(BT));
  Pool.recycle(std::move(CT));
  return Result;
}

Value Interpreter::applyFusedMulAdd(const Value &A, const Value &B,
                                    const Value &C, bool Subtract,
                                    bool ProductOnLeft, bool DotMul,
                                    SourceLoc ELoc, SourceLoc ProdLoc) {
  // All-scalar: combine directly, rounding the product first exactly like
  // the two-step evaluation does.
  if (A.isScalar() && B.isScalar() && C.isScalar()) {
    double P = A.scalarValue() * B.scalarValue();
    double CV = C.scalarValue();
    if (!Subtract)
      return Value::scalar(P + CV);
    return Value::scalar(ProductOnLeft ? P - CV : CV - P);
  }

  // '*' is elementwise only when one operand is scalar; a true matrix
  // product keeps the exact two-step path below.
  bool Elementwise = DotMul || A.isScalar() || B.isScalar();
  if (Elementwise && fusableMulAddShapes(A, B, C))
    return fusedMulAdd(A, B, C, Subtract, ProductOnLeft, &Pool);

  OpError Err;
  Value Product = DotMul
                      ? elementwiseBinary(BinaryOp::DotMul, A, B, Err, &Pool)
                      : mulOp(A, B, Err, &Pool);
  if (Err.failed()) {
    fail(ProdLoc, Err.Message);
    return Value();
  }
  BinaryOp Outer = Subtract ? BinaryOp::Sub : BinaryOp::Add;
  OpError Err2;
  Value Result = ProductOnLeft
                     ? elementwiseBinary(Outer, Product, C, Err2, &Pool)
                     : elementwiseBinary(Outer, C, Product, Err2, &Pool);
  Pool.recycle(std::move(Product));
  if (Err2.failed())
    fail(ELoc, Err2.Message);
  return Result;
}

Value Interpreter::makeRangeChecked(const Value &Start, const Value &Step,
                                    const Value &Stop, SourceLoc Loc) {
  if (!Start.isScalar() || !Step.isScalar() || !Stop.isScalar()) {
    fail(Loc, "range endpoints must be scalars");
    return Value();
  }
  OpError Err;
  Value Result = makeRange(Start.scalarValue(), Step.scalarValue(),
                           Stop.scalarValue(), Err);
  if (Err.failed())
    fail(Loc, Err.Message);
  return Result;
}

Value Interpreter::evalBinary(const BinaryExpr &E) {
  // Short-circuit logical operators first.
  if (E.op() == BinaryOp::AndAnd || E.op() == BinaryOp::OrOr) {
    Value LHS = eval(*E.lhs());
    if (Failed)
      return Value();
    bool LTrue = LHS.isTrue();
    if (E.op() == BinaryOp::AndAnd && !LTrue)
      return Value::scalar(0.0);
    if (E.op() == BinaryOp::OrOr && LTrue)
      return Value::scalar(1.0);
    Value RHS = eval(*E.rhs());
    if (Failed)
      return Value();
    return Value::scalar(RHS.isTrue() ? 1.0 : 0.0);
  }

  // Fuse (A .* B) +/- C into a single pass over the data; A * B with a
  // scalar operand is elementwise and fuses the same way.
  if (E.op() == BinaryOp::Add || E.op() == BinaryOp::Sub) {
    if (const auto *L = dyn_cast<BinaryExpr>(E.lhs());
        L && (L->op() == BinaryOp::DotMul || L->op() == BinaryOp::Mul))
      return evalFusedMulAdd(E, *L, /*ProductOnLeft=*/true);
    if (const auto *R = dyn_cast<BinaryExpr>(E.rhs());
        R && (R->op() == BinaryOp::DotMul || R->op() == BinaryOp::Mul))
      return evalFusedMulAdd(E, *R, /*ProductOnLeft=*/false);
  }

  // A * B': multiply against packed-transposed data without materializing
  // the transpose as a value.
  if (E.op() == BinaryOp::Mul) {
    if (const auto *T = dyn_cast<TransposeExpr>(E.rhs())) {
      Value LT, BTmp;
      const Value &LOp = evalOperand(*E.lhs(), LT);
      const Value &BOp = evalOperand(*T->operand(), BTmp);
      if (Failed)
        return Value();
      Value Result = applyMulTransB(LOp, BOp, E.loc());
      Pool.recycle(std::move(LT));
      Pool.recycle(std::move(BTmp));
      return Result;
    }
  }
  Value LT, RT;
  const Value &LHS = evalOperand(*E.lhs(), LT);
  const Value &RHS = evalOperand(*E.rhs(), RT);
  if (Failed)
    return Value();
  Value Result = applyBinary(E.op(), LHS, RHS, E.loc());
  Pool.recycle(std::move(LT));
  Pool.recycle(std::move(RT));
  return Result;
}

Value Interpreter::applyMulTransB(const Value &LHS, const Value &B,
                                  SourceLoc Loc) {
  if (!LHS.isScalar() && !B.isScalar() && LHS.cols() == B.cols()) {
    OpError Err;
    Value Result = matMulTransB(LHS, B, Err, &Pool);
    if (Err.failed())
      fail(Loc, Err.Message);
    return Result;
  }
  Value RT = B.transposed();
  Value Result = applyBinary(BinaryOp::Mul, LHS, RT, Loc);
  Pool.recycle(std::move(RT));
  return Result;
}

Value Interpreter::applyBinary(BinaryOp Op, const Value &LHS, const Value &RHS,
                               SourceLoc Loc) {
  // Scalar fast path: no kernel dispatch, no allocation. Semantics are
  // those of applyScalarOp in MatrixOps (comparisons and elementwise
  // logic yield logical values, division by zero yields Inf/NaN).
  if (LHS.isScalar() && RHS.isScalar()) {
    double A = LHS.scalarValue(), B = RHS.scalarValue();
    auto Logical = [](bool V) {
      Value R = Value::scalar(V ? 1.0 : 0.0);
      R.setLogical(true);
      return R;
    };
    switch (Op) {
    case BinaryOp::Add:
      return Value::scalar(A + B);
    case BinaryOp::Sub:
      return Value::scalar(A - B);
    case BinaryOp::Mul:
    case BinaryOp::DotMul:
      return Value::scalar(A * B);
    case BinaryOp::Div:
    case BinaryOp::DotDiv:
      return Value::scalar(A / B);
    case BinaryOp::Lt:
      return Logical(A < B);
    case BinaryOp::Gt:
      return Logical(A > B);
    case BinaryOp::Le:
      return Logical(A <= B);
    case BinaryOp::Ge:
      return Logical(A >= B);
    case BinaryOp::Eq:
      return Logical(A == B);
    case BinaryOp::Ne:
      return Logical(A != B);
    case BinaryOp::And:
      return Logical(A != 0.0 && B != 0.0);
    case BinaryOp::Or:
      return Logical(A != 0.0 || B != 0.0);
    default: // Pow/DotPow keep the powOp/elementwise path below.
      break;
    }
  }

  OpError Err;
  Value Result;
  switch (Op) {
  case BinaryOp::Mul:
    Result = mulOp(LHS, RHS, Err, &Pool);
    break;
  case BinaryOp::Div:
    Result = divOp(LHS, RHS, Err, &Pool);
    break;
  case BinaryOp::Pow:
    Result = powOp(LHS, RHS, Err);
    break;
  default:
    Result = elementwiseBinary(Op, LHS, RHS, Err, &Pool);
    break;
  }
  if (Err.failed())
    fail(Loc, Err.Message);
  return Result;
}

Value Interpreter::evalMatrixLiteral(const MatrixExpr &E) {
  OpError Err;
  Value Result;
  bool FirstRow = true;
  for (const MatrixExpr::Row &Row : E.rows()) {
    Value RowValue;
    bool FirstElt = true;
    for (const ExprPtr &Elt : Row) {
      Value V = eval(*Elt);
      if (Failed)
        return Value();
      if (FirstElt) {
        RowValue = std::move(V);
        FirstElt = false;
      } else {
        RowValue = horzcat(RowValue, V, Err);
      }
    }
    if (FirstRow) {
      Result = std::move(RowValue);
      FirstRow = false;
    } else {
      Result = vertcat(Result, RowValue, Err);
    }
  }
  if (Err.failed())
    fail(E.loc(), Err.Message);
  return Result;
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

Value Interpreter::makeColonVector(size_t Extent) {
  Value All(1, Extent);
  double *AllD = All.mutableRaw();
  for (size_t I = 0; I != Extent; ++I)
    AllD[I] = static_cast<double>(I + 1);
  return All;
}

Value Interpreter::evalSubscript(const Expr &Arg, size_t Extent) {
  if (isa<MagicColonExpr>(&Arg))
    return makeColonVector(Extent);
  if (!mentionsEndKeyword(Arg))
    return eval(Arg);
  ExprPtr Rewritten =
      replaceEndKeyword(Arg.clone(), static_cast<double>(Extent));
  return eval(*Rewritten);
}

bool Interpreter::toIndices(const Value &Idx, size_t Extent,
                            std::vector<size_t> &Out, SourceLoc Loc) {
  Out.clear();
  // Logical subscripts select by mask (MATLAB logical indexing).
  if (Idx.isLogical()) {
    if (Idx.numel() > Extent) {
      fail(Loc, "logical index has too many elements (" +
                    std::to_string(Idx.numel()) + " for extent " +
                    std::to_string(Extent) + ")");
      return false;
    }
    const double *D = Idx.raw();
    for (size_t I = 0, E = Idx.numel(); I != E; ++I)
      if (D[I] != 0.0)
        Out.push_back(I);
    return true;
  }
  Out.reserve(Idx.numel());
  const double *Data = Idx.raw();
  for (size_t I = 0, E = Idx.numel(); I != E; ++I) {
    double D = Data[I];
    // The finiteness check matters: floor(Inf) == Inf passes the
    // integer test, and casting Inf to size_t is undefined behavior
    // that turns into an out-of-bounds read.
    if (!std::isfinite(D) || D < 1.0 || D != std::floor(D)) {
      fail(Loc, "subscript indices must be positive integers");
      return false;
    }
    auto Index = static_cast<size_t>(D);
    if (Index > Extent) {
      fail(Loc, "index " + std::to_string(Index) +
                    " exceeds matrix dimension (" + std::to_string(Extent) +
                    ")");
      return false;
    }
    Out.push_back(Index - 1);
  }
  return true;
}

Value Interpreter::indexReadAll(const Value &Base) {
  // Linear (column-major) indexing. A(:) flattens to a column.
  Value Result = Base;
  Result.reshapeTo(Base.numel(), Base.numel() ? 1 : 0);
  return Result;
}

Value Interpreter::indexRead1(const Value &Base, const Value &Idx,
                              SourceLoc Loc) {
  std::vector<size_t> &Indices = IdxScratchA;
  if (!toIndices(Idx, Base.numel(), Indices, Loc))
    return Value();
  // Result shape: like the index, except that vector(A)(vector idx)
  // follows A's orientation; mask selection yields a column unless the
  // base is a row.
  size_t R = Idx.rows(), C = Idx.cols();
  if (Idx.isLogical()) {
    if (Base.isRow()) {
      R = 1;
      C = Indices.size();
    } else {
      R = Indices.size();
      C = Indices.empty() ? 0 : 1;
    }
  } else if (Base.isVector() && Idx.isVector()) {
    if (Base.isRow()) {
      R = 1;
      C = Indices.size();
    } else {
      R = Indices.size();
      C = 1;
    }
  }
  Value Result(R, C);
  const double *BaseD = Base.raw();
  double *ResultD = Result.mutableRaw();
  for (size_t I = 0; I != Indices.size(); ++I)
    ResultD[I] = BaseD[Indices[I]];
  Result.setLogical(Base.isLogical());
  return Result;
}

Value Interpreter::indexRead2(const Value &Base, const Value &RowIdx,
                              const Value &ColIdx, SourceLoc Loc) {
  std::vector<size_t> &RI = IdxScratchA, &CI = IdxScratchB;
  if (!toIndices(RowIdx, Base.rows(), RI, Loc) ||
      !toIndices(ColIdx, Base.cols(), CI, Loc))
    return Value();
  Value Result(RI.size(), CI.size());
  const double *BaseD = Base.raw();
  double *ResultD = Result.mutableRaw();
  size_t BaseRows = Base.rows();
  for (size_t C = 0; C != CI.size(); ++C)
    for (size_t R = 0; R != RI.size(); ++R)
      ResultD[C * RI.size() + R] = BaseD[CI[C] * BaseRows + RI[R]];
  Result.setLogical(Base.isLogical());
  return Result;
}

Value Interpreter::readIndexed(const Value &Base, const IndexExpr &E) {
  if (E.numArgs() == 0)
    return Base; // f() with a variable f is just the value.

  if (E.numArgs() == 1) {
    if (isa<MagicColonExpr>(E.arg(0)))
      return indexReadAll(Base);
    Value Idx = evalSubscript(*E.arg(0), Base.numel());
    if (Failed)
      return Value();
    return indexRead1(Base, Idx, E.loc());
  }

  if (E.numArgs() == 2) {
    Value RowIdx = evalSubscript(*E.arg(0), Base.rows());
    Value ColIdx = evalSubscript(*E.arg(1), Base.cols());
    if (Failed)
      return Value();
    return indexRead2(Base, RowIdx, ColIdx, E.loc());
  }

  fail(E.loc(), "N-dimensional indexing is not supported");
  return Value();
}

void Interpreter::indexWriteAll(Value &Target, const Value &RHS,
                                SourceLoc Loc) {
  // A(:) = B requires matching element count or scalar B.
  if (RHS.isScalar()) {
    double Fill = RHS.scalarValue();
    double *TD = Target.mutableRaw();
    for (size_t I = 0, E = Target.numel(); I != E; ++I)
      TD[I] = Fill;
    return;
  }
  if (RHS.numel() != Target.numel()) {
    fail(Loc, "A(:) assignment requires matching element counts");
    return;
  }
  const double *RD = RHS.raw();
  double *TD = Target.mutableRaw();
  for (size_t I = 0, E = Target.numel(); I != E; ++I)
    TD[I] = RD[I];
}

void Interpreter::indexWrite1(Value &Target, const Value &Idx,
                              const Value &RHS, SourceLoc Loc) {
  if (Idx.isLogical()) {
    std::vector<size_t> &Indices = IdxScratchA;
    if (!toIndices(Idx, Target.numel(), Indices, Loc))
      return;
    if (!RHS.isScalar() && RHS.numel() != Indices.size()) {
      fail(Loc, "masked assignment size mismatch");
      return;
    }
    double *TD = Target.mutableRaw();
    for (size_t I = 0; I != Indices.size(); ++I)
      TD[Indices[I]] = RHS.isScalar() ? RHS.scalarValue() : RHS.linear(I);
    return;
  }
  // Determine whether growth is needed and legal.
  double MaxIdx = 0;
  for (size_t I = 0, E = Idx.numel(); I != E; ++I)
    MaxIdx = std::fmax(MaxIdx, Idx.linear(I));
  if (MaxIdx > static_cast<double>(Target.numel())) {
    auto Needed = static_cast<size_t>(MaxIdx);
    if (Target.rows() == 0 && Target.cols() <= 1) {
      // x(5) = v on a 0x0 x yields a row vector, unless the index
      // values come as a column. A 0x1 empty takes the same path:
      // element-at-a-time growth necessarily passes through a 1x1
      // value (which then widens into a row), so slice growth must
      // agree or the two orders of writing the same elements would
      // produce different shapes. Degenerate empties with a wider
      // dimension (e.g. zeros(7,0)) are matrices and fall through to
      // the growth error below, as in MATLAB.
      if (Idx.isColumn() && Idx.numel() > 1)
        Target.growTo(Needed, 1);
      else
        Target.growTo(1, Needed);
    } else if (Target.rows() == 1) {
      Target.growTo(1, Needed);
    } else if (Target.cols() == 1) {
      Target.growTo(Needed, 1);
    } else {
      fail(Loc, "linear indexed assignment cannot grow a matrix");
      return;
    }
  }
  std::vector<size_t> &Indices = IdxScratchA;
  if (!toIndices(Idx, Target.numel(), Indices, Loc))
    return;
  if (!RHS.isScalar() && RHS.numel() != Indices.size()) {
    fail(Loc, "indexed assignment size mismatch");
    return;
  }
  double *TD = Target.mutableRaw();
  for (size_t I = 0; I != Indices.size(); ++I)
    TD[Indices[I]] = RHS.isScalar() ? RHS.scalarValue() : RHS.linear(I);
}

void Interpreter::indexWrite2(Value &Target, const Value &RowIdx,
                              const Value &ColIdx, const Value &RHS,
                              SourceLoc Loc) {
  double MaxRow = 0, MaxCol = 0;
  for (size_t I = 0, E = RowIdx.numel(); I != E; ++I)
    MaxRow = std::fmax(MaxRow, RowIdx.linear(I));
  for (size_t I = 0, E = ColIdx.numel(); I != E; ++I)
    MaxCol = std::fmax(MaxCol, ColIdx.linear(I));
  if (MaxRow > static_cast<double>(Target.rows()) ||
      MaxCol > static_cast<double>(Target.cols()))
    Target.growTo(static_cast<size_t>(std::fmax(
                      MaxRow, static_cast<double>(Target.rows()))),
                  static_cast<size_t>(std::fmax(
                      MaxCol, static_cast<double>(Target.cols()))));
  std::vector<size_t> &RI = IdxScratchA, &CI = IdxScratchB;
  if (!toIndices(RowIdx, Target.rows(), RI, Loc) ||
      !toIndices(ColIdx, Target.cols(), CI, Loc))
    return;
  if (!RHS.isScalar() && RHS.numel() != RI.size() * CI.size()) {
    fail(Loc, "indexed assignment size mismatch");
    return;
  }
  double *TD = Target.mutableRaw();
  size_t TargetRows = Target.rows();
  size_t Flat = 0;
  for (size_t C = 0; C != CI.size(); ++C)
    for (size_t R = 0; R != RI.size(); ++R) {
      TD[CI[C] * TargetRows + RI[R]] =
          RHS.isScalar() ? RHS.scalarValue() : RHS.linear(Flat);
      ++Flat;
    }
}

void Interpreter::writeIndexed(Value &Target, const IndexExpr &LHS,
                               const Value &RHS) {
  if (LHS.numArgs() == 0) {
    fail(LHS.loc(), "invalid indexed assignment");
    return;
  }

  if (LHS.numArgs() == 1) {
    if (isa<MagicColonExpr>(LHS.arg(0))) {
      indexWriteAll(Target, RHS, LHS.loc());
      return;
    }
    Value Idx = evalSubscript(*LHS.arg(0), Target.numel());
    if (Failed)
      return;
    indexWrite1(Target, Idx, RHS, LHS.loc());
    return;
  }

  if (LHS.numArgs() == 2) {
    Value RowIdx = evalSubscript(*LHS.arg(0), Target.rows());
    Value ColIdx = evalSubscript(*LHS.arg(1), Target.cols());
    if (Failed)
      return;
    indexWrite2(Target, RowIdx, ColIdx, RHS, LHS.loc());
    return;
  }

  fail(LHS.loc(), "N-dimensional indexed assignment is not supported");
}

Value Interpreter::evalIndexOrCall(const IndexExpr &E) {
  int Slot = -1;
  BuiltinId Builtin = InvalidBuiltinId;
  if (const NodeInfo *Info = cachedInfo(&E)) {
    Slot = Info->Slot;
    Builtin = Info->Builtin;
  } else {
    std::string Name = E.baseName();
    if (Name.empty()) {
      // Expression base: evaluate it and index the result, e.g. (A*B)(1,2)
      // is not MATLAB syntax, but transposed bases appear via rewrites.
      Value Base = eval(*E.base());
      if (Failed)
        return Value();
      return readIndexed(Base, E);
    }
    Slot = Env.lookup(Name);
    Builtin = builtinIdFor(Name);
  }
  if (Slot >= 0 && Env.isDefined(Slot))
    return readIndexed(Env.slotValue(Slot), E);
  if (Builtin != InvalidBuiltinId) {
    if (ArgDepth == ArgPool.size())
      ArgPool.emplace_back();
    std::vector<Value> &Args = ArgPool[ArgDepth++];
    struct DepthGuard {
      size_t &Depth;
      ~DepthGuard() { --Depth; }
    } Guard{ArgDepth};
    Args.clear();
    Args.reserve(E.numArgs());
    for (unsigned I = 0, N = E.numArgs(); I != N; ++I) {
      if (isa<MagicColonExpr>(E.arg(I)) || isa<EndKeywordExpr>(E.arg(I))) {
        fail(E.loc(), "':' and 'end' are not valid function arguments");
        return Value();
      }
      Args.push_back(eval(*E.arg(I)));
      if (Failed)
        return Value();
    }
    return callBuiltin(*this, Builtin, Args, E.loc());
  }
  fail(E.loc(), "undefined function or variable '" + E.baseName() + "'");
  return Value();
}

//===----------------------------------------------------------------------===//
// Workspace comparison
//===----------------------------------------------------------------------===//

std::string mvec::compareWorkspaces(const Interpreter &A, const Interpreter &B,
                                    double Tol) {
  for (const auto &[Name, ValueA] : A.workspace()) {
    const Value *ValueB = B.getVariable(Name);
    if (!ValueB)
      return "variable '" + Name + "' missing from second workspace";
    if (!ValueA.equals(*ValueB, Tol))
      return "variable '" + Name + "' differs: " + ValueA.str() + " vs " +
             ValueB->str();
  }
  for (const auto &[Name, ValueB] : B.workspace()) {
    (void)ValueB;
    if (!A.getVariable(Name))
      return "variable '" + Name + "' missing from first workspace";
  }
  return std::string();
}
