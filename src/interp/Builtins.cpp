//===- Builtins.cpp - MATLAB builtin functions -----------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Builtins.h"

#include "interp/Interpreter.h"
#include "interp/MatrixOps.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <thread>
#include <unordered_map>

using namespace mvec;

namespace {

using ArgList = std::vector<Value>;
using BuiltinFn =
    std::function<Value(Interpreter &, const ArgList &, SourceLoc)>;

bool requireArgs(Interpreter &Interp, const ArgList &Args, size_t Min,
                 size_t Max, const char *Name, SourceLoc Loc) {
  if (Args.size() >= Min && Args.size() <= Max)
    return true;
  Interp.fail(Loc, std::string("wrong number of arguments to '") + Name +
                       "'");
  return false;
}

bool requireScalar(Interpreter &Interp, const Value &V, const char *Name,
                   SourceLoc Loc) {
  if (V.isScalar())
    return true;
  Interp.fail(Loc, std::string("argument to '") + Name +
                       "' must be a scalar");
  return false;
}

bool toExtent(Interpreter &Interp, const Value &V, size_t &Out,
              const char *Name, SourceLoc Loc) {
  if (!requireScalar(Interp, V, Name, Loc))
    return false;
  double D = V.scalarValue();
  if (D < 0 || D != std::floor(D)) {
    Interp.fail(Loc, std::string("size argument to '") + Name +
                         "' must be a nonnegative integer");
    return false;
  }
  Out = static_cast<size_t>(D);
  return true;
}

Value mapUnary(const Value &A, double (*Fn)(double)) {
  Value Result(A.rows(), A.cols());
  for (size_t I = 0, E = A.numel(); I != E; ++I)
    Result.linear(I) = Fn(A.linear(I));
  return Result;
}

/// min/max with MATLAB's two forms: reduce(v) and elementwise(a, b).
Value minMax(Interpreter &Interp, const ArgList &Args, SourceLoc Loc,
             bool IsMin) {
  const char *Name = IsMin ? "min" : "max";
  if (!requireArgs(Interp, Args, 1, 2, Name, Loc))
    return Value();
  auto Pick = [IsMin](double A, double B) {
    if (std::isnan(A))
      return B;
    if (std::isnan(B))
      return A;
    return IsMin ? std::fmin(A, B) : std::fmax(A, B);
  };
  if (Args.size() == 2) {
    const Value &A = Args[0], &B = Args[1];
    if (A.isScalar() || B.isScalar() ||
        (A.rows() == B.rows() && A.cols() == B.cols())) {
      size_t R = A.isScalar() ? B.rows() : A.rows();
      size_t C = A.isScalar() ? B.cols() : A.cols();
      Value Result(R, C);
      for (size_t I = 0, E = Result.numel(); I != E; ++I) {
        double AV = A.isScalar() ? A.scalarValue() : A.linear(I);
        double BV = B.isScalar() ? B.scalarValue() : B.linear(I);
        Result.linear(I) = Pick(AV, BV);
      }
      return Result;
    }
    Interp.fail(Loc, "matrix dimensions must agree");
    return Value();
  }
  const Value &A = Args[0];
  if (A.isEmpty())
    return Value();
  if (A.isVector()) {
    double Best = A.linear(0);
    for (size_t I = 1, E = A.numel(); I != E; ++I)
      Best = Pick(Best, A.linear(I));
    return Value::scalar(Best);
  }
  Value Result(1, A.cols());
  for (size_t C = 0; C != A.cols(); ++C) {
    double Best = A.at(0, C);
    for (size_t R = 1; R != A.rows(); ++R)
      Best = Pick(Best, A.at(R, C));
    Result.at(0, C) = Best;
  }
  return Result;
}

Value doFprintf(Interpreter &Interp, const ArgList &Args, SourceLoc Loc) {
  if (Args.empty()) {
    Interp.fail(Loc, "fprintf requires a format string");
    return Value();
  }
  std::string Fmt;
  for (double Code : Args[0])
    Fmt += static_cast<char>(Code);

  // Flatten the remaining arguments into one stream of scalars, MATLAB
  // style (format recycling is not needed by our examples).
  std::vector<double> Pool;
  for (size_t A = 1; A < Args.size(); ++A)
    for (double D : Args[A])
      Pool.push_back(D);
  size_t Next = 0;

  std::string Out;
  for (size_t I = 0; I < Fmt.size(); ++I) {
    char C = Fmt[I];
    if (C == '\\' && I + 1 < Fmt.size()) {
      char N = Fmt[++I];
      if (N == 'n')
        Out += '\n';
      else if (N == 't')
        Out += '\t';
      else
        Out += N;
      continue;
    }
    if (C != '%') {
      Out += C;
      continue;
    }
    if (I + 1 >= Fmt.size())
      break;
    // Parse a conversion: %[flags][width][.prec]letter
    std::string Spec = "%";
    ++I;
    while (I < Fmt.size() && (std::isdigit(Fmt[I]) || Fmt[I] == '.' ||
                              Fmt[I] == '-' || Fmt[I] == '+'))
      Spec += Fmt[I++];
    if (I >= Fmt.size())
      break;
    char Conv = Fmt[I];
    if (Conv == '%') {
      Out += '%';
      continue;
    }
    double Arg = Next < Pool.size() ? Pool[Next++] : 0.0;
    char Buf[64];
    switch (Conv) {
    case 'd':
    case 'i':
      std::snprintf(Buf, sizeof(Buf), (Spec + "lld").c_str(),
                    static_cast<long long>(Arg));
      break;
    case 'f':
    case 'e':
    case 'g':
      std::snprintf(Buf, sizeof(Buf), (Spec + Conv).c_str(), Arg);
      break;
    default:
      Interp.fail(Loc, std::string("unsupported fprintf conversion '%") +
                           Conv + "'");
      return Value();
    }
    Out += Buf;
  }
  Interp.appendOutput(Out);
  return Value::scalar(static_cast<double>(Out.size()));
}

/// Dense dispatch table plus a name -> id index. IDs are assigned in sorted
/// name order (the construction goes through a std::map once, at startup),
/// so builtinNames() stays sorted and ids are stable within a build.
struct BuiltinRegistry {
  std::vector<std::pair<std::string, BuiltinFn>> Entries;
  std::unordered_map<std::string, BuiltinId> Index;
};

const BuiltinRegistry &registry() {
  static const BuiltinRegistry Reg = [] {
    std::map<std::string, BuiltinFn> T;

    T["size"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 2, "size", Loc))
        return Value();
      const Value &A = Args[0];
      if (Args.size() == 2) {
        if (!requireScalar(Interp, Args[1], "size", Loc))
          return Value();
        double Dim = Args[1].scalarValue();
        if (Dim == 1)
          return Value::scalar(static_cast<double>(A.rows()));
        if (Dim == 2)
          return Value::scalar(static_cast<double>(A.cols()));
        return Value::scalar(1.0); // trailing singleton dimensions
      }
      Value Result(1, 2);
      Result.linear(0) = static_cast<double>(A.rows());
      Result.linear(1) = static_cast<double>(A.cols());
      return Result;
    };

    T["numel"] = [](Interpreter &Interp, const ArgList &Args,
                    SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "numel", Loc))
        return Value();
      return Value::scalar(static_cast<double>(Args[0].numel()));
    };

    T["length"] = [](Interpreter &Interp, const ArgList &Args,
                     SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "length", Loc))
        return Value();
      return Value::scalar(static_cast<double>(
          std::max(Args[0].rows(), Args[0].cols())));
    };

    T["isempty"] = [](Interpreter &Interp, const ArgList &Args,
                      SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "isempty", Loc))
        return Value();
      return Value::scalar(Args[0].isEmpty() ? 1.0 : 0.0);
    };

    auto MakeFilled = [](double Fill) {
      return [Fill](Interpreter &Interp, const ArgList &Args,
                    SourceLoc Loc) -> Value {
        if (Args.empty())
          return Value::scalar(Fill);
        size_t R = 0, C = 0;
        if (!toExtent(Interp, Args[0], R, "zeros/ones", Loc))
          return Value();
        if (Args.size() == 1)
          C = R;
        else if (!toExtent(Interp, Args[1], C, "zeros/ones", Loc))
          return Value();
        return Value(R, C, Fill);
      };
    };
    T["zeros"] = MakeFilled(0.0);
    T["ones"] = MakeFilled(1.0);

    T["eye"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      size_t N = 1, M = 1;
      if (!Args.empty() && !toExtent(Interp, Args[0], N, "eye", Loc))
        return Value();
      M = N;
      if (Args.size() >= 2 && !toExtent(Interp, Args[1], M, "eye", Loc))
        return Value();
      Value Result(N, M);
      for (size_t I = 0; I < N && I < M; ++I)
        Result.at(I, I) = 1.0;
      return Result;
    };

    T["rand"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      size_t R = 1, C = 1;
      if (!Args.empty()) {
        if (!toExtent(Interp, Args[0], R, "rand", Loc))
          return Value();
        C = R;
        if (Args.size() >= 2 && !toExtent(Interp, Args[1], C, "rand", Loc))
          return Value();
      }
      Value Result(R, C);
      for (size_t I = 0, E = Result.numel(); I != E; ++I)
        Result.linear(I) = Interp.nextRandom();
      return Result;
    };

    T["reshape"] = [](Interpreter &Interp, const ArgList &Args,
                      SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 3, 3, "reshape", Loc))
        return Value();
      size_t R = 0, C = 0;
      if (!toExtent(Interp, Args[1], R, "reshape", Loc) ||
          !toExtent(Interp, Args[2], C, "reshape", Loc))
        return Value();
      if (R * C != Args[0].numel()) {
        Interp.fail(Loc, "reshape must preserve the number of elements");
        return Value();
      }
      Value Result = Args[0];
      Result.reshapeTo(R, C);
      return Result;
    };

    T["repmat"] = [](Interpreter &Interp, const ArgList &Args,
                     SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 2, 3, "repmat", Loc))
        return Value();
      size_t R = 0, C = 0;
      if (Args.size() == 3) {
        if (!toExtent(Interp, Args[1], R, "repmat", Loc) ||
            !toExtent(Interp, Args[2], C, "repmat", Loc))
          return Value();
      } else {
        // repmat(X, [r c]) or repmat(X, n).
        const Value &Spec = Args[1];
        if (Spec.isScalar()) {
          if (!toExtent(Interp, Spec, R, "repmat", Loc))
            return Value();
          C = R;
        } else if (Spec.numel() == 2) {
          R = static_cast<size_t>(Spec.linear(0));
          C = static_cast<size_t>(Spec.linear(1));
        } else {
          Interp.fail(Loc, "invalid repmat replication specification");
          return Value();
        }
      }
      return repmat(Args[0], R, C);
    };

    T["sum"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 2, "sum", Loc))
        return Value();
      if (Args.size() == 2) {
        if (!requireScalar(Interp, Args[1], "sum", Loc))
          return Value();
        return sumAlong(Args[0],
                        static_cast<unsigned>(Args[1].scalarValue()));
      }
      return sumDefault(Args[0]);
    };

    T["cumsum"] = [](Interpreter &Interp, const ArgList &Args,
                     SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 2, "cumsum", Loc))
        return Value();
      if (Args.size() == 2) {
        if (!requireScalar(Interp, Args[1], "cumsum", Loc))
          return Value();
        return cumsumAlong(Args[0],
                           static_cast<unsigned>(Args[1].scalarValue()));
      }
      return cumsumDefault(Args[0]);
    };

    T["prod"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "prod", Loc))
        return Value();
      return prodDefault(Args[0]);
    };

    T["min"] = [](Interpreter &Interp, const ArgList &Args, SourceLoc Loc) {
      return minMax(Interp, Args, Loc, /*IsMin=*/true);
    };
    T["max"] = [](Interpreter &Interp, const ArgList &Args, SourceLoc Loc) {
      return minMax(Interp, Args, Loc, /*IsMin=*/false);
    };

    auto MakeMap = [](double (*Fn)(double), const char *Name) {
      return [Fn, Name](Interpreter &Interp, const ArgList &Args,
                        SourceLoc Loc) -> Value {
        if (!requireArgs(Interp, Args, 1, 1, Name, Loc))
          return Value();
        return mapUnary(Args[0], Fn);
      };
    };
    T["abs"] = MakeMap([](double X) { return std::fabs(X); }, "abs");
    T["sqrt"] = MakeMap([](double X) { return std::sqrt(X); }, "sqrt");
    T["cos"] = MakeMap([](double X) { return std::cos(X); }, "cos");
    T["sin"] = MakeMap([](double X) { return std::sin(X); }, "sin");
    T["tan"] = MakeMap([](double X) { return std::tan(X); }, "tan");
    T["exp"] = MakeMap([](double X) { return std::exp(X); }, "exp");
    T["log"] = MakeMap([](double X) { return std::log(X); }, "log");
    T["floor"] = MakeMap([](double X) { return std::floor(X); }, "floor");
    T["ceil"] = MakeMap([](double X) { return std::ceil(X); }, "ceil");
    T["round"] = MakeMap([](double X) { return std::round(X); }, "round");
    T["fix"] = MakeMap([](double X) { return std::trunc(X); }, "fix");

    T["mod"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 2, 2, "mod", Loc))
        return Value();
      if (Args[0].isScalar() && Args[1].isScalar()) {
        double A = Args[0].scalarValue(), B = Args[1].scalarValue();
        return Value::scalar(B == 0.0 ? A : A - std::floor(A / B) * B);
      }
      OpError Err;
      Value Quot = elementwiseBinary(BinaryOp::DotDiv, Args[0], Args[1], Err);
      if (Err.failed()) {
        Interp.fail(Loc, Err.Message);
        return Value();
      }
      Value Result(Quot.rows(), Quot.cols());
      for (size_t I = 0, E = Quot.numel(); I != E; ++I) {
        double A = Args[0].isScalar() ? Args[0].scalarValue()
                                      : Args[0].linear(I);
        double B = Args[1].isScalar() ? Args[1].scalarValue()
                                      : Args[1].linear(I);
        Result.linear(I) = B == 0.0 ? A : A - std::floor(A / B) * B;
      }
      return Result;
    };

    T["hist"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 2, "hist", Loc))
        return Value();
      Value Centers;
      if (Args.size() == 2) {
        Centers = Args[1];
      } else {
        OpError RangeErr;
        Centers = makeRange(1, 1, 10, RangeErr); // MATLAB default: 10 bins
      }
      OpError Err;
      Value Result = histCounts(Args[0], Centers, Err);
      if (Err.failed())
        Interp.fail(Loc, Err.Message);
      return Result;
    };

    T["diag"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "diag", Loc))
        return Value();
      const Value &A = Args[0];
      if (A.isVector()) {
        size_t N = A.numel();
        Value Result(N, N);
        for (size_t I = 0; I != N; ++I)
          Result.at(I, I) = A.linear(I);
        return Result;
      }
      size_t N = std::min(A.rows(), A.cols());
      Value Result(N, 1);
      for (size_t I = 0; I != N; ++I)
        Result.at(I, 0) = A.at(I, I);
      return Result;
    };

    T["linspace"] = [](Interpreter &Interp, const ArgList &Args,
                       SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 2, 3, "linspace", Loc))
        return Value();
      if (!requireScalar(Interp, Args[0], "linspace", Loc) ||
          !requireScalar(Interp, Args[1], "linspace", Loc))
        return Value();
      size_t N = 100;
      if (Args.size() == 3 && !toExtent(Interp, Args[2], N, "linspace", Loc))
        return Value();
      double A = Args[0].scalarValue(), B = Args[1].scalarValue();
      Value Result(1, N);
      for (size_t I = 0; I != N; ++I)
        Result.linear(I) =
            N == 1 ? B : A + (B - A) * static_cast<double>(I) /
                                 static_cast<double>(N - 1);
      return Result;
    };

    T["transpose"] = [](Interpreter &Interp, const ArgList &Args,
                        SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "transpose", Loc))
        return Value();
      return Args[0].transposed();
    };

    T["mean"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "mean", Loc))
        return Value();
      const Value &A = Args[0];
      if (A.isEmpty()) {
        Interp.fail(Loc, "mean of an empty value");
        return Value();
      }
      if (A.isVector()) {
        Value S = sumDefault(A);
        return Value::scalar(S.scalarValue() /
                             static_cast<double>(A.numel()));
      }
      Value S = sumAlong(A, 1);
      for (size_t I = 0, E = S.numel(); I != E; ++I)
        S.linear(I) /= static_cast<double>(A.rows());
      return S;
    };

    T["true"] = [](Interpreter &, const ArgList &, SourceLoc) -> Value {
      Value V = Value::scalar(1.0);
      V.setLogical(true);
      return V;
    };
    T["false"] = [](Interpreter &, const ArgList &, SourceLoc) -> Value {
      Value V = Value::scalar(0.0);
      V.setLogical(true);
      return V;
    };
    T["logical"] = [](Interpreter &Interp, const ArgList &Args,
                      SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "logical", Loc))
        return Value();
      Value V(Args[0].rows(), Args[0].cols());
      for (size_t I = 0, E = Args[0].numel(); I != E; ++I)
        V.linear(I) = Args[0].linear(I) != 0.0 ? 1.0 : 0.0;
      V.setLogical(true);
      return V;
    };
    T["islogical"] = [](Interpreter &Interp, const ArgList &Args,
                        SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "islogical", Loc))
        return Value();
      return Value::scalar(Args[0].isLogical() ? 1.0 : 0.0);
    };
    T["double"] = [](Interpreter &Interp, const ArgList &Args,
                     SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "double", Loc))
        return Value();
      Value V = Args[0];
      V.setLogical(false);
      return V;
    };

    T["find"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "find", Loc))
        return Value();
      const Value &A = Args[0];
      std::vector<double> Indices;
      for (size_t I = 0, E = A.numel(); I != E; ++I)
        if (A.linear(I) != 0.0)
          Indices.push_back(static_cast<double>(I + 1));
      // find on a row vector yields a row; otherwise a column.
      return Value::vector(std::move(Indices), /*Row=*/A.isRow());
    };

    T["any"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "any", Loc))
        return Value();
      const Value &A = Args[0];
      if (A.isVector() || A.isEmpty()) {
        for (double D : A)
          if (D != 0.0)
            return Value::scalar(1.0);
        return Value::scalar(0.0);
      }
      Value R(1, A.cols());
      for (size_t C = 0; C != A.cols(); ++C)
        for (size_t Row = 0; Row != A.rows(); ++Row)
          if (A.at(Row, C) != 0.0) {
            R.at(0, C) = 1.0;
            break;
          }
      return R;
    };

    T["all"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "all", Loc))
        return Value();
      const Value &A = Args[0];
      if (A.isVector() || A.isEmpty()) {
        for (double D : A)
          if (D == 0.0)
            return Value::scalar(0.0);
        return Value::scalar(1.0);
      }
      Value R(1, A.cols(), 1.0);
      for (size_t C = 0; C != A.cols(); ++C)
        for (size_t Row = 0; Row != A.rows(); ++Row)
          if (A.at(Row, C) == 0.0) {
            R.at(0, C) = 0.0;
            break;
          }
      return R;
    };

    T["nnz"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "nnz", Loc))
        return Value();
      double Count = 0;
      for (double D : Args[0])
        if (D != 0.0)
          Count += 1;
      return Value::scalar(Count);
    };

    T["norm"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "norm", Loc))
        return Value();
      if (!Args[0].isVector() && !Args[0].isEmpty()) {
        Interp.fail(Loc, "norm supports vectors only");
        return Value();
      }
      double Acc = 0;
      for (double D : Args[0])
        Acc += D * D;
      return Value::scalar(std::sqrt(Acc));
    };

    T["dot"] = [](Interpreter &Interp, const ArgList &Args,
                  SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 2, 2, "dot", Loc))
        return Value();
      if (!Args[0].isVector() || !Args[1].isVector() ||
          Args[0].numel() != Args[1].numel()) {
        Interp.fail(Loc, "dot requires equal-length vectors");
        return Value();
      }
      double Acc = 0;
      for (size_t I = 0, E = Args[0].numel(); I != E; ++I)
        Acc += Args[0].linear(I) * Args[1].linear(I);
      return Value::scalar(Acc);
    };

    T["fliplr"] = [](Interpreter &Interp, const ArgList &Args,
                     SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "fliplr", Loc))
        return Value();
      const Value &A = Args[0];
      Value R(A.rows(), A.cols());
      for (size_t C = 0; C != A.cols(); ++C)
        for (size_t Row = 0; Row != A.rows(); ++Row)
          R.at(Row, C) = A.at(Row, A.cols() - 1 - C);
      return R;
    };

    T["flipud"] = [](Interpreter &Interp, const ArgList &Args,
                     SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "flipud", Loc))
        return Value();
      const Value &A = Args[0];
      Value R(A.rows(), A.cols());
      for (size_t C = 0; C != A.cols(); ++C)
        for (size_t Row = 0; Row != A.rows(); ++Row)
          R.at(Row, C) = A.at(A.rows() - 1 - Row, C);
      return R;
    };

    T["disp"] = [](Interpreter &Interp, const ArgList &Args,
                   SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "disp", Loc))
        return Value();
      Interp.appendOutput(Args[0].str() + "\n");
      return Value();
    };

    T["fprintf"] = doFprintf;

    T["pause"] = [](Interpreter &Interp, const ArgList &Args,
                    SourceLoc Loc) -> Value {
      if (!requireArgs(Interp, Args, 1, 1, "pause", Loc))
        return Value();
      if (!requireScalar(Interp, Args[0], "pause", Loc))
        return Value();
      double Secs = Args[0].scalarValue();
      if (!(Secs >= 0)) {
        Interp.fail(Loc, "argument to 'pause' must be nonnegative");
        return Value();
      }
      // Sleep in short slices so a deadline or batch cancellation
      // interrupts the wait promptly instead of after the full duration.
      auto End = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(Secs));
      while (!Interp.checkInterrupt(Loc)) {
        auto Now = std::chrono::steady_clock::now();
        if (Now >= End)
          break;
        std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
            End - Now, std::chrono::milliseconds(1)));
      }
      return Value();
    };

    BuiltinRegistry R;
    R.Entries.reserve(T.size());
    for (auto &[Name, Fn] : T) {
      R.Index.emplace(Name, static_cast<BuiltinId>(R.Entries.size()));
      R.Entries.emplace_back(Name, std::move(Fn));
    }
    return R;
  }();
  return Reg;
}

} // namespace

BuiltinId mvec::builtinIdFor(const std::string &Name) {
  const BuiltinRegistry &R = registry();
  auto It = R.Index.find(Name);
  return It == R.Index.end() ? InvalidBuiltinId : It->second;
}

Value mvec::callBuiltin(Interpreter &Interp, BuiltinId Id,
                        const std::vector<Value> &Args, SourceLoc Loc) {
  const BuiltinRegistry &R = registry();
  assert(Id >= 0 && static_cast<size_t>(Id) < R.Entries.size() &&
         "invalid builtin id");
  return R.Entries[Id].second(Interp, Args, Loc);
}

Value mvec::callBuiltin(Interpreter &Interp, const std::string &Name,
                        const std::vector<Value> &Args, SourceLoc Loc) {
  BuiltinId Id = builtinIdFor(Name);
  if (Id == InvalidBuiltinId) {
    Interp.fail(Loc, "unknown builtin '" + Name + "'");
    return Value();
  }
  return callBuiltin(Interp, Id, Args, Loc);
}

std::vector<std::string> mvec::builtinNames() {
  std::vector<std::string> Names;
  for (const auto &[Name, Fn] : registry().Entries) {
    (void)Fn;
    Names.push_back(Name);
  }
  return Names;
}
